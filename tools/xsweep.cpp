// xsweep — parallel design-space exploration campaigns.
//
// Reads a sweep specification (src/sweep/spec.hpp grammar; docs/FORMATS.md
// is the reference), runs every campaign point on a work-stealing thread
// pool, and reports the result table plus its Pareto front. Results are
// bit-identical for any --jobs value. Campaigns can sweep synthetic
// patterns, embedded app benchmarks (`pattern app:mpeg4`), injection
// burstiness, warmup windows — see examples/app_scan.sweep — and the
// link-level flow control (`flow ack_nack credit`, which adds
// retransmissions-vs-credit_stalls columns; examples/flow_scan.sweep).
// Usage:
//
//   xsweep <campaign.sweep> [options]
//   xsweep --resume <campaign.ckpt> [options]
//     --jobs N             worker threads (default: hardware concurrency)
//     --sim-threads N      threads *inside* each point's partitioned
//                          kernel (overrides the spec's `threads`
//                          directive; results are bit-identical at any
//                          value, so this is safe on --resume too)
//     --max-hw-threads N   total thread budget: --jobs is clamped so
//                          jobs x sim-threads <= N (default: hardware
//                          concurrency)
//     --csv <path>         write the result table as CSV
//     --json <path>        write the result table as JSON
//     --bench-json <path>  write a BENCH_*.json campaign summary
//                          (wall clock, points/s) for perf tracking
//     --checkpoint <path>  save a resumable checkpoint sidecar after every
//                          completed point (atomic; docs/FORMATS.md §5)
//     --resume <path>      continue an interrupted campaign from its
//                          checkpoint (the spec is embedded; keeps
//                          checkpointing to the same path). The finished
//                          exports are byte-identical to an uninterrupted
//                          run at any --jobs.
//     --halt-after N       stop scheduling new points after N complete in
//                          this session and exit 3 (requires --checkpoint
//                          or --resume; the controlled-interruption hook
//                          the resume tests and CI use)
//     --pareto             print only the Pareto front
//     --check-deadlock     run the VC-aware channel-dependency checker on
//                          every point (no simulation) and exit nonzero
//                          with the offending cycle if any can deadlock
//     --print-spec         echo the canonical specification and exit
//     --list-apps          list the embedded app benchmarks and exit
//     --quiet              suppress per-point progress lines
//
// Example:
//   xsweep examples/mesh_scan.sweep --jobs 8 --csv out.csv --pareto
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>

#include "src/sweep/checkpoint.hpp"
#include "src/sweep/runner.hpp"
#include "src/sweep/spec.hpp"
#include "src/topology/deadlock.hpp"
#include "src/workload/benchmarks.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <campaign.sweep> [--jobs N] [--csv <path>]\n"
               "          [--json <path>] [--bench-json <path>]\n"
               "          [--checkpoint <path>] [--resume <path>]\n"
               "          [--halt-after N] [--pareto] [--check-deadlock]\n"
               "          [--print-spec] [--list-apps] [--quiet]\n"
               "          [--gated | --ungated | --timeleap]\n"
               "          [--sim-threads N]\n"
               "          [--max-hw-threads N]\n"
               "       %s --resume <campaign.ckpt> [options]\n",
               argv0, argv0);
}

/// `--check-deadlock`: pre-flight every campaign point through the
/// VC-aware channel-dependency-graph checker — seconds instead of a
/// campaign that silently hangs at saturation. Returns the number of
/// points whose routes can deadlock.
std::size_t check_deadlock_all(const xpl::sweep::SweepSpec& spec,
                               bool quiet) {
  using namespace xpl;
  std::size_t bad = 0;
  for (const sweep::SweepPoint& point : spec.points()) {
    const topology::Topology topo = point.build_topology();
    const auto tables =
        topology::compute_all_routes(topo, point.net.routing);
    const auto policy =
        topology::make_vc_policy(topo, point.net.routing, point.net.vcs);
    const auto report = topology::check_deadlock(topo, tables, policy);
    if (!report.deadlock_free) {
      ++bad;
      std::printf("DEADLOCK %-28s %s\n", point.label().c_str(),
                  report.to_string(topo).c_str());
    } else if (!quiet) {
      std::printf("ok       %-28s (%zu lane%s, %s)\n",
                  point.label().c_str(), point.net.vcs,
                  point.net.vcs == 1 ? "" : "s",
                  policy.dateline ? "dateline" : "lane-preserving");
    }
  }
  return bad;
}

/// `--list-apps`: the benchmarks a `pattern app:<name>` axis accepts.
void list_apps() {
  std::printf("%-8s %-6s %-6s %s\n", "name", "cores", "flows",
              "total MB/s");
  for (const auto& name : xpl::workload::benchmark_names()) {
    const auto graph = xpl::workload::benchmark(name);
    std::printf("%-8s %-6zu %-6zu %.0f\n", name.c_str(), graph.num_cores(),
                graph.flows().size(), graph.total_bandwidth());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xpl;
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }

  std::string spec_path;
  std::string csv_path;
  std::string json_path;
  std::string bench_json_path;
  std::string checkpoint_path;
  std::string resume_path;
  std::size_t jobs = 0;
  std::size_t sim_threads = 0;     // 0 = use the spec's `threads`
  std::size_t max_hw_threads = 0;  // 0 = hardware concurrency
  std::size_t halt_after = 0;
  bool pareto_only = false;
  bool print_spec = false;
  bool check_deadlock = false;
  bool quiet = false;
  std::string scheduler_override;  // "" = use the spec's directive

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--sim-threads") {
      sim_threads = static_cast<std::size_t>(std::atoll(next()));
      if (sim_threads == 0) {
        std::fprintf(stderr, "xsweep: --sim-threads must be >= 1\n");
        return 2;
      }
    } else if (arg == "--max-hw-threads") {
      max_hw_threads = static_cast<std::size_t>(std::atoll(next()));
      if (max_hw_threads == 0) {
        std::fprintf(stderr, "xsweep: --max-hw-threads must be >= 1\n");
        return 2;
      }
    } else if (arg == "--csv") {
      csv_path = next();
    } else if (arg == "--json") {
      json_path = next();
    } else if (arg == "--bench-json") {
      bench_json_path = next();
    } else if (arg == "--checkpoint") {
      checkpoint_path = next();
    } else if (arg == "--resume") {
      resume_path = next();
    } else if (arg == "--halt-after") {
      halt_after = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--pareto") {
      pareto_only = true;
    } else if (arg == "--check-deadlock") {
      check_deadlock = true;
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--list-apps") {
      list_apps();
      return 0;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--gated") {
      scheduler_override = "gated";
    } else if (arg == "--ungated") {
      scheduler_override = "full";
    } else if (arg == "--timeleap") {
      scheduler_override = "time_leap";
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (spec_path.empty() && resume_path.empty()) {
    usage(argv[0]);
    return 2;
  }
  if (halt_after != 0 && checkpoint_path.empty() && resume_path.empty()) {
    std::fprintf(stderr,
                 "xsweep: --halt-after needs --checkpoint or --resume "
                 "(halted progress would be lost)\n");
    return 2;
  }

  try {
    // A resumed campaign carries its spec in the checkpoint; a spec file
    // given alongside must agree (canonical-form comparison), so a stale
    // sidecar cannot silently continue the wrong campaign.
    sweep::Checkpoint ckpt;
    sweep::SweepSpec spec;
    if (!resume_path.empty()) {
      ckpt = sweep::load_checkpoint(resume_path);
      spec = sweep::checkpoint_spec(ckpt);
      if (!spec_path.empty() &&
          sweep::write_sweep(sweep::load_sweep(spec_path)) !=
              ckpt.spec_text) {
        std::fprintf(stderr,
                     "xsweep: %s does not match the campaign embedded in "
                     "%s\n",
                     spec_path.c_str(), resume_path.c_str());
        return 2;
      }
      if (checkpoint_path.empty()) checkpoint_path = resume_path;
    } else {
      spec = sweep::load_sweep(spec_path);
    }
    // Safe even on resume: every scheduler produces byte-identical
    // results, so mixing them within one campaign changes nothing.
    if (!scheduler_override.empty()) {
      spec.scheduler = scheduler_override;
      spec.scheduler_pinned = true;
    }
    // Same argument for within-point threading: partitioned results are
    // bit-exact at any thread count, so overriding mid-campaign is safe.
    if (sim_threads != 0) spec.threads = sim_threads;

    // Oversubscription guard: --jobs parallelizes across points and the
    // spec's `threads` within each point; their product must fit the
    // machine (or the explicit --max-hw-threads budget), or every point
    // slows down together.
    {
      std::size_t hw = std::thread::hardware_concurrency();
      if (hw == 0) hw = 1;
      const std::size_t cap = max_hw_threads != 0 ? max_hw_threads : hw;
      const std::size_t per_point = std::max<std::size_t>(1, spec.threads);
      const std::size_t want = jobs != 0 ? jobs : hw;
      if (want * per_point > cap) {
        const std::size_t clamped =
            std::max<std::size_t>(1, cap / per_point);
        std::fprintf(stderr,
                     "xsweep: clamping --jobs %zu -> %zu (%zu sim "
                     "thread(s) per point, %zu hardware thread budget)\n",
                     want, clamped, per_point, cap);
        jobs = clamped;
      } else if (jobs == 0) {
        jobs = want;
      }
    }
    if (print_spec) {
      std::fputs(sweep::write_sweep(spec).c_str(), stdout);
      return 0;
    }
    if (check_deadlock) {
      const std::size_t bad = check_deadlock_all(spec, quiet);
      std::printf("%zu/%zu points deadlock-free\n",
                  spec.num_points() - bad, spec.num_points());
      return bad == 0 ? 0 : 1;
    }

    sweep::SweepRunner runner(jobs);
    std::printf("campaign '%s': %zu points (grid %zu), %zu worker(s)\n",
                spec.name.c_str(), spec.num_points(), spec.grid_size(),
                runner.jobs());
    if (!resume_path.empty()) {
      std::printf("resuming from %s: %zu/%zu points already done\n",
                  resume_path.c_str(), ckpt.results.size(),
                  spec.num_points());
    }

    std::size_t done = ckpt.results.size();
    if (!quiet) {
      runner.on_result = [&](const sweep::SweepResult& r) {
        ++done;
        const std::string status = r.ok ? "ok" : "FAILED: " + r.error;
        std::printf("[%zu/%zu] %-28s %s\n", done, spec.num_points(),
                    r.point.label().c_str(), status.c_str());
      };
    }

    sweep::RunOptions opts;
    if (!resume_path.empty()) opts.resume = &ckpt.results;
    opts.halt_after = halt_after;
    if (!checkpoint_path.empty()) {
      opts.on_progress = [&](const sweep::ResultTable& partial) {
        sweep::save_checkpoint(sweep::make_checkpoint(spec, partial),
                               checkpoint_path);
      };
    }

    const auto start = std::chrono::steady_clock::now();
    const sweep::ResultTable table = runner.run(spec, opts);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    std::size_t evaluated = 0;
    for (const auto& r : table.rows()) evaluated += r.evaluated ? 1 : 0;
    if (evaluated < table.size()) {
      std::printf("\nhalted: %zu/%zu points done, checkpoint saved to %s\n",
                  evaluated, table.size(), checkpoint_path.c_str());
      return 3;
    }

    std::printf("\n%zu/%zu points ok, %.2f s wall (%.2f points/s)\n\n",
                table.num_ok(), table.size(), wall_s,
                wall_s > 0 ? table.size() / wall_s : 0.0);
    std::fputs(table.summary(pareto_only).c_str(), stdout);
    if (pareto_only) {
      std::printf("\n(%zu of %zu ok points on the Pareto front)\n",
                  table.pareto_front().size(), table.num_ok());
    }

    if (!csv_path.empty()) table.save_csv(csv_path);
    if (!json_path.empty()) table.save_json(json_path);
    if (!bench_json_path.empty()) {
      std::ofstream out(bench_json_path);
      if (!out.good()) {
        std::fprintf(stderr, "cannot open %s\n", bench_json_path.c_str());
        return 1;
      }
      char buf[512];
      std::snprintf(buf, sizeof(buf),
                    "{\"bench\": \"xsweep\", \"campaign\": \"%s\", "
                    "\"points\": %zu, \"ok\": %zu, \"jobs\": %zu, "
                    "\"wall_s\": %.3f, \"points_per_s\": %.3f}\n",
                    spec.name.c_str(), table.size(), table.num_ok(),
                    runner.jobs(), wall_s,
                    wall_s > 0 ? table.size() / wall_s : 0.0);
      out << buf;
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xsweep: %s\n", e.what());
    return 1;
  }
}
