// xpipesc — the xpipesCompiler as a command-line tool.
//
// The original artifact was exactly this: a compiler that reads a NoC
// specification and produces the component instances. Usage:
//
//   xpipesc <spec.noc> [options]
//     --emit <dir>         write the synthesis view (SystemC) to <dir>
//     --estimate <MHz>     print the per-instance synthesis report
//     --simulate <cycles>  run uniform random traffic and print stats
//     --rate <r>           injection rate for --simulate (default 0.03)
//     --optimize-buffers   run the buffer-sizing pass first
//     --print-spec         echo the canonical specification and exit
//     --gated / --ungated / --timeleap
//                          force the kernel scheduler for --simulate
//                          (bit-identical results; --ungated is the
//                          escape hatch for gating-divergence triage,
//                          --timeleap skips quiescent cycle gaps)
//     --sim-threads <n>    partition the kernel across n threads for
//                          --simulate (bit-identical results; implies
//                          n partitions unless the spec sets its own)
//
// Example:
//   xpipesc my_soc.noc --optimize-buffers --estimate 900 --emit out/
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "src/compiler/compiler.hpp"
#include "src/compiler/spec_io.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <spec.noc> [--emit <dir>] [--estimate <MHz>]\n"
               "          [--simulate <cycles>] [--rate <r>]\n"
               "          [--optimize-buffers] [--print-spec]\n"
               "          [--gated | --ungated | --timeleap]\n"
               "          [--sim-threads <n>]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xpl;
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }

  std::string spec_path;
  std::string emit_dir;
  double estimate_mhz = 0.0;
  std::size_t simulate_cycles = 0;
  double rate = 0.03;
  bool optimize_buffers = false;
  bool print_spec = false;
  std::size_t sim_threads = 0;  // 0 = use the spec's sim_threads
  std::optional<sim::Scheduler> scheduler;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--emit") {
      emit_dir = next();
    } else if (arg == "--estimate") {
      estimate_mhz = std::atof(next());
    } else if (arg == "--simulate") {
      simulate_cycles = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--rate") {
      rate = std::atof(next());
    } else if (arg == "--optimize-buffers") {
      optimize_buffers = true;
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--gated") {
      scheduler = sim::Scheduler::kGated;
    } else if (arg == "--ungated") {
      scheduler = sim::Scheduler::kFull;
    } else if (arg == "--timeleap") {
      scheduler = sim::Scheduler::kTimeLeap;
    } else if (arg == "--sim-threads") {
      sim_threads = static_cast<std::size_t>(std::atoll(next()));
      if (sim_threads == 0) {
        std::fprintf(stderr, "xpipesc: --sim-threads must be >= 1\n");
        return 2;
      }
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else {
      spec_path = arg;
    }
  }
  if (spec_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    compiler::NocSpec spec = compiler::load_spec(spec_path);
    if (scheduler.has_value()) spec.net.scheduler = *scheduler;
    if (sim_threads != 0) {
      spec.net.sim_threads = sim_threads;
      // A thread count without partitions would be idle hands; default
      // to one partition per thread when the spec didn't choose.
      if (spec.net.partitions <= 1) spec.net.partitions = sim_threads;
    }
    compiler::XpipesCompiler xpipes;

    if (print_spec) {
      std::fputs(compiler::write_spec(spec).c_str(), stdout);
      return 0;
    }

    std::printf("xpipesc: '%s' — %zu switches, %zu links, %zu NIs\n",
                spec.name.c_str(), spec.topo.num_switches(),
                spec.topo.num_links(), spec.topo.num_nis());

    if (optimize_buffers) {
      const auto depths = xpipes.optimize_buffer_sizes(spec);
      std::printf("buffer sizing:");
      for (const auto d : depths) std::printf(" %zu", d);
      std::printf("\n");
    }

    if (estimate_mhz > 0) {
      const auto report = xpipes.estimate(spec, estimate_mhz);
      std::printf("\nsynthesis report @%.0f MHz:\n", estimate_mhz);
      std::printf("  %-16s %-14s %-10s %-10s %-10s\n", "instance", "kind",
                  "area_mm2", "power_mW", "fmax_MHz");
      for (const auto& inst : report.instances) {
        std::printf("  %-16s %-14s %-10.4f %-10.2f %-10.0f%s\n",
                    inst.name.c_str(), inst.kind.c_str(),
                    inst.estimate.area_mm2, inst.estimate.power_mw,
                    inst.estimate.fmax_mhz,
                    inst.estimate.feasible ? "" : "  INFEASIBLE");
      }
      std::printf("  total: %.3f mm2, %.1f mW, clock ceiling %.0f MHz\n",
                  report.total_area_mm2, report.total_power_mw,
                  report.min_fmax_mhz);
    }

    if (!emit_dir.empty()) {
      xpipes.write_systemc(spec, emit_dir);
      std::printf("\nsynthesis view written to %s/ (%zu files)\n",
                  emit_dir.c_str(), xpipes.emit_systemc(spec).size());
    }

    if (simulate_cycles > 0) {
      auto net = xpipes.build_simulation(spec);
      traffic::TrafficConfig tcfg;
      tcfg.injection_rate = rate;
      traffic::TrafficDriver driver(*net, tcfg);
      driver.run(simulate_cycles);
      net->run_until_quiescent(simulate_cycles * 20);
      const auto stats = traffic::collect_run(*net, simulate_cycles);
      std::printf("\nsimulation (%zu cycles, uniform random @%.3f):\n",
                  simulate_cycles, rate);
      std::printf("  %s\n", stats.to_string().c_str());
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "xpipesc: %s\n", e.what());
    return 1;
  }
  return 0;
}
