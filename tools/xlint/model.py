"""Source model shared by every xlint backend.

A backend (regex or libclang, see backends.py) turns one C++ translation
unit into a SourceFile: comment-stripped code with preserved line
numbers, class extents with base lists and member declarations, function
extents with bodies, and the suppression comments. Checks consume only
this model, so both backends run the same rules — the libclang backend
just resolves extents and types more precisely.

Suppression grammar (docs/LINTING.md):

    // xlint: <rule>-ok(<reason>)

placed on the offending line or the line directly above it. The reason
is mandatory; an empty or missing reason is itself a finding (XL000), as
is an unknown rule name. `xlint-expect: XLnnn` markers are the fixture
counterpart: tests/lint_test.py asserts the marked line fires.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str  # "XL103"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Suppression:
    line: int
    rule_slug: str  # "unordered", "sort", ...
    reason: str
    used: bool = False


@dataclass
class FunctionInfo:
    name: str  # unqualified
    qualifier: str  # "Cls" for Cls::name or in-class methods, else ""
    start_line: int
    end_line: int
    body: str  # stripped code between the braces
    signature: str  # stripped text of the header, single line


@dataclass
class ClassInfo:
    name: str
    bases: str  # raw base-clause text ("public sim::Module, ...")
    start_line: int
    end_line: int
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    # (line, type_text, member_name) for each data member declaration.
    members: list[tuple[int, str, str]] = field(default_factory=list)
    has_pure_virtual: bool = False


@dataclass
class SourceFile:
    path: str  # repo-relative, forward slashes
    raw: str
    code: str  # comments and string/char literals blanked, newlines kept
    suppressions: list[Suppression] = field(default_factory=list)
    expects: list[tuple[int, str]] = field(default_factory=list)
    classes: list[ClassInfo] = field(default_factory=list)
    functions: list[FunctionInfo] = field(default_factory=list)

    def line_of(self, offset: int) -> int:
        return self.code.count("\n", 0, offset) + 1

    def code_lines(self) -> list[str]:
        return self.code.split("\n")

    def suppressed(self, line: int, rule_slug: str) -> bool:
        """True (and marks used) if `line` or the line above carries the
        matching suppression."""
        for sup in self.suppressions:
            if sup.rule_slug == rule_slug and sup.line in (line, line - 1):
                sup.used = True
                return True
        return False


SUPPRESSION_RE = re.compile(r"xlint:\s*([a-z][a-z-]*?)-ok\(([^)]*)\)")
SUPPRESSION_ANY_RE = re.compile(r"xlint:(?!-)")
EXPECT_RE = re.compile(r"xlint-expect:\s*(XL\d{3})")


def strip_comments(raw: str) -> tuple[str, list[tuple[int, str]]]:
    """Blanks comments and string/char literal contents while keeping the
    exact line structure. Returns (stripped_text, comment_texts) where
    comment_texts is [(line, text)] for suppression parsing."""
    out: list[str] = []
    comments: list[tuple[int, str]] = []
    i, n = 0, len(raw)
    line = 1
    state = "code"  # code | line_comment | block_comment | string | char
    comment_start_line = 1
    comment_buf: list[str] = []

    def blank(ch: str) -> str:
        return ch if ch == "\n" else " "

    while i < n:
        ch = raw[i]
        nxt = raw[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                comment_start_line = line
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                comment_start_line = line
                comment_buf = []
                out.append("  ")
                i += 2
                continue
            if ch == '"':
                # Raw strings: find the delimiter and skip to its end.
                if out and out[-1] == "R":
                    m = re.match(r'"([^\s()\\]{0,16})\(', raw[i:])
                    if m:
                        delim = ")" + m.group(1) + '"'
                        end = raw.find(delim, i + m.end())
                        if end != -1:
                            seg = raw[i : end + len(delim)]
                            out.append('"' + "".join(blank(c) for c in seg[1:-1]) + '"')
                            line += seg.count("\n")
                            i = end + len(delim)
                            continue
                state = "string"
                out.append(ch)
                i += 1
                continue
            if ch == "'":
                state = "char"
                out.append(ch)
                i += 1
                continue
            out.append(ch)
        elif state == "line_comment":
            if ch == "\n":
                comments.append((comment_start_line, "".join(comment_buf)))
                state = "code"
                out.append(ch)
            else:
                comment_buf.append(ch)
                out.append(" ")
        elif state == "block_comment":
            if ch == "*" and nxt == "/":
                comments.append((comment_start_line, "".join(comment_buf)))
                state = "code"
                out.append("  ")
                i += 2
                continue
            comment_buf.append(ch)
            out.append(blank(ch))
        elif state == "string":
            if ch == "\\":
                out.append("  ")
                i += 2
                if nxt == "\n":
                    line += 1
                    out[-1] = " \n"
                continue
            if ch == '"':
                state = "code"
                out.append(ch)
            else:
                out.append(blank(ch))
        elif state == "char":
            if ch == "\\":
                out.append("  ")
                i += 2
                continue
            if ch == "'":
                state = "code"
                out.append(ch)
            else:
                out.append(blank(ch))
        if ch == "\n":
            line += 1
        i += 1
    if state in ("line_comment", "block_comment") and comment_buf:
        comments.append((comment_start_line, "".join(comment_buf)))
    return "".join(out), comments


def parse_suppressions(
    comments: list[tuple[int, str]], known_slugs: set[str]
) -> tuple[list[Suppression], list[tuple[int, str]], list[tuple[int, str]]]:
    """Returns (suppressions, expects, syntax_errors)."""
    sups: list[Suppression] = []
    expects: list[tuple[int, str]] = []
    errors: list[tuple[int, str]] = []
    for line, text in comments:
        for m in EXPECT_RE.finditer(text):
            expects.append((line + text.count("\n", 0, m.start()), m.group(1)))
        matched_any = False
        for m in SUPPRESSION_RE.finditer(text):
            matched_any = True
            at = line + text.count("\n", 0, m.start())
            slug, reason = m.group(1), m.group(2).strip()
            if slug not in known_slugs:
                errors.append((at, f"unknown suppression rule '{slug}-ok'"))
            elif not reason:
                errors.append(
                    (at, f"suppression '{slug}-ok' needs a reason: {slug}-ok(<why>)")
                )
            else:
                sups.append(Suppression(at, slug, reason))
        if not matched_any and SUPPRESSION_ANY_RE.search(text) and "xlint-expect" not in text:
            at = line
            errors.append(
                (at, "malformed xlint directive; expected 'xlint: <rule>-ok(<reason>)'")
            )
    return sups, expects, errors


def match_brace(code: str, open_idx: int) -> int:
    """Index of the '}' matching code[open_idx] == '{', or -1."""
    depth = 0
    for i in range(open_idx, len(code)):
        c = code[i]
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return i
    return -1


CLASS_RE = re.compile(
    r"\b(class|struct)\s+([A-Za-z_]\w*)\s*(?:final\s*)?(?::\s*([^{;]+?))?\s*\{"
)

# A function/method header directly before a '{'. Ctor init lists and
# trailing specifiers are absorbed by the tail group; control-flow
# keywords are filtered afterwards.
FUNC_HEAD_RE = re.compile(
    r"([A-Za-z_~]\w*(?:\s*::\s*[A-Za-z_~]\w*)*)\s*"  # name (possibly qualified)
    r"\(((?:[^(){};]|\([^(){};]*\))*)\)\s*"  # params (one nesting level)
    r"((?:const|noexcept|final|override|mutable|"
    r"->\s*[\w:<>,\s]+|:\s*[^{;}]*|\s)*)$",
    re.DOTALL,
)

NOT_FUNCTIONS = {
    "if",
    "for",
    "while",
    "switch",
    "catch",
    "return",
    "sizeof",
    "alignof",
    "decltype",
    "new",
    "delete",
    "static_assert",
    "requires",
    "do",
    "else",
    "try",
}

PURE_VIRTUAL_RE = re.compile(r"\)\s*(?:const\s*)?(?:noexcept\s*)?=\s*0\s*;")


def _find_functions(sf: SourceFile) -> None:
    code = sf.code
    for m in re.finditer(r"\{", code):
        open_idx = m.start()
        # Header candidate: text since the previous statement/brace end.
        head_start = max(
            code.rfind(";", 0, open_idx),
            code.rfind("{", 0, open_idx),
            code.rfind("}", 0, open_idx),
        )
        header = code[head_start + 1 : open_idx]
        fm = FUNC_HEAD_RE.search(header)
        if not fm:
            continue
        name_tok = re.sub(r"\s", "", fm.group(1))
        parts = name_tok.split("::")
        name = parts[-1]
        if name in NOT_FUNCTIONS or parts[0] in NOT_FUNCTIONS:
            continue
        # Init-list tails only follow constructors; `name(args) : x(1) {`
        # with a non-ctor-looking header is a range-for or bitfield misfire.
        close = match_brace(code, open_idx)
        if close == -1:
            continue
        qualifier = parts[-2] if len(parts) >= 2 else ""
        body = code[open_idx + 1 : close]
        sf.functions.append(
            FunctionInfo(
                name=name,
                qualifier=qualifier,
                start_line=sf.line_of(open_idx),
                end_line=sf.line_of(close),
                body=body,
                signature=" ".join(header.split()),
            )
        )


MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+|inline\s+)*"
    r"((?:const\s+)?[A-Za-z_][\w:]*(?:\s*<[^;={}]*>)?(?:\s*[*&])*)\s+"
    r"([A-Za-z_]\w*)\s*(?:=[^;]*|\{[^;]*\})?;"
)


def _find_classes(sf: SourceFile) -> None:
    code = sf.code
    for m in CLASS_RE.finditer(code):
        open_idx = m.end() - 1
        close = match_brace(code, open_idx)
        if close == -1:
            continue
        ci = ClassInfo(
            name=m.group(2),
            bases=(m.group(3) or "").strip(),
            start_line=sf.line_of(m.start()),
            end_line=sf.line_of(close),
        )
        body = code[open_idx + 1 : close]
        ci.has_pure_virtual = PURE_VIRTUAL_RE.search(body) is not None
        # Methods: functions nested inside this extent (innermost class wins
        # is resolved by attach_methods below).
        ci._extent = (sf.line_of(open_idx), sf.line_of(close))  # type: ignore[attr-defined]
        # Member declarations: class-body lines outside nested braces.
        depth = 0
        for line_off, line_text in _body_lines(body, sf.line_of(open_idx)):
            if depth == 0:
                mm = MEMBER_RE.match(line_text)
                if mm and "(" not in mm.group(1):
                    type_text = " ".join(mm.group(1).split())
                    if type_text not in ("return", "using", "typedef", "friend"):
                        ci.members.append((line_off, type_text, mm.group(2)))
            depth += line_text.count("{") - line_text.count("}")
            depth = max(depth, 0)
        sf.classes.append(ci)


def _body_lines(body: str, first_line: int):
    for k, text in enumerate(body.split("\n")):
        yield first_line + k, text


def _attach_methods(sf: SourceFile) -> None:
    """Assigns each function to the innermost class whose extent contains
    it (in-class definitions) or whose name matches its qualifier
    (out-of-line definitions)."""
    by_name: dict[str, list[ClassInfo]] = {}
    for ci in sf.classes:
        by_name.setdefault(ci.name, []).append(ci)
    for fn in sf.functions:
        owner: ClassInfo | None = None
        for ci in sf.classes:
            if ci.start_line <= fn.start_line and fn.end_line <= ci.end_line:
                if owner is None or (
                    ci.start_line >= owner.start_line and ci.end_line <= owner.end_line
                ):
                    owner = ci
        if owner is None and fn.qualifier and fn.qualifier in by_name:
            owner = by_name[fn.qualifier][0]
        if owner is not None:
            fn.qualifier = owner.name
            # First definition wins; overloads merge their bodies so
            # reachability sees every variant.
            if fn.name in owner.methods:
                owner.methods[fn.name].body += "\n" + fn.body
            else:
                owner.methods[fn.name] = fn


def build_regex_model(path: str, raw: str, known_slugs: set[str]) -> SourceFile:
    code, comments = strip_comments(raw)
    sf = SourceFile(path=path, raw=raw, code=code)
    sups, expects, errors = parse_suppressions(comments, known_slugs)
    sf.suppressions = sups
    sf.expects = expects
    sf.syntax_errors = errors  # type: ignore[attr-defined]
    _find_functions(sf)
    _find_classes(sf)
    _attach_methods(sf)
    return sf
