#!/usr/bin/env python3
"""xlint — determinism & kernel-contract static analysis for this repo.

Runs project-specific checks (tools/xlint/checks.py) over src/ using a
libclang backend when clang.cindex is importable and the regex backend
otherwise. Zero third-party dependencies either way.

    python3 tools/xlint/xlint.py                  # lint src/ (tree mode)
    python3 tools/xlint/xlint.py FILE...          # lint specific files
    python3 tools/xlint/xlint.py --json report.json
    python3 tools/xlint/xlint.py --list-checks

Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
See docs/LINTING.md for the rule catalogue, the suppression grammar and
the dynamic tests that backstop each check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

if __package__ in (None, ""):  # direct script invocation
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    from xlint.backends import build_model, load_cindex
    from xlint.checks import RULES, Analyzer
else:
    from .backends import build_model, load_cindex
    from .checks import RULES, Analyzer

CXX_EXTENSIONS = (".cpp", ".hpp", ".cc", ".h")


def repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def default_targets(root: str) -> list[str]:
    out: list[str] = []
    for base, _dirs, names in os.walk(os.path.join(root, "src")):
        for name in sorted(names):
            if name.endswith(CXX_EXTENSIONS):
                out.append(os.path.join(base, name))
    return sorted(out)


def compile_args_for(root: str, compile_commands: str | None, path: str) -> list[str]:
    """Flags for the libclang backend: from compile_commands.json when the
    file appears there, else a minimal default."""
    default = ["-std=c++20", f"-I{root}"]
    if not compile_commands or not os.path.exists(compile_commands):
        return default
    try:
        with open(compile_commands, encoding="utf-8") as f:
            for entry in json.load(f):
                if os.path.abspath(
                    os.path.join(entry.get("directory", "."), entry["file"])
                ) == os.path.abspath(path):
                    args = entry.get("arguments") or entry.get("command", "").split()
                    return [
                        a
                        for a in args[1:]
                        if a.startswith(("-I", "-D", "-std", "-isystem"))
                    ] or default
    except (OSError, ValueError, KeyError):
        pass
    return default


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="xlint", description=__doc__.splitlines()[0]
    )
    parser.add_argument("files", nargs="*", help="files to lint (default: src/)")
    parser.add_argument(
        "--backend",
        choices=("auto", "regex", "clang"),
        default="auto",
        help="model builder: libclang when available (auto), or force one",
    )
    parser.add_argument(
        "--compile-commands",
        default=None,
        help="compile_commands.json for the libclang backend "
        "(default: build/compile_commands.json when present)",
    )
    parser.add_argument("--json", dest="json_out", help="also write findings as JSON")
    parser.add_argument(
        "--list-checks", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="suppress the summary line"
    )
    args = parser.parse_args(argv)

    if args.list_checks:
        for rule, (slug, desc) in sorted(RULES.items()):
            sup = f"{slug}-ok(<reason>)" if slug else "(not suppressible)"
            print(f"{rule}  {desc}  [{sup}]")
        return 0

    root = repo_root()
    targets = [os.path.abspath(f) for f in args.files] or default_targets(root)
    missing = [t for t in targets if not os.path.exists(t)]
    if missing:
        print(f"xlint: no such file: {missing[0]}", file=sys.stderr)
        return 2

    cindex = None
    if args.backend != "regex":
        cindex = load_cindex()
        if cindex is None and args.backend == "clang":
            print(
                "xlint: --backend=clang but clang.cindex/libclang is unavailable",
                file=sys.stderr,
            )
            return 2
    compile_commands = args.compile_commands or os.path.join(
        root, "build", "compile_commands.json"
    )

    models = []
    for path in targets:
        with open(path, encoding="utf-8") as f:
            raw = f.read()
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        models.append(
            build_model(
                rel, raw, args.backend, cindex, compile_args_for(root, compile_commands, path)
            )
        )

    findings = Analyzer(models).run()
    for finding in findings:
        print(finding.render())
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(
                {
                    "backend": "clang" if cindex is not None else "regex",
                    "files_scanned": len(models),
                    "findings": [
                        {
                            "path": x.path,
                            "line": x.line,
                            "rule": x.rule,
                            "message": x.message,
                        }
                        for x in findings
                    ],
                },
                f,
                indent=2,
            )
            f.write("\n")
    if not args.quiet:
        backend = "clang" if cindex is not None else "regex"
        print(
            f"xlint: {len(findings)} finding(s) in {len(models)} file(s) "
            f"[{backend} backend]",
            file=sys.stderr,
        )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
