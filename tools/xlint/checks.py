"""xlint's project-specific checks.

Every check encodes an invariant the dynamic test suite enforces after
the fact (docs/LINTING.md maps each rule to its backstop):

  determinism          XL101 unordered-iter, XL102 pointer-order,
                       XL103 unstable-sort, XL104 banned-call
  module contract      XL201 missing-is-idle, XL202 idle-state-coupling,
                       XL203 missing-next-event
  signal discipline    XL301 write-outside-tick, XL302 watcher-budget,
                       XL303 signal-handle
  export stability     XL401 raw-float-export
  suppression hygiene  XL000 suppression-syntax, XL001 unused-suppression

Checks consume the backend-built SourceFile models only; they never
re-read source text, so the regex and libclang backends share them.
"""

from __future__ import annotations

import re

from .model import ClassInfo, Finding, FunctionInfo, SourceFile

# Rule id -> (suppression slug, one-line description).
RULES: dict[str, tuple[str, str]] = {
    "XL000": ("", "malformed xlint suppression directive"),
    "XL001": ("", "suppression never matched a finding (stale)"),
    "XL101": ("unordered", "iteration over an unordered container"),
    "XL102": ("pointer-order", "pointer values used as an ordering key"),
    "XL103": ("sort", "std::sort with a single-key comparator (tie order unspecified)"),
    "XL104": ("banned", "wall-clock/env/libc-rng call on a simulation path"),
    "XL201": ("idle", "concrete sim::Module subclass without is_idle() override"),
    "XL202": ("idle", "is_idle() reads none of the state tick() advances"),
    "XL203": ("next-event", "time-driven sleeper without a next_event() override"),
    "XL301": ("write", "Signal write outside a tick()/exchange()-reachable path"),
    "XL302": ("watch", "more than two static watch() registrations on one wire"),
    "XL303": ("signal-handle", "raw Signal handle stored in a module outside the CutLink seam"),
    "XL401": ("float", "raw float reaches a CSV/JSON emitter without fmt_double/hex_double"),
}

KNOWN_SLUGS = {slug for slug, _ in RULES.values() if slug}

# Files whose Signal::write sites ARE the protocol seam: the Signal
# definition itself, the stream endpoint wrappers, and the link protocol
# engines (their begin_cycle/send/end_cycle contract is only callable
# from an owning module's tick path by construction — DESIGN.md §9).
WRITE_SEAM_FILES = (
    "src/sim/kernel.hpp",
    "src/sim/stream.hpp",
    "src/link/goback_n.hpp",
    "src/link/goback_n.cpp",
    "src/link/credit.hpp",
    "src/link/credit.cpp",
    "src/link/flow.hpp",
    "src/link/flow.cpp",
    "src/link/cut.hpp",
    "src/link/cut.cpp",
)

# The one sanctioned home for cross-partition signal handles (DESIGN.md
# §10); everywhere else a stored raw Signal pointer/reference needs a
# signal-handle-ok(<reason>) annotation.
SIGNAL_HANDLE_SEAM_FILES = (
    "src/link/cut.hpp",
    "src/link/cut.cpp",
)

# Functions whose output must be byte-stable across platforms: CSV/JSON
# exporters and the canonical spec/checkpoint writers.
EMITTER_RE = re.compile(r"(?i)csv|json|checkpoint|canonical|^write_(sweep|tune|noc|spec)$")

# Entry points of the sanctioned mutation phases: Module::tick and
# CutChannel::exchange (the epoch-barrier replay).
WRITE_ROOTS = ("tick", "exchange")

BANNED_CALL_RE = re.compile(
    r"\bstd::rand\b|\brand\s*\(|\bsrand\s*\(|\bstd::getenv\b|\bgetenv\s*\(|"
    r"\btime\s*\(|\bclock\s*\(|\bstd::random_device\b|\brandom_device\s"
)

UNORDERED_DECL_RE = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")

IDENT_RE = re.compile(r"[A-Za-z_]\w*")

# Members whose names advertise a self-scheduled future cycle. A module
# that tracks one of these and still claims is_idle() can sleep under
# the time-leap scheduler past the very cycle the member names.
DUE_MEMBER_RE = re.compile(r"(?:^|_)(?:due|deadline)s?(?:_|$)")

# A read of the kernel clock (Kernel::cycle()); begin_cycle()/end_cycle()
# don't match — `_` is a word character, so \b stops at the prefix.
CYCLE_READ_RE = re.compile(r"\bcycle\s*\(\s*\)")

FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+([A-Za-z_]\w*)\s*(?:[;=,)\{]|$)", re.M)
INT_DECL_RE = re.compile(
    r"\b(?:std::)?(?:u?int\d+_t|size_t|int|long|unsigned|short|bool|char)\s+"
    r"([A-Za-z_]\w*)\s*(?:[;=,)\{]|$)",
    re.M,
)


def _module_classes(sf: SourceFile) -> list[ClassInfo]:
    return [ci for ci in sf.classes if re.search(r"\bModule\b", ci.bases)]


def _body_line(fn: FunctionInfo, offset: int) -> int:
    return fn.start_line + fn.body.count("\n", 0, offset)


def _enclosing_function(sf: SourceFile, line: int) -> FunctionInfo | None:
    best: FunctionInfo | None = None
    for fn in sf.functions:
        if fn.start_line <= line <= fn.end_line:
            if best is None or fn.start_line >= best.start_line:
                best = fn
    return best


class MergedClass:
    """One logical class: declarations and out-of-line definitions merged
    across translation units (hpp declaration + cpp bodies)."""

    def __init__(self, name: str):
        self.name = name
        self.bases = ""
        self.members: list[tuple[str, str, int, str]] = []  # (file, type, line, name)
        self.methods: dict[str, str] = {}  # name -> concatenated bodies
        self.method_sites: dict[str, tuple[str, int]] = {}
        self.has_pure_virtual = False
        self.decl_site: tuple[str, int] | None = None

    def tick_reachable(self) -> set[str]:
        """Method names reachable from the sanctioned mutation roots via
        same-class calls."""
        reach: set[str] = set()
        work = [r for r in WRITE_ROOTS if r in self.methods]
        while work:
            m = work.pop()
            if m in reach:
                continue
            reach.add(m)
            for callee in re.findall(r"\b([A-Za-z_]\w*)\s*\(", self.methods[m]):
                if callee in self.methods and callee not in reach:
                    work.append(callee)
        return reach


class Analyzer:
    def __init__(self, files: list[SourceFile]):
        self.files = files
        self.findings: list[Finding] = []
        self.merged: dict[str, MergedClass] = {}
        self.float_names: set[str] = set()
        self._merge_classes()
        self._collect_float_names()

    # ------------------------------------------------------------ setup

    def _merge_classes(self) -> None:
        # Two passes: declarations first, then out-of-line definitions —
        # a .cpp can sort before the .hpp that declares its class.
        for sf in self.files:
            for ci in sf.classes:
                mc = self.merged.setdefault(ci.name, MergedClass(ci.name))
                if ci.bases:
                    mc.bases = ci.bases
                    mc.decl_site = (sf.path, ci.start_line)
                mc.has_pure_virtual |= ci.has_pure_virtual
                for line, type_text, name in ci.members:
                    mc.members.append((sf.path, type_text, line, name))
                for name, fn in ci.methods.items():
                    mc.methods[name] = mc.methods.get(name, "") + "\n" + fn.body
                    mc.method_sites.setdefault(name, (sf.path, fn.start_line))
        for sf in self.files:
            for fn in sf.functions:
                if fn.qualifier and fn.qualifier in self.merged:
                    mc = self.merged[fn.qualifier]
                    if fn.name not in mc.methods or fn.body not in mc.methods[fn.name]:
                        mc.methods[fn.name] = mc.methods.get(fn.name, "") + "\n" + fn.body
                        mc.method_sites.setdefault(fn.name, (sf.path, fn.start_line))

    def _collect_float_names(self) -> None:
        floats: set[str] = set()
        ints: set[str] = set()
        for sf in self.files:
            floats.update(FLOAT_DECL_RE.findall(sf.code))
            ints.update(INT_DECL_RE.findall(sf.code))
        # A name declared with both widths somewhere in the tree is
        # ambiguous under regex typing; skip it rather than false-flag.
        self.float_names = floats - ints

    # ------------------------------------------------------------ driver

    def run(self) -> list[Finding]:
        for sf in self.files:
            self._check_suppression_syntax(sf)
            self._check_unordered_iter(sf)
            self._check_pointer_order(sf)
            self._check_unstable_sort(sf)
            self._check_banned_calls(sf)
            self._check_signal_writes(sf)
            self._check_watcher_budget(sf)
            self._check_signal_handles(sf)
            self._check_float_exports(sf)
        self._check_module_contracts()
        for sf in self.files:
            for sup in sf.suppressions:
                if not sup.used:
                    self._emit(
                        sf,
                        sup.line,
                        "XL001",
                        f"suppression '{sup.rule_slug}-ok' matched no finding — remove it",
                        suppressible=False,
                    )
        self.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return self.findings

    def _emit(
        self,
        sf: SourceFile,
        line: int,
        rule: str,
        message: str,
        suppressible: bool = True,
    ) -> None:
        slug = RULES[rule][0]
        if suppressible and slug and sf.suppressed(line, slug):
            return
        self.findings.append(Finding(sf.path, line, rule, message))

    # ------------------------------------------------------------ checks

    def _check_suppression_syntax(self, sf: SourceFile) -> None:
        for line, msg in getattr(sf, "syntax_errors", []):
            self._emit(sf, line, "XL000", msg, suppressible=False)

    def _unordered_names(self, sf: SourceFile) -> set[str]:
        names: set[str] = set()
        for ci in sf.classes:
            for _line, type_text, name in ci.members:
                if UNORDERED_DECL_RE.search(type_text):
                    names.add(name)
        for m in re.finditer(
            r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+([A-Za-z_]\w*)",
            sf.code,
        ):
            names.add(m.group(1))
        return names

    def _check_unordered_iter(self, sf: SourceFile) -> None:
        names = self._unordered_names(sf)
        if not names:
            return
        pat = "|".join(re.escape(n) for n in sorted(names))
        # Range-for over the container (optionally through an object path)
        # or an explicit iterator walk from begin()/cbegin().
        for m in re.finditer(
            rf"for\s*\([^;()]*?:\s*(?:[\w.\->]+[.\->])?({pat})\s*\)"
            rf"|\b({pat})\s*\.\s*c?begin\s*\(",
            sf.code,
        ):
            line = sf.line_of(m.start())
            name = m.group(1) or m.group(2)
            self._emit(
                sf,
                line,
                "XL101",
                f"iteration over unordered container '{name}': order is "
                "implementation-defined and can leak into stats/exports — iterate a "
                "sorted copy or annotate unordered-ok(<why order cannot escape>)",
            )

    def _check_pointer_order(self, sf: SourceFile) -> None:
        for m in re.finditer(r"\bstd::(?:map|set|multimap|multiset)\s*<\s*[\w:]+\s*\*", sf.code):
            self._emit(
                sf,
                sf.line_of(m.start()),
                "XL102",
                "ordered container keyed by pointer values: iteration order tracks "
                "allocation addresses, not program state — key by a stable id",
            )
        ptr_vecs = {
            m.group(1)
            for m in re.finditer(r"\bvector\s*<\s*[\w:]+\s*\*\s*>\s+([A-Za-z_]\w*)", sf.code)
        }
        if ptr_vecs:
            pat = "|".join(re.escape(n) for n in sorted(ptr_vecs))
            for m in re.finditer(rf"\bstd::sort\s*\(\s*({pat})\s*\.\s*begin", sf.code):
                self._emit(
                    sf,
                    sf.line_of(m.start()),
                    "XL102",
                    f"std::sort over pointer vector '{m.group(1)}' orders by address "
                    "unless the comparator projects a stable key",
                )

    SORT_CALL_RE = re.compile(r"\bstd::sort\s*\(")

    def _check_unstable_sort(self, sf: SourceFile) -> None:
        for m in self.SORT_CALL_RE.finditer(sf.code):
            # Extract the full argument list (balanced parens).
            depth = 0
            start = m.end() - 1
            end = -1
            for i in range(start, len(sf.code)):
                if sf.code[i] == "(":
                    depth += 1
                elif sf.code[i] == ")":
                    depth -= 1
                    if depth == 0:
                        end = i
                        break
            if end == -1:
                continue
            args = sf.code[start + 1 : end]
            lam = re.search(
                r"\[[^\]]*\]\s*\(([^)]*)\)\s*(?:->\s*\w+\s*)?\{\s*return\s+([^;]+);\s*\}",
                args,
                re.DOTALL,
            )
            if not lam:
                continue
            params = [
                p.split()[-1].lstrip("*&")
                for p in lam.group(1).split(",")
                if p.strip()
            ]
            if len(params) != 2:
                continue
            expr = " ".join(lam.group(2).split())
            if "||" in expr or "&&" in expr:
                continue  # comparator already carries a tie-break
            cm = re.match(r"^(.*?)\s*([<>])\s*(.*)$", expr)
            if not cm:
                continue
            a, b = params
            swapped = re.sub(
                rf"\b({re.escape(a)}|{re.escape(b)})\b",
                lambda t: b if t.group(1) == a else a,
                cm.group(3),
            )
            if swapped.strip() == cm.group(1).strip():
                self._emit(
                    sf,
                    sf.line_of(m.start()),
                    "XL103",
                    "std::sort with a single-key comparator leaves tie order "
                    "unspecified (and stdlib-dependent) — use std::stable_sort, add a "
                    "total tie-break, or annotate sort-ok(<why ties cannot occur>)",
                )

    def _check_banned_calls(self, sf: SourceFile) -> None:
        for m in BANNED_CALL_RE.finditer(sf.code):
            self._emit(
                sf,
                sf.line_of(m.start()),
                "XL104",
                f"'{m.group(0).strip()}' is nondeterministic across runs/hosts; "
                "simulation state must derive from common/rng.hpp seeds and "
                "explicit configuration — annotate banned-ok(<reason>) only on "
                "non-simulation seams",
            )

    def _check_signal_writes(self, sf: SourceFile) -> None:
        if sf.path.endswith(WRITE_SEAM_FILES):
            return
        for m in re.finditer(r"(?:\.|->)\s*write\s*\(", sf.code):
            line = sf.line_of(m.start())
            fn = _enclosing_function(sf, line)
            if fn is None:
                self._emit(
                    sf, line, "XL301",
                    "Signal write at namespace scope cannot be tick-ordered",
                )
                continue
            mc = self.merged.get(fn.qualifier) if fn.qualifier else None
            if mc is not None and fn.name in mc.tick_reachable():
                continue
            where = f"{fn.qualifier}::{fn.name}" if fn.qualifier else fn.name
            self._emit(
                sf,
                line,
                "XL301",
                f"Signal write in '{where}', which is not reachable from tick() or "
                "exchange(): out-of-phase writes bypass the two-phase commit and "
                "break scheduler equivalence — move it into the tick path or "
                "annotate write-ok(<reason>)",
            )

    def _check_watcher_budget(self, sf: SourceFile) -> None:
        sites: dict[tuple[str, str], list[int]] = {}
        for m in re.finditer(r"([\w\]]+(?:(?:\.|->)[\w\[\]]+)*)\s*(?:\.|->)\s*watch\s*\(", sf.code):
            line = sf.line_of(m.start())
            fn = _enclosing_function(sf, line)
            scope = fn.qualifier if fn is not None and fn.qualifier else sf.path
            sites.setdefault((scope, m.group(1)), []).append(line)
        for (scope, expr), lines in sorted(sites.items()):
            if len(lines) > 2:
                self._emit(
                    sf,
                    lines[2],
                    "XL302",
                    f"wire '{expr}' is watched {len(lines)} times in {scope}; "
                    "Signal has exactly two watcher slots (consumer + passive "
                    "observer) and the third registration asserts at runtime",
                )

    def _check_signal_handles(self, sf: SourceFile) -> None:
        if sf.path.endswith(SIGNAL_HANDLE_SEAM_FILES):
            return
        for ci in _module_classes(sf):
            for line, type_text, name in ci.members:
                if re.search(r"\bSignal\s*<", type_text) and type_text.rstrip().endswith(
                    ("*", "&")
                ):
                    self._emit(
                        sf,
                        line,
                        "XL303",
                        f"module '{ci.name}' stores raw signal handle '{name}': "
                        "cross-module signal sharing belongs to the link::CutLink "
                        "shims (or an annotated passive observer) — "
                        "signal-handle-ok(<reason>)",
                    )

    def _check_float_exports(self, sf: SourceFile) -> None:
        for fn in sf.functions:
            if not EMITTER_RE.search(fn.name):
                continue
            local_floats = set(FLOAT_DECL_RE.findall(fn.body)) | self.float_names
            for m in re.finditer(
                r"<<\s*(?:"
                r"(?P<lit>[0-9]+\.[0-9]*(?:[eE][-+]?[0-9]+)?[fF]?|\.[0-9]+|[0-9]+[eE][-+]?[0-9]+)"
                r"|(?P<path>(?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*[A-Za-z_]\w*)(?!\s*[(\w])"
                r")",
                fn.body,
            ):
                line = _body_line(fn, m.start())
                if m.group("lit"):
                    self._emit(
                        sf,
                        line,
                        "XL401",
                        f"float literal streamed raw in emitter '{fn.name}': iostream "
                        "float formatting is locale/width-unstable — route through "
                        "fmt_double()/hex_double()",
                    )
                    continue
                tail = re.split(r"\.|->|::", re.sub(r"\s", "", m.group("path")))[-1]
                if tail in local_floats:
                    self._emit(
                        sf,
                        line,
                        "XL401",
                        f"'{m.group('path').strip()}' is float-typed and streamed raw "
                        f"in emitter '{fn.name}' — wrap it in fmt_double() or "
                        "hex_double() (or annotate float-ok(<reason>))",
                    )
            for m in re.finditer(
                r"\bstd::to_string\s*\(\s*((?:[A-Za-z_]\w*\s*(?:\.|->|::)\s*)*[A-Za-z_]\w*)\s*\)",
                fn.body,
            ):
                tail = re.split(r"\.|->|::", re.sub(r"\s", "", m.group(1)))[-1]
                if tail in local_floats:
                    self._emit(
                        sf,
                        _body_line(fn, m.start()),
                        "XL401",
                        f"std::to_string on float '{m.group(1).strip()}' in emitter "
                        f"'{fn.name}' is precision-lossy and locale-adjacent — use "
                        "fmt_double()/hex_double()",
                    )

    def _check_module_contracts(self) -> None:
        file_by_path = {sf.path: sf for sf in self.files}
        for mc in self.merged.values():
            if not re.search(r"\bModule\b", mc.bases) or mc.has_pure_virtual:
                continue
            if mc.decl_site is None:
                continue
            sf = file_by_path[mc.decl_site[0]]
            # Declaration-only overrides (defined out of line in a file not
            # scanned) still count via the declaration text.
            decl_ci = next(c for c in sf.classes if c.name == mc.name)
            extent = "\n".join(
                sf.code_lines()[decl_ci.start_line - 1 : decl_ci.end_line]
            )
            if "is_idle" not in mc.methods:
                if not re.search(r"\bis_idle\s*\(", extent):
                    self._emit(
                        sf,
                        mc.decl_site[1],
                        "XL201",
                        f"module '{mc.name}' never overrides is_idle(): the gated "
                        "scheduler would never skip it, and DESIGN.md §9 requires an "
                        "explicit quiescence claim for every concrete module — "
                        "override it (return false is an acceptable claim) or "
                        "annotate idle-ok(<reason>)",
                    )
                    continue
                self._check_next_event(mc, sf, extent, file_by_path)
                continue
            member_names = {name for _f, _t, _l, name in mc.members}
            idle_tokens = set(IDENT_RE.findall(mc.methods["is_idle"]))
            reach_tokens: set[str] = set()
            for name in mc.tick_reachable():
                reach_tokens.update(IDENT_RE.findall(mc.methods[name]))
            coupled = idle_tokens & member_names & reach_tokens
            if not coupled and mc.tick_reachable():
                path, line = mc.method_sites.get("is_idle", mc.decl_site)
                self._emit(
                    file_by_path.get(path, sf),
                    line,
                    "XL202",
                    f"'{mc.name}::is_idle' references none of the members its tick "
                    "path touches: a quiescence claim decoupled from the state it "
                    "guards rots silently (kernel_equiv/quiescence tests catch it "
                    "only dynamically) — read the gating state or annotate "
                    "idle-ok(<reason>)",
                )
            self._check_next_event(mc, sf, extent, file_by_path)

    def _check_next_event(
        self,
        mc: MergedClass,
        sf: SourceFile,
        extent: str,
        file_by_path: dict[str, SourceFile],
    ) -> None:
        """XL203: a module that both claims quiescence (overrides
        is_idle) and behaves time-drivenly — its tick path reads the
        kernel clock, or it tracks a due/deadline member — must declare
        its wake cycle via next_event(). Under the time-leap scheduler a
        sleeping module is revisited only at its declared next_event (or
        on a signal wake); a time-driven sleeper without one oversleeps
        the very cycle its state names, and only the differential suite
        would catch it — dynamically, per scenario."""
        if "next_event" in mc.methods or re.search(r"\bnext_event\s*\(", extent):
            return
        reach = mc.tick_reachable()
        if not reach:
            return
        reads_clock = any(CYCLE_READ_RE.search(mc.methods[m]) for m in reach)
        due_member = next(
            (
                (path, line, name)
                for path, _type, line, name in mc.members
                if DUE_MEMBER_RE.search(name)
            ),
            None,
        )
        if not reads_clock and due_member is None:
            return
        if reads_clock:
            path, line = mc.method_sites.get("is_idle", mc.decl_site)
            why = "reads Kernel::cycle() on its tick path"
            if due_member is not None:
                why += f" and holds due/deadline member '{due_member[2]}'"
        else:
            path, line, name = due_member
            why = f"holds due/deadline member '{name}'"
        self._emit(
            file_by_path.get(path, sf),
            line,
            "XL203",
            f"module '{mc.name}' overrides is_idle() and {why} but never "
            "overrides next_event(): the time-leap scheduler revisits a "
            "sleeping module only at its declared wake cycle, so a "
            "time-driven sleeper without one oversleeps its own deadline — "
            "declare the wake (sim::Module::next_event contract, "
            "src/sim/kernel.hpp) or annotate next-event-ok(<reason>)",
        )
