"""Model builders: libclang (clang.cindex) when importable, regex otherwise.

The libclang backend resolves class bases, member types and method
extents from the AST — immune to macro/formatting edge cases the regex
backend approximates. Both produce the same SourceFile model, and every
check runs identically on either; the regex backend is the floor the
fixture suite pins, so environments without libclang (this repo's
container, minimal CI runners) lose precision, not coverage.

Backend selection (xlint.py --backend):
    auto   libclang if clang.cindex imports AND a library loads; else regex
    regex  force the regex backend
    clang  require libclang; exit with an error if unavailable
"""

from __future__ import annotations

from .checks import KNOWN_SLUGS
from .model import (
    ClassInfo,
    FunctionInfo,
    SourceFile,
    build_regex_model,
    parse_suppressions,
    strip_comments,
)


def load_cindex():
    """Returns a configured clang.cindex module, or None."""
    try:
        from clang import cindex  # type: ignore[import-not-found]
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:  # library present but unloadable: fall back
        for lib in (
            "libclang.so",
            "libclang-17.so",
            "libclang-16.so",
            "libclang-15.so",
            "libclang-14.so",
        ):
            try:
                cindex.Config.loaded = False
                cindex.Config.set_library_file(lib)
                cindex.Index.create()
                return cindex
            except Exception:
                continue
    return None


def build_clang_model(cindex, path: str, raw: str, compile_args: list[str]) -> SourceFile:
    """AST-accurate SourceFile. Suppressions still come from the raw
    comment scan (libclang drops comments outside -fparse-all-comments)."""
    code, comments = strip_comments(raw)
    sf = SourceFile(path=path, raw=raw, code=code)
    sups, expects, errors = parse_suppressions(comments, KNOWN_SLUGS)
    sf.suppressions = sups
    sf.expects = expects
    sf.syntax_errors = errors  # type: ignore[attr-defined]

    index = cindex.Index.create()
    tu = index.parse(path, args=compile_args, unsaved_files=[(path, raw)])
    lines = code.split("\n")

    def text_of(extent) -> str:
        s, e = extent.start, extent.end
        if s.line == e.line:
            return lines[s.line - 1][s.column - 1 : e.column - 1]
        chunk = [lines[s.line - 1][s.column - 1 :]]
        chunk.extend(lines[s.line : e.line - 1])
        chunk.append(lines[e.line - 1][: e.column - 1])
        return "\n".join(chunk)

    K = cindex.CursorKind

    def visit(cursor, enclosing_class: ClassInfo | None):
        for child in cursor.get_children():
            if child.location.file is None or str(child.location.file) != path:
                continue
            kind = child.kind
            if kind in (K.CLASS_DECL, K.STRUCT_DECL) and child.is_definition():
                ci = ClassInfo(
                    name=child.spelling,
                    bases=", ".join(
                        b.type.spelling
                        for b in child.get_children()
                        if b.kind == K.CXX_BASE_SPECIFIER
                    ),
                    start_line=child.extent.start.line,
                    end_line=child.extent.end.line,
                )
                sf.classes.append(ci)
                visit(child, ci)
                continue
            if kind == K.FIELD_DECL and enclosing_class is not None:
                enclosing_class.members.append(
                    (child.location.line, child.type.spelling, child.spelling)
                )
            elif kind in (K.CXX_METHOD, K.CONSTRUCTOR, K.DESTRUCTOR, K.FUNCTION_DECL):
                if getattr(child, "is_pure_virtual_method", lambda: False)():
                    if enclosing_class is not None:
                        enclosing_class.has_pure_virtual = True
                if child.is_definition():
                    body = text_of(child.extent)
                    brace = body.find("{")
                    fn = FunctionInfo(
                        name=child.spelling,
                        qualifier=(
                            enclosing_class.name
                            if enclosing_class is not None
                            else (
                                child.semantic_parent.spelling
                                if child.semantic_parent is not None
                                and child.semantic_parent.kind
                                in (K.CLASS_DECL, K.STRUCT_DECL)
                                else ""
                            )
                        ),
                        start_line=child.extent.start.line,
                        end_line=child.extent.end.line,
                        body=body[brace + 1 : -1] if brace != -1 else body,
                        signature=body[:brace] if brace != -1 else body,
                    )
                    sf.functions.append(fn)
                    if enclosing_class is not None:
                        enclosing_class.methods.setdefault(fn.name, fn)
                visit(child, enclosing_class)
            elif kind in (K.NAMESPACE, K.UNEXPOSED_DECL, K.LINKAGE_SPEC):
                visit(child, enclosing_class)

    visit(tu.cursor, None)
    return sf


def build_model(path: str, raw: str, backend: str, cindex, compile_args: list[str]) -> SourceFile:
    if backend != "regex" and cindex is not None:
        try:
            return build_clang_model(cindex, path, raw, compile_args)
        except Exception:
            if backend == "clang":
                raise
    return build_regex_model(path, raw, KNOWN_SLUGS)
