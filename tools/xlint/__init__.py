"""xlint: project-specific determinism & kernel-contract static analysis.

See docs/LINTING.md and `python3 tools/xlint/xlint.py --list-checks`.
"""
