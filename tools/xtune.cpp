// xtune — closed-loop design-space auto-tuning.
//
// Reads a tuning specification (src/tune/spec.hpp grammar; docs/FORMATS.md
// §4 is the reference), searches the declared axes with successive halving
// + hill climbing against the weighted objective, optionally
// bisection-searches the winner's saturation injection rate, and emits the
// Pareto-optimal configurations as ready-to-run .noc files. The whole run
// is deterministic at any --jobs: same spec, same trajectory, same winner.
// Usage:
//
//   xtune <spec.tune> [options]
//     --jobs N                worker threads (default: hardware concurrency)
//     --out-dir <dir>         emit winner + Pareto configs as .noc files
//     --trajectory-csv <path> write the tuning trajectory as CSV
//     --trajectory-json <path> write the trajectory + verdict as JSON
//     --verify                re-parse the winner's emitted .noc text and
//                             re-simulate it; fail unless the metrics
//                             reproduce (the emission-fidelity check CI runs)
//     --print-spec            echo the canonical specification and exit
//     --quiet                 suppress per-evaluation progress lines
//
// Example:
//   xtune examples/mesh_tune.tune --jobs 8 --out-dir tuned --verify
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "src/compiler/spec_io.hpp"
#include "src/sweep/runner.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"
#include "src/tune/spec.hpp"
#include "src/tune/tuner.hpp"
#include "src/workload/benchmarks.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <spec.tune> [--jobs N] [--out-dir <dir>]\n"
               "          [--trajectory-csv <path>] [--trajectory-json "
               "<path>]\n"
               "          [--verify] [--print-spec] [--quiet]\n",
               argv0);
}

/// `--verify`: the emitted-spec fidelity check. Round-trips the winner
/// through write_spec/parse_spec text, rebuilds the network from the
/// *parsed* spec (injecting only what a .noc deliberately omits: RNG seed
/// and the NI/slave timing knobs), re-simulates, and compares against the
/// tuner's recorded metrics. A mismatch means the .noc format dropped a
/// parameter that matters — exactly the regression this guards against.
bool verify_emission(const xpl::tune::TuneSpec& tspec,
                     const xpl::tune::TuneEval& winner) {
  using namespace xpl;
  const std::size_t config = winner.config;
  const std::string text =
      compiler::write_spec(tune::to_noc_spec(tspec, config));
  compiler::NocSpec parsed = compiler::parse_spec(text);

  const sweep::SweepPoint p = tspec.config_point(config);
  parsed.net.seed = p.net.seed;
  parsed.net.max_outstanding = p.net.max_outstanding;
  parsed.net.slave_latency = p.net.slave_latency;
  parsed.net.bit_error_rate = p.net.bit_error_rate;

  const compiler::XpipesCompiler xpipes;
  const auto network = xpipes.build_simulation(parsed);
  traffic::TrafficConfig traffic_cfg = p.traffic;
  if (!p.app.empty()) {
    traffic_cfg.weights = workload::benchmark_weights(
        workload::benchmark(p.app), parsed.topo);
  }
  traffic::TrafficDriver driver(*network, traffic_cfg);
  driver.run(p.sim_cycles);
  network->run_until_quiescent(p.drain_cycles);
  const auto stats =
      traffic::collect_run(*network, p.sim_cycles, p.warmup);

  auto close = [](double got, double want) {
    const double tol = 1e-9 * std::max(1.0, std::fabs(want));
    return std::fabs(got - want) <= tol;
  };
  const auto& want = winner.result;
  if (stats.transactions == want.transactions &&
      close(stats.latency.mean, want.avg_latency_cycles) &&
      close(stats.throughput, want.throughput_tpc)) {
    std::printf("verify: %s re-simulates identically "
                "(%llu transactions, lat %.6g, thru %.6g)\n",
                tspec.config_label(config).c_str(),
                static_cast<unsigned long long>(stats.transactions),
                stats.latency.mean, stats.throughput);
    return true;
  }
  std::fprintf(stderr,
               "verify FAILED for %s:\n"
               "  transactions %llu vs %llu\n"
               "  avg latency  %.12g vs %.12g\n"
               "  throughput   %.12g vs %.12g\n",
               tspec.config_label(config).c_str(),
               static_cast<unsigned long long>(stats.transactions),
               static_cast<unsigned long long>(want.transactions),
               stats.latency.mean, want.avg_latency_cycles,
               stats.throughput, want.throughput_tpc);
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xpl;
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }

  std::string spec_path;
  std::string out_dir;
  std::string csv_path;
  std::string json_path;
  std::size_t jobs = 0;
  bool verify = false;
  bool print_spec = false;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      jobs = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--out-dir") {
      out_dir = next();
    } else if (arg == "--trajectory-csv") {
      csv_path = next();
    } else if (arg == "--trajectory-json") {
      json_path = next();
    } else if (arg == "--verify") {
      verify = true;
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      std::fprintf(stderr, "unexpected argument %s\n", arg.c_str());
      return 2;
    }
  }
  if (spec_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    const tune::TuneSpec spec = tune::load_tune(spec_path);
    if (print_spec) {
      std::fputs(tune::write_tune(spec).c_str(), stdout);
      return 0;
    }

    sweep::SweepRunner runner(jobs);
    std::printf("tune '%s': %zu config(s), budget %zu, %zu worker(s)\n",
                spec.name.c_str(), spec.num_configs(), spec.budget,
                runner.jobs());

    tune::Tuner tuner(runner);
    if (!quiet) {
      tuner.on_eval = [&](const tune::TuneEval& ev) {
        const std::string status =
            ev.result.ok ? "ok" : "FAILED: " + ev.result.error;
        std::printf("[%zu/%zu] %-10s %-24s cyc %-6zu rate %-7.4g %s\n",
                    ev.eval + 1, spec.budget, ev.stage.c_str(),
                    spec.config_label(ev.config).c_str(), ev.cycles,
                    ev.result.point.traffic.injection_rate, status.c_str());
      };
    }

    const tune::TuneReport report = tuner.run(spec);
    std::printf("\n%s", report.summary().c_str());

    if (!csv_path.empty()) {
      std::ofstream out(csv_path);
      if (!out.good()) {
        std::fprintf(stderr, "cannot open %s\n", csv_path.c_str());
        return 1;
      }
      out << report.trajectory_csv();
    }
    if (!json_path.empty()) {
      std::ofstream out(json_path);
      if (!out.good()) {
        std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
        return 1;
      }
      out << report.trajectory_json();
    }

    if (report.best == tune::TuneReport::npos) {
      std::fprintf(stderr,
                   "xtune: no configuration completed at full fidelity\n");
      return 1;
    }

    if (!out_dir.empty()) {
      // Winner + Pareto front, config-deduped, as ready-to-run .noc files.
      std::filesystem::create_directories(out_dir);
      std::set<std::size_t> configs{report.winner().config};
      for (const std::size_t i : report.pareto) {
        configs.insert(report.trajectory[i].config);
      }
      for (const std::size_t c : configs) {
        const compiler::NocSpec noc = tune::to_noc_spec(spec, c);
        const std::string path = out_dir + "/" + noc.name + ".noc";
        compiler::save_spec(noc, path);
        std::printf("emitted %s%s\n", path.c_str(),
                    c == report.winner().config ? "  (winner)" : "");
      }
    }

    if (verify && !verify_emission(spec, report.winner())) return 1;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xtune: %s\n", e.what());
    return 1;
  }
}
