#!/usr/bin/env python3
"""Fails when an intra-repo markdown link points at a missing file.

Scans every tracked *.md file for inline links/images `[text](target)`
and reference definitions `[label]: target`, resolves repo-relative and
document-relative targets, and reports targets that do not exist.
External links (http/https/mailto) and pure in-page anchors (#...) are
skipped; a `path#anchor` target only checks `path`. Run from anywhere:

    python3 scripts/check_md_links.py
"""
import argparse
import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Inline [text](target) — target ends at the first unescaped ')' or
# space (titles like [t](x "y") carry a space before the quote).
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Reference definition: [label]: target
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def md_files():
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"], capture_output=True,
        text=True, check=True, cwd=REPO)
    return [f for f in out.stdout.splitlines() if f]


def check_file(md):
    text = open(os.path.join(REPO, md), encoding="utf-8").read()
    # Fenced code blocks show literal link syntax; don't lint those.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    broken = []
    for target in INLINE.findall(text) + REFDEF.findall(text):
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue
        if path.startswith("/"):  # repo-absolute
            resolved = os.path.join(REPO, path.lstrip("/"))
        else:  # relative to the linking document
            resolved = os.path.join(REPO, os.path.dirname(md), path)
        if not os.path.exists(resolved):
            broken.append(target)
    return broken


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="check_md_links", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the all-clear summary line",
    )
    args = parser.parse_args(argv)
    bad = 0
    files = md_files()
    for md in files:
        for target in check_file(md):
            print(f"{md}: broken link -> {target}", file=sys.stderr)
            bad += 1
    if bad:
        print(f"{bad} broken intra-repo markdown link(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"markdown links ok across {len(files)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
