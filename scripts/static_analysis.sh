#!/usr/bin/env bash
# One entry point for the repo's static gates: clang-tidy (profile in
# .clang-tidy), xlint (tools/xlint — determinism & kernel-contract
# checks), and ruff (ruff.toml) over the helper scripts.
#
#   scripts/static_analysis.sh                 # full tree
#   scripts/static_analysis.sh --changed-from origin/main
#   scripts/static_analysis.sh --strict        # missing tools = failure
#
# Changed-file mode limits clang-tidy and xlint to C++ files touched
# since the given ref (headers widen to the whole tree for xlint, whose
# class merge is cross-file). The CI static-analysis job runs --strict
# with --changed-from on pull requests and the full tree on the weekly
# schedule; see .github/workflows/ci.yml.
#
# clang-tidy results are cached under BUILD_DIR/tidy-cache keyed on the
# content hash of (the file, every header in src/, .clang-tidy), so
# unchanged files cost nothing on re-runs — CI persists that directory
# across jobs the way it persists ccache.
#
# The dev container ships only gcc: without --strict, missing tools are
# skipped with a notice and xlint (stdlib Python) remains the floor.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build
STRICT=0
CHANGED_FROM=""
RUN_TIDY=1
RUN_XLINT=1
RUN_RUFF=1

usage() {
  sed -n '2,19p' "$0" | sed 's/^# \{0,1\}//'
}

while [[ $# -gt 0 ]]; do
  case "$1" in
    --changed-from) CHANGED_FROM="$2"; shift 2 ;;
    --build-dir) BUILD_DIR="$2"; shift 2 ;;
    --strict) STRICT=1; shift ;;
    --no-tidy) RUN_TIDY=0; shift ;;
    --no-xlint) RUN_XLINT=0; shift ;;
    --no-ruff) RUN_RUFF=0; shift ;;
    -h|--help) usage; exit 0 ;;
    *) echo "static_analysis.sh: unknown option '$1'" >&2; usage >&2; exit 2 ;;
  esac
done

FAILED=()
SKIPPED=()

note() { echo "== static-analysis: $*"; }

missing_tool() {
  local tool="$1"
  if [[ "$STRICT" == 1 ]]; then
    note "$tool not found and --strict is set"
    FAILED+=("$tool (missing)")
  else
    note "$tool not found; skipping (xlint is the container floor)"
    SKIPPED+=("$tool")
  fi
}

# --- changed-file selection -------------------------------------------
# CHANGED_CPP: .cpp files for clang-tidy. CHANGED_ANY: every changed
# C++ file for xlint; a header change makes xlint run the whole tree
# (its module-contract merge spans files).
CHANGED_CPP=()
XLINT_ARGS=()
if [[ -n "$CHANGED_FROM" ]]; then
  mapfile -t changed < <(git diff --name-only --diff-filter=d "$CHANGED_FROM" -- \
    'src/*.cpp' 'src/*.hpp' 'src/**/*.cpp' 'src/**/*.hpp' | sort -u)
  header_changed=0
  for f in "${changed[@]}"; do
    case "$f" in
      *.cpp) CHANGED_CPP+=("$f") ;;
      *.hpp) header_changed=1 ;;
    esac
  done
  if [[ "$header_changed" == 0 && ${#changed[@]} -gt 0 ]]; then
    XLINT_ARGS=("${changed[@]}")
  fi
  # Tooling/config changes invalidate the narrow selection entirely.
  if git diff --name-only --diff-filter=d "$CHANGED_FROM" -- \
      tools/xlint .clang-tidy | grep -q .; then
    XLINT_ARGS=()
    mapfile -t CHANGED_CPP < <(git ls-files 'src/*.cpp' 'src/**/*.cpp' | sort -u)
  fi
  note "changed-from $CHANGED_FROM: ${#changed[@]} C++ file(s)"
fi

# --- clang-tidy -------------------------------------------------------
if [[ "$RUN_TIDY" == 1 ]]; then
  if ! command -v clang-tidy >/dev/null 2>&1; then
    missing_tool clang-tidy
  else
    if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
      note "generating $BUILD_DIR/compile_commands.json"
      cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
    fi
    if [[ -n "$CHANGED_FROM" ]]; then
      tidy_files=("${CHANGED_CPP[@]}")
    else
      mapfile -t tidy_files < <(git ls-files 'src/*.cpp' 'src/**/*.cpp' | sort -u)
    fi
    if [[ ${#tidy_files[@]} -eq 0 ]]; then
      note "clang-tidy: nothing to do"
    else
      CACHE_DIR="$BUILD_DIR/tidy-cache"
      mkdir -p "$CACHE_DIR"
      # Key = this file + every header + the profile: header edits
      # invalidate everything (cheap and safe), file edits only that file.
      headers_hash=$(git ls-files 'src/*.hpp' 'src/**/*.hpp' | sort -u \
        | xargs cat | sha256sum | cut -d' ' -f1)
      export CACHE_DIR BUILD_DIR headers_hash
      tidy_one() {
        local f="$1"
        local key
        key=$(cat .clang-tidy "$f" <(echo "$headers_hash") | sha256sum | cut -d' ' -f1)
        if [[ -f "$CACHE_DIR/$key" ]]; then
          return 0
        fi
        if clang-tidy -p "$BUILD_DIR" --quiet "$f"; then
          touch "$CACHE_DIR/$key"
        else
          return 1
        fi
      }
      export -f tidy_one
      note "clang-tidy over ${#tidy_files[@]} file(s) (cache: $CACHE_DIR)"
      if ! printf '%s\0' "${tidy_files[@]}" \
          | xargs -0 -n1 -P "$(nproc)" bash -c 'tidy_one "$1"' _; then
        FAILED+=("clang-tidy")
      fi
    fi
  fi
fi

# --- xlint ------------------------------------------------------------
if [[ "$RUN_XLINT" == 1 ]]; then
  note "xlint (${XLINT_ARGS[*]:-full tree})"
  if ! python3 tools/xlint/xlint.py "${XLINT_ARGS[@]}"; then
    FAILED+=("xlint")
  fi
fi

# --- ruff -------------------------------------------------------------
if [[ "$RUN_RUFF" == 1 ]]; then
  if ! command -v ruff >/dev/null 2>&1; then
    missing_tool ruff
  else
    note "ruff check ."
    if ! ruff check .; then
      FAILED+=("ruff")
    fi
  fi
fi

# --- summary ----------------------------------------------------------
if [[ ${#SKIPPED[@]} -gt 0 ]]; then
  note "skipped: ${SKIPPED[*]}"
fi
if [[ ${#FAILED[@]} -gt 0 ]]; then
  note "FAILED: ${FAILED[*]}"
  exit 1
fi
note "clean"
