#!/usr/bin/env python3
"""Compare two BENCH_*.json perf records and print per-benchmark deltas.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--fail-below PCT]
    bench_compare.py --auto-baseline CURRENT.json [--fail-below PCT]

With --auto-baseline the baseline is the committed BENCH_pr<N>.json with
the highest N (searched next to this script's repo root, or in
--baseline-dir). CI uses this mode so the comparison step never needs a
hand-bumped filename when a new PR lands its record.

Both files follow the bench_sim_speed / xsweep record shape:

    {"bench": "sim_speed", "results": [
        {"name": "BM_FlitHop/width:32/...", "items_per_s": 123.4, ...},
        ...]}

Benchmarks are matched by name. The report lists matched benchmarks with
their items/s delta, then names entries present in only one record
(benchmark parametrizations change across PRs; that is informational,
not an error). With --fail-below PCT the script exits nonzero if any
matched benchmark regressed by more than PCT percent — CI runs it
report-only by default so a noisy shared runner cannot block a merge.

--require-min-ratio PREFIX:RATIO (repeatable) is the opposite gate: it
demands an *improvement*, exiting nonzero unless every matched benchmark
whose name starts with PREFIX runs at >= RATIO x the baseline. CI uses
it to hold the activity-gated kernel to its speedup claim against the
last pre-gating record (BM_IdleCycles vs BENCH_pr6.json); the required
ratio is far above runner noise, so this gate is safe to make blocking.

--require-pair-ratio CURRENT=BASELINE=RATIO (repeatable) gates a
*renamed* benchmark against a differently-named baseline entry: exit
nonzero unless current[CURRENT] runs at >= RATIO x baseline[BASELINE].
'=' separates the fields because benchmark names contain ':'
(e.g. BM_LoadedCycles/mesh:8/flow:0). CI uses it to hold the
partitioned-at-threads=1 twins to bounded overhead against the
unpartitioned pre-partitioning record.
"""

import argparse
import glob
import json
import os
import re
import sys


def newest_committed_baseline(directory):
    """Returns the BENCH_pr<N>.json with the highest N, or None."""
    best = None
    best_n = -1
    for path in glob.glob(os.path.join(directory, "BENCH_pr*.json")):
        m = re.fullmatch(r"BENCH_pr(\d+)\.json", os.path.basename(path))
        if m and int(m.group(1)) > best_n:
            best_n = int(m.group(1))
            best = path
    return best


def load_results(path):
    with open(path, "r", encoding="utf-8") as f:
        record = json.load(f)
    results = {}
    for entry in record.get("results", []):
        name = entry.get("name")
        if name:
            results[name] = entry
    return record.get("bench", "?"), results


def fmt_rate(value):
    if value is None:
        return "-"
    if value >= 1e6:
        return f"{value / 1e6:.2f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.1f}"


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", nargs="?", default=None)
    parser.add_argument("current")
    parser.add_argument(
        "--auto-baseline",
        action="store_true",
        help="baseline = committed BENCH_pr<N>.json with the highest N",
    )
    parser.add_argument(
        "--baseline-dir",
        default=None,
        metavar="DIR",
        help="where --auto-baseline searches (default: the repo root)",
    )
    parser.add_argument(
        "--fail-below",
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 if any matched benchmark regressed more than PCT%%",
    )
    parser.add_argument(
        "--require-min-ratio",
        action="append",
        default=[],
        metavar="PREFIX:RATIO",
        help="exit 1 unless every matched benchmark whose name starts "
             "with PREFIX runs at >= RATIO x the baseline (repeatable)",
    )
    parser.add_argument(
        "--require-pair-ratio",
        action="append",
        default=[],
        metavar="CURRENT=BASELINE=RATIO",
        help="exit 1 unless the CURRENT benchmark in the current record "
             "runs at >= RATIO x the BASELINE benchmark in the baseline "
             "record ('=' separators: names contain ':'; repeatable)",
    )
    args = parser.parse_args()

    requirements = []
    for spec in args.require_min_ratio:
        prefix, sep, ratio = spec.rpartition(":")
        if not sep or not prefix:
            parser.error(f"--require-min-ratio wants PREFIX:RATIO, got {spec!r}")
        try:
            requirements.append((prefix, float(ratio)))
        except ValueError:
            parser.error(f"bad ratio in --require-min-ratio {spec!r}")

    pair_requirements = []
    for spec in args.require_pair_ratio:
        fields = spec.split("=")
        if len(fields) != 3 or not fields[0] or not fields[1]:
            parser.error(
                f"--require-pair-ratio wants CURRENT=BASELINE=RATIO, "
                f"got {spec!r}")
        try:
            pair_requirements.append((fields[0], fields[1], float(fields[2])))
        except ValueError:
            parser.error(f"bad ratio in --require-pair-ratio {spec!r}")

    if args.auto_baseline:
        if args.baseline is not None:
            parser.error("--auto-baseline replaces the BASELINE argument")
        directory = args.baseline_dir or os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))
        args.baseline = newest_committed_baseline(directory)
        if args.baseline is None:
            print(f"no committed BENCH_pr*.json under {directory}; "
                  "nothing to compare against")
            return 0
    elif args.baseline is None:
        parser.error("BASELINE argument or --auto-baseline required")

    base_kind, base = load_results(args.baseline)
    cur_kind, cur = load_results(args.current)

    print(f"baseline: {args.baseline} ({base_kind}, {len(base)} entries)")
    print(f"current:  {args.current} ({cur_kind}, {len(cur)} entries)")
    print()

    matched = sorted(set(base) & set(cur))
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))

    worst = 0.0
    if matched:
        width = max(len(name) for name in matched)
        print(f"{'benchmark':<{width}}  {'base':>10}  {'current':>10}  delta")
        for name in matched:
            b = base[name].get("items_per_s")
            c = cur[name].get("items_per_s")
            if b and c and b > 0:
                pct = 100.0 * (c - b) / b
                worst = min(worst, pct)
                delta = f"{pct:+.1f}%"
            else:
                delta = "-"
            print(f"{name:<{width}}  {fmt_rate(b):>10}  {fmt_rate(c):>10}  "
                  f"{delta}")
        print()

    if only_base:
        print(f"only in baseline ({len(only_base)}):")
        for name in only_base:
            print(f"  {name}")
    if only_cur:
        print(f"only in current ({len(only_cur)}):")
        for name in only_cur:
            print(f"  {name}")

    failed = False
    for prefix, ratio in requirements:
        names = [n for n in matched if n.startswith(prefix)]
        if not names:
            print(f"FAIL: --require-min-ratio {prefix}:{ratio:g} matched "
                  "no benchmark present in both records")
            failed = True
            continue
        for name in names:
            b = base[name].get("items_per_s")
            c = cur[name].get("items_per_s")
            if not b or not c or b <= 0:
                print(f"FAIL: {name}: no items_per_s to hold to "
                      f">= {ratio:g}x")
                failed = True
                continue
            achieved = c / b
            verdict = "ok" if achieved >= ratio else "FAIL"
            print(f"{verdict}: {name}: {achieved:.2f}x baseline "
                  f"(required >= {ratio:g}x)")
            failed = failed or achieved < ratio

    for cur_name, base_name, ratio in pair_requirements:
        b = base.get(base_name, {}).get("items_per_s")
        c = cur.get(cur_name, {}).get("items_per_s")
        if not b or not c or b <= 0:
            print(f"FAIL: --require-pair-ratio {cur_name} vs {base_name}: "
                  "missing entry or no items_per_s")
            failed = True
            continue
        achieved = c / b
        verdict = "ok" if achieved >= ratio else "FAIL"
        print(f"{verdict}: {cur_name}: {achieved:.2f}x {base_name} "
              f"(required >= {ratio:g}x)")
        failed = failed or achieved < ratio

    if args.fail_below is not None and worst < -args.fail_below:
        print(f"\nFAIL: worst regression {worst:.1f}% exceeds "
              f"-{args.fail_below:.1f}%")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
