#include "src/noc/network.hpp"

#include <algorithm>
#include <string>

#include "src/common/error.hpp"
#include "src/topology/partition.hpp"

namespace xpl::noc {

namespace {

// Largest pipeline depth over all links: kept as the reference uniform
// protocol (SwitchConfig::protocol); the actual per-port endpoints are
// sized per link below.
std::size_t max_link_stages(const topology::Topology& topo) {
  std::size_t stages = 0;
  for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
    stages = std::max(stages, topo.link(l).stages);
  }
  return stages;
}

}  // namespace

Network::Network(topology::Topology topo, const NetworkConfig& config)
    : topo_(std::move(topo)), config_(config), kernel_(config.scheduler) {
  topo_.validate();
  // Credit flow control never retransmits, so it is only legal over
  // reliable links — the protocol asymmetry the paper builds on.
  require(config.flow != link::FlowControl::kCredit ||
              config.bit_error_rate == 0.0,
          "Network: credit flow control requires reliable links "
          "(bit_error_rate == 0)");
  require(config.vcs >= 1 && config.vcs <= link::kMaxVcs,
          "Network: vcs must be in [1, " + std::to_string(link::kMaxVcs) +
              "]");
  routes_ = topology::compute_all_routes(topo_, config.routing);
  // Lane policy: dateline discipline exactly when minimal routes meet
  // dateline-marked links with more than one lane; otherwise packets keep
  // their initiator-chosen lane. The checker analyses the same channels
  // the switches will use.
  const topology::VcPolicy vc_policy =
      topology::make_vc_policy(topo_, config.routing, config.vcs);
  deadlock_ = topology::check_deadlock(topo_, routes_, vc_policy);
  if (config.require_deadlock_free) {
    require(deadlock_.deadlock_free,
            "Network: routing tables can deadlock (" +
                deadlock_.to_string(topo_) + "); use XY/up-down routing, "
                "add virtual channels (vcs >= 2 enables dateline minimal "
                "routing on rings/tori/spidergons), or set "
                "require_deadlock_free = false");
  }

  // ---- Derive the packet format from the instantiated network.
  format_.flit_width = config.flit_width;
  format_.beat_width = config.beat_width;
  format_.header = HeaderFormat::for_network(
      topo_.max_radix_out(), topo_.num_nis(), routes_.max_hops(),
      bits_for(config.target_window), config.max_burst, config.num_threads);
  format_.validate();
  // Route-field consistency against the topology actually instantiated:
  // an undersized port or hop budget would silently truncate selectors
  // when headers are packed (SwitchConfig::validate() checks the
  // switch-local half of this invariant).
  require(std::size_t{1} << format_.header.port_bits >=
              topo_.max_radix_out(),
          "Network: header port_bits cannot address the widest switch");
  require(format_.header.max_hops >= routes_.max_hops(),
          "Network: header route field shorter than the longest route");

  // Per-link protocol sizing: each link's go-back-N window covers *its*
  // round trip (the compiler's per-instance buffer optimization); NI
  // attachment links are local and get the minimum window. The uniform
  // worst-case config is kept for reference in the switch configs'
  // `protocol` field.
  link::ProtocolConfig protocol =
      link::ProtocolConfig::for_link(max_link_stages(topo_), config.crc);
  protocol.vcs = config.vcs;
  link::ProtocolConfig ni_protocol =
      link::ProtocolConfig::for_link(0, config.crc);
  ni_protocol.vcs = config.vcs;
  std::vector<link::ProtocolConfig> link_protocol;
  for (std::uint32_t l = 0; l < topo_.num_links(); ++l) {
    link_protocol.push_back(
        link::ProtocolConfig::for_link(topo_.link(l).stages, config.crc));
    link_protocol.back().vcs = config.vcs;
  }
  auto protocol_for = [&](const topology::PortRef& ref) {
    return ref.kind == topology::PortRef::Kind::kLink
               ? link_protocol[ref.id]
               : ni_protocol;
  };

  initiator_ids_ = topo_.initiator_ids();
  target_ids_ = topo_.target_ids();

  // ---- Partition assignment (DESIGN.md §10). Everything downstream —
  // wire creation, module creation, registration — tags each element
  // with its switch's partition; signal/module *creation order* stays
  // exactly the unpartitioned sequence, so digests and exports are
  // byte-identical at any partition count.
  const std::size_t parts = std::min<std::size_t>(
      std::max<std::size_t>(config.partitions, 1), topo_.num_switches());
  if (parts > 1) {
    switch_partition_ = topology::partition_switches(topo_, parts);
    kernel_.configure_partitions(parts, std::max<std::size_t>(
                                            config.sim_threads, 1));
  } else {
    switch_partition_.assign(topo_.num_switches(), 0);
  }
  auto switch_part = [&](std::uint32_t s) {
    return static_cast<std::size_t>(switch_partition_[s]);
  };
  auto ni_part = [&](std::uint32_t n) {
    return switch_part(topo_.ni(n).switch_id);
  };

  // ---- Allocate wires: one LinkWires pair per topology link and per NI
  // attachment direction. Each endpoint's wires join the partition of
  // the switch that drives or consumes them: for a cut link the up pair
  // stays with the sender's partition and the down pair with the
  // receiver's, so no signal ever crosses a partition.
  struct WirePair {
    link::LinkWires up;    // sender side
    link::LinkWires down;  // receiver side
  };
  auto make_pair = [&](std::size_t up_part, std::size_t down_part) {
    kernel_.set_creation_partition(up_part);
    const link::LinkWires up = link::LinkWires::make(kernel_);
    kernel_.set_creation_partition(down_part);
    const link::LinkWires down = link::LinkWires::make(kernel_);
    return WirePair{up, down};
  };

  std::vector<WirePair> link_wires;  // per topology link id
  for (std::uint32_t l = 0; l < topo_.num_links(); ++l) {
    link_wires.push_back(make_pair(switch_part(topo_.link(l).from),
                                   switch_part(topo_.link(l).to)));
  }
  std::vector<WirePair> ni_in_wires;   // NI -> switch, per NI id
  std::vector<WirePair> ni_out_wires;  // switch -> NI, per NI id
  for (std::uint32_t n = 0; n < topo_.num_nis(); ++n) {
    ni_in_wires.push_back(make_pair(ni_part(n), ni_part(n)));
    ni_out_wires.push_back(make_pair(ni_part(n), ni_part(n)));
  }

  // ---- Link modules (error injection only between switches). A link
  // whose endpoints fall in different partitions becomes a CutLink: two
  // half-modules around deterministic mailboxes, bit-exact with the
  // PipelinedLink it replaces (src/link/cut.hpp). link_slots_ records
  // every link in creation order for the uniform statistics view.
  for (std::uint32_t l = 0; l < topo_.num_links(); ++l) {
    link::PipelinedLink::Config lcfg;
    lcfg.stages = topo_.link(l).stages;
    lcfg.bit_error_rate = config.bit_error_rate;
    lcfg.seed = config.seed * 7919 + l;
    const std::string name = "link" + std::to_string(l);
    if (kernel_.partitioned() &&
        switch_part(topo_.link(l).from) != switch_part(topo_.link(l).to)) {
      cut_links_.push_back(std::make_unique<link::CutLink>(
          name, link_wires[l].up, link_wires[l].down, lcfg));
      // Registration order == topology link id order: the exchange
      // sequence at every barrier is deterministic by construction.
      kernel_.register_cut(*cut_links_.back());
      link_slots_.push_back({nullptr, cut_links_.back().get()});
    } else {
      links_.push_back(std::make_unique<link::PipelinedLink>(
          name, link_wires[l].up, link_wires[l].down, lcfg));
      link_slots_.push_back({links_.back().get(), nullptr});
    }
  }
  // NI attachment links: local, reliable, unpipelined — never cut (an
  // NI lives in its switch's partition).
  for (std::uint32_t n = 0; n < topo_.num_nis(); ++n) {
    link::PipelinedLink::Config lcfg;  // stages 0, no errors
    links_.push_back(std::make_unique<link::PipelinedLink>(
        "nilink_in" + std::to_string(n), ni_in_wires[n].up,
        ni_in_wires[n].down, lcfg));
    link_slots_.push_back({links_.back().get(), nullptr});
    links_.push_back(std::make_unique<link::PipelinedLink>(
        "nilink_out" + std::to_string(n), ni_out_wires[n].up,
        ni_out_wires[n].down, lcfg));
    link_slots_.push_back({links_.back().get(), nullptr});
  }

  // Conservative window: each partition may run k cycles between
  // exchanges iff every record a cut stages inside an epoch is due no
  // earlier than the next epoch's start — k <= 1 + stages per cut link
  // (src/link/cut.hpp). Auto = the safe maximum over the actual cuts.
  if (kernel_.partitioned()) {
    std::size_t min_stages = SIZE_MAX;
    for (const auto& cut : cut_links_) {
      min_stages = std::min(min_stages, cut->config().stages);
    }
    std::uint64_t k = min_stages == SIZE_MAX ? 1 : 1 + min_stages;
    if (config.lookahead != 0) {
      k = std::min<std::uint64_t>(k, config.lookahead);
    }
    kernel_.set_lookahead(k);
  }

  // ---- Switches, with wires ordered by the topology port maps.
  for (std::uint32_t s = 0; s < topo_.num_switches(); ++s) {
    const auto in_ports = topo_.input_ports(s);
    const auto out_ports = topo_.output_ports(s);
    std::vector<link::LinkWires> in_wires;
    for (const auto& ref : in_ports) {
      in_wires.push_back(ref.kind == topology::PortRef::Kind::kLink
                             ? link_wires[ref.id].down
                             : ni_in_wires[ref.id].down);
    }
    std::vector<link::LinkWires> out_wires;
    for (const auto& ref : out_ports) {
      out_wires.push_back(ref.kind == topology::PortRef::Kind::kLink
                              ? link_wires[ref.id].up
                              : ni_out_wires[ref.id].up);
    }
    switchlib::SwitchConfig scfg;
    scfg.num_inputs = in_ports.size();
    scfg.num_outputs = out_ports.size();
    scfg.flit_width = config.flit_width;
    scfg.port_bits = format_.header.port_bits;
    scfg.route_bits = format_.header.route_bits();
    scfg.input_fifo_depth = config.input_fifo_depth;
    scfg.output_fifo_depth =
        (s < config.output_fifo_override.size() &&
         config.output_fifo_override[s] != 0)
            ? config.output_fifo_override[s]
            : config.output_fifo_depth;
    scfg.extra_pipeline = config.extra_switch_pipeline;
    scfg.arbiter = config.arbiter;
    scfg.flow = config.flow;
    scfg.protocol = protocol;
    scfg.vcs = config.vcs;
    scfg.vc_map = vc_policy.dateline ? switchlib::VcMap::kDateline
                                     : switchlib::VcMap::kInherit;
    for (const auto& ref : in_ports) {
      scfg.input_protocols.push_back(protocol_for(ref));
      scfg.input_vc_class.push_back(
          ref.kind == topology::PortRef::Kind::kLink
              ? topo_.link(ref.id).vc_class
              : switchlib::SwitchConfig::kNiClass);
    }
    for (const auto& ref : out_ports) {
      scfg.output_protocols.push_back(protocol_for(ref));
      const bool is_link = ref.kind == topology::PortRef::Kind::kLink;
      scfg.output_vc_class.push_back(
          is_link ? topo_.link(ref.id).vc_class
                  : switchlib::SwitchConfig::kNiClass);
      scfg.output_dateline.push_back(is_link &&
                                     topo_.link(ref.id).dateline);
    }
    switches_.push_back(std::make_unique<switchlib::Switch>(
        topo_.switch_node(s).name, scfg, std::move(in_wires),
        std::move(out_wires)));
  }

  // ---- NIs and cores. OCP wires join their NI's partition.
  for (std::size_t i = 0; i < initiator_ids_.size(); ++i) {
    const std::uint32_t node = initiator_ids_[i];
    kernel_.set_creation_partition(ni_part(node));
    const ocp::OcpWires ocp_wires = ocp::OcpWires::make(kernel_);

    ocp::MasterCore::Config mcfg;
    mcfg.max_outstanding = config.max_outstanding;
    masters_.push_back(std::make_unique<ocp::MasterCore>(
        topo_.ni(node).name + "_core", ocp_wires, mcfg));

    ni::InitiatorConfig icfg;
    icfg.format = format_;
    icfg.node_id = node;
    icfg.ocp_req_fifo = mcfg.req_credits;
    icfg.ocp_resp_credits = mcfg.resp_fifo_depth;
    icfg.max_outstanding = config.max_outstanding;
    icfg.flow = config.flow;
    icfg.protocol = ni_protocol;
    icfg.vcs = config.vcs;
    auto ni_mod = std::make_unique<ni::InitiatorNi>(
        topo_.ni(node).name, icfg, ocp_wires, ni_in_wires[node].up,
        ni_out_wires[node].down);
    // Program the address decoder: one window per target.
    for (std::size_t t = 0; t < target_ids_.size(); ++t) {
      const std::uint32_t tgt_node = target_ids_[t];
      ni_mod->lut().add_range(
          ni::AddressRange{target_base(t), config.target_window, tgt_node});
      ni_mod->lut().set_route(tgt_node, routes_.at(node, tgt_node));
    }
    initiator_nis_.push_back(std::move(ni_mod));
  }

  for (std::size_t t = 0; t < target_ids_.size(); ++t) {
    const std::uint32_t node = target_ids_[t];
    kernel_.set_creation_partition(ni_part(node));
    const ocp::OcpWires ocp_wires = ocp::OcpWires::make(kernel_);

    ocp::SlaveCore::Config scfg;
    scfg.latency = config.slave_latency;
    scfg.size_bytes = config.target_window;
    slaves_.push_back(std::make_unique<ocp::SlaveCore>(
        topo_.ni(node).name + "_core", ocp_wires, scfg));

    ni::TargetConfig tcfg;
    tcfg.format = format_;
    tcfg.node_id = node;
    tcfg.ocp_req_credits = scfg.req_fifo_depth;
    tcfg.ocp_resp_fifo = scfg.resp_credits;
    tcfg.flow = config.flow;
    tcfg.protocol = ni_protocol;
    tcfg.vcs = config.vcs;
    auto ni_mod = std::make_unique<ni::TargetNi>(
        topo_.ni(node).name, tcfg, ocp_wires, ni_out_wires[node].down,
        ni_in_wires[node].up);
    for (const std::uint32_t ini_node : initiator_ids_) {
      ni_mod->lut().set_route(ini_node, routes_.at(node, ini_node));
    }
    target_nis_.push_back(std::move(ni_mod));
  }

  // ---- Register everything with the kernel, tagging each module with
  // its partition. Order is irrelevant for two-phase correctness within
  // a class, but the links-after-switches slot is load-bearing for cuts:
  // a cut's sender half samples its upstream wire's *staged* value, so
  // it must tick after every module of its partition that can drive
  // that wire. Each partition's tick list is the order-preserving
  // subsequence of this global order.
  auto add_module_in = [&](sim::Module& m, std::size_t p) {
    kernel_.set_creation_partition(p);
    kernel_.add_module(m);
  };
  for (std::size_t i = 0; i < masters_.size(); ++i) {
    add_module_in(*masters_[i], ni_part(initiator_ids_[i]));
  }
  for (std::size_t i = 0; i < initiator_nis_.size(); ++i) {
    add_module_in(*initiator_nis_[i], ni_part(initiator_ids_[i]));
  }
  for (std::uint32_t s = 0; s < topo_.num_switches(); ++s) {
    add_module_in(*switches_[s], switch_part(s));
  }
  for (std::uint32_t l = 0; l < topo_.num_links(); ++l) {
    const LinkSlot& slot = link_slots_[l];
    if (slot.cut != nullptr) {
      add_module_in(slot.cut->sender_module(),
                    switch_part(topo_.link(l).from));
      add_module_in(slot.cut->receiver_module(),
                    switch_part(topo_.link(l).to));
    } else {
      add_module_in(*slot.pipe, switch_part(topo_.link(l).from));
    }
  }
  for (std::uint32_t n = 0; n < topo_.num_nis(); ++n) {
    const std::size_t base = topo_.num_links() + 2 * n;
    add_module_in(*link_slots_[base].pipe, ni_part(n));
    add_module_in(*link_slots_[base + 1].pipe, ni_part(n));
  }
  for (std::size_t t = 0; t < target_nis_.size(); ++t) {
    add_module_in(*target_nis_[t], ni_part(target_ids_[t]));
  }
  for (std::size_t t = 0; t < slaves_.size(); ++t) {
    add_module_in(*slaves_[t], ni_part(target_ids_[t]));
  }
}

std::vector<Network::LinkStat> Network::link_stats() const {
  std::vector<LinkStat> stats;
  stats.reserve(link_slots_.size());
  for (const LinkSlot& slot : link_slots_) {
    if (slot.cut != nullptr) {
      stats.push_back({slot.cut->name(), slot.cut->flits_carried(),
                       slot.cut->flits_corrupted()});
    } else {
      stats.push_back({slot.pipe->name(), slot.pipe->flits_carried(),
                       slot.pipe->flits_corrupted()});
    }
  }
  return stats;
}

bool Network::quiescent() const {
  for (const auto& m : masters_) {
    if (!m->quiescent()) return false;
  }
  for (const auto& m : initiator_nis_) {
    if (!m->idle()) return false;
  }
  for (const auto& m : target_nis_) {
    if (!m->idle()) return false;
  }
  for (const auto& m : switches_) {
    if (!m->idle()) return false;
  }
  return true;
}

std::uint64_t Network::run_until_quiescent(std::uint64_t max_cycles) {
  return kernel_.run_until([this] { return quiescent(); }, max_cycles);
}

std::uint64_t Network::total_retransmissions() const {
  std::uint64_t total = 0;
  for (const auto& s : switches_) total += s->retransmissions();
  return total;
}

std::uint64_t Network::total_credit_stalls() const {
  std::uint64_t total = 0;
  for (const auto& s : switches_) total += s->credit_stalls();
  for (const auto& n : initiator_nis_) total += n->credit_stalls();
  for (const auto& n : target_nis_) total += n->credit_stalls();
  return total;
}

std::uint64_t Network::total_link_flits() const {
  std::uint64_t total = 0;
  for (const auto& l : links_) total += l->flits_carried();
  for (const auto& c : cut_links_) total += c->flits_carried();
  return total;
}

}  // namespace xpl::noc
