// Whole-network simulation assembly.
//
// Network is the simulation view the xpipesCompiler produces: given a
// Topology and a NetworkConfig it derives the packet format, computes the
// routing tables (and checks them for deadlock), instantiates every NI,
// switch and pipelined link, wires them through kernel signals, programs
// the NI LUTs, and attaches an OCP master/slave core to every NI so
// testbenches and benchmarks can drive real transactions end to end.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/link/cut.hpp"
#include "src/link/flow.hpp"
#include "src/link/link.hpp"
#include "src/ni/ni_initiator.hpp"
#include "src/ni/ni_target.hpp"
#include "src/ocp/agents.hpp"
#include "src/sim/kernel.hpp"
#include "src/switchlib/switch.hpp"
#include "src/topology/deadlock.hpp"
#include "src/topology/routing.hpp"
#include "src/topology/topology.hpp"

namespace xpl::noc {

struct NetworkConfig {
  std::size_t flit_width = 32;   ///< paper sweep: 16 / 32 / 64 / 128
  std::size_t beat_width = 32;   ///< OCP data width
  std::size_t max_burst = 16;    ///< longest burst in beats
  std::size_t num_threads = 4;   ///< OCP thread ids
  std::uint64_t target_window = 1ull << 16;  ///< bytes of address space per target

  topology::RoutingAlgorithm routing =
      topology::RoutingAlgorithm::kShortestPath;
  bool require_deadlock_free = true;  ///< throw if routes can deadlock

  /// Virtual channels (lanes) per link. With vcs > 1 every port gets
  /// per-lane buffers and per-lane flow control; minimal routing on
  /// dateline-marked topologies (ring/torus/spidergon generators) then
  /// uses the dateline lane discipline, which the VC-aware deadlock
  /// checker proves cycle-free. vcs == 1 is the seed single-lane
  /// microarchitecture, bit for bit.
  std::size_t vcs = 1;

  switchlib::ArbiterKind arbiter = switchlib::ArbiterKind::kRoundRobin;
  std::size_t input_fifo_depth = 2;
  std::size_t output_fifo_depth = 4;
  /// Per-switch output-queue override (indexed by switch id; 0 = use
  /// output_fifo_depth). Filled by the compiler's buffer-sizing pass —
  /// the paper's per-instance "component optimizations".
  std::vector<std::size_t> output_fifo_override;
  std::size_t extra_switch_pipeline = 0;  ///< 0 = 2-stage lite switch

  /// Link-level flow control on every port. kCredit assumes reliable
  /// links and therefore requires bit_error_rate == 0 — the paper's
  /// ACK/nACK protocol exists precisely because its links may corrupt
  /// flits in flight (see DESIGN.md "Flow control").
  link::FlowControl flow = link::FlowControl::kAckNack;
  CrcKind crc = CrcKind::kCrc8;
  double bit_error_rate = 0.0;  ///< on switch-to-switch links only
  std::uint64_t seed = 1;

  std::size_t max_outstanding = 8;   ///< per initiator NI
  std::uint32_t slave_latency = 2;   ///< target core service latency

  /// Kernel scheduling policy. kGated (the default) skips quiescent
  /// modules and is proven bit-exact against kFull by the differential
  /// harness (tests/kernel_equiv_test.cpp); kFull is the escape hatch
  /// for debugging a suspected gating divergence (DESIGN.md §9).
  sim::Scheduler scheduler = sim::Scheduler::kGated;

  /// Partitioned execution (DESIGN.md §10): split the network into this
  /// many switch groups that simulate concurrently, exchanging link
  /// traffic at conservative-window barriers. Clamped to the switch
  /// count; 1 = the classic single-partition kernel. Results are
  /// byte-identical at any partition and thread count.
  std::size_t partitions = 1;
  /// Worker threads driving the partitions (clamped to partitions;
  /// meaningless unless partitions > 1). sim_threads == 1 runs the
  /// partitions serially — still epoch-batched, which is the cache-
  /// locality configuration for large single-threaded networks.
  std::size_t sim_threads = 1;
  /// Conservative window override in cycles: 0 = auto, the safe maximum
  /// 1 + min(stages) over the cut links; nonzero values are capped at
  /// that maximum.
  std::size_t lookahead = 0;
};

class Network {
 public:
  Network(topology::Topology topo, const NetworkConfig& config);

  sim::Kernel& kernel() { return kernel_; }
  const topology::Topology& topo() const { return topo_; }
  const NetworkConfig& config() const { return config_; }
  const PacketFormat& format() const { return format_; }
  const topology::RoutingTables& routes() const { return routes_; }
  const topology::DeadlockReport& deadlock_report() const {
    return deadlock_;
  }

  std::size_t num_initiators() const { return initiator_nis_.size(); }
  std::size_t num_targets() const { return target_nis_.size(); }
  std::size_t num_switches() const { return switches_.size(); }

  /// Indexed by position among initiators (not global NI id).
  ocp::MasterCore& master(std::size_t i) { return *masters_.at(i); }
  ni::InitiatorNi& initiator_ni(std::size_t i) {
    return *initiator_nis_.at(i);
  }
  /// Indexed by position among targets.
  ocp::SlaveCore& slave(std::size_t i) { return *slaves_.at(i); }
  ni::TargetNi& target_ni(std::size_t i) { return *target_nis_.at(i); }

  switchlib::Switch& switch_at(std::size_t s) { return *switches_.at(s); }
  /// Uncut link modules only (every link when partitions == 1). Legacy
  /// accessor: statistics must use link_stats(), which also covers the
  /// links replaced by partition cuts.
  const std::vector<std::unique_ptr<link::PipelinedLink>>& links() const {
    return links_;
  }
  /// Links cut at partition boundaries (empty when partitions == 1).
  const std::vector<std::unique_ptr<link::CutLink>>& cut_links() const {
    return cut_links_;
  }

  /// One row per link — cut or uncut — in creation order (topology links
  /// by id, then NI attachment links). The uniform statistics view: the
  /// same network yields the same rows at any partition count.
  struct LinkStat {
    std::string name;
    std::uint64_t flits_carried = 0;
    std::uint64_t flits_corrupted = 0;
  };
  std::vector<LinkStat> link_stats() const;
  /// Total link count including cut links (== links().size() when
  /// unpartitioned); the utilization denominator.
  std::size_t num_links() const { return link_slots_.size(); }

  /// Partition ids indexed by switch id (all zero when partitions == 1).
  const std::vector<std::uint32_t>& switch_partitions() const {
    return switch_partition_;
  }

  /// Global NI id of initiator/target index (for LUT/route queries).
  std::uint32_t initiator_node_id(std::size_t i) const {
    return initiator_ids_.at(i);
  }
  std::uint32_t target_node_id(std::size_t i) const {
    return target_ids_.at(i);
  }

  /// First byte address of target index `t`'s window in the global map.
  std::uint64_t target_base(std::size_t t) const {
    return static_cast<std::uint64_t>(t) * config_.target_window;
  }

  void step(std::size_t cycles = 1) { kernel_.run(cycles); }

  /// True once every master, NI and switch has drained.
  bool quiescent() const;

  /// Steps until quiescent or `max_cycles`; returns cycles stepped.
  std::uint64_t run_until_quiescent(std::uint64_t max_cycles);

  /// Sum of retransmissions over all switch and NI senders.
  std::uint64_t total_retransmissions() const;
  /// Sum of credit-stall cycles over all switch and NI senders (0 unless
  /// config().flow == kCredit).
  std::uint64_t total_credit_stalls() const;
  /// Sum of flits carried over all links.
  std::uint64_t total_link_flits() const;

  /// Shape of the assembled kernel's pooled-commit state (DESIGN.md §2):
  /// total signals and the number of per-type pools they commit from.
  std::size_t signal_count() const { return kernel_.signal_count(); }
  std::size_t signal_pool_count() const { return kernel_.signal_pool_count(); }

 private:
  topology::Topology topo_;
  NetworkConfig config_;
  PacketFormat format_;
  topology::RoutingTables routes_;
  topology::DeadlockReport deadlock_;

  sim::Kernel kernel_;
  std::vector<std::uint32_t> initiator_ids_;
  std::vector<std::uint32_t> target_ids_;

  /// Creation-order link index: exactly one of {pipe, cut} per row.
  struct LinkSlot {
    link::PipelinedLink* pipe = nullptr;
    link::CutLink* cut = nullptr;
  };

  std::vector<std::uint32_t> switch_partition_;
  std::vector<LinkSlot> link_slots_;

  std::vector<std::unique_ptr<switchlib::Switch>> switches_;
  std::vector<std::unique_ptr<link::PipelinedLink>> links_;
  std::vector<std::unique_ptr<link::CutLink>> cut_links_;
  std::vector<std::unique_ptr<ni::InitiatorNi>> initiator_nis_;
  std::vector<std::unique_ptr<ni::TargetNi>> target_nis_;
  std::vector<std::unique_ptr<ocp::MasterCore>> masters_;
  std::vector<std::unique_ptr<ocp::SlaveCore>> slaves_;
};

}  // namespace xpl::noc
