// Initiator Network Interface.
//
// Bridges an OCP master core (CPU/DSP) to the xpipes network. Front end:
// the OCP slave socket (request consumer / response producer). Back end:
// one go-back-N sender toward the network for request packets and one
// receiver for response packets — the paper's independent request/response
// paths.
//
// Packetization follows the paper exactly: the header register is filled
// once per transaction (route from the LUT keyed by MAddr, remaining
// fields from the OCP request), the payload register once per burst beat;
// both are decomposed into flits (packetizer.hpp). Responses are
// reassembled per transaction id, supporting multiple outstanding
// transactions and the OCP threading extensions.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "src/common/ring.hpp"
#include "src/link/flow.hpp"
#include "src/ni/lut.hpp"
#include "src/ocp/agents.hpp"
#include "src/packet/packetizer.hpp"
#include "src/sim/kernel.hpp"
#include "src/sim/stream.hpp"

namespace xpl::ni {

struct InitiatorConfig {
  PacketFormat format{};
  std::uint32_t node_id = 0;
  std::size_t ocp_req_fifo = 4;     ///< front-end request buffer (beats)
  std::size_t ocp_resp_credits = 8; ///< master core's response FIFO depth
  std::size_t resp_queue_depth = 8; ///< response beats buffered network-side
  std::size_t max_outstanding = 8;  ///< response-expecting txns in flight
  link::FlowControl flow = link::FlowControl::kAckNack;
  link::ProtocolConfig protocol{};  ///< network-port link parameters
  /// Virtual channels on the network ports. Request packets ride the
  /// lane of their OCP thread (thread_id % vcs): threads are the
  /// protocol's ordering domain, so same-thread requests stay FIFO on
  /// one lane while independent threads spread over the lanes. Response
  /// flits are drained from every lane.
  std::size_t vcs = 1;

  void validate() const;
};

class InitiatorNi : public sim::Module {
 public:
  /// `ocp` is the socket shared with the master core; `net_out`/`net_in`
  /// are the request/response network ports.
  InitiatorNi(std::string name, const InitiatorConfig& config,
              const ocp::OcpWires& ocp, const link::LinkWires& net_out,
              const link::LinkWires& net_in);

  /// Compiler/testbench API: program the address decoder and routes.
  RouteLut& lut() { return lut_; }
  const RouteLut& lut() const { return lut_; }

  void tick(sim::Kernel& kernel) override;

  /// Quiescence predicate (gated scheduler): nothing buffered toward the
  /// network or the core and every endpoint inert. Outstanding
  /// transactions, the reorder buffer, a half-built packet and mid-packet
  /// reassembly are input-driven state: a tick moves them only when a
  /// beat arrives, and arrivals wake this module. See DESIGN.md §9.
  bool is_idle() const override;

  /// Time-leap next event: kNever when busy only by the network sender's
  /// zero-credit counter clause (stalls caught up in closed form on wake
  /// — DESIGN.md §12), next cycle otherwise.
  std::uint64_t next_event(std::uint64_t now) const override;

  const InitiatorConfig& config() const { return config_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t lut_misses() const { return lut_misses_; }
  /// Network-port sender back-pressure (0 unless flow == kCredit).
  /// Includes the not-yet-applied stalls of an in-progress sleep gap.
  std::uint64_t credit_stalls() const;
  /// True when no transaction is in flight anywhere in this NI.
  bool idle() const;

 private:
  struct Outstanding {
    ocp::Cmd cmd = ocp::Cmd::kRead;
    std::uint32_t burst_len = 1;
    std::uint32_t thread_id = 0;
  };

  struct Building {
    Header header;
    std::vector<BitVector> beats;
    std::uint32_t beats_needed = 0;
  };

  void start_packet(const ocp::ReqBeat& beat, std::uint64_t cycle);
  void finish_packet();
  void deliver_response(const Packet& packet);

  InitiatorConfig config_;
  RouteLut lut_;

  sim::StreamConsumer<ocp::ReqBeat> ocp_req_;
  sim::StreamProducer<ocp::RespBeat> ocp_resp_;
  link::LinkSender tx_;
  link::LinkReceiver rx_;

  std::optional<Building> building_;
  Ring<Flit> flit_out_;  ///< packetizer output, drains 1 flit/cycle

  /// One reassembler per lane: response packets interleave across lanes
  /// on the wire, but arrive in order within a lane.
  std::vector<Depacketizer> depack_;
  Ring<ocp::RespBeat> resp_out_;  ///< decoded beats toward the core

  std::unordered_map<std::uint32_t, Outstanding> outstanding_;
  /// Issue order per OCP thread: responses must reach the core in this
  /// order, so packets arriving early park in reorder_ until their turn.
  std::unordered_map<std::uint32_t, std::deque<std::uint32_t>> thread_order_;
  std::unordered_map<std::uint32_t, Packet> reorder_;
  std::uint32_t next_txn_ = 0;

  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_received_ = 0;
  std::uint64_t lut_misses_ = 0;

  /// Stall catch-up bookkeeping (time-leap; see Switch): first un-ticked
  /// cycle and the clock that measures sleep gaps.
  std::uint64_t next_tick_ = 0;
  const sim::Kernel* kernel_ = nullptr;
};

}  // namespace xpl::ni
