// Target Network Interface.
//
// Bridges the xpipes network to an OCP slave core (memory, peripheral).
// Back end: a go-back-N receiver for request packets and a sender for
// response packets. Front end: the OCP master socket driving the slave
// core beat by beat.
//
// Request packets are depacketized and replayed as OCP bursts; the
// originating transaction's identity (source NI, txn id, thread) is held
// in a per-thread pending queue — OCP slaves respond in order within a
// thread — and response packets are built with the route looked up in the
// source-indexed response LUT, the mirror of the paper's MAddr LUT.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "src/common/ring.hpp"
#include "src/link/flow.hpp"
#include "src/ni/lut.hpp"
#include "src/ocp/agents.hpp"
#include "src/packet/packetizer.hpp"
#include "src/sim/kernel.hpp"
#include "src/sim/stream.hpp"

namespace xpl::ni {

struct TargetConfig {
  PacketFormat format{};
  std::uint32_t node_id = 0;
  std::size_t job_queue_depth = 4;   ///< whole request packets buffered
  std::size_t ocp_req_credits = 8;   ///< slave core's request FIFO depth
  std::size_t ocp_resp_fifo = 8;     ///< front-end response buffer (beats)
  link::FlowControl flow = link::FlowControl::kAckNack;
  link::ProtocolConfig protocol{};
  /// Virtual channels on the network ports. Request flits are drained
  /// from every lane (one reassembler per lane); response packets ride
  /// the lane of their OCP thread, mirroring the initiator. With vcs > 1
  /// the job pipeline also decouples request ejection from response
  /// injection (see tick()), removing the request-reply wedge a
  /// saturated shared-lane network can otherwise hit.
  std::size_t vcs = 1;

  void validate() const;
};

class TargetNi : public sim::Module {
 public:
  TargetNi(std::string name, const TargetConfig& config,
           const ocp::OcpWires& ocp, const link::LinkWires& net_in,
           const link::LinkWires& net_out);

  /// Compiler/testbench API: program the response-route table.
  ResponseLut& lut() { return lut_; }
  const ResponseLut& lut() const { return lut_; }

  void tick(sim::Kernel& kernel) override;

  /// Quiescence predicate (gated scheduler): no job queued or issuing,
  /// nothing buffered toward the network, and every endpoint inert.
  /// Pending/collecting response bookkeeping and mid-packet reassembly
  /// are input-driven (sleepable) state. See DESIGN.md §9.
  bool is_idle() const override;

  /// Time-leap next event: kNever when busy only by the network sender's
  /// zero-credit counter clause (stalls caught up in closed form on wake
  /// — DESIGN.md §12), next cycle otherwise.
  std::uint64_t next_event(std::uint64_t now) const override;

  const TargetConfig& config() const { return config_; }
  std::uint64_t packets_received() const { return packets_received_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  /// Network-port sender back-pressure (0 unless flow == kCredit).
  /// Includes the not-yet-applied stalls of an in-progress sleep gap.
  std::uint64_t credit_stalls() const;
  bool idle() const;

 private:
  struct PendingResp {
    std::uint32_t src = 0;
    std::uint32_t txn_id = 0;
    std::uint32_t thread_id = 0;
    PacketCmd cmd = PacketCmd::kRead;
    std::uint32_t burst_len = 1;
  };

  struct RespBuild {
    PendingResp meta;
    std::uint8_t resp = 0;
    bool interrupt = false;
    std::vector<BitVector> beats;
  };

  void complete_response(RespBuild build);

  TargetConfig config_;
  ResponseLut lut_;

  link::LinkReceiver rx_;
  link::LinkSender tx_;
  sim::StreamProducer<ocp::ReqBeat> ocp_req_;
  sim::StreamConsumer<ocp::RespBeat> ocp_resp_;

  /// One reassembler per lane: request packets interleave across lanes.
  std::vector<Depacketizer> depack_;
  Ring<Packet> jobs_;                   ///< decoded requests awaiting issue
  std::optional<Packet> issuing_;       ///< request being beat-streamed
  std::uint32_t issue_beat_ = 0;

  /// In-flight response-expecting requests, oldest first, per OCP thread.
  std::map<std::uint32_t, std::deque<PendingResp>> pending_;
  std::map<std::uint32_t, RespBuild> collecting_;  ///< per-thread response

  Ring<Flit> flit_out_;

  std::uint64_t packets_received_ = 0;
  std::uint64_t packets_sent_ = 0;

  /// Stall catch-up bookkeeping (time-leap; see Switch): first un-ticked
  /// cycle and the clock that measures sleep gaps.
  std::uint64_t next_tick_ = 0;
  const sim::Kernel* kernel_ = nullptr;
};

}  // namespace xpl::ni
