#include "src/ni/lut.hpp"

#include "src/common/error.hpp"

namespace xpl::ni {

void RouteLut::add_range(const AddressRange& range) {
  require(range.size > 0, "RouteLut: empty address range");
  for (const AddressRange& existing : ranges_) {
    const bool disjoint = range.base + range.size <= existing.base ||
                          existing.base + existing.size <= range.base;
    require(disjoint, "RouteLut: overlapping address ranges");
  }
  ranges_.push_back(range);
}

void RouteLut::set_route(std::uint32_t dst, Route route) {
  if (dst >= routes_.size()) routes_.resize(dst + 1);
  routes_[dst] = std::move(route);
}

std::optional<LutHit> RouteLut::lookup(std::uint64_t addr) const {
  for (const AddressRange& range : ranges_) {
    if (range.contains(addr)) {
      const Route* route = route_to(range.dst);
      require(route != nullptr, "RouteLut: range maps to routeless target");
      return LutHit{range.dst, addr - range.base, route};
    }
  }
  return std::nullopt;
}

const Route* RouteLut::route_to(std::uint32_t dst) const {
  if (dst >= routes_.size() || !routes_[dst].has_value()) return nullptr;
  return &*routes_[dst];
}

std::size_t RouteLut::num_routes() const {
  std::size_t n = 0;
  for (const auto& r : routes_) {
    if (r.has_value()) ++n;
  }
  return n;
}

void ResponseLut::set_route(std::uint32_t src, Route route) {
  if (src >= routes_.size()) routes_.resize(src + 1);
  routes_[src] = std::move(route);
}

const Route* ResponseLut::route_to(std::uint32_t src) const {
  if (src >= routes_.size() || !routes_[src].has_value()) return nullptr;
  return &*routes_[src];
}

std::size_t ResponseLut::num_routes() const {
  std::size_t n = 0;
  for (const auto& r : routes_) {
    if (r.has_value()) ++n;
  }
  return n;
}

}  // namespace xpl::ni
