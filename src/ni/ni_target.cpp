#include "src/ni/ni_target.hpp"

#include "src/common/error.hpp"

namespace xpl::ni {

void TargetConfig::validate() const {
  format.validate();
  require(format.beat_width <= 64,
          "TargetConfig: beat_width above 64 is not supported by the OCP "
          "data path");
  require(job_queue_depth >= 1, "TargetConfig: job_queue_depth >= 1");
  protocol.validate();
  require(vcs >= 1 && vcs <= link::kMaxVcs,
          "TargetConfig: vcs must be in [1, " +
              std::to_string(link::kMaxVcs) + "]");
  require(protocol.vcs == vcs,
          "TargetConfig: protocol lane count differs from vcs");
}

TargetNi::TargetNi(std::string name, const TargetConfig& config,
                   const ocp::OcpWires& ocp, const link::LinkWires& net_in,
                   const link::LinkWires& net_out)
    : sim::Module(std::move(name)),
      config_(config),
      rx_(config.flow, net_in, config.protocol),
      tx_(config.flow, net_out, config.protocol),
      ocp_req_(ocp.req, config.ocp_req_credits),
      ocp_resp_(ocp.resp, config.ocp_resp_fifo) {
  config_.validate();
  // Gated-scheduler wake sources: request flits and ACK/credit returns
  // from the network, response beats and request credits from the core.
  rx_.watch(*this);
  tx_.watch(*this);
  ocp_req_.watch(*this);
  ocp_resp_.watch(*this);
  depack_.reserve(config_.vcs);
  for (std::size_t v = 0; v < config_.vcs; ++v) {
    depack_.emplace_back(config_.format);
  }
  jobs_.reserve(config_.job_queue_depth);  // rx_ can_take bounds it
  // One packetized response in flight (complete_response fires only when
  // flit_out_ has drained); grows once if a longer burst shows up.
  flit_out_.reserve(config_.format.packet_flits(8));
}

void TargetNi::complete_response(RespBuild build) {
  const Route* route = lut_.route_to(build.meta.src);
  require(route != nullptr, "TargetNi: no response route for source");
  Packet packet;
  packet.header.route = *route;
  packet.header.cmd = PacketCmd::kResponse;
  packet.header.src = config_.node_id;
  packet.header.dst = build.meta.src;
  packet.header.txn_id = build.meta.txn_id;
  packet.header.thread_id = build.meta.thread_id;
  packet.header.burst_len =
      static_cast<std::uint32_t>(build.beats.size());
  packet.header.resp = build.resp;
  packet.header.interrupt = build.interrupt;
  packet.beats = std::move(build.beats);
  auto flits = packetize(packet, config_.format);
  // Responses take the lane of their OCP thread, mirroring the
  // initiator's request lane assignment.
  const std::uint8_t vc =
      static_cast<std::uint8_t>(build.meta.thread_id % config_.vcs);
  for (Flit& flit : flits) {
    flit.vc = vc;
    flit_out_.push_back(std::move(flit));
  }
  ++packets_sent_;
}

void TargetNi::tick(sim::Kernel& kernel) {
  // Stall catch-up (time-leap): see Switch::tick — evaluated against the
  // frozen pre-wake state, before begin_cycle consumes the credit beat.
  kernel_ = &kernel;
  const std::uint64_t now = kernel.cycle();
  if (now > next_tick_ && tx_.stall_pending()) {
    tx_.catch_up_stalls(now - next_tick_);
  }
  next_tick_ = now + 1;

  tx_.begin_cycle();
  ocp_req_.begin_cycle();
  ocp_resp_.begin_cycle();

  // Network transmit: drain the response packetizer.
  if (!flit_out_.empty() && tx_.can_accept(flit_out_.front().vc)) {
    tx_.accept(std::move(flit_out_.front()));
    flit_out_.pop_front();
  }

  // OCP response side: collect beats from the slave core. The per-thread
  // pending queue identifies which network transaction each beat answers.
  while (!ocp_resp_.empty()) {
    const ocp::RespBeat beat = ocp_resp_.front();
    ocp_resp_.pop();
    XPL_ASSERT(beat.valid);
    auto pending_it = pending_.find(beat.thread_id);
    require(pending_it != pending_.end() && !pending_it->second.empty(),
            "TargetNi: response beat with no pending request");
    auto build_it = collecting_.find(beat.thread_id);
    if (build_it == collecting_.end()) {
      RespBuild build;
      build.meta = pending_it->second.front();
      build_it = collecting_.emplace(beat.thread_id, std::move(build)).first;
    }
    RespBuild& build = build_it->second;
    build.resp = static_cast<std::uint8_t>(beat.resp);
    build.interrupt = build.interrupt || beat.interrupt;
    if (build.meta.cmd == PacketCmd::kRead) {
      BitVector data(config_.format.beat_width);
      data.deposit(0, std::min<std::size_t>(64, config_.format.beat_width),
                   beat.data);
      build.beats.push_back(std::move(data));
    }
    if (beat.last) {
      pending_it->second.pop_front();
      if (pending_it->second.empty()) pending_.erase(pending_it);
      RespBuild done = std::move(build_it->second);
      collecting_.erase(build_it);
      complete_response(std::move(done));
    }
  }

  // OCP request side: replay the next decoded packet beat by beat.
  //
  // Single-lane networks keep the seed's conservative gate: the next job
  // issues only once the previous response has fully left (flit_out_
  // holds at most one packetized response). Multi-lane networks drop the
  // gate — the job queue then drains at the slave's rate even while
  // response injection is back-pressured, which breaks the
  // request-reply coupling cycle (target ejection waiting on response
  // injection waiting on channels held by requests waiting on target
  // ejection) that can wedge a saturated shared-lane network. The
  // response staging this pipelining needs is bounded by protocol
  // invariant: every response-expecting request holds one of its
  // initiator's max_outstanding txn slots, so at most
  // sum(max_outstanding) responses can ever be pending at one target.
  const bool response_drained = config_.vcs == 1 ? flit_out_.empty() : true;
  if (!issuing_.has_value() && !jobs_.empty() && response_drained) {
    issuing_ = std::move(jobs_.front());
    jobs_.pop_front();
    issue_beat_ = 0;
  }
  if (issuing_.has_value() && ocp_req_.can_send()) {
    const Packet& packet = *issuing_;
    const Header& h = packet.header;
    ocp::ReqBeat beat;
    beat.valid = true;
    switch (h.cmd) {
      case PacketCmd::kWrite:
        beat.cmd = ocp::Cmd::kWrite;
        break;
      case PacketCmd::kRead:
        beat.cmd = ocp::Cmd::kRead;
        break;
      case PacketCmd::kWriteNp:
        beat.cmd = ocp::Cmd::kWriteNp;
        break;
      case PacketCmd::kResponse:
        XPL_ASSERT(false);  // filtered at depacketization
    }
    beat.addr = h.addr;
    beat.burst_len = h.burst_len;
    beat.burst_seq = static_cast<ocp::BurstSeq>(h.burst_seq);
    beat.beat_index = issue_beat_;
    beat.thread_id = h.thread_id;
    beat.sideband_flag = h.sideband;
    if (h.cmd != PacketCmd::kRead) {
      XPL_ASSERT(issue_beat_ < packet.beats.size());
      beat.data = packet.beats[issue_beat_].to_u64();
    }
    ocp_req_.send(beat);
    ++issue_beat_;
    const std::uint32_t req_beats =
        (h.cmd == PacketCmd::kRead) ? 1 : h.burst_len;
    if (issue_beat_ == req_beats) {
      if (h.cmd != PacketCmd::kWrite) {
        pending_[h.thread_id].push_back(
            PendingResp{h.src, h.txn_id, h.thread_id, h.cmd, h.burst_len});
      }
      issuing_.reset();
    }
  }

  // Network receive: depacketize request flits, any lane (the shared job
  // queue gates every lane alike).
  const bool can_take = jobs_.size() < config_.job_queue_depth;
  const std::uint32_t take_mask =
      can_take ? (1u << config_.vcs) - 1 : 0u;
  if (auto flit = rx_.begin_cycle(take_mask)) {
    XPL_ASSERT(flit->vc < config_.vcs);
    if (auto packet = depack_[flit->vc].push(*flit)) {
      require(packet->header.cmd != PacketCmd::kResponse,
              "TargetNi: response packet arrived at target");
      ++packets_received_;
      jobs_.push_back(std::move(*packet));
    }
  }

  tx_.end_cycle();
  rx_.end_cycle();
  ocp_req_.end_cycle();
  ocp_resp_.end_cycle();
}

bool TargetNi::idle() const {
  for (const Depacketizer& d : depack_) {
    if (!d.idle()) return false;
  }
  return jobs_.empty() && !issuing_.has_value() && pending_.empty() &&
         collecting_.empty() && flit_out_.empty() && tx_.idle() &&
         ocp_resp_.empty();
}

bool TargetNi::is_idle() const {
  // Deliberately weaker than idle(): pending_/collecting_ and mid-packet
  // depacketizers are sleepable (input-driven) state.
  return jobs_.empty() && !issuing_.has_value() && ocp_resp_.empty() &&
         flit_out_.empty() && rx_.gate_idle() && tx_.gate_idle() &&
         ocp_req_.gate_idle() && ocp_resp_.gate_idle();
}

std::uint64_t TargetNi::next_event(std::uint64_t now) const {
  // is_idle() with the sender's zero-credit clause relaxed: if that
  // clause is the only thing keeping this NI awake, the skipped per-cycle
  // stall counts are restored by the catch-up above and the credit return
  // wakes it through the watched reverse wire.
  const bool leap_idle = jobs_.empty() && !issuing_.has_value() &&
                         ocp_resp_.empty() && flit_out_.empty() &&
                         rx_.gate_idle() && tx_.gate_idle_leap() &&
                         ocp_req_.gate_idle() && ocp_resp_.gate_idle();
  return leap_idle ? sim::kNever : now + 1;
}

std::uint64_t TargetNi::credit_stalls() const {
  // A sleeping starved sender has not counted the gap's stalls yet; add
  // them so reads taken mid-gap (stats probes, end-of-run collection)
  // match the per-cycle schedulers.
  std::uint64_t total = tx_.credit_stalls();
  if (kernel_ != nullptr) {
    const std::uint64_t now = kernel_->cycle();
    if (now > next_tick_ && tx_.stall_pending()) total += now - next_tick_;
  }
  return total;
}

}  // namespace xpl::ni
