// Route look-up tables programmed into the NIs by the xpipesCompiler.
//
// The paper's packetization step fills the header's route "from MAddr
// after LUT": the initiator NI maps the OCP address to a target NI and a
// precomputed source route. The target NI holds the mirror table mapping
// a source NI id back to the response route. Both tables are static
// configuration — in hardware they synthesize to small ROMs, which the
// synthesis estimator charges accordingly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/packet/header.hpp"

namespace xpl::ni {

/// One entry of the initiator NI's address decoder.
struct AddressRange {
  std::uint64_t base = 0;   ///< first byte address of the window
  std::uint64_t size = 0;   ///< window length in bytes
  std::uint32_t dst = 0;    ///< target NI id the window maps to

  bool contains(std::uint64_t addr) const {
    return addr >= base && addr - base < size;
  }
};

/// Result of an address lookup.
struct LutHit {
  std::uint32_t dst = 0;      ///< target NI id
  std::uint64_t offset = 0;   ///< address offset within the window
  const Route* route = nullptr;  ///< precomputed source route
};

/// Initiator-side LUT: address ranges plus one route per reachable target.
class RouteLut {
 public:
  RouteLut() = default;

  /// Adds an address window; windows must not overlap.
  void add_range(const AddressRange& range);

  /// Installs the route used to reach target `dst`.
  void set_route(std::uint32_t dst, Route route);

  /// Decodes `addr`; nullopt means no window matches (the NI reports an
  /// OCP ERR response locally without touching the network).
  std::optional<LutHit> lookup(std::uint64_t addr) const;

  const Route* route_to(std::uint32_t dst) const;

  std::size_t num_ranges() const { return ranges_.size(); }
  std::size_t num_routes() const;

 private:
  std::vector<AddressRange> ranges_;
  std::vector<std::optional<Route>> routes_;  ///< indexed by dst id
};

/// Target-side LUT: response route per initiator id.
class ResponseLut {
 public:
  void set_route(std::uint32_t src, Route route);
  const Route* route_to(std::uint32_t src) const;
  std::size_t num_routes() const;

 private:
  std::vector<std::optional<Route>> routes_;  ///< indexed by src id
};

}  // namespace xpl::ni
