#include "src/ni/ni_initiator.hpp"

#include "src/common/error.hpp"

namespace xpl::ni {

void InitiatorConfig::validate() const {
  format.validate();
  require(format.beat_width <= 64,
          "InitiatorConfig: beat_width above 64 is not supported by the "
          "OCP data path");
  require(ocp_req_fifo >= 1, "InitiatorConfig: ocp_req_fifo >= 1");
  require(max_outstanding >= 1, "InitiatorConfig: max_outstanding >= 1");
  const std::size_t txn_space =
      std::size_t{1} << format.header.txn_bits;
  require(max_outstanding <= txn_space,
          "InitiatorConfig: max_outstanding exceeds txn id space");
  protocol.validate();
  require(vcs >= 1 && vcs <= link::kMaxVcs,
          "InitiatorConfig: vcs must be in [1, " +
              std::to_string(link::kMaxVcs) + "]");
  require(protocol.vcs == vcs,
          "InitiatorConfig: protocol lane count differs from vcs");
}

InitiatorNi::InitiatorNi(std::string name, const InitiatorConfig& config,
                         const ocp::OcpWires& ocp,
                         const link::LinkWires& net_out,
                         const link::LinkWires& net_in)
    : sim::Module(std::move(name)),
      config_(config),
      ocp_req_(ocp.req, config.ocp_req_fifo),
      ocp_resp_(ocp.resp, config.ocp_resp_credits),
      tx_(config.flow, net_out, config.protocol),
      rx_(config.flow, net_in, config.protocol) {
  config_.validate();
  // Gated-scheduler wake sources: OCP request beats and response credits
  // from the core, ACK/credit returns and response flits from the network.
  ocp_req_.watch(*this);
  ocp_resp_.watch(*this);
  tx_.watch(*this);
  rx_.watch(*this);
  depack_.reserve(config_.vcs);
  for (std::size_t v = 0; v < config_.vcs; ++v) {
    depack_.emplace_back(config_.format);
  }
  // Steady-state bounds: flit_out_ holds one packetized request (a new
  // transaction starts only when it is empty); resp_out_ is capped by
  // resp_queue_depth plus the beats of the response(s) released by one
  // arrival. Both rings grow (once, deterministically) if a burst length
  // exceeds the estimate.
  flit_out_.reserve(config_.format.packet_flits(8));
  resp_out_.reserve(config_.resp_queue_depth + 8);
}

void InitiatorNi::start_packet(const ocp::ReqBeat& beat, std::uint64_t) {
  const auto hit = lut_.lookup(beat.addr);
  if (!hit.has_value()) {
    // No address window matches: answer ERR locally, never touching the
    // network (mirrors a decode error on a bus).
    ++lut_misses_;
    const std::uint32_t resp_beats =
        (beat.cmd == ocp::Cmd::kRead) ? beat.burst_len : 1;
    for (std::uint32_t i = 0; i < resp_beats; ++i) {
      ocp::RespBeat resp;
      resp.valid = true;
      resp.resp = ocp::Resp::kErr;
      resp.thread_id = beat.thread_id;
      resp.last = (i + 1 == resp_beats);
      resp_out_.push_back(resp);
    }
    return;
  }

  Building b;
  b.header.route = *hit->route;
  switch (beat.cmd) {
    case ocp::Cmd::kWrite:
      b.header.cmd = PacketCmd::kWrite;
      break;
    case ocp::Cmd::kRead:
      b.header.cmd = PacketCmd::kRead;
      break;
    case ocp::Cmd::kWriteNp:
      b.header.cmd = PacketCmd::kWriteNp;
      break;
    case ocp::Cmd::kIdle:
      XPL_ASSERT(false);
  }
  b.header.src = config_.node_id;
  b.header.dst = hit->dst;
  b.header.thread_id = beat.thread_id;
  b.header.burst_len = beat.burst_len;
  b.header.burst_seq = static_cast<std::uint8_t>(beat.burst_seq);
  b.header.sideband = beat.sideband_flag;
  b.header.addr = hit->offset;

  if (beat.cmd == ocp::Cmd::kWrite) {
    b.header.txn_id = 0;  // posted: no response to match
  } else {
    b.header.txn_id = next_txn_;
    outstanding_[next_txn_] =
        Outstanding{beat.cmd, beat.burst_len, beat.thread_id};
    thread_order_[beat.thread_id].push_back(next_txn_);
    const std::uint32_t txn_mask =
        static_cast<std::uint32_t>((1u << config_.format.header.txn_bits) - 1);
    next_txn_ = (next_txn_ + 1) & txn_mask;
  }

  b.beats_needed = (beat.cmd == ocp::Cmd::kRead) ? 0 : beat.burst_len;
  if (b.beats_needed > 0) {
    BitVector data(config_.format.beat_width);
    data.deposit(0, std::min<std::size_t>(64, config_.format.beat_width),
                 beat.data);
    b.beats.push_back(std::move(data));
  }
  building_ = std::move(b);
  if (building_->beats.size() == building_->beats_needed) finish_packet();
}

void InitiatorNi::finish_packet() {
  XPL_ASSERT(building_.has_value());
  Packet packet;
  packet.header = building_->header;
  packet.beats = std::move(building_->beats);
  auto flits = packetize(packet, config_.format);
  // Whole packets ride one injection lane keyed by OCP thread: threads
  // are the protocol's ordering domain, so same-thread requests stay
  // FIFO on one lane while independent threads spread over the lanes
  // (vcs == 1: always lane 0, the seed behaviour).
  const std::uint8_t vc =
      static_cast<std::uint8_t>(packet.header.thread_id % config_.vcs);
  for (Flit& flit : flits) {
    flit.vc = vc;
    flit_out_.push_back(std::move(flit));
  }
  building_.reset();
  ++packets_sent_;
}

void InitiatorNi::deliver_response(const Packet& packet) {
  ++packets_received_;
  require(packet.header.cmd == PacketCmd::kResponse,
          "InitiatorNi: non-response packet arrived at initiator");
  auto it = outstanding_.find(packet.header.txn_id);
  require(it != outstanding_.end(),
          "InitiatorNi: response for unknown transaction");
  const std::uint32_t thread = it->second.thread_id;

  // OCP responses are in order within a thread; the network may complete
  // transactions out of order, so park early arrivals in the reorder
  // buffer until every older transaction of the thread has answered.
  reorder_.emplace(packet.header.txn_id, packet);
  auto order_it = thread_order_.find(thread);
  XPL_ASSERT(order_it != thread_order_.end());
  auto& order = order_it->second;
  while (!order.empty()) {
    const std::uint32_t txn = order.front();
    auto ready = reorder_.find(txn);
    if (ready == reorder_.end()) break;

    const Outstanding out = outstanding_.at(txn);
    const Packet& resp_packet = ready->second;
    const auto resp_code = static_cast<ocp::Resp>(resp_packet.header.resp);
    const std::uint32_t resp_beats =
        (out.cmd == ocp::Cmd::kRead) ? out.burst_len : 1;
    for (std::uint32_t i = 0; i < resp_beats; ++i) {
      ocp::RespBeat beat;
      beat.valid = true;
      beat.resp = resp_code;
      beat.thread_id = out.thread_id;
      beat.interrupt = resp_packet.header.interrupt;
      if (out.cmd == ocp::Cmd::kRead && i < resp_packet.beats.size()) {
        beat.data = resp_packet.beats[i].to_u64();
      }
      beat.last = (i + 1 == resp_beats);
      resp_out_.push_back(beat);
    }
    outstanding_.erase(txn);
    reorder_.erase(ready);
    order.pop_front();
  }
  if (order.empty()) thread_order_.erase(order_it);
}

void InitiatorNi::tick(sim::Kernel& kernel) {
  // Stall catch-up (time-leap): see Switch::tick — evaluated against the
  // frozen pre-wake state, before begin_cycle consumes the credit beat.
  kernel_ = &kernel;
  const std::uint64_t now = kernel.cycle();
  if (now > next_tick_ && tx_.stall_pending()) {
    tx_.catch_up_stalls(now - next_tick_);
  }
  next_tick_ = now + 1;

  ocp_req_.begin_cycle();
  ocp_resp_.begin_cycle();
  tx_.begin_cycle();

  // Network transmit: one flit per cycle from the packetizer output.
  if (!flit_out_.empty() && tx_.can_accept(flit_out_.front().vc)) {
    tx_.accept(std::move(flit_out_.front()));
    flit_out_.pop_front();
  }

  // Packetization: consume at most one OCP request beat per cycle (the
  // header/payload registers are single datapath resources).
  if (!ocp_req_.empty()) {
    const ocp::ReqBeat beat = ocp_req_.front();
    XPL_ASSERT(beat.valid);
    if (building_.has_value()) {
      // Collect the next write burst beat.
      XPL_ASSERT(beat.beat_index == building_->beats.size());
      BitVector data(config_.format.beat_width);
      data.deposit(0, std::min<std::size_t>(64, config_.format.beat_width),
                   beat.data);
      building_->beats.push_back(std::move(data));
      ocp_req_.pop();
      if (building_->beats.size() == building_->beats_needed) {
        finish_packet();
      }
    } else {
      // A new transaction may start only when the packetizer is free, a
      // txn id slot is available, and the local response queue has room
      // for a potential LUT-miss reply.
      const bool txn_slot_free =
          beat.cmd == ocp::Cmd::kWrite ||
          (outstanding_.size() < config_.max_outstanding &&
           outstanding_.find(next_txn_) == outstanding_.end());
      if (flit_out_.empty() && txn_slot_free &&
          resp_out_.size() < config_.resp_queue_depth) {
        XPL_ASSERT(beat.beat_index == 0);
        ocp_req_.pop();
        start_packet(beat, kernel.cycle());
      }
    }
  }

  // Network receive: response flits reassemble into packets, one
  // reassembler per lane (any lane may be drained — the shared response
  // queue gates them all alike).
  const bool can_take = resp_out_.size() < config_.resp_queue_depth;
  const std::uint32_t take_mask =
      can_take ? (1u << config_.vcs) - 1 : 0u;
  if (auto flit = rx_.begin_cycle(take_mask)) {
    XPL_ASSERT(flit->vc < config_.vcs);
    if (auto packet = depack_[flit->vc].push(*flit)) {
      deliver_response(*packet);
    }
  }

  // OCP response channel: one beat per cycle, credit permitting.
  if (!resp_out_.empty() && ocp_resp_.can_send()) {
    ocp_resp_.send(resp_out_.front());
    resp_out_.pop_front();
  }

  ocp_req_.end_cycle();
  ocp_resp_.end_cycle();
  tx_.end_cycle();
  rx_.end_cycle();
}

bool InitiatorNi::idle() const {
  for (const Depacketizer& d : depack_) {
    if (!d.idle()) return false;
  }
  return !building_.has_value() && flit_out_.empty() && resp_out_.empty() &&
         outstanding_.empty() && reorder_.empty() && tx_.idle() &&
         ocp_req_.empty();
}

bool InitiatorNi::is_idle() const {
  // Deliberately weaker than idle(): outstanding_/reorder_/building_ and
  // mid-packet depacketizers are sleepable (input-driven) state.
  return ocp_req_.empty() && flit_out_.empty() && resp_out_.empty() &&
         ocp_req_.gate_idle() && ocp_resp_.gate_idle() && tx_.gate_idle() &&
         rx_.gate_idle();
}

std::uint64_t InitiatorNi::next_event(std::uint64_t now) const {
  // is_idle() with the sender's zero-credit clause relaxed: if that
  // clause is the only thing keeping this NI awake, the skipped per-cycle
  // stall counts are restored by the catch-up above and the credit return
  // wakes it through the watched reverse wire.
  const bool leap_idle = ocp_req_.empty() && flit_out_.empty() &&
                         resp_out_.empty() && ocp_req_.gate_idle() &&
                         ocp_resp_.gate_idle() && tx_.gate_idle_leap() &&
                         rx_.gate_idle();
  return leap_idle ? sim::kNever : now + 1;
}

std::uint64_t InitiatorNi::credit_stalls() const {
  // A sleeping starved sender has not counted the gap's stalls yet; add
  // them so reads taken mid-gap (stats probes, end-of-run collection)
  // match the per-cycle schedulers.
  std::uint64_t total = tx_.credit_stalls();
  if (kernel_ != nullptr) {
    const std::uint64_t now = kernel_->cycle();
    if (now > next_tick_ && tx_.stall_pending()) total += now - next_tick_;
  }
  return total;
}

}  // namespace xpl::ni
