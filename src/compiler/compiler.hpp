// xpipesCompiler: from NoC specification to instantiated network.
//
// The paper's tool reads a NoC specification plus routing tables and
// "creates a class template for each network component type", performing
// per-instance optimization (I/O port counts, buffer sizes) and emitting
// two orthogonal views of the same network:
//   * simulation view — an executable model (here: noc::Network on the
//     cycle kernel);
//   * synthesis view — SystemC source for the synthesis backend (here:
//     generated SystemC text, systemc_emitter.cpp).
// On top of the views, estimate() runs the synthesis model over every
// instance — the per-component area/power/fmax data behind figures
// F1-F7.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/noc/network.hpp"
#include "src/synth/component_models.hpp"
#include "src/synth/estimator.hpp"
#include "src/topology/topology.hpp"

namespace xpl::compiler {

/// The compiler's input: a topology plus network-wide parameters. The
/// per-instance parameters (switch radixes, buffer sizes, LUT contents)
/// are derived during compilation.
struct NocSpec {
  std::string name = "noc";
  topology::Topology topo;
  noc::NetworkConfig net;
};

/// One component instance's synthesis estimate.
struct InstanceEstimate {
  std::string name;
  std::string kind;  ///< "switch NxM", "initiator NI", "target NI"
  synth::Netlist netlist;
  synth::Estimate estimate;
};

/// Whole-NoC synthesis report (figure F5's totals).
struct SynthesisReport {
  std::vector<InstanceEstimate> instances;
  double total_area_mm2 = 0.0;
  double total_power_mw = 0.0;
  /// Slowest instance's full-effort fmax: the NoC clock ceiling.
  double min_fmax_mhz = 0.0;

  std::string to_string() const;
};

class XpipesCompiler {
 public:
  explicit XpipesCompiler(
      synth::Technology tech = synth::Technology::umc130())
      : estimator_(tech) {}

  /// Simulation view: a ready-to-run network.
  std::unique_ptr<noc::Network> build_simulation(const NocSpec& spec) const;

  /// Synthesis model over every instance, each synthesized at
  /// `target_mhz`.
  SynthesisReport estimate(const NocSpec& spec, double target_mhz,
                           double activity = 0.15) const;

  /// Synthesis view: generated SystemC, filename -> content. One class
  /// per distinct component configuration plus the hierarchical top level
  /// and the routing tables.
  std::map<std::string, std::string> emit_systemc(const NocSpec& spec) const;

  /// Writes emit_systemc() output under `directory` (created if needed).
  void write_systemc(const NocSpec& spec, const std::string& directory) const;

  /// The paper's per-instance "component optimizations: buffer sizes":
  /// sizes every switch's output queue to its routed load. Walks all
  /// routes the spec's routing algorithm produces, counts traversals per
  /// switch, and writes spec.net.output_fifo_override with depths scaled
  /// between min_depth (idle corners) and max_depth (hot centres).
  /// Returns the per-switch depths chosen.
  std::vector<std::size_t> optimize_buffer_sizes(
      NocSpec& spec, std::size_t min_depth = 2,
      std::size_t max_depth = 8) const;

  const synth::Estimator& estimator() const { return estimator_; }

 private:
  synth::Estimator estimator_;
};

}  // namespace xpl::compiler
