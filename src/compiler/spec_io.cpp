#include "src/compiler/spec_io.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "src/common/error.hpp"

namespace xpl::compiler {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw Error("spec line " + std::to_string(line) + ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

std::uint64_t parse_u64(const std::string& token, std::size_t line) {
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(token, &used);
    if (used != token.size()) fail(line, "bad number '" + token + "'");
    return value;
  } catch (const std::logic_error&) {
    fail(line, "bad number '" + token + "'");
  }
}

}  // namespace

NocSpec parse_spec(const std::string& text) {
  NocSpec spec;
  std::map<std::string, std::uint32_t> switch_ids;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;

  auto switch_id = [&](const std::string& name, std::size_t at_line) {
    const auto it = switch_ids.find(name);
    if (it == switch_ids.end()) fail(at_line, "unknown switch '" + name + "'");
    return it->second;
  };

  while (std::getline(is, line)) {
    ++lineno;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];

    auto need = [&](std::size_t n) {
      if (tokens.size() != n) {
        fail(lineno, "'" + key + "' expects " + std::to_string(n - 1) +
                         " argument(s)");
      }
    };

    if (key == "noc") {
      need(2);
      spec.name = tokens[1];
    } else if (key == "flit_width") {
      need(2);
      spec.net.flit_width = parse_u64(tokens[1], lineno);
    } else if (key == "beat_width") {
      need(2);
      spec.net.beat_width = parse_u64(tokens[1], lineno);
    } else if (key == "max_burst") {
      need(2);
      spec.net.max_burst = parse_u64(tokens[1], lineno);
    } else if (key == "threads") {
      need(2);
      spec.net.num_threads = parse_u64(tokens[1], lineno);
    } else if (key == "target_window") {
      need(2);
      spec.net.target_window = parse_u64(tokens[1], lineno);
    } else if (key == "routing") {
      need(2);
      if (tokens[1] == "xy") {
        spec.net.routing = topology::RoutingAlgorithm::kXY;
      } else if (tokens[1] == "shortest") {
        spec.net.routing = topology::RoutingAlgorithm::kShortestPath;
      } else if (tokens[1] == "updown") {
        spec.net.routing = topology::RoutingAlgorithm::kUpDown;
      } else {
        fail(lineno, "unknown routing '" + tokens[1] + "'");
      }
    } else if (key == "arbiter") {
      need(2);
      if (tokens[1] == "rr") {
        spec.net.arbiter = switchlib::ArbiterKind::kRoundRobin;
      } else if (tokens[1] == "fixed") {
        spec.net.arbiter = switchlib::ArbiterKind::kFixedPriority;
      } else {
        fail(lineno, "unknown arbiter '" + tokens[1] + "'");
      }
    } else if (key == "crc") {
      need(2);
      if (tokens[1] == "none") {
        spec.net.crc = CrcKind::kNone;
      } else if (tokens[1] == "parity") {
        spec.net.crc = CrcKind::kParity;
      } else if (tokens[1] == "crc8") {
        spec.net.crc = CrcKind::kCrc8;
      } else if (tokens[1] == "crc16") {
        spec.net.crc = CrcKind::kCrc16;
      } else {
        fail(lineno, "unknown crc '" + tokens[1] + "'");
      }
    } else if (key == "flow") {
      need(2);
      try {
        spec.net.flow = link::parse_flow_control(tokens[1]);
      } catch (const Error&) {
        fail(lineno, "unknown flow '" + tokens[1] + "'");
      }
    } else if (key == "vcs") {
      need(2);
      spec.net.vcs = parse_u64(tokens[1], lineno);
      if (spec.net.vcs < 1 || spec.net.vcs > link::kMaxVcs) {
        fail(lineno, "vcs must be in [1, " +
                         std::to_string(link::kMaxVcs) + "]");
      }
    } else if (key == "input_fifo") {
      need(2);
      spec.net.input_fifo_depth = parse_u64(tokens[1], lineno);
      if (spec.net.input_fifo_depth < 1) {
        fail(lineno, "input_fifo depth must be >= 1");
      }
    } else if (key == "output_fifo") {
      need(2);
      spec.net.output_fifo_depth = parse_u64(tokens[1], lineno);
      if (spec.net.output_fifo_depth < 1) {
        fail(lineno, "output_fifo depth must be >= 1");
      }
    } else if (key == "extra_pipeline") {
      need(2);
      spec.net.extra_switch_pipeline = parse_u64(tokens[1], lineno);
    } else if (key == "partitions") {
      // Partitioned-simulation knobs (DESIGN.md §10). `threads` was
      // already taken by OCP num_threads, hence `sim_threads`.
      need(2);
      spec.net.partitions = parse_u64(tokens[1], lineno);
      if (spec.net.partitions < 1) fail(lineno, "partitions must be >= 1");
    } else if (key == "sim_threads") {
      need(2);
      spec.net.sim_threads = parse_u64(tokens[1], lineno);
      if (spec.net.sim_threads < 1) fail(lineno, "sim_threads must be >= 1");
    } else if (key == "scheduler") {
      // Kernel scheduling policy (bit-identical results; DESIGN.md §9,
      // §12): gated (default) | full | time_leap.
      need(2);
      if (tokens[1] == "gated") {
        spec.net.scheduler = sim::Scheduler::kGated;
      } else if (tokens[1] == "full") {
        spec.net.scheduler = sim::Scheduler::kFull;
      } else if (tokens[1] == "time_leap") {
        spec.net.scheduler = sim::Scheduler::kTimeLeap;
      } else {
        fail(lineno, "unknown scheduler '" + tokens[1] +
                         "' (expected gated | full | time_leap)");
      }
    } else if (key == "lookahead") {
      need(2);
      spec.net.lookahead = parse_u64(tokens[1], lineno);
    } else if (key == "switch") {
      if (tokens.size() != 2 && tokens.size() != 5) {
        fail(lineno, "'switch' expects: switch <name> [coord <x> <y>]");
      }
      if (switch_ids.count(tokens[1])) {
        fail(lineno, "duplicate switch '" + tokens[1] + "'");
      }
      const auto id = spec.topo.add_switch(tokens[1]);
      switch_ids[tokens[1]] = id;
      if (tokens.size() == 5) {
        if (tokens[2] != "coord") fail(lineno, "expected 'coord'");
        spec.topo.switch_node(id).x =
            static_cast<int>(parse_u64(tokens[3], lineno));
        spec.topo.switch_node(id).y =
            static_cast<int>(parse_u64(tokens[4], lineno));
      }
    } else if (key == "link") {
      if (tokens.size() < 3) {
        fail(lineno,
             "'link' expects: link <from> <to> [stages <n>] [class <k>] "
             "[dateline]");
      }
      std::size_t stages = 0;
      std::uint8_t vc_class = 0;
      bool dateline = false;
      for (std::size_t t = 3; t < tokens.size();) {
        if (tokens[t] == "stages") {
          if (t + 1 >= tokens.size()) fail(lineno, "'stages' expects a value");
          stages = parse_u64(tokens[t + 1], lineno);
          t += 2;
        } else if (tokens[t] == "class") {
          if (t + 1 >= tokens.size()) fail(lineno, "'class' expects a value");
          const std::uint64_t k = parse_u64(tokens[t + 1], lineno);
          if (k > 255) fail(lineno, "link class must be in [0, 255]");
          vc_class = static_cast<std::uint8_t>(k);
          t += 2;
        } else if (tokens[t] == "dateline") {
          dateline = true;
          t += 1;
        } else {
          fail(lineno, "unknown link annotation '" + tokens[t] + "'");
        }
      }
      spec.topo.add_link(switch_id(tokens[1], lineno),
                         switch_id(tokens[2], lineno), stages, vc_class,
                         dateline);
    } else if (key == "initiator" || key == "target") {
      need(4);
      if (tokens[2] != "at") fail(lineno, "expected 'at'");
      const auto sw = switch_id(tokens[3], lineno);
      if (key == "initiator") {
        spec.topo.attach_initiator(sw, tokens[1]);
      } else {
        spec.topo.attach_target(sw, tokens[1]);
      }
    } else {
      fail(lineno, "unknown directive '" + key + "'");
    }
  }
  return spec;
}

NocSpec load_spec(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_spec: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_spec(text.str());
}

std::string write_spec(const NocSpec& spec) {
  std::ostringstream os;
  os << "# xpipes lite NoC specification\n";
  os << "noc " << spec.name << "\n";
  os << "flit_width " << spec.net.flit_width << "\n";
  os << "beat_width " << spec.net.beat_width << "\n";
  os << "max_burst " << spec.net.max_burst << "\n";
  os << "threads " << spec.net.num_threads << "\n";
  os << "target_window " << spec.net.target_window << "\n";
  os << "routing "
     << (spec.net.routing == topology::RoutingAlgorithm::kXY ? "xy"
         : spec.net.routing == topology::RoutingAlgorithm::kUpDown
             ? "updown"
             : "shortest")
     << "\n";
  os << "arbiter "
     << (spec.net.arbiter == switchlib::ArbiterKind::kRoundRobin ? "rr"
                                                                 : "fixed")
     << "\n";
  os << "crc " << crc_name(spec.net.crc) << "\n";
  if (spec.net.flow != link::FlowControl::kAckNack) {
    os << "flow " << link::flow_control_name(spec.net.flow) << "\n";
  }
  if (spec.net.vcs != 1) {
    os << "vcs " << spec.net.vcs << "\n";
  }
  // Buffer depths follow the conditional-emission discipline of flow/vcs:
  // written only off-default, so legacy canonical specs never change.
  if (spec.net.input_fifo_depth != 2) {
    os << "input_fifo " << spec.net.input_fifo_depth << "\n";
  }
  if (spec.net.output_fifo_depth != 4) {
    os << "output_fifo " << spec.net.output_fifo_depth << "\n";
  }
  if (spec.net.extra_switch_pipeline != 0) {
    os << "extra_pipeline " << spec.net.extra_switch_pipeline << "\n";
  }
  if (spec.net.partitions != 1) {
    os << "partitions " << spec.net.partitions << "\n";
  }
  if (spec.net.sim_threads != 1) {
    os << "sim_threads " << spec.net.sim_threads << "\n";
  }
  if (spec.net.scheduler != sim::Scheduler::kGated) {
    os << "scheduler " << sim::scheduler_name(spec.net.scheduler) << "\n";
  }
  if (spec.net.lookahead != 0) {
    os << "lookahead " << spec.net.lookahead << "\n";
  }
  for (std::uint32_t s = 0; s < spec.topo.num_switches(); ++s) {
    const auto& node = spec.topo.switch_node(s);
    os << "switch " << node.name;
    if (node.x >= 0 && node.y >= 0) {
      os << " coord " << node.x << " " << node.y;
    }
    os << "\n";
  }
  for (std::uint32_t l = 0; l < spec.topo.num_links(); ++l) {
    const auto& link = spec.topo.link(l);
    os << "link " << spec.topo.switch_node(link.from).name << " "
       << spec.topo.switch_node(link.to).name;
    if (link.stages != 0) os << " stages " << link.stages;
    if (link.vc_class != 0) {
      os << " class " << static_cast<unsigned>(link.vc_class);
    }
    if (link.dateline) os << " dateline";
    os << "\n";
  }
  for (std::uint32_t n = 0; n < spec.topo.num_nis(); ++n) {
    const auto& ni = spec.topo.ni(n);
    os << (ni.initiator ? "initiator " : "target ") << ni.name << " at "
       << spec.topo.switch_node(ni.switch_id).name << "\n";
  }
  return os.str();
}

void save_spec(const NocSpec& spec, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "save_spec: cannot open " + path);
  out << write_spec(spec);
}

}  // namespace xpl::compiler
