// NoC specification file format.
//
// The original xpipesCompiler consumed a textual NoC specification plus
// routing tables. This module defines that interface for our compiler: a
// line-oriented, comment-friendly format describing the network-wide
// parameters, every switch, link and NI attachment. Round-trips exactly
// (write_spec(parse_spec(text)) == canonical form), so specs can be
// version-controlled and diffed.
//
//   # xpipes lite NoC specification
//   noc my_soc
//   flit_width 32
//   beat_width 32
//   max_burst 16
//   threads 4
//   target_window 4096
//   routing xy            # xy | shortest | updown
//   arbiter rr            # rr | fixed
//   crc crc8              # none | parity | crc8 | crc16
//   flow credit           # ack_nack | credit (default ack_nack)
//   vcs 2                 # virtual channels per link (default 1)
//   input_fifo 2          # switch input buffer depth (default 2)
//   output_fifo 4         # switch output queue depth (default 4)
//   partitions 4          # kernel partitions (default 1; DESIGN.md §10)
//   sim_threads 4         # simulation worker threads (default 1)
//   lookahead 2           # epoch cap in cycles (default 0 = auto-max)
//   switch sw_0_0 coord 0 0
//   switch hub
//   link sw_0_0 hub stages 2
//   link hub sw_0_0 class 1 dateline   # VC routing annotations
//   initiator cpu0 at sw_0_0
//   target mem0 at hub
//
// `flow`, `vcs`, `input_fifo`, `output_fifo`, `partitions`,
// `sim_threads`, `lookahead` and the link `class` / `dateline`
// annotations are written only when they differ from their
// defaults, so pre-existing canonical specs stay byte-identical.
// (`threads` is the OCP thread count; the simulation worker-thread knob
// is `sim_threads`.) The
// annotations make generator-built multi-lane topologies (and the
// configurations xtune emits) fully self-describing: a written spec
// re-simulates exactly.
#pragma once

#include <string>

#include "src/compiler/compiler.hpp"

namespace xpl::compiler {

/// Parses a specification from text. Throws xpl::Error with a line number
/// on malformed input.
NocSpec parse_spec(const std::string& text);

/// Reads and parses a specification file.
NocSpec load_spec(const std::string& path);

/// Renders `spec` in canonical form (stable ordering, one item per line).
std::string write_spec(const NocSpec& spec);

/// Writes the canonical form to `path`.
void save_spec(const NocSpec& spec, const std::string& path);

}  // namespace xpl::compiler
