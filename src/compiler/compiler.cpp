#include "src/compiler/compiler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace xpl::compiler {

std::string SynthesisReport::to_string() const {
  std::ostringstream os;
  os << "instances=" << instances.size() << " area=" << total_area_mm2
     << "mm2 power=" << total_power_mw << "mW min_fmax=" << min_fmax_mhz
     << "MHz";
  return os.str();
}

std::unique_ptr<noc::Network> XpipesCompiler::build_simulation(
    const NocSpec& spec) const {
  return std::make_unique<noc::Network>(spec.topo, spec.net);
}

SynthesisReport XpipesCompiler::estimate(const NocSpec& spec,
                                         double target_mhz,
                                         double activity) const {
  // Build the simulation view to reuse its per-instance parameter
  // derivation — both views must agree on every width and depth, exactly
  // the property the paper's compiler guarantees.
  const auto network = build_simulation(spec);

  SynthesisReport report;
  report.min_fmax_mhz = std::numeric_limits<double>::infinity();

  auto add = [&](std::string name, std::string kind, synth::Netlist netlist,
                 double levels) {
    InstanceEstimate inst;
    inst.name = std::move(name);
    inst.kind = std::move(kind);
    inst.netlist = netlist;
    inst.estimate = estimator_.estimate(netlist, levels, target_mhz,
                                        activity);
    report.total_area_mm2 += inst.estimate.area_mm2;
    report.total_power_mw += inst.estimate.power_mw;
    report.min_fmax_mhz =
        std::min(report.min_fmax_mhz, inst.estimate.fmax_mhz);
    report.instances.push_back(std::move(inst));
  };

  for (std::size_t s = 0; s < network->num_switches(); ++s) {
    const auto& config = network->switch_at(s).config();
    std::ostringstream kind;
    kind << "switch " << config.num_inputs << "x" << config.num_outputs;
    add(network->switch_at(s).name(), kind.str(),
        synth::build_switch_netlist(config),
        synth::switch_logic_levels(config));
  }
  for (std::size_t i = 0; i < network->num_initiators(); ++i) {
    const auto& config = network->initiator_ni(i).config();
    add(network->initiator_ni(i).name(), "initiator NI",
        synth::build_initiator_ni_netlist(config, network->num_targets()),
        synth::initiator_ni_logic_levels(config));
  }
  for (std::size_t t = 0; t < network->num_targets(); ++t) {
    const auto& config = network->target_ni(t).config();
    add(network->target_ni(t).name(), "target NI",
        synth::build_target_ni_netlist(config, network->num_initiators()),
        synth::target_ni_logic_levels(config));
  }
  return report;
}

std::vector<std::size_t> XpipesCompiler::optimize_buffer_sizes(
    NocSpec& spec, std::size_t min_depth, std::size_t max_depth) const {
  require(min_depth >= 1 && min_depth <= max_depth,
          "optimize_buffer_sizes: bad depth bounds");
  const auto tables =
      topology::compute_all_routes(spec.topo, spec.net.routing);

  // Count route traversals through each switch (a proxy for expected
  // contention on its output queues).
  std::vector<double> load(spec.topo.num_switches(), 0.0);
  for (const auto& [pair, route] : tables.routes) {
    for (const std::uint32_t sw :
         topology::route_switch_path(spec.topo, pair.first, route)) {
      load[sw] += 1.0;
    }
  }
  const double max_load =
      *std::max_element(load.begin(), load.end());

  std::vector<std::size_t> depths(spec.topo.num_switches(), min_depth);
  if (max_load > 0) {
    for (std::size_t s = 0; s < depths.size(); ++s) {
      const double frac = load[s] / max_load;
      depths[s] = min_depth + static_cast<std::size_t>(
                                  std::lround(frac * double(max_depth -
                                                            min_depth)));
    }
  }
  spec.net.output_fifo_override = depths;
  return depths;
}

}  // namespace xpl::compiler
