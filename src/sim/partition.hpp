// Worker pool for partitioned kernel execution (DESIGN.md §10).
//
// One pool per partitioned Kernel, built lazily on the first epoch that
// runs with thread_count() > 1. Workers are persistent (spawning threads
// per epoch would dwarf an epoch's work) and statically assigned:
// partition p runs on worker p % threads, every epoch — assignment
// cannot affect results (partitions share nothing inside an epoch), but
// a static map keeps each partition's working set warm in one core's
// cache. The calling thread doubles as worker 0, so thread_count() == N
// means N OS threads total, not N+1.
//
// Synchronization is a generation-counted mutex/condvar handshake: the
// epoch driver bumps the generation, workers run their slice, the last
// one signals completion. The mutex hand-offs give the barrier semantics
// the conservative window needs — every write a partition makes during
// epoch e happens-before the exchange after e, which happens-before
// epoch e+1 on every worker.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace xpl::sim {

class Kernel;

/// Persistent worker threads driving Kernel partitions through epochs.
class PartitionPool {
 public:
  /// Spawns `threads - 1` workers (the caller of run_epoch is worker 0).
  PartitionPool(Kernel& kernel, std::size_t threads);
  ~PartitionPool();

  PartitionPool(const PartitionPool&) = delete;
  PartitionPool& operator=(const PartitionPool&) = delete;

  /// Runs every partition for `k` cycles and returns once all are done.
  /// Must be called from the kernel's driving thread only.
  void run_epoch(std::uint64_t k);

 private:
  void worker_loop(std::size_t worker);
  void run_slice(std::size_t worker, std::uint64_t k);

  Kernel& kernel_;
  std::size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;   ///< bumped per epoch to release workers
  std::uint64_t epoch_cycles_ = 0;
  std::size_t pending_ = 0;        ///< workers still running this epoch
  bool stop_ = false;
};

}  // namespace xpl::sim
