// Cycle-accurate two-phase simulation kernel.
//
// This is the repository's substitute for the SystemC runtime the original
// xpipes lite library was written against (see DESIGN.md §2). The modelling
// discipline matches fully synchronous, fully registered RTL:
//
//  * Every inter-module connection is a Signal<T> with current/next values.
//  * Each cycle the kernel calls Module::tick() on every module. A tick
//    reads only *current* signal values and writes *next* values, then the
//    kernel commits all signals at once. Module evaluation order therefore
//    cannot affect results, and every signal hop costs exactly one cycle —
//    the same semantics as a flop-to-flop path in the synthesizable RTL.
//  * xpipes lite was explicitly "designed for pipelined links", i.e. all of
//    its interfaces tolerate register stages, so this discipline models the
//    real library without combinational cross-module paths.
//
// Signals hold their value until rewritten. Modules drive each output wire
// on change (plus one trailing reset write when the wire returns to idle),
// so a wire's committed per-cycle value sequence is identical to the
// classic drive-every-cycle discipline.
//
// Three schedulers share this contract (Scheduler, DESIGN.md §9/§12):
//
//  * kFull ticks every module every cycle and commits per-type signal
//    pools in a tight devirtualized loop (one virtual dispatch per *type*
//    per cycle; the per-signal work is a predictable written-flag branch).
//    At ~100% write density an explicit dirty list measured slower — see
//    DESIGN.md §2 — which is why the full path keeps the flag scan.
//  * kGated additionally maintains an active set: modules whose is_idle()
//    predicate holds are skipped entirely until a signal they watch is
//    written (Signal::watch wires the wake) or they are woken explicitly
//    (Module::wake, e.g. on an external push_transaction). Under gating
//    write density is low, so commit walks the cycle's dirty list instead
//    of scanning every signal.
//  * kTimeLeap is gated plus clock skipping: a module that stays busy
//    only because of *future* state (a beat mid-pipe, a job inside its
//    service window, a blocked release) declares the cycle of its next
//    self-driven change via Module::next_event() and sleeps on a timed-
//    wake calendar (calendar.hpp). When the active set drains the kernel
//    leaps cycle_ straight to the calendar's next due cycle instead of
//    walking the gap one bookkeeping-only cycle at a time.
//
// All schedulers are required to be bit-exact with each other; the
// differential harness in tests/kernel_equiv_test.cpp and
// tests/timeleap_test.cpp checks per-cycle Kernel::digest() equality over
// randomized scenarios.
//
// PR 8 adds conservative-window partitioned execution on top of either
// scheduler: the module/signal graph is split into partitions that never
// share a signal, cross-partition links are replaced by CutChannel
// mailboxes, and every partition advances `lookahead` cycles between
// exchange barriers (DESIGN.md §10). Exports stay byte-identical at any
// partition and thread count because signal creation order — and hence
// digest order — is independent of the partitioning, and mailboxes are
// flushed single-threaded in registration order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/error.hpp"
#include "src/sim/calendar.hpp"

namespace xpl::sim {

class Kernel;
class PartitionPool;

namespace detail {
/// Per-thread pointer to the executing partition's local cycle counter.
/// Inside a lookahead epoch each partition advances its own clock, so
/// Kernel::cycle() must answer with the ticking partition's time — not
/// the global counter, which only moves at epoch barriers. Null outside
/// partitioned execution (the common case: one predictable branch).
extern thread_local const std::uint64_t* g_cycle_override;
}  // namespace detail

/// A deterministic cross-partition conduit (e.g. link::CutLink). The
/// kernel calls exchange() between epochs — single-threaded, in
/// registration order — to move staged records to their delivery side.
class CutChannel {
 public:
  virtual ~CutChannel() = default;

  /// Flushes every record staged during the finished epoch to the
  /// receiving side and wakes the consuming half-modules.
  virtual void exchange() = 0;

  /// Valid forward beats moved across the cut so far (bench counter).
  virtual std::uint64_t flits_exchanged() const = 0;
};

/// Kernel scheduling mode; fixed at Kernel construction.
enum class Scheduler : std::uint8_t {
  kFull,     ///< tick every module every cycle (classic two-phase)
  kGated,    ///< skip quiescent modules; wake on watched-signal writes
  kTimeLeap, ///< gated + skip quiescent cycle gaps via a wake calendar
};

inline const char* scheduler_name(Scheduler s) {
  switch (s) {
    case Scheduler::kGated:
      return "gated";
    case Scheduler::kTimeLeap:
      return "time_leap";
    case Scheduler::kFull:
      break;
  }
  return "full";
}

/// Base class of all clocked hardware modules.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  /// One clock cycle: read current signal values, write next values and
  /// stage internal state updates. Called exactly once per Kernel::step()
  /// under the full scheduler; skipped while quiescent under the gated one.
  virtual void tick(Kernel& kernel) = 0;

  /// Quiescence predicate for the gated scheduler: return true only when
  /// the next tick() would provably change no internal state and write no
  /// signal value that differs from what the wires already hold. Modules
  /// that cannot promise this keep the safe default (never skipped). The
  /// kernel evaluates this after commit, so implementations read committed
  /// signal values. See DESIGN.md §9 for the per-module contracts.
  virtual bool is_idle() const { return false; }

  /// Re-arms this module. Called automatically when a watched signal is
  /// written; call it directly when injecting work from outside the
  /// simulation (e.g. MasterCore::push_transaction). Arms the *current*
  /// tick phase too: an externally-injected transaction must be served
  /// the same cycle as under the full scheduler, and an extra tick of a
  /// genuinely idle module is a no-op by the is_idle() contract, so a
  /// mid-phase wake of a later-ordered module is harmless.
  void wake() {
    woken_ = true;
    awake_ = true;
  }

  /// True while the gated scheduler is ticking this module (always true
  /// under the full scheduler, which ignores the flag).
  bool awake() const { return awake_; }

  /// Time-leap scheduler only: the cycle of this module's next
  /// *self-driven* state change, consulted right after a tick when
  /// is_idle() is still false. Contract:
  ///
  ///  * now + 1 (the safe default) — stay awake; tick again next cycle.
  ///  * kNever — nothing pending; sleep until a watched-signal wake.
  ///  * any c > now + 1 — sleep on the wake calendar until cycle c; every
  ///    tick in (now, c) must be an observable no-op (no committed signal
  ///    change, no internal state change that a later cycle could see).
  ///    Counters that would have advanced during the gap must be caught
  ///    up in closed form on the next tick (DESIGN.md §12).
  ///
  /// Spurious early wakes are harmless by the same contract; returning a
  /// too-late cycle is a correctness bug the differential harness catches.
  virtual std::uint64_t next_event(std::uint64_t now) const {
    return now + 1;
  }

 private:
  friend class Kernel;

  std::string name_;
  bool awake_ = true;  ///< gated scheduler: ticked this cycle
  bool woken_ = false; ///< gated scheduler: wake requested during this cycle
  std::size_t partition_ = 0;  ///< owning partition (0 when unpartitioned)
};

/// Accumulating 64-bit state hash (FNV-1a style). Used by the differential
/// kernel-equivalence tests to compare full vs gated schedulers per cycle;
/// never touched on the simulation hot path.
class Digest {
 public:
  void mix(std::uint64_t v) {
    state_ ^= v;
    state_ *= 1099511628211ULL;
  }

  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 14695981039346656037ULL;
};

/// Customization point: overload hash_append(Digest&, const T&) in T's
/// namespace for every type carried on a Signal that tests digest. The
/// generic overload covers arithmetic and enum payloads.
template <typename T>
  requires(std::is_arithmetic_v<T> || std::is_enum_v<T>)
inline void hash_append(Digest& d, const T& v) {
  d.mix(static_cast<std::uint64_t>(v));
}

/// One staged signal awaiting commit under the gated scheduler. The commit
/// thunk devirtualizes per-entry dispatch into a direct function-pointer
/// call; committing a signal whose written flag is already clear is a no-op,
/// so duplicate entries (possible when a test commits a signal by hand) are
/// harmless.
struct DirtyEntry {
  void* signal = nullptr;
  void (*commit)(void*) = nullptr;
};
using DirtyList = std::vector<DirtyEntry>;

/// A registered wire of type T between two modules.
///
/// read() returns the value as of the last commit; write() stages a value
/// that becomes visible after the current cycle's commit. Signals have no
/// virtual functions: the kernel owns them in per-type pools and commits
/// them with direct calls.
template <typename T>
class Signal {
 public:
  explicit Signal(T reset = T{}) : curr_(reset), next_(std::move(reset)) {}

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  const T& read() const { return curr_; }

  void write(T value) {
    next_ = std::move(value);
    if (dirty_list_ != nullptr && !written_) {
      dirty_list_->push_back(
          {this, [](void* s) { static_cast<Signal<T>*>(s)->commit(); }});
      if (watchers_[0] != nullptr) watchers_[0]->wake();
      if (watchers_[1] != nullptr) watchers_[1]->wake();
    }
    written_ = true;
  }

  bool written() const { return written_; }

  /// The value this signal will hold after this cycle's commit: the
  /// staged write if one happened, else the held value. Cut-link sender
  /// halves sample this during the tick phase — they are registered
  /// after every module that can drive the wire, so a beat written at
  /// cycle t is captured at t and replayed downstream at t+1+stages,
  /// exactly the uncut PipelinedLink timing (DESIGN.md §10).
  const T& staged() const { return written_ ? next_ : curr_; }

  /// Registers `consumer` to be woken whenever this signal is written
  /// (gated scheduler). Two slots: one reading consumer plus one passive
  /// observer (e.g. an ocp::Monitor snooping a wire it does not own).
  void watch(Module& consumer) {
    if (watchers_[0] == nullptr || watchers_[0] == &consumer) {
      watchers_[0] = &consumer;
      return;
    }
    XPL_ASSERT(watchers_[1] == nullptr || watchers_[1] == &consumer);
    watchers_[1] = &consumer;
  }

  /// Applies the staged value. Called from the pool commit loop (full
  /// scheduler) or via the dirty-list thunk (gated); the written-flag test
  /// keeps idle signals at one predictable branch and makes duplicate
  /// dirty entries no-ops.
  void commit() {
    if (written_) {
      curr_ = std::move(next_);
      written_ = false;
    }
  }

 private:
  friend class Kernel;

  T curr_;
  T next_;
  bool written_ = false;
  DirtyList* dirty_list_ = nullptr;  ///< non-null iff the kernel is gated
  Module* watchers_[2] = {nullptr, nullptr};
};

/// Owns signals, schedules modules, and advances simulated time.
class Kernel {
 public:
  // Both out of line: PartitionPool is incomplete here (pool_ member).
  explicit Kernel(Scheduler scheduler = Scheduler::kFull);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  Scheduler scheduler() const { return scheduler_; }

  /// Splits execution into `partitions` groups of modules/signals that
  /// run concurrently on up to `threads` worker threads (clamped to the
  /// partition count; 1 = serial epochs, still batched for locality).
  /// Must be called before any signal or module is created; partitions
  /// <= 1 is a no-op and leaves the kernel on the unpartitioned path.
  /// Signals and modules created afterwards join the partition selected
  /// by set_creation_partition(). Cross-partition connections must go
  /// through a registered CutChannel — a signal written in one partition
  /// and read or watched in another is a data race by construction.
  void configure_partitions(std::size_t partitions, std::size_t threads);

  bool partitioned() const { return !partitions_.empty(); }
  std::size_t partition_count() const { return partitions_.size(); }
  std::size_t thread_count() const { return threads_; }

  /// Selects the partition that subsequently created signals and modules
  /// join (construction-time only; ignored when unpartitioned).
  void set_creation_partition(std::size_t partition) {
    XPL_ASSERT(partitions_.empty() || partition < partitions_.size());
    creation_partition_ = partition;
  }

  /// Registers a cross-partition conduit, flushed after every epoch in
  /// registration order (the determinism anchor for exchange effects).
  void register_cut(CutChannel& cut) { cuts_.push_back(&cut); }

  /// Sets the conservative window: cycles each partition advances
  /// between exchange barriers. Safe iff k <= 1 + min stage count over
  /// all cut links (a record sampled at cycle t is due at t+1+stages,
  /// and must not be due before the next barrier delivers it).
  void set_lookahead(std::uint64_t k) {
    XPL_ASSERT(k >= 1);
    lookahead_ = k;
  }
  /// Cycles per epoch (1 unless partitioned with pipelined cuts).
  std::uint64_t lookahead() const { return partitioned() ? lookahead_ : 1; }

  /// Epoch barriers executed so far (0 unless partitioned).
  std::uint64_t epochs() const { return epochs_; }

  /// Total valid forward beats moved across all cuts (bench counter).
  std::uint64_t cut_flits() const;

  /// Creates a kernel-owned signal and returns a stable reference. The
  /// signal joins the pool of its type (pools use deque storage, so
  /// references never move while the pool grows). Pool membership — and
  /// hence digest order — tracks creation order only, never partition
  /// assignment, which is what keeps digests comparable across
  /// partitionings.
  template <typename T>
  Signal<T>& make_signal(T reset = T{}) {
    SignalPool<T>& pool = pool_for<T>();
    pool.signals.emplace_back(std::move(reset));
    ++signal_count_;
    Signal<T>& sig = pool.signals.back();
    if (partitioned()) {
      // Partitioned commits always walk per-partition dirty lists (the
      // per-type pool sweep cannot be split by partition), under either
      // scheduler.
      sig.dirty_list_ = &partitions_[creation_partition_]->dirty;
    } else if (scheduler_ != Scheduler::kFull) {
      sig.dirty_list_ = &dirty_;
    }
    return sig;
  }

  /// Registers a module. The kernel does not take ownership; modules must
  /// outlive the kernel's run (the Network owns them in practice). When
  /// partitioned the module also joins the current creation partition's
  /// tick list (a subsequence of the global registration order).
  void add_module(Module& module) {
    modules_.push_back(&module);
    if (partitioned()) {
      module.partition_ = creation_partition_;
      partitions_[creation_partition_]->modules.push_back(&module);
    }
  }

  /// Registers a callback run after every commit (statistics probes).
  /// Probes run every cycle under both schedulers. Incompatible with
  /// partitioned execution: inside an epoch there is no globally
  /// committed cycle to observe.
  void add_probe(std::function<void(std::uint64_t cycle)> probe) {
    XPL_ASSERT(!partitioned());
    probes_.push_back(std::move(probe));
  }

  /// Advances one clock cycle: tick (awake) modules, commit staged
  /// signals, update the active set (gated), run probes. Partitioned:
  /// a one-cycle epoch (exact, just without lookahead batching).
  void step();

  /// Advances `cycles` clock cycles. Partitioned: runs epochs of up to
  /// lookahead() cycles with a cut exchange between epochs.
  void run(std::uint64_t cycles);

  /// Runs until `done()` returns true or `max_cycles` elapse; returns the
  /// number of cycles actually run. Always cycle-exact: `done` is
  /// evaluated at every cycle boundary even when partitioned (callers
  /// count drain cycles; lookahead batching would overshoot).
  std::uint64_t run_until(const std::function<bool()>& done,
                          std::uint64_t max_cycles);

  /// Parks `m` on the wake calendar for cycle `due` (time-leap scheduler).
  /// Under kFull/kGated — or when `due` is not in the future — this wakes
  /// the module immediately instead: an extra awake tick is a no-op by the
  /// is_idle() contract, so callers need no scheduler-specific logic.
  void schedule_wake(Module& m, std::uint64_t due) {
    if (scheduler_ != Scheduler::kTimeLeap || due <= cycle()) {
      m.wake();
      return;
    }
    if (partitioned()) {
      partitions_[m.partition_]->calendar.schedule(due, &m);
    } else {
      calendar_.schedule(due, &m);
    }
  }

  /// Cycles skipped (never walked) by time-leap clock jumps. 0 under
  /// kFull/kGated; the bench suite reports leapt_cycles()/cycles as
  /// leapt_frac.
  std::uint64_t leapt_cycles() const;

  /// Cycles elapsed since construction. Callable from module ticks even
  /// inside a lookahead epoch: the executing partition's local clock is
  /// threaded through detail::g_cycle_override.
  std::uint64_t cycle() const {
    const std::uint64_t* over = detail::g_cycle_override;
    return over != nullptr ? *over : cycle_;
  }

  std::size_t module_count() const { return modules_.size(); }
  /// Registered modules in tick order (quiescence-invariant tests walk
  /// this to check every module's is_idle() claim after a drain).
  const std::vector<Module*>& modules() const { return modules_; }
  std::size_t signal_count() const { return signal_count_; }
  /// Distinct signal types in use (== virtual dispatches per commit).
  std::size_t signal_pool_count() const { return pools_.size(); }
  /// Modules ticked last cycle (== module_count() under kFull).
  std::size_t awake_count() const;

  /// Hash of every signal's committed value, in creation order. Two
  /// identically constructed kernels in the same state produce the same
  /// digest regardless of scheduler — the oracle of the differential
  /// kernel-equivalence tests. Test-only: never called on the hot path.
  std::uint64_t digest() const;

 private:
  /// Type-erased pool handle: one virtual call per type per cycle.
  struct SignalPoolBase {
    virtual ~SignalPoolBase() = default;
    virtual void commit_all() = 0;
    virtual void digest_into(Digest& d) const = 0;
  };

  /// All signals of one type T. Deque storage keeps references stable
  /// under growth while the commit loop walks large contiguous chunks.
  template <typename T>
  struct SignalPool final : SignalPoolBase {
    std::deque<Signal<T>> signals;

    void commit_all() override {
      for (Signal<T>& s : signals) s.commit();  // direct, inlinable call
    }

    void digest_into(Digest& d) const override {
      for (const Signal<T>& s : signals) hash_append(d, s.read());
    }
  };

  template <typename T>
  SignalPool<T>& pool_for() {
    const std::type_index key(typeid(T));
    auto it = pool_index_.find(key);
    if (it == pool_index_.end()) {
      auto pool = std::make_unique<SignalPool<T>>();
      SignalPool<T>* raw = pool.get();
      pools_.push_back(std::move(pool));
      it = pool_index_.emplace(key, raw).first;
    }
    return *static_cast<SignalPool<T>*>(it->second);
  }

  void step_gated();
  void step_timeleap();
  void step_partitions_fused();

  /// Unpartitioned time-leap run loop: step while anything is awake, leap
  /// cycle_ to the calendar's next due cycle when the active set drains.
  void run_timeleap(std::uint64_t cycles);

  /// Re-derives awake_n_ from the modules' awake flags. Needed at
  /// run-entry: external wakes (push_transaction between runs) flip
  /// awake_ without the kernel seeing them.
  void refresh_awake_n();

  /// One execution group: its modules (a subsequence of modules_), its
  /// own dirty list (no sharing — commits race-free by construction),
  /// and its clock inside the current epoch. The wake calendar and leap
  /// counter are partition-local too, so the time-leap path stays free of
  /// cross-thread state.
  struct Partition {
    std::vector<Module*> modules;
    DirtyList dirty;
    std::uint64_t local_cycle = 0;
    WakeCalendar calendar;
    std::size_t awake_n = 0;
    std::uint64_t leapt = 0;
  };

  /// Runs every partition for `k` cycles (pooled or serial), advances
  /// global time, then flushes cuts in registration order.
  void run_epoch(std::uint64_t k);

  /// Advances one partition `k` cycles: per-cycle tick / dirty-commit /
  /// active-set update against the partition's local clock. Called from
  /// worker threads; touches only partition-local state.
  void run_partition(Partition& p, std::uint64_t k);

  friend class PartitionPool;

  Scheduler scheduler_ = Scheduler::kFull;
  std::vector<Module*> modules_;
  std::vector<std::unique_ptr<SignalPoolBase>> pools_;
  std::unordered_map<std::type_index, SignalPoolBase*> pool_index_;
  std::size_t signal_count_ = 0;
  DirtyList dirty_;  ///< signals written this cycle (gated, unpartitioned)
  std::vector<std::function<void(std::uint64_t)>> probes_;
  std::uint64_t cycle_ = 0;

  // Time-leap scheduler (unpartitioned; partitions carry their own).
  WakeCalendar calendar_;
  std::size_t awake_n_ = 0;      ///< modules ticked last step_timeleap
  std::uint64_t leapt_cycles_ = 0;

  // Partitioned execution (empty/idle unless configure_partitions ran).
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::vector<CutChannel*> cuts_;
  std::size_t creation_partition_ = 0;
  std::size_t threads_ = 1;
  std::uint64_t lookahead_ = 1;
  std::uint64_t epochs_ = 0;
  std::unique_ptr<PartitionPool> pool_;  ///< lazily built when threads_ > 1
};

}  // namespace xpl::sim
