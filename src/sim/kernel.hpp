// Cycle-accurate two-phase simulation kernel.
//
// This is the repository's substitute for the SystemC runtime the original
// xpipes lite library was written against (see DESIGN.md §2). The modelling
// discipline matches fully synchronous, fully registered RTL:
//
//  * Every inter-module connection is a Signal<T> with current/next values.
//  * Each cycle the kernel calls Module::tick() on every module. A tick
//    reads only *current* signal values and writes *next* values, then the
//    kernel commits all signals at once. Module evaluation order therefore
//    cannot affect results, and every signal hop costs exactly one cycle —
//    the same semantics as a flop-to-flop path in the synthesizable RTL.
//  * xpipes lite was explicitly "designed for pipelined links", i.e. all of
//    its interfaces tolerate register stages, so this discipline models the
//    real library without combinational cross-module paths.
//
// Signals hold their value until rewritten; by convention a module drives
// each of its outputs every cycle (like an always_ff block that assigns all
// outputs on every edge).
//
// Commit is devirtualized: signals live in type-segregated pools (one pool
// per signal type — Signal<FlitBeat>, Signal<AckBeat>, the OCP beat
// signals, and whatever other types a testbench creates), and each pool
// commits its signals in a tight non-virtual loop over deque chunks. The
// per-cycle cost is one virtual dispatch per *type*, not per signal; the
// per-signal work is a predictable written-flag branch plus a move. See
// DESIGN.md §2 for the measured history (commit-all vs dirty list vs flag
// scan vs pools).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/error.hpp"

namespace xpl::sim {

class Kernel;

/// Base class of all clocked hardware modules.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  /// One clock cycle: read current signal values, write next values and
  /// stage internal state updates. Called exactly once per Kernel::step().
  virtual void tick(Kernel& kernel) = 0;

 private:
  std::string name_;
};

/// A registered wire of type T between two modules.
///
/// read() returns the value as of the last commit; write() stages a value
/// that becomes visible after the current cycle's commit. Signals have no
/// virtual functions: the kernel owns them in per-type pools and commits
/// them with direct calls.
template <typename T>
class Signal {
 public:
  explicit Signal(T reset = T{}) : curr_(reset), next_(std::move(reset)) {}

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  const T& read() const { return curr_; }

  void write(T value) {
    next_ = std::move(value);
    written_ = true;
  }

  bool written() const { return written_; }

  /// Applies the staged value. Called by the kernel's pool commit loop;
  /// the written-flag test keeps idle signals at one predictable branch
  /// (an explicit dirty list was measured slower at this codebase's ~100%
  /// write density — see DESIGN.md §2).
  void commit() {
    if (written_) {
      curr_ = std::move(next_);
      written_ = false;
    }
  }

 private:
  T curr_;
  T next_;
  bool written_ = false;
};

/// Owns signals, schedules modules, and advances simulated time.
class Kernel {
 public:
  Kernel() = default;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Creates a kernel-owned signal and returns a stable reference. The
  /// signal joins the pool of its type (pools use deque storage, so
  /// references never move while the pool grows).
  template <typename T>
  Signal<T>& make_signal(T reset = T{}) {
    SignalPool<T>& pool = pool_for<T>();
    pool.signals.emplace_back(std::move(reset));
    ++signal_count_;
    return pool.signals.back();
  }

  /// Registers a module. The kernel does not take ownership; modules must
  /// outlive the kernel's run (the Network owns them in practice).
  void add_module(Module& module) { modules_.push_back(&module); }

  /// Registers a callback run after every commit (statistics probes).
  void add_probe(std::function<void(std::uint64_t cycle)> probe) {
    probes_.push_back(std::move(probe));
  }

  /// Advances one clock cycle: tick all modules, commit all signals,
  /// run probes.
  void step();

  /// Advances `cycles` clock cycles.
  void run(std::uint64_t cycles);

  /// Runs until `done()` returns true or `max_cycles` elapse; returns the
  /// number of cycles actually run.
  std::uint64_t run_until(const std::function<bool()>& done,
                          std::uint64_t max_cycles);

  /// Cycles elapsed since construction.
  std::uint64_t cycle() const { return cycle_; }

  std::size_t module_count() const { return modules_.size(); }
  std::size_t signal_count() const { return signal_count_; }
  /// Distinct signal types in use (== virtual dispatches per commit).
  std::size_t signal_pool_count() const { return pools_.size(); }

 private:
  /// Type-erased pool handle: one virtual call per type per cycle.
  struct SignalPoolBase {
    virtual ~SignalPoolBase() = default;
    virtual void commit_all() = 0;
  };

  /// All signals of one type T. Deque storage keeps references stable
  /// under growth while the commit loop walks large contiguous chunks.
  template <typename T>
  struct SignalPool final : SignalPoolBase {
    std::deque<Signal<T>> signals;

    void commit_all() override {
      for (Signal<T>& s : signals) s.commit();  // direct, inlinable call
    }
  };

  template <typename T>
  SignalPool<T>& pool_for() {
    const std::type_index key(typeid(T));
    auto it = pool_index_.find(key);
    if (it == pool_index_.end()) {
      auto pool = std::make_unique<SignalPool<T>>();
      SignalPool<T>* raw = pool.get();
      pools_.push_back(std::move(pool));
      it = pool_index_.emplace(key, raw).first;
    }
    return *static_cast<SignalPool<T>*>(it->second);
  }

  std::vector<Module*> modules_;
  std::vector<std::unique_ptr<SignalPoolBase>> pools_;
  std::unordered_map<std::type_index, SignalPoolBase*> pool_index_;
  std::size_t signal_count_ = 0;
  std::vector<std::function<void(std::uint64_t)>> probes_;
  std::uint64_t cycle_ = 0;
};

}  // namespace xpl::sim
