// Cycle-accurate two-phase simulation kernel.
//
// This is the repository's substitute for the SystemC runtime the original
// xpipes lite library was written against (see DESIGN.md §2). The modelling
// discipline matches fully synchronous, fully registered RTL:
//
//  * Every inter-module connection is a Signal<T> with current/next values.
//  * Each cycle the kernel calls Module::tick() on every module. A tick
//    reads only *current* signal values and writes *next* values, then the
//    kernel commits all signals at once. Module evaluation order therefore
//    cannot affect results, and every signal hop costs exactly one cycle —
//    the same semantics as a flop-to-flop path in the synthesizable RTL.
//  * xpipes lite was explicitly "designed for pipelined links", i.e. all of
//    its interfaces tolerate register stages, so this discipline models the
//    real library without combinational cross-module paths.
//
// Signals hold their value until rewritten; by convention a module drives
// each of its outputs every cycle (like an always_ff block that assigns all
// outputs on every edge).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/error.hpp"

namespace xpl::sim {

class Kernel;

/// Base class of all clocked hardware modules.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  /// One clock cycle: read current signal values, write next values and
  /// stage internal state updates. Called exactly once per Kernel::step().
  virtual void tick(Kernel& kernel) = 0;

 private:
  std::string name_;
};

/// Type-erased base so the kernel can commit any signal.
///
/// The written flag lives here (not in Signal<T>) so the kernel's commit
/// scan can test it without a virtual dispatch and touch only signals
/// actually written this cycle. Measured on the xsweep mesh campaign the
/// flag test is free when every signal is written every cycle (this
/// codebase's modules drive all outputs every tick, so that is the hot
/// case) and skips the dispatch entirely for idle signals; an explicit
/// dirty *list* was tried and rejected — enqueueing on every write cost
/// ~15% wall clock at 100% write density.
class SignalBase {
 public:
  virtual ~SignalBase() = default;
  virtual void commit() = 0;

  bool written() const { return written_; }

 protected:
  bool written_ = false;  ///< staged value pending commit
};

/// A registered wire of type T between two modules.
///
/// read() returns the value as of the last commit; write() stages a value
/// that becomes visible after the current cycle's commit.
template <typename T>
class Signal : public SignalBase {
 public:
  explicit Signal(T reset = T{}) : curr_(reset), next_(reset) {}

  const T& read() const { return curr_; }

  void write(T value) {
    next_ = std::move(value);
    written_ = true;
  }

  void commit() override {
    if (written_) {
      curr_ = std::move(next_);
      written_ = false;
    }
  }

 private:
  T curr_;
  T next_;
};

/// Owns signals, schedules modules, and advances simulated time.
class Kernel {
 public:
  Kernel() = default;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  /// Creates a kernel-owned signal and returns a stable reference.
  template <typename T>
  Signal<T>& make_signal(T reset = T{}) {
    auto sig = std::make_unique<Signal<T>>(std::move(reset));
    Signal<T>& ref = *sig;
    signals_.push_back(std::move(sig));
    return ref;
  }

  /// Registers a module. The kernel does not take ownership; modules must
  /// outlive the kernel's run (the Network owns them in practice).
  void add_module(Module& module) { modules_.push_back(&module); }

  /// Registers a callback run after every commit (statistics probes).
  void add_probe(std::function<void(std::uint64_t cycle)> probe) {
    probes_.push_back(std::move(probe));
  }

  /// Advances one clock cycle: tick all modules, commit all signals,
  /// run probes.
  void step();

  /// Advances `cycles` clock cycles.
  void run(std::uint64_t cycles);

  /// Runs until `done()` returns true or `max_cycles` elapse; returns the
  /// number of cycles actually run.
  std::uint64_t run_until(const std::function<bool()>& done,
                          std::uint64_t max_cycles);

  /// Cycles elapsed since construction.
  std::uint64_t cycle() const { return cycle_; }

  std::size_t module_count() const { return modules_.size(); }
  std::size_t signal_count() const { return signals_.size(); }

 private:
  std::vector<Module*> modules_;
  std::vector<std::unique_ptr<SignalBase>> signals_;
  std::vector<std::function<void(std::uint64_t)>> probes_;
  std::uint64_t cycle_ = 0;
};

}  // namespace xpl::sim
