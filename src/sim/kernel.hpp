// Cycle-accurate two-phase simulation kernel.
//
// This is the repository's substitute for the SystemC runtime the original
// xpipes lite library was written against (see DESIGN.md §2). The modelling
// discipline matches fully synchronous, fully registered RTL:
//
//  * Every inter-module connection is a Signal<T> with current/next values.
//  * Each cycle the kernel calls Module::tick() on every module. A tick
//    reads only *current* signal values and writes *next* values, then the
//    kernel commits all signals at once. Module evaluation order therefore
//    cannot affect results, and every signal hop costs exactly one cycle —
//    the same semantics as a flop-to-flop path in the synthesizable RTL.
//  * xpipes lite was explicitly "designed for pipelined links", i.e. all of
//    its interfaces tolerate register stages, so this discipline models the
//    real library without combinational cross-module paths.
//
// Signals hold their value until rewritten. Modules drive each output wire
// on change (plus one trailing reset write when the wire returns to idle),
// so a wire's committed per-cycle value sequence is identical to the
// classic drive-every-cycle discipline.
//
// Two schedulers share this contract (Scheduler, DESIGN.md §9):
//
//  * kFull ticks every module every cycle and commits per-type signal
//    pools in a tight devirtualized loop (one virtual dispatch per *type*
//    per cycle; the per-signal work is a predictable written-flag branch).
//    At ~100% write density an explicit dirty list measured slower — see
//    DESIGN.md §2 — which is why the full path keeps the flag scan.
//  * kGated additionally maintains an active set: modules whose is_idle()
//    predicate holds are skipped entirely until a signal they watch is
//    written (Signal::watch wires the wake) or they are woken explicitly
//    (Module::wake, e.g. on an external push_transaction). Under gating
//    write density is low, so commit walks the cycle's dirty list instead
//    of scanning every signal.
//
// Both schedulers are required to be bit-exact with each other; the
// differential harness in tests/kernel_equiv_test.cpp checks per-cycle
// Kernel::digest() equality over randomized scenarios.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/error.hpp"

namespace xpl::sim {

class Kernel;

/// Kernel scheduling mode; fixed at Kernel construction.
enum class Scheduler : std::uint8_t {
  kFull,   ///< tick every module every cycle (classic two-phase)
  kGated,  ///< skip quiescent modules; wake on watched-signal writes
};

inline const char* scheduler_name(Scheduler s) {
  return s == Scheduler::kGated ? "gated" : "full";
}

/// Base class of all clocked hardware modules.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  /// One clock cycle: read current signal values, write next values and
  /// stage internal state updates. Called exactly once per Kernel::step()
  /// under the full scheduler; skipped while quiescent under the gated one.
  virtual void tick(Kernel& kernel) = 0;

  /// Quiescence predicate for the gated scheduler: return true only when
  /// the next tick() would provably change no internal state and write no
  /// signal value that differs from what the wires already hold. Modules
  /// that cannot promise this keep the safe default (never skipped). The
  /// kernel evaluates this after commit, so implementations read committed
  /// signal values. See DESIGN.md §9 for the per-module contracts.
  virtual bool is_idle() const { return false; }

  /// Re-arms this module. Called automatically when a watched signal is
  /// written; call it directly when injecting work from outside the
  /// simulation (e.g. MasterCore::push_transaction). Arms the *current*
  /// tick phase too: an externally-injected transaction must be served
  /// the same cycle as under the full scheduler, and an extra tick of a
  /// genuinely idle module is a no-op by the is_idle() contract, so a
  /// mid-phase wake of a later-ordered module is harmless.
  void wake() {
    woken_ = true;
    awake_ = true;
  }

  /// True while the gated scheduler is ticking this module (always true
  /// under the full scheduler, which ignores the flag).
  bool awake() const { return awake_; }

 private:
  friend class Kernel;

  std::string name_;
  bool awake_ = true;  ///< gated scheduler: ticked this cycle
  bool woken_ = false; ///< gated scheduler: wake requested during this cycle
};

/// Accumulating 64-bit state hash (FNV-1a style). Used by the differential
/// kernel-equivalence tests to compare full vs gated schedulers per cycle;
/// never touched on the simulation hot path.
class Digest {
 public:
  void mix(std::uint64_t v) {
    state_ ^= v;
    state_ *= 1099511628211ULL;
  }

  std::uint64_t value() const { return state_; }

 private:
  std::uint64_t state_ = 14695981039346656037ULL;
};

/// Customization point: overload hash_append(Digest&, const T&) in T's
/// namespace for every type carried on a Signal that tests digest. The
/// generic overload covers arithmetic and enum payloads.
template <typename T>
  requires(std::is_arithmetic_v<T> || std::is_enum_v<T>)
inline void hash_append(Digest& d, const T& v) {
  d.mix(static_cast<std::uint64_t>(v));
}

/// One staged signal awaiting commit under the gated scheduler. The commit
/// thunk devirtualizes per-entry dispatch into a direct function-pointer
/// call; committing a signal whose written flag is already clear is a no-op,
/// so duplicate entries (possible when a test commits a signal by hand) are
/// harmless.
struct DirtyEntry {
  void* signal = nullptr;
  void (*commit)(void*) = nullptr;
};
using DirtyList = std::vector<DirtyEntry>;

/// A registered wire of type T between two modules.
///
/// read() returns the value as of the last commit; write() stages a value
/// that becomes visible after the current cycle's commit. Signals have no
/// virtual functions: the kernel owns them in per-type pools and commits
/// them with direct calls.
template <typename T>
class Signal {
 public:
  explicit Signal(T reset = T{}) : curr_(reset), next_(std::move(reset)) {}

  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  const T& read() const { return curr_; }

  void write(T value) {
    next_ = std::move(value);
    if (dirty_list_ != nullptr && !written_) {
      dirty_list_->push_back(
          {this, [](void* s) { static_cast<Signal<T>*>(s)->commit(); }});
      if (watchers_[0] != nullptr) watchers_[0]->wake();
      if (watchers_[1] != nullptr) watchers_[1]->wake();
    }
    written_ = true;
  }

  bool written() const { return written_; }

  /// Registers `consumer` to be woken whenever this signal is written
  /// (gated scheduler). Two slots: one reading consumer plus one passive
  /// observer (e.g. an ocp::Monitor snooping a wire it does not own).
  void watch(Module& consumer) {
    if (watchers_[0] == nullptr || watchers_[0] == &consumer) {
      watchers_[0] = &consumer;
      return;
    }
    XPL_ASSERT(watchers_[1] == nullptr || watchers_[1] == &consumer);
    watchers_[1] = &consumer;
  }

  /// Applies the staged value. Called from the pool commit loop (full
  /// scheduler) or via the dirty-list thunk (gated); the written-flag test
  /// keeps idle signals at one predictable branch and makes duplicate
  /// dirty entries no-ops.
  void commit() {
    if (written_) {
      curr_ = std::move(next_);
      written_ = false;
    }
  }

 private:
  friend class Kernel;

  T curr_;
  T next_;
  bool written_ = false;
  DirtyList* dirty_list_ = nullptr;  ///< non-null iff the kernel is gated
  Module* watchers_[2] = {nullptr, nullptr};
};

/// Owns signals, schedules modules, and advances simulated time.
class Kernel {
 public:
  explicit Kernel(Scheduler scheduler = Scheduler::kFull)
      : scheduler_(scheduler) {}

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  Scheduler scheduler() const { return scheduler_; }

  /// Creates a kernel-owned signal and returns a stable reference. The
  /// signal joins the pool of its type (pools use deque storage, so
  /// references never move while the pool grows).
  template <typename T>
  Signal<T>& make_signal(T reset = T{}) {
    SignalPool<T>& pool = pool_for<T>();
    pool.signals.emplace_back(std::move(reset));
    ++signal_count_;
    Signal<T>& sig = pool.signals.back();
    if (scheduler_ == Scheduler::kGated) sig.dirty_list_ = &dirty_;
    return sig;
  }

  /// Registers a module. The kernel does not take ownership; modules must
  /// outlive the kernel's run (the Network owns them in practice).
  void add_module(Module& module) { modules_.push_back(&module); }

  /// Registers a callback run after every commit (statistics probes).
  /// Probes run every cycle under both schedulers.
  void add_probe(std::function<void(std::uint64_t cycle)> probe) {
    probes_.push_back(std::move(probe));
  }

  /// Advances one clock cycle: tick (awake) modules, commit staged
  /// signals, update the active set (gated), run probes.
  void step();

  /// Advances `cycles` clock cycles.
  void run(std::uint64_t cycles);

  /// Runs until `done()` returns true or `max_cycles` elapse; returns the
  /// number of cycles actually run.
  std::uint64_t run_until(const std::function<bool()>& done,
                          std::uint64_t max_cycles);

  /// Cycles elapsed since construction.
  std::uint64_t cycle() const { return cycle_; }

  std::size_t module_count() const { return modules_.size(); }
  /// Registered modules in tick order (quiescence-invariant tests walk
  /// this to check every module's is_idle() claim after a drain).
  const std::vector<Module*>& modules() const { return modules_; }
  std::size_t signal_count() const { return signal_count_; }
  /// Distinct signal types in use (== virtual dispatches per commit).
  std::size_t signal_pool_count() const { return pools_.size(); }
  /// Modules ticked last cycle (== module_count() under kFull).
  std::size_t awake_count() const;

  /// Hash of every signal's committed value, in creation order. Two
  /// identically constructed kernels in the same state produce the same
  /// digest regardless of scheduler — the oracle of the differential
  /// kernel-equivalence tests. Test-only: never called on the hot path.
  std::uint64_t digest() const;

 private:
  /// Type-erased pool handle: one virtual call per type per cycle.
  struct SignalPoolBase {
    virtual ~SignalPoolBase() = default;
    virtual void commit_all() = 0;
    virtual void digest_into(Digest& d) const = 0;
  };

  /// All signals of one type T. Deque storage keeps references stable
  /// under growth while the commit loop walks large contiguous chunks.
  template <typename T>
  struct SignalPool final : SignalPoolBase {
    std::deque<Signal<T>> signals;

    void commit_all() override {
      for (Signal<T>& s : signals) s.commit();  // direct, inlinable call
    }

    void digest_into(Digest& d) const override {
      for (const Signal<T>& s : signals) hash_append(d, s.read());
    }
  };

  template <typename T>
  SignalPool<T>& pool_for() {
    const std::type_index key(typeid(T));
    auto it = pool_index_.find(key);
    if (it == pool_index_.end()) {
      auto pool = std::make_unique<SignalPool<T>>();
      SignalPool<T>* raw = pool.get();
      pools_.push_back(std::move(pool));
      it = pool_index_.emplace(key, raw).first;
    }
    return *static_cast<SignalPool<T>*>(it->second);
  }

  void step_gated();

  Scheduler scheduler_ = Scheduler::kFull;
  std::vector<Module*> modules_;
  std::vector<std::unique_ptr<SignalPoolBase>> pools_;
  std::unordered_map<std::type_index, SignalPoolBase*> pool_index_;
  std::size_t signal_count_ = 0;
  DirtyList dirty_;  ///< signals written this cycle (gated scheduler only)
  std::vector<std::function<void(std::uint64_t)>> probes_;
  std::uint64_t cycle_ = 0;
};

}  // namespace xpl::sim
