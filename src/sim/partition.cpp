#include "src/sim/partition.hpp"

#include "src/sim/kernel.hpp"

namespace xpl::sim {

PartitionPool::PartitionPool(Kernel& kernel, std::size_t threads)
    : kernel_(kernel), threads_(threads) {
  workers_.reserve(threads_ > 0 ? threads_ - 1 : 0);
  for (std::size_t w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

PartitionPool::~PartitionPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void PartitionPool::run_slice(std::size_t worker, std::uint64_t k) {
  for (std::size_t p = worker; p < kernel_.partitions_.size();
       p += threads_) {
    kernel_.run_partition(*kernel_.partitions_[p], k);
  }
}

void PartitionPool::run_epoch(std::uint64_t k) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch_cycles_ = k;
    pending_ = threads_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  run_slice(0, k);  // the driving thread is worker 0
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
}

void PartitionPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    std::uint64_t k = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock,
                     [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      k = epoch_cycles_;
    }
    run_slice(worker, k);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
      if (pending_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace xpl::sim
