// Credit-based registered streaming between modules.
//
// Under the kernel's fully registered discipline (kernel.hpp) a classic
// combinational valid/accept handshake cannot be expressed, so point-to-
// point module interfaces that are not network links (OCP sockets, switch
// internals in tests) use credit flow control: the consumer owns a FIFO of
// known capacity, the producer holds a credit counter initialized to that
// capacity, every data beat spends a credit and every FIFO pop returns one
// over a credit wire. This is standard practice in synthesizable on-chip
// interfaces and costs one counter per side.
//
// Usage per cycle inside Module::tick():
//   producer: begin_cycle(); if (can_send() && ...) send(v); end_cycle();
//   consumer: begin_cycle(); ... front()/pop() ...; end_cycle();
#pragma once

#include <cstdint>

#include "src/common/error.hpp"
#include "src/common/ring.hpp"
#include "src/sim/kernel.hpp"

namespace xpl::sim {

/// Valid-qualified payload carried on a stream's data wire.
template <typename T>
struct Beat {
  bool valid = false;
  T value{};
};

template <typename T>
inline void hash_append(Digest& d, const Beat<T>& b) {
  d.mix(b.valid ? 1u : 0u);
  if (b.valid) hash_append(d, b.value);
}

/// The two wires of a stream, allocated from a Kernel.
template <typename T>
struct StreamWires {
  Signal<Beat<T>>* data = nullptr;
  Signal<std::uint8_t>* credit = nullptr;

  static StreamWires<T> make(Kernel& kernel) {
    return {&kernel.make_signal<Beat<T>>(), &kernel.make_signal<std::uint8_t>()};
  }
};

/// Producer endpoint; embed by value in the sending module.
template <typename T>
class StreamProducer {
 public:
  StreamProducer() = default;
  StreamProducer(StreamWires<T> wires, std::size_t initial_credits)
      : wires_(wires), credits_(initial_credits) {}

  /// Reads returned credits. Call first in tick().
  void begin_cycle() {
    XPL_ASSERT(wires_.data != nullptr);
    credits_ += wires_.credit->read();
    sent_this_cycle_ = false;
  }

  bool can_send() const { return credits_ > 0 && !sent_this_cycle_; }

  /// Sends one beat (at most one per cycle); requires can_send().
  void send(T value) {
    XPL_ASSERT(can_send());
    wires_.data->write(Beat<T>{true, std::move(value)});
    data_dirty_ = true;
    --credits_;
    sent_this_cycle_ = true;
  }

  /// Drives the data wire idle if nothing was sent. Write-on-change: the
  /// reset beat is written once after the last valid beat, then the wire
  /// already holds it and the write is skipped. Call last in tick().
  void end_cycle() {
    if (!sent_this_cycle_ && data_dirty_) {
      wires_.data->write(Beat<T>{});
      data_dirty_ = false;
    }
  }

  /// Wakes `owner` whenever credits are returned on this stream.
  void watch(Module& owner) { wires_.credit->watch(owner); }

  /// Endpoint part of the owner's quiescence predicate: nothing left to
  /// drive on the data wire and no credits arriving that a tick would
  /// need to absorb.
  bool gate_idle() const {
    return !data_dirty_ && wires_.credit->read() == 0;
  }

  std::size_t credits() const { return credits_; }

 private:
  StreamWires<T> wires_{};
  std::size_t credits_ = 0;
  bool sent_this_cycle_ = false;
  bool data_dirty_ = false;  ///< data wire still holds a valid beat
};

/// Consumer endpoint with its receive FIFO; embed by value.
template <typename T>
class StreamConsumer {
 public:
  StreamConsumer() = default;
  StreamConsumer(StreamWires<T> wires, std::size_t capacity)
      : wires_(wires), capacity_(capacity), fifo_(capacity) {}

  /// Latches an arriving beat into the FIFO. Call first in tick().
  void begin_cycle() {
    XPL_ASSERT(wires_.data != nullptr);
    const Beat<T>& beat = wires_.data->read();
    if (beat.valid) {
      // Credit protocol guarantees space; overflow means a protocol bug.
      XPL_ASSERT(fifo_.size() < capacity_);
      fifo_.push_back(beat.value);
    }
    freed_this_cycle_ = 0;
  }

  bool empty() const { return fifo_.empty(); }
  std::size_t size() const { return fifo_.size(); }
  const T& front() const {
    XPL_ASSERT(!fifo_.empty());
    return fifo_.front();
  }

  /// Removes the front element and stages a credit return.
  void pop() {
    XPL_ASSERT(!fifo_.empty());
    fifo_.pop_front();
    ++freed_this_cycle_;
  }

  /// Writes the credit wire. Write-on-change: a zero credit return is
  /// written once after the last nonzero one. Call last in tick().
  void end_cycle() {
    if (freed_this_cycle_ != 0) {
      wires_.credit->write(freed_this_cycle_);
      credit_dirty_ = true;
    } else if (credit_dirty_) {
      wires_.credit->write(0);
      credit_dirty_ = false;
    }
  }

  /// Wakes `owner` whenever a beat arrives on this stream.
  void watch(Module& owner) { wires_.data->watch(owner); }

  /// Endpoint part of the owner's quiescence predicate: no beat arriving
  /// and no credit return left to drive. FIFO occupancy is deliberately
  /// excluded — whether buffered beats still need processing is the
  /// owning module's concern.
  bool gate_idle() const {
    return !credit_dirty_ && !wires_.data->read().valid;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  StreamWires<T> wires_{};
  std::size_t capacity_ = 0;
  Ring<T> fifo_;  ///< capacity fixed at construction; never reallocates
  std::uint8_t freed_this_cycle_ = 0;
  bool credit_dirty_ = false;  ///< credit wire still holds a nonzero value
};

}  // namespace xpl::sim
