#include "src/sim/trace.hpp"

#include "src/common/error.hpp"

namespace xpl::sim {

VcdTracer::VcdTracer(Kernel& kernel, const std::string& path)
    : kernel_(kernel), out_(path) {
  require(out_.good(), "VcdTracer: cannot open " + path);
}

VcdTracer::~VcdTracer() { finish(); }

void VcdTracer::add_probe(const std::string& name, std::size_t width,
                          std::function<std::uint64_t()> sample) {
  require(!started_, "VcdTracer: add_probe after start");
  require(width >= 1 && width <= 64, "VcdTracer: width must be in [1,64]");
  Probe probe;
  probe.name = name;
  probe.id = id_for(probes_.size());
  probe.width = width;
  probe.sample = std::move(sample);
  probes_.push_back(std::move(probe));
}

std::string VcdTracer::id_for(std::size_t index) {
  // Printable-ASCII identifier codes, base 94 starting at '!'.
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

void VcdTracer::start() {
  require(!started_, "VcdTracer: start called twice");
  started_ = true;
  out_ << "$date xpipes lite simulation $end\n"
       << "$version xpl::sim::VcdTracer $end\n"
       << "$timescale 1ns $end\n"
       << "$scope module noc $end\n";
  for (const Probe& probe : probes_) {
    out_ << "$var wire " << probe.width << " " << probe.id << " "
         << probe.name << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  kernel_.add_probe([this](std::uint64_t cycle) { dump_cycle(cycle); });
}

void VcdTracer::dump_cycle(std::uint64_t cycle) {
  if (finished_) return;
  bool stamped = false;
  for (Probe& probe : probes_) {
    const std::uint64_t value = probe.sample();
    if (probe.emitted && value == probe.last) continue;
    if (!stamped) {
      out_ << "#" << cycle << "\n";
      stamped = true;
    }
    if (probe.width == 1) {
      out_ << (value & 1) << probe.id << "\n";
    } else {
      out_ << "b";
      for (std::size_t bit = probe.width; bit-- > 0;) {
        out_ << ((value >> bit) & 1);
      }
      out_ << " " << probe.id << "\n";
    }
    probe.last = value;
    probe.emitted = true;
  }
}

void VcdTracer::finish() {
  if (finished_) return;
  finished_ = true;
  out_.flush();
  out_.close();
}

}  // namespace xpl::sim
