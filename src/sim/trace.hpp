// VCD waveform tracing for the simulation view.
//
// The original library's SystemC simulation view came with waveform
// dumping for free; this tracer restores that capability for the cycle
// kernel. Modules (or testbenches) register named probes — callables
// returning up-to-64-bit values — and the tracer emits a standard VCD
// file one timestep per kernel cycle, loadable in GTKWave & friends.
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/kernel.hpp"

namespace xpl::sim {

class VcdTracer {
 public:
  /// Opens `path` for writing. Throws xpl::Error if it cannot.
  VcdTracer(Kernel& kernel, const std::string& path);
  ~VcdTracer();

  VcdTracer(const VcdTracer&) = delete;
  VcdTracer& operator=(const VcdTracer&) = delete;

  /// Registers a probe before start(): `sample` is read after each commit.
  /// `width` in bits (1 => scalar). Names may contain dots for hierarchy
  /// ("sw0.out_fifo_depth").
  void add_probe(const std::string& name, std::size_t width,
                 std::function<std::uint64_t()> sample);

  /// Writes the VCD header and hooks the kernel. Call once, after all
  /// probes are registered and before stepping the kernel.
  void start();

  /// Flushes and closes the file (also done by the destructor).
  void finish();

  std::size_t probe_count() const { return probes_.size(); }

 private:
  struct Probe {
    std::string name;
    std::string id;  ///< VCD identifier code
    std::size_t width;
    std::function<std::uint64_t()> sample;
    std::uint64_t last = ~std::uint64_t{0};
    bool emitted = false;
  };

  void dump_cycle(std::uint64_t cycle);
  static std::string id_for(std::size_t index);

  Kernel& kernel_;
  std::ofstream out_;
  std::vector<Probe> probes_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace xpl::sim
