#include "src/sim/kernel.hpp"

#include <algorithm>

#include "src/sim/partition.hpp"

namespace xpl::sim {

namespace detail {
thread_local const std::uint64_t* g_cycle_override = nullptr;
}  // namespace detail

Kernel::Kernel(Scheduler scheduler) : scheduler_(scheduler) {}
Kernel::~Kernel() = default;

void Kernel::configure_partitions(std::size_t partitions,
                                  std::size_t threads) {
  // Must precede all signal/module creation: dirty-list routing and
  // partition membership are fixed at creation time.
  XPL_ASSERT(modules_.empty() && signal_count_ == 0);
  if (partitions <= 1) return;
  partitions_.reserve(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    partitions_.push_back(std::make_unique<Partition>());
  }
  threads_ = std::clamp<std::size_t>(threads, 1, partitions);
}

std::uint64_t Kernel::cut_flits() const {
  std::uint64_t total = 0;
  for (const CutChannel* c : cuts_) total += c->flits_exchanged();
  return total;
}

void Kernel::step() {
  if (partitioned()) {
    run_epoch(1);
    return;
  }
  if (scheduler_ == Scheduler::kGated) {
    step_gated();
    return;
  }
  if (scheduler_ == Scheduler::kTimeLeap) {
    // A single step never leaps: step() is the cycle-exact primitive the
    // differential harness and run_until lean on.
    step_timeleap();
    return;
  }
  for (Module* m : modules_) {
    m->tick(*this);
  }
  // Commit per type pool: one virtual dispatch per signal *type*, then a
  // tight non-virtual loop testing each signal's written flag (see
  // Signal::commit and DESIGN.md §2).
  for (auto& pool : pools_) {
    pool->commit_all();
  }
  ++cycle_;
  for (auto& p : probes_) {
    p(cycle_);
  }
}

void Kernel::step_gated() {
  // Tick only the active set. Writes to watched signals during this phase
  // set the writers' consumers' woken flags and append dirty entries.
  for (Module* m : modules_) {
    if (m->awake_) m->tick(*this);
  }
  // Commit exactly the signals written this cycle. Under gating write
  // density is low (idle modules drive nothing), so the dirty list beats
  // the full-pool flag scan that wins at ~100% density (DESIGN.md §2/§9).
  for (const DirtyEntry& e : dirty_) {
    e.commit(e.signal);
  }
  dirty_.clear();
  // Active-set update, after commit so is_idle() reads committed values:
  // a woken module joins the set; a ticked module leaves it only when its
  // quiescence predicate holds.
  for (Module* m : modules_) {
    if (m->woken_) {
      m->awake_ = true;
      m->woken_ = false;
    } else if (m->awake_) {
      m->awake_ = !m->is_idle();
    }
  }
  ++cycle_;
  for (auto& p : probes_) {
    p(cycle_);
  }
}

void Kernel::step_timeleap() {
  // Serve the calendar first: a module due this cycle must tick this
  // cycle. wake() also sets woken_, so a calendar-woken module stays in
  // the active set one extra cycle — a harmless frozen-tick no-op, the
  // same slack gated wakes have.
  calendar_.advance(cycle_);
  for (Module* m : modules_) {
    if (m->awake_) m->tick(*this);
  }
  for (const DirtyEntry& e : dirty_) {
    e.commit(e.signal);
  }
  dirty_.clear();
  // Active-set update, gated rules plus the calendar exit: a busy module
  // whose next self-driven change lies beyond the next cycle parks on the
  // calendar instead of spinning through bookkeeping-only ticks.
  std::size_t awake = 0;
  for (Module* m : modules_) {
    if (m->woken_) {
      m->awake_ = true;
      m->woken_ = false;
      ++awake;
    } else if (m->awake_) {
      if (m->is_idle()) {
        m->awake_ = false;  // signal-wake only, exactly as gated
      } else {
        const std::uint64_t e = m->next_event(cycle_);
        if (e <= cycle_ + 1) {
          ++awake;
        } else {
          m->awake_ = false;
          if (e != kNever) calendar_.schedule(e, m);
        }
      }
    }
  }
  awake_n_ = awake;
  ++cycle_;
  for (auto& p : probes_) {
    p(cycle_);
  }
}

void Kernel::refresh_awake_n() {
  std::size_t n = 0;
  for (const Module* m : modules_) {
    if (m->awake_) ++n;
  }
  awake_n_ = n;
}

void Kernel::run_timeleap(std::uint64_t cycles) {
  refresh_awake_n();
  const std::uint64_t end = cycle_ + cycles;
  while (cycle_ < end) {
    // Probes force per-cycle stepping: they observe every committed
    // cycle, and a leapt cycle is never committed.
    if (awake_n_ == 0 && probes_.empty()) {
      const std::uint64_t target = std::min(calendar_.next_due(), end);
      if (target > cycle_) {
        leapt_cycles_ += target - cycle_;
        cycle_ = target;
        continue;
      }
    }
    step_timeleap();
  }
}

void Kernel::run_partition(Partition& p, std::uint64_t k) {
  p.local_cycle = cycle_;
  detail::g_cycle_override = &p.local_cycle;
  if (scheduler_ == Scheduler::kGated) {
    for (std::uint64_t i = 0; i < k; ++i) {
      for (Module* m : p.modules) {
        if (m->awake_) m->tick(*this);
      }
      for (const DirtyEntry& e : p.dirty) {
        e.commit(e.signal);
      }
      p.dirty.clear();
      for (Module* m : p.modules) {
        if (m->woken_) {
          m->awake_ = true;
          m->woken_ = false;
        } else if (m->awake_) {
          m->awake_ = !m->is_idle();
        }
      }
      ++p.local_cycle;
    }
  } else if (scheduler_ == Scheduler::kTimeLeap) {
    // Refresh the partition's awake count at epoch entry: exchange
    // deliveries and external pushes flip awake_ flags between epochs
    // without this loop seeing them.
    std::size_t awake = 0;
    for (const Module* m : p.modules) {
      if (m->awake_) ++awake;
    }
    const std::uint64_t epoch_end = cycle_ + k;
    while (p.local_cycle < epoch_end) {
      if (awake == 0) {
        // Partition-local leap, capped at the epoch barrier: a record
        // staged for a neighbour is only delivered at the barrier, so a
        // leap may never cross it.
        const std::uint64_t target =
            std::min(p.calendar.next_due(), epoch_end);
        if (target > p.local_cycle) {
          p.leapt += target - p.local_cycle;
          p.local_cycle = target;
          continue;
        }
      }
      p.calendar.advance(p.local_cycle);
      for (Module* m : p.modules) {
        if (m->awake_) m->tick(*this);
      }
      for (const DirtyEntry& e : p.dirty) {
        e.commit(e.signal);
      }
      p.dirty.clear();
      awake = 0;
      for (Module* m : p.modules) {
        if (m->woken_) {
          m->awake_ = true;
          m->woken_ = false;
          ++awake;
        } else if (m->awake_) {
          if (m->is_idle()) {
            m->awake_ = false;
          } else {
            const std::uint64_t e = m->next_event(p.local_cycle);
            if (e <= p.local_cycle + 1) {
              ++awake;
            } else {
              m->awake_ = false;
              if (e != kNever) p.calendar.schedule(e, m);
            }
          }
        }
      }
      ++p.local_cycle;
    }
  } else {
    // Full scheduler, partitioned: tick everything, but commit via the
    // partition dirty list — the per-type pool sweep cannot be split by
    // partition. Wake flags set by watched writes are ignored here.
    for (std::uint64_t i = 0; i < k; ++i) {
      for (Module* m : p.modules) {
        m->tick(*this);
      }
      for (const DirtyEntry& e : p.dirty) {
        e.commit(e.signal);
      }
      p.dirty.clear();
      ++p.local_cycle;
    }
  }
  detail::g_cycle_override = nullptr;
}

// Serial one-cycle epochs (mesh cuts have zero stages, so k == 1) gain
// nothing from per-partition passes but pay their cache cost: two walks
// over the module list and signal working set per cycle instead of one.
// At saturation that measured ~25-35% on a 1-core host. Fuse the
// partitions into one global-registration-order pass — bit-exact, since
// cross-partition reads and watches are forbidden by construction,
// partition module lists are subsequences of modules_, and commits of
// distinct signals commute (the invariance suite and goldens pin this).
void Kernel::step_partitions_fused() {
  if (scheduler_ == Scheduler::kGated) {
    for (Module* m : modules_) {
      if (m->awake_) m->tick(*this);
    }
    for (auto& p : partitions_) {
      for (const DirtyEntry& e : p->dirty) {
        e.commit(e.signal);
      }
      p->dirty.clear();
    }
    for (Module* m : modules_) {
      if (m->woken_) {
        m->awake_ = true;
        m->woken_ = false;
      } else if (m->awake_) {
        m->awake_ = !m->is_idle();
      }
    }
  } else if (scheduler_ == Scheduler::kTimeLeap) {
    // Fused one-cycle epoch, time-leap flavour: same global-order pass as
    // gated, but idle-with-future-state modules park on their partition's
    // calendar. Intra-epoch leaps are impossible at k == 1; the wholesale
    // all-asleep fast-forward lives in Kernel::run.
    for (auto& p : partitions_) {
      p->calendar.advance(cycle_);
    }
    for (Module* m : modules_) {
      if (m->awake_) m->tick(*this);
    }
    for (auto& p : partitions_) {
      for (const DirtyEntry& e : p->dirty) {
        e.commit(e.signal);
      }
      p->dirty.clear();
    }
    for (Module* m : modules_) {
      if (m->woken_) {
        m->awake_ = true;
        m->woken_ = false;
      } else if (m->awake_) {
        if (m->is_idle()) {
          m->awake_ = false;
        } else {
          const std::uint64_t e = m->next_event(cycle_);
          if (e > cycle_ + 1) {
            m->awake_ = false;
            if (e != kNever) {
              partitions_[m->partition_]->calendar.schedule(e, m);
            }
          }
        }
      }
    }
  } else {
    for (Module* m : modules_) {
      m->tick(*this);
    }
    for (auto& p : partitions_) {
      for (const DirtyEntry& e : p->dirty) {
        e.commit(e.signal);
      }
      p->dirty.clear();
    }
  }
}

void Kernel::run_epoch(std::uint64_t k) {
  if (threads_ > 1) {
    if (!pool_) pool_ = std::make_unique<PartitionPool>(*this, threads_);
    pool_->run_epoch(k);
  } else if (k == 1) {
    step_partitions_fused();
  } else {
    for (auto& p : partitions_) {
      run_partition(*p, k);
    }
  }
  cycle_ += k;
  // Single-threaded exchange in registration (= topology link id) order:
  // the determinism anchor for all cross-partition effects.
  for (CutChannel* c : cuts_) {
    c->exchange();
  }
  ++epochs_;
}

std::size_t Kernel::awake_count() const {
  if (scheduler_ == Scheduler::kFull) return modules_.size();
  std::size_t n = 0;
  for (const Module* m : modules_) {
    if (m->awake_) ++n;
  }
  return n;
}

std::uint64_t Kernel::digest() const {
  Digest d;
  for (const auto& pool : pools_) {
    pool->digest_into(d);
  }
  return d.value();
}

void Kernel::run(std::uint64_t cycles) {
  if (!partitioned()) {
    if (scheduler_ == Scheduler::kTimeLeap) {
      run_timeleap(cycles);
      return;
    }
    for (std::uint64_t i = 0; i < cycles; ++i) step();
    return;
  }
  while (cycles > 0) {
    if (scheduler_ == Scheduler::kTimeLeap) {
      // Wholesale epoch fast-forward: when every module in every
      // partition is asleep, no epoch before the earliest calendar due
      // can tick anything, stage anything, or exchange anything (empty
      // exchanges are no-ops, and all-asleep implies no undelivered
      // wakes), so the skipped epochs need not execute at all. epochs()
      // counts executed barriers only.
      bool any_awake = false;
      for (const Module* m : modules_) {
        if (m->awake_) {
          any_awake = true;
          break;
        }
      }
      if (!any_awake) {
        std::uint64_t min_due = kNever;
        for (const auto& p : partitions_) {
          min_due = std::min(min_due, p->calendar.next_due());
        }
        std::uint64_t skip = cycles;
        if (min_due != kNever) {
          skip = std::min(skip, min_due > cycle_ ? min_due - cycle_
                                                 : std::uint64_t{0});
        }
        if (skip > 0) {
          cycle_ += skip;
          leapt_cycles_ += skip;
          cycles -= skip;
          continue;
        }
      }
    }
    const std::uint64_t k = std::min<std::uint64_t>(lookahead_, cycles);
    run_epoch(k);
    cycles -= k;
  }
}

std::uint64_t Kernel::run_until(const std::function<bool()>& done,
                                std::uint64_t max_cycles) {
  if (scheduler_ == Scheduler::kTimeLeap && !partitioned()) {
    // Leaping stays cycle-exact for the callers this interface serves:
    // done() predicates read module state (drain/quiescence checks),
    // which is frozen across a leapt gap, so one evaluation before the
    // leap covers every skipped boundary.
    refresh_awake_n();
    std::uint64_t n = 0;
    while (n < max_cycles && !done()) {
      if (awake_n_ == 0 && probes_.empty()) {
        const std::uint64_t end = cycle_ + (max_cycles - n);
        const std::uint64_t target = std::min(calendar_.next_due(), end);
        if (target > cycle_) {
          const std::uint64_t d = target - cycle_;
          leapt_cycles_ += d;
          cycle_ = target;
          n += d;
          continue;
        }
      }
      step_timeleap();
      ++n;
    }
    return n;
  }
  std::uint64_t n = 0;
  while (n < max_cycles && !done()) {
    step();
    ++n;
  }
  return n;
}

std::uint64_t Kernel::leapt_cycles() const {
  std::uint64_t total = leapt_cycles_;
  for (const auto& p : partitions_) total += p->leapt;
  return total;
}

}  // namespace xpl::sim
