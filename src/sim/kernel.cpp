#include "src/sim/kernel.hpp"

namespace xpl::sim {

void Kernel::step() {
  for (Module* m : modules_) {
    m->tick(*this);
  }
  // Commit per type pool: one virtual dispatch per signal *type*, then a
  // tight non-virtual loop testing each signal's written flag (see
  // Signal::commit and DESIGN.md §2).
  for (auto& pool : pools_) {
    pool->commit_all();
  }
  ++cycle_;
  for (auto& p : probes_) {
    p(cycle_);
  }
}

void Kernel::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) step();
}

std::uint64_t Kernel::run_until(const std::function<bool()>& done,
                                std::uint64_t max_cycles) {
  std::uint64_t n = 0;
  while (n < max_cycles && !done()) {
    step();
    ++n;
  }
  return n;
}

}  // namespace xpl::sim
