#include "src/sim/kernel.hpp"

namespace xpl::sim {

void Kernel::step() {
  if (scheduler_ == Scheduler::kGated) {
    step_gated();
    return;
  }
  for (Module* m : modules_) {
    m->tick(*this);
  }
  // Commit per type pool: one virtual dispatch per signal *type*, then a
  // tight non-virtual loop testing each signal's written flag (see
  // Signal::commit and DESIGN.md §2).
  for (auto& pool : pools_) {
    pool->commit_all();
  }
  ++cycle_;
  for (auto& p : probes_) {
    p(cycle_);
  }
}

void Kernel::step_gated() {
  // Tick only the active set. Writes to watched signals during this phase
  // set the writers' consumers' woken flags and append dirty entries.
  for (Module* m : modules_) {
    if (m->awake_) m->tick(*this);
  }
  // Commit exactly the signals written this cycle. Under gating write
  // density is low (idle modules drive nothing), so the dirty list beats
  // the full-pool flag scan that wins at ~100% density (DESIGN.md §2/§9).
  for (const DirtyEntry& e : dirty_) {
    e.commit(e.signal);
  }
  dirty_.clear();
  // Active-set update, after commit so is_idle() reads committed values:
  // a woken module joins the set; a ticked module leaves it only when its
  // quiescence predicate holds.
  for (Module* m : modules_) {
    if (m->woken_) {
      m->awake_ = true;
      m->woken_ = false;
    } else if (m->awake_) {
      m->awake_ = !m->is_idle();
    }
  }
  ++cycle_;
  for (auto& p : probes_) {
    p(cycle_);
  }
}

std::size_t Kernel::awake_count() const {
  if (scheduler_ == Scheduler::kFull) return modules_.size();
  std::size_t n = 0;
  for (const Module* m : modules_) {
    if (m->awake_) ++n;
  }
  return n;
}

std::uint64_t Kernel::digest() const {
  Digest d;
  for (const auto& pool : pools_) {
    pool->digest_into(d);
  }
  return d.value();
}

void Kernel::run(std::uint64_t cycles) {
  for (std::uint64_t i = 0; i < cycles; ++i) step();
}

std::uint64_t Kernel::run_until(const std::function<bool()>& done,
                                std::uint64_t max_cycles) {
  std::uint64_t n = 0;
  while (n < max_cycles && !done()) {
    step();
    ++n;
  }
  return n;
}

}  // namespace xpl::sim
