#include "src/sim/kernel.hpp"

#include <algorithm>

#include "src/sim/partition.hpp"

namespace xpl::sim {

namespace detail {
thread_local const std::uint64_t* g_cycle_override = nullptr;
}  // namespace detail

Kernel::Kernel(Scheduler scheduler) : scheduler_(scheduler) {}
Kernel::~Kernel() = default;

void Kernel::configure_partitions(std::size_t partitions,
                                  std::size_t threads) {
  // Must precede all signal/module creation: dirty-list routing and
  // partition membership are fixed at creation time.
  XPL_ASSERT(modules_.empty() && signal_count_ == 0);
  if (partitions <= 1) return;
  partitions_.reserve(partitions);
  for (std::size_t p = 0; p < partitions; ++p) {
    partitions_.push_back(std::make_unique<Partition>());
  }
  threads_ = std::clamp<std::size_t>(threads, 1, partitions);
}

std::uint64_t Kernel::cut_flits() const {
  std::uint64_t total = 0;
  for (const CutChannel* c : cuts_) total += c->flits_exchanged();
  return total;
}

void Kernel::step() {
  if (partitioned()) {
    run_epoch(1);
    return;
  }
  if (scheduler_ == Scheduler::kGated) {
    step_gated();
    return;
  }
  for (Module* m : modules_) {
    m->tick(*this);
  }
  // Commit per type pool: one virtual dispatch per signal *type*, then a
  // tight non-virtual loop testing each signal's written flag (see
  // Signal::commit and DESIGN.md §2).
  for (auto& pool : pools_) {
    pool->commit_all();
  }
  ++cycle_;
  for (auto& p : probes_) {
    p(cycle_);
  }
}

void Kernel::step_gated() {
  // Tick only the active set. Writes to watched signals during this phase
  // set the writers' consumers' woken flags and append dirty entries.
  for (Module* m : modules_) {
    if (m->awake_) m->tick(*this);
  }
  // Commit exactly the signals written this cycle. Under gating write
  // density is low (idle modules drive nothing), so the dirty list beats
  // the full-pool flag scan that wins at ~100% density (DESIGN.md §2/§9).
  for (const DirtyEntry& e : dirty_) {
    e.commit(e.signal);
  }
  dirty_.clear();
  // Active-set update, after commit so is_idle() reads committed values:
  // a woken module joins the set; a ticked module leaves it only when its
  // quiescence predicate holds.
  for (Module* m : modules_) {
    if (m->woken_) {
      m->awake_ = true;
      m->woken_ = false;
    } else if (m->awake_) {
      m->awake_ = !m->is_idle();
    }
  }
  ++cycle_;
  for (auto& p : probes_) {
    p(cycle_);
  }
}

void Kernel::run_partition(Partition& p, std::uint64_t k) {
  p.local_cycle = cycle_;
  detail::g_cycle_override = &p.local_cycle;
  if (scheduler_ == Scheduler::kGated) {
    for (std::uint64_t i = 0; i < k; ++i) {
      for (Module* m : p.modules) {
        if (m->awake_) m->tick(*this);
      }
      for (const DirtyEntry& e : p.dirty) {
        e.commit(e.signal);
      }
      p.dirty.clear();
      for (Module* m : p.modules) {
        if (m->woken_) {
          m->awake_ = true;
          m->woken_ = false;
        } else if (m->awake_) {
          m->awake_ = !m->is_idle();
        }
      }
      ++p.local_cycle;
    }
  } else {
    // Full scheduler, partitioned: tick everything, but commit via the
    // partition dirty list — the per-type pool sweep cannot be split by
    // partition. Wake flags set by watched writes are ignored here.
    for (std::uint64_t i = 0; i < k; ++i) {
      for (Module* m : p.modules) {
        m->tick(*this);
      }
      for (const DirtyEntry& e : p.dirty) {
        e.commit(e.signal);
      }
      p.dirty.clear();
      ++p.local_cycle;
    }
  }
  detail::g_cycle_override = nullptr;
}

// Serial one-cycle epochs (mesh cuts have zero stages, so k == 1) gain
// nothing from per-partition passes but pay their cache cost: two walks
// over the module list and signal working set per cycle instead of one.
// At saturation that measured ~25-35% on a 1-core host. Fuse the
// partitions into one global-registration-order pass — bit-exact, since
// cross-partition reads and watches are forbidden by construction,
// partition module lists are subsequences of modules_, and commits of
// distinct signals commute (the invariance suite and goldens pin this).
void Kernel::step_partitions_fused() {
  if (scheduler_ == Scheduler::kGated) {
    for (Module* m : modules_) {
      if (m->awake_) m->tick(*this);
    }
    for (auto& p : partitions_) {
      for (const DirtyEntry& e : p->dirty) {
        e.commit(e.signal);
      }
      p->dirty.clear();
    }
    for (Module* m : modules_) {
      if (m->woken_) {
        m->awake_ = true;
        m->woken_ = false;
      } else if (m->awake_) {
        m->awake_ = !m->is_idle();
      }
    }
  } else {
    for (Module* m : modules_) {
      m->tick(*this);
    }
    for (auto& p : partitions_) {
      for (const DirtyEntry& e : p->dirty) {
        e.commit(e.signal);
      }
      p->dirty.clear();
    }
  }
}

void Kernel::run_epoch(std::uint64_t k) {
  if (threads_ > 1) {
    if (!pool_) pool_ = std::make_unique<PartitionPool>(*this, threads_);
    pool_->run_epoch(k);
  } else if (k == 1) {
    step_partitions_fused();
  } else {
    for (auto& p : partitions_) {
      run_partition(*p, k);
    }
  }
  cycle_ += k;
  // Single-threaded exchange in registration (= topology link id) order:
  // the determinism anchor for all cross-partition effects.
  for (CutChannel* c : cuts_) {
    c->exchange();
  }
  ++epochs_;
}

std::size_t Kernel::awake_count() const {
  if (scheduler_ == Scheduler::kFull) return modules_.size();
  std::size_t n = 0;
  for (const Module* m : modules_) {
    if (m->awake_) ++n;
  }
  return n;
}

std::uint64_t Kernel::digest() const {
  Digest d;
  for (const auto& pool : pools_) {
    pool->digest_into(d);
  }
  return d.value();
}

void Kernel::run(std::uint64_t cycles) {
  if (!partitioned()) {
    for (std::uint64_t i = 0; i < cycles; ++i) step();
    return;
  }
  while (cycles > 0) {
    const std::uint64_t k = std::min<std::uint64_t>(lookahead_, cycles);
    run_epoch(k);
    cycles -= k;
  }
}

std::uint64_t Kernel::run_until(const std::function<bool()>& done,
                                std::uint64_t max_cycles) {
  std::uint64_t n = 0;
  while (n < max_cycles && !done()) {
    step();
    ++n;
  }
  return n;
}

}  // namespace xpl::sim
