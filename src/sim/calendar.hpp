// Timed-wake calendar for the time-leap scheduler (DESIGN.md §12).
//
// Modules that go idle *with pending future state* (a link beat mid-pipe,
// a slave job inside its latency window, a master blocked on a release
// cycle, a driver between injections) declare the cycle of their next
// self-driven state change via Module::next_event(). The kernel parks
// them here; when the active set drains it leaps the clock straight to
// the calendar's next due cycle instead of walking the gap.
//
// Structure: a bucketed time wheel for near dues plus an overflow
// min-heap for far ones. The wheel covers a sliding window of
// kWheelBuckets cycles starting at window_start_; scheduling inside the
// window is O(1) (links, slaves and credit round trips land here — dues
// a few cycles out), anything beyond goes to the heap (driver
// next-injection cycles across long idle gaps). The wheel never migrates
// heap entries on small slides: the heap is drained directly by
// advance(), so wheel residency is purely an optimization and both
// containers agree on semantics.
//
// Entries are never deleted early. A module woken by a signal before its
// due cycle leaves a stale entry behind; the resulting spurious wake
// ticks a module whose frozen ticks are observable no-ops (the same
// contract that makes gated == full), so duplicates and stale entries
// are harmless by construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "src/common/error.hpp"

namespace xpl::sim {

class Module;

/// Sentinel for "no pending due cycle" / "no self-driven next event".
inline constexpr std::uint64_t kNever = ~std::uint64_t{0};

class WakeCalendar {
 public:
  /// Parks `m` for a wake at cycle `due`. `due` must be strictly greater
  /// than the current cycle (the kernel wakes immediately otherwise).
  void schedule(std::uint64_t due, Module* m) {
    XPL_ASSERT(due >= window_start_);
    if (due - window_start_ < kWheelBuckets) {
      Bucket& b = wheel_[due % kWheelBuckets];
      XPL_ASSERT(b.entries.empty() || b.due == due);
      b.due = due;
      b.entries.push_back(m);
      set_bit(due % kWheelBuckets);
    } else {
      heap_.push_back({due, m});
      std::push_heap(heap_.begin(), heap_.end(), later);
    }
    ++size_;
  }

  /// Wakes every parked module whose due cycle is <= `now` and slides the
  /// window to start at now + 1. Cost is proportional to the entries
  /// actually due plus a bitmap-word scan — not to the distance slid, so
  /// leaping a million-cycle gap costs the same as stepping one cycle.
  void advance(std::uint64_t now);

  /// Earliest pending due cycle, or kNever when nothing is parked.
  std::uint64_t next_due() const;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

 private:
  struct Entry {
    std::uint64_t due = 0;
    Module* module = nullptr;
  };
  /// Wheel slot. Single-due invariant: a bucket only holds entries of one
  /// due cycle at a time — a new due can map to an occupied bucket only
  /// one full wheel revolution later, and advance() has emptied it by
  /// then (it never slides past an unserved due).
  struct Bucket {
    std::uint64_t due = 0;
    std::vector<Module*> entries;
  };

  static constexpr std::size_t kWheelBuckets = 256;
  static constexpr std::size_t kBitmapWords = kWheelBuckets / 64;

  static bool later(const Entry& a, const Entry& b) { return a.due > b.due; }

  void set_bit(std::size_t bucket) {
    bitmap_[bucket / 64] |= std::uint64_t{1} << (bucket % 64);
  }
  void clear_bit(std::size_t bucket) {
    bitmap_[bucket / 64] &= ~(std::uint64_t{1} << (bucket % 64));
  }

  std::vector<Bucket> wheel_{kWheelBuckets};
  std::uint64_t bitmap_[kBitmapWords] = {0, 0, 0, 0};
  std::vector<Entry> heap_;  ///< std::push_heap/pop_heap min-heap on due
  std::uint64_t window_start_ = 0;  ///< wheel covers [start, start + 256)
  std::size_t size_ = 0;
};

}  // namespace xpl::sim
