#include "src/sim/calendar.hpp"

#include <bit>

#include "src/sim/kernel.hpp"

namespace xpl::sim {

void WakeCalendar::advance(std::uint64_t now) {
  if (size_ != 0) {
    // Wheel: each set bitmap bit is one pending bucket; the bucket's own
    // due field says whether it has come due. At most 4 words scanned
    // regardless of how far the window slides.
    for (std::size_t w = 0; w < kBitmapWords; ++w) {
      std::uint64_t bits = bitmap_[w];
      while (bits != 0) {
        const std::size_t bucket =
            w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
        bits &= bits - 1;
        Bucket& b = wheel_[bucket];
        if (b.due > now) continue;
        for (Module* m : b.entries) m->wake();
        size_ -= b.entries.size();
        b.entries.clear();
        clear_bit(bucket);
      }
    }
    // Overflow heap: pop everything due. Heap entries may lie inside the
    // wheel window after earlier slides — they are served here directly,
    // never migrated.
    while (!heap_.empty() && heap_.front().due <= now) {
      heap_.front().module->wake();
      std::pop_heap(heap_.begin(), heap_.end(), later);
      heap_.pop_back();
      --size_;
    }
  }
  if (now + 1 > window_start_) window_start_ = now + 1;
}

std::uint64_t WakeCalendar::next_due() const {
  std::uint64_t due = heap_.empty() ? kNever : heap_.front().due;
  for (std::size_t w = 0; w < kBitmapWords; ++w) {
    std::uint64_t bits = bitmap_[w];
    while (bits != 0) {
      const std::size_t bucket =
          w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      due = std::min(due, wheel_[bucket].due);
    }
  }
  return due;
}

}  // namespace xpl::sim
