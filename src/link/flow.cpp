#include "src/link/flow.hpp"

#include "src/common/error.hpp"

namespace xpl::link {

const char* flow_control_name(FlowControl flow) {
  switch (flow) {
    case FlowControl::kAckNack:
      return "ack_nack";
    case FlowControl::kCredit:
      return "credit";
  }
  return "?";
}

FlowControl parse_flow_control(const std::string& name) {
  if (name == "ack_nack") return FlowControl::kAckNack;
  if (name == "credit") return FlowControl::kCredit;
  throw Error("unknown flow control '" + name +
              "' (expected ack_nack | credit)");
}

}  // namespace xpl::link
