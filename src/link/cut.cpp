#include "src/link/cut.hpp"

namespace xpl::link {

CutLink::CutLink(const std::string& name, const LinkWires& upstream,
                 const LinkWires& downstream, const Config& config)
    : name_(name),
      config_(config),
      up_(upstream),
      down_(downstream),
      rng_(config.seed),
      sender_(*this, name + ".tx"),
      receiver_(*this, name + ".rx") {
  // Each half watches the wire it samples, in its own partition — the
  // same two watch slots the uncut PipelinedLink would take.
  up_.fwd->watch(sender_);
  down_.rev->watch(receiver_);
}

// Identical fault model and RNG draw order to PipelinedLink: beats are
// corrupted in arrival order and every beat draws the same number of
// chances, so the corrupted payload stream matches the uncut link's.
void CutLink::corrupt_in_place(FlitBeat& beat) {
  bool corrupted = false;
  Flit& flit = beat.flit;
  for (std::size_t i = 0; i < flit.payload.width(); ++i) {
    if (rng_.chance(config_.bit_error_rate)) {
      flit.payload.set(i, !flit.payload.get(i));
      corrupted = true;
    }
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.head = !flit.head;
    corrupted = true;
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.tail = !flit.tail;
    corrupted = true;
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.seqno ^= 1u << rng_.next_below(8);
    corrupted = true;
  }
  if (corrupted) ++flits_corrupted_;
}

void CutLink::tick_sender(sim::Kernel& kernel) {
  const std::uint64_t now = kernel.cycle();
  // Replay due ack records onto the upstream reverse wire with the uncut
  // link's write-on-change filter: valid beats always, the idle beat
  // only as the one trailing write after a valid run. The filter matters
  // — an extra idle write would wake the upstream consumer on cycles the
  // uncut link would not.
  while (!rev_inbox_.empty() && rev_inbox_.front().due == now) {
    AckBeat beat = rev_inbox_.front().beat;
    rev_inbox_.pop_front();
    if (beat.valid) {
      up_.rev->write(beat);
      rev_out_dirty_ = true;
    } else if (rev_out_dirty_) {
      up_.rev->write(beat);
      rev_out_dirty_ = false;
    }
  }
  // Capture this cycle's upstream write, if any. Under write-on-change a
  // wire holds a valid beat only on cycles it was written for, so the
  // record stream equals the beat stream the uncut link would carry.
  if (up_.fwd->written()) {
    FlitBeat beat = up_.fwd->staged();
    if (beat.valid) {
      ++flits_carried_;
      if (config_.bit_error_rate > 0.0) corrupt_in_place(beat);
    }
    fwd_outbox_.push_back({now + 1 + config_.stages, std::move(beat)});
  }
}

void CutLink::tick_receiver(sim::Kernel& kernel) {
  const std::uint64_t now = kernel.cycle();
  while (!fwd_inbox_.empty() && fwd_inbox_.front().due == now) {
    FlitBeat beat = std::move(fwd_inbox_.front().beat);
    fwd_inbox_.pop_front();
    if (beat.valid) {
      down_.fwd->write(std::move(beat));
      fwd_out_dirty_ = true;
    } else if (fwd_out_dirty_) {
      down_.fwd->write(std::move(beat));
      fwd_out_dirty_ = false;
    }
  }
  if (down_.rev->written()) {
    rev_outbox_.push_back(
        {now + 1 + config_.stages, down_.rev->staged()});
  }
}

bool CutLink::sender_idle() const {
  // Mirrors PipelinedLink::is_idle restricted to the sender's half of
  // the state: pending records anywhere on this side, an undrained
  // upstream input, or an un-reset reverse output all block quiescence
  // (so drain-cycle counts match the uncut link's).
  return fwd_outbox_.empty() && rev_inbox_.empty() && !rev_out_dirty_ &&
         !up_.fwd->read().valid;
}

bool CutLink::receiver_idle() const {
  return fwd_inbox_.empty() && rev_outbox_.empty() && !fwd_out_dirty_ &&
         !down_.rev->read().valid;
}

// Time-leap next events for the halves. Only the *inbox* front due is a
// self-driven event: capture gates on written() (the watcher wakes the
// half on every upstream write), outboxes drain at the exchange barrier
// regardless of wakefulness, and a dirty output wire's trailing idle
// write is itself carried by an inbox record — so a half with an empty
// inbox has nothing to do until a signal or exchange wake arrives.
std::uint64_t CutLink::sender_next_event(std::uint64_t now) const {
  if (up_.fwd->read().valid) return now + 1;
  return rev_inbox_.empty() ? sim::kNever : rev_inbox_.front().due;
}

std::uint64_t CutLink::receiver_next_event(std::uint64_t now) const {
  if (down_.rev->read().valid) return now + 1;
  return fwd_inbox_.empty() ? sim::kNever : fwd_inbox_.front().due;
}

void CutLink::exchange() {
  if (!fwd_outbox_.empty()) {
    do {
      if (fwd_outbox_.front().beat.valid) ++flits_exchanged_;
      fwd_inbox_.push_back(std::move(fwd_outbox_.front()));
      fwd_outbox_.pop_front();
    } while (!fwd_outbox_.empty());
    receiver_.wake();
  }
  if (!rev_outbox_.empty()) {
    do {
      rev_inbox_.push_back(std::move(rev_outbox_.front()));
      rev_outbox_.pop_front();
    } while (!rev_outbox_.empty());
    sender_.wake();
  }
}

}  // namespace xpl::link
