// Cross-partition replacement for PipelinedLink (DESIGN.md §10).
//
// When a topology link's endpoints land in different kernel partitions,
// the link cannot stay a single module: it would read a signal committed
// by one partition and write a signal committed by another, racing the
// concurrent epochs. A CutLink splits it into two half-modules connected
// by double-buffered mailboxes:
//
//  * the Sender half lives in the upstream switch's partition. It
//    samples the upstream forward wire's *staged* value in the same
//    cycle it is written (halves register in the link slot, after every
//    module of their partition that can drive the wire) and stages a
//    {due = now + 1 + stages, beat} record; it also replays due ack
//    records onto the upstream reverse wire.
//  * the Receiver half lives in the downstream switch's partition,
//    replays due flit records onto the downstream forward wire, and
//    samples the downstream reverse (ack) wire symmetrically.
//
// Records cross between the halves only in exchange(), which the kernel
// calls single-threaded between epochs in registration order. Because
// upstream drives follow the write-on-change discipline (every valid
// beat written, plus one trailing idle write), the record stream is
// exactly the upstream write-event stream, and replaying it at the due
// cycles reproduces the uncut link's downstream write set — values,
// write cycles, and wake pattern — bit-exactly. Error injection draws
// the same RNG sequence in the same beat order as PipelinedLink, so
// corrupted payloads match too.
//
// The conservative window bound: a record sampled at cycle t is due at
// t + 1 + stages, so every record staged during an epoch of k cycles is
// due at or after the next epoch's start iff k <= 1 + stages. The
// kernel's lookahead is therefore capped at 1 + min(stages) over all
// cuts (Network::Network computes this).
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "src/common/rng.hpp"
#include "src/link/link.hpp"
#include "src/packet/flit.hpp"
#include "src/sim/kernel.hpp"

namespace xpl::link {

/// A pipelined link cut at a partition boundary: two half-modules plus
/// the mailboxes between them. Statistics match PipelinedLink's.
class CutLink final : public sim::CutChannel {
 public:
  using Config = PipelinedLink::Config;

  CutLink(const std::string& name, const LinkWires& upstream,
          const LinkWires& downstream, const Config& config);

  /// Upstream half — register with the *from* switch's partition.
  sim::Module& sender_module() { return sender_; }
  /// Downstream half — register with the *to* switch's partition.
  sim::Module& receiver_module() { return receiver_; }

  void exchange() override;
  std::uint64_t flits_exchanged() const override {
    return flits_exchanged_;
  }

  /// Flits that traversed the link (including retransmissions).
  std::uint64_t flits_carried() const { return flits_carried_; }
  /// Flits corrupted by error injection.
  std::uint64_t flits_corrupted() const { return flits_corrupted_; }
  /// Utilization numerator for link-load statistics.
  std::uint64_t busy_cycles() const { return flits_carried_; }

  const std::string& name() const { return name_; }
  const Config& config() const { return config_; }

 private:
  // Thread discipline: during an epoch the Sender half touches only
  // {up_, fwd_outbox_, rev_inbox_, rev_out_dirty_, rng_, flit counters}
  // and the Receiver half only {down_, fwd_inbox_, rev_outbox_,
  // fwd_out_dirty_}; exchange() (single-threaded, at the barrier) is the
  // only code that moves records between the two sets.

  struct FlitRecord {
    std::uint64_t due = 0;  ///< cycle the beat appears downstream
    FlitBeat beat;
  };
  struct AckRecord {
    std::uint64_t due = 0;
    AckBeat beat;
  };

  class Sender final : public sim::Module {
   public:
    Sender(CutLink& owner, std::string name)
        : sim::Module(std::move(name)), owner_(owner) {}
    void tick(sim::Kernel& kernel) override { owner_.tick_sender(kernel); }
    bool is_idle() const override { return owner_.sender_idle(); }
    std::uint64_t next_event(std::uint64_t now) const override {
      return owner_.sender_next_event(now);
    }

   private:
    CutLink& owner_;
  };

  class Receiver final : public sim::Module {
   public:
    Receiver(CutLink& owner, std::string name)
        : sim::Module(std::move(name)), owner_(owner) {}
    void tick(sim::Kernel& kernel) override {
      owner_.tick_receiver(kernel);
    }
    bool is_idle() const override { return owner_.receiver_idle(); }
    std::uint64_t next_event(std::uint64_t now) const override {
      return owner_.receiver_next_event(now);
    }

   private:
    CutLink& owner_;
  };

  void tick_sender(sim::Kernel& kernel);
  void tick_receiver(sim::Kernel& kernel);
  bool sender_idle() const;
  bool receiver_idle() const;
  std::uint64_t sender_next_event(std::uint64_t now) const;
  std::uint64_t receiver_next_event(std::uint64_t now) const;
  void corrupt_in_place(FlitBeat& beat);

  std::string name_;
  Config config_;
  LinkWires up_;
  LinkWires down_;
  std::deque<FlitRecord> fwd_outbox_;  ///< staged this epoch (sender side)
  std::deque<FlitRecord> fwd_inbox_;   ///< awaiting delivery (receiver side)
  std::deque<AckRecord> rev_outbox_;   ///< staged this epoch (receiver side)
  std::deque<AckRecord> rev_inbox_;    ///< awaiting delivery (sender side)
  bool fwd_out_dirty_ = false;  ///< downstream fwd wire holds a valid beat
  bool rev_out_dirty_ = false;  ///< upstream rev wire holds a valid beat
  Rng rng_;
  std::uint64_t flits_carried_ = 0;
  std::uint64_t flits_corrupted_ = 0;
  std::uint64_t flits_exchanged_ = 0;
  Sender sender_;
  Receiver receiver_;
};

}  // namespace xpl::link
