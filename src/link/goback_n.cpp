#include "src/link/goback_n.hpp"

#include "src/common/error.hpp"

namespace xpl::link {

ProtocolConfig ProtocolConfig::for_link(std::size_t stages, CrcKind crc) {
  ProtocolConfig config;
  // One kernel register at each end plus `stages` relays per direction,
  // plus a couple of cycles of endpoint processing.
  config.window = 2 * (stages + 1) + 4;
  config.seq_bits = bits_for(2 * config.window);
  config.crc = crc;
  config.validate();
  return config;
}

void ProtocolConfig::validate() const {
  require(window >= 1, "ProtocolConfig: window must be >= 1");
  require(seq_bits >= 1 && seq_bits <= 8,
          "ProtocolConfig: seq_bits must be in [1,8]");
  // Go-back-N correctness: sequence space must exceed the window so a
  // stale retransmission can never alias a new flit.
  require((std::size_t{1} << seq_bits) > window,
          "ProtocolConfig: sequence space must exceed window");
  require(vcs >= 1 && vcs <= kMaxVcs,
          "ProtocolConfig: vcs must be in [1, " + std::to_string(kMaxVcs) +
              "]");
}

GoBackNSender::GoBackNSender(LinkWires wires, const ProtocolConfig& config)
    : wires_(wires),
      config_(config),
      seq_mask_(static_cast<std::uint8_t>((1u << config.seq_bits) - 1)) {
  config_.validate();
  lanes_.resize(config_.vcs);
  for (Lane& lane : lanes_) {
    lane.buffer.reserve(config_.window);  // can_accept bounds it at window
  }
}

void GoBackNSender::begin_cycle() {
  XPL_ASSERT(wires_.rev != nullptr);
  const AckBeat ack = wires_.rev->read();
  if (!ack.valid) return;
  XPL_ASSERT(ack.vc < lanes_.size());
  Lane& lane = lanes_[ack.vc];
  if (lane.buffer.empty()) return;
  const std::uint8_t base = lane.buffer.front().flit.seqno;
  const std::uint8_t offset = (ack.seqno - base) & seq_mask_;
  if (ack.ack) {
    // Receivers acknowledge a lane's flits in order, one per cycle, so a
    // live ACK always names the lane's oldest unacknowledged flit;
    // anything else is a stale duplicate from before a rewind and is
    // ignored.
    if (offset == 0) {
      lane.buffer.pop_front();
      if (lane.resend_idx > 0) --lane.resend_idx;
    }
  } else {
    // nACK(seq): receiver wants everything on this lane from `seq` again.
    if (offset < lane.buffer.size()) {
      lane.resend_idx = offset;
    }
  }
}

bool GoBackNSender::can_accept(std::size_t vc) const {
  XPL_ASSERT(vc < lanes_.size());
  return lanes_[vc].buffer.size() < config_.window;
}

void GoBackNSender::accept(Flit flit) {
  XPL_ASSERT(can_accept(flit.vc));
  Lane& lane = lanes_[flit.vc];
  flit.seqno = lane.next_seq;
  lane.next_seq = (lane.next_seq + 1) & seq_mask_;
  // Seal once on entry: the buffered flit is immutable until retired, so
  // retransmissions reuse the same checksum instead of recomputing it.
  flit_seal(flit, config_.crc);
  lane.buffer.push_back(Entry{std::move(flit), /*sent=*/false});
}

void GoBackNSender::end_cycle() {
  XPL_ASSERT(wires_.fwd != nullptr);
  // One physical flit per cycle: serve lanes with pending (re)transmit
  // work round-robin from next_lane_.
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    const std::size_t v = (next_lane_ + k) % lanes_.size();
    Lane& lane = lanes_[v];
    if (lane.resend_idx >= lane.buffer.size()) continue;
    Entry& entry = lane.buffer[lane.resend_idx];
    if (entry.sent) {
      ++retransmissions_;
    } else {
      entry.sent = true;
    }
    wires_.fwd->write(FlitBeat{true, entry.flit});
    fwd_dirty_ = true;
    ++lane.resend_idx;
    ++flits_sent_;
    next_lane_ = (v + 1) % lanes_.size();
    return;
  }
  // Write-on-change: drive the wire idle once after the last valid beat.
  if (fwd_dirty_) {
    wires_.fwd->write(FlitBeat{});
    fwd_dirty_ = false;
  }
}

std::size_t GoBackNSender::in_flight() const {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) total += lane.buffer.size();
  return total;
}

bool GoBackNSender::gate_idle() const {
  if (fwd_dirty_ || wires_.rev->read().valid) return false;
  for (const Lane& lane : lanes_) {
    // resend_idx < size means an entry still awaits (re)transmission;
    // entries at index < resend_idx merely await an ACK, which will wake
    // the owner through the reverse wire.
    if (lane.resend_idx < lane.buffer.size()) return false;
  }
  return true;
}

GoBackNReceiver::GoBackNReceiver(LinkWires wires,
                                 const ProtocolConfig& config)
    : wires_(wires),
      config_(config),
      seq_mask_(static_cast<std::uint8_t>((1u << config.seq_bits) - 1)) {
  config_.validate();
  expected_seq_.assign(config_.vcs, 0);
}

std::optional<Flit> GoBackNReceiver::begin_cycle(
    std::uint32_t can_take_mask) {
  XPL_ASSERT(wires_.fwd != nullptr);
  pending_ack_ = AckBeat{};
  const FlitBeat& beat = wires_.fwd->read();
  if (!beat.valid) return std::nullopt;
  const std::uint8_t vc = beat.flit.vc;
  XPL_ASSERT(vc < expected_seq_.size());

  if (!flit_verify(beat.flit, config_.crc)) {
    // Corrupted in flight: ask the sender to go back to what we expect.
    ++crc_rejections_;
    pending_ack_ = AckBeat{true, /*ack=*/false, expected_seq_[vc], vc};
    return std::nullopt;
  }
  if ((beat.flit.seqno & seq_mask_) != expected_seq_[vc]) {
    // Stale flit racing a rewind; drop silently (the sender is already
    // resending from expected_seq_, nACKing again would only thrash).
    return std::nullopt;
  }
  if ((can_take_mask >> vc & 1u) == 0) {
    // Flow control: intact and in order, but no room on this lane. nACK
    // so the sender retries; expected_seq_ stays put.
    ++flow_rejections_;
    pending_ack_ = AckBeat{true, /*ack=*/false, expected_seq_[vc], vc};
    return std::nullopt;
  }
  pending_ack_ = AckBeat{true, /*ack=*/true, expected_seq_[vc], vc};
  expected_seq_[vc] = (expected_seq_[vc] + 1) & seq_mask_;
  ++flits_accepted_;
  return beat.flit;
}

void GoBackNReceiver::end_cycle() {
  XPL_ASSERT(wires_.rev != nullptr);
  // Write-on-change: a valid ACK/nACK is always driven; the idle beat is
  // driven once after the last valid one (then the wire already holds it).
  if (pending_ack_.valid) {
    wires_.rev->write(pending_ack_);
    rev_dirty_ = true;
  } else if (rev_dirty_) {
    wires_.rev->write(pending_ack_);
    rev_dirty_ = false;
  }
}

}  // namespace xpl::link
