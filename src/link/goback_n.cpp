#include "src/link/goback_n.hpp"

#include "src/common/error.hpp"

namespace xpl::link {

ProtocolConfig ProtocolConfig::for_link(std::size_t stages, CrcKind crc) {
  ProtocolConfig config;
  // One kernel register at each end plus `stages` relays per direction,
  // plus a couple of cycles of endpoint processing.
  config.window = 2 * (stages + 1) + 4;
  config.seq_bits = bits_for(2 * config.window);
  config.crc = crc;
  config.validate();
  return config;
}

void ProtocolConfig::validate() const {
  require(window >= 1, "ProtocolConfig: window must be >= 1");
  require(seq_bits >= 1 && seq_bits <= 8,
          "ProtocolConfig: seq_bits must be in [1,8]");
  // Go-back-N correctness: sequence space must exceed the window so a
  // stale retransmission can never alias a new flit.
  require((std::size_t{1} << seq_bits) > window,
          "ProtocolConfig: sequence space must exceed window");
}

GoBackNSender::GoBackNSender(LinkWires wires, const ProtocolConfig& config)
    : wires_(wires),
      config_(config),
      seq_mask_(static_cast<std::uint8_t>((1u << config.seq_bits) - 1)) {
  config_.validate();
  buffer_.reserve(config_.window);  // can_accept bounds it at window
}

void GoBackNSender::begin_cycle() {
  XPL_ASSERT(wires_.rev != nullptr);
  const AckBeat ack = wires_.rev->read();
  if (!ack.valid || buffer_.empty()) return;
  const std::uint8_t base = buffer_.front().flit.seqno;
  const std::uint8_t offset = (ack.seqno - base) & seq_mask_;
  if (ack.ack) {
    // Receivers acknowledge flits in order, one per cycle, so a live ACK
    // always names the oldest unacknowledged flit; anything else is a
    // stale duplicate from before a rewind and is ignored.
    if (offset == 0) {
      buffer_.pop_front();
      if (resend_idx_ > 0) --resend_idx_;
    }
  } else {
    // nACK(seq): receiver wants everything from `seq` again.
    if (offset < buffer_.size()) {
      resend_idx_ = offset;
    }
  }
}

bool GoBackNSender::can_accept() const {
  return buffer_.size() < config_.window;
}

void GoBackNSender::accept(Flit flit) {
  XPL_ASSERT(can_accept());
  flit.seqno = next_seq_;
  next_seq_ = (next_seq_ + 1) & seq_mask_;
  // Seal once on entry: the buffered flit is immutable until retired, so
  // retransmissions reuse the same checksum instead of recomputing it.
  flit_seal(flit, config_.crc);
  buffer_.push_back(Entry{std::move(flit), /*sent=*/false});
}

void GoBackNSender::end_cycle() {
  XPL_ASSERT(wires_.fwd != nullptr);
  if (resend_idx_ < buffer_.size()) {
    Entry& entry = buffer_[resend_idx_];
    if (entry.sent) {
      ++retransmissions_;
    } else {
      entry.sent = true;
    }
    wires_.fwd->write(FlitBeat{true, entry.flit});
    ++resend_idx_;
    ++flits_sent_;
  } else {
    wires_.fwd->write(FlitBeat{});
  }
}

GoBackNReceiver::GoBackNReceiver(LinkWires wires,
                                 const ProtocolConfig& config)
    : wires_(wires),
      config_(config),
      seq_mask_(static_cast<std::uint8_t>((1u << config.seq_bits) - 1)) {
  config_.validate();
}

std::optional<Flit> GoBackNReceiver::begin_cycle(bool can_take) {
  XPL_ASSERT(wires_.fwd != nullptr);
  pending_ack_ = AckBeat{};
  const FlitBeat& beat = wires_.fwd->read();
  if (!beat.valid) return std::nullopt;

  if (!flit_verify(beat.flit, config_.crc)) {
    // Corrupted in flight: ask the sender to go back to what we expect.
    ++crc_rejections_;
    pending_ack_ = AckBeat{true, /*ack=*/false, expected_seq_};
    return std::nullopt;
  }
  if ((beat.flit.seqno & seq_mask_) != expected_seq_) {
    // Stale flit racing a rewind; drop silently (the sender is already
    // resending from expected_seq_, nACKing again would only thrash).
    return std::nullopt;
  }
  if (!can_take) {
    // Flow control: intact and in order, but no room. nACK so the sender
    // retries; expected_seq_ stays put.
    ++flow_rejections_;
    pending_ack_ = AckBeat{true, /*ack=*/false, expected_seq_};
    return std::nullopt;
  }
  pending_ack_ = AckBeat{true, /*ack=*/true, expected_seq_};
  expected_seq_ = (expected_seq_ + 1) & seq_mask_;
  ++flits_accepted_;
  return beat.flit;
}

void GoBackNReceiver::end_cycle() {
  XPL_ASSERT(wires_.rev != nullptr);
  wires_.rev->write(pending_ack_);
}

}  // namespace xpl::link
