// ACK/nACK go-back-N link-level flow & error control.
//
// This is the paper's switch-to-switch protocol: every flit carries a
// sequence number and a CRC; the receiving hop checks both and answers ACK
// (advance) or nACK (go back and resend). The same nACK path doubles as
// flow control — a receiver with no buffer space nACKs, so the sender
// retries later. Senders keep transmitted flits in a retransmission buffer
// until acknowledged, sized to cover the link round trip so a clean link
// sustains one flit per cycle.
//
// GoBackNSender and GoBackNReceiver are building blocks *embedded* in the
// switch and NI modules (they are not kernel modules themselves); the
// owner calls begin_cycle / end_cycle from its tick().
#pragma once

#include <cstdint>
#include <optional>

#include "src/common/crc.hpp"
#include "src/common/ring.hpp"
#include "src/link/link.hpp"
#include "src/packet/flit.hpp"

namespace xpl::link {

/// Shared parameters of one link's protocol endpoints.
struct ProtocolConfig {
  std::size_t window = 8;              ///< max unacknowledged flits
  std::size_t seq_bits = 5;            ///< sequence number width
  CrcKind crc = CrcKind::kCrc8;        ///< per-flit check code

  /// Sizes window and sequence space to keep an N-stage pipelined link
  /// fully busy: round trip is 2*(stages+1) kernel hops plus endpoint
  /// processing.
  static ProtocolConfig for_link(std::size_t stages,
                                 CrcKind crc = CrcKind::kCrc8);

  void validate() const;
};

/// Sender endpoint: owns the retransmission buffer.
class GoBackNSender {
 public:
  GoBackNSender() = default;
  GoBackNSender(LinkWires wires, const ProtocolConfig& config);

  /// Processes incoming ACK/nACK. Call first in the owner's tick().
  void begin_cycle();

  /// True if a new flit can be queued this cycle (window has room).
  bool can_accept() const;

  /// Queues `flit` for (re)transmission; assigns its sequence number.
  /// Requires can_accept().
  void accept(Flit flit);

  /// Transmits at most one flit and drives the wire. Call last in tick().
  void end_cycle();

  /// In-flight (sent or queued, unacknowledged) flits.
  std::size_t in_flight() const { return buffer_.size(); }
  bool idle() const { return buffer_.empty(); }

  std::uint64_t flits_sent() const { return flits_sent_; }
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  LinkWires wires_{};
  ProtocolConfig config_{};
  std::uint8_t seq_mask_ = 0;

  struct Entry {
    Flit flit;
    bool sent = false;  ///< transmitted at least once (retx accounting)
  };
  Ring<Entry> buffer_;           ///< unacked flits, oldest first (<= window)
  std::size_t resend_idx_ = 0;   ///< next buffer index to transmit
  std::uint8_t next_seq_ = 0;    ///< seqno for the next accepted flit

  std::uint64_t flits_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
};

/// Receiver endpoint: verifies CRC and sequence, produces ACK/nACK.
class GoBackNReceiver {
 public:
  GoBackNReceiver() = default;
  GoBackNReceiver(LinkWires wires, const ProtocolConfig& config);

  /// Examines the arriving flit. `can_take` tells the receiver whether the
  /// owner has buffer space this cycle; without space the flit is nACKed
  /// (flow control). Returns the flit when it is accepted in order and
  /// intact. Call first in the owner's tick().
  std::optional<Flit> begin_cycle(bool can_take);

  /// Drives the ACK wire. Call last in the owner's tick().
  void end_cycle();

  std::uint64_t flits_accepted() const { return flits_accepted_; }
  std::uint64_t crc_rejections() const { return crc_rejections_; }
  std::uint64_t flow_rejections() const { return flow_rejections_; }

 private:
  LinkWires wires_{};
  ProtocolConfig config_{};
  std::uint8_t seq_mask_ = 0;

  std::uint8_t expected_seq_ = 0;
  AckBeat pending_ack_{};

  std::uint64_t flits_accepted_ = 0;
  std::uint64_t crc_rejections_ = 0;
  std::uint64_t flow_rejections_ = 0;
};

}  // namespace xpl::link
