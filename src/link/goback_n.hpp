// ACK/nACK go-back-N link-level flow & error control.
//
// This is the paper's switch-to-switch protocol: every flit carries a
// sequence number and a CRC; the receiving hop checks both and answers ACK
// (advance) or nACK (go back and resend). The same nACK path doubles as
// flow control — a receiver with no buffer space nACKs, so the sender
// retries later. Senders keep transmitted flits in a retransmission buffer
// until acknowledged, sized to cover the link round trip so a clean link
// sustains one flit per cycle.
//
// Every endpoint is lane-generic: a link carries `vcs` virtual channels
// over one physical wire pair, each lane with its own sequence space,
// retransmission buffer and ACK stream (flits and ACK beats carry the
// lane tag). One flit crosses the wire per cycle regardless of lane
// count; the sender round-robins among lanes with pending work. With
// vcs == 1 (the default) all of this collapses to the seed's single-lane
// protocol, operation for operation.
//
// GoBackNSender and GoBackNReceiver are building blocks *embedded* in the
// switch and NI modules (they are not kernel modules themselves); the
// owner calls begin_cycle / end_cycle from its tick().
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/crc.hpp"
#include "src/common/ring.hpp"
#include "src/link/link.hpp"
#include "src/packet/flit.hpp"

namespace xpl::link {

/// Upper bound on lanes per link (the lane tag and the receiver drain
/// masks are sized for it).
inline constexpr std::size_t kMaxVcs = 8;

/// Shared parameters of one link's protocol endpoints.
struct ProtocolConfig {
  std::size_t window = 8;              ///< max unacknowledged flits per lane
  std::size_t seq_bits = 5;            ///< sequence number width (per lane)
  CrcKind crc = CrcKind::kCrc8;        ///< per-flit check code
  std::size_t vcs = 1;                 ///< virtual channels (lanes)

  /// Sizes window and sequence space to keep an N-stage pipelined link
  /// fully busy: round trip is 2*(stages+1) kernel hops plus endpoint
  /// processing.
  static ProtocolConfig for_link(std::size_t stages,
                                 CrcKind crc = CrcKind::kCrc8);

  void validate() const;
};

/// Sender endpoint: owns the per-lane retransmission buffers.
class GoBackNSender {
 public:
  GoBackNSender() = default;
  GoBackNSender(LinkWires wires, const ProtocolConfig& config);

  /// Processes incoming ACK/nACK. Call first in the owner's tick().
  void begin_cycle();

  /// True if a new flit can be queued on lane `vc` this cycle (that
  /// lane's window has room).
  bool can_accept(std::size_t vc = 0) const;

  /// Queues `flit` for (re)transmission on lane flit.vc; assigns its
  /// sequence number. Requires can_accept(flit.vc).
  void accept(Flit flit);

  /// Transmits at most one flit (lanes served round-robin) and drives the
  /// wire. Call last in tick().
  void end_cycle();

  /// In-flight (sent or queued, unacknowledged) flits over all lanes.
  std::size_t in_flight() const;
  bool idle() const { return in_flight() == 0; }

  /// Wakes `owner` whenever an ACK/nACK arrives on the reverse wire.
  void watch(sim::Module& owner) { wires_.rev->watch(owner); }

  /// Endpoint part of the owner's quiescence predicate: nothing left to
  /// (re)transmit on any lane, the forward wire already driven idle, and
  /// no reverse beat arriving. Flits that were sent but not yet ACKed do
  /// NOT keep the endpoint awake — the ACK (or nACK) arrival wakes it.
  bool gate_idle() const;

  std::uint64_t flits_sent() const { return flits_sent_; }
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  LinkWires wires_{};
  ProtocolConfig config_{};
  std::uint8_t seq_mask_ = 0;
  bool fwd_dirty_ = false;  ///< forward wire still holds a valid beat

  struct Entry {
    Flit flit;
    bool sent = false;  ///< transmitted at least once (retx accounting)
  };
  struct Lane {
    Ring<Entry> buffer;          ///< unacked flits, oldest first (<= window)
    std::size_t resend_idx = 0;  ///< next buffer index to transmit
    std::uint8_t next_seq = 0;   ///< seqno for the next accepted flit
  };
  std::vector<Lane> lanes_;
  std::size_t next_lane_ = 0;  ///< transmit rotation over lanes

  std::uint64_t flits_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
};

/// Receiver endpoint: verifies CRC and per-lane sequence, produces
/// ACK/nACK tagged with the lane.
class GoBackNReceiver {
 public:
  GoBackNReceiver() = default;
  GoBackNReceiver(LinkWires wires, const ProtocolConfig& config);

  /// Examines the arriving flit. Bit vc of `can_take_mask` tells the
  /// receiver whether the owner has buffer space for lane vc this cycle;
  /// without space the flit is nACKed (flow control). Returns the flit
  /// when it is accepted in order and intact. Call first in the owner's
  /// tick(). (A bool converts to the right mask for single-lane owners.)
  std::optional<Flit> begin_cycle(std::uint32_t can_take_mask);

  /// Drives the ACK wire. Call last in the owner's tick().
  void end_cycle();

  /// Wakes `owner` whenever a flit arrives on the forward wire.
  void watch(sim::Module& owner) { wires_.fwd->watch(owner); }

  /// Endpoint part of the owner's quiescence predicate: no flit arriving
  /// and the ACK wire already driven idle.
  bool gate_idle() const {
    return !rev_dirty_ && !wires_.fwd->read().valid;
  }

  std::uint64_t flits_accepted() const { return flits_accepted_; }
  std::uint64_t crc_rejections() const { return crc_rejections_; }
  std::uint64_t flow_rejections() const { return flow_rejections_; }

 private:
  LinkWires wires_{};
  ProtocolConfig config_{};
  std::uint8_t seq_mask_ = 0;
  bool rev_dirty_ = false;  ///< ACK wire still holds a valid beat

  std::vector<std::uint8_t> expected_seq_;  ///< per lane
  AckBeat pending_ack_{};

  std::uint64_t flits_accepted_ = 0;
  std::uint64_t crc_rejections_ = 0;
  std::uint64_t flow_rejections_ = 0;
};

}  // namespace xpl::link
