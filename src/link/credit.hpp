// Credit-based link-level flow control over reliable links.
//
// The classic alternative to the paper's ACK/nACK go-back-N protocol
// (goback_n.hpp): the sender holds a credit counter initialized to the
// receiver's buffer depth, spends one credit per transmitted flit and
// stalls at zero; the receiver returns one credit on the reverse channel
// for every flit its owner drains. No flit is ever sent without a
// guaranteed buffer slot, so nothing is retransmitted and no CRC is
// checked — which is exactly why credit flow control *requires reliable
// links* (bit_error_rate == 0, enforced at network assembly). The
// asymmetry is the paper's thesis: ACK/nACK buys unreliable-link
// tolerance with retransmission buffers and nACK thrash at saturation;
// credits buy a leaner hot path but no error story. See DESIGN.md.
//
// Like the go-back-N endpoints, both ends are lane-generic: each of the
// link's `vcs` virtual channels has its own credit counter and its own
// credited buffer, so one stalled lane parks only its own window while
// other lanes keep moving (the per-VC flow control that makes dateline
// deadlock avoidance sound). Flits and credit returns carry the lane tag;
// one flit crosses per cycle, lanes served round-robin. vcs == 1 is the
// seed's single-lane protocol unchanged.
//
// CreditSender and CreditReceiver mirror the go-back-N endpoints' call
// shape exactly (begin_cycle / can_accept / accept / end_cycle on the
// sender, begin_cycle(can_take_mask) / end_cycle on the receiver) so the
// link-protocol seam (flow.hpp) can swap protocols per network. They
// share ProtocolConfig: `window` doubles as the per-lane credit count,
// sized by ProtocolConfig::for_link to cover the link round trip so a
// clean link sustains one flit per cycle in either protocol. The reverse
// channel reuses AckBeat wires: a valid beat means "one credit returned
// for lane `vc`" (ack/seqno are ignored).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/ring.hpp"
#include "src/link/goback_n.hpp"
#include "src/link/link.hpp"
#include "src/packet/flit.hpp"

namespace xpl::link {

/// Sender endpoint: stages flits and spends credits to transmit them.
class CreditSender {
 public:
  CreditSender() = default;
  CreditSender(LinkWires wires, const ProtocolConfig& config);

  /// Collects returned credits from the reverse wire. Call first in the
  /// owner's tick().
  void begin_cycle();

  /// True if a new flit can be staged on lane `vc` this cycle: that
  /// lane's outstanding flits (staged + credit not yet returned) stay
  /// below the window, mirroring the go-back-N sender's occupancy bound.
  bool can_accept(std::size_t vc = 0) const;

  /// Stages `flit` for transmission on lane flit.vc. Requires
  /// can_accept(flit.vc).
  void accept(Flit flit);

  /// Transmits at most one flit (lanes served round-robin, credit
  /// permitting) and drives the wire. Call last in the owner's tick().
  void end_cycle();

  /// Flits staged locally plus flits whose credit has not returned yet
  /// (in flight on the link or buffered at the receiver), over all lanes.
  std::size_t in_flight() const;
  bool idle() const { return in_flight() == 0; }

  /// Wakes `owner` whenever a credit returns on the reverse wire.
  void watch(sim::Module& owner) { wires_.rev->watch(owner); }

  /// Endpoint part of the owner's quiescence predicate: nothing staged on
  /// any lane, the forward wire already driven idle, no credit arriving,
  /// and no lane sitting at zero credits. The zero-credit clause is a
  /// counter contract, not a progress requirement: end_cycle counts one
  /// credit_stall per starved cycle, so a starved sender must keep
  /// ticking for the gated and full schedulers to report equal stats.
  bool gate_idle() const;

  /// gate_idle without the zero-credit counter clause — the quiescence
  /// bound the time-leap scheduler uses. A sender idle by this predicate
  /// does no *work* on a frozen tick; the per-cycle credit_stall count it
  /// would have accumulated is restored in closed form by
  /// catch_up_stalls() (the owner tracks the gap; DESIGN.md §12).
  bool gate_idle_leap() const;

  /// True when a frozen (skipped) tick of the owner would have counted
  /// one credit_stall: nothing staged on any lane, some lane starved.
  bool stall_pending() const;

  /// Closed-form catch-up: credits `n` skipped starved cycles.
  void catch_up_stalls(std::uint64_t n) { credit_stalls_ += n; }

  std::uint64_t flits_sent() const { return flits_sent_; }
  /// Credit-starvation cycles: cycles in which nothing was transmitted
  /// while some lane sat at zero credits, i.e. with its entire window
  /// parked at the receiver awaiting drain — the credit protocol's
  /// back-pressure signal (the counterpart of go-back-N's flow-control
  /// retransmissions).
  std::uint64_t credit_stalls() const { return credit_stalls_; }
  std::size_t credits(std::size_t vc = 0) const {
    return lanes_.at(vc).credits;
  }

 private:
  struct Lane {
    Ring<Flit> buffer;         ///< staged flits, oldest first (<= window)
    std::size_t credits = 0;   ///< free receiver slots (starts at window)
  };

  LinkWires wires_{};
  ProtocolConfig config_{};
  std::vector<Lane> lanes_;
  std::size_t next_lane_ = 0;  ///< transmit rotation over lanes
  bool fwd_dirty_ = false;     ///< forward wire still holds a valid beat

  std::uint64_t flits_sent_ = 0;
  std::uint64_t credit_stalls_ = 0;
};

/// Receiver endpoint: owns the per-lane credited buffers and returns
/// credits as its owner drains flits.
class CreditReceiver {
 public:
  CreditReceiver() = default;
  CreditReceiver(LinkWires wires, const ProtocolConfig& config);

  /// Latches an arriving flit into its lane's credited buffer (space is
  /// guaranteed by the sender's credit accounting) and hands the owner at
  /// most one buffered flit from a lane whose bit is set in
  /// `can_take_mask` (lanes drained round-robin) — scheduling one credit
  /// return for that lane. Call first in the owner's tick(). (A bool
  /// converts to the right mask for single-lane owners.)
  std::optional<Flit> begin_cycle(std::uint32_t can_take_mask);

  /// Drives the credit-return wire. Call last in the owner's tick().
  void end_cycle();

  /// Wakes `owner` whenever a flit arrives on the forward wire.
  void watch(sim::Module& owner) { wires_.fwd->watch(owner); }

  /// Endpoint part of the owner's quiescence predicate: no flit arriving,
  /// nothing buffered awaiting the owner's drain, and the credit wire
  /// already driven idle.
  bool gate_idle() const {
    return !rev_dirty_ && buffered() == 0 && !wires_.fwd->read().valid;
  }

  std::uint64_t flits_accepted() const { return flits_accepted_; }
  std::size_t buffered() const;

 private:
  LinkWires wires_{};
  ProtocolConfig config_{};
  std::vector<Ring<Flit>> lanes_;  ///< credited slots (capacity = window)
  std::size_t drain_next_ = 0;     ///< drain rotation over lanes
  bool pending_credit_ = false;    ///< return one credit at end_cycle
  std::uint8_t pending_credit_vc_ = 0;
  bool rev_dirty_ = false;  ///< credit wire still holds a valid beat

  std::uint64_t flits_accepted_ = 0;
};

}  // namespace xpl::link
