// Link-protocol seam: one selector, two flow-control protocols.
//
// Every network port (switch input/output, NI network port) embeds one
// sender and one receiver endpoint. Historically these were hard-wired to
// the paper's ACK/nACK go-back-N protocol; LinkSender / LinkReceiver make
// the protocol a per-network architecture axis instead:
//
//   * FlowControl::kAckNack — goback_n.hpp: CRC + sequence numbers,
//     nACK-driven retransmission; tolerates unreliable links, pays
//     retransmission buffers and nACK thrash under back-pressure.
//   * FlowControl::kCredit — credit.hpp: counted buffer slots, sender
//     stalls at zero credits; requires reliable links (the network
//     assembly enforces bit_error_rate == 0), never retransmits.
//
// Both protocols share LinkWires and ProtocolConfig (`window` = go-back-N
// window or credit count per lane, sized to the link round trip either
// way), so a port's endpoints are interchangeable, and both are
// lane-generic: ProtocolConfig::vcs virtual channels share the physical
// wire pair with per-lane buffering, sequencing and credits (see
// goback_n.hpp / credit.hpp). Dispatch is one predictable branch on the
// enum per call — no virtual functions on the hot path, matching the
// devirtualized kernel design (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "src/link/credit.hpp"
#include "src/link/goback_n.hpp"
#include "src/link/link.hpp"
#include "src/packet/flit.hpp"

namespace xpl::link {

enum class FlowControl : std::uint8_t { kAckNack, kCredit };

/// "ack_nack" | "credit" — the sweep-axis / spec-file token.
const char* flow_control_name(FlowControl flow);

/// Inverse of flow_control_name; throws xpl::Error on unknown tokens.
FlowControl parse_flow_control(const std::string& name);

/// Protocol-dispatching sender endpoint. The owner's call protocol is
/// identical for both flavours: begin_cycle, can_accept/accept at most
/// once, end_cycle.
class LinkSender {
 public:
  LinkSender() = default;
  LinkSender(FlowControl flow, LinkWires wires,
             const ProtocolConfig& config) {
    flow_ = flow;
    if (flow == FlowControl::kAckNack) {
      ack_ = GoBackNSender(wires, config);
    } else {
      credit_ = CreditSender(wires, config);
    }
  }

  void begin_cycle() {
    flow_ == FlowControl::kAckNack ? ack_.begin_cycle()
                                   : credit_.begin_cycle();
  }
  /// Room on lane `vc` (the accepted flit's vc field picks the lane).
  bool can_accept(std::size_t vc = 0) const {
    return flow_ == FlowControl::kAckNack ? ack_.can_accept(vc)
                                          : credit_.can_accept(vc);
  }
  void accept(Flit flit) {
    flow_ == FlowControl::kAckNack ? ack_.accept(std::move(flit))
                                   : credit_.accept(std::move(flit));
  }
  void end_cycle() {
    flow_ == FlowControl::kAckNack ? ack_.end_cycle() : credit_.end_cycle();
  }

  std::size_t in_flight() const {
    return flow_ == FlowControl::kAckNack ? ack_.in_flight()
                                          : credit_.in_flight();
  }
  bool idle() const {
    return flow_ == FlowControl::kAckNack ? ack_.idle() : credit_.idle();
  }
  /// Wakes `owner` on reverse-wire (ACK/credit) arrivals.
  void watch(sim::Module& owner) {
    flow_ == FlowControl::kAckNack ? ack_.watch(owner)
                                   : credit_.watch(owner);
  }
  /// Endpoint part of the owner's quiescence predicate (gated scheduler).
  bool gate_idle() const {
    return flow_ == FlowControl::kAckNack ? ack_.gate_idle()
                                          : credit_.gate_idle();
  }
  /// Quiescence bound for the time-leap scheduler: gate_idle without the
  /// credit-mode zero-credit counter clause (go-back-N has no per-cycle
  /// counters, so there it equals gate_idle). See CreditSender.
  bool gate_idle_leap() const {
    return flow_ == FlowControl::kAckNack ? ack_.gate_idle()
                                          : credit_.gate_idle_leap();
  }
  /// A skipped tick would have counted one credit_stall (credit mode
  /// only; structurally false for go-back-N).
  bool stall_pending() const {
    return flow_ == FlowControl::kAckNack ? false : credit_.stall_pending();
  }
  /// Credits `n` skipped starved cycles (no-op for go-back-N).
  void catch_up_stalls(std::uint64_t n) {
    if (flow_ != FlowControl::kAckNack) credit_.catch_up_stalls(n);
  }
  std::uint64_t flits_sent() const {
    return flow_ == FlowControl::kAckNack ? ack_.flits_sent()
                                          : credit_.flits_sent();
  }
  /// Go-back-N only; 0 in credit mode (credits never retransmit).
  std::uint64_t retransmissions() const {
    return flow_ == FlowControl::kAckNack ? ack_.retransmissions() : 0;
  }
  /// Credit only; 0 in ACK/nACK mode (back-pressure shows up as
  /// flow-control retransmissions instead).
  std::uint64_t credit_stalls() const {
    return flow_ == FlowControl::kAckNack ? 0 : credit_.credit_stalls();
  }

 private:
  FlowControl flow_ = FlowControl::kAckNack;
  GoBackNSender ack_;
  CreditSender credit_;
};

/// Protocol-dispatching receiver endpoint.
class LinkReceiver {
 public:
  LinkReceiver() = default;
  LinkReceiver(FlowControl flow, LinkWires wires,
               const ProtocolConfig& config) {
    flow_ = flow;
    if (flow == FlowControl::kAckNack) {
      ack_ = GoBackNReceiver(wires, config);
    } else {
      credit_ = CreditReceiver(wires, config);
    }
  }

  /// Bit vc of `can_take_mask` = owner has space for lane vc this cycle
  /// (a bool converts to the right mask for single-lane owners).
  std::optional<Flit> begin_cycle(std::uint32_t can_take_mask) {
    return flow_ == FlowControl::kAckNack
               ? ack_.begin_cycle(can_take_mask)
               : credit_.begin_cycle(can_take_mask);
  }
  void end_cycle() {
    flow_ == FlowControl::kAckNack ? ack_.end_cycle() : credit_.end_cycle();
  }

  /// Wakes `owner` on forward-wire flit arrivals.
  void watch(sim::Module& owner) {
    flow_ == FlowControl::kAckNack ? ack_.watch(owner)
                                   : credit_.watch(owner);
  }
  /// Endpoint part of the owner's quiescence predicate (gated scheduler).
  bool gate_idle() const {
    return flow_ == FlowControl::kAckNack ? ack_.gate_idle()
                                          : credit_.gate_idle();
  }

  std::uint64_t flits_accepted() const {
    return flow_ == FlowControl::kAckNack ? ack_.flits_accepted()
                                          : credit_.flits_accepted();
  }
  /// Go-back-N only; structurally impossible in credit mode.
  std::uint64_t crc_rejections() const {
    return flow_ == FlowControl::kAckNack ? ack_.crc_rejections() : 0;
  }
  std::uint64_t flow_rejections() const {
    return flow_ == FlowControl::kAckNack ? ack_.flow_rejections() : 0;
  }

 private:
  FlowControl flow_ = FlowControl::kAckNack;
  GoBackNReceiver ack_;
  CreditReceiver credit_;
};

}  // namespace xpl::link
