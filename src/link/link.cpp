#include "src/link/link.hpp"

namespace xpl::link {

PipelinedLink::PipelinedLink(std::string name, const LinkWires& upstream,
                             const LinkWires& downstream,
                             const Config& config)
    : sim::Module(std::move(name)),
      config_(config),
      up_(upstream),
      down_(downstream),
      rng_(config.seed) {
  // Wake on traffic from either end (gated scheduler; no-op under full).
  up_.fwd->watch(*this);
  down_.rev->watch(*this);
}

void PipelinedLink::corrupt_in_place(FlitBeat& beat) {
  bool corrupted = false;
  // Independent per-bit flips across all protected fields, the same fault
  // model the ACK/nACK CRC is meant to cover.
  Flit& flit = beat.flit;
  for (std::size_t i = 0; i < flit.payload.width(); ++i) {
    if (rng_.chance(config_.bit_error_rate)) {
      flit.payload.set(i, !flit.payload.get(i));
      corrupted = true;
    }
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.head = !flit.head;
    corrupted = true;
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.tail = !flit.tail;
    corrupted = true;
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.seqno ^= 1u << rng_.next_below(8);
    corrupted = true;
  }
  if (corrupted) ++flits_corrupted_;
}

void PipelinedLink::tick(sim::Kernel& kernel) {
  // Forward direction: sender -> (stages) -> receiver. The reliable-link
  // fast path (the sweep default) forwards the wire value without touching
  // flit payloads; error injection mutates a copy in place.
  //
  // Due-record invariant (all schedulers): a beat read from the input
  // wire at cycle t emerges on the output wire at cycle t + stages — the
  // exact timing of the per-stage shift registers this replaced. Only
  // valid beats are stored; a tick with nothing arriving and nothing due
  // touches no state and writes no wire, which is what lets the time-leap
  // scheduler park a mid-flight link until its front due. Senders write
  // every valid beat (write-on-change drives valid beats uncondition-
  // ally), so the watcher wake guarantees the link ticks every arrival
  // cycle: flit counting and error-injection RNG draws happen at entry in
  // the same order as under per-cycle ticking.
  const std::uint64_t now = kernel.cycle();
  const FlitBeat& wire_in = up_.fwd->read();
  if (wire_in.valid) ++flits_carried_;
  const bool inject = wire_in.valid && config_.bit_error_rate > 0.0;
  FlitBeat fwd_out;
  if (config_.stages == 0) {
    // Degenerate pipe: the kernel register between the endpoints is the
    // only stage, so the wire value forwards directly.
    fwd_out = wire_in;
    if (inject) corrupt_in_place(fwd_out);
  } else {
    if (!fwd_q_.empty() && fwd_q_.front().due <= now) {
      fwd_out = std::move(fwd_q_.front().beat);
      fwd_q_.pop_front();
    }
    if (wire_in.valid) {
      fwd_q_.push_back({now + config_.stages, wire_in});
      if (inject) corrupt_in_place(fwd_q_.back().beat);
    }
  }
  // Write-on-change: valid beats are always driven; the idle beat is
  // driven once after the last valid one.
  if (fwd_out.valid) {
    down_.fwd->write(std::move(fwd_out));
    fwd_out_dirty_ = true;
  } else if (fwd_out_dirty_) {
    down_.fwd->write(std::move(fwd_out));
    fwd_out_dirty_ = false;
  }

  // Reverse direction: receiver -> (stages) -> sender. Reliable.
  const AckBeat ack_in = down_.rev->read();
  AckBeat rev_out;
  if (config_.stages == 0) {
    rev_out = ack_in;
  } else {
    if (!rev_q_.empty() && rev_q_.front().due <= now) {
      rev_out = rev_q_.front().beat;
      rev_q_.pop_front();
    }
    if (ack_in.valid) {
      rev_q_.push_back({now + config_.stages, ack_in});
    }
  }
  if (rev_out.valid) {
    up_.rev->write(rev_out);
    rev_out_dirty_ = true;
  } else if (rev_out_dirty_) {
    up_.rev->write(rev_out);
    rev_out_dirty_ = false;
  }
}

bool PipelinedLink::is_idle() const {
  return !fwd_out_dirty_ && !rev_out_dirty_ && fwd_q_.empty() &&
         rev_q_.empty() && !up_.fwd->read().valid &&
         !down_.rev->read().valid;
}

std::uint64_t PipelinedLink::next_event(std::uint64_t now) const {
  // Dirty output wires owe a trailing idle write next cycle; a valid
  // input wire means a beat is arriving. Otherwise the only pending work
  // is mid-pipe, and the front dues bound it exactly.
  if (fwd_out_dirty_ || rev_out_dirty_ || up_.fwd->read().valid ||
      down_.rev->read().valid) {
    return now + 1;
  }
  std::uint64_t e = sim::kNever;
  if (!fwd_q_.empty()) e = std::min(e, fwd_q_.front().due);
  if (!rev_q_.empty()) e = std::min(e, rev_q_.front().due);
  return e;
}

}  // namespace xpl::link
