#include "src/link/link.hpp"

namespace xpl::link {

PipelinedLink::PipelinedLink(std::string name, const LinkWires& upstream,
                             const LinkWires& downstream,
                             const Config& config)
    : sim::Module(std::move(name)),
      config_(config),
      up_(upstream),
      down_(downstream),
      fwd_pipe_(config.stages),
      rev_pipe_(config.stages),
      rng_(config.seed) {}

FlitBeat PipelinedLink::maybe_corrupt(FlitBeat beat) {
  if (!beat.valid || config_.bit_error_rate <= 0.0) return beat;
  bool corrupted = false;
  // Independent per-bit flips across all protected fields, the same fault
  // model the ACK/nACK CRC is meant to cover.
  Flit& flit = beat.flit;
  for (std::size_t i = 0; i < flit.payload.width(); ++i) {
    if (rng_.chance(config_.bit_error_rate)) {
      flit.payload.set(i, !flit.payload.get(i));
      corrupted = true;
    }
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.head = !flit.head;
    corrupted = true;
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.tail = !flit.tail;
    corrupted = true;
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.seqno ^= 1u << rng_.next_below(8);
    corrupted = true;
  }
  if (corrupted) ++flits_corrupted_;
  return beat;
}

void PipelinedLink::tick(sim::Kernel&) {
  // Forward direction: sender -> (stages) -> receiver.
  FlitBeat incoming = maybe_corrupt(up_.fwd->read());
  if (incoming.valid) ++flits_carried_;
  if (fwd_pipe_.empty()) {
    down_.fwd->write(incoming);
  } else {
    down_.fwd->write(fwd_pipe_.back());
    for (std::size_t i = fwd_pipe_.size(); i-- > 1;) {
      fwd_pipe_[i] = fwd_pipe_[i - 1];
    }
    fwd_pipe_[0] = incoming;
  }

  // Reverse direction: receiver -> (stages) -> sender. Reliable.
  const AckBeat ack_in = down_.rev->read();
  if (rev_pipe_.empty()) {
    up_.rev->write(ack_in);
  } else {
    up_.rev->write(rev_pipe_.back());
    for (std::size_t i = rev_pipe_.size(); i-- > 1;) {
      rev_pipe_[i] = rev_pipe_[i - 1];
    }
    rev_pipe_[0] = ack_in;
  }
}

}  // namespace xpl::link
