#include "src/link/link.hpp"

namespace xpl::link {

PipelinedLink::PipelinedLink(std::string name, const LinkWires& upstream,
                             const LinkWires& downstream,
                             const Config& config)
    : sim::Module(std::move(name)),
      config_(config),
      up_(upstream),
      down_(downstream),
      fwd_pipe_(config.stages),
      rev_pipe_(config.stages),
      rng_(config.seed) {}

void PipelinedLink::corrupt_in_place(FlitBeat& beat) {
  bool corrupted = false;
  // Independent per-bit flips across all protected fields, the same fault
  // model the ACK/nACK CRC is meant to cover.
  Flit& flit = beat.flit;
  for (std::size_t i = 0; i < flit.payload.width(); ++i) {
    if (rng_.chance(config_.bit_error_rate)) {
      flit.payload.set(i, !flit.payload.get(i));
      corrupted = true;
    }
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.head = !flit.head;
    corrupted = true;
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.tail = !flit.tail;
    corrupted = true;
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.seqno ^= 1u << rng_.next_below(8);
    corrupted = true;
  }
  if (corrupted) ++flits_corrupted_;
}

void PipelinedLink::tick(sim::Kernel&) {
  // Forward direction: sender -> (stages) -> receiver. The reliable-link
  // fast path (the sweep default) forwards the wire value without touching
  // flit payloads; error injection mutates a copy in place.
  const FlitBeat& wire_in = up_.fwd->read();
  if (wire_in.valid) ++flits_carried_;
  const bool inject = wire_in.valid && config_.bit_error_rate > 0.0;
  if (fwd_pipe_.empty()) {
    FlitBeat out = wire_in;
    if (inject) corrupt_in_place(out);
    down_.fwd->write(std::move(out));
  } else {
    down_.fwd->write(std::move(fwd_pipe_.back()));
    for (std::size_t i = fwd_pipe_.size(); i-- > 1;) {
      fwd_pipe_[i] = std::move(fwd_pipe_[i - 1]);
    }
    fwd_pipe_[0] = wire_in;
    if (inject) corrupt_in_place(fwd_pipe_[0]);
  }

  // Reverse direction: receiver -> (stages) -> sender. Reliable.
  const AckBeat ack_in = down_.rev->read();
  if (rev_pipe_.empty()) {
    up_.rev->write(ack_in);
  } else {
    up_.rev->write(rev_pipe_.back());
    for (std::size_t i = rev_pipe_.size(); i-- > 1;) {
      rev_pipe_[i] = rev_pipe_[i - 1];
    }
    rev_pipe_[0] = ack_in;
  }
}

}  // namespace xpl::link
