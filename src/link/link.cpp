#include "src/link/link.hpp"

namespace xpl::link {

PipelinedLink::PipelinedLink(std::string name, const LinkWires& upstream,
                             const LinkWires& downstream,
                             const Config& config)
    : sim::Module(std::move(name)),
      config_(config),
      up_(upstream),
      down_(downstream),
      fwd_pipe_(config.stages),
      rev_pipe_(config.stages),
      rng_(config.seed) {
  // Wake on traffic from either end (gated scheduler; no-op under full).
  up_.fwd->watch(*this);
  down_.rev->watch(*this);
}

void PipelinedLink::corrupt_in_place(FlitBeat& beat) {
  bool corrupted = false;
  // Independent per-bit flips across all protected fields, the same fault
  // model the ACK/nACK CRC is meant to cover.
  Flit& flit = beat.flit;
  for (std::size_t i = 0; i < flit.payload.width(); ++i) {
    if (rng_.chance(config_.bit_error_rate)) {
      flit.payload.set(i, !flit.payload.get(i));
      corrupted = true;
    }
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.head = !flit.head;
    corrupted = true;
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.tail = !flit.tail;
    corrupted = true;
  }
  if (rng_.chance(config_.bit_error_rate)) {
    flit.seqno ^= 1u << rng_.next_below(8);
    corrupted = true;
  }
  if (corrupted) ++flits_corrupted_;
}

void PipelinedLink::tick(sim::Kernel&) {
  // Forward direction: sender -> (stages) -> receiver. The reliable-link
  // fast path (the sweep default) forwards the wire value without touching
  // flit payloads; error injection mutates a copy in place.
  //
  // Pipe invariant (both schedulers): every invalid pipe entry is a copy
  // of an idle input wire, and under write-on-change an idle wire holds
  // one stable reset value until the next valid beat. The gated scheduler
  // relies on this: a frozen all-invalid pipe equals the pipe the full
  // scheduler keeps refilling with that same held value.
  const FlitBeat& wire_in = up_.fwd->read();
  if (wire_in.valid) ++flits_carried_;
  const bool inject = wire_in.valid && config_.bit_error_rate > 0.0;
  FlitBeat fwd_out;
  if (fwd_pipe_.empty()) {
    fwd_out = wire_in;
    if (inject) corrupt_in_place(fwd_out);
  } else {
    fwd_out = std::move(fwd_pipe_.back());
    for (std::size_t i = fwd_pipe_.size(); i-- > 1;) {
      fwd_pipe_[i] = std::move(fwd_pipe_[i - 1]);
    }
    fwd_pipe_[0] = wire_in;
    if (inject) corrupt_in_place(fwd_pipe_[0]);
    if (wire_in.valid) ++fwd_pipe_valid_;
    if (fwd_out.valid) --fwd_pipe_valid_;
  }
  // Write-on-change: valid beats are always driven; the idle beat is
  // driven once after the last valid one.
  if (fwd_out.valid) {
    down_.fwd->write(std::move(fwd_out));
    fwd_out_dirty_ = true;
  } else if (fwd_out_dirty_) {
    down_.fwd->write(std::move(fwd_out));
    fwd_out_dirty_ = false;
  }

  // Reverse direction: receiver -> (stages) -> sender. Reliable.
  const AckBeat ack_in = down_.rev->read();
  AckBeat rev_out;
  if (rev_pipe_.empty()) {
    rev_out = ack_in;
  } else {
    rev_out = rev_pipe_.back();
    for (std::size_t i = rev_pipe_.size(); i-- > 1;) {
      rev_pipe_[i] = rev_pipe_[i - 1];
    }
    rev_pipe_[0] = ack_in;
    if (ack_in.valid) ++rev_pipe_valid_;
    if (rev_out.valid) --rev_pipe_valid_;
  }
  if (rev_out.valid) {
    up_.rev->write(rev_out);
    rev_out_dirty_ = true;
  } else if (rev_out_dirty_) {
    up_.rev->write(rev_out);
    rev_out_dirty_ = false;
  }
}

bool PipelinedLink::is_idle() const {
  return !fwd_out_dirty_ && !rev_out_dirty_ && fwd_pipe_valid_ == 0 &&
         rev_pipe_valid_ == 0 && !up_.fwd->read().valid &&
         !down_.rev->read().valid;
}

}  // namespace xpl::link
