#include "src/link/credit.hpp"

#include "src/common/error.hpp"

namespace xpl::link {

CreditSender::CreditSender(LinkWires wires, const ProtocolConfig& config)
    : wires_(wires), config_(config) {
  config_.validate();
  lanes_.resize(config_.vcs);
  for (Lane& lane : lanes_) {
    lane.credits = config_.window;
    lane.buffer.reserve(config_.window);  // can_accept bounds it at window
  }
}

void CreditSender::begin_cycle() {
  XPL_ASSERT(wires_.rev != nullptr);
  const AckBeat beat = wires_.rev->read();
  if (beat.valid) {
    // One valid reverse beat = one credit returned for lane beat.vc
    // (ack/seqno unused).
    XPL_ASSERT(beat.vc < lanes_.size());
    Lane& lane = lanes_[beat.vc];
    XPL_ASSERT(lane.credits < config_.window);
    ++lane.credits;
  }
}

bool CreditSender::can_accept(std::size_t vc) const {
  // Bound the lane's outstanding (staged + sent-but-uncredited) at
  // window, the same occupancy contract as GoBackNSender's per-lane
  // retransmission buffer — so a flow-control comparison measures
  // protocol behaviour, not a doubled per-hop buffer.
  XPL_ASSERT(vc < lanes_.size());
  const Lane& lane = lanes_[vc];
  return lane.buffer.size() + (config_.window - lane.credits) <
         config_.window;
}

void CreditSender::accept(Flit flit) {
  XPL_ASSERT(can_accept(flit.vc));
  // Reliable link: no seqno, no CRC seal — the receiver never checks.
  lanes_[flit.vc].buffer.push_back(std::move(flit));
}

void CreditSender::end_cycle() {
  XPL_ASSERT(wires_.fwd != nullptr);
  // One physical flit per cycle: serve lanes with staged flits
  // round-robin. can_accept keeps each lane's staged count <= its
  // credits, so a staged flit always has a credit to spend.
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    const std::size_t v = (next_lane_ + k) % lanes_.size();
    Lane& lane = lanes_[v];
    if (lane.buffer.empty()) continue;
    XPL_ASSERT(lane.credits > 0);
    --lane.credits;
    wires_.fwd->write(FlitBeat{true, std::move(lane.buffer.front())});
    fwd_dirty_ = true;
    lane.buffer.pop_front();
    ++flits_sent_;
    next_lane_ = (v + 1) % lanes_.size();
    return;
  }
  // Credit starvation: nothing staged anywhere, and at least one lane's
  // entire window is parked at the receiver awaiting drain.
  for (const Lane& lane : lanes_) {
    if (lane.credits == 0) {
      ++credit_stalls_;
      break;
    }
  }
  // Write-on-change: drive the wire idle once after the last valid beat.
  if (fwd_dirty_) {
    wires_.fwd->write(FlitBeat{});
    fwd_dirty_ = false;
  }
}

bool CreditSender::gate_idle() const {
  if (fwd_dirty_ || wires_.rev->read().valid) return false;
  for (const Lane& lane : lanes_) {
    // Staged flits need transmitting; a starved lane needs its per-cycle
    // credit_stall count (see the header note).
    if (!lane.buffer.empty() || lane.credits == 0) return false;
  }
  return true;
}

bool CreditSender::gate_idle_leap() const {
  if (fwd_dirty_ || wires_.rev->read().valid) return false;
  for (const Lane& lane : lanes_) {
    if (!lane.buffer.empty()) return false;
  }
  return true;
}

bool CreditSender::stall_pending() const {
  // Mirrors end_cycle's starvation rule: a stall is counted only on
  // cycles where nothing is staged anywhere and some lane sits at zero
  // credits.
  for (const Lane& lane : lanes_) {
    if (!lane.buffer.empty()) return false;
  }
  for (const Lane& lane : lanes_) {
    if (lane.credits == 0) return true;
  }
  return false;
}

std::size_t CreditSender::in_flight() const {
  std::size_t total = 0;
  for (const Lane& lane : lanes_) {
    total += lane.buffer.size() + (config_.window - lane.credits);
  }
  return total;
}

CreditReceiver::CreditReceiver(LinkWires wires, const ProtocolConfig& config)
    : wires_(wires), config_(config) {
  config_.validate();
  lanes_.resize(config_.vcs);
  for (auto& lane : lanes_) lane.reserve(config_.window);
}

std::optional<Flit> CreditReceiver::begin_cycle(std::uint32_t can_take_mask) {
  XPL_ASSERT(wires_.fwd != nullptr);
  const FlitBeat& beat = wires_.fwd->read();
  if (beat.valid) {
    // The sender spent one of this lane's credits for the slot; overflow
    // is a protocol wiring bug, not a runtime condition.
    XPL_ASSERT(beat.flit.vc < lanes_.size());
    auto& lane = lanes_[beat.flit.vc];
    XPL_ASSERT(lane.size() < config_.window);
    lane.push_back(beat.flit);
  }
  // Drain at most one flit from a takeable lane, round-robin.
  for (std::size_t k = 0; k < lanes_.size(); ++k) {
    const std::size_t v = (drain_next_ + k) % lanes_.size();
    auto& lane = lanes_[v];
    if (lane.empty() || (can_take_mask >> v & 1u) == 0) continue;
    Flit flit = std::move(lane.front());
    lane.pop_front();
    pending_credit_ = true;  // slot freed: return exactly one credit
    pending_credit_vc_ = static_cast<std::uint8_t>(v);
    ++flits_accepted_;
    drain_next_ = (v + 1) % lanes_.size();
    return flit;
  }
  return std::nullopt;
}

void CreditReceiver::end_cycle() {
  XPL_ASSERT(wires_.rev != nullptr);
  // Write-on-change: a credit return is always driven; the idle beat is
  // driven once after the last return (then the wire already holds it).
  if (pending_credit_ || rev_dirty_) {
    wires_.rev->write(
        AckBeat{pending_credit_, /*ack=*/true, 0, pending_credit_vc_});
    rev_dirty_ = pending_credit_;
    pending_credit_ = false;
  }
}

std::size_t CreditReceiver::buffered() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane.size();
  return total;
}

}  // namespace xpl::link
