#include "src/link/credit.hpp"

#include "src/common/error.hpp"

namespace xpl::link {

CreditSender::CreditSender(LinkWires wires, const ProtocolConfig& config)
    : wires_(wires), config_(config), credits_(config.window) {
  config_.validate();
  buffer_.reserve(config_.window);  // can_accept bounds it at window
}

void CreditSender::begin_cycle() {
  XPL_ASSERT(wires_.rev != nullptr);
  const AckBeat beat = wires_.rev->read();
  if (beat.valid) {
    // One valid reverse beat = one credit returned (ack/seqno unused).
    XPL_ASSERT(credits_ < config_.window);
    ++credits_;
  }
}

bool CreditSender::can_accept() const {
  // Bound total outstanding (staged + sent-but-uncredited) at window,
  // the same occupancy contract as GoBackNSender's retransmission
  // buffer — so a flow-control comparison measures protocol behaviour,
  // not a doubled per-hop buffer.
  return in_flight() < config_.window;
}

void CreditSender::accept(Flit flit) {
  XPL_ASSERT(can_accept());
  // Reliable link: no seqno, no CRC seal — the receiver never checks.
  buffer_.push_back(std::move(flit));
}

void CreditSender::end_cycle() {
  XPL_ASSERT(wires_.fwd != nullptr);
  if (!buffer_.empty()) {
    // can_accept keeps buffer_.size() <= credits_, so a staged flit
    // always has a credit to spend.
    XPL_ASSERT(credits_ > 0);
    --credits_;
    wires_.fwd->write(FlitBeat{true, std::move(buffer_.front())});
    buffer_.pop_front();
    ++flits_sent_;
  } else {
    // Credit starvation: the entire window is parked at the receiver
    // awaiting drain, so nothing could have been staged this cycle.
    if (credits_ == 0) ++credit_stalls_;
    wires_.fwd->write(FlitBeat{});
  }
}

CreditReceiver::CreditReceiver(LinkWires wires, const ProtocolConfig& config)
    : wires_(wires), config_(config) {
  config_.validate();
  buffer_.reserve(config_.window);
}

std::optional<Flit> CreditReceiver::begin_cycle(bool can_take) {
  XPL_ASSERT(wires_.fwd != nullptr);
  const FlitBeat& beat = wires_.fwd->read();
  if (beat.valid) {
    // The sender spent a credit for this slot; overflow is a protocol
    // wiring bug, not a runtime condition.
    XPL_ASSERT(buffer_.size() < config_.window);
    buffer_.push_back(beat.flit);
  }
  if (buffer_.empty() || !can_take) return std::nullopt;
  Flit flit = std::move(buffer_.front());
  buffer_.pop_front();
  pending_credit_ = true;  // slot freed: return exactly one credit
  ++flits_accepted_;
  return flit;
}

void CreditReceiver::end_cycle() {
  XPL_ASSERT(wires_.rev != nullptr);
  wires_.rev->write(AckBeat{pending_credit_, /*ack=*/true, 0});
  pending_credit_ = false;
}

}  // namespace xpl::link
