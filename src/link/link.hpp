// Pipelined, possibly unreliable NoC link.
//
// xpipes lite is explicitly designed around pipelined links: wire delay on
// long inter-switch connections is absorbed by inserting relay registers,
// and the resulting links are allowed to be *unreliable* — the switch's
// ACK/nACK protocol (goback_n.hpp) recovers from in-flight corruption.
// This module models an N-stage register pipeline in each direction plus
// optional bit-error injection on the forward (flit) direction. The
// reverse (ACK) direction is modelled as reliable; see DESIGN.md.
#pragma once

#include <cstdint>
#include <deque>

#include "src/common/rng.hpp"
#include "src/packet/flit.hpp"
#include "src/sim/kernel.hpp"

namespace xpl::link {

/// Wire pair of one link direction endpoint: forward flits, reverse acks.
struct LinkWires {
  sim::Signal<FlitBeat>* fwd = nullptr;
  sim::Signal<AckBeat>* rev = nullptr;

  static LinkWires make(sim::Kernel& kernel) {
    return {&kernel.make_signal<FlitBeat>(), &kernel.make_signal<AckBeat>()};
  }
};

/// One unidirectional link: `upstream` wires face the sender, `downstream`
/// wires face the receiver. With `stages == 0` the link degenerates to the
/// single kernel register between the endpoints (minimum 1 cycle); each
/// additional stage adds one cycle of forward and one of reverse latency.
class PipelinedLink : public sim::Module {
 public:
  struct Config {
    std::size_t stages = 0;        ///< extra relay registers per direction
    double bit_error_rate = 0.0;   ///< per-bit flip probability per traversal
    std::uint64_t seed = 1;        ///< error-injection RNG seed
  };

  PipelinedLink(std::string name, const LinkWires& upstream,
                const LinkWires& downstream, const Config& config);

  void tick(sim::Kernel& kernel) override;

  /// Quiescent when both directions hold no in-flight beats, both output
  /// wires are already driven idle, and nothing is arriving on either
  /// input wire (the link watches both, so arrivals wake it).
  bool is_idle() const override;

  /// Earliest in-flight due cycle (time-leap scheduler). A link busy only
  /// because beats are mid-pipe sleeps until the first one emerges; dirty
  /// output wires and valid input wires pin it to the next cycle.
  std::uint64_t next_event(std::uint64_t now) const override;

  /// Flits that traversed the link (including retransmissions).
  std::uint64_t flits_carried() const { return flits_carried_; }
  /// Flits corrupted by error injection.
  std::uint64_t flits_corrupted() const { return flits_corrupted_; }
  /// Utilization numerator for link-load statistics.
  std::uint64_t busy_cycles() const { return flits_carried_; }

  const Config& config() const { return config_; }

 private:
  /// Applies per-bit error injection to `beat` (call only for valid beats
  /// with bit_error_rate > 0; draws the same RNG sequence either way).
  void corrupt_in_place(FlitBeat& beat);

  /// A beat in flight: entered the pipe at cycle (due - stages), emerges
  /// on the output wire at cycle `due`. Replaces the per-stage shift
  /// registers: invalid stage slots carried no information, so only the
  /// valid beats are stored, each with its emergence cycle. Dues are
  /// strictly increasing (one wire beat per cycle), so delivery is a
  /// front-of-queue test and the queue doubles as the next_event source.
  template <typename Beat>
  struct InFlight {
    std::uint64_t due = 0;
    Beat beat;
  };

  Config config_;
  LinkWires up_;
  LinkWires down_;
  std::deque<InFlight<FlitBeat>> fwd_q_;  ///< valid forward beats mid-pipe
  std::deque<InFlight<AckBeat>> rev_q_;   ///< valid reverse beats mid-pipe
  bool fwd_out_dirty_ = false;  ///< downstream fwd wire holds a valid beat
  bool rev_out_dirty_ = false;  ///< upstream rev wire holds a valid beat
  Rng rng_;
  std::uint64_t flits_carried_ = 0;
  std::uint64_t flits_corrupted_ = 0;
};

}  // namespace xpl::link
