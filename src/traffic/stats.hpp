// Simulation statistics: transaction latency, throughput, link load.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/noc/network.hpp"

namespace xpl::traffic {

/// Latency distribution summary over completed transactions.
struct LatencyStats {
  std::uint64_t count = 0;
  double mean = 0.0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double p50 = 0.0;
  double p95 = 0.0;

  std::string to_string() const;
};

/// Gathers transaction latencies from every master core in `network`.
/// Only response-carrying transactions (reads, non-posted writes) have
/// meaningful end-to-end latency; posted writes complete at issue and are
/// excluded. Transactions issued before cycle `warmup` are excluded from
/// the distribution — the standard warmup-window discipline so cold-start
/// transients (empty buffers, unsaturated links) don't skew steady-state
/// measurements.
LatencyStats collect_latency(noc::Network& network,
                             std::uint64_t warmup = 0);

/// Whole-run summary used by benches and the sweep engine.
struct RunStats {
  LatencyStats latency;
  std::uint64_t transactions = 0;    ///< completed, issued at/after warmup
  std::uint64_t cycles = 0;          ///< driven cycles (whole run)
  std::uint64_t warmup = 0;          ///< cycles excluded from the window
  /// Measured-window throughput: transactions / (cycles - warmup).
  double throughput = 0.0;
  /// Whole-run link counters: the links count flits from cycle 0, so
  /// these (and avg_link_utilization) are not warmup-windowed.
  std::uint64_t link_flits = 0;
  std::uint64_t retransmissions = 0;
  /// Credit-starvation cycles summed over all senders: cycles spent at
  /// zero credits with the whole window parked downstream (credit flow
  /// control only; always 0 under ACK/nACK, where back-pressure
  /// retransmits instead).
  std::uint64_t credit_stalls = 0;
  double avg_link_utilization = 0.0; ///< flits per link per cycle

  std::string to_string() const;
};

/// Collects the run summary over the measurement window [warmup, cycles):
/// transaction counts, latency and throughput ignore transactions issued
/// before `warmup` (0 = whole run, the default). Requires warmup < cycles
/// when cycles > 0.
RunStats collect_run(noc::Network& network, std::uint64_t cycles,
                     std::uint64_t warmup = 0);

/// Latency histogram with fixed-width bins, for distribution plots.
struct LatencyHistogram {
  std::uint64_t bin_width = 10;       ///< cycles per bin
  std::vector<std::uint64_t> bins;    ///< bins[i] counts [i*w, (i+1)*w)
  std::uint64_t total = 0;

  /// Fraction of samples at or below `latency`, at bin granularity:
  /// every bin whose start is <= `latency` counts fully (the histogram
  /// cannot resolve positions inside a bin). cdf(max sample) == 1.0.
  double cdf(std::uint64_t latency) const;
  std::string to_string() const;
};

LatencyHistogram collect_histogram(noc::Network& network,
                                   std::uint64_t bin_width = 10);

/// Per-link load: flits carried / cycles, sorted hottest first.
struct LinkLoad {
  std::string name;
  std::uint64_t flits = 0;
  std::uint64_t corrupted = 0;
  double utilization = 0.0;
};

std::vector<LinkLoad> collect_link_loads(noc::Network& network,
                                         std::uint64_t cycles);

/// Writes per-transaction records as CSV (initiator, thread, issue cycle,
/// complete cycle, latency, beats) — one row per transaction that
/// actually completed (posted writes, which finish at issue, are
/// excluded) and was issued at or after `warmup`, the same windowing
/// discipline as collect_latency/collect_histogram. Returns the number
/// of rows written.
std::size_t write_latency_csv(noc::Network& network,
                              const std::string& path,
                              std::uint64_t warmup = 0);

}  // namespace xpl::traffic
