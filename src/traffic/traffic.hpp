// Synthetic traffic generation.
//
// Drives the Network's OCP master cores with the workloads the paper's
// evaluation implies: uniform random, hotspot (shared memory), fixed
// permutation, and bandwidth-weighted application traffic (the task-graph
// flows of the SunMap step, see appgraph/). A TrafficDriver is stepped
// alongside the kernel and injects transactions at a configurable mean
// rate, either memorylessly (Bernoulli) or in on/off bursts (two-state
// Markov modulation — see TrafficConfig::burstiness). The workload layer
// (src/workload/) builds app-benchmark and trace-replay scenarios on top.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/noc/network.hpp"

namespace xpl::traffic {

enum class Pattern : std::uint8_t {
  kUniformRandom,  ///< every target equally likely
  kHotspot,        ///< one target attracts `hotspot_fraction` of traffic
  kPermutation,    ///< initiator i always talks to target i mod T
  kWeighted,       ///< per-pair weights (application flows)
};

const char* pattern_name(Pattern pattern);

struct TrafficConfig {
  Pattern pattern = Pattern::kUniformRandom;
  /// Mean offered load: expected transactions per cycle per initiator,
  /// in [0, 1]. With burstiness == 0 this is a per-cycle Bernoulli coin;
  /// with burstiness > 0 the same mean is delivered in on/off bursts.
  double injection_rate = 0.05;
  /// Probability in [0, 1] that an injected transaction is a read; the
  /// rest are posted writes (no response, excluded from latency stats).
  double read_fraction = 0.5;
  /// Burst length is uniform in [min_burst, max_burst] beats (one beat =
  /// one OCP data word). Must satisfy 1 <= min <= max <= the network's
  /// max_burst.
  std::uint32_t min_burst = 1;
  std::uint32_t max_burst = 4;
  /// kHotspot: index of the target that attracts `hotspot_fraction` in
  /// [0, 1] of the traffic; the remainder is uniform over all targets.
  std::uint32_t hotspot_target = 0;
  double hotspot_fraction = 0.5;
  /// kWeighted: weight[i][t] — relative traffic from initiator i to
  /// target t (rows may be any non-negative values, zero row = silent).
  std::vector<std::vector<double>> weights;
  /// Temporal burstiness in [0, 1): the OFF-duty fraction of a two-state
  /// Markov (on/off) modulation of the injection process. 0 is the
  /// memoryless Bernoulli process. At burstiness b each initiator is ON
  /// a fraction (1-b) of the time and injects at rate
  /// injection_rate/(1-b) while ON, so the mean rate is preserved while
  /// variance grows — the bursty MPEG-style arrivals of DESIGN.md §5.
  /// Rates above the ON-duty fraction saturate (peak rate clamps at 1).
  double burstiness = 0.0;
  /// Mean ON-dwell in cycles (geometric) when burstiness > 0; the mean
  /// OFF-dwell follows from the duty cycle: avg_burst_cycles * b/(1-b).
  double avg_burst_cycles = 10.0;
  /// Seeds the driver's private xoshiro256** stream (independent of the
  /// network's seed, which drives link error injection).
  std::uint64_t seed = 42;
};

/// One scheduled transaction of a trace (trace-driven workloads: replay
/// recorded traffic instead of synthetic patterns).
struct TraceEntry {
  std::uint64_t cycle = 0;      ///< injection cycle (non-decreasing)
  std::uint32_t initiator = 0;  ///< initiator index
  std::uint32_t target = 0;     ///< target index
  ocp::Cmd cmd = ocp::Cmd::kRead;
  std::uint64_t addr_offset = 0;  ///< within the target's window
  std::uint32_t burst = 1;
  /// OCP thread id. Part of the schedule: responses match per thread, so
  /// replay timing is only faithful if the trace pins it.
  std::uint32_t thread = 0;
};

/// Trace-body command mnemonic ("read" | "write" | "writenp") — the
/// inverse of what parse_trace_line accepts. Throws on Cmd::kIdle.
const char* trace_cmd_name(ocp::Cmd cmd);

/// Parses one trace body line,
///   <cycle> <initiator> <target> <read|write|writenp> <offset> <burst>
///   [thread]
/// ('#' starts a comment; the trailing OCP thread id defaults to 0) into
/// `out`. Returns false for a blank or comment-only line; throws
/// xpl::Error (tagged with `lineno`) on malformed content. Shared by
/// parse_trace and the workload/ trace file format so the two can never
/// drift apart.
bool parse_trace_line(const std::string& line, std::size_t lineno,
                      TraceEntry& out);

/// Parses a text trace: one entry per line (parse_trace_line grammar).
/// Entries must be sorted by non-decreasing cycle.
std::vector<TraceEntry> parse_trace(const std::string& text);
std::vector<TraceEntry> load_trace(const std::string& path);

/// Replays a trace into a network; step once per cycle like TrafficDriver.
/// Validates every entry against the network (initiator/target/thread
/// ranges, burst fit) at construction. This is the one replay engine:
/// workload::TraceDriver layers the trace *file* format and a seed-free
/// payload policy on top of it.
///
/// On an unpartitioned time-leap kernel the player registers a small
/// injector module with the kernel so run() can hand the whole span to
/// Kernel::run at once: the injector declares the next entry's cycle via
/// next_event(), the kernel leaps the silent gaps, and the release gate
/// in MasterCore keeps the issue schedule bit-exact (DESIGN.md §12).
class TracePlayer {
 public:
  /// Write payload for beat `beat` of entry `index`. The default (null)
  /// draws from the player's fixed-seed RNG stream.
  using PayloadFn =
      std::function<std::uint64_t(std::size_t index, std::uint32_t beat)>;

  TracePlayer(noc::Network& network, std::vector<TraceEntry> trace,
              PayloadFn payload = nullptr);

  void step();
  /// Steps player and network together. On a partitioned network the
  /// injections for each lookahead epoch are pre-rolled (released at
  /// their exact cycles via push_transaction_at), so replay timing is
  /// identical at any partition/thread count.
  void run(std::size_t cycles);
  /// True when every entry has been injected.
  bool done() const { return next_ == trace_.size(); }
  std::uint64_t injected() const { return next_; }

 private:
  /// Schedulable face of the player (time-leap runs only): ticks after
  /// every network module, rolling the player far enough ahead that any
  /// transaction released at cycle c is queued before c begins. Inert
  /// (is_idle) outside run().
  class Injector : public sim::Module {
   public:
    explicit Injector(TracePlayer& owner)
        : sim::Module("trace_player.injector"), owner_(owner) {}
    void tick(sim::Kernel& kernel) override { owner_.injector_tick(kernel); }
    bool is_idle() const override { return !owner_.active_; }
    std::uint64_t next_event(std::uint64_t now) const override {
      return owner_.injector_next_event(now);
    }

   private:
    TracePlayer& owner_;
  };

  /// Injects the entries of player-cycle `cycle_`, released at `release`
  /// (the matching kernel cycle), then advances the player clock.
  void roll_cycle(std::uint64_t release);
  /// Rolls player cycles whose kernel release is <= `kernel_limit` (and
  /// below the run horizon), bulk-skipping entry-free stretches — silent
  /// rolls draw no RNG, so the skip is unobservable.
  void roll_until(std::uint64_t kernel_limit);
  void injector_tick(sim::Kernel& kernel);
  std::uint64_t injector_next_event(std::uint64_t now) const;

  noc::Network& network_;
  std::vector<TraceEntry> trace_;
  PayloadFn payload_;
  std::size_t next_ = 0;
  std::uint64_t cycle_ = 0;
  Rng rng_;  ///< write payload generation (default policy)

  Injector injector_{*this};
  bool use_injector_ = false;  ///< unpartitioned time-leap kernel
  bool active_ = false;        ///< inside run()
  /// Kernel cycle = player cycle + offset_ for the current run (unsigned
  /// wrap-around arithmetic; only the sum is meaningful).
  std::uint64_t offset_ = 0;
  std::uint64_t horizon_ = 0;  ///< first kernel cycle past the run
};

/// Injects transactions into every master of `network` when step() is
/// called once per simulated cycle.
///
/// On an unpartitioned time-leap kernel the driver registers an injector
/// module (see TracePlayer) so run() can hand the whole span to
/// Kernel::run: the injector rolls ahead through silent cycles until a
/// roll injects (RNG draw order is cycle order either way), sleeps until
/// the cycle before the next unrolled one, and the kernel leaps the gap.
class TrafficDriver {
 public:
  TrafficDriver(noc::Network& network, const TrafficConfig& config);

  /// Rolls injection for every initiator for one cycle.
  void step();

  /// Convenience: step the network and the driver together. On a
  /// partitioned network each lookahead epoch's injections are
  /// pre-rolled (released at their exact cycles), preserving both the
  /// RNG draw order and the issue schedule of the per-cycle loop.
  void run(std::size_t cycles);

  std::uint64_t injected() const { return injected_; }

 private:
  /// Schedulable face of the driver (time-leap runs only); see
  /// TracePlayer::Injector.
  class Injector : public sim::Module {
   public:
    explicit Injector(TrafficDriver& owner)
        : sim::Module("traffic_driver.injector"), owner_(owner) {}
    void tick(sim::Kernel& kernel) override { owner_.injector_tick(kernel); }
    bool is_idle() const override { return !owner_.active_; }
    std::uint64_t next_event(std::uint64_t now) const override {
      return owner_.injector_next_event(now);
    }

   private:
    TrafficDriver& owner_;
  };

  /// Rolls one driver cycle, releasing injections at kernel cycle
  /// `release` (== the current cycle when called via step()).
  void roll_cycle(std::uint64_t release);
  void injector_tick(sim::Kernel& kernel);
  std::uint64_t injector_next_event(std::uint64_t now) const;
  std::size_t pick_target(std::size_t initiator);
  /// Rolls the on/off Markov chain and the injection coin for one
  /// initiator-cycle; true when a transaction should be injected.
  bool roll_injection(std::size_t initiator);

  noc::Network& network_;
  TrafficConfig config_;
  Rng rng_;
  std::uint64_t injected_ = 0;
  /// Prefix sums per initiator for kWeighted.
  std::vector<std::vector<double>> cumulative_;
  /// Per-initiator ON/OFF state (burstiness > 0 only).
  std::vector<bool> burst_on_;
  double peak_rate_ = 0.0;   ///< injection probability while ON
  double p_on_to_off_ = 0.0;
  double p_off_to_on_ = 0.0;

  Injector injector_{*this};
  bool use_injector_ = false;    ///< unpartitioned time-leap kernel
  bool active_ = false;          ///< inside run()
  std::uint64_t rolled_next_ = 0;  ///< first kernel cycle not yet rolled
  std::uint64_t horizon_ = 0;      ///< first kernel cycle past the run
};

}  // namespace xpl::traffic
