// Synthetic traffic generation.
//
// Drives the Network's OCP master cores with the workloads the paper's
// evaluation implies: uniform random, hotspot (shared memory), fixed
// permutation, and bandwidth-weighted application traffic (the task-graph
// flows of the SunMap step, see appgraph/). A TrafficDriver is stepped
// alongside the kernel and injects transactions at a configurable rate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/noc/network.hpp"

namespace xpl::traffic {

enum class Pattern : std::uint8_t {
  kUniformRandom,  ///< every target equally likely
  kHotspot,        ///< one target attracts `hotspot_fraction` of traffic
  kPermutation,    ///< initiator i always talks to target i mod T
  kWeighted,       ///< per-pair weights (application flows)
};

const char* pattern_name(Pattern pattern);

struct TrafficConfig {
  Pattern pattern = Pattern::kUniformRandom;
  /// Expected transactions per cycle per initiator (Bernoulli injection).
  double injection_rate = 0.05;
  double read_fraction = 0.5;      ///< reads vs posted writes
  std::uint32_t min_burst = 1;
  std::uint32_t max_burst = 4;     ///< uniform burst length in beats
  std::uint32_t hotspot_target = 0;
  double hotspot_fraction = 0.5;
  /// kWeighted: weight[i][t] — relative traffic from initiator i to
  /// target t (rows may be any non-negative values, zero row = silent).
  std::vector<std::vector<double>> weights;
  std::uint64_t seed = 42;
};

/// One scheduled transaction of a trace (trace-driven workloads: replay
/// recorded traffic instead of synthetic patterns).
struct TraceEntry {
  std::uint64_t cycle = 0;      ///< injection cycle (non-decreasing)
  std::uint32_t initiator = 0;  ///< initiator index
  std::uint32_t target = 0;     ///< target index
  ocp::Cmd cmd = ocp::Cmd::kRead;
  std::uint64_t addr_offset = 0;  ///< within the target's window
  std::uint32_t burst = 1;
};

/// Parses a text trace: one entry per line,
///   <cycle> <initiator> <target> <read|write|writenp> <offset> <burst>
/// '#' starts a comment. Entries must be sorted by cycle.
std::vector<TraceEntry> parse_trace(const std::string& text);
std::vector<TraceEntry> load_trace(const std::string& path);

/// Replays a trace into a network; step once per cycle like TrafficDriver.
class TracePlayer {
 public:
  TracePlayer(noc::Network& network, std::vector<TraceEntry> trace);

  void step();
  void run(std::size_t cycles);
  /// True when every entry has been injected.
  bool done() const { return next_ == trace_.size(); }
  std::uint64_t injected() const { return next_; }

 private:
  noc::Network& network_;
  std::vector<TraceEntry> trace_;
  std::size_t next_ = 0;
  std::uint64_t cycle_ = 0;
  Rng rng_;  ///< write payload generation
};

/// Injects transactions into every master of `network` when step() is
/// called once per simulated cycle.
class TrafficDriver {
 public:
  TrafficDriver(noc::Network& network, const TrafficConfig& config);

  /// Rolls injection for every initiator for one cycle.
  void step();

  /// Convenience: step the network and the driver together.
  void run(std::size_t cycles);

  std::uint64_t injected() const { return injected_; }

 private:
  std::size_t pick_target(std::size_t initiator);

  noc::Network& network_;
  TrafficConfig config_;
  Rng rng_;
  std::uint64_t injected_ = 0;
  /// Prefix sums per initiator for kWeighted.
  std::vector<std::vector<double>> cumulative_;
};

}  // namespace xpl::traffic
