#include "src/traffic/stats.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/error.hpp"

namespace xpl::traffic {

std::string LatencyStats::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " min=" << min << " max=" << max
     << " p50=" << p50 << " p95=" << p95;
  return os.str();
}

LatencyStats collect_latency(noc::Network& network, std::uint64_t warmup) {
  std::vector<std::uint64_t> samples;
  for (std::size_t i = 0; i < network.num_initiators(); ++i) {
    for (const auto& result : network.master(i).completed()) {
      if (result.issue_cycle < warmup) continue;
      if (result.complete_cycle > result.issue_cycle &&
          !result.data.empty()) {
        samples.push_back(result.complete_cycle - result.issue_cycle);
      } else if (result.complete_cycle > result.issue_cycle &&
                 result.resp != ocp::Resp::kNull && result.data.empty()) {
        // Non-posted write completions also carry latency.
        samples.push_back(result.complete_cycle - result.issue_cycle);
      }
    }
  }
  LatencyStats stats;
  stats.count = samples.size();
  if (samples.empty()) return stats;
  std::sort(samples.begin(), samples.end());
  stats.min = samples.front();
  stats.max = samples.back();
  double sum = 0;
  for (const auto s : samples) sum += static_cast<double>(s);
  stats.mean = sum / static_cast<double>(samples.size());
  auto percentile = [&](double p) {
    const std::size_t idx = static_cast<std::size_t>(
        p * static_cast<double>(samples.size() - 1));
    return static_cast<double>(samples[idx]);
  };
  stats.p50 = percentile(0.50);
  stats.p95 = percentile(0.95);
  return stats;
}

std::string RunStats::to_string() const {
  std::ostringstream os;
  os << "txns=" << transactions << " cycles=" << cycles;
  if (warmup > 0) os << " warmup=" << warmup;
  os << " thru=" << throughput << " txn/cy; latency{" << latency.to_string()
     << "} link_flits=" << link_flits << " retx=" << retransmissions;
  if (credit_stalls > 0) os << " credit_stalls=" << credit_stalls;
  os << " util=" << avg_link_utilization;
  return os.str();
}

RunStats collect_run(noc::Network& network, std::uint64_t cycles,
                     std::uint64_t warmup) {
  require(cycles == 0 || warmup < cycles,
          "collect_run: warmup must leave a non-empty measurement window");
  RunStats stats;
  stats.latency = collect_latency(network, warmup);
  for (std::size_t i = 0; i < network.num_initiators(); ++i) {
    for (const auto& result : network.master(i).completed()) {
      if (result.issue_cycle >= warmup) ++stats.transactions;
    }
  }
  stats.cycles = cycles;
  stats.warmup = warmup;
  const std::uint64_t window = cycles - warmup;
  stats.throughput = cycles == 0 ? 0.0
                                 : static_cast<double>(stats.transactions) /
                                       static_cast<double>(window);
  stats.link_flits = network.total_link_flits();
  stats.retransmissions = network.total_retransmissions();
  stats.credit_stalls = network.total_credit_stalls();
  // num_links() counts partition-cut links too, so the utilization
  // denominator is invariant across partitionings.
  const std::size_t links = network.num_links();
  stats.avg_link_utilization =
      (cycles == 0 || links == 0)
          ? 0.0
          : static_cast<double>(stats.link_flits) /
                (static_cast<double>(cycles) * static_cast<double>(links));
  return stats;
}

double LatencyHistogram::cdf(std::uint64_t latency) const {
  if (total == 0) return 0.0;
  // Bin i counts samples in [i*w, (i+1)*w); the histogram cannot resolve
  // positions inside a bin, so the CDF is evaluated at bin granularity:
  // every bin whose *start* is <= latency counts fully. In particular the
  // bin containing `latency` is included — the old `(i+1)*w - 1 <= l`
  // test skipped it, so cdf(max_sample) returned 0.0 whenever bin_width
  // exceeded the largest latency.
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (i * bin_width <= latency) {
      below += bins[i];
    } else {
      break;
    }
  }
  return static_cast<double>(below) / static_cast<double>(total);
}

std::string LatencyHistogram::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    if (bins[i] == 0) continue;
    os << "[" << i * bin_width << "," << (i + 1) * bin_width << "): "
       << bins[i] << "\n";
  }
  return os.str();
}

LatencyHistogram collect_histogram(noc::Network& network,
                                   std::uint64_t bin_width) {
  require(bin_width >= 1, "collect_histogram: bin_width must be >= 1");
  LatencyHistogram hist;
  hist.bin_width = bin_width;
  for (std::size_t i = 0; i < network.num_initiators(); ++i) {
    for (const auto& result : network.master(i).completed()) {
      if (result.complete_cycle <= result.issue_cycle) continue;
      const std::uint64_t latency =
          result.complete_cycle - result.issue_cycle;
      const std::size_t bin = latency / bin_width;
      if (bin >= hist.bins.size()) hist.bins.resize(bin + 1, 0);
      ++hist.bins[bin];
      ++hist.total;
    }
  }
  return hist;
}

std::vector<LinkLoad> collect_link_loads(noc::Network& network,
                                         std::uint64_t cycles) {
  std::vector<LinkLoad> loads;
  // The uniform link view covers cut and uncut links alike, in creation
  // order, so load reports match at any partition count.
  for (const auto& link : network.link_stats()) {
    LinkLoad load;
    load.name = link.name;
    load.flits = link.flits_carried;
    load.corrupted = link.flits_corrupted;
    load.utilization = cycles == 0 ? 0.0
                                   : static_cast<double>(load.flits) /
                                         static_cast<double>(cycles);
    loads.push_back(std::move(load));
  }
  // stable_sort: links tie on flit count constantly (idle links all carry
  // zero), and std::sort leaves tie order unspecified — stdlib-dependent
  // and introsort-shuffled past 16 elements. Stable ranking keeps ties in
  // creation order, the anchor every other export uses (lint_regress).
  std::stable_sort(loads.begin(), loads.end(),
                   [](const LinkLoad& a, const LinkLoad& b) {
                     return a.flits > b.flits;
                   });
  return loads;
}

std::size_t write_latency_csv(noc::Network& network,
                              const std::string& path,
                              std::uint64_t warmup) {
  std::ofstream out(path);
  require(out.good(), "write_latency_csv: cannot open " + path);
  out << "initiator,thread,issue_cycle,complete_cycle,latency,beats\n";
  std::size_t rows = 0;
  for (std::size_t i = 0; i < network.num_initiators(); ++i) {
    for (const auto& result : network.master(i).completed()) {
      // Same record filter as collect_latency/collect_histogram: posted
      // writes complete at issue (complete_cycle <= issue_cycle) and
      // carry no end-to-end latency; pre-warmup issues are outside the
      // measurement window. Both used to leak into the CSV as bogus
      // zero-latency rows.
      if (result.issue_cycle < warmup) continue;
      if (result.complete_cycle <= result.issue_cycle) continue;
      out << i << "," << result.thread_id << "," << result.issue_cycle
          << "," << result.complete_cycle << ","
          << (result.complete_cycle - result.issue_cycle) << ","
          << result.data.size() << "\n";
      ++rows;
    }
  }
  return rows;
}

}  // namespace xpl::traffic
