#include "src/traffic/traffic.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/error.hpp"

namespace xpl::traffic {

const char* pattern_name(Pattern pattern) {
  switch (pattern) {
    case Pattern::kUniformRandom:
      return "uniform";
    case Pattern::kHotspot:
      return "hotspot";
    case Pattern::kPermutation:
      return "permutation";
    case Pattern::kWeighted:
      return "weighted";
  }
  return "?";
}

const char* trace_cmd_name(ocp::Cmd cmd) {
  switch (cmd) {
    case ocp::Cmd::kRead:
      return "read";
    case ocp::Cmd::kWrite:
      return "write";
    case ocp::Cmd::kWriteNp:
      return "writenp";
    case ocp::Cmd::kIdle:
      break;
  }
  throw Error("trace_cmd_name: kIdle has no trace mnemonic");
}

bool parse_trace_line(const std::string& line, std::size_t lineno,
                      TraceEntry& out) {
  std::string body = line;
  const auto hash = body.find('#');
  if (hash != std::string::npos) body.resize(hash);
  std::istringstream ls(body);
  TraceEntry entry;
  std::string cmd;
  if (!(ls >> entry.cycle)) return false;  // blank / comment-only line
  if (!(ls >> entry.initiator >> entry.target >> cmd >> entry.addr_offset >>
        entry.burst)) {
    throw Error("trace line " + std::to_string(lineno) +
                ": expected <cycle> <ini> <tgt> <cmd> <offset> <burst>");
  }
  if (cmd == "read") {
    entry.cmd = ocp::Cmd::kRead;
  } else if (cmd == "write") {
    entry.cmd = ocp::Cmd::kWrite;
  } else if (cmd == "writenp") {
    entry.cmd = ocp::Cmd::kWriteNp;
  } else {
    throw Error("trace line " + std::to_string(lineno) +
                ": unknown command '" + cmd + "'");
  }
  require(entry.burst >= 1,
          "trace line " + std::to_string(lineno) + ": burst must be >= 1");
  // Optional trailing thread id (defaults to 0); anything else is an
  // error rather than silently ignored — a typo here would change
  // per-thread response matching and therefore replay timing.
  std::string tail;
  if (ls >> tail) {
    if (tail.find_first_not_of("0123456789") != std::string::npos) {
      throw Error("trace line " + std::to_string(lineno) +
                  ": bad thread id '" + tail + "'");
    }
    unsigned long long thread = 0;
    try {
      thread = std::stoull(tail);
    } catch (const std::out_of_range&) {
      thread = 0xFFFFFFFFull + 1;  // force the range error below
    }
    require(thread <= 0xFFFFFFFFull, "trace line " +
                                         std::to_string(lineno) +
                                         ": thread id out of range");
    entry.thread = static_cast<std::uint32_t>(thread);
    std::string extra;
    if (ls >> extra) {
      throw Error("trace line " + std::to_string(lineno) +
                  ": unexpected trailing token '" + extra + "'");
    }
  }
  out = entry;
  return true;
}

std::vector<TraceEntry> parse_trace(const std::string& text) {
  std::vector<TraceEntry> trace;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    TraceEntry entry;
    if (!parse_trace_line(line, lineno, entry)) continue;
    if (!trace.empty()) {
      require(entry.cycle >= trace.back().cycle,
              "trace line " + std::to_string(lineno) +
                  ": cycles must be non-decreasing");
    }
    trace.push_back(entry);
  }
  return trace;
}

std::vector<TraceEntry> load_trace(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_trace: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_trace(text.str());
}

TracePlayer::TracePlayer(noc::Network& network, std::vector<TraceEntry> trace,
                         PayloadFn payload)
    : network_(network),
      trace_(std::move(trace)),
      payload_(std::move(payload)),
      rng_(0xFEED) {
  for (const TraceEntry& entry : trace_) {
    require(entry.initiator < network.num_initiators(),
            "TracePlayer: initiator index out of range");
    require(entry.target < network.num_targets(),
            "TracePlayer: target index out of range");
    require(entry.burst <= network.config().max_burst,
            "TracePlayer: burst exceeds network max_burst");
    require(entry.thread < network.config().num_threads,
            "TracePlayer: thread id exceeds network num_threads");
  }
  sim::Kernel& kernel = network_.kernel();
  use_injector_ = !kernel.partitioned() &&
                  kernel.scheduler() == sim::Scheduler::kTimeLeap;
  if (use_injector_) kernel.add_module(injector_);
}

void TracePlayer::roll_until(std::uint64_t kernel_limit) {
  while (true) {
    const std::uint64_t release = cycle_ + offset_;
    if (release >= horizon_ || release > kernel_limit) break;
    if (next_ < trace_.size() && trace_[next_].cycle <= cycle_) {
      roll_cycle(release);
      continue;
    }
    // Entry-free stretch: jump the player clock (silent rolls are pure
    // increments — no RNG draw, no injection).
    std::uint64_t target = std::min<std::uint64_t>(kernel_limit + 1, horizon_);
    if (next_ < trace_.size()) {
      target = std::min(target, trace_[next_].cycle + offset_);
    }
    cycle_ = target - offset_;
  }
}

void TracePlayer::injector_tick(sim::Kernel& kernel) {
  if (!active_) return;
  // Transactions released at cycle c must be queued before c begins (the
  // masters tick earlier in module order), so roll through now + 1.
  roll_until(kernel.cycle() + 1);
}

std::uint64_t TracePlayer::injector_next_event(std::uint64_t now) const {
  if (!active_ || next_ >= trace_.size()) return sim::kNever;
  const std::uint64_t release =
      std::max(trace_[next_].cycle, cycle_) + offset_;
  if (release >= horizon_) return sim::kNever;  // next run's business
  // The entry must be queued by the tick before its release cycle.
  return std::max(now + 1, release - 1);
}

void TracePlayer::roll_cycle(std::uint64_t release) {
  while (next_ < trace_.size() && trace_[next_].cycle <= cycle_) {
    const TraceEntry& entry = trace_[next_];
    ocp::Transaction txn;
    txn.cmd = entry.cmd;
    txn.addr = network_.target_base(entry.target) + entry.addr_offset;
    txn.burst_len = entry.burst;
    txn.thread_id = entry.thread;
    if (entry.cmd != ocp::Cmd::kRead) {
      for (std::uint32_t b = 0; b < entry.burst; ++b) {
        txn.data.push_back(payload_ ? payload_(next_, b)
                                    : rng_.next_u64());
      }
    }
    network_.master(entry.initiator)
        .push_transaction_at(std::move(txn), release);
    ++next_;
  }
  ++cycle_;
}

void TracePlayer::step() { roll_cycle(network_.kernel().cycle()); }

void TracePlayer::run(std::size_t cycles) {
  if (use_injector_) {
    const std::uint64_t base = network_.kernel().cycle();
    // Unsigned wrap-around is fine: only cycle_ + offset_ is ever read.
    offset_ = base - cycle_;
    horizon_ = base + cycles;
    // Entries due at `base` itself must be queued before the run starts.
    roll_until(base);
    active_ = true;
    injector_.wake();
    network_.step(cycles);
    active_ = false;
    // Normalize the player clock across a leapt silent tail so the next
    // run starts from the same player cycle as the per-cycle schedule.
    if (cycle_ + offset_ < horizon_) cycle_ = horizon_ - offset_;
    return;
  }
  const std::size_t k =
      std::max<std::size_t>(1, network_.kernel().lookahead());
  std::size_t done = 0;
  while (done < cycles) {
    const std::size_t n = std::min(k, cycles - done);
    const std::uint64_t base = network_.kernel().cycle();
    for (std::size_t j = 0; j < n; ++j) roll_cycle(base + j);
    network_.step(n);
    done += n;
  }
}

TrafficDriver::TrafficDriver(noc::Network& network,
                             const TrafficConfig& config)
    : network_(network), config_(config), rng_(config.seed) {
  require(network.num_targets() > 0, "TrafficDriver: no targets");
  require(config.min_burst >= 1 && config.min_burst <= config.max_burst,
          "TrafficDriver: bad burst range");
  require(config.max_burst <= network.config().max_burst,
          "TrafficDriver: burst exceeds network max_burst");
  // Even the shortest burst must fit a target's address window (8 bytes
  // per beat), or every injected transaction would spill past the window
  // into the next target's address space.
  require(8ull * config.min_burst <= network.config().target_window,
          "TrafficDriver: min_burst does not fit the target window");
  if (config.pattern == Pattern::kWeighted) {
    require(config.weights.size() == network.num_initiators(),
            "TrafficDriver: weights rows must match initiators");
    cumulative_.resize(config.weights.size());
    for (std::size_t i = 0; i < config.weights.size(); ++i) {
      require(config.weights[i].size() == network.num_targets(),
              "TrafficDriver: weights cols must match targets");
      double sum = 0;
      for (double w : config.weights[i]) {
        require(w >= 0, "TrafficDriver: negative weight");
        sum += w;
        cumulative_[i].push_back(sum);
      }
    }
  }
  if (config.pattern == Pattern::kHotspot) {
    require(config.hotspot_target < network.num_targets(),
            "TrafficDriver: hotspot target out of range");
  }
  require(config.burstiness >= 0.0 && config.burstiness < 1.0,
          "TrafficDriver: burstiness must be in [0, 1)");
  sim::Kernel& kernel = network.kernel();
  use_injector_ = !kernel.partitioned() &&
                  kernel.scheduler() == sim::Scheduler::kTimeLeap;
  if (use_injector_) kernel.add_module(injector_);
  if (config.burstiness > 0.0) {
    require(config.avg_burst_cycles >= 1.0,
            "TrafficDriver: avg_burst_cycles must be >= 1");
    const double duty = 1.0 - config.burstiness;
    p_on_to_off_ = 1.0 / config.avg_burst_cycles;
    // Mean OFF dwell avg_burst_cycles * b/(1-b) puts the stationary ON
    // fraction at `duty`. A per-cycle chain cannot dwell OFF for less
    // than one expected cycle, so for very small b the exit probability
    // clamps at 1; the peak rate below compensates from the *achieved*
    // ON fraction, keeping the mean rate exact either way.
    p_off_to_on_ =
        std::min(1.0, duty / (config.burstiness * config.avg_burst_cycles));
    const double on_fraction =
        p_off_to_on_ / (p_off_to_on_ + p_on_to_off_);
    peak_rate_ = std::min(1.0, config.injection_rate / on_fraction);
    burst_on_.resize(network.num_initiators());
    for (std::size_t i = 0; i < burst_on_.size(); ++i) {
      burst_on_[i] = rng_.chance(on_fraction);  // stationary start
    }
  }
}

bool TrafficDriver::roll_injection(std::size_t initiator) {
  if (config_.burstiness <= 0.0) {
    return rng_.chance(config_.injection_rate);
  }
  // Dwell transition first, then the injection coin in the (possibly
  // new) state, so even a one-cycle ON dwell can inject.
  const bool on = burst_on_[initiator] ? !rng_.chance(p_on_to_off_)
                                       : rng_.chance(p_off_to_on_);
  burst_on_[initiator] = on;
  return on && rng_.chance(peak_rate_);
}

std::size_t TrafficDriver::pick_target(std::size_t initiator) {
  const std::size_t num_targets = network_.num_targets();
  switch (config_.pattern) {
    case Pattern::kUniformRandom:
      return rng_.next_below(num_targets);
    case Pattern::kHotspot:
      if (rng_.chance(config_.hotspot_fraction)) {
        return config_.hotspot_target;
      }
      return rng_.next_below(num_targets);
    case Pattern::kPermutation:
      return initiator % num_targets;
    case Pattern::kWeighted: {
      const auto& cum = cumulative_[initiator];
      const double total = cum.back();
      if (total <= 0) return num_targets;  // silent initiator sentinel
      const double roll = rng_.next_double() * total;
      for (std::size_t t = 0; t < cum.size(); ++t) {
        if (roll < cum[t]) return t;
      }
      return cum.size() - 1;
    }
  }
  return 0;
}

void TrafficDriver::roll_cycle(std::uint64_t release) {
  for (std::size_t i = 0; i < network_.num_initiators(); ++i) {
    if (!roll_injection(i)) continue;
    const std::size_t target = pick_target(i);
    if (target >= network_.num_targets()) continue;  // silent row

    ocp::Transaction txn;
    std::uint32_t burst =
        config_.min_burst +
        static_cast<std::uint32_t>(rng_.next_below(
            config_.max_burst - config_.min_burst + 1));
    // Clamp the rolled burst to what the window can hold (the ctor
    // guarantees min_burst fits, so the clamp never reaches zero); an
    // unclamped burst would run past the target's window into the next
    // target's address space.
    const std::uint64_t window = network_.config().target_window;
    if (8ull * burst > window) {
      burst = static_cast<std::uint32_t>(window / 8);
    }
    txn.burst_len = burst;
    txn.thread_id = static_cast<std::uint32_t>(
        rng_.next_below(network_.config().num_threads));
    // Aligned address inside the window, room for the whole burst. The
    // max(1, ...) covers windows that are not multiples of 8: the tail
    // fragment leaves (window - span) / 8 == 0 aligned starts past base.
    const std::uint64_t span = 8ull * burst;
    const std::uint64_t slots =
        window > span ? std::max<std::uint64_t>(1, (window - span) / 8) : 1;
    txn.addr = network_.target_base(target) + 8 * rng_.next_below(slots);
    if (rng_.chance(config_.read_fraction)) {
      txn.cmd = ocp::Cmd::kRead;
    } else {
      txn.cmd = ocp::Cmd::kWrite;
      for (std::uint32_t b = 0; b < burst; ++b) {
        txn.data.push_back(rng_.next_u64());
      }
    }
    network_.master(i).push_transaction_at(std::move(txn), release);
    ++injected_;
  }
}

void TrafficDriver::step() {
  roll_cycle(network_.kernel().cycle());
  // Keep the injector's bookmark coherent when step() and run() mix.
  rolled_next_ = std::max(rolled_next_, network_.kernel().cycle() + 1);
}

void TrafficDriver::injector_tick(sim::Kernel& kernel) {
  if (!active_) return;
  const std::uint64_t now = kernel.cycle();
  // Mandatory: cycle now + 1 must be rolled before its masters tick.
  // Past that, keep rolling silent cycles so next_event() can name the
  // cycle before the next unrolled one — the kernel leaps the gap. RNG
  // draw order is cycle order either way; the release gate in MasterCore
  // makes early queuing unobservable.
  while (rolled_next_ < horizon_) {
    const std::uint64_t before = injected_;
    roll_cycle(rolled_next_);
    ++rolled_next_;
    if (rolled_next_ > now + 1 && injected_ != before) break;
  }
}

std::uint64_t TrafficDriver::injector_next_event(std::uint64_t now) const {
  if (!active_ || rolled_next_ >= horizon_) return sim::kNever;
  return std::max(now + 1, rolled_next_ - 1);
}

void TrafficDriver::run(std::size_t cycles) {
  if (use_injector_) {
    const std::uint64_t base = network_.kernel().cycle();
    rolled_next_ = std::max(rolled_next_, base);
    horizon_ = base + cycles;
    // Injections released at `base` itself must be queued before the run
    // starts: the masters tick before the injector within a cycle.
    while (rolled_next_ <= base && rolled_next_ < horizon_) {
      roll_cycle(rolled_next_);
      ++rolled_next_;
    }
    active_ = true;
    injector_.wake();
    network_.step(cycles);
    active_ = false;
    // Safety net: a run cut short of the injector's last wake (never in
    // normal operation) still leaves RNG state and injected() matching
    // the per-cycle schedule.
    while (rolled_next_ < horizon_) {
      roll_cycle(rolled_next_);
      ++rolled_next_;
    }
    return;
  }
  // Epoch batching: pre-roll the injections for the whole conservative
  // window (RNG order is per cycle, per initiator — identical to the
  // per-cycle schedule), then let the kernel run the epoch. The release
  // gate in MasterCore makes issue timing bit-exact either way.
  const std::size_t k =
      std::max<std::size_t>(1, network_.kernel().lookahead());
  std::size_t done = 0;
  while (done < cycles) {
    const std::size_t n = std::min(k, cycles - done);
    const std::uint64_t base = network_.kernel().cycle();
    for (std::size_t j = 0; j < n; ++j) roll_cycle(base + j);
    network_.step(n);
    done += n;
  }
}

}  // namespace xpl::traffic
