#include "src/packet/header.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/error.hpp"

namespace xpl {

const char* packet_cmd_name(PacketCmd cmd) {
  switch (cmd) {
    case PacketCmd::kWrite:
      return "WRITE";
    case PacketCmd::kRead:
      return "READ";
    case PacketCmd::kWriteNp:
      return "WRITE_NP";
    case PacketCmd::kResponse:
      return "RESPONSE";
  }
  return "?";
}

HeaderFormat HeaderFormat::for_network(std::size_t max_radix,
                                       std::size_t num_nodes,
                                       std::size_t diameter,
                                       std::size_t addr_bits,
                                       std::size_t max_burst,
                                       std::size_t num_threads) {
  require(max_radix >= 1, "HeaderFormat: radix must be >= 1");
  require(num_nodes >= 1, "HeaderFormat: need at least one node");
  HeaderFormat f;
  f.port_bits = bits_for(std::max<std::size_t>(max_radix, 2));
  f.max_hops = std::max<std::size_t>(diameter, 1);
  f.node_bits = bits_for(std::max<std::size_t>(num_nodes, 2));
  f.burst_bits = bits_for(max_burst + 1);
  f.thread_bits = bits_for(std::max<std::size_t>(num_threads, 2));
  f.addr_bits = addr_bits;
  return f;
}

std::string Header::to_string() const {
  std::ostringstream os;
  os << packet_cmd_name(cmd) << " src=" << src << " dst=" << dst
     << " txn=" << txn_id << " thr=" << thread_id << " burst=" << burst_len
     << " addr=0x" << std::hex << addr << std::dec << " route=[";
  for (std::size_t i = 0; i < route.size(); ++i) {
    if (i) os << ",";
    os << int(route[i]);
  }
  os << "]";
  return os.str();
}

BitVector pack_header(const Header& header, const HeaderFormat& format) {
  require(header.route.size() <= format.max_hops,
          "pack_header: route longer than max_hops");
  require(header.burst_len < (std::uint64_t{1} << format.burst_bits),
          "pack_header: burst_len overflows field");
  require(header.src < (std::uint64_t{1} << format.node_bits),
          "pack_header: src id overflows field");
  require(header.dst < (std::uint64_t{1} << format.node_bits),
          "pack_header: dst id overflows field");
  require(header.txn_id < (std::uint64_t{1} << format.txn_bits),
          "pack_header: txn id overflows field");
  require(header.thread_id < (std::uint64_t{1} << format.thread_bits),
          "pack_header: thread id overflows field");

  BitWriter w(format.width());
  // Route, hop 0 in the least significant slot.
  BitVector route_field(format.route_bits());
  for (std::size_t i = 0; i < header.route.size(); ++i) {
    require(header.route[i] < (1u << format.port_bits),
            "pack_header: port selector overflows field");
    route_field.deposit(i * format.port_bits, format.port_bits,
                        header.route[i]);
  }
  w.put_vector(route_field);
  w.put(HeaderFormat::kCmdBits, static_cast<std::uint64_t>(header.cmd));
  w.put(format.node_bits, header.src);
  w.put(format.node_bits, header.dst);
  w.put(format.txn_bits, header.txn_id);
  w.put(format.thread_bits, header.thread_id);
  w.put(format.burst_bits, header.burst_len);
  require(header.burst_seq < 4, "pack_header: burst_seq overflows field");
  w.put(HeaderFormat::kSeqBits, header.burst_seq);
  w.put(1, header.sideband ? 1 : 0);
  w.put(1, header.interrupt ? 1 : 0);
  require(header.resp < 4, "pack_header: resp code overflows field");
  w.put(HeaderFormat::kRespBits, header.resp);
  const std::uint64_t addr_mask =
      (format.addr_bits >= 64) ? ~std::uint64_t{0}
                               : ((std::uint64_t{1} << format.addr_bits) - 1);
  w.put(format.addr_bits, header.addr & addr_mask);
  XPL_ASSERT(w.position() == format.width());
  return w.bits();
}

Header unpack_header(const BitVector& bits, const HeaderFormat& format) {
  require(bits.width() == format.width(),
          "unpack_header: bit width does not match format");
  BitReader r(bits);
  Header h;
  h.route.resize(format.max_hops);
  for (std::size_t i = 0; i < format.max_hops; ++i) {
    h.route[i] = static_cast<std::uint8_t>(r.get(format.port_bits));
  }
  h.cmd = static_cast<PacketCmd>(r.get(HeaderFormat::kCmdBits));
  h.src = static_cast<std::uint32_t>(r.get(format.node_bits));
  h.dst = static_cast<std::uint32_t>(r.get(format.node_bits));
  h.txn_id = static_cast<std::uint32_t>(r.get(format.txn_bits));
  h.thread_id = static_cast<std::uint32_t>(r.get(format.thread_bits));
  h.burst_len = static_cast<std::uint32_t>(r.get(format.burst_bits));
  h.burst_seq = static_cast<std::uint8_t>(r.get(HeaderFormat::kSeqBits));
  h.sideband = r.get(1) != 0;
  h.interrupt = r.get(1) != 0;
  h.resp = static_cast<std::uint8_t>(r.get(HeaderFormat::kRespBits));
  h.addr = r.get(format.addr_bits);
  XPL_ASSERT(r.remaining() == 0);
  return h;
}

std::uint8_t peek_route_port(const BitVector& head_flit_payload,
                             std::size_t port_bits) {
  XPL_ASSERT(head_flit_payload.width() >= port_bits);
  return static_cast<std::uint8_t>(head_flit_payload.slice(0, port_bits));
}

BitVector consume_route_port(const BitVector& head_flit_payload,
                             std::size_t port_bits,
                             std::size_t route_bits_in_flit) {
  XPL_ASSERT(route_bits_in_flit <= head_flit_payload.width());
  XPL_ASSERT(port_bits <= route_bits_in_flit);
  BitVector out = head_flit_payload;
  // Shift the route portion down by one selector; zero-fill the top slot.
  const std::size_t keep = route_bits_in_flit - port_bits;
  BitVector shifted = head_flit_payload.subvector(port_bits, keep);
  out.deposit_vector(0, shifted);
  out.deposit(keep, port_bits, 0);
  return out;
}

}  // namespace xpl
