// Flit: the unit of link traversal and flow control.
//
// xpipes lite uses wormhole switching: a packet is a head flit (carrying the
// header register contents, possibly spread over several flits when the flit
// width is small), zero or more body flits (payload register contents), and
// a tail marker releasing the wormhole path. On the wire each flit carries:
//
//   payload (flit_width bits) | head | tail | vc | link seqno | CRC
//
// The seqno and CRC belong to the link-level ACK/nACK retransmission
// protocol; switches regenerate them hop by hop. The vc field is the
// virtual-channel (lane) tag: it selects which of the link's lanes the
// flit travels on, so per-lane buffers and per-lane flow control can
// interleave packets on one physical wire. With one lane (vcs == 1) the
// tag is zero bits wide on the wire and every struct field below is 0 —
// the single-lane seed microarchitecture falls out unchanged.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "src/common/bits.hpp"
#include "src/common/crc.hpp"
#include "src/sim/kernel.hpp"

namespace xpl {

/// One flit as it travels a link.
struct Flit {
  BitVector payload;          ///< flit_width data bits
  bool head = false;          ///< first flit of a packet
  bool tail = false;          ///< last flit of a packet
  std::uint8_t vc = 0;        ///< virtual-channel (lane) tag
  std::uint8_t seqno = 0;     ///< per-lane go-back-N sequence number
  std::uint16_t checksum = 0; ///< CRC over payload+head+tail+seqno

  Flit() = default;
  Flit(BitVector p, bool h, bool t) : payload(std::move(p)), head(h), tail(t) {}

  std::string to_string() const;
};

/// Bits protected by the flit checksum, in a canonical order. Both the
/// sender (to generate) and receiver (to verify) use this exact view, so a
/// corruption anywhere in the protected fields is detected with the code's
/// guarantees. The vc tag is not part of the view: like the reverse ACK
/// wires it is modelled reliable (error injection never touches it), which
/// keeps the protected word — and every CRC value — identical to the
/// single-lane wire format.
BitVector flit_protected_bits(const Flit& flit);

/// Computes and installs the checksum for `kind`.
void flit_seal(Flit& flit, CrcKind kind);

/// True if the stored checksum matches the payload under `kind`.
bool flit_verify(const Flit& flit, CrcKind kind);

/// Physical wire width of one flit beat for synthesis accounting:
/// payload + 2 control bits + vc bits + seqno bits + CRC bits. `vc_bits`
/// is 0 for a single-lane link (the seed wire format).
std::size_t flit_wire_width(std::size_t flit_width, std::size_t seq_bits,
                            CrcKind kind, std::size_t vc_bits = 0);

/// Valid/flit pair carried on a forward link signal.
struct FlitBeat {
  bool valid = false;
  Flit flit;
};

/// ACK/nACK beat carried on a reverse link signal. `ack == false` means
/// nACK: the receiver asks the sender to go back to `seqno`. `vc` names
/// the lane the beat belongs to (credit mode: the lane whose slot was
/// freed); like the rest of the reverse channel it is modelled reliable.
struct AckBeat {
  bool valid = false;
  bool ack = true;
  std::uint8_t seqno = 0;
  std::uint8_t vc = 0;
};

// Signal-digest support (sim::Kernel::digest, the oracle of the
// kernel-equivalence tests). Invalid beats hash as a bare 0 so stale
// payload fields left behind by moves can never alias real state.
inline void hash_append(sim::Digest& d, const BitVector& v) {
  d.mix(v.width());
  for (std::size_t pos = 0; pos < v.width(); pos += 64) {
    d.mix(v.slice(pos, std::min<std::size_t>(64, v.width() - pos)));
  }
}

inline void hash_append(sim::Digest& d, const Flit& f) {
  hash_append(d, f.payload);
  d.mix((f.head ? 1u : 0u) | (f.tail ? 2u : 0u));
  d.mix(f.vc);
  d.mix(f.seqno);
  d.mix(f.checksum);
}

inline void hash_append(sim::Digest& d, const FlitBeat& b) {
  d.mix(b.valid ? 1u : 0u);
  if (b.valid) hash_append(d, b.flit);
}

inline void hash_append(sim::Digest& d, const AckBeat& a) {
  d.mix(a.valid ? 1u : 0u);
  if (a.valid) {
    d.mix((a.ack ? 1u : 0u));
    d.mix(a.seqno);
    d.mix(a.vc);
  }
}

}  // namespace xpl
