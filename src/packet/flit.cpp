#include "src/packet/flit.hpp"

#include <sstream>

namespace xpl {

std::string Flit::to_string() const {
  std::ostringstream os;
  os << (head ? "H" : "-") << (tail ? "T" : "-") << " seq=" << int(seqno);
  if (vc != 0) os << " vc=" << int(vc);
  os << " payload=" << payload.to_string();
  return os.str();
}

BitVector flit_protected_bits(const Flit& flit) {
  BitVector bits(flit.payload.width() + 2 + 8);
  bits.deposit_vector(0, flit.payload);
  bits.set(flit.payload.width(), flit.head);
  bits.set(flit.payload.width() + 1, flit.tail);
  bits.deposit(flit.payload.width() + 2, 8, flit.seqno);
  return bits;
}

void flit_seal(Flit& flit, CrcKind kind) {
  flit.checksum = crc_compute(kind, flit_protected_bits(flit));
}

bool flit_verify(const Flit& flit, CrcKind kind) {
  return crc_check(kind, flit_protected_bits(flit), flit.checksum);
}

std::size_t flit_wire_width(std::size_t flit_width, std::size_t seq_bits,
                            CrcKind kind, std::size_t vc_bits) {
  return flit_width + 2 + vc_bits + seq_bits + crc_width(kind);
}

}  // namespace xpl
