// Packetization: decomposing a transaction into flits and back.
//
// Mirrors the paper's NI datapath: a header register (pack_header) written
// once per transaction and a payload register written once per burst beat,
// each decomposed into flits of the configured width. Decomposition is
// register-aligned — every register starts on a fresh flit — exactly as a
// hardware shifter over a single holding register behaves.
//
// Constraint checked here and by NocConfig: the whole route field must fit
// in the first flit (route_bits <= flit_width), so every switch can read
// and consume its output-port selector from the head flit alone.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/packet/flit.hpp"
#include "src/packet/header.hpp"

namespace xpl {

/// A whole network packet in decoded form.
struct Packet {
  Header header;
  /// Payload beats, each `beat_width` bits (one per burst beat). Write and
  /// response packets carry beats; read requests carry none.
  std::vector<BitVector> beats;

  bool operator==(const Packet&) const = default;
};

/// Static geometry of packets for one network configuration.
struct PacketFormat {
  HeaderFormat header;
  std::size_t flit_width = 32;  ///< payload bits per flit
  std::size_t beat_width = 32;  ///< payload bits per burst beat

  std::size_t header_flits() const {
    return ceil_div(header.width(), flit_width);
  }
  std::size_t flits_per_beat() const {
    return ceil_div(beat_width, flit_width);
  }
  /// Total flits of a packet with `beats` payload beats.
  std::size_t packet_flits(std::size_t beats) const {
    return header_flits() + beats * flits_per_beat();
  }

  /// Throws xpl::Error if the configuration is unusable (route field does
  /// not fit the first flit, or zero widths).
  void validate() const;
};

/// Decomposes `packet` into flits (head marked on the first, tail on the
/// last). Flits carry no link seqno/CRC yet; the link layer seals them.
std::vector<Flit> packetize(const Packet& packet, const PacketFormat& format);

/// Streaming reassembler: push flits in order; a decoded Packet pops out
/// when the tail flit arrives. One instance per receiving port.
class Depacketizer {
 public:
  explicit Depacketizer(PacketFormat format);

  /// Consumes the next in-order flit of the current packet. Throws
  /// xpl::Error on protocol violations (head in mid-packet, etc.).
  /// Returns the completed packet when `flit.tail` is set.
  std::optional<Packet> push(const Flit& flit);

  /// True between packets (next flit must be a head flit).
  bool idle() const { return state_ == State::kIdle; }

  /// Flits consumed of the in-progress packet (0 when idle).
  std::size_t flits_so_far() const { return flit_count_; }

  const PacketFormat& format() const { return format_; }

 private:
  enum class State { kIdle, kHeader, kBody };

  PacketFormat format_;
  State state_ = State::kIdle;
  std::size_t flit_count_ = 0;
  BitVector header_bits_;
  std::size_t header_fill_ = 0;
  BitVector beat_bits_;
  std::size_t beat_fill_ = 0;
  Packet current_;
};

}  // namespace xpl
