#include "src/packet/packetizer.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace xpl {

void PacketFormat::validate() const {
  require(flit_width > 0, "PacketFormat: flit_width must be > 0");
  require(beat_width > 0, "PacketFormat: beat_width must be > 0");
  require(header.route_bits() <= flit_width,
          "PacketFormat: route field must fit in the first flit "
          "(reduce max_hops or widen flits)");
}

namespace {

// Appends `bits` decomposed into flit_width chunks to `out`.
void decompose(const BitVector& bits, std::size_t flit_width,
               std::vector<Flit>& out) {
  std::size_t pos = 0;
  while (pos < bits.width()) {
    const std::size_t chunk = std::min(flit_width, bits.width() - pos);
    BitVector payload(flit_width);
    payload.deposit_vector(0, bits.subvector(pos, chunk));
    out.emplace_back(std::move(payload), /*head=*/false, /*tail=*/false);
    pos += chunk;
  }
}

}  // namespace

std::vector<Flit> packetize(const Packet& packet, const PacketFormat& format) {
  format.validate();
  for (const BitVector& beat : packet.beats) {
    require(beat.width() == format.beat_width,
            "packetize: beat width mismatch");
  }
  std::vector<Flit> flits;
  flits.reserve(format.packet_flits(packet.beats.size()));
  decompose(pack_header(packet.header, format.header), format.flit_width,
            flits);
  for (const BitVector& beat : packet.beats) {
    decompose(beat, format.flit_width, flits);
  }
  XPL_ASSERT(!flits.empty());
  flits.front().head = true;
  flits.back().tail = true;
  return flits;
}

Depacketizer::Depacketizer(PacketFormat format) : format_(std::move(format)) {
  format_.validate();
  header_bits_.resize(format_.header.width());
  beat_bits_.resize(format_.beat_width);
}

std::optional<Packet> Depacketizer::push(const Flit& flit) {
  require(flit.payload.width() == format_.flit_width,
          "Depacketizer: flit width mismatch");
  if (state_ == State::kIdle) {
    require(flit.head, "Depacketizer: expected head flit");
    state_ = State::kHeader;
    flit_count_ = 0;
    header_fill_ = 0;
    beat_fill_ = 0;
    current_ = Packet{};
  } else {
    require(!flit.head, "Depacketizer: unexpected head flit mid-packet");
  }

  if (state_ == State::kHeader) {
    const std::size_t take =
        std::min(format_.flit_width, header_bits_.width() - header_fill_);
    header_bits_.deposit_vector(header_fill_,
                                flit.payload.subvector(0, take));
    header_fill_ += take;
    if (header_fill_ == header_bits_.width()) {
      current_.header = unpack_header(header_bits_, format_.header);
      state_ = State::kBody;
    }
  } else {
    const std::size_t take =
        std::min(format_.flit_width, beat_bits_.width() - beat_fill_);
    beat_bits_.deposit_vector(beat_fill_, flit.payload.subvector(0, take));
    beat_fill_ += take;
    if (beat_fill_ == beat_bits_.width()) {
      current_.beats.push_back(beat_bits_);
      beat_bits_ = BitVector(format_.beat_width);
      beat_fill_ = 0;
    }
  }
  ++flit_count_;

  if (flit.tail) {
    require(state_ == State::kBody,
            "Depacketizer: tail arrived before the header completed");
    require(beat_fill_ == 0,
            "Depacketizer: tail arrived mid-beat");
    state_ = State::kIdle;
    Packet done = std::move(current_);
    current_ = Packet{};
    flit_count_ = 0;
    return done;
  }
  return std::nullopt;
}

}  // namespace xpl
