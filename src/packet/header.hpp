// Packet header: the "header register" of the xpipes lite NI.
//
// The paper describes packetization as filling a roughly 50-bit header
// register once per transaction — the route comes from a LUT indexed by
// the OCP MAddr, the remaining fields straight from the OCP request — and
// then decomposing it into flits. HeaderFormat computes the exact field
// layout for a given network configuration; Header is the decoded view.
//
// Layout (LSB first, so the route lands at the very front of the head
// flit and a switch can read its output port from the first flit beat):
//
//   route | cmd | src | dst | txn | thread | burst_len | burst_seq | flags | resp | addr
//
// The route field holds up to max_hops output-port selectors of
// port_bits each, hop 0 in the least significant position. Each switch
// consumes the low port_bits and shifts the route field right — a fixed
// width shifter in hardware — so the next hop's selector is always at the
// front.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bits.hpp"

namespace xpl {

/// Network-level packet kinds (2 bits on the wire).
enum class PacketCmd : std::uint8_t {
  kWrite = 0,     ///< posted write request (no response expected)
  kRead = 1,      ///< read request (response carries data)
  kWriteNp = 2,   ///< non-posted write (response carries completion)
  kResponse = 3,  ///< response packet (target NI -> initiator NI)
};

const char* packet_cmd_name(PacketCmd cmd);

/// Source route: the output port to take at each hop, front() first.
using Route = std::vector<std::uint8_t>;

/// Field widths of the packed header for one network configuration.
struct HeaderFormat {
  std::size_t port_bits = 3;    ///< selector width per hop (max switch radix)
  std::size_t max_hops = 8;     ///< route capacity
  std::size_t node_bits = 5;    ///< NI id width (src and dst fields)
  std::size_t txn_bits = 4;     ///< transaction sequence id width
  std::size_t thread_bits = 2;  ///< OCP MThreadID width
  std::size_t burst_bits = 5;   ///< burst length width (beats, 1..2^n-1)
  std::size_t addr_bits = 24;   ///< address offset within the target

  static constexpr std::size_t kCmdBits = 2;
  static constexpr std::size_t kSeqBits = 2;   ///< OCP MBurstSeq
  static constexpr std::size_t kFlagBits = 2;  ///< sideband + interrupt
  static constexpr std::size_t kRespBits = 2;  ///< OCP SResp code

  std::size_t route_bits() const { return port_bits * max_hops; }

  /// Total packed width; the paper's "about 50 bits" for typical configs.
  std::size_t width() const {
    return route_bits() + kCmdBits + 2 * node_bits + txn_bits + thread_bits +
           burst_bits + kSeqBits + kFlagBits + kRespBits + addr_bits;
  }

  /// Derives a format sized for a concrete network.
  ///
  /// `max_radix`: largest switch output-port count; `num_nodes`: NI count;
  /// `diameter`: longest route in hops; the rest size the OCP-facing fields.
  static HeaderFormat for_network(std::size_t max_radix, std::size_t num_nodes,
                                  std::size_t diameter, std::size_t addr_bits,
                                  std::size_t max_burst,
                                  std::size_t num_threads);
};

/// Decoded packet header.
struct Header {
  Route route;                 ///< remaining hops (front = next output port)
  PacketCmd cmd = PacketCmd::kWrite;
  std::uint32_t src = 0;       ///< source NI id
  std::uint32_t dst = 0;       ///< destination NI id
  std::uint32_t txn_id = 0;    ///< per-source transaction sequence number
  std::uint32_t thread_id = 0; ///< OCP thread
  std::uint32_t burst_len = 1; ///< payload beats that follow
  std::uint8_t burst_seq = 0;  ///< OCP MBurstSeq (INCR/WRAP/STREAM)
  bool sideband = false;       ///< OCP MFlag carried end to end
  bool interrupt = false;      ///< OCP SInterrupt (response packets)
  std::uint8_t resp = 0;       ///< OCP SResp code (response packets)
  std::uint64_t addr = 0;      ///< address offset within the target

  bool operator==(const Header&) const = default;
  std::string to_string() const;
};

/// Packs `header` into `format.width()` bits. The route may be shorter than
/// max_hops; unused hop slots are zero. Throws xpl::Error if any field
/// exceeds its width.
BitVector pack_header(const Header& header, const HeaderFormat& format);

/// Inverse of pack_header. The returned route has max_hops entries (the
/// consumed/unused slots decode as port 0); network code uses the dst/hop
/// count implicitly by consuming the front selector at each switch.
Header unpack_header(const BitVector& bits, const HeaderFormat& format);

/// Reads the next-hop output port from a packed head-flit fragment: the low
/// `port_bits` of the flit payload. The flit width must be >= port_bits
/// (always true for practical configurations; enforced by NocConfig).
std::uint8_t peek_route_port(const BitVector& head_flit_payload,
                             std::size_t port_bits);

/// Shifts the route field of a packed head-flit fragment right by
/// port_bits, consuming the front hop selector: bits [port_bits,
/// route_bits_in_flit) move down, the vacated top of the route field fills
/// with zero, and all non-route bits are untouched. `route_bits_in_flit` is
/// the number of route-field bits present in this flit (the route field can
/// span flits only when flit_width < route_bits; NocConfig forbids that, so
/// in practice the whole route sits in the first flit).
BitVector consume_route_port(const BitVector& head_flit_payload,
                             std::size_t port_bits,
                             std::size_t route_bits_in_flit);

}  // namespace xpl
