#include "src/tune/saturation.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/link/flow.hpp"

namespace xpl::tune {

SaturationSearch::SaturationSearch(sweep::SweepPoint base,
                                   SaturationConfig cfg)
    : base_(std::move(base)), cfg_(cfg) {
  require(cfg_.lo > 0 && cfg_.lo < cfg_.hi && cfg_.hi <= 1.0,
          "SaturationSearch: bracket must satisfy 0 < lo < hi <= 1");
  require(cfg_.rel_tol > 0 && cfg_.rel_tol < 1,
          "SaturationSearch: rel_tol must be in (0, 1)");
  require(cfg_.latency_blowup > 1,
          "SaturationSearch: latency_blowup must be > 1");
}

bool SaturationSearch::sweeps_flow() const {
  return base_.net.flow != link::FlowControl::kAckNack;
}

bool SaturationSearch::sweeps_vcs() const { return base_.net.vcs != 1; }

bool SaturationSearch::saturated(double avg_latency, double lat_lo,
                                 double latency_blowup) {
  return avg_latency > latency_blowup * lat_lo;
}

sweep::SweepPoint SaturationSearch::point_at(double rate) const {
  sweep::SweepPoint p = base_;
  p.traffic.injection_rate = rate;
  // Tune specs never pin a scheduler, so re-apply the load-based default
  // the resolver used — low-rate calibration probes leap their quiescent
  // gaps while the saturation bracket stays on the gated scheduler.
  // Results are scheduler-invariant, so this only changes wall-clock.
  p.net.scheduler = sweep::auto_scheduler(rate);
  return p;
}

std::vector<sweep::SweepPoint> SaturationSearch::propose(
    const std::vector<sweep::SweepResult>& so_far) {
  if (done_) return {};

  // Consume the answer to the outstanding probe, if any.
  if (!so_far.empty() && evals_ > 0) {
    const sweep::SweepResult& last = so_far.back();
    if (!last.ok) {
      error_ = "probe at rate " + std::to_string(probe_) +
               " failed: " + last.error;
      done_ = true;
      return {};
    }
    const double lat = last.avg_latency_cycles;
    switch (phase_) {
      case Phase::kCalibrate:
        if (lat <= 0.0) {
          error_ = "calibration at rate " + std::to_string(cfg_.lo) +
                   " measured no transaction latency";
          done_ = true;
          return {};
        }
        lat_lo_ = lat;
        lo_ = cfg_.lo;
        phase_ = Phase::kExpand;
        break;
      case Phase::kExpand:
        if (saturated(lat, lat_lo_, cfg_.latency_blowup)) {
          hi_ = probe_;  // bracket closed: [lo_, hi_]
          phase_ = Phase::kBisect;
        } else {
          lo_ = probe_;
          if (probe_ >= cfg_.hi) {
            done_ = true;  // never saturates inside the bracket
            return {};
          }
        }
        break;
      case Phase::kBisect:
        if (saturated(lat, lat_lo_, cfg_.latency_blowup)) {
          hi_ = probe_;
        } else {
          lo_ = probe_;
        }
        break;
      case Phase::kDone:
        return {};
    }
  }

  // Emit the next probe.
  switch (phase_) {
    case Phase::kCalibrate:
      probe_ = cfg_.lo;
      break;
    case Phase::kExpand:
      probe_ = std::min(lo_ * 2.0, cfg_.hi);
      break;
    case Phase::kBisect:
      if (hi_ - lo_ <= cfg_.rel_tol * cfg_.hi) {
        done_ = true;
        return {};
      }
      probe_ = 0.5 * (lo_ + hi_);
      break;
    case Phase::kDone:
      return {};
  }
  ++evals_;
  return {point_at(probe_)};
}

}  // namespace xpl::tune
