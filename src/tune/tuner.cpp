#include "src/tune/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <optional>
#include <sstream>

#include "src/common/error.hpp"
#include "src/sweep/format.hpp"
#include "src/sweep/pareto.hpp"
#include "src/tune/saturation.hpp"

namespace xpl::tune {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

/// Deterministic strict ranking over (objective, config): ties on the
/// float objective — common when two configs differ only in an axis the
/// workload never exercises — break on a seeded hash of the config id,
/// never on evaluation order, so the tuner picks the same winner at any
/// --jobs and across resumed trajectories.
struct ConfigRank {
  std::uint64_t seed;

  bool better(double score_a, std::size_t config_a, double score_b,
              std::size_t config_b) const {
    if (score_a != score_b) return score_a < score_b;
    const std::uint64_t ha = sweep::derive_seed(seed, config_a);
    const std::uint64_t hb = sweep::derive_seed(seed, config_b);
    if (ha != hb) return ha < hb;
    return config_a < config_b;
  }
};

/// The tuner's strategy as a sweep Proposer: successive-halving rungs,
/// then hill climbing, then (optionally) the saturation bisection — one
/// shared evaluation budget across all three.
class TunerProposer : public sweep::Proposer {
 public:
  TunerProposer(const TuneSpec& spec,
                const std::function<void(const TuneEval&)>& on_eval)
      : spec_(spec), on_eval_(on_eval), rank_{spec.seed} {
    const std::size_t n = spec_.num_configs();
    // Fidelity ladder: quarter and half windows first (when they are
    // actually shorter and leave a measurement window past warmup),
    // always ending at the full window. A single-config space skips the
    // cheap rungs — there is nothing to discard.
    if (n > 1) {
      for (const std::size_t div : {std::size_t{4}, std::size_t{2}}) {
        const std::size_t cycles =
            std::max(spec_.warmup + 1, spec_.sim_cycles / div);
        if (cycles < spec_.sim_cycles) ladder_.push_back(cycles);
      }
    }
    ladder_.push_back(spec_.sim_cycles);
    survivors_.resize(n);
    for (std::size_t c = 0; c < n; ++c) survivors_[c] = c;
  }

  std::vector<sweep::SweepPoint> propose(
      const std::vector<sweep::SweepResult>& so_far) override {
    consume(so_far);

    for (;;) {
      if (exhausted_ || phase_ == Phase::kDone) return {};
      switch (phase_) {
        case Phase::kRung: {
          if (!rung_dispatched_) {
            rung_scores_.clear();
            rung_dispatched_ = true;
            auto batch =
                make_batch(survivors_, ladder_[rung_], rung_stage());
            if (!batch.empty()) return batch;
            break;  // budget gone before the rung started
          }
          // This rung's results are in: rank what actually ran.
          std::sort(rung_scores_.begin(), rung_scores_.end(),
                    [&](const auto& a, const auto& b) {
                      return rank_.better(a.second, a.first, b.second,
                                          b.first);
                    });
          if (rung_ + 1 == ladder_.size()) {
            if (rung_scores_.empty()) {
              phase_ = Phase::kDone;  // budget died mid-final-rung
              break;
            }
            cur_ = rung_scores_.front().first;
            phase_ = Phase::kClimb;
            break;
          }
          // Keep the better half (at least one) for the next rung.
          const std::size_t keep =
              std::max<std::size_t>(1, (rung_scores_.size() + 1) / 2);
          survivors_.clear();
          for (std::size_t k = 0; k < keep; ++k) {
            survivors_.push_back(rung_scores_[k].first);
          }
          ++rung_;
          rung_dispatched_ = false;
          break;
        }

        case Phase::kClimb: {
          const auto moves = climb_moves();
          std::vector<std::size_t> to_eval;
          for (const std::size_t m : moves) {
            if (!full_score_.count(m)) to_eval.push_back(m);
          }
          if (!to_eval.empty()) {
            auto batch =
                make_batch(to_eval, spec_.sim_cycles, "climb");
            if (!batch.empty()) return batch;
            break;  // budget gone mid-climb
          }
          // All neighbours scored: move while something improves.
          std::size_t best_move = cur_;
          double best_score = full_score_.at(cur_);
          for (const std::size_t m : moves) {
            if (rank_.better(full_score_.at(m), m, best_score, best_move)) {
              best_move = m;
              best_score = full_score_.at(m);
            }
          }
          if (best_move != cur_) {
            cur_ = best_move;
            break;  // re-probe from the new position
          }
          best_ = cur_;
          phase_ = Phase::kSaturate;
          break;
        }

        case Phase::kSaturate: {
          if (!spec_.saturation.enabled || best_ == TuneEval::kNoConfig ||
              !std::isfinite(full_score_.at(best_))) {
            phase_ = Phase::kDone;
            break;
          }
          if (!sat_) {
            sat_.emplace(spec_.config_point(best_), spec_.saturation);
          }
          if (proposed_ >= spec_.budget) {
            exhausted_ = true;
            return {};
          }
          auto batch = sat_->propose(so_far);
          if (batch.empty()) {
            phase_ = Phase::kDone;
            break;
          }
          proposed_ += batch.size();
          for (const auto& p : batch) {
            outstanding_.push_back({"saturation", best_, p.sim_cycles});
          }
          return batch;
        }

        case Phase::kDone:
          return {};
      }
    }
  }

  bool sweeps_flow() const override { return spec_.sweeps_flow(); }
  bool sweeps_vcs() const override { return spec_.sweeps_vcs(); }

  std::vector<TuneEval>& trajectory() { return trajectory_; }
  bool exhausted() const { return exhausted_; }
  std::size_t best_config() const { return best_; }
  const SaturationSearch* saturation() const {
    return sat_ ? &*sat_ : nullptr;
  }

 private:
  enum class Phase { kRung, kClimb, kSaturate, kDone };

  struct Pending {
    std::string stage;
    std::size_t config;
    std::size_t cycles;
  };

  std::string rung_stage() const {
    return "rung" + std::to_string(rung_);
  }

  /// Folds newly arrived results (evaluation order) into the trajectory
  /// and the per-phase score books.
  void consume(const std::vector<sweep::SweepResult>& so_far) {
    for (; consumed_ < so_far.size(); ++consumed_) {
      const sweep::SweepResult& r = so_far[consumed_];
      require(!outstanding_.empty(), "tuner: result without proposal");
      const Pending p = outstanding_.front();
      outstanding_.pop_front();

      TuneEval ev;
      ev.eval = trajectory_.size();
      ev.stage = p.stage;
      ev.config = p.config;
      ev.cycles = p.cycles;
      ev.objective = spec_.objective.score(r);
      ev.result = r;
      if (p.stage != "saturation" && p.cycles == spec_.sim_cycles) {
        full_score_.emplace(p.config, ev.objective);
      }
      if (p.stage == rung_stage()) {
        rung_scores_.emplace_back(p.config, ev.objective);
      }
      if (on_eval_) on_eval_(ev);
      trajectory_.push_back(std::move(ev));
    }
  }

  /// Materializes one batch (all at `cycles`), charging the budget;
  /// truncates and flags exhaustion when the budget runs short.
  std::vector<sweep::SweepPoint> make_batch(
      const std::vector<std::size_t>& configs, std::size_t cycles,
      const std::string& stage) {
    const std::size_t remaining =
        spec_.budget > proposed_ ? spec_.budget - proposed_ : 0;
    const std::size_t take = std::min(configs.size(), remaining);
    if (take < configs.size()) exhausted_ = true;
    std::vector<sweep::SweepPoint> batch;
    batch.reserve(take);
    for (std::size_t k = 0; k < take; ++k) {
      sweep::SweepPoint p = spec_.config_point(configs[k]);
      p.sim_cycles = cycles;
      batch.push_back(std::move(p));
      outstanding_.push_back({stage, configs[k], cycles});
    }
    proposed_ += take;
    return batch;
  }

  /// One-step neighbours of cur_: each search axis moved one candidate
  /// position, fixed probe order (axis by axis, down then up).
  std::vector<std::size_t> climb_moves() const {
    const TuneSpec::ConfigIdx idx = spec_.config_indices(cur_);
    std::vector<std::size_t> moves;
    auto push = [&](TuneSpec::ConfigIdx m) {
      moves.push_back(spec_.config_id(m));
    };
    auto probe_axis = [&](std::size_t TuneSpec::ConfigIdx::*axis,
                          std::size_t size) {
      TuneSpec::ConfigIdx m = idx;
      if (idx.*axis > 0) {
        m.*axis = idx.*axis - 1;
        push(m);
      }
      if (idx.*axis + 1 < size) {
        m.*axis = idx.*axis + 1;
        push(m);
      }
    };
    probe_axis(&TuneSpec::ConfigIdx::fifo, spec_.fifo_depths.size());
    probe_axis(&TuneSpec::ConfigIdx::vcs, spec_.vcss.size());
    probe_axis(&TuneSpec::ConfigIdx::flow, spec_.flows.size());
    probe_axis(&TuneSpec::ConfigIdx::routing, spec_.routings.size());
    return moves;
  }

  const TuneSpec& spec_;
  const std::function<void(const TuneEval&)>& on_eval_;
  ConfigRank rank_;

  std::vector<std::size_t> ladder_;  ///< cycles per rung, ending at full
  std::size_t rung_ = 0;
  bool rung_dispatched_ = false;
  std::vector<std::size_t> survivors_;
  std::vector<std::pair<std::size_t, double>> rung_scores_;

  std::size_t cur_ = TuneEval::kNoConfig;   ///< climb position
  std::size_t best_ = TuneEval::kNoConfig;  ///< climb outcome
  std::map<std::size_t, double> full_score_;  ///< config -> full-fidelity score

  std::optional<SaturationSearch> sat_;

  Phase phase_ = Phase::kRung;
  std::deque<Pending> outstanding_;
  std::size_t consumed_ = 0;
  std::size_t proposed_ = 0;
  bool exhausted_ = false;

  std::vector<TuneEval> trajectory_;
};

}  // namespace

const TuneEval& TuneReport::winner() const {
  require(best != npos, "TuneReport: no successful full-fidelity evaluation");
  return trajectory[best];
}

std::string TuneReport::trajectory_csv() const {
  using sweep::fmt_double;
  std::ostringstream os;
  os << "eval,stage,config,label,fifo_depth,vcs,flow,routing,cycles,"
        "injection_rate,ok,objective,transactions,avg_latency_cycles,"
        "p95_latency_cycles,throughput_tpc,avg_link_utilization,area_mm2,"
        "power_mw,fmax_mhz,error\n";
  for (const TuneEval& ev : trajectory) {
    const TuneSpec::ConfigIdx idx = spec.config_indices(ev.config);
    const sweep::SweepResult& r = ev.result;
    os << ev.eval << "," << ev.stage << "," << ev.config << ","
       << spec.config_label(ev.config) << "," << spec.fifo_depths[idx.fifo]
       << "," << spec.vcss[idx.vcs] << "," << spec.flows[idx.flow] << ","
       << spec.routings[idx.routing] << "," << ev.cycles << ","
       << fmt_double(r.point.traffic.injection_rate) << ","
       << (r.ok ? 1 : 0) << "," << fmt_double(ev.objective) << ","
       << r.transactions << "," << fmt_double(r.avg_latency_cycles) << ","
       << fmt_double(r.p95_latency_cycles) << ","
       << fmt_double(r.throughput_tpc) << ","
       << fmt_double(r.avg_link_utilization) << ","
       << fmt_double(r.area_mm2) << "," << fmt_double(r.power_mw) << ","
       << fmt_double(r.fmax_mhz) << "," << csv_field(r.error) << "\n";
  }
  return os.str();
}

std::string TuneReport::trajectory_json() const {
  using sweep::fmt_double;
  std::ostringstream os;
  os << "{\n";
  os << "  \"tune\": \"" << json_escape(spec.name) << "\",\n";
  os << "  \"budget\": " << spec.budget << ",\n";
  os << "  \"evaluations\": " << trajectory.size() << ",\n";
  os << "  \"budget_exhausted\": " << (budget_exhausted ? "true" : "false")
     << ",\n";
  if (best == npos) {
    os << "  \"best\": null,\n";
  } else {
    os << "  \"best\": {\"eval\": " << best << ", \"config\": "
       << trajectory[best].config << ", \"label\": \""
       << spec.config_label(trajectory[best].config) << "\", \"objective\": "
       << fmt_double(trajectory[best].objective) << "},\n";
  }
  os << "  \"pareto\": [";
  for (std::size_t k = 0; k < pareto.size(); ++k) {
    os << (k ? ", " : "") << pareto[k];
  }
  os << "],\n";
  if (spec.saturation.enabled) {
    os << "  \"saturation\": {\"rate\": " << fmt_double(saturation_rate)
       << ", \"evaluations\": " << saturation_evals << ", \"converged\": "
       << (saturation_converged ? "true" : "false") << "},\n";
  }
  os << "  \"trajectory\": [\n";
  for (std::size_t i = 0; i < trajectory.size(); ++i) {
    const TuneEval& ev = trajectory[i];
    const sweep::SweepResult& r = ev.result;
    os << "    {\"eval\": " << ev.eval << ", \"stage\": \"" << ev.stage
       << "\", \"config\": " << ev.config << ", \"label\": \""
       << spec.config_label(ev.config) << "\", \"cycles\": " << ev.cycles
       << ", \"injection_rate\": "
       << fmt_double(r.point.traffic.injection_rate)
       << ", \"ok\": " << (r.ok ? "true" : "false") << ", \"objective\": ";
    if (std::isfinite(ev.objective)) {
      os << fmt_double(ev.objective);
    } else {
      os << "null";
    }
    os << ", \"avg_latency_cycles\": " << fmt_double(r.avg_latency_cycles)
       << ", \"p95_latency_cycles\": " << fmt_double(r.p95_latency_cycles)
       << ", \"throughput_tpc\": " << fmt_double(r.throughput_tpc)
       << ", \"area_mm2\": " << fmt_double(r.area_mm2)
       << ", \"power_mw\": " << fmt_double(r.power_mw)
       << ", \"fmax_mhz\": " << fmt_double(r.fmax_mhz) << ", \"error\": \""
       << json_escape(r.error) << "\"}"
       << (i + 1 < trajectory.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string TuneReport::summary() const {
  std::ostringstream os;
  char line[256];
  os << "tune " << spec.name << ": " << trajectory.size()
     << " evaluation(s) of budget " << spec.budget
     << (budget_exhausted ? " (budget exhausted)" : "") << ", "
     << spec.num_configs() << " config(s) in the search space\n";
  if (best == npos) {
    os << "no configuration completed at full fidelity\n";
    return os.str();
  }
  const TuneEval& w = trajectory[best];
  std::snprintf(line, sizeof(line),
                "winner %s  objective %.6g  (eval %zu, stage %s)\n",
                spec.config_label(w.config).c_str(), w.objective, w.eval,
                w.stage.c_str());
  os << line;
  std::snprintf(line, sizeof(line),
                "  lat %.1f cyc  p95 %.0f  thru %.4f t/cyc  area %.3f mm2"
                "  power %.1f mW  fmax %.0f MHz\n",
                w.result.avg_latency_cycles, w.result.p95_latency_cycles,
                w.result.throughput_tpc, w.result.area_mm2,
                w.result.power_mw, w.result.fmax_mhz);
  os << line;
  os << "pareto front (" << pareto.size() << " config(s)):\n";
  for (const std::size_t i : pareto) {
    const TuneEval& ev = trajectory[i];
    std::snprintf(line, sizeof(line),
                  "  %-28s obj %-10.6g lat %-8.1f thru %-8.4f area %-8.3f"
                  " power %-8.1f\n",
                  spec.config_label(ev.config).c_str(), ev.objective,
                  ev.result.avg_latency_cycles, ev.result.throughput_tpc,
                  ev.result.area_mm2, ev.result.power_mw);
    os << line;
  }
  if (spec.saturation.enabled) {
    std::snprintf(line, sizeof(line),
                  "saturation rate %.4g flits/cyc/node (%zu probe(s)%s)\n",
                  saturation_rate, saturation_evals,
                  saturation_converged ? "" : ", not converged");
    os << line;
  }
  return os.str();
}

compiler::NocSpec to_noc_spec(const TuneSpec& spec, std::size_t config) {
  const sweep::SweepPoint p = spec.config_point(config);
  compiler::NocSpec noc;
  noc.name = spec.name + "_" + spec.config_label(config);
  noc.topo = p.build_topology();
  noc.net = p.net;
  return noc;
}

TuneReport Tuner::run(const TuneSpec& spec) const {
  spec.validate();
  TunerProposer proposer(spec, on_eval);
  runner_.run_adaptive(proposer);

  TuneReport report;
  report.spec = spec;
  report.trajectory = std::move(proposer.trajectory());
  report.budget_exhausted = proposer.exhausted();

  // First successful full-fidelity evaluation per config, in trajectory
  // order — the candidate set for the winner and the Pareto front.
  std::map<std::size_t, std::size_t> first_full;  // config -> trajectory idx
  for (std::size_t i = 0; i < report.trajectory.size(); ++i) {
    const TuneEval& ev = report.trajectory[i];
    if (ev.stage == "saturation") continue;
    if (ev.cycles != spec.sim_cycles || !ev.result.ok) continue;
    first_full.emplace(ev.config, i);
  }
  const ConfigRank rank{spec.seed};
  for (const auto& [config, idx] : first_full) {
    if (report.best == TuneReport::npos ||
        rank.better(report.trajectory[idx].objective, config,
                    report.trajectory[report.best].objective,
                    report.trajectory[report.best].config)) {
      report.best = idx;
    }
  }

  std::vector<std::size_t> idxs;
  idxs.reserve(first_full.size());
  for (const auto& [config, idx] : first_full) idxs.push_back(idx);
  std::sort(idxs.begin(), idxs.end());  // trajectory (= evaluation) order
  std::vector<std::vector<double>> objectives;
  objectives.reserve(idxs.size());
  for (const std::size_t i : idxs) {
    const sweep::SweepResult& r = report.trajectory[i].result;
    objectives.push_back({r.avg_latency_cycles, -r.throughput_tpc,
                          r.area_mm2, r.power_mw});
  }
  for (const std::size_t k : sweep::pareto_front_min(objectives)) {
    report.pareto.push_back(idxs[k]);
  }

  if (const SaturationSearch* sat = proposer.saturation()) {
    report.saturation_rate = sat->saturation_rate();
    report.saturation_evals = sat->evaluations();
    report.saturation_converged = sat->converged() && sat->error().empty();
  }
  return report;
}

}  // namespace xpl::tune
