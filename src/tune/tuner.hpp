// The closed-loop auto-tuner: successive halving + hill climbing on the
// sweep engine's Proposer hook.
//
// Strategy (all phases share one evaluation budget, spec.budget):
//   1. rungs (successive halving) — evaluate every config of the search
//      cross-product at a fraction of the full simulation window, rank
//      by the weighted objective, keep the better half, double the
//      window, repeat until the full window is reached. Cheap fidelity
//      discards hopeless configs for a fraction of a full evaluation.
//   2. climb (hill climbing) — from the best full-fidelity config, probe
//      all one-step neighbours (one search axis moved one candidate
//      position) at full fidelity; move while something improves.
//      Neighbours already evaluated at full fidelity are reused, not
//      re-simulated.
//   3. saturation (optional) — bisection-search the winner's saturation
//      injection rate (saturation.hpp).
// Every ranking tie breaks on a seeded hash of the config id
// (derive_seed), never on float noise or scheduling, so an xtune run is
// reproducible end to end: same spec, same trajectory, same winner, at
// any --jobs.
//
// The report carries the full tuning trajectory (one row per simulation,
// in evaluation order), the winner, the Pareto front over full-fidelity
// evaluations, and the saturation result; to_noc_spec() turns any
// evaluated config into a ready-to-run compiler::NocSpec.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/compiler/compiler.hpp"
#include "src/sweep/runner.hpp"
#include "src/tune/spec.hpp"

namespace xpl::tune {

/// One simulation of the tuning trajectory.
struct TuneEval {
  std::size_t eval = 0;        ///< evaluation order (0-based)
  std::string stage;           ///< "rung0", "rung1", ..., "climb", "saturation"
  /// Config id (TuneSpec mixed-radix space). Saturation probes carry the
  /// winning config's id — only their injection rate differs.
  std::size_t config = kNoConfig;
  std::size_t cycles = 0;      ///< simulated window of this evaluation
  double objective = 0.0;      ///< weighted score (+inf for failed points)
  sweep::SweepResult result;

  static constexpr std::size_t kNoConfig = static_cast<std::size_t>(-1);
};

struct TuneReport {
  TuneSpec spec;
  std::vector<TuneEval> trajectory;  ///< evaluation order
  bool budget_exhausted = false;

  /// Trajectory index of the winner (best full-fidelity objective);
  /// npos when nothing evaluated successfully at full fidelity.
  std::size_t best = npos;
  /// Trajectory indices of the Pareto-efficient full-fidelity evals
  /// (latency / -throughput / area / power, config-deduped, winner's
  /// ordering deterministic).
  std::vector<std::size_t> pareto;

  /// Saturation search outcome (spec.saturation.enabled only).
  double saturation_rate = 0.0;
  std::size_t saturation_evals = 0;
  bool saturation_converged = false;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t evaluations() const { return trajectory.size(); }
  const TuneEval& winner() const;

  /// Tuning-trajectory exports (docs/FORMATS.md §4): one row per
  /// simulation with stage, config axes, objective and metrics.
  std::string trajectory_csv() const;
  std::string trajectory_json() const;
  /// Human-readable terminal report.
  std::string summary() const;
};

/// Ready-to-run NoC spec of config `c` — the emission path behind
/// `xtune`'s `.noc` outputs. The spec round-trips through spec_io
/// (fifo depths, vcs, flow, routing, link vc classes and datelines all
/// survive), so re-simulating the written file reproduces the reported
/// metrics exactly (given the same traffic and seeds).
compiler::NocSpec to_noc_spec(const TuneSpec& spec, std::size_t config);

class Tuner {
 public:
  explicit Tuner(const sweep::SweepRunner& runner) : runner_(runner) {}

  /// Progress hook, invoked in evaluation order.
  std::function<void(const TuneEval&)> on_eval;

  TuneReport run(const TuneSpec& spec) const;

 private:
  const sweep::SweepRunner& runner_;
};

}  // namespace xpl::tune
