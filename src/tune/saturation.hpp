// Adaptive saturation search: bisection on the injection-rate axis.
//
// A dense campaign locates a network's saturation throughput by
// simulating every rate on a grid; this proposer finds the same point
// with O(log) simulations. Protocol, starting from a calibration run at
// the (assumed unsaturated) low rate:
//   1. calibrate — measure the mean end-to-end latency at `lo`; that is
//      the zero-load reference.
//   2. expand — double the rate (clamped to `hi`) until a rate is
//      *saturated*: mean latency above `latency_blowup` x the reference,
//      the classic load-latency knee criterion (past the knee the
//      backlog, and with it the queueing delay of every completed
//      transaction, grows without bound). An unsaturated `hi` ends the
//      search (the network never saturates inside the bracket).
//   3. bisect — shrink the [unsaturated, saturated] bracket until its
//      width is <= rel_tol * hi. saturation_rate() is then the bracket's
//      low end: the highest rate proven unsaturated, within tolerance of
//      the true knee.
// Every proposal is a single point (the next probe depends on the last
// result), so the search is inherently sequential — the price of the
// ~5-10x fewer simulations it needs vs the dense grid (bench/
// fig_tune_convergence.cpp measures the ratio).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/sweep/proposer.hpp"
#include "src/tune/spec.hpp"

namespace xpl::tune {

class SaturationSearch : public sweep::Proposer {
 public:
  /// `base` supplies everything but the injection rate (and is itself
  /// never mutated); rates come from `cfg`'s bracket.
  SaturationSearch(sweep::SweepPoint base, SaturationConfig cfg);

  std::vector<sweep::SweepPoint> propose(
      const std::vector<sweep::SweepResult>& so_far) override;

  bool sweeps_flow() const override;
  bool sweeps_vcs() const override;

  /// True once the bracket converged (or the search failed — see error()).
  bool converged() const { return done_; }
  /// Highest injection rate proven unsaturated (valid once converged).
  double saturation_rate() const { return lo_; }
  /// Simulations consumed.
  std::size_t evaluations() const { return evals_; }
  /// Non-empty when the search aborted (calibration measured no
  /// latency — e.g. pure posted-write traffic — or a probe failed to
  /// simulate).
  const std::string& error() const { return error_; }

  /// The shared saturation predicate: mean latency `avg_latency` counts
  /// as saturated vs the calibration latency `lat_lo`. Exposed so the
  /// dense reference scan (tests, bench) applies the exact same
  /// criterion.
  static bool saturated(double avg_latency, double lat_lo,
                        double latency_blowup);

 private:
  sweep::SweepPoint point_at(double rate) const;

  sweep::SweepPoint base_;
  SaturationConfig cfg_;
  enum class Phase { kCalibrate, kExpand, kBisect, kDone } phase_ =
      Phase::kCalibrate;
  double lat_lo_ = 0.0;    ///< calibration mean latency at cfg_.lo
  double lo_ = 0.0;        ///< highest known-unsaturated rate
  double hi_ = 0.0;        ///< lowest known-saturated rate (bisect phase)
  double probe_ = 0.0;     ///< rate of the outstanding proposal
  std::size_t evals_ = 0;
  bool done_ = false;
  std::string error_;
};

}  // namespace xpl::tune
