// `.tune` — closed-loop auto-tuning specification.
//
// The paper frames the library as a design-space exploration tool; a
// `.tune` spec closes the loop: instead of enumerating a grid, it names
// a *base* network (topology, flit width, workload, evaluation rate), a
// weighted objective over the simulation + synthesis metrics, a set of
// search axes with candidate values, and an evaluation budget. The tuner
// (tuner.hpp) then drives the sweep engine point-by-point through the
// Proposer hook and emits the winning configurations as ready-to-run
// `.noc` files. docs/FORMATS.md §4 is the format reference.
//
//   # xtune specification
//   tune mesh_tune
//   seed 1
//   cycles 1500              # full-fidelity simulation window
//   drain 30000
//   warmup 0
//   budget 64                # max simulations (all fidelities count)
//   rate 0.1                 # evaluation injection rate for the objective
//   burstiness 0
//   read_fraction 0.5
//   max_burst 2
//   target_mhz 800
//   objective latency 1 area 0.2 power 0.05
//   topology mesh            # base network: one value each, not axes
//   width 4
//   height 4
//   flit_width 32
//   pattern uniform          # synthetic pattern or app:<benchmark>
//   search fifo_depth 2 4 8  # candidate values, searched
//   search vcs 1 2
//   search flow ack_nack credit
//   search routing auto minimal
//   saturation 0.02 0.64 0.01   # optional: lo hi rel_tol — also
//                               # bisection-search the winner's
//                               # saturation injection rate
//
// `objective` takes key/weight pairs over latency | p95 | throughput |
// area | power; score = w_lat*avg_latency + w_p95*p95 - w_thr*throughput
// + w_area*area + w_power*power, lower is better (throughput's weight
// rewards, never penalizes). `search` accepts the four axes above; an
// axis never mentioned stays pinned at its default. The format
// round-trips exactly: write_tune(parse_tune(text)) is canonical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sweep/result.hpp"
#include "src/sweep/spec.hpp"

namespace xpl::tune {

/// Weighted scalarization of a sweep result; lower is better. Failed
/// points score +infinity so every search strategy naturally avoids them.
struct Objective {
  double latency = 1.0;
  double p95 = 0.0;
  double throughput = 0.0;
  double area = 0.0;
  double power = 0.0;

  double score(const sweep::SweepResult& r) const;
};

/// Saturation bisection parameters (saturation.hpp). A rate counts as
/// saturated when the mean end-to-end latency of completed transactions
/// exceeds `latency_blowup` times the calibration latency at `lo` — the
/// classic load-latency knee criterion. (Delivered throughput is not a
/// usable signal here: the runner drains every injected transaction, so
/// measured throughput tracks the offered rate even past saturation,
/// while queueing delay diverges exactly at the knee.)
struct SaturationConfig {
  bool enabled = false;
  double lo = 0.02;      ///< calibration rate, assumed unsaturated
  double hi = 0.64;      ///< upper bracket
  double rel_tol = 0.01; ///< stop when the bracket shrinks below rel_tol*hi
  /// Knee multiplier. 1.6 sits in the steep part of the load-latency
  /// rise for every shipped topology; the plateau ratio (saturated vs
  /// zero-load mean latency) runs as low as ~1.8x on small tori, so
  /// larger factors can fail to fire inside the bracket.
  double latency_blowup = 1.6;
};

struct TuneSpec {
  std::string name = "tune";
  std::uint64_t seed = 1;
  std::size_t sim_cycles = 1500;
  std::size_t drain_cycles = 40000;
  std::size_t warmup = 0;
  /// Max simulations across all phases (rungs, climb, saturation).
  std::size_t budget = 64;
  double rate = 0.05;
  double burstiness = 0.0;
  double read_fraction = 0.5;
  std::uint32_t max_burst = 2;
  double target_mhz = 800.0;
  Objective objective;

  // Base network (single values — the part of the space not searched).
  std::string topology = "mesh";
  std::size_t width = 4;
  std::size_t height = 4;
  std::size_t flit_width = 32;
  std::string pattern = "uniform";

  // Search axes: candidate values; single-element = pinned. Config ids
  // are the mixed-radix cross product, fifo_depth innermost and routing
  // outermost (mirroring SweepSpec's fixed decode order).
  std::vector<std::size_t> fifo_depths = {4};
  std::vector<std::size_t> vcss = {1};
  std::vector<std::string> flows = {"ack_nack"};
  std::vector<std::string> routings = {"auto"};

  SaturationConfig saturation;

  /// Throws xpl::Error on invalid values.
  void validate() const;

  /// Search-space size (cross product of the search axes).
  std::size_t num_configs() const;
  /// Per-axis candidate indices of config `c` (fifo, vcs, flow, routing).
  struct ConfigIdx {
    std::size_t fifo = 0, vcs = 0, flow = 0, routing = 0;
  };
  ConfigIdx config_indices(std::size_t c) const;
  std::size_t config_id(const ConfigIdx& idx) const;

  /// Fully resolved sweep point for config `c` at the evaluation rate.
  /// Every config shares the same derived RNG seeds (grid cell 0 of an
  /// internal one-point SweepSpec), so comparisons are paired: each
  /// candidate faces the identical traffic stream.
  sweep::SweepPoint config_point(std::size_t c) const;
  /// Compact config tag, e.g. "q4_v2_credit_minimal".
  std::string config_label(std::size_t c) const;

  /// True when the searched axes vary flow control / vcs (export schema).
  bool sweeps_flow() const;
  bool sweeps_vcs() const;
};

/// Parses a tune specification; throws xpl::Error with a line number on
/// malformed input.
TuneSpec parse_tune(const std::string& text);
TuneSpec load_tune(const std::string& path);
/// Canonical form (stable ordering, one key per line); round-trips.
std::string write_tune(const TuneSpec& spec);
void save_tune(const TuneSpec& spec, const std::string& path);

}  // namespace xpl::tune
