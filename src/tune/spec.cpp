#include "src/tune/spec.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>

#include "src/common/error.hpp"
#include "src/link/flow.hpp"
#include "src/sweep/format.hpp"
#include "src/workload/benchmarks.hpp"

namespace xpl::tune {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw Error("tune line " + std::to_string(line) + ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

std::uint64_t parse_u64(const std::string& token, std::size_t line) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    fail(line, "bad number '" + token + "'");
  }
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(token, &used);
    if (used != token.size()) fail(line, "bad number '" + token + "'");
    return value;
  } catch (const std::logic_error&) {
    fail(line, "bad number '" + token + "'");
  }
}

double parse_f64(const std::string& token, std::size_t line) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) fail(line, "bad number '" + token + "'");
    return value;
  } catch (const std::logic_error&) {
    fail(line, "bad number '" + token + "'");
  }
}

const std::set<std::string>& known_topologies() {
  static const std::set<std::string> kinds{"mesh", "torus", "ring", "star",
                                           "spidergon"};
  return kinds;
}

const std::set<std::string>& known_routings() {
  static const std::set<std::string> kinds{"auto", "minimal", "xy",
                                           "updown"};
  return kinds;
}

}  // namespace

double Objective::score(const sweep::SweepResult& r) const {
  if (!r.ok) return std::numeric_limits<double>::infinity();
  return latency * r.avg_latency_cycles + p95 * r.p95_latency_cycles -
         throughput * r.throughput_tpc + area * r.area_mm2 +
         power * r.power_mw;
}

void TuneSpec::validate() const {
  require(known_topologies().count(topology) != 0,
          "tune: unknown topology '" + topology + "'");
  require(!fifo_depths.empty(), "tune: axis 'fifo_depth' is empty");
  require(!vcss.empty(), "tune: axis 'vcs' is empty");
  require(!flows.empty(), "tune: axis 'flow' is empty");
  require(!routings.empty(), "tune: axis 'routing' is empty");
  for (const std::size_t v : vcss) {
    require(v >= 1 && v <= link::kMaxVcs,
            "tune: vcs must be in [1, " + std::to_string(link::kMaxVcs) +
                "]");
  }
  for (const auto& f : flows) link::parse_flow_control(f);  // throws
  for (const auto& r : routings) {
    require(known_routings().count(r) != 0,
            "tune: unknown routing '" + r + "'");
  }
  if (pattern.rfind("app:", 0) == 0) {
    require(workload::is_benchmark(pattern.substr(4)),
            "tune: unknown app benchmark '" + pattern.substr(4) + "'");
  } else {
    require(pattern == "uniform" || pattern == "hotspot" ||
                pattern == "permutation",
            "tune: unknown pattern '" + pattern + "'");
  }
  require(rate > 0.0 && rate <= 1.0, "tune: rate must be in (0, 1]");
  require(burstiness >= 0.0 && burstiness < 1.0,
          "tune: burstiness must be in [0, 1)");
  require(sim_cycles > 0, "tune: cycles must be > 0");
  require(warmup < sim_cycles,
          "tune: warmup must leave a non-empty measurement window");
  require(budget > 0, "tune: budget must be > 0");
  const Objective& o = objective;
  require(o.latency >= 0 && o.p95 >= 0 && o.throughput >= 0 &&
              o.area >= 0 && o.power >= 0,
          "tune: objective weights must be >= 0");
  require(o.latency + o.p95 + o.throughput + o.area + o.power > 0,
          "tune: objective must have at least one positive weight");
  if (saturation.enabled) {
    require(saturation.lo > 0 && saturation.lo < saturation.hi &&
                saturation.hi <= 1.0,
            "tune: saturation bracket must satisfy 0 < lo < hi <= 1");
    require(saturation.rel_tol > 0 && saturation.rel_tol < 1,
            "tune: saturation tolerance must be in (0, 1)");
  }
}

std::size_t TuneSpec::num_configs() const {
  return fifo_depths.size() * vcss.size() * flows.size() * routings.size();
}

TuneSpec::ConfigIdx TuneSpec::config_indices(std::size_t c) const {
  require(c < num_configs(), "tune: config id out of range");
  ConfigIdx idx;
  idx.fifo = c % fifo_depths.size();
  c /= fifo_depths.size();
  idx.vcs = c % vcss.size();
  c /= vcss.size();
  idx.flow = c % flows.size();
  c /= flows.size();
  idx.routing = c;
  return idx;
}

std::size_t TuneSpec::config_id(const ConfigIdx& idx) const {
  return ((idx.routing * flows.size() + idx.flow) * vcss.size() + idx.vcs) *
             fifo_depths.size() +
         idx.fifo;
}

sweep::SweepPoint TuneSpec::config_point(std::size_t c) const {
  const ConfigIdx idx = config_indices(c);
  // A one-point SweepSpec per config reuses the sweep resolver end to
  // end (app placement, routing rules, seed derivation). Every config
  // resolves grid cell 0, so all candidates share the same derived
  // network/traffic seeds: paired evaluation under identical traffic.
  sweep::SweepSpec s;
  s.name = name;
  s.seed = seed;
  s.sim_cycles = sim_cycles;
  s.drain_cycles = drain_cycles;
  s.target_mhz = target_mhz;
  s.read_fraction = read_fraction;
  s.max_burst = max_burst;
  s.routing = routings[idx.routing];
  s.topologies = {topology};
  s.widths = {width};
  s.heights = {height};
  s.flit_widths = {flit_width};
  s.fifo_depths = {fifo_depths[idx.fifo]};
  s.vcss = {vcss[idx.vcs]};
  s.flows = {flows[idx.flow]};
  s.patterns = {pattern};
  s.warmups = {warmup};
  s.burstinesses = {burstiness};
  s.injection_rates = {rate};
  return s.point(0);
}

std::string TuneSpec::config_label(std::size_t c) const {
  const ConfigIdx idx = config_indices(c);
  std::ostringstream os;
  os << "q" << fifo_depths[idx.fifo] << "_v" << vcss[idx.vcs] << "_"
     << flows[idx.flow] << "_" << routings[idx.routing];
  return os.str();
}

bool TuneSpec::sweeps_flow() const {
  return flows.size() > 1 || flows.front() != "ack_nack";
}

bool TuneSpec::sweeps_vcs() const {
  return vcss.size() > 1 || vcss.front() != 1;
}

TuneSpec parse_tune(const std::string& text) {
  TuneSpec spec;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;

  while (std::getline(is, line)) {
    ++lineno;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];

    auto need = [&](std::size_t n) {
      if (tokens.size() != n) {
        fail(lineno, "'" + key + "' expects " + std::to_string(n - 1) +
                         " argument(s)");
      }
    };

    if (key == "tune") {
      need(2);
      spec.name = tokens[1];
    } else if (key == "seed") {
      need(2);
      spec.seed = parse_u64(tokens[1], lineno);
    } else if (key == "cycles") {
      need(2);
      spec.sim_cycles = parse_u64(tokens[1], lineno);
    } else if (key == "drain") {
      need(2);
      spec.drain_cycles = parse_u64(tokens[1], lineno);
    } else if (key == "warmup") {
      need(2);
      spec.warmup = parse_u64(tokens[1], lineno);
    } else if (key == "budget") {
      need(2);
      spec.budget = parse_u64(tokens[1], lineno);
    } else if (key == "rate") {
      need(2);
      spec.rate = parse_f64(tokens[1], lineno);
    } else if (key == "burstiness") {
      need(2);
      spec.burstiness = parse_f64(tokens[1], lineno);
    } else if (key == "read_fraction") {
      need(2);
      spec.read_fraction = parse_f64(tokens[1], lineno);
    } else if (key == "max_burst") {
      need(2);
      spec.max_burst =
          static_cast<std::uint32_t>(parse_u64(tokens[1], lineno));
    } else if (key == "target_mhz") {
      need(2);
      spec.target_mhz = parse_f64(tokens[1], lineno);
    } else if (key == "objective") {
      if (tokens.size() < 3 || tokens.size() % 2 == 0) {
        fail(lineno, "'objective' expects key/weight pairs");
      }
      spec.objective = Objective{0, 0, 0, 0, 0};
      for (std::size_t t = 1; t < tokens.size(); t += 2) {
        const double w = parse_f64(tokens[t + 1], lineno);
        if (tokens[t] == "latency") {
          spec.objective.latency = w;
        } else if (tokens[t] == "p95") {
          spec.objective.p95 = w;
        } else if (tokens[t] == "throughput") {
          spec.objective.throughput = w;
        } else if (tokens[t] == "area") {
          spec.objective.area = w;
        } else if (tokens[t] == "power") {
          spec.objective.power = w;
        } else {
          fail(lineno, "unknown objective key '" + tokens[t] +
                           "' (expected latency | p95 | throughput | area "
                           "| power)");
        }
      }
    } else if (key == "topology") {
      need(2);
      if (!known_topologies().count(tokens[1])) {
        fail(lineno, "unknown topology '" + tokens[1] + "'");
      }
      spec.topology = tokens[1];
    } else if (key == "width") {
      need(2);
      spec.width = parse_u64(tokens[1], lineno);
    } else if (key == "height") {
      need(2);
      spec.height = parse_u64(tokens[1], lineno);
    } else if (key == "flit_width") {
      need(2);
      spec.flit_width = parse_u64(tokens[1], lineno);
    } else if (key == "pattern") {
      need(2);
      spec.pattern = tokens[1];
    } else if (key == "search") {
      if (tokens.size() < 3) {
        fail(lineno, "'search' expects an axis name and values");
      }
      const std::string& axis = tokens[1];
      if (axis == "fifo_depth") {
        spec.fifo_depths.clear();
        for (std::size_t t = 2; t < tokens.size(); ++t) {
          spec.fifo_depths.push_back(parse_u64(tokens[t], lineno));
        }
      } else if (axis == "vcs") {
        spec.vcss.clear();
        for (std::size_t t = 2; t < tokens.size(); ++t) {
          const std::size_t v = parse_u64(tokens[t], lineno);
          if (v < 1 || v > link::kMaxVcs) {
            fail(lineno, "vcs must be in [1, " +
                             std::to_string(link::kMaxVcs) + "], got " +
                             std::to_string(v));
          }
          spec.vcss.push_back(v);
        }
      } else if (axis == "flow") {
        for (std::size_t t = 2; t < tokens.size(); ++t) {
          try {
            link::parse_flow_control(tokens[t]);  // validates
          } catch (const Error& e) {
            fail(lineno, e.what());
          }
        }
        spec.flows.assign(tokens.begin() + 2, tokens.end());
      } else if (axis == "routing") {
        for (std::size_t t = 2; t < tokens.size(); ++t) {
          if (!known_routings().count(tokens[t])) {
            fail(lineno, "unknown routing '" + tokens[t] +
                             "' (expected auto | minimal | xy | updown)");
          }
        }
        spec.routings.assign(tokens.begin() + 2, tokens.end());
      } else {
        fail(lineno, "unknown search axis '" + axis +
                         "' (expected fifo_depth | vcs | flow | routing)");
      }
    } else if (key == "saturation") {
      need(4);
      spec.saturation.enabled = true;
      spec.saturation.lo = parse_f64(tokens[1], lineno);
      spec.saturation.hi = parse_f64(tokens[2], lineno);
      spec.saturation.rel_tol = parse_f64(tokens[3], lineno);
    } else {
      fail(lineno, "unknown directive '" + key + "'");
    }
  }
  try {
    spec.validate();
  } catch (const Error& e) {
    throw Error(std::string(e.what()) + " (in parsed tune spec)");
  }
  return spec;
}

TuneSpec load_tune(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_tune: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_tune(text.str());
}

std::string write_tune(const TuneSpec& spec) {
  using sweep::fmt_double;
  std::ostringstream os;
  os << "# xtune specification\n";
  os << "tune " << spec.name << "\n";
  os << "seed " << spec.seed << "\n";
  os << "cycles " << spec.sim_cycles << "\n";
  os << "drain " << spec.drain_cycles << "\n";
  os << "warmup " << spec.warmup << "\n";
  os << "budget " << spec.budget << "\n";
  os << "rate " << fmt_double(spec.rate) << "\n";
  os << "burstiness " << fmt_double(spec.burstiness) << "\n";
  os << "read_fraction " << fmt_double(spec.read_fraction) << "\n";
  os << "max_burst " << spec.max_burst << "\n";
  os << "target_mhz " << fmt_double(spec.target_mhz) << "\n";
  os << "objective latency " << fmt_double(spec.objective.latency)
     << " p95 " << fmt_double(spec.objective.p95) << " throughput "
     << fmt_double(spec.objective.throughput) << " area "
     << fmt_double(spec.objective.area) << " power "
     << fmt_double(spec.objective.power) << "\n";
  os << "topology " << spec.topology << "\n";
  os << "width " << spec.width << "\n";
  os << "height " << spec.height << "\n";
  os << "flit_width " << spec.flit_width << "\n";
  os << "pattern " << spec.pattern << "\n";
  auto write_search = [&os](const char* axis, const auto& values) {
    os << "search " << axis;
    for (const auto& v : values) os << " " << v;
    os << "\n";
  };
  write_search("fifo_depth", spec.fifo_depths);
  write_search("vcs", spec.vcss);
  write_search("flow", spec.flows);
  write_search("routing", spec.routings);
  if (spec.saturation.enabled) {
    os << "saturation " << fmt_double(spec.saturation.lo) << " "
       << fmt_double(spec.saturation.hi) << " "
       << fmt_double(spec.saturation.rel_tol) << "\n";
  }
  return os.str();
}

void save_tune(const TuneSpec& spec, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "save_tune: cannot open " + path);
  out << write_tune(spec);
}

}  // namespace xpl::tune
