// The xpipes lite switch.
//
// Faithful to the paper's microarchitecture:
//   * wormhole switching with source-based routing — the head flit carries
//     the whole route; each switch reads its output-port selector from the
//     head flit's low bits and shifts the route field (header.hpp);
//   * 2-stage pipeline — stage 1 latches the incoming flit into the input
//     buffer, stage 2 arbitrates, traverses the crossbar and writes the
//     output queue; an optional `extra_pipeline` parameter reproduces the
//     7-stage switch of the *first* xpipes library for the latency
//     comparison (bench F8);
//   * output queuing — per-output FIFOs ("buffering for performance");
//   * ACK/nACK flow & error control on every port, over pipelined,
//     unreliable links (goback_n.hpp);
//   * fixed-priority or round-robin arbitration, one arbiter + wormhole
//     allocator lock per output, n_out x n_in crossbar.
//
// Port counts are independent (the paper's mesh uses 4x4 and 6x4
// switches), set per instance by the xpipesCompiler.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/ring.hpp"
#include "src/link/flow.hpp"
#include "src/link/link.hpp"
#include "src/sim/kernel.hpp"
#include "src/switchlib/arbiter.hpp"

namespace xpl::switchlib {

/// Per-instance switch parameters (the xpipesCompiler's knobs).
struct SwitchConfig {
  std::size_t num_inputs = 4;
  std::size_t num_outputs = 4;
  std::size_t flit_width = 32;        ///< payload bits per flit
  std::size_t port_bits = 3;          ///< route selector width
  std::size_t route_bits = 24;        ///< route field width in head flits
  std::size_t input_fifo_depth = 2;   ///< stage-1 buffer per input
  std::size_t output_fifo_depth = 4;  ///< output queue per output
  std::size_t extra_pipeline = 0;     ///< 0 => the paper's 2-stage switch
  ArbiterKind arbiter = ArbiterKind::kRoundRobin;
  /// Link-level flow control on every port (link::flow.hpp seam).
  link::FlowControl flow = link::FlowControl::kAckNack;
  link::ProtocolConfig protocol{};    ///< uniform link protocol parameters
  /// Optional per-port protocol overrides (per-instance buffer sizing:
  /// the go-back-N window of each port matches *its* link's round trip
  /// instead of the network-wide worst case). Empty = use `protocol`.
  std::vector<link::ProtocolConfig> input_protocols;
  std::vector<link::ProtocolConfig> output_protocols;

  const link::ProtocolConfig& input_protocol(std::size_t port) const {
    return input_protocols.empty() ? protocol : input_protocols.at(port);
  }
  const link::ProtocolConfig& output_protocol(std::size_t port) const {
    return output_protocols.empty() ? protocol : output_protocols.at(port);
  }

  /// Total pipeline stages as the paper counts them.
  std::size_t pipeline_stages() const { return 2 + extra_pipeline; }

  void validate() const;
};

/// One switch instance. Input port i receives on `input_wires[i]`; output
/// port o transmits on `output_wires[o]`.
class Switch : public sim::Module {
 public:
  Switch(std::string name, const SwitchConfig& config,
         std::vector<link::LinkWires> input_wires,
         std::vector<link::LinkWires> output_wires);

  void tick(sim::Kernel& kernel) override;

  const SwitchConfig& config() const { return config_; }

  /// Flits forwarded input->output since construction.
  std::uint64_t flits_switched() const { return flits_switched_; }
  /// Cycles in which at least one flit traversed the crossbar.
  std::uint64_t active_cycles() const { return active_cycles_; }
  /// Per-output count of granted head flits (packets routed).
  const std::vector<std::uint64_t>& packets_per_output() const {
    return packets_out_;
  }
  /// Retransmissions requested of this switch's senders (error/flow);
  /// always 0 in credit mode.
  std::uint64_t retransmissions() const;
  /// Credit-starvation cycles summed over this switch's senders (zero
  /// credits, window parked downstream); always 0 in ACK/nACK mode.
  std::uint64_t credit_stalls() const;

  /// True when no flit is buffered or in flight inside the switch.
  bool idle() const;

 private:
  static constexpr std::size_t kNoPort = static_cast<std::size_t>(-1);

  struct InputPort {
    link::LinkReceiver rx;
    Ring<Flit> fifo;  ///< bounded by input_fifo_depth
    std::size_t locked_output = kNoPort;  ///< wormhole in progress
    bool expecting_body = false;          ///< protocol check state
  };

  struct OutputPort {
    link::LinkSender tx;
    Ring<Flit> fifo;  ///< bounded by output_fifo_depth
    /// Crossbar-to-queue delay line modelling extra pipeline stages; each
    /// entry records the cycle it entered and exits extra_pipeline later.
    /// Shares the output_fifo_depth bound (fifo + pipe <= depth).
    Ring<std::pair<Flit, std::uint64_t>> pipe;
    std::size_t locked_input = kNoPort;  ///< wormhole allocator state
    Arbiter arbiter;

    explicit OutputPort(ArbiterKind kind, std::size_t inputs)
        : arbiter(kind, inputs) {}
  };

  /// Output requested by the flit at the head of input `i`, if any.
  std::optional<std::size_t> requested_output(const InputPort& in) const;

  SwitchConfig config_;
  std::vector<InputPort> inputs_;
  std::vector<OutputPort> outputs_;

  /// Per-cycle memo of each input's requested output (kNoPort = none),
  /// invalidated when the input's head flit changes mid-cycle, plus the
  /// arbiter request scratch — both hoisted out of tick() so arbitration
  /// does no per-cycle allocation and reads each head flit's route once.
  std::vector<std::size_t> req_cache_;
  std::vector<bool> req_cache_valid_;
  std::vector<bool> req_scratch_;

  std::uint64_t flits_switched_ = 0;
  std::uint64_t active_cycles_ = 0;
  std::vector<std::uint64_t> packets_out_;
};

}  // namespace xpl::switchlib
