// The xpipes lite switch.
//
// Faithful to the paper's microarchitecture, generalized to N virtual
// channels (lanes) per port:
//   * wormhole switching with source-based routing — the head flit carries
//     the whole route; each switch reads its output-port selector from the
//     head flit's low bits and shifts the route field (header.hpp);
//   * 2-stage pipeline — stage 1 latches the incoming flit into its
//     lane's input buffer, stage 2 allocates a lane + output (VC
//     allocation and switch allocation), traverses the crossbar and
//     writes the output-lane queue; an optional `extra_pipeline`
//     parameter reproduces the 7-stage switch of the *first* xpipes
//     library for the latency comparison (bench F8);
//   * output queuing — per-(output, lane) FIFOs ("buffering for
//     performance"); a blocked lane parks only its own queue;
//   * ACK/nACK or credit flow & error control on every port, per lane,
//     over pipelined links (flow.hpp seam);
//   * fixed-priority or round-robin arbitration over (input, lane)
//     requests, one arbiter per output, n_out x n_in crossbar. Wormhole
//     locks are per-(output, lane), so packets on different lanes
//     interleave on one physical link — the head-of-line-blocking relief
//     virtual channels buy. In-progress wormholes have priority over new
//     head flits (lanes served round-robin); with vcs == 1 this collapses
//     to the seed's single-lock, locked-input-first switch exactly.
//
// Lane selection on forwarding (VC allocation) is a local combinational
// rule configured per instance:
//   * VcMap::kInherit — the outgoing lane equals the incoming lane; the
//     initiator NI's round-robin choice rides end to end (parallel-lane
//     networks: XY meshes, up*/down*).
//   * VcMap::kDateline — the lane resets to 0 when the output link's
//     vc_class differs from the input's (or the flit was just injected)
//     and bumps by one on dateline outputs — the switch-local mirror of
//     topology::dateline_route_vcs, which the deadlock checker proves
//     cycle-free for minimal routes on rings, tori and spidergons.
//
// Port counts are independent (the paper's mesh uses 4x4 and 6x4
// switches), set per instance by the xpipesCompiler.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/ring.hpp"
#include "src/link/flow.hpp"
#include "src/link/link.hpp"
#include "src/sim/kernel.hpp"
#include "src/switchlib/arbiter.hpp"

namespace xpl::switchlib {

/// How the switch assigns the outgoing lane of a forwarded flit.
enum class VcMap : std::uint8_t { kInherit, kDateline };

/// Per-instance switch parameters (the xpipesCompiler's knobs).
struct SwitchConfig {
  std::size_t num_inputs = 4;
  std::size_t num_outputs = 4;
  std::size_t flit_width = 32;        ///< payload bits per flit
  std::size_t port_bits = 3;          ///< route selector width
  std::size_t route_bits = 24;        ///< route field width in head flits
  std::size_t input_fifo_depth = 2;   ///< stage-1 buffer per (input, lane)
  std::size_t output_fifo_depth = 4;  ///< output queue per (output, lane)
  std::size_t extra_pipeline = 0;     ///< 0 => the paper's 2-stage switch
  ArbiterKind arbiter = ArbiterKind::kRoundRobin;
  /// Link-level flow control on every port (link::flow.hpp seam).
  link::FlowControl flow = link::FlowControl::kAckNack;
  link::ProtocolConfig protocol{};    ///< uniform link protocol parameters
  /// Optional per-port protocol overrides (per-instance buffer sizing:
  /// the go-back-N window of each port matches *its* link's round trip
  /// instead of the network-wide worst case). Empty = use `protocol`.
  std::vector<link::ProtocolConfig> input_protocols;
  std::vector<link::ProtocolConfig> output_protocols;

  /// Virtual channels per port. Every per-port protocol must carry the
  /// same lane count.
  std::size_t vcs = 1;
  /// Lane assignment rule (see file comment). Only kDateline consults the
  /// per-port annotations below.
  VcMap vc_map = VcMap::kInherit;
  /// vc_class of the link behind each input/output port; kNiClass for NI
  /// attachment ports. Empty = all zero (single-class topologies).
  static constexpr std::uint8_t kNiClass = 0xFF;
  std::vector<std::uint8_t> input_vc_class;
  std::vector<std::uint8_t> output_vc_class;
  /// Dateline mark of the link behind each output port. Empty = none.
  std::vector<bool> output_dateline;

  const link::ProtocolConfig& input_protocol(std::size_t port) const {
    return input_protocols.empty() ? protocol : input_protocols.at(port);
  }
  const link::ProtocolConfig& output_protocol(std::size_t port) const {
    return output_protocols.empty() ? protocol : output_protocols.at(port);
  }

  /// Total pipeline stages as the paper counts them.
  std::size_t pipeline_stages() const { return 2 + extra_pipeline; }

  void validate() const;
};

/// One switch instance. Input port i receives on `input_wires[i]`; output
/// port o transmits on `output_wires[o]`.
class Switch : public sim::Module {
 public:
  Switch(std::string name, const SwitchConfig& config,
         std::vector<link::LinkWires> input_wires,
         std::vector<link::LinkWires> output_wires);

  void tick(sim::Kernel& kernel) override;

  /// Quiescence predicate (gated scheduler): every buffer, delay line and
  /// endpoint is inert. Held wormhole locks are static state and do NOT
  /// keep the switch awake — the next body flit wakes it through its
  /// input wire. See DESIGN.md §9.
  bool is_idle() const override;

  /// Time-leap next event: kNever when the switch is busy only by the
  /// credit-counter clause of is_idle() (a starved sender's per-cycle
  /// stall count is restored in closed form on wake — DESIGN.md §12),
  /// next cycle otherwise.
  std::uint64_t next_event(std::uint64_t now) const override;

  const SwitchConfig& config() const { return config_; }

  /// Flits forwarded input->output since construction.
  std::uint64_t flits_switched() const { return flits_switched_; }
  /// Cycles in which at least one flit traversed the crossbar.
  std::uint64_t active_cycles() const { return active_cycles_; }
  /// Per-output count of granted head flits (packets routed).
  const std::vector<std::uint64_t>& packets_per_output() const {
    return packets_out_;
  }
  /// Retransmissions requested of this switch's senders (error/flow);
  /// always 0 in credit mode.
  std::uint64_t retransmissions() const;
  /// Credit-starvation cycles summed over this switch's senders (zero
  /// credits, window parked downstream); always 0 in ACK/nACK mode.
  std::uint64_t credit_stalls() const;

  /// True when no flit is buffered or in flight inside the switch.
  bool idle() const;

  /// One-line occupancy/lock dump for debugging wedged networks.
  std::string debug_state() const;

 private:
  static constexpr std::size_t kNoPort = static_cast<std::size_t>(-1);

  struct InLane {
    Ring<Flit> fifo;  ///< bounded by input_fifo_depth
    std::size_t locked_output = kNoPort;  ///< wormhole in progress
    std::uint8_t locked_out_vc = 0;       ///< lane held at that output
    bool expecting_body = false;          ///< protocol check state
  };

  struct InputPort {
    link::LinkReceiver rx;
    std::vector<InLane> lanes;  ///< one per virtual channel
  };

  struct OutLane {
    Ring<Flit> fifo;  ///< bounded by output_fifo_depth
    /// Crossbar-to-queue delay line modelling extra pipeline stages; each
    /// entry records the cycle it entered and exits extra_pipeline later.
    /// Shares the output_fifo_depth bound (fifo + pipe <= depth).
    Ring<std::pair<Flit, std::uint64_t>> pipe;
    std::size_t locked_input = kNoPort;  ///< wormhole allocator state
    std::uint8_t locked_in_vc = 0;       ///< input lane holding the lock
  };

  struct OutputPort {
    link::LinkSender tx;
    std::vector<OutLane> lanes;  ///< one per virtual channel
    Arbiter arbiter;             ///< over (input, lane) requests
    std::size_t next_tx_lane = 0;      ///< sender-drain rotation
    std::size_t next_locked_lane = 0;  ///< locked-wormhole rotation

    OutputPort(ArbiterKind kind, std::size_t requests)
        : arbiter(kind, requests) {}
  };

  /// Output requested by the flit at the head of input lane (i, vc), if
  /// any (only meaningful for unlocked lanes, whose front is a head flit).
  std::optional<std::size_t> requested_output(const InLane& lane) const;

  /// Lane a flit on input lane (in_port, in_vc) takes at output
  /// `out_port` — the VC-allocation rule (see file comment).
  std::uint8_t out_vc(std::size_t in_port, std::uint8_t in_vc,
                      std::size_t out_port) const;

  /// is_idle() with the senders' zero-credit counter clause relaxed to
  /// gate_idle_leap — the sleep bound the time-leap scheduler uses.
  bool leap_idle() const;

  SwitchConfig config_;
  std::vector<InputPort> inputs_;
  std::vector<OutputPort> outputs_;

  /// Per-cycle memo of each input lane's requested output (kNoPort =
  /// none), invalidated when the lane's head flit changes mid-cycle, plus
  /// the arbiter request scratch — both hoisted out of tick() so
  /// arbitration does no per-cycle allocation and reads each head flit's
  /// route once. Indexed input * vcs + lane.
  std::vector<std::size_t> req_cache_;
  std::vector<bool> req_cache_valid_;
  std::vector<bool> req_scratch_;

  std::uint64_t flits_switched_ = 0;
  std::uint64_t active_cycles_ = 0;
  std::vector<std::uint64_t> packets_out_;

  /// Stall catch-up bookkeeping (time-leap): the first cycle this module
  /// has not yet ticked, and the kernel whose clock measures the gap. A
  /// module that ticks every cycle (kFull/kGated) keeps next_tick_ ==
  /// cycle() so both corrections below are identically zero.
  std::uint64_t next_tick_ = 0;
  const sim::Kernel* kernel_ = nullptr;
};

}  // namespace xpl::switchlib
