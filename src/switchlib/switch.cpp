#include "src/switchlib/switch.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/error.hpp"
#include "src/packet/header.hpp"

namespace xpl::switchlib {

void SwitchConfig::validate() const {
  require(num_inputs >= 1 && num_outputs >= 1,
          "SwitchConfig: need at least one input and one output");
  require(num_outputs <= (std::size_t{1} << port_bits),
          "SwitchConfig: port_bits too small for num_outputs");
  require(route_bits <= flit_width,
          "SwitchConfig: route field must fit in one flit");
  require(port_bits <= route_bits, "SwitchConfig: route field too small");
  // An undersized or misaligned route field would silently shift
  // non-route header bits into the hop selectors as the route is
  // consumed; insist on whole hop slots here and let the network
  // assembly check the slot count against the topology's routes.
  require(route_bits % port_bits == 0,
          "SwitchConfig: route_bits must hold a whole number of "
          "port_bits-wide hop selectors");
  require(input_fifo_depth >= 1, "SwitchConfig: input fifo depth >= 1");
  require(output_fifo_depth >= 1, "SwitchConfig: output fifo depth >= 1");
  require(vcs >= 1 && vcs <= link::kMaxVcs,
          "SwitchConfig: vcs must be in [1, " +
              std::to_string(link::kMaxVcs) + "]");
  protocol.validate();
  require(protocol.vcs == vcs, "SwitchConfig: protocol lane count differs "
                               "from the switch's vcs");
  require(input_protocols.empty() || input_protocols.size() == num_inputs,
          "SwitchConfig: input_protocols size mismatch");
  require(output_protocols.empty() ||
              output_protocols.size() == num_outputs,
          "SwitchConfig: output_protocols size mismatch");
  for (const auto& p : input_protocols) {
    p.validate();
    require(p.vcs == vcs, "SwitchConfig: input protocol lane count differs "
                          "from the switch's vcs");
  }
  for (const auto& p : output_protocols) {
    p.validate();
    require(p.vcs == vcs, "SwitchConfig: output protocol lane count "
                          "differs from the switch's vcs");
  }
  require(input_vc_class.empty() || input_vc_class.size() == num_inputs,
          "SwitchConfig: input_vc_class size mismatch");
  require(output_vc_class.empty() || output_vc_class.size() == num_outputs,
          "SwitchConfig: output_vc_class size mismatch");
  require(output_dateline.empty() || output_dateline.size() == num_outputs,
          "SwitchConfig: output_dateline size mismatch");
}

Switch::Switch(std::string name, const SwitchConfig& config,
               std::vector<link::LinkWires> input_wires,
               std::vector<link::LinkWires> output_wires)
    : sim::Module(std::move(name)), config_(config) {
  config_.validate();
  require(input_wires.size() == config.num_inputs,
          "Switch: input wire count mismatch");
  require(output_wires.size() == config.num_outputs,
          "Switch: output wire count mismatch");
  inputs_.reserve(config.num_inputs);
  for (std::size_t i = 0; i < config.num_inputs; ++i) {
    InputPort port;
    port.rx = link::LinkReceiver(config_.flow, input_wires[i],
                                 config_.input_protocol(i));
    port.rx.watch(*this);  // arriving flits re-arm a gated switch
    port.lanes.resize(config_.vcs);
    for (InLane& lane : port.lanes) {
      lane.fifo.reserve(config_.input_fifo_depth);
    }
    inputs_.push_back(std::move(port));
  }
  outputs_.reserve(config.num_outputs);
  for (std::size_t o = 0; o < config.num_outputs; ++o) {
    OutputPort port(config.arbiter, config.num_inputs * config_.vcs);
    port.tx = link::LinkSender(config_.flow, output_wires[o],
                               config_.output_protocol(o));
    port.tx.watch(*this);  // ACK/credit returns re-arm a gated switch
    port.lanes.resize(config_.vcs);
    for (OutLane& lane : port.lanes) {
      lane.fifo.reserve(config_.output_fifo_depth);
      if (config_.extra_pipeline > 0) {
        lane.pipe.reserve(config_.output_fifo_depth);
      }
    }
    outputs_.push_back(std::move(port));
  }
  packets_out_.assign(config.num_outputs, 0);
  req_cache_.assign(config.num_inputs * config_.vcs, kNoPort);
  req_cache_valid_.assign(config.num_inputs * config_.vcs, false);
  req_scratch_.assign(config.num_inputs * config_.vcs, false);
}

std::optional<std::size_t> Switch::requested_output(
    const InLane& lane) const {
  if (lane.fifo.empty()) return std::nullopt;
  if (lane.locked_output != kNoPort) return lane.locked_output;
  const Flit& flit = lane.fifo.front();
  XPL_ASSERT(flit.head);  // unlocked lane must present a head flit
  const std::size_t port = peek_route_port(flit.payload, config_.port_bits);
  require(port < config_.num_outputs,
          "Switch: head flit requests a nonexistent output port");
  return port;
}

std::uint8_t Switch::out_vc(std::size_t in_port, std::uint8_t in_vc,
                            std::size_t out_port) const {
  if (config_.vcs == 1 || config_.vc_map == VcMap::kInherit) return in_vc;
  // Dateline rule — the local mirror of topology::dateline_route_vcs.
  const std::uint8_t in_class = config_.input_vc_class.empty()
                                    ? 0
                                    : config_.input_vc_class[in_port];
  const std::uint8_t out_class = config_.output_vc_class.empty()
                                     ? 0
                                     : config_.output_vc_class[out_port];
  if (out_class == SwitchConfig::kNiClass) return in_vc;  // ejection
  std::uint8_t vc = (in_class == out_class) ? in_vc : 0;
  if (!config_.output_dateline.empty() &&
      config_.output_dateline[out_port]) {
    ++vc;
  }
  require(vc < config_.vcs,
          "Switch: dateline lane assignment needs more VCs than configured");
  return vc;
}

void Switch::tick(sim::Kernel& kernel) {
  // ---- Reverse order of the pipeline so each flit advances exactly one
  // stage per cycle (see DESIGN.md: stage 1 = input latch, stage 2 =
  // VC/switch allocation + crossbar + output-queue write, then link
  // transmit).
  const std::size_t vcs = config_.vcs;

  // Stall catch-up (time-leap): skipped cycles were frozen, so every
  // sender that was starved when this module went to sleep stayed starved
  // through the gap — credit each with one stall per skipped cycle.
  // Evaluated before begin_cycle consumes the credit beat that (usually)
  // caused this wake, i.e. against the exact state the skipped ticks
  // would have seen.
  kernel_ = &kernel;
  const std::uint64_t now = kernel.cycle();
  if (now > next_tick_) {
    for (OutputPort& out : outputs_) {
      if (out.tx.stall_pending()) out.tx.catch_up_stalls(now - next_tick_);
    }
  }
  next_tick_ = now + 1;

  // ACK/nACK / credit bookkeeping first: senders retire or rewind.
  for (OutputPort& out : outputs_) {
    out.tx.begin_cycle();
  }

  // Link transmit: drain one flit per output into its sender, serving
  // output lanes round-robin (one physical wire per output).
  for (OutputPort& out : outputs_) {
    for (std::size_t k = 0; k < vcs; ++k) {
      const std::size_t v = (out.next_tx_lane + k) % vcs;
      OutLane& lane = out.lanes[v];
      if (lane.fifo.empty() || !out.tx.can_accept(v)) continue;
      out.tx.accept(std::move(lane.fifo.front()));
      lane.fifo.pop_front();
      out.next_tx_lane = (v + 1) % vcs;
      break;
    }
  }

  // Extra pipeline stages (old-xpipes emulation): release delay-line
  // entries that have spent extra_pipeline cycles in flight.
  if (config_.extra_pipeline > 0) {
    for (OutputPort& out : outputs_) {
      for (OutLane& lane : out.lanes) {
        if (!lane.pipe.empty() &&
            kernel.cycle() >=
                lane.pipe.front().second + config_.extra_pipeline) {
          lane.fifo.push_back(std::move(lane.pipe.front().first));
          lane.pipe.pop_front();
        }
      }
    }
  }

  // Stage 2: VC allocation + switch allocation + crossbar traversal. Each
  // input lane's requested output is derived from its head flit at most
  // once per cycle (the memo invalidates when the head flit changes); the
  // arbiter request vector is a reused member, so this stage allocates
  // nothing. One flit traverses the crossbar per output per cycle.
  bool any_switched = false;
  std::fill(req_cache_valid_.begin(), req_cache_valid_.end(), false);
  const auto request_of = [this, vcs](std::size_t i, std::size_t v) {
    const std::size_t idx = i * vcs + v;
    if (!req_cache_valid_[idx]) {
      const auto req = requested_output(inputs_[i].lanes[v]);
      req_cache_[idx] = req.has_value() ? *req : kNoPort;
      req_cache_valid_[idx] = true;
    }
    return req_cache_[idx];
  };
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    OutputPort& out = outputs_[o];

    std::size_t win_in = kNoPort;  // winning input port
    std::uint8_t win_iv = 0;       // its lane
    std::uint8_t win_ov = 0;       // output lane taken

    // In-progress wormholes first (lanes rotate for fairness; at vcs == 1
    // this is the seed's locked-input bypass, arbiter untouched).
    for (std::size_t k = 0; k < vcs; ++k) {
      const std::size_t w = (out.next_locked_lane + k) % vcs;
      OutLane& ol = out.lanes[w];
      if (ol.locked_input == kNoPort) continue;
      // Space accounting covers both the queue and the in-flight delay
      // line.
      if (ol.fifo.size() + ol.pipe.size() >= config_.output_fifo_depth) {
        continue;
      }
      const InLane& il = inputs_[ol.locked_input].lanes[ol.locked_in_vc];
      if (il.fifo.empty()) continue;
      win_in = ol.locked_input;
      win_iv = ol.locked_in_vc;
      win_ov = static_cast<std::uint8_t>(w);
      out.next_locked_lane = (w + 1) % vcs;
      break;
    }

    if (win_in == kNoPort) {
      // New wormholes: arbitrate over unlocked input lanes whose head
      // flit requests this output and whose allocated output lane is
      // free with space.
      bool any = false;
      for (std::size_t i = 0; i < inputs_.size(); ++i) {
        for (std::size_t v = 0; v < vcs; ++v) {
          bool wants = false;
          if (inputs_[i].lanes[v].locked_output == kNoPort &&
              request_of(i, v) == o) {
            const std::uint8_t w =
                out_vc(i, static_cast<std::uint8_t>(v), o);
            const OutLane& ol = out.lanes[w];
            wants = ol.locked_input == kNoPort &&
                    ol.fifo.size() + ol.pipe.size() <
                        config_.output_fifo_depth;
          }
          req_scratch_[i * vcs + v] = wants;
          any = any || wants;
        }
      }
      if (any) {
        const auto grant = out.arbiter.grant(req_scratch_);
        XPL_ASSERT(grant.has_value());
        win_in = *grant / vcs;
        win_iv = static_cast<std::uint8_t>(*grant % vcs);
        win_ov = out_vc(win_in, win_iv, o);
        OutLane& ol = out.lanes[win_ov];
        ol.locked_input = win_in;
        ol.locked_in_vc = win_iv;
        InLane& il = inputs_[win_in].lanes[win_iv];
        il.locked_output = o;
        il.locked_out_vc = win_ov;
        ++packets_out_[o];
      }
    }

    if (win_in == kNoPort) continue;
    InLane& il = inputs_[win_in].lanes[win_iv];
    OutLane& ol = out.lanes[win_ov];
    Flit flit = std::move(il.fifo.front());
    il.fifo.pop_front();
    if (flit.head) {
      // Consume this hop's route selector.
      flit.payload = consume_route_port(flit.payload, config_.port_bits,
                                        config_.route_bits);
    }
    flit.vc = win_ov;  // the lane the flit travels on toward the next hop
    if (flit.tail) {
      // Wormhole complete: release the path.
      ol.locked_input = kNoPort;
      il.locked_output = kNoPort;
    }
    if (config_.extra_pipeline > 0) {
      ol.pipe.emplace_back(std::move(flit), kernel.cycle());
    } else {
      ol.fifo.push_back(std::move(flit));
    }
    // The input lane's head flit changed (and possibly its lock state):
    // recompute its request if a later output looks at it this cycle.
    req_cache_valid_[win_in * vcs + win_iv] = false;
    ++flits_switched_;
    any_switched = true;
  }
  if (any_switched) ++active_cycles_;

  // Stage 1: latch arriving flits into their lane's input buffer.
  for (InputPort& in : inputs_) {
    std::uint32_t can_take = 0;
    for (std::size_t v = 0; v < vcs; ++v) {
      if (in.lanes[v].fifo.size() < config_.input_fifo_depth) {
        can_take |= 1u << v;
      }
    }
    if (auto flit = in.rx.begin_cycle(can_take)) {
      XPL_ASSERT(flit->vc < vcs);
      InLane& lane = in.lanes[flit->vc];
      // Wormhole protocol check: head flits only between packets, per
      // lane (packets on different lanes interleave on the wire).
      if (lane.expecting_body) {
        require(!flit->head, "Switch: head flit arrived mid-packet");
      } else {
        require(flit->head, "Switch: body flit arrived with no wormhole");
      }
      lane.expecting_body = !flit->tail;
      lane.fifo.push_back(std::move(*flit));
    }
  }

  // Drive all wires.
  for (InputPort& in : inputs_) in.rx.end_cycle();
  for (OutputPort& out : outputs_) out.tx.end_cycle();
}

std::uint64_t Switch::retransmissions() const {
  std::uint64_t total = 0;
  for (const OutputPort& out : outputs_) total += out.tx.retransmissions();
  return total;
}

std::uint64_t Switch::credit_stalls() const {
  std::uint64_t total = 0;
  for (const OutputPort& out : outputs_) total += out.tx.credit_stalls();
  // Time-leap correction: cycles this module has slept through so far
  // while a sender sat starved would each have counted one stall under
  // per-cycle ticking; the frozen state says exactly how many. Zero under
  // kFull/kGated (next_tick_ == cycle(): a starved switch never sleeps).
  if (kernel_ != nullptr) {
    const std::uint64_t now = kernel_->cycle();
    if (now > next_tick_) {
      for (const OutputPort& out : outputs_) {
        if (out.tx.stall_pending()) total += now - next_tick_;
      }
    }
  }
  return total;
}

std::string Switch::debug_state() const {
  std::ostringstream os;
  os << name() << ":";
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    for (std::size_t v = 0; v < config_.vcs; ++v) {
      const InLane& lane = inputs_[i].lanes[v];
      if (lane.fifo.empty() && lane.locked_output == kNoPort) continue;
      os << " in" << i << "v" << v << "[" << lane.fifo.size();
      if (lane.locked_output != kNoPort) {
        os << "->o" << lane.locked_output << "v" << int(lane.locked_out_vc);
      }
      os << "]";
    }
  }
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    for (std::size_t v = 0; v < config_.vcs; ++v) {
      const OutLane& lane = outputs_[o].lanes[v];
      if (lane.fifo.empty() && lane.locked_input == kNoPort) continue;
      os << " out" << o << "v" << v << "[" << lane.fifo.size();
      if (lane.locked_input != kNoPort) {
        os << "<-i" << lane.locked_input << "v" << int(lane.locked_in_vc);
      }
      os << "]";
    }
    os << " tx" << o << "=" << outputs_[o].tx.in_flight();
  }
  return os.str();
}

bool Switch::idle() const {
  for (const InputPort& in : inputs_) {
    for (const InLane& lane : in.lanes) {
      if (!lane.fifo.empty() || lane.locked_output != kNoPort) return false;
    }
  }
  for (const OutputPort& out : outputs_) {
    if (!out.tx.idle()) return false;
    for (const OutLane& lane : out.lanes) {
      if (!lane.fifo.empty() || !lane.pipe.empty()) return false;
    }
  }
  return true;
}

bool Switch::is_idle() const {
  // Unlike idle(), a held wormhole lock or unACKed-but-transmitted flit
  // is sleepable state: only an input-wire or reverse-wire beat can move
  // it along, and both wake this module via the endpoint watches.
  for (const InputPort& in : inputs_) {
    if (!in.rx.gate_idle()) return false;
    for (const InLane& lane : in.lanes) {
      if (!lane.fifo.empty()) return false;
    }
  }
  for (const OutputPort& out : outputs_) {
    if (!out.tx.gate_idle()) return false;
    for (const OutLane& lane : out.lanes) {
      if (!lane.fifo.empty() || !lane.pipe.empty()) return false;
    }
  }
  return true;
}

bool Switch::leap_idle() const {
  for (const InputPort& in : inputs_) {
    if (!in.rx.gate_idle()) return false;
    for (const InLane& lane : in.lanes) {
      if (!lane.fifo.empty()) return false;
    }
  }
  for (const OutputPort& out : outputs_) {
    if (!out.tx.gate_idle_leap()) return false;
    for (const OutLane& lane : out.lanes) {
      if (!lane.fifo.empty() || !lane.pipe.empty()) return false;
    }
  }
  return true;
}

std::uint64_t Switch::next_event(std::uint64_t now) const {
  // Only consulted when is_idle() is false. If the switch is busy solely
  // because a starved sender must count per-cycle stalls, those frozen
  // ticks are caught up in closed form — sleep until the credit return
  // wakes it through the watched reverse wire. Anything else (buffered
  // flits, delay-line entries, arriving beats) needs the next cycle.
  return leap_idle() ? sim::kNever : now + 1;
}

}  // namespace xpl::switchlib
