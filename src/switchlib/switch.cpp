#include "src/switchlib/switch.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/packet/header.hpp"

namespace xpl::switchlib {

void SwitchConfig::validate() const {
  require(num_inputs >= 1 && num_outputs >= 1,
          "SwitchConfig: need at least one input and one output");
  require(num_outputs <= (std::size_t{1} << port_bits),
          "SwitchConfig: port_bits too small for num_outputs");
  require(route_bits <= flit_width,
          "SwitchConfig: route field must fit in one flit");
  require(port_bits <= route_bits, "SwitchConfig: route field too small");
  require(input_fifo_depth >= 1, "SwitchConfig: input fifo depth >= 1");
  require(output_fifo_depth >= 1, "SwitchConfig: output fifo depth >= 1");
  protocol.validate();
  require(input_protocols.empty() || input_protocols.size() == num_inputs,
          "SwitchConfig: input_protocols size mismatch");
  require(output_protocols.empty() ||
              output_protocols.size() == num_outputs,
          "SwitchConfig: output_protocols size mismatch");
  for (const auto& p : input_protocols) p.validate();
  for (const auto& p : output_protocols) p.validate();
}

Switch::Switch(std::string name, const SwitchConfig& config,
               std::vector<link::LinkWires> input_wires,
               std::vector<link::LinkWires> output_wires)
    : sim::Module(std::move(name)), config_(config) {
  config_.validate();
  require(input_wires.size() == config.num_inputs,
          "Switch: input wire count mismatch");
  require(output_wires.size() == config.num_outputs,
          "Switch: output wire count mismatch");
  inputs_.reserve(config.num_inputs);
  for (std::size_t i = 0; i < config.num_inputs; ++i) {
    InputPort port;
    port.rx = link::LinkReceiver(config_.flow, input_wires[i],
                                 config_.input_protocol(i));
    port.fifo.reserve(config_.input_fifo_depth);
    inputs_.push_back(std::move(port));
  }
  outputs_.reserve(config.num_outputs);
  for (std::size_t o = 0; o < config.num_outputs; ++o) {
    OutputPort port(config.arbiter, config.num_inputs);
    port.tx = link::LinkSender(config_.flow, output_wires[o],
                               config_.output_protocol(o));
    port.fifo.reserve(config_.output_fifo_depth);
    if (config_.extra_pipeline > 0) {
      port.pipe.reserve(config_.output_fifo_depth);
    }
    outputs_.push_back(std::move(port));
  }
  packets_out_.assign(config.num_outputs, 0);
  req_cache_.assign(config.num_inputs, kNoPort);
  req_cache_valid_.assign(config.num_inputs, false);
  req_scratch_.assign(config.num_inputs, false);
}

std::optional<std::size_t> Switch::requested_output(
    const InputPort& in) const {
  if (in.fifo.empty()) return std::nullopt;
  if (in.locked_output != kNoPort) return in.locked_output;
  const Flit& flit = in.fifo.front();
  XPL_ASSERT(flit.head);  // unlocked input must present a head flit
  const std::size_t port = peek_route_port(flit.payload, config_.port_bits);
  require(port < config_.num_outputs,
          "Switch: head flit requests a nonexistent output port");
  return port;
}

void Switch::tick(sim::Kernel& kernel) {
  // ---- Reverse order of the pipeline so each flit advances exactly one
  // stage per cycle (see DESIGN.md: stage 1 = input latch, stage 2 =
  // arbitration + crossbar + output-queue write, then link transmit).

  // ACK/nACK bookkeeping first: senders retire or rewind.
  for (OutputPort& out : outputs_) {
    out.tx.begin_cycle();
  }

  // Link transmit: drain output queues into the go-back-N senders.
  for (OutputPort& out : outputs_) {
    if (!out.fifo.empty() && out.tx.can_accept()) {
      out.tx.accept(std::move(out.fifo.front()));
      out.fifo.pop_front();
    }
  }

  // Extra pipeline stages (old-xpipes emulation): release delay-line
  // entries that have spent extra_pipeline cycles in flight.
  if (config_.extra_pipeline > 0) {
    for (OutputPort& out : outputs_) {
      if (!out.pipe.empty() &&
          kernel.cycle() >= out.pipe.front().second + config_.extra_pipeline) {
        out.fifo.push_back(std::move(out.pipe.front().first));
        out.pipe.pop_front();
      }
    }
  }

  // Stage 2: arbitration + crossbar traversal. Each input's requested
  // output is derived from its head flit at most once per cycle (the memo
  // invalidates when the head flit changes); the arbiter request vector is
  // a reused member, so this stage allocates nothing.
  bool any_switched = false;
  std::fill(req_cache_valid_.begin(), req_cache_valid_.end(), false);
  const auto request_of = [this](std::size_t i) {
    if (!req_cache_valid_[i]) {
      const auto req = requested_output(inputs_[i]);
      req_cache_[i] = req.has_value() ? *req : kNoPort;
      req_cache_valid_[i] = true;
    }
    return req_cache_[i];
  };
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    OutputPort& out = outputs_[o];
    // Space accounting covers both the queue and the in-flight delay line.
    const std::size_t committed = out.fifo.size() + out.pipe.size();
    if (committed >= config_.output_fifo_depth) continue;

    std::size_t winner = kNoPort;
    if (out.locked_input != kNoPort) {
      // Wormhole in progress: only the owning input may proceed.
      const InputPort& in = inputs_[out.locked_input];
      if (!in.fifo.empty()) winner = out.locked_input;
    } else {
      bool any = false;
      for (std::size_t i = 0; i < inputs_.size(); ++i) {
        // Only unlocked inputs with a head flit may open a new wormhole.
        const bool wants = inputs_[i].locked_output == kNoPort &&
                           request_of(i) == o;
        req_scratch_[i] = wants;
        any = any || wants;
      }
      if (any) {
        const auto grant = out.arbiter.grant(req_scratch_);
        XPL_ASSERT(grant.has_value());
        winner = *grant;
        out.locked_input = winner;
        inputs_[winner].locked_output = o;
        ++packets_out_[o];
      }
    }

    if (winner == kNoPort) continue;
    InputPort& in = inputs_[winner];
    Flit flit = std::move(in.fifo.front());
    in.fifo.pop_front();
    if (flit.head) {
      // Consume this hop's route selector.
      flit.payload = consume_route_port(flit.payload, config_.port_bits,
                                        config_.route_bits);
    }
    if (flit.tail) {
      // Wormhole complete: release the path.
      out.locked_input = kNoPort;
      in.locked_output = kNoPort;
    }
    if (config_.extra_pipeline > 0) {
      out.pipe.emplace_back(std::move(flit), kernel.cycle());
    } else {
      out.fifo.push_back(std::move(flit));
    }
    // The input's head flit changed (and possibly its lock state):
    // recompute its request if a later output looks at it this cycle.
    req_cache_valid_[winner] = false;
    ++flits_switched_;
    any_switched = true;
  }
  if (any_switched) ++active_cycles_;

  // Stage 1: latch arriving flits into input buffers (with ACK/nACK).
  for (InputPort& in : inputs_) {
    const bool can_take = in.fifo.size() < config_.input_fifo_depth;
    if (auto flit = in.rx.begin_cycle(can_take)) {
      // Wormhole protocol check: head flits only between packets.
      if (in.expecting_body) {
        require(!flit->head, "Switch: head flit arrived mid-packet");
      } else {
        require(flit->head, "Switch: body flit arrived with no wormhole");
      }
      in.expecting_body = !flit->tail;
      in.fifo.push_back(std::move(*flit));
    }
  }

  // Drive all wires.
  for (InputPort& in : inputs_) in.rx.end_cycle();
  for (OutputPort& out : outputs_) out.tx.end_cycle();
}

std::uint64_t Switch::retransmissions() const {
  std::uint64_t total = 0;
  for (const OutputPort& out : outputs_) total += out.tx.retransmissions();
  return total;
}

std::uint64_t Switch::credit_stalls() const {
  std::uint64_t total = 0;
  for (const OutputPort& out : outputs_) total += out.tx.credit_stalls();
  return total;
}

bool Switch::idle() const {
  for (const InputPort& in : inputs_) {
    if (!in.fifo.empty() || in.locked_output != kNoPort) return false;
  }
  for (const OutputPort& out : outputs_) {
    if (!out.fifo.empty() || !out.pipe.empty() || !out.tx.idle()) {
      return false;
    }
  }
  return true;
}

}  // namespace xpl::switchlib
