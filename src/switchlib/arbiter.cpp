#include "src/switchlib/arbiter.hpp"

#include "src/common/error.hpp"

namespace xpl::switchlib {

const char* arbiter_name(ArbiterKind kind) {
  switch (kind) {
    case ArbiterKind::kFixedPriority:
      return "fixed";
    case ArbiterKind::kRoundRobin:
      return "round-robin";
  }
  return "?";
}

std::optional<std::size_t> FixedPriorityArbiter::grant(
    const std::vector<bool>& requests) {
  XPL_ASSERT(requests.size() == num_inputs_);
  for (std::size_t i = 0; i < num_inputs_; ++i) {
    if (requests[i]) return i;
  }
  return std::nullopt;
}

std::optional<std::size_t> RoundRobinArbiter::grant(
    const std::vector<bool>& requests) {
  XPL_ASSERT(requests.size() == num_inputs_);
  for (std::size_t k = 0; k < num_inputs_; ++k) {
    const std::size_t i = (pointer_ + k) % num_inputs_;
    if (requests[i]) {
      pointer_ = (i + 1) % num_inputs_;
      return i;
    }
  }
  return std::nullopt;
}

}  // namespace xpl::switchlib
