// Output-port arbiters.
//
// Each switch output port owns one arbiter choosing among the input ports
// that request it. The paper offers two policies: fixed priority (cheapest
// logic) and round robin (fair). Arbiters are plain combinational-logic
// models, unit-testable in isolation and mirrored gate-for-gate by the
// synthesis estimator.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace xpl::switchlib {

enum class ArbiterKind : std::uint8_t { kFixedPriority, kRoundRobin };

const char* arbiter_name(ArbiterKind kind);

/// Grants the lowest-indexed requester.
class FixedPriorityArbiter {
 public:
  explicit FixedPriorityArbiter(std::size_t num_inputs)
      : num_inputs_(num_inputs) {}

  /// Returns the granted input, or nullopt if `requests` is all false.
  std::optional<std::size_t> grant(const std::vector<bool>& requests);

  std::size_t num_inputs() const { return num_inputs_; }

 private:
  std::size_t num_inputs_;
};

/// Grants the first requester at or after a rotating pointer; the pointer
/// advances past each grant, giving each input a fair share.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(std::size_t num_inputs)
      : num_inputs_(num_inputs) {}

  std::optional<std::size_t> grant(const std::vector<bool>& requests);

  /// Pointer state (the synthesis model charges log2(n) flops for it).
  std::size_t pointer() const { return pointer_; }

  std::size_t num_inputs() const { return num_inputs_; }

 private:
  std::size_t num_inputs_;
  std::size_t pointer_ = 0;
};

/// Policy-erased arbiter used by the switch.
class Arbiter {
 public:
  Arbiter(ArbiterKind kind, std::size_t num_inputs)
      : kind_(kind), fixed_(num_inputs), rr_(num_inputs) {}

  std::optional<std::size_t> grant(const std::vector<bool>& requests) {
    return kind_ == ArbiterKind::kFixedPriority ? fixed_.grant(requests)
                                                : rr_.grant(requests);
  }

  ArbiterKind kind() const { return kind_; }

 private:
  ArbiterKind kind_;
  FixedPriorityArbiter fixed_;
  RoundRobinArbiter rr_;
};

}  // namespace xpl::switchlib
