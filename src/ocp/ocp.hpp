// OCP 2.0-style transaction-level core interface.
//
// xpipes lite NIs expose OCP to the attached cores: a transaction-centric,
// core-tailorable socket with independent request and response phases,
// burst support, sideband (interrupt) signals, and thread extensions. This
// module models the subset the NI consumes, at burst-beat granularity: the
// request channel presents MCmd/MAddr/MBurstLength on the first beat of a
// burst and MData on every write beat; the response channel returns
// SResp/SData per beat. Both channels use a valid/accept handshake, which
// is OCP's MCmd/SCmdAccept and SResp/MRespAccept pairing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/bits.hpp"
#include "src/sim/kernel.hpp"

namespace xpl::ocp {

/// OCP MCmd encodings used by the library.
enum class Cmd : std::uint8_t {
  kIdle = 0,
  kWrite = 1,    ///< posted write
  kRead = 2,
  kWriteNp = 3,  ///< non-posted write (completion response expected)
};

/// OCP SResp encodings.
enum class Resp : std::uint8_t {
  kNull = 0,
  kDva = 1,   ///< data valid / accept
  kFail = 2,  ///< request failed at the target
  kErr = 3,   ///< transport error
};

/// OCP MBurstSeq: how the address advances across a burst.
enum class BurstSeq : std::uint8_t {
  kIncr = 0,    ///< addr, addr+8, addr+16, ...
  kWrap = 1,    ///< increments, wrapping within the aligned burst block
  kStream = 2,  ///< same address every beat (FIFO-style targets)
};

const char* cmd_name(Cmd cmd);
const char* resp_name(Resp resp);
const char* burst_seq_name(BurstSeq seq);

/// One beat of the OCP request channel (master -> slave).
struct ReqBeat {
  bool valid = false;
  Cmd cmd = Cmd::kIdle;
  std::uint64_t addr = 0;        ///< MAddr (first beat of a burst)
  std::uint64_t data = 0;        ///< MData (write beats)
  std::uint32_t burst_len = 1;   ///< MBurstLength in beats
  BurstSeq burst_seq = BurstSeq::kIncr;  ///< MBurstSeq
  std::uint32_t beat_index = 0;  ///< position within the burst
  std::uint32_t thread_id = 0;   ///< MThreadID
  std::uint8_t byte_en = 0xFF;   ///< MByteEn
  bool sideband_flag = false;    ///< MFlag sideband bit carried end-to-end
};

/// One beat of the OCP response channel (slave -> master).
struct RespBeat {
  bool valid = false;
  Resp resp = Resp::kNull;
  std::uint64_t data = 0;       ///< SData
  std::uint32_t thread_id = 0;  ///< SThreadID
  bool last = false;            ///< final beat of the transaction
  bool interrupt = false;       ///< SInterrupt sideband
};

// Signal-digest support (sim::Kernel::digest): invalid beats hash as a
// bare 0 so stale fields can never alias real state.
inline void hash_append(sim::Digest& d, const ReqBeat& b) {
  d.mix(b.valid ? 1u : 0u);
  if (!b.valid) return;
  d.mix(static_cast<std::uint64_t>(b.cmd));
  d.mix(b.addr);
  d.mix(b.data);
  d.mix(b.burst_len);
  d.mix(static_cast<std::uint64_t>(b.burst_seq));
  d.mix(b.beat_index);
  d.mix(b.thread_id);
  d.mix(b.byte_en);
  d.mix(b.sideband_flag ? 1u : 0u);
}

inline void hash_append(sim::Digest& d, const RespBeat& b) {
  d.mix(b.valid ? 1u : 0u);
  if (!b.valid) return;
  d.mix(static_cast<std::uint64_t>(b.resp));
  d.mix(b.data);
  d.mix(b.thread_id);
  d.mix((b.last ? 1u : 0u) | (b.interrupt ? 2u : 0u));
}

/// A whole transaction at the level the cores and testbenches think in.
struct Transaction {
  Cmd cmd = Cmd::kRead;
  std::uint64_t addr = 0;
  std::vector<std::uint64_t> data;  ///< write payload (cmd != kRead)
  std::uint32_t burst_len = 1;      ///< beats (== data.size() for writes)
  BurstSeq burst_seq = BurstSeq::kIncr;  ///< MBurstSeq
  std::uint32_t thread_id = 0;
  bool sideband_flag = false;

  /// True if the initiator expects a response packet.
  bool expects_response() const { return cmd != Cmd::kWrite; }

  std::string to_string() const;
};

/// The result delivered back to the initiating core.
struct TransactionResult {
  Resp resp = Resp::kNull;
  std::vector<std::uint64_t> data;  ///< read data (for kRead)
  std::uint32_t thread_id = 0;
  std::uint64_t issue_cycle = 0;     ///< first request beat accepted
  std::uint64_t complete_cycle = 0;  ///< last response beat delivered
};

/// Signal bundle of one OCP socket. The master drives `req` and
/// `resp_accept`; the slave drives `req_accept` and `resp`. All four are
/// registered signals (see sim::Signal), so the handshake completes when
/// valid && accept are observed in the same cycle.
template <template <typename> class SignalT>
struct SocketT {
  SignalT<ReqBeat>* req = nullptr;
  SignalT<bool>* req_accept = nullptr;
  SignalT<RespBeat>* resp = nullptr;
  SignalT<bool>* resp_accept = nullptr;
};

}  // namespace xpl::ocp
