#include "src/ocp/agents.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace xpl::ocp {

MasterCore::MasterCore(std::string name, const OcpWires& wires,
                       const Config& config)
    : sim::Module(std::move(name)),
      config_(config),
      req_(wires.req, config.req_credits),
      resp_(wires.resp, config.resp_fifo_depth) {
  req_.watch(*this);   // request credits returned by the NI/slave
  resp_.watch(*this);  // response beats
}

void MasterCore::push_transaction(Transaction txn) {
  push_transaction_at(std::move(txn), 0);
}

void MasterCore::push_transaction_at(Transaction txn,
                                     std::uint64_t release) {
  if (txn.cmd != Cmd::kRead) {
    require(txn.data.size() == txn.burst_len,
            "MasterCore: write burst_len must match data beats");
  }
  require(txn.burst_len >= 1, "MasterCore: burst_len must be >= 1");
  if (on_push) on_push(txn, release);
  queue_.push_back({std::move(txn), release});
  // External injection: no signal write re-arms a gated master, so the
  // push itself must (wake-hazard regression: tests/wake_hazard_test.cpp).
  // A future release keeps the master awake until it arrives (is_idle
  // tests queue_.empty()); pre-release ticks change nothing.
  wake();
}

bool MasterCore::quiescent() const {
  return queue_.empty() && !active_.has_value() && awaiting_total_ == 0;
}

bool MasterCore::is_idle() const {
  // awaiting_ is sleepable: the response beat that advances it wakes us.
  return queue_.empty() && !active_.has_value() && resp_.empty() &&
         req_.gate_idle() && resp_.gate_idle();
}

std::uint64_t MasterCore::next_event(std::uint64_t now) const {
  if (active_.has_value() || !resp_.empty() || !req_.gate_idle() ||
      !resp_.gate_idle()) {
    return now + 1;
  }
  if (queue_.empty()) return now + 1;  // unreachable when !is_idle()
  // Pre-release ticks change nothing (the issue gate tests release
  // against the cycle), so the queued head's release is the next event.
  // A released head that did not issue is blocked on the outstanding
  // limit: only a response beat can free a slot, and that wakes us.
  const std::uint64_t release = queue_.front().release;
  return release > now ? release : sim::kNever;
}

void MasterCore::tick(sim::Kernel& kernel) {
  req_.begin_cycle();
  resp_.begin_cycle();

  // Response side: accumulate beats into the oldest pending transaction of
  // the response's thread (OCP responses are in order per thread).
  while (!resp_.empty()) {
    const RespBeat beat = resp_.front();
    resp_.pop();
    XPL_ASSERT(beat.valid);
    auto it = awaiting_.find(beat.thread_id);
    XPL_ASSERT(it != awaiting_.end() && !it->second.empty());
    Pending& pending = it->second.front();
    pending.result.resp = beat.resp;
    pending.result.thread_id = beat.thread_id;
    if (pending.txn.cmd == Cmd::kRead) {
      pending.result.data.push_back(beat.data);
    }
    if (beat.last) {
      pending.result.issue_cycle = pending.issue_cycle;
      pending.result.complete_cycle = kernel.cycle();
      completed_.push_back(std::move(pending.result));
      it->second.pop_front();
      --awaiting_total_;
      if (it->second.empty()) awaiting_.erase(it);
    }
  }

  // Request side: start the next transaction if allowed. The release
  // gate makes pre-rolled injections (lookahead epochs) issue on the
  // same cycle a per-cycle push schedule would.
  if (!active_.has_value() && !queue_.empty() &&
      queue_.front().release <= kernel.cycle()) {
    const Transaction& next = queue_.front().txn;
    const bool needs_slot = next.expects_response();
    if (!needs_slot || awaiting_total_ < config_.max_outstanding) {
      active_ = std::move(queue_.front().txn);
      queue_.pop_front();
      next_beat_ = 0;
      active_issue_cycle_ = kernel.cycle();
    }
  }

  // Stream one beat per cycle.
  if (active_.has_value() && req_.can_send()) {
    const Transaction& txn = *active_;
    ReqBeat beat;
    beat.valid = true;
    beat.cmd = txn.cmd;
    beat.addr = txn.addr;
    beat.burst_len = txn.burst_len;
    beat.burst_seq = txn.burst_seq;
    beat.beat_index = next_beat_;
    beat.thread_id = txn.thread_id;
    beat.sideband_flag = txn.sideband_flag;
    if (txn.cmd != Cmd::kRead) {
      beat.data = txn.data[next_beat_];
    }
    req_.send(beat);
    ++next_beat_;

    const std::uint32_t req_beats =
        (txn.cmd == Cmd::kRead) ? 1 : txn.burst_len;
    if (next_beat_ == req_beats) {
      ++issued_count_;
      if (txn.expects_response()) {
        Pending pending;
        pending.txn = txn;
        pending.issue_cycle = active_issue_cycle_;
        awaiting_[txn.thread_id].push_back(std::move(pending));
        ++awaiting_total_;
      } else {
        // Posted write: complete at issue.
        TransactionResult result;
        result.resp = Resp::kDva;
        result.thread_id = txn.thread_id;
        result.issue_cycle = active_issue_cycle_;
        result.complete_cycle = kernel.cycle();
        completed_.push_back(std::move(result));
      }
      active_.reset();
    }
  }

  req_.end_cycle();
  resp_.end_cycle();
}

SlaveCore::SlaveCore(std::string name, const OcpWires& wires,
                     const Config& config)
    : sim::Module(std::move(name)),
      config_(config),
      req_(wires.req, config.req_fifo_depth),
      resp_(wires.resp, config.resp_credits) {
  req_.watch(*this);   // request beats
  resp_.watch(*this);  // response credits returned by the NI/master
}

bool SlaveCore::is_idle() const {
  // jobs_ non-empty keeps the slave awake (time-driven ready_cycle);
  // collecting_/responding_ are kept awake conservatively — both are
  // short-lived and always adjacent to wire activity.
  return req_.empty() && jobs_.empty() && !responding_.has_value() &&
         !collecting_.has_value() && req_.gate_idle() && resp_.gate_idle();
}

std::uint64_t SlaveCore::next_event(std::uint64_t now) const {
  if (!req_.empty() || collecting_.has_value() || responding_.has_value() ||
      !req_.gate_idle() || !resp_.gate_idle()) {
    return now + 1;
  }
  if (jobs_.empty()) return now + 1;  // unreachable when !is_idle()
  // Ticks before the front job's ready_cycle are no-ops (the promotion
  // gate tests it against the cycle); the service window is the wait.
  return std::max<std::uint64_t>(jobs_.front().ready_cycle, now + 1);
}

std::uint64_t SlaveCore::peek(std::uint64_t addr) const {
  auto it = memory_.find(addr / 8);
  return it == memory_.end() ? 0 : it->second;
}

void SlaveCore::poke(std::uint64_t addr, std::uint64_t value) {
  memory_[addr / 8] = value;
}

std::uint64_t SlaveCore::beat_address(const Job& job, std::uint32_t beat) {
  switch (job.burst_seq) {
    case BurstSeq::kIncr:
      return job.addr + 8ull * beat;
    case BurstSeq::kWrap: {
      // OCP WRAP: advance within the naturally aligned burst-sized block.
      const std::uint64_t block = 8ull * job.burst_len;
      const std::uint64_t base = job.addr & ~(block - 1);
      return base + (job.addr - base + 8ull * beat) % block;
    }
    case BurstSeq::kStream:
      return job.addr;
  }
  return job.addr;
}

void SlaveCore::tick(sim::Kernel& kernel) {
  req_.begin_cycle();
  resp_.begin_cycle();

  // Collect request beats into whole jobs.
  while (!req_.empty()) {
    const ReqBeat beat = req_.front();
    req_.pop();
    XPL_ASSERT(beat.valid);
    if (!collecting_.has_value()) {
      XPL_ASSERT(beat.beat_index == 0);
      Job job;
      job.cmd = beat.cmd;
      job.addr = beat.addr;
      job.burst_len = beat.burst_len;
      job.burst_seq = beat.burst_seq;
      job.thread_id = beat.thread_id;
      job.sideband = beat.sideband_flag;
      collecting_ = std::move(job);
    }
    Job& job = *collecting_;
    if (beat.cmd != Cmd::kRead) {
      job.data.push_back(beat.data);
    }
    const std::uint32_t req_beats =
        (job.cmd == Cmd::kRead) ? 1 : job.burst_len;
    const std::uint32_t have =
        (job.cmd == Cmd::kRead) ? 1 : static_cast<std::uint32_t>(job.data.size());
    if (have == req_beats) {
      job.ready_cycle = kernel.cycle() + config_.latency;
      // Execute writes immediately (memory is the architectural state).
      if (job.cmd != Cmd::kRead) {
        for (std::uint32_t i = 0; i < job.burst_len; ++i) {
          const std::uint64_t addr = beat_address(job, i);
          if (addr < config_.size_bytes) {
            memory_[addr / 8] = job.data[i];
          }
        }
      }
      if (job.cmd != Cmd::kWrite) {
        jobs_.push_back(std::move(job));  // needs a response
      } else {
        ++served_;
      }
      collecting_.reset();
    }
  }

  // Promote the next serviced job to the response streamer.
  if (!responding_.has_value() && !jobs_.empty() &&
      jobs_.front().ready_cycle <= kernel.cycle()) {
    responding_ = std::move(jobs_.front());
    jobs_.pop_front();
    resp_beat_ = 0;
  }

  // Stream response beats.
  if (responding_.has_value() && resp_.can_send()) {
    Job& job = *responding_;
    const bool in_range =
        job.burst_seq == BurstSeq::kIncr
            ? job.addr + 8ull * job.burst_len <= config_.size_bytes
            : job.addr < config_.size_bytes;
    RespBeat beat;
    beat.valid = true;
    beat.resp = in_range ? Resp::kDva : Resp::kErr;
    beat.thread_id = job.thread_id;
    beat.interrupt = job.sideband;  // loop sideband back for e2e checking
    const std::uint32_t resp_beats =
        (job.cmd == Cmd::kRead) ? job.burst_len : 1;
    if (job.cmd == Cmd::kRead && in_range) {
      auto it = memory_.find(beat_address(job, resp_beat_) / 8);
      beat.data = it == memory_.end() ? 0 : it->second;
    }
    beat.last = (resp_beat_ + 1 == resp_beats);
    resp_.send(beat);
    ++resp_beat_;
    if (beat.last) {
      responding_.reset();
      ++served_;
    }
  }

  req_.end_cycle();
  resp_.end_cycle();
}

}  // namespace xpl::ocp
