// OCP core models: a traffic-driven master and a memory-backed slave.
//
// These stand in for the CPUs/DSPs/memories of the paper's SoC case
// studies (DESIGN.md §2): they exercise exactly the OCP socket the NI
// implements — bursts, threads, posted and non-posted writes, sideband
// flags — without any proprietary core IP.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/ocp/ocp.hpp"
#include "src/sim/kernel.hpp"
#include "src/sim/stream.hpp"

namespace xpl::ocp {

/// Wire bundle of one OCP socket (request stream + response stream).
struct OcpWires {
  sim::StreamWires<ReqBeat> req;    ///< master -> slave
  sim::StreamWires<RespBeat> resp;  ///< slave -> master

  static OcpWires make(sim::Kernel& kernel) {
    return {sim::StreamWires<ReqBeat>::make(kernel),
            sim::StreamWires<RespBeat>::make(kernel)};
  }
};

/// Queue-driven OCP master core. Testbenches push Transactions; the core
/// issues them beat by beat, enforces an outstanding-transaction limit,
/// matches responses per thread, and records TransactionResults.
class MasterCore : public sim::Module {
 public:
  struct Config {
    std::size_t max_outstanding = 8;  ///< in-flight txns expecting response
    std::size_t resp_fifo_depth = 8;  ///< response receive buffer (beats)
    std::size_t req_credits = 4;      ///< NI-side request FIFO depth
  };

  MasterCore(std::string name, const OcpWires& wires, const Config& config);

  /// Enqueues a transaction for immediate issue (testbench API, call
  /// between steps). Equivalent to push_transaction_at(txn, 0).
  void push_transaction(Transaction txn);

  /// Enqueues a transaction that becomes eligible for issue at cycle
  /// `release` (head-of-queue order is preserved; issue still waits for
  /// the outstanding limit and socket backpressure). Traffic drivers
  /// use this to pre-roll a whole lookahead epoch's injections before
  /// the partitioned kernel runs it: dequeue timing — and therefore
  /// every export — matches the per-cycle unpartitioned schedule.
  void push_transaction_at(Transaction txn, std::uint64_t release);

  /// Passive tap invoked on every accepted push, after validation and
  /// before queueing, with the release cycle (the cycle the transaction
  /// becomes issuable — what a replayable trace must record; 0 for
  /// plain push_transaction). workload::TraceRecorder installs these;
  /// null (the default) is free.
  std::function<void(const Transaction&, std::uint64_t release)> on_push;

  /// True when nothing is queued, in flight, or awaiting response.
  bool quiescent() const;

  /// Quiescence predicate (gated scheduler): nothing to issue and both
  /// socket endpoints inert. Transactions awaiting responses are
  /// sleepable — the response beat wakes this module. push_transaction
  /// wakes the module itself (external injection bypasses the wires).
  bool is_idle() const override;

  /// Time-leap next event: a master busy only because its head-of-queue
  /// transaction has a future release cycle sleeps until that release;
  /// one blocked on the outstanding limit sleeps until a response beat
  /// wakes it (both kinds of waiting tick as observable no-ops).
  std::uint64_t next_event(std::uint64_t now) const override;

  std::size_t issued_count() const { return issued_count_; }
  const std::vector<TransactionResult>& completed() const {
    return completed_;
  }
  /// Drops recorded results (keeps counters) to bound testbench memory.
  void clear_completed() { completed_.clear(); }

  void tick(sim::Kernel& kernel) override;

 private:
  struct Pending {
    Transaction txn;
    std::uint64_t issue_cycle = 0;
    TransactionResult result;
  };

  /// A queued transaction and the cycle it becomes issuable.
  struct Queued {
    Transaction txn;
    std::uint64_t release = 0;
  };

  Config config_;
  sim::StreamProducer<ReqBeat> req_;
  sim::StreamConsumer<RespBeat> resp_;

  std::deque<Queued> queue_;
  std::optional<Transaction> active_;  ///< transaction being beat-streamed
  std::uint32_t next_beat_ = 0;
  std::uint64_t active_issue_cycle_ = 0;

  /// Oldest-first in-flight transactions expecting a response, per thread.
  std::unordered_map<std::uint32_t, std::deque<Pending>> awaiting_;
  std::size_t awaiting_total_ = 0;

  std::size_t issued_count_ = 0;
  std::vector<TransactionResult> completed_;
};

/// Memory-backed OCP slave core with configurable service latency.
class SlaveCore : public sim::Module {
 public:
  struct Config {
    std::size_t req_fifo_depth = 8;   ///< request receive buffer (beats)
    std::size_t resp_credits = 8;     ///< master-side response FIFO depth
    std::uint32_t latency = 4;        ///< cycles from last req beat to resp
    std::uint64_t size_bytes = 1ull << 20;  ///< reads/writes past it -> ERR
  };

  SlaveCore(std::string name, const OcpWires& wires, const Config& config);

  void tick(sim::Kernel& kernel) override;

  /// Quiescence predicate (gated scheduler). Jobs awaiting their service
  /// latency MUST keep the slave awake: ready_cycle promotion is
  /// time-driven, not input-driven, so no wire write would re-arm it.
  bool is_idle() const override;

  /// Time-leap next event: a slave whose only pending work is jobs inside
  /// their service window sleeps until the front job's ready_cycle (jobs
  /// complete collection in cycle order with a constant latency, so the
  /// front ready_cycle is the minimum).
  std::uint64_t next_event(std::uint64_t now) const override;

  /// Direct backdoor access for tests (word index = byte addr / 8).
  std::uint64_t peek(std::uint64_t addr) const;
  void poke(std::uint64_t addr, std::uint64_t value);

  std::size_t requests_served() const { return served_; }

 private:
  struct Job {
    Cmd cmd = Cmd::kIdle;
    std::uint64_t addr = 0;
    std::vector<std::uint64_t> data;
    std::uint32_t burst_len = 1;
    BurstSeq burst_seq = BurstSeq::kIncr;
    std::uint32_t thread_id = 0;
    bool sideband = false;
    std::uint64_t ready_cycle = 0;
  };

  /// Address of burst beat `beat` under the job's MBurstSeq discipline.
  static std::uint64_t beat_address(const Job& job, std::uint32_t beat);

  Config config_;
  sim::StreamConsumer<ReqBeat> req_;
  sim::StreamProducer<RespBeat> resp_;

  std::optional<Job> collecting_;  ///< burst being received
  std::deque<Job> jobs_;           ///< complete requests awaiting service
  std::optional<Job> responding_;  ///< response being beat-streamed
  std::uint32_t resp_beat_ = 0;

  std::unordered_map<std::uint64_t, std::uint64_t> memory_;
  std::size_t served_ = 0;
};

}  // namespace xpl::ocp
