#include "src/ocp/monitor.hpp"

#include <sstream>

namespace xpl::ocp {

Monitor::Monitor(std::string name, const OcpWires& wires)
    : sim::Module(std::move(name)),
      req_wire_(wires.req.data),
      resp_wire_(wires.resp.data) {
  // Second watcher slot on each data wire (the consumer holds the first):
  // a skipped passive observer must still see every beat.
  req_wire_->watch(*this);
  resp_wire_->watch(*this);
}

void Monitor::flag(std::uint64_t cycle, const std::string& what) {
  std::ostringstream os;
  os << "cycle " << cycle << ": " << what;
  violations_.push_back(os.str());
}

void Monitor::tick(sim::Kernel& kernel) {
  const std::uint64_t cycle = kernel.cycle();

  // ---- Request channel.
  const auto& req = req_wire_->read();
  if (req.valid) {
    ++req_beats_;
    const ReqBeat& beat = req.value;
    if (beat.cmd == Cmd::kIdle) {
      flag(cycle, "valid request beat with MCmd IDLE");
    }
    if (!in_burst_) {
      if (beat.beat_index != 0) {
        flag(cycle, "burst started at beat_index " +
                        std::to_string(beat.beat_index));
      }
      burst_len_ = beat.burst_len;
      burst_cmd_ = beat.cmd;
      burst_thread_ = beat.thread_id;
      expect_beat_ = 1;
      if (beat.burst_len == 0) flag(cycle, "burst_len 0");
      const std::uint32_t wire_beats =
          (beat.cmd == Cmd::kRead) ? 1 : beat.burst_len;
      if (wire_beats > 1) {
        in_burst_ = true;
      } else {
        // Transaction complete on the wire.
        ++transactions_;
        if (beat.cmd != Cmd::kWrite) {
          const std::uint32_t resp_beats =
              (beat.cmd == Cmd::kRead) ? beat.burst_len : 1;
          outstanding_[beat.thread_id].emplace_back(beat.cmd, resp_beats);
        }
      }
    } else {
      if (beat.beat_index != expect_beat_) {
        flag(cycle, "beat_index " + std::to_string(beat.beat_index) +
                        " expected " + std::to_string(expect_beat_));
      }
      if (beat.burst_len != burst_len_) {
        flag(cycle, "burst_len changed mid-burst");
      }
      if (beat.cmd != burst_cmd_) {
        flag(cycle, "MCmd changed mid-burst");
      }
      if (beat.thread_id != burst_thread_) {
        flag(cycle, "thread changed mid-burst (interleaving)");
      }
      ++expect_beat_;
      if (expect_beat_ == burst_len_) {
        in_burst_ = false;
        ++transactions_;
        if (burst_cmd_ != Cmd::kWrite) {
          const std::uint32_t resp_beats =
              (burst_cmd_ == Cmd::kRead) ? burst_len_ : 1;
          outstanding_[burst_thread_].emplace_back(burst_cmd_, resp_beats);
        }
      }
    }
  }

  // ---- Response channel.
  const auto& resp = resp_wire_->read();
  if (resp.valid) {
    ++resp_beats_;
    const RespBeat& beat = resp.value;
    auto it = outstanding_.find(beat.thread_id);
    if (it == outstanding_.end() || it->second.empty()) {
      flag(cycle, "response beat on thread " +
                      std::to_string(beat.thread_id) +
                      " with nothing outstanding");
    } else {
      auto& [cmd, expect] = it->second.front();
      auto& progress = resp_progress_[beat.thread_id];
      ++progress;
      const bool should_be_last = progress == expect;
      if (beat.last != should_be_last) {
        flag(cycle, beat.last ? "early SResp last" : "missing SResp last");
      }
      if (beat.last || should_be_last) {
        it->second.erase(it->second.begin());
        progress = 0;
      }
    }
  }
}

}  // namespace xpl::ocp
