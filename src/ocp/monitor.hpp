// OCP protocol monitor / checker.
//
// A passive observer on an OCP socket's wires: it never drives anything,
// only records traffic and flags protocol violations. Testbenches attach
// one between a core and an NI to prove both sides obey the socket
// contract — the "can be tailored to core features" claim only holds if
// the interface discipline is actually checkable.
//
// Checked rules:
//   * request beat_index counts 0..N-1 within a burst, no interleaving;
//   * burst_len stays constant across a burst's beats;
//   * read requests are single-beat on the wire;
//   * responses arrive only while transactions are outstanding on that
//     thread (posted writes expect none);
//   * response beat counts match the request (reads: burst_len, others 1).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/ocp/agents.hpp"
#include "src/sim/kernel.hpp"

namespace xpl::ocp {

class Monitor : public sim::Module {
 public:
  /// Observes the given socket wires (shared with master and slave).
  Monitor(std::string name, const OcpWires& wires);

  void tick(sim::Kernel& kernel) override;

  /// Always idle under the gated scheduler: the monitor's state advances
  /// only on valid beats, and it registers as a watcher on both data
  /// wires, so any beat (or its drive-idle reset) wakes it for exactly
  /// the cycles where it would observe something.
  // xlint: idle-ok(pure observer; watcher wakes on both wires cover every observable cycle, pinned by wake_hazard_test)
  bool is_idle() const override { return true; }  // xlint: next-event-ok(reads cycle() only to timestamp violations; never self-scheduled — the wire watchers wake it)

  const std::vector<std::string>& violations() const { return violations_; }
  bool clean() const { return violations_.empty(); }

  std::uint64_t req_beats() const { return req_beats_; }
  std::uint64_t resp_beats() const { return resp_beats_; }
  std::uint64_t transactions() const { return transactions_; }

 private:
  void flag(std::uint64_t cycle, const std::string& what);

  // xlint: signal-handle-ok(passive observer on master/slave-owned wires; Signal's second watcher slot exists for this)
  sim::Signal<sim::Beat<ReqBeat>>* req_wire_;
  // xlint: signal-handle-ok(passive observer, see req_wire_)
  sim::Signal<sim::Beat<RespBeat>>* resp_wire_;

  // Request-side burst tracking.
  bool in_burst_ = false;
  std::uint32_t expect_beat_ = 0;
  std::uint32_t burst_len_ = 0;
  Cmd burst_cmd_ = Cmd::kIdle;
  std::uint32_t burst_thread_ = 0;

  // Outstanding transactions per thread: (cmd, expected resp beats).
  std::map<std::uint32_t, std::vector<std::pair<Cmd, std::uint32_t>>>
      outstanding_;
  std::map<std::uint32_t, std::uint32_t> resp_progress_;

  std::vector<std::string> violations_;
  std::uint64_t req_beats_ = 0;
  std::uint64_t resp_beats_ = 0;
  std::uint64_t transactions_ = 0;
};

}  // namespace xpl::ocp
