#include "src/ocp/ocp.hpp"

#include <sstream>

namespace xpl::ocp {

const char* cmd_name(Cmd cmd) {
  switch (cmd) {
    case Cmd::kIdle:
      return "IDLE";
    case Cmd::kWrite:
      return "WRITE";
    case Cmd::kRead:
      return "READ";
    case Cmd::kWriteNp:
      return "WRITE_NP";
  }
  return "?";
}

const char* resp_name(Resp resp) {
  switch (resp) {
    case Resp::kNull:
      return "NULL";
    case Resp::kDva:
      return "DVA";
    case Resp::kFail:
      return "FAIL";
    case Resp::kErr:
      return "ERR";
  }
  return "?";
}

const char* burst_seq_name(BurstSeq seq) {
  switch (seq) {
    case BurstSeq::kIncr:
      return "INCR";
    case BurstSeq::kWrap:
      return "WRAP";
    case BurstSeq::kStream:
      return "STREAM";
  }
  return "?";
}

std::string Transaction::to_string() const {
  std::ostringstream os;
  os << cmd_name(cmd) << " addr=0x" << std::hex << addr << std::dec
     << " burst=" << burst_len << " thr=" << thread_id;
  return os.str();
}

}  // namespace xpl::ocp
