#include "src/appgraph/core_graph.hpp"

#include "src/common/error.hpp"

namespace xpl::appgraph {

std::uint32_t CoreGraph::add_core(std::string name) {
  const auto id = static_cast<std::uint32_t>(cores_.size());
  cores_.push_back(std::move(name));
  return id;
}

void CoreGraph::add_flow(std::uint32_t src, std::uint32_t dst,
                         double bandwidth) {
  require(src < cores_.size() && dst < cores_.size(),
          "CoreGraph::add_flow: core id out of range");
  require(src != dst, "CoreGraph::add_flow: self-flow");
  require(bandwidth > 0, "CoreGraph::add_flow: bandwidth must be positive");
  flows_.push_back(Flow{src, dst, bandwidth});
}

const std::string& CoreGraph::core_name(std::uint32_t id) const {
  require(id < cores_.size(), "CoreGraph: core id out of range");
  return cores_[id];
}

bool CoreGraph::sends(std::uint32_t id) const {
  for (const Flow& f : flows_) {
    if (f.src == id) return true;
  }
  return false;
}

bool CoreGraph::receives(std::uint32_t id) const {
  for (const Flow& f : flows_) {
    if (f.dst == id) return true;
  }
  return false;
}

double CoreGraph::total_bandwidth() const {
  double total = 0;
  for (const Flow& f : flows_) total += f.bandwidth;
  return total;
}

CoreGraph mpeg4_decoder() {
  // 12-core MPEG-4 decoder, bandwidths in MB/s (Bertozzi & De Micheli's
  // NoC mapping benchmark set).
  CoreGraph g("mpeg4");
  const auto vu = g.add_core("vu");        // 0 video unit
  const auto au = g.add_core("au");        // 1 audio unit
  const auto med_cpu = g.add_core("med");  // 2 media CPU
  const auto sdram = g.add_core("sdram");  // 3
  const auto sram1 = g.add_core("sram1");  // 4
  const auto sram2 = g.add_core("sram2");  // 5
  const auto up_samp = g.add_core("ups");  // 6 up-sampler
  const auto bab = g.add_core("bab");      // 7 BAB calculator
  const auto risc = g.add_core("risc");    // 8
  const auto idct = g.add_core("idct");    // 9
  const auto adsp = g.add_core("adsp");    // 10 audio DSP
  const auto rast = g.add_core("rast");    // 11 rasterizer

  g.add_flow(vu, sdram, 190);
  g.add_flow(sdram, vu, 190);
  g.add_flow(au, sdram, 60);
  g.add_flow(sdram, au, 0.5);
  g.add_flow(med_cpu, sdram, 600);
  g.add_flow(sdram, med_cpu, 40);
  g.add_flow(med_cpu, sram1, 40);
  g.add_flow(sram1, med_cpu, 40);
  g.add_flow(up_samp, sdram, 910);
  g.add_flow(sdram, up_samp, 250);
  g.add_flow(bab, sram2, 32);
  g.add_flow(sram2, bab, 32);
  g.add_flow(risc, sdram, 500);
  g.add_flow(sdram, risc, 0.5);
  g.add_flow(risc, sram2, 250);
  g.add_flow(idct, sdram, 500);
  g.add_flow(adsp, sdram, 33);
  g.add_flow(sdram, adsp, 33);
  g.add_flow(rast, sdram, 640);
  g.add_flow(sdram, rast, 250);
  return g;
}

CoreGraph vopd() {
  // 12-core Video Object Plane Decoder pipeline.
  CoreGraph g("vopd");
  const auto vld = g.add_core("vld");          // 0 variable length dec
  const auto run_le = g.add_core("runle");     // 1 run-length dec
  const auto inv_scan = g.add_core("invscan"); // 2 inverse scan
  const auto acdc = g.add_core("acdc");        // 3 AC/DC prediction
  const auto iquant = g.add_core("iquant");    // 4 inverse quant
  const auto idct = g.add_core("idct");        // 5
  const auto up_samp = g.add_core("ups");      // 6 up-sampler
  const auto vop_rec = g.add_core("voprec");   // 7 VOP reconstruction
  const auto padding = g.add_core("pad");      // 8
  const auto vop_mem = g.add_core("vopmem");   // 9
  const auto stripe_mem = g.add_core("smem");  // 10
  const auto arm = g.add_core("arm");          // 11

  g.add_flow(vld, run_le, 70);
  g.add_flow(run_le, inv_scan, 362);
  g.add_flow(inv_scan, acdc, 362);
  g.add_flow(acdc, iquant, 357);
  g.add_flow(acdc, stripe_mem, 49);
  g.add_flow(stripe_mem, acdc, 27);
  g.add_flow(iquant, idct, 353);
  g.add_flow(idct, up_samp, 300);
  g.add_flow(up_samp, vop_rec, 313);
  g.add_flow(vop_rec, padding, 313);
  g.add_flow(padding, vop_mem, 313);
  g.add_flow(vop_mem, padding, 94);
  g.add_flow(arm, idct, 16);
  g.add_flow(idct, arm, 16);
  g.add_flow(arm, vop_mem, 16);
  g.add_flow(vop_mem, arm, 500);
  return g;
}

CoreGraph mwd() {
  // 12-core Multi-Window Display.
  CoreGraph g("mwd");
  const auto in_ = g.add_core("in");      // 0
  const auto nr = g.add_core("nr");       // 1 noise reduction
  const auto mem1 = g.add_core("mem1");   // 2
  const auto mem2 = g.add_core("mem2");   // 3
  const auto mem3 = g.add_core("mem3");   // 4
  const auto hs = g.add_core("hs");       // 5 horizontal scaler
  const auto vs = g.add_core("vs");       // 6 vertical scaler
  const auto jug1 = g.add_core("jug1");   // 7 juggler
  const auto jug2 = g.add_core("jug2");   // 8
  const auto se = g.add_core("se");       // 9 sharpness enhance
  const auto blend = g.add_core("blend"); // 10
  const auto out = g.add_core("out");     // 11

  g.add_flow(in_, nr, 64);
  g.add_flow(in_, hs, 128);
  g.add_flow(nr, mem1, 64);
  g.add_flow(nr, mem2, 64);
  g.add_flow(mem1, hs, 64);
  g.add_flow(hs, vs, 128);
  g.add_flow(vs, jug1, 64);
  g.add_flow(mem2, vs, 64);
  g.add_flow(jug1, mem3, 64);
  g.add_flow(mem3, jug2, 64);
  g.add_flow(jug2, se, 64);
  g.add_flow(se, blend, 64);
  g.add_flow(jug1, blend, 96);
  g.add_flow(blend, out, 96);
  return g;
}

}  // namespace xpl::appgraph
