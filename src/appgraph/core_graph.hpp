// Application core graphs.
//
// The front of the paper's design flow: an application is characterized as
// a graph of cores exchanging traffic at known bandwidths ("application
// mapping — custom, domain-specific"). SunMap consumes such graphs and
// maps them onto candidate topologies; this module supplies the graph
// representation and the three classic multimedia benchmarks used
// throughout the xpipes literature (MPEG-4 decoder, Video Object Plane
// Decoder, Multi-Window Display).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace xpl::appgraph {

/// One directed communication flow, bandwidth in MB/s.
struct Flow {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  double bandwidth = 0.0;
};

class CoreGraph {
 public:
  explicit CoreGraph(std::string name = "app") : name_(std::move(name)) {}

  std::uint32_t add_core(std::string name);
  void add_flow(std::uint32_t src, std::uint32_t dst, double bandwidth);

  const std::string& name() const { return name_; }
  std::size_t num_cores() const { return cores_.size(); }
  const std::string& core_name(std::uint32_t id) const;
  const std::vector<Flow>& flows() const { return flows_; }

  /// Does core `id` originate / receive any flow?
  bool sends(std::uint32_t id) const;
  bool receives(std::uint32_t id) const;

  /// Total injected bandwidth (sum over flows).
  double total_bandwidth() const;

 private:
  std::string name_;
  std::vector<std::string> cores_;
  std::vector<Flow> flows_;
};

/// MPEG-4 decoder core graph (12 cores), bandwidths in MB/s after
/// Bertozzi et al.'s NoC mapping studies.
CoreGraph mpeg4_decoder();

/// Video Object Plane Decoder (12 cores).
CoreGraph vopd();

/// Multi-Window Display (12 cores).
CoreGraph mwd();

}  // namespace xpl::appgraph
