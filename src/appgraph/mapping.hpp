// Core-to-switch mapping (the SunMap step).
//
// Assigns application cores to the switches of a candidate topology so
// that heavy flows travel few hops. Cost = sum over flows of
// bandwidth x hop-distance. Two algorithms: a greedy constructor (place
// cores in decreasing traffic order next to their strongest partner) and
// simulated-annealing refinement by pairwise swaps/moves.
//
// A mapped application becomes a concrete NoC: each core that sends gets
// an initiator NI and each core that receives gets a target NI on its
// assigned switch (build_mapped_topology), plus the per-pair weight
// matrix that drives weighted traffic simulation.
#pragma once

#include <cstdint>
#include <vector>

#include "src/appgraph/core_graph.hpp"
#include "src/common/rng.hpp"
#include "src/topology/topology.hpp"

namespace xpl::appgraph {

/// core id -> switch id.
struct Mapping {
  std::vector<std::uint32_t> core_to_switch;
};

/// All-pairs switch hop distances (BFS over links).
std::vector<std::vector<std::size_t>> switch_distances(
    const topology::Topology& topo);

/// Communication cost of `mapping`: sum of bandwidth x hops.
double mapping_cost(const CoreGraph& graph,
                    const std::vector<std::vector<std::size_t>>& dist,
                    const Mapping& mapping);

/// Greedy placement; `capacity` limits cores per switch (default: evenly
/// split, at least 1).
Mapping greedy_map(const CoreGraph& graph, const topology::Topology& topo,
                   std::size_t capacity_per_switch = 0);

/// Simulated-annealing refinement of `initial`.
Mapping anneal_map(const CoreGraph& graph, const topology::Topology& topo,
                   const Mapping& initial, Rng& rng,
                   std::size_t iterations = 20000,
                   std::size_t capacity_per_switch = 0);

/// Result of instantiating a mapped application.
struct MappedNoc {
  topology::Topology topo;  ///< with NIs attached
  /// Per core: its initiator NI index (position among initiators) or -1.
  std::vector<std::int64_t> initiator_index;
  /// Per core: its target NI index (position among targets) or -1.
  std::vector<std::int64_t> target_index;
  /// weights[i][t] for traffic::Pattern::kWeighted (initiator-index by
  /// target-index bandwidth).
  std::vector<std::vector<double>> weights;
};

/// Attaches NIs for every core per its send/receive roles and derives the
/// traffic weight matrix. `base` must contain only switches and links.
MappedNoc build_mapped_topology(const CoreGraph& graph,
                                const topology::Topology& base,
                                const Mapping& mapping);

}  // namespace xpl::appgraph
