// Design-space exploration driver.
//
// The paper's closing argument ("shift efforts at a higher abstraction
// layer"): because the library is synthesizable and parameterizable, the
// flow can evaluate candidate topologies quickly and accurately — e.g. a
// custom topology at 925 MHz / 0.51 mm² (+10% performance) versus one at
// 850 MHz / 0.42 mm² (-14% area). This driver reproduces that loop: map
// the application on each candidate, estimate area/power/fmax through the
// synthesis model, and measure latency/throughput with a short weighted
// traffic simulation.
#pragma once

#include <string>
#include <vector>

#include "src/appgraph/floorplan.hpp"
#include "src/appgraph/mapping.hpp"
#include "src/compiler/compiler.hpp"
#include "src/traffic/stats.hpp"

namespace xpl::appgraph {

/// One candidate topology (switch/link skeleton only, no NIs).
struct Candidate {
  std::string name;
  topology::Topology topo;
};

struct ExplorationResult {
  std::string name;
  double mapping_cost = 0.0;        ///< bandwidth-hops objective
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  double fmax_mhz = 0.0;            ///< NoC clock ceiling (slowest instance)
  double avg_latency_cycles = 0.0;  ///< read latency under app traffic
  double throughput_tpc = 0.0;      ///< completed transactions per cycle
  double wire_mm = 0.0;             ///< total link wire (floorplan-aware)
  std::size_t max_link_stages = 0;  ///< deepest pipelined link
};

struct ExploreOptions {
  double target_mhz = 800.0;        ///< synthesis target for estimates
  std::size_t anneal_iterations = 20000;
  std::size_t sim_cycles = 20000;
  double injection_rate = 0.03;
  std::uint64_t seed = 7;
  /// Worker threads for the candidate loop (0 = hardware concurrency).
  /// Every candidate is mapped/simulated from its own seed, so results
  /// are identical for any job count.
  std::size_t jobs = 0;
  noc::NetworkConfig net{};         ///< widths, buffers, routing
  /// Run the floorplanner and derive link pipeline stages from physical
  /// wire lengths before simulating (the paper flow's floorplanner box).
  bool floorplan_aware = false;
  FloorplanOptions floorplan{};
};

/// Maps `graph` onto every candidate and scores it.
std::vector<ExplorationResult> explore(const CoreGraph& graph,
                                       const std::vector<Candidate>& candidates,
                                       const ExploreOptions& options);

/// A default candidate set: meshes, ring, star, spidergon sized for
/// `num_cores` cores.
std::vector<Candidate> default_candidates(std::size_t num_cores);

/// Indices of the Pareto-efficient results under joint minimization of
/// (area_mm2, power_mw, avg_latency_cycles): a result is dominated when
/// another is no worse on all three axes and strictly better on at least
/// one. Returned in input order. This is the selection step at the end of
/// the paper's exploration loop.
std::vector<std::size_t> pareto_front(
    const std::vector<ExplorationResult>& results);

}  // namespace xpl::appgraph
