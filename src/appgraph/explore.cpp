#include "src/appgraph/explore.hpp"

#include <algorithm>

#include "src/sweep/pareto.hpp"
#include "src/sweep/runner.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/traffic.hpp"

namespace xpl::appgraph {

std::vector<ExplorationResult> explore(
    const CoreGraph& graph, const std::vector<Candidate>& candidates,
    const ExploreOptions& options) {
  std::vector<ExplorationResult> results(candidates.size());

  // Each candidate is mapped, estimated and simulated from its own Rng
  // and its own Network, so the loop runs on the sweep subsystem's
  // work-stealing pool; slot `i` makes results independent of schedule.
  const sweep::SweepRunner runner(options.jobs);
  runner.run_indexed(candidates.size(), [&](std::size_t index) {
    const Candidate& candidate = candidates[index];
    const compiler::XpipesCompiler xpipes;
    Rng rng(options.seed);
    const auto dist = switch_distances(candidate.topo);
    Mapping mapping = greedy_map(graph, candidate.topo);
    mapping = anneal_map(graph, candidate.topo, mapping, rng,
                         options.anneal_iterations);
    MappedNoc mapped = build_mapped_topology(graph, candidate.topo, mapping);

    ExplorationResult result;
    if (options.floorplan_aware) {
      // Physical pass: place switches, derive per-link pipeline stages.
      const Floorplan plan =
          make_floorplan(mapped.topo, options.floorplan, rng);
      apply_link_stages(mapped.topo, plan, options.floorplan.mm_per_cycle);
      result.wire_mm = plan.total_wire_mm(mapped.topo);
      for (std::uint32_t l = 0; l < mapped.topo.num_links(); ++l) {
        result.max_link_stages = std::max(result.max_link_stages,
                                          mapped.topo.link(l).stages);
      }
    }

    compiler::NocSpec spec;
    spec.name = candidate.name;
    spec.topo = mapped.topo;
    spec.net = options.net;
    // Meshes (grid coordinates present) route XY; everything else uses
    // up*/down* — both provably deadlock-free.
    spec.net.routing = candidate.topo.switch_node(0).x >= 0
                           ? topology::RoutingAlgorithm::kXY
                           : topology::RoutingAlgorithm::kUpDown;

    result.name = candidate.name;
    result.mapping_cost = mapping_cost(graph, dist, mapping);

    const auto report = xpipes.estimate(spec, options.target_mhz);
    result.area_mm2 = report.total_area_mm2;
    result.power_mw = report.total_power_mw;
    result.fmax_mhz = report.min_fmax_mhz;

    // Short weighted-traffic simulation for latency/throughput.
    auto network = xpipes.build_simulation(spec);
    traffic::TrafficConfig tcfg;
    tcfg.pattern = traffic::Pattern::kWeighted;
    tcfg.weights = mapped.weights;
    tcfg.injection_rate = options.injection_rate;
    tcfg.read_fraction = 0.5;
    tcfg.seed = options.seed;
    traffic::TrafficDriver driver(*network, tcfg);
    driver.run(options.sim_cycles);
    network->run_until_quiescent(options.sim_cycles);
    const auto stats = traffic::collect_run(*network, options.sim_cycles);
    result.avg_latency_cycles = stats.latency.mean;
    result.throughput_tpc = stats.throughput;

    results[index] = std::move(result);
  });
  return results;
}

std::vector<std::size_t> pareto_front(
    const std::vector<ExplorationResult>& results) {
  std::vector<std::vector<double>> objectives;
  objectives.reserve(results.size());
  for (const auto& r : results) {
    objectives.push_back({r.area_mm2, r.power_mw, r.avg_latency_cycles});
  }
  return sweep::pareto_front_min(objectives);
}

std::vector<Candidate> default_candidates(std::size_t num_cores) {
  std::vector<Candidate> out;
  // Mesh just large enough, mesh one size up, ring, star, spidergon.
  std::size_t w = 1;
  std::size_t h = 1;
  while (w * h < num_cores) {
    if (w <= h) {
      ++w;
    } else {
      ++h;
    }
  }
  out.push_back({"mesh_" + std::to_string(w) + "x" + std::to_string(h),
                 topology::make_mesh(w, h, topology::NiPlan::uniform(
                                               w * h, 0, 0))});
  out.push_back(
      {"mesh_" + std::to_string(w + 1) + "x" + std::to_string(h),
       topology::make_mesh(w + 1, h,
                           topology::NiPlan::uniform((w + 1) * h, 0, 0))});
  const std::size_t ring_size = std::max<std::size_t>(3, (num_cores + 1) / 2);
  out.push_back({"ring_" + std::to_string(ring_size),
                 topology::make_ring(ring_size, topology::NiPlan::uniform(
                                                    ring_size, 0, 0))});
  const std::size_t leaves = std::max<std::size_t>(2, (num_cores + 2) / 3);
  out.push_back({"star_" + std::to_string(leaves),
                 topology::make_star(leaves, topology::NiPlan::uniform(
                                                 leaves + 1, 0, 0))});
  std::size_t spider = std::max<std::size_t>(4, (num_cores + 1) / 2);
  if (spider % 2 != 0) ++spider;
  out.push_back({"spidergon_" + std::to_string(spider),
                 topology::make_spidergon(spider, topology::NiPlan::uniform(
                                                      spider, 0, 0))});
  return out;
}

}  // namespace xpl::appgraph
