// Floorplanning: from topology to physical link lengths.
//
// The paper's flow diagram runs the mapping through a *floorplanner* with
// area libraries before topology selection: where switches land on the die
// decides wire lengths, and xpipes absorbs long wires by pipelining the
// links (which the ACK/nACK protocol tolerates by design). This module
// closes that loop:
//
//   1. place switches on a tile grid (meshes by their coordinates, other
//      topologies by simulated annealing on total weighted wire length);
//   2. convert Manhattan distances to millimetres using a tile pitch
//      derived from the attached components' estimated areas;
//   3. set each link's pipeline stages from the wire length and the
//      signal reach per clock cycle at the target frequency.
//
// The result feeds straight back into the simulation (longer links =
// more latency) and the synthesis report (retransmission windows grow
// with stages), making the exploration physically grounded.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.hpp"
#include "src/topology/topology.hpp"

namespace xpl::appgraph {

struct Floorplan {
  std::size_t grid_width = 0;
  std::size_t grid_height = 0;
  double tile_mm = 1.0;  ///< pitch between adjacent tile centres
  /// Tile coordinates per switch (one switch per tile).
  std::vector<std::pair<std::size_t, std::size_t>> position;

  /// Manhattan wire length of a link, in mm.
  double link_length_mm(const topology::Topology& topo,
                        std::uint32_t link_id) const;
  /// Total wire length over all links, in mm.
  double total_wire_mm(const topology::Topology& topo) const;
  /// Die edge estimate (grid extent times pitch).
  double die_width_mm() const { return tile_mm * double(grid_width); }
  double die_height_mm() const { return tile_mm * double(grid_height); }
};

struct FloorplanOptions {
  /// Pitch between switch tiles. Roughly sqrt(area of a switch plus its
  /// attached cores); 1 mm is a sane 130 nm default for small cores.
  double tile_mm = 1.0;
  /// How far a signal travels per clock at the target frequency (130 nm,
  /// repeated wires: ~2 mm/ns, so ~2 mm at 1 GHz).
  double mm_per_cycle = 2.0;
  std::size_t anneal_iterations = 20000;
  std::uint64_t seed = 11;
};

/// Places switches on the smallest near-square grid. Mesh/torus
/// topologies (switches carry coordinates) are placed by coordinate;
/// anything else is annealed to minimize total wire length.
Floorplan make_floorplan(const topology::Topology& topo,
                         const FloorplanOptions& options, Rng& rng);

/// Sets every link's pipeline stages from the floorplan:
/// stages = max(0, ceil(length / mm_per_cycle) - 1) — one "free" cycle is
/// the receiving register every link already has.
void apply_link_stages(topology::Topology& topo, const Floorplan& plan,
                       double mm_per_cycle);

}  // namespace xpl::appgraph
