#include "src/appgraph/mapping.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "src/common/error.hpp"

namespace xpl::appgraph {

std::vector<std::vector<std::size_t>> switch_distances(
    const topology::Topology& topo) {
  const std::size_t n = topo.num_switches();
  std::vector<std::vector<std::size_t>> dist(
      n, std::vector<std::size_t>(n, static_cast<std::size_t>(-1)));
  for (std::uint32_t start = 0; start < n; ++start) {
    dist[start][start] = 0;
    std::deque<std::uint32_t> queue{start};
    while (!queue.empty()) {
      const std::uint32_t s = queue.front();
      queue.pop_front();
      for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
        const auto& link = topo.link(l);
        if (link.from == s &&
            dist[start][link.to] == static_cast<std::size_t>(-1)) {
          dist[start][link.to] = dist[start][s] + 1;
          queue.push_back(link.to);
        }
      }
    }
  }
  return dist;
}

double mapping_cost(const CoreGraph& graph,
                    const std::vector<std::vector<std::size_t>>& dist,
                    const Mapping& mapping) {
  double cost = 0;
  for (const Flow& f : graph.flows()) {
    const std::uint32_t a = mapping.core_to_switch.at(f.src);
    const std::uint32_t b = mapping.core_to_switch.at(f.dst);
    // +1: even co-located cores cross their switch once (NI->switch->NI).
    cost += f.bandwidth * static_cast<double>(dist[a][b] + 1);
  }
  return cost;
}

namespace {

std::size_t default_capacity(const CoreGraph& graph,
                             const topology::Topology& topo,
                             std::size_t requested) {
  if (requested > 0) return requested;
  return std::max<std::size_t>(
      1, (graph.num_cores() + topo.num_switches() - 1) /
             topo.num_switches());
}

}  // namespace

Mapping greedy_map(const CoreGraph& graph, const topology::Topology& topo,
                   std::size_t capacity_per_switch) {
  const std::size_t cap = default_capacity(graph, topo, capacity_per_switch);
  require(cap * topo.num_switches() >= graph.num_cores(),
          "greedy_map: topology too small for the application");
  const auto dist = switch_distances(topo);
  const std::size_t cores = graph.num_cores();

  // Total traffic per core, heaviest first.
  std::vector<double> traffic(cores, 0);
  for (const Flow& f : graph.flows()) {
    traffic[f.src] += f.bandwidth;
    traffic[f.dst] += f.bandwidth;
  }
  std::vector<std::uint32_t> order(cores);
  for (std::uint32_t c = 0; c < cores; ++c) order[c] = c;
  // stable_sort: regular applications (pipelines, uniform meshes) tie on
  // per-core traffic, and std::sort's unspecified tie order would make
  // the placement — and everything downstream of it — depend on the
  // standard library. Ties place in core-index order (lint_regress).
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return traffic[a] > traffic[b];
                   });

  Mapping mapping;
  mapping.core_to_switch.assign(cores, 0);
  std::vector<bool> placed(cores, false);
  std::vector<std::size_t> load(topo.num_switches(), 0);

  for (const std::uint32_t core : order) {
    // Cost of placing `core` on switch s against already-placed partners.
    double best_cost = 0;
    std::uint32_t best_switch = 0;
    bool found = false;
    for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
      if (load[s] >= cap) continue;
      double cost = 0;
      for (const Flow& f : graph.flows()) {
        if (f.src == core && placed[f.dst]) {
          cost += f.bandwidth *
                  static_cast<double>(dist[s][mapping.core_to_switch[f.dst]]);
        }
        if (f.dst == core && placed[f.src]) {
          cost += f.bandwidth *
                  static_cast<double>(dist[mapping.core_to_switch[f.src]][s]);
        }
      }
      if (!found || cost < best_cost) {
        best_cost = cost;
        best_switch = s;
        found = true;
      }
    }
    XPL_ASSERT(found);
    mapping.core_to_switch[core] = best_switch;
    placed[core] = true;
    ++load[best_switch];
  }
  return mapping;
}

Mapping anneal_map(const CoreGraph& graph, const topology::Topology& topo,
                   const Mapping& initial, Rng& rng, std::size_t iterations,
                   std::size_t capacity_per_switch) {
  const std::size_t cap = default_capacity(graph, topo, capacity_per_switch);
  const auto dist = switch_distances(topo);
  Mapping current = initial;
  double current_cost = mapping_cost(graph, dist, current);
  Mapping best = current;
  double best_cost = current_cost;

  std::vector<std::size_t> load(topo.num_switches(), 0);
  for (const std::uint32_t s : current.core_to_switch) ++load[s];

  double temperature = best_cost * 0.05 + 1.0;
  const double cooling =
      std::pow(1e-3, 1.0 / static_cast<double>(std::max<std::size_t>(
                          1, iterations)));

  for (std::size_t it = 0; it < iterations; ++it) {
    Mapping candidate = current;
    const auto core = static_cast<std::uint32_t>(
        rng.next_below(graph.num_cores()));
    const auto old_sw = candidate.core_to_switch[core];
    if (rng.chance(0.5)) {
      // Swap with a random other core.
      const auto other = static_cast<std::uint32_t>(
          rng.next_below(graph.num_cores()));
      if (other == core) continue;
      std::swap(candidate.core_to_switch[core],
                candidate.core_to_switch[other]);
    } else {
      // Move to a random switch with room.
      const auto to = static_cast<std::uint32_t>(
          rng.next_below(topo.num_switches()));
      if (to == old_sw || load[to] >= cap) continue;
      candidate.core_to_switch[core] = to;
    }
    const double cost = mapping_cost(graph, dist, candidate);
    const double delta = cost - current_cost;
    if (delta <= 0 || rng.chance(std::exp(-delta / temperature))) {
      // Recompute the load tracker (covers both swaps and moves).
      for (auto& l : load) l = 0;
      for (const std::uint32_t s : candidate.core_to_switch) ++load[s];
      current = std::move(candidate);
      current_cost = cost;
      if (cost < best_cost) {
        best = current;
        best_cost = cost;
      }
    }
    temperature *= cooling;
  }
  return best;
}

MappedNoc build_mapped_topology(const CoreGraph& graph,
                                const topology::Topology& base,
                                const Mapping& mapping) {
  require(base.num_nis() == 0,
          "build_mapped_topology: base topology must have no NIs");
  require(mapping.core_to_switch.size() == graph.num_cores(),
          "build_mapped_topology: mapping size mismatch");
  MappedNoc out;
  out.topo = base;
  out.initiator_index.assign(graph.num_cores(), -1);
  out.target_index.assign(graph.num_cores(), -1);

  std::size_t next_ini = 0;
  std::size_t next_tgt = 0;
  // Attachment order: NI ids must interleave consistently with the
  // topology port maps, so iterate cores in id order.
  for (std::uint32_t c = 0; c < graph.num_cores(); ++c) {
    const std::uint32_t sw = mapping.core_to_switch[c];
    if (graph.sends(c)) {
      out.topo.attach_initiator(sw, graph.core_name(c) + "_ini");
      out.initiator_index[c] = static_cast<std::int64_t>(next_ini++);
    }
    if (graph.receives(c)) {
      out.topo.attach_target(sw, graph.core_name(c) + "_tgt");
      out.target_index[c] = static_cast<std::int64_t>(next_tgt++);
    }
  }

  out.weights.assign(next_ini, std::vector<double>(next_tgt, 0.0));
  for (const Flow& f : graph.flows()) {
    const auto i = out.initiator_index[f.src];
    const auto t = out.target_index[f.dst];
    XPL_ASSERT(i >= 0 && t >= 0);
    out.weights[static_cast<std::size_t>(i)][static_cast<std::size_t>(t)] +=
        f.bandwidth;
  }
  return out;
}

}  // namespace xpl::appgraph
