#include "src/appgraph/floorplan.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace xpl::appgraph {

double Floorplan::link_length_mm(const topology::Topology& topo,
                                 std::uint32_t link_id) const {
  const auto& link = topo.link(link_id);
  const auto [ax, ay] = position.at(link.from);
  const auto [bx, by] = position.at(link.to);
  const double dx = ax > bx ? double(ax - bx) : double(bx - ax);
  const double dy = ay > by ? double(ay - by) : double(by - ay);
  return (dx + dy) * tile_mm;
}

double Floorplan::total_wire_mm(const topology::Topology& topo) const {
  double total = 0;
  for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
    total += link_length_mm(topo, l);
  }
  return total;
}

namespace {

// Total Manhattan length (tile units) of all links for a placement.
double wire_cost(const topology::Topology& topo,
                 const std::vector<std::pair<std::size_t, std::size_t>>& pos) {
  double cost = 0;
  for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
    const auto& link = topo.link(l);
    const auto [ax, ay] = pos[link.from];
    const auto [bx, by] = pos[link.to];
    cost += std::abs(double(ax) - double(bx)) +
            std::abs(double(ay) - double(by));
  }
  return cost;
}

}  // namespace

Floorplan make_floorplan(const topology::Topology& topo,
                         const FloorplanOptions& options, Rng& rng) {
  const std::size_t n = topo.num_switches();
  require(n >= 1, "make_floorplan: empty topology");

  Floorplan plan;
  plan.tile_mm = options.tile_mm;

  // Mesh-style topologies come with coordinates: place by them.
  bool have_coords = true;
  for (std::uint32_t s = 0; s < n; ++s) {
    if (topo.switch_node(s).x < 0 || topo.switch_node(s).y < 0) {
      have_coords = false;
      break;
    }
  }
  if (have_coords) {
    std::size_t w = 0;
    std::size_t h = 0;
    plan.position.resize(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      const auto& node = topo.switch_node(s);
      plan.position[s] = {static_cast<std::size_t>(node.x),
                          static_cast<std::size_t>(node.y)};
      w = std::max(w, static_cast<std::size_t>(node.x) + 1);
      h = std::max(h, static_cast<std::size_t>(node.y) + 1);
    }
    plan.grid_width = w;
    plan.grid_height = h;
    return plan;
  }

  // Otherwise: anneal on the smallest near-square grid.
  std::size_t w = 1;
  while (w * w < n) ++w;
  const std::size_t h = (n + w - 1) / w;
  plan.grid_width = w;
  plan.grid_height = h;
  plan.position.resize(n);
  // Row-major initial placement.
  for (std::uint32_t s = 0; s < n; ++s) {
    plan.position[s] = {s % w, s / w};
  }

  double cost = wire_cost(topo, plan.position);
  auto best = plan.position;
  double best_cost = cost;
  double temperature = std::max(1.0, cost * 0.1);
  const double cooling = std::pow(
      1e-3, 1.0 / double(std::max<std::size_t>(1, options.anneal_iterations)));

  for (std::size_t it = 0; it < options.anneal_iterations; ++it) {
    // Swap two switches (keeps one-per-tile invariant).
    const auto a = static_cast<std::size_t>(rng.next_below(n));
    const auto b = static_cast<std::size_t>(rng.next_below(n));
    if (a == b) continue;
    std::swap(plan.position[a], plan.position[b]);
    const double next = wire_cost(topo, plan.position);
    const double delta = next - cost;
    if (delta <= 0 || rng.chance(std::exp(-delta / temperature))) {
      cost = next;
      if (cost < best_cost) {
        best_cost = cost;
        best = plan.position;
      }
    } else {
      std::swap(plan.position[a], plan.position[b]);  // revert
    }
    temperature *= cooling;
  }
  plan.position = std::move(best);
  return plan;
}

void apply_link_stages(topology::Topology& topo, const Floorplan& plan,
                       double mm_per_cycle) {
  require(mm_per_cycle > 0, "apply_link_stages: mm_per_cycle must be > 0");
  for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
    const double length = plan.link_length_mm(topo, l);
    const auto cycles = static_cast<std::size_t>(
        std::ceil(length / mm_per_cycle));
    topo.mutable_link(l).stages = cycles > 0 ? cycles - 1 : 0;
  }
}

}  // namespace xpl::appgraph
