// Error-detection codes used by the xpipes lite link-level protocol.
//
// The paper's switch implements ACK/nACK error control for pipelined,
// unreliable links: each flit carries a checksum, the receiving switch
// verifies it and answers ACK or nACK. The library offers three codes
// with different cost/coverage tradeoffs; the synthesis model charges
// gates per code accordingly.
#pragma once

#include <cstdint>

#include "src/common/bits.hpp"

namespace xpl {

/// Checksum algorithm attached to every flit on a link.
enum class CrcKind : std::uint8_t {
  kNone,    ///< no checking (reliable links); 0 check bits
  kParity,  ///< single even-parity bit; detects all 1-bit errors
  kCrc8,    ///< CRC-8/ATM, polynomial x^8+x^2+x+1 (0x07)
  kCrc16,   ///< CRC-16/CCITT, polynomial 0x1021
};

/// Number of check bits appended per flit for `kind`.
std::size_t crc_width(CrcKind kind);

/// Computes the checksum of `bits` under `kind`. The result fits in
/// crc_width(kind) bits (0 for kNone).
std::uint16_t crc_compute(CrcKind kind, const BitVector& bits);

/// True if `checksum` matches the recomputed checksum of `bits`.
bool crc_check(CrcKind kind, const BitVector& bits, std::uint16_t checksum);

/// Human-readable name ("parity", "crc8", ...).
const char* crc_name(CrcKind kind);

}  // namespace xpl
