#include "src/common/log.hpp"

#include <cstdarg>
#include <cstdio>

namespace xpl {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[xpl %s] %s\n", level_name(level), msg.c_str());
}

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level) return;
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  log_message(level, buf);
}

}  // namespace xpl
