// Arbitrary-width bit vectors and field packing.
//
// The xpipes lite packet format is defined at the bit level: a ~50-bit
// header register is decomposed into flits of a configurable width
// (16..128 bits in the paper). BitVector models such registers exactly,
// independent of the host word size, so packetization round-trips at any
// flit width. Bit 0 is the least-significant bit.
//
// Storage is small-buffer optimized: vectors up to kInlineWords*64 bits
// live inline in the object with no heap allocation. The inline span is
// sized so that every flit payload of the paper's 16..128-bit sweep range
// *and* the CRC's protected view of such a flit (payload + 10 control
// bits, see packet/flit.hpp) stay inline — copying a flit through the
// simulated pipeline never allocates.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/error.hpp"

namespace xpl {

/// Fixed-width vector of bits with word-granular storage.
///
/// Invariants: width() is set at construction (or resize) and all storage
/// bits above width() are zero, so equality and hashing are value-based.
class BitVector {
 public:
  /// Widths up to kInlineWords*64 bits are stored inline (no heap).
  static constexpr std::size_t kInlineWords = 3;

  /// Creates an all-zero vector of `width` bits (width may be 0).
  explicit BitVector(std::size_t width = 0);

  /// Creates a vector of `width` bits initialized from the low bits of
  /// `value`. Bits of `value` beyond `width` must be zero.
  BitVector(std::size_t width, std::uint64_t value);

  std::size_t width() const { return width_; }

  /// Reads one bit. `pos` must be < width().
  bool get(std::size_t pos) const;

  /// Writes one bit. `pos` must be < width().
  void set(std::size_t pos, bool value);

  /// Extracts `count` bits starting at `pos` (count <= 64) as an integer.
  std::uint64_t slice(std::size_t pos, std::size_t count) const;

  /// Deposits the low `count` bits of `value` at `pos` (count <= 64).
  void deposit(std::size_t pos, std::size_t count, std::uint64_t value);

  /// Extracts an arbitrary-width field as a BitVector.
  BitVector subvector(std::size_t pos, std::size_t count) const;

  /// Deposits an entire BitVector at `pos`.
  void deposit_vector(std::size_t pos, const BitVector& value);

  /// Grows or shrinks to `width` bits; new bits are zero, dropped bits are
  /// discarded.
  void resize(std::size_t width);

  /// Value of the whole vector, which must be at most 64 bits wide.
  std::uint64_t to_u64() const;

  /// Number of set bits.
  std::size_t popcount() const;

  /// XOR-reduction of all bits (even parity bit).
  bool parity() const;

  /// All bits zero?
  bool is_zero() const;

  /// Binary string, most-significant bit first, e.g. "0101".
  std::string to_string() const;

  bool operator==(const BitVector& other) const;
  bool operator!=(const BitVector& other) const { return !(*this == other); }

  /// XORs `other` (same width) into this vector. Used by error injection.
  BitVector& operator^=(const BitVector& other);

  /// Raw storage words (read-only), little-endian word order.
  const std::uint64_t* word_data() const {
    return inline_storage() ? inline_words_ : heap_.data();
  }
  std::size_t num_words() const { return nwords_; }

 private:
  bool inline_storage() const { return nwords_ <= kInlineWords; }
  std::uint64_t* word_data() {
    return inline_storage() ? inline_words_ : heap_.data();
  }
  void mask_top();

  std::size_t width_ = 0;
  std::size_t nwords_ = 0;
  std::uint64_t inline_words_[kInlineWords] = {0, 0, 0};
  std::vector<std::uint64_t> heap_;  ///< engaged only above kInlineWords
};

/// Incremental writer that appends fields LSB-first into a BitVector.
/// Mirrors how the NI fills the header register field by field.
class BitWriter {
 public:
  explicit BitWriter(std::size_t width) : bits_(width) {}

  /// Appends the low `count` bits of `value`. Throws if it would overflow.
  BitWriter& put(std::size_t count, std::uint64_t value);

  /// Appends a whole BitVector.
  BitWriter& put_vector(const BitVector& value);

  /// Bits written so far.
  std::size_t position() const { return pos_; }

  /// Finishes and returns the vector (remaining bits stay zero).
  const BitVector& bits() const { return bits_; }

 private:
  BitVector bits_;
  std::size_t pos_ = 0;
};

/// Incremental reader that consumes fields LSB-first from a BitVector.
class BitReader {
 public:
  explicit BitReader(const BitVector& bits) : bits_(bits) {}

  /// Reads `count` bits (<= 64) and advances.
  std::uint64_t get(std::size_t count);

  /// Reads an arbitrary-width field and advances.
  BitVector get_vector(std::size_t count);

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return bits_.width() - pos_; }

 private:
  const BitVector& bits_;
  std::size_t pos_ = 0;
};

/// Number of bits needed to represent values 0..n-1 (at least 1).
std::size_t bits_for(std::size_t n);

/// ceil(a / b) for positive integers.
constexpr std::size_t ceil_div(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

}  // namespace xpl
