// Deterministic pseudo-random number generation for simulation.
//
// All stochastic behaviour in the library (traffic generation, link error
// injection, arbitration tie randomization in tests) draws from Rng so that
// every experiment is reproducible from a single seed.
#pragma once

#include <cstdint>

namespace xpl {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    auto splitmix = [&seed]() {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      return z ^ (z >> 31);
    };
    for (auto& w : state_) w = splitmix();
  }

  /// Next 64 uniformly random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Debiased via rejection on the top range.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace xpl
