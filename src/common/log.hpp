// Minimal leveled logging.
//
// Simulation modules log through this interface so tests can silence or
// capture output. Logging defaults to kWarn to keep benches quiet.
#pragma once

#include <cstdint>
#include <string>

namespace xpl {

enum class LogLevel : std::uint8_t { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits `msg` at `level` to stderr if it passes the threshold.
void log_message(LogLevel level, const std::string& msg);

/// printf-style convenience wrapper.
void logf(LogLevel level, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

}  // namespace xpl
