// Fixed-capacity ring-buffer FIFO for the simulation hot path.
//
// Every cycle-accurate queue in the flit path (stream FIFOs, go-back-N
// retransmission buffers, switch input/output queues, NI packetizer
// output) holds a small, bounded number of elements and is pushed/popped
// once per cycle. std::deque pays a heap-allocated chunk map plus
// two-level indirection for that job; Ring is a power-of-two circular
// array with index masking — one contiguous allocation made once at
// construction, no per-element allocation ever after.
//
// Capacity is normally fixed up front via the constructor or reserve()
// (hot-path owners size it from their config: FIFO depth, protocol
// window, queue depth). If a push does find the buffer full, the ring
// doubles — growth is deterministic and amortized, so a mis-estimated
// bound degrades to a one-time reallocation instead of an overflow bug.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "src/common/error.hpp"

namespace xpl {

template <typename T>
class Ring {
 public:
  Ring() = default;
  explicit Ring(std::size_t capacity) { reserve(capacity); }

  /// Ensures room for at least `n` elements (rounds up to a power of
  /// two). Existing contents are preserved in order.
  void reserve(std::size_t n) {
    if (n > buf_.size()) regrow(pow2_at_least(n));
  }

  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  T& front() {
    XPL_ASSERT(count_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    XPL_ASSERT(count_ > 0);
    return buf_[head_];
  }

  T& back() {
    XPL_ASSERT(count_ > 0);
    return buf_[(head_ + count_ - 1) & mask_];
  }
  const T& back() const {
    XPL_ASSERT(count_ > 0);
    return buf_[(head_ + count_ - 1) & mask_];
  }

  /// FIFO-order access: [0] is the front (oldest) element.
  T& operator[](std::size_t i) {
    XPL_ASSERT(i < count_);
    return buf_[(head_ + i) & mask_];
  }
  const T& operator[](std::size_t i) const {
    XPL_ASSERT(i < count_);
    return buf_[(head_ + i) & mask_];
  }

  void push_back(T value) {
    if (count_ == buf_.size()) regrow(pow2_at_least(count_ + 1));
    buf_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  template <typename... Args>
  void emplace_back(Args&&... args) {
    push_back(T(std::forward<Args>(args)...));
  }

  /// Removes the front element. The slot keeps its moved-from/stale value
  /// until overwritten by a later push — callers that care about payload
  /// lifetime should std::move(front()) out first.
  void pop_front() {
    XPL_ASSERT(count_ > 0);
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void clear() {
    head_ = 0;
    count_ = 0;
  }

 private:
  static std::size_t pow2_at_least(std::size_t n) {
    std::size_t p = 4;
    while (p < n) p <<= 1;
    return p;
  }

  void regrow(std::size_t new_cap) {
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = buf_.size() - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace xpl
