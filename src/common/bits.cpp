#include "src/common/bits.hpp"

#include <bit>
#include <cstring>

namespace xpl {

namespace {
constexpr std::size_t kWordBits = 64;
}  // namespace

BitVector::BitVector(std::size_t width)
    : width_(width), nwords_(ceil_div(width, kWordBits)) {
  if (!inline_storage()) heap_.assign(nwords_, 0);
}

BitVector::BitVector(std::size_t width, std::uint64_t value)
    : BitVector(width) {
  if (width < kWordBits) {
    require((value >> width) == 0,
            "BitVector: initial value wider than vector");
  }
  if (nwords_ != 0) word_data()[0] = value;
  mask_top();
}

void BitVector::mask_top() {
  const std::size_t rem = width_ % kWordBits;
  if (rem != 0 && nwords_ != 0) {
    word_data()[nwords_ - 1] &= (std::uint64_t{1} << rem) - 1;
  }
}

bool BitVector::get(std::size_t pos) const {
  XPL_ASSERT(pos < width_);
  return (word_data()[pos / kWordBits] >> (pos % kWordBits)) & 1u;
}

void BitVector::set(std::size_t pos, bool value) {
  XPL_ASSERT(pos < width_);
  const std::uint64_t mask = std::uint64_t{1} << (pos % kWordBits);
  if (value) {
    word_data()[pos / kWordBits] |= mask;
  } else {
    word_data()[pos / kWordBits] &= ~mask;
  }
}

std::uint64_t BitVector::slice(std::size_t pos, std::size_t count) const {
  XPL_ASSERT(count <= kWordBits);
  XPL_ASSERT(pos + count <= width_);
  if (count == 0) return 0;
  const std::uint64_t* w = word_data();
  const std::size_t word = pos / kWordBits;
  const std::size_t off = pos % kWordBits;
  std::uint64_t value = w[word] >> off;
  if (off + count > kWordBits) {
    value |= w[word + 1] << (kWordBits - off);
  }
  if (count < kWordBits) {
    value &= (std::uint64_t{1} << count) - 1;
  }
  return value;
}

void BitVector::deposit(std::size_t pos, std::size_t count,
                        std::uint64_t value) {
  XPL_ASSERT(count <= kWordBits);
  XPL_ASSERT(pos + count <= width_);
  if (count == 0) return;
  if (count < kWordBits) {
    value &= (std::uint64_t{1} << count) - 1;
  }
  std::uint64_t* w = word_data();
  const std::size_t word = pos / kWordBits;
  const std::size_t off = pos % kWordBits;
  const std::size_t low_count = std::min(count, kWordBits - off);
  const std::uint64_t low_mask = (low_count == kWordBits)
                                     ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << low_count) - 1;
  w[word] = (w[word] & ~(low_mask << off)) | ((value & low_mask) << off);
  if (count > low_count) {
    const std::size_t high_count = count - low_count;
    const std::uint64_t high_mask = (std::uint64_t{1} << high_count) - 1;
    w[word + 1] =
        (w[word + 1] & ~high_mask) | ((value >> low_count) & high_mask);
  }
}

BitVector BitVector::subvector(std::size_t pos, std::size_t count) const {
  XPL_ASSERT(pos + count <= width_);
  BitVector out(count);
  if (count == 0) return out;
  if (pos % kWordBits == 0) {
    // Word-aligned extraction: straight word copy plus a top mask. This is
    // the packetizer's path (registers decompose on flit boundaries).
    std::memcpy(out.word_data(), word_data() + pos / kWordBits,
                out.nwords_ * sizeof(std::uint64_t));
    out.mask_top();
    return out;
  }
  std::size_t done = 0;
  while (done < count) {
    const std::size_t chunk = std::min<std::size_t>(kWordBits, count - done);
    out.deposit(done, chunk, slice(pos + done, chunk));
    done += chunk;
  }
  return out;
}

void BitVector::deposit_vector(std::size_t pos, const BitVector& value) {
  XPL_ASSERT(pos + value.width() <= width_);
  if (value.width() == 0) return;
  if (pos % kWordBits == 0) {
    // Word-aligned deposit: copy whole words, finish with one partial
    // deposit for the value's top fragment.
    const std::size_t full = value.width() / kWordBits;
    std::memcpy(word_data() + pos / kWordBits, value.word_data(),
                full * sizeof(std::uint64_t));
    const std::size_t rem = value.width() % kWordBits;
    if (rem != 0) {
      deposit(pos + full * kWordBits, rem, value.word_data()[full]);
    }
    return;
  }
  std::size_t done = 0;
  while (done < value.width()) {
    const std::size_t chunk =
        std::min<std::size_t>(kWordBits, value.width() - done);
    deposit(pos + done, chunk, value.slice(done, chunk));
    done += chunk;
  }
}

void BitVector::resize(std::size_t width) {
  const std::size_t new_n = ceil_div(width, kWordBits);
  if (new_n <= kInlineWords) {
    if (!inline_storage()) {
      // Heap -> inline: bring the surviving words home.
      for (std::size_t i = 0; i < new_n; ++i) inline_words_[i] = heap_[i];
      heap_.clear();
      heap_.shrink_to_fit();
    }
    // Keep the invariant that unused inline words are zero, so a later
    // grow within the inline span exposes no stale bits.
    for (std::size_t i = new_n; i < kInlineWords; ++i) inline_words_[i] = 0;
  } else if (inline_storage()) {
    // Inline -> heap.
    heap_.assign(new_n, 0);
    for (std::size_t i = 0; i < nwords_; ++i) heap_[i] = inline_words_[i];
    for (std::size_t i = 0; i < kInlineWords; ++i) inline_words_[i] = 0;
  } else {
    heap_.resize(new_n, 0);
  }
  width_ = width;
  nwords_ = new_n;
  mask_top();
}

std::uint64_t BitVector::to_u64() const {
  require(width_ <= kWordBits, "BitVector::to_u64: vector wider than 64 bits");
  return nwords_ == 0 ? 0 : word_data()[0];
}

std::size_t BitVector::popcount() const {
  const std::uint64_t* w = word_data();
  std::size_t n = 0;
  for (std::size_t i = 0; i < nwords_; ++i) {
    n += static_cast<std::size_t>(std::popcount(w[i]));
  }
  return n;
}

bool BitVector::parity() const { return (popcount() & 1u) != 0; }

bool BitVector::is_zero() const {
  const std::uint64_t* w = word_data();
  for (std::size_t i = 0; i < nwords_; ++i) {
    if (w[i] != 0) return false;
  }
  return true;
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(width_);
  for (std::size_t i = width_; i-- > 0;) {
    s.push_back(get(i) ? '1' : '0');
  }
  return s;
}

bool BitVector::operator==(const BitVector& other) const {
  if (width_ != other.width_) return false;
  // Storage above width() is zero by invariant, so whole-word compare is
  // value compare.
  return nwords_ == 0 ||
         std::memcmp(word_data(), other.word_data(),
                     nwords_ * sizeof(std::uint64_t)) == 0;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  require(width_ == other.width_, "BitVector::operator^=: width mismatch");
  std::uint64_t* w = word_data();
  const std::uint64_t* o = other.word_data();
  for (std::size_t i = 0; i < nwords_; ++i) {
    w[i] ^= o[i];
  }
  return *this;
}

BitWriter& BitWriter::put(std::size_t count, std::uint64_t value) {
  require(pos_ + count <= bits_.width(), "BitWriter: field overflows vector");
  bits_.deposit(pos_, count, value);
  pos_ += count;
  return *this;
}

BitWriter& BitWriter::put_vector(const BitVector& value) {
  require(pos_ + value.width() <= bits_.width(),
          "BitWriter: vector field overflows");
  bits_.deposit_vector(pos_, value);
  pos_ += value.width();
  return *this;
}

std::uint64_t BitReader::get(std::size_t count) {
  require(pos_ + count <= bits_.width(), "BitReader: read past end");
  const std::uint64_t v = bits_.slice(pos_, count);
  pos_ += count;
  return v;
}

BitVector BitReader::get_vector(std::size_t count) {
  require(pos_ + count <= bits_.width(), "BitReader: read past end");
  BitVector v = bits_.subvector(pos_, count);
  pos_ += count;
  return v;
}

std::size_t bits_for(std::size_t n) {
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace xpl
