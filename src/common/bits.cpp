#include "src/common/bits.hpp"

#include <bit>

namespace xpl {

namespace {
constexpr std::size_t kWordBits = 64;
}  // namespace

BitVector::BitVector(std::size_t width)
    : width_(width), words_(ceil_div(width, kWordBits), 0) {}

BitVector::BitVector(std::size_t width, std::uint64_t value)
    : BitVector(width) {
  if (width < kWordBits) {
    require((value >> width) == 0,
            "BitVector: initial value wider than vector");
  }
  if (!words_.empty()) words_[0] = value;
  mask_top();
}

void BitVector::mask_top() {
  const std::size_t rem = width_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

bool BitVector::get(std::size_t pos) const {
  XPL_ASSERT(pos < width_);
  return (words_[pos / kWordBits] >> (pos % kWordBits)) & 1u;
}

void BitVector::set(std::size_t pos, bool value) {
  XPL_ASSERT(pos < width_);
  const std::uint64_t mask = std::uint64_t{1} << (pos % kWordBits);
  if (value) {
    words_[pos / kWordBits] |= mask;
  } else {
    words_[pos / kWordBits] &= ~mask;
  }
}

std::uint64_t BitVector::slice(std::size_t pos, std::size_t count) const {
  XPL_ASSERT(count <= kWordBits);
  XPL_ASSERT(pos + count <= width_);
  if (count == 0) return 0;
  const std::size_t word = pos / kWordBits;
  const std::size_t off = pos % kWordBits;
  std::uint64_t value = words_[word] >> off;
  if (off + count > kWordBits) {
    value |= words_[word + 1] << (kWordBits - off);
  }
  if (count < kWordBits) {
    value &= (std::uint64_t{1} << count) - 1;
  }
  return value;
}

void BitVector::deposit(std::size_t pos, std::size_t count,
                        std::uint64_t value) {
  XPL_ASSERT(count <= kWordBits);
  XPL_ASSERT(pos + count <= width_);
  if (count == 0) return;
  if (count < kWordBits) {
    value &= (std::uint64_t{1} << count) - 1;
  }
  const std::size_t word = pos / kWordBits;
  const std::size_t off = pos % kWordBits;
  const std::size_t low_count = std::min(count, kWordBits - off);
  const std::uint64_t low_mask = (low_count == kWordBits)
                                     ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << low_count) - 1;
  words_[word] =
      (words_[word] & ~(low_mask << off)) | ((value & low_mask) << off);
  if (count > low_count) {
    const std::size_t high_count = count - low_count;
    const std::uint64_t high_mask = (std::uint64_t{1} << high_count) - 1;
    words_[word + 1] = (words_[word + 1] & ~high_mask) |
                       ((value >> low_count) & high_mask);
  }
}

BitVector BitVector::subvector(std::size_t pos, std::size_t count) const {
  XPL_ASSERT(pos + count <= width_);
  BitVector out(count);
  std::size_t done = 0;
  while (done < count) {
    const std::size_t chunk = std::min<std::size_t>(kWordBits, count - done);
    out.deposit(done, chunk, slice(pos + done, chunk));
    done += chunk;
  }
  return out;
}

void BitVector::deposit_vector(std::size_t pos, const BitVector& value) {
  XPL_ASSERT(pos + value.width() <= width_);
  std::size_t done = 0;
  while (done < value.width()) {
    const std::size_t chunk =
        std::min<std::size_t>(kWordBits, value.width() - done);
    deposit(pos + done, chunk, value.slice(done, chunk));
    done += chunk;
  }
}

void BitVector::resize(std::size_t width) {
  width_ = width;
  words_.resize(ceil_div(width, kWordBits), 0);
  mask_top();
}

std::uint64_t BitVector::to_u64() const {
  require(width_ <= kWordBits, "BitVector::to_u64: vector wider than 64 bits");
  return words_.empty() ? 0 : words_[0];
}

std::size_t BitVector::popcount() const {
  std::size_t n = 0;
  for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

bool BitVector::parity() const { return (popcount() & 1u) != 0; }

bool BitVector::is_zero() const {
  for (std::uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::string BitVector::to_string() const {
  std::string s;
  s.reserve(width_);
  for (std::size_t i = width_; i-- > 0;) {
    s.push_back(get(i) ? '1' : '0');
  }
  return s;
}

bool BitVector::operator==(const BitVector& other) const {
  return width_ == other.width_ && words_ == other.words_;
}

BitVector& BitVector::operator^=(const BitVector& other) {
  require(width_ == other.width_, "BitVector::operator^=: width mismatch");
  for (std::size_t i = 0; i < words_.size(); ++i) {
    words_[i] ^= other.words_[i];
  }
  return *this;
}

BitWriter& BitWriter::put(std::size_t count, std::uint64_t value) {
  require(pos_ + count <= bits_.width(), "BitWriter: field overflows vector");
  bits_.deposit(pos_, count, value);
  pos_ += count;
  return *this;
}

BitWriter& BitWriter::put_vector(const BitVector& value) {
  require(pos_ + value.width() <= bits_.width(),
          "BitWriter: vector field overflows");
  bits_.deposit_vector(pos_, value);
  pos_ += value.width();
  return *this;
}

std::uint64_t BitReader::get(std::size_t count) {
  require(pos_ + count <= bits_.width(), "BitReader: read past end");
  const std::uint64_t v = bits_.slice(pos_, count);
  pos_ += count;
  return v;
}

BitVector BitReader::get_vector(std::size_t count) {
  require(pos_ + count <= bits_.width(), "BitReader: read past end");
  BitVector v = bits_.subvector(pos_, count);
  pos_ += count;
  return v;
}

std::size_t bits_for(std::size_t n) {
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < n) ++bits;
  return bits;
}

}  // namespace xpl
