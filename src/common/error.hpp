// Error-handling helpers for the xpipes lite library.
//
// Library-level contract violations (bad parameters, protocol misuse) throw
// xpl::Error; internal invariants use XPL_ASSERT which aborts with context.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace xpl {

/// Exception thrown on API contract violations (invalid configuration,
/// malformed specifications, out-of-range arguments).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Throws xpl::Error with the given message if `cond` is false.
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw Error(msg);
}

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "xpl internal assertion failed: %s (%s:%d)\n", expr,
               file, line);
  std::abort();
}
}  // namespace detail

}  // namespace xpl

/// Internal invariant check. Always on (simulation correctness depends on it
/// and the cost is negligible next to the cycle loop body).
#define XPL_ASSERT(expr) \
  ((expr) ? (void)0 : ::xpl::detail::assert_fail(#expr, __FILE__, __LINE__))
