#include "src/common/crc.hpp"

#include <array>

namespace xpl {

namespace {

// Bitwise CRC step: LSB-first bit order over the message, MSB-first shift
// register, zero initial value. This serial form exactly matches the LFSR
// the synthesis model charges gates for; it remains the reference (and the
// tail path for the last <8 bits) while whole bytes go through the tables
// below.
template <typename Reg>
Reg crc_serial_bit(Reg reg, bool in, Reg poly, Reg top, Reg mask) {
  const bool msb = (reg & top) != 0;
  reg = static_cast<Reg>((reg << 1) & mask);
  if (in != msb) reg = static_cast<Reg>(reg ^ poly);
  return reg;
}

template <typename Reg>
Reg crc_serial_byte(Reg reg, std::uint8_t byte, Reg poly, Reg top, Reg mask) {
  for (unsigned b = 0; b < 8; ++b) {
    reg = crc_serial_bit<Reg>(reg, (byte >> b) & 1u, poly, top, mask);
  }
  return reg;
}

// The per-bit update is linear over GF(2): reg' = L(reg) ^ in*poly. Eight
// steps therefore split as f(reg, byte) = f(reg, 0) ^ f(0, byte), so one
// 256-entry table per operand turns the serial loop into two lookups per
// message byte. Tables are built from the serial reference itself, so the
// two implementations cannot drift (crc_test cross-checks them anyway).
struct Crc8Tables {
  std::array<std::uint8_t, 256> reg;  ///< f(r, 0)
  std::array<std::uint8_t, 256> in;   ///< f(0, b)
};

struct Crc16Tables {
  std::array<std::uint16_t, 256> reg;  ///< f(r << 8, 0), r = top byte
  std::array<std::uint16_t, 256> in;   ///< f(0, b)
};

const Crc8Tables& crc8_tables() {
  static const Crc8Tables tables = [] {
    Crc8Tables t;
    for (unsigned v = 0; v < 256; ++v) {
      t.reg[v] = crc_serial_byte<std::uint8_t>(
          static_cast<std::uint8_t>(v), 0, 0x07, 0x80, 0xFF);
      t.in[v] = crc_serial_byte<std::uint8_t>(
          0, static_cast<std::uint8_t>(v), 0x07, 0x80, 0xFF);
    }
    return t;
  }();
  return tables;
}

const Crc16Tables& crc16_tables() {
  static const Crc16Tables tables = [] {
    Crc16Tables t;
    for (unsigned v = 0; v < 256; ++v) {
      t.reg[v] = crc_serial_byte<std::uint16_t>(
          static_cast<std::uint16_t>(v << 8), 0, 0x1021, 0x8000, 0xFFFF);
      t.in[v] = crc_serial_byte<std::uint16_t>(
          0, static_cast<std::uint8_t>(v), 0x1021, 0x8000, 0xFFFF);
    }
    return t;
  }();
  return tables;
}

/// Generic driver: whole bytes through `step`, tail bits through the
/// serial reference. Message bytes never straddle storage words (8 | 64),
/// so each is one shift+mask off the word array.
template <typename Reg, typename Step>
Reg crc_bytewise(const BitVector& bits, Step step, Reg poly, Reg top,
                 Reg mask) {
  const std::uint64_t* words = bits.word_data();
  const std::size_t nbytes = bits.width() / 8;
  Reg reg = 0;
  for (std::size_t i = 0; i < nbytes; ++i) {
    const auto byte =
        static_cast<std::uint8_t>(words[i / 8] >> ((i % 8) * 8));
    reg = step(reg, byte);
  }
  for (std::size_t pos = nbytes * 8; pos < bits.width(); ++pos) {
    reg = crc_serial_bit<Reg>(reg, bits.get(pos), poly, top, mask);
  }
  return reg;
}

std::uint8_t crc8_compute(const BitVector& bits) {
  const Crc8Tables& t = crc8_tables();
  return crc_bytewise<std::uint8_t>(
      bits,
      [&t](std::uint8_t reg, std::uint8_t byte) {
        return static_cast<std::uint8_t>(t.reg[reg] ^ t.in[byte]);
      },
      0x07, 0x80, 0xFF);
}

std::uint16_t crc16_compute(const BitVector& bits) {
  const Crc16Tables& t = crc16_tables();
  return crc_bytewise<std::uint16_t>(
      bits,
      [&t](std::uint16_t reg, std::uint8_t byte) {
        // f(reg, 0): the low byte shifts up, the top byte folds via table.
        return static_cast<std::uint16_t>(
            ((reg & 0xFF) << 8) ^ t.reg[reg >> 8] ^ t.in[byte]);
      },
      0x1021, 0x8000, 0xFFFF);
}

}  // namespace

std::size_t crc_width(CrcKind kind) {
  switch (kind) {
    case CrcKind::kNone:
      return 0;
    case CrcKind::kParity:
      return 1;
    case CrcKind::kCrc8:
      return 8;
    case CrcKind::kCrc16:
      return 16;
  }
  return 0;
}

std::uint16_t crc_compute(CrcKind kind, const BitVector& bits) {
  switch (kind) {
    case CrcKind::kNone:
      return 0;
    case CrcKind::kParity:
      return bits.parity() ? 1 : 0;
    case CrcKind::kCrc8:
      return crc8_compute(bits);
    case CrcKind::kCrc16:
      return crc16_compute(bits);
  }
  return 0;
}

bool crc_check(CrcKind kind, const BitVector& bits, std::uint16_t checksum) {
  return crc_compute(kind, bits) == checksum;
}

const char* crc_name(CrcKind kind) {
  switch (kind) {
    case CrcKind::kNone:
      return "none";
    case CrcKind::kParity:
      return "parity";
    case CrcKind::kCrc8:
      return "crc8";
    case CrcKind::kCrc16:
      return "crc16";
  }
  return "?";
}

}  // namespace xpl
