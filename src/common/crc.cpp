#include "src/common/crc.hpp"

namespace xpl {

namespace {

// Bitwise CRC over the vector, LSB-first bit order, zero initial value.
// Flits are at most a few hundred bits, so the bitwise loop is not a
// bottleneck; it also exactly matches the serial LFSR the synthesis model
// charges gates for.
std::uint16_t crc_generic(const BitVector& bits, std::uint16_t poly,
                          unsigned width) {
  std::uint16_t reg = 0;
  const std::uint16_t top = static_cast<std::uint16_t>(1u << (width - 1));
  const std::uint16_t mask =
      static_cast<std::uint16_t>((width == 16) ? 0xFFFFu : ((1u << width) - 1));
  for (std::size_t i = 0; i < bits.width(); ++i) {
    const bool in = bits.get(i);
    const bool msb = (reg & top) != 0;
    reg = static_cast<std::uint16_t>((reg << 1) & mask);
    if (in != msb) reg = static_cast<std::uint16_t>(reg ^ poly);
  }
  return static_cast<std::uint16_t>(reg & mask);
}

}  // namespace

std::size_t crc_width(CrcKind kind) {
  switch (kind) {
    case CrcKind::kNone:
      return 0;
    case CrcKind::kParity:
      return 1;
    case CrcKind::kCrc8:
      return 8;
    case CrcKind::kCrc16:
      return 16;
  }
  return 0;
}

std::uint16_t crc_compute(CrcKind kind, const BitVector& bits) {
  switch (kind) {
    case CrcKind::kNone:
      return 0;
    case CrcKind::kParity:
      return bits.parity() ? 1 : 0;
    case CrcKind::kCrc8:
      return crc_generic(bits, 0x07, 8);
    case CrcKind::kCrc16:
      return crc_generic(bits, 0x1021, 16);
  }
  return 0;
}

bool crc_check(CrcKind kind, const BitVector& bits, std::uint16_t checksum) {
  return crc_compute(kind, bits) == checksum;
}

const char* crc_name(CrcKind kind) {
  switch (kind) {
    case CrcKind::kNone:
      return "none";
    case CrcKind::kParity:
      return "parity";
    case CrcKind::kCrc8:
      return "crc8";
    case CrcKind::kCrc16:
      return "crc16";
  }
  return "?";
}

}  // namespace xpl
