// Switch-to-partition assignment for partitioned simulation
// (DESIGN.md §10).
//
// The simulation kernel parallelizes one network by running groups of
// switches (with their NIs and cores) in concurrent epochs, exchanging
// link traffic at conservative-window barriers. This header picks the
// groups. Two goals, in order:
//
//  1. Few cut links — every cut link pays mailbox staging plus barrier
//     exchange, and the cheapest cut of a grid runs perpendicular to
//     its *longer* axis (cutting a w x h mesh, w >= h, between columns
//     costs h duplex links; between rows it would cost w).
//  2. Balanced partitions — the epoch barrier waits for the slowest
//     partition.
//
// Assignment is a pure function of the topology and the partition
// count: byte-identical exports at any thread count start here.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/topology.hpp"

namespace xpl::topology {

/// Returns partition ids, indexed by switch id, for `parts` partitions
/// (callers clamp parts to [1, num_switches] beforehand; every returned
/// partition is non-empty). Grid topologies with coordinates (mesh,
/// cmesh, torus) are striped into contiguous slabs along their longer
/// axis; anything else is chunked along a breadth-first switch order,
/// which keeps neighborhoods together and so cuts few links on the
/// remaining regular topologies (ring, star, spidergon, trees).
std::vector<std::uint32_t> partition_switches(const Topology& topo,
                                              std::size_t parts);

}  // namespace xpl::topology
