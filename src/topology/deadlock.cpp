#include "src/topology/deadlock.hpp"

#include <algorithm>
#include <sstream>

namespace xpl::topology {

std::string DeadlockReport::to_string(const Topology& topo) const {
  if (deadlock_free) return "deadlock-free";
  std::ostringstream os;
  os << "channel-dependency cycle:";
  for (const std::uint32_t l : cycle) {
    const Link& link = topo.link(l);
    os << " " << topo.switch_node(link.from).name << "->"
       << topo.switch_node(link.to).name;
  }
  return os.str();
}

DeadlockReport check_deadlock(const Topology& topo,
                              const RoutingTables& tables) {
  // Dependency edges between link ids: route ... l1, l2 ... adds l1 -> l2.
  const std::size_t n = topo.num_links();
  std::vector<std::vector<std::uint32_t>> deps(n);

  for (const auto& [pair, route] : tables.routes) {
    const std::uint32_t src = pair.first;
    std::uint32_t cur = topo.ni(src).switch_id;
    std::int64_t prev_link = -1;
    for (const std::uint8_t selector : route) {
      const auto ports = topo.output_ports(cur);
      require(selector < ports.size(), "check_deadlock: bad selector");
      const PortRef& ref = ports[selector];
      if (ref.kind == PortRef::Kind::kNi) break;  // ejection channel
      if (prev_link >= 0) {
        deps[static_cast<std::size_t>(prev_link)].push_back(ref.id);
      }
      prev_link = ref.id;
      cur = topo.link(ref.id).to;
    }
  }
  for (auto& d : deps) {
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }

  // Iterative DFS cycle detection with path recovery.
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<std::uint8_t> color(n, kWhite);
  std::vector<std::int64_t> parent(n, -1);

  for (std::uint32_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    // Stack of (node, next-child-index).
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{root, 0}};
    color[root] = kGrey;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      if (child < deps[node].size()) {
        const std::uint32_t next = deps[node][child++];
        if (color[next] == kGrey) {
          // Found a cycle: walk back from `node` to `next`.
          DeadlockReport report;
          report.deadlock_free = false;
          report.cycle.push_back(next);
          for (std::uint32_t s = node; s != next;) {
            report.cycle.push_back(s);
            XPL_ASSERT(parent[s] >= 0);
            s = static_cast<std::uint32_t>(parent[s]);
          }
          std::reverse(report.cycle.begin(), report.cycle.end());
          return report;
        }
        if (color[next] == kWhite) {
          color[next] = kGrey;
          parent[next] = node;
          stack.emplace_back(next, 0);
        }
      } else {
        color[node] = kBlack;
        stack.pop_back();
      }
    }
  }
  return DeadlockReport{};
}

}  // namespace xpl::topology
