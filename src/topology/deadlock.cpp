#include "src/topology/deadlock.hpp"

#include <algorithm>
#include <sstream>

namespace xpl::topology {

VcPolicy make_vc_policy(const Topology& topo, RoutingAlgorithm routing,
                        std::size_t vcs) {
  VcPolicy policy;
  policy.vcs = vcs;
  policy.dateline = vcs > 1 &&
                    routing == RoutingAlgorithm::kShortestPath &&
                    topo.has_datelines();
  return policy;
}

std::string DeadlockReport::to_string(const Topology& topo) const {
  if (deadlock_free) return "deadlock-free";
  std::ostringstream os;
  os << "channel-dependency cycle:";
  for (const Channel& c : cycle) {
    const Link& link = topo.link(c.link);
    os << " " << topo.switch_node(link.from).name << "->"
       << topo.switch_node(link.to).name;
    if (c.vc != 0) os << "@vc" << int(c.vc);
  }
  return os.str();
}

DeadlockReport check_deadlock(const Topology& topo,
                              const RoutingTables& tables,
                              const VcPolicy& policy) {
  require(policy.vcs >= 1, "check_deadlock: vcs must be >= 1");
  // Dependency edges between channel ids (link * vcs + lane): a route
  // traversing l1 on lane v1 and then l2 on lane v2 adds
  // (l1,v1) -> (l2,v2).
  const std::size_t vcs = policy.vcs;
  const std::size_t n = topo.num_links() * vcs;
  std::vector<std::vector<std::uint32_t>> deps(n);
  auto channel = [vcs](std::uint32_t link, std::uint8_t vc) {
    return static_cast<std::uint32_t>(link * vcs + vc);
  };

  for (const auto& [pair, route] : tables.routes) {
    const std::uint32_t src = pair.first;
    // Lanes per link hop: the dateline walk, or the initiator-chosen lane
    // held for the whole route. Without the dateline discipline every
    // initial lane is reachable (round-robin assignment), so each route
    // contributes vcs parallel copies of its dependency chain.
    const std::size_t spreads = policy.dateline ? 1 : vcs;
    std::vector<std::uint8_t> lanes;
    if (policy.dateline) {
      lanes = dateline_route_vcs(topo, src, route, vcs);
    }
    for (std::size_t lane0 = 0; lane0 < spreads; ++lane0) {
      std::uint32_t cur = topo.ni(src).switch_id;
      std::int64_t prev_channel = -1;
      std::size_t hop_link = 0;
      for (const std::uint8_t selector : route) {
        const auto ports = topo.output_ports(cur);
        require(selector < ports.size(), "check_deadlock: bad selector");
        const PortRef& ref = ports[selector];
        if (ref.kind == PortRef::Kind::kNi) break;  // ejection channel
        const std::uint8_t vc =
            policy.dateline ? lanes.at(hop_link)
                            : static_cast<std::uint8_t>(lane0);
        require(vc < vcs, "check_deadlock: lane out of range");
        const std::uint32_t ch = channel(ref.id, vc);
        if (prev_channel >= 0) {
          deps[static_cast<std::size_t>(prev_channel)].push_back(ch);
        }
        prev_channel = ch;
        ++hop_link;
        cur = topo.link(ref.id).to;
      }
    }
  }
  for (auto& d : deps) {
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }

  // Iterative DFS cycle detection with path recovery.
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<std::uint8_t> color(n, kWhite);
  std::vector<std::int64_t> parent(n, -1);

  for (std::uint32_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    // Stack of (node, next-child-index).
    std::vector<std::pair<std::uint32_t, std::size_t>> stack{{root, 0}};
    color[root] = kGrey;
    while (!stack.empty()) {
      auto& [node, child] = stack.back();
      if (child < deps[node].size()) {
        const std::uint32_t next = deps[node][child++];
        if (color[next] == kGrey) {
          // Found a cycle: walk back from `node` to `next`.
          DeadlockReport report;
          report.deadlock_free = false;
          auto to_channel = [vcs](std::uint32_t id) {
            return Channel{static_cast<std::uint32_t>(id / vcs),
                           static_cast<std::uint8_t>(id % vcs)};
          };
          report.cycle.push_back(to_channel(next));
          for (std::uint32_t s = node; s != next;) {
            report.cycle.push_back(to_channel(s));
            XPL_ASSERT(parent[s] >= 0);
            s = static_cast<std::uint32_t>(parent[s]);
          }
          std::reverse(report.cycle.begin(), report.cycle.end());
          return report;
        }
        if (color[next] == kWhite) {
          color[next] = kGrey;
          parent[next] = node;
          stack.emplace_back(next, 0);
        }
      } else {
        color[node] = kBlack;
        stack.pop_back();
      }
    }
  }
  return DeadlockReport{};
}

}  // namespace xpl::topology
