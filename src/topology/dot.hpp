// Graphviz export of topologies.
//
// Design-space exploration produces candidate networks worth eyeballing;
// to_dot renders a topology (switches, NIs, links with pipeline depths)
// as a `dot` digraph. Duplex link pairs collapse to a single double-headed
// edge to keep diagrams readable.
#pragma once

#include <string>

#include "src/topology/topology.hpp"

namespace xpl::topology {

struct DotOptions {
  bool show_nis = true;          ///< draw NI nodes and attachment edges
  bool collapse_duplex = true;   ///< one edge per duplex pair
  bool label_stages = true;      ///< annotate pipelined links
  /// Lanes per link (noc::NetworkConfig::vcs): when > 1 every link edge
  /// is annotated with its VC count, so diagrams show the lane budget
  /// datelines rely on.
  std::size_t vcs = 1;
  /// Render dateline links dashed (the torus/ring wrap links a minimal
  /// route crosses with a lane bump).
  bool show_datelines = true;
};

std::string to_dot(const Topology& topo, const DotOptions& options = {});

/// Writes to_dot() output to `path`.
void save_dot(const Topology& topo, const std::string& path,
              const DotOptions& options = {});

}  // namespace xpl::topology
