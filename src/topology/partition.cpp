#include "src/topology/partition.hpp"

#include <algorithm>
#include <deque>

#include "src/common/error.hpp"

namespace xpl::topology {

namespace {

/// Breadth-first switch order over the undirected link graph, seeded at
/// switch 0 (unvisited components seed in id order, so disconnected
/// inputs still get a total order). Deterministic: neighbors enqueue in
/// link-id order.
std::vector<std::uint32_t> bfs_order(const Topology& topo) {
  const std::size_t n = topo.num_switches();
  std::vector<std::vector<std::uint32_t>> adjacency(n);
  for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(l);
    adjacency[link.from].push_back(link.to);
    adjacency[link.to].push_back(link.from);
  }
  std::vector<std::uint32_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::deque<std::uint32_t> frontier;
  for (std::uint32_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    visited[seed] = true;
    frontier.push_back(seed);
    while (!frontier.empty()) {
      const std::uint32_t s = frontier.front();
      frontier.pop_front();
      order.push_back(s);
      for (std::uint32_t next : adjacency[s]) {
        if (!visited[next]) {
          visited[next] = true;
          frontier.push_back(next);
        }
      }
    }
  }
  return order;
}

}  // namespace

std::vector<std::uint32_t> partition_switches(const Topology& topo,
                                              std::size_t parts) {
  const std::size_t n = topo.num_switches();
  require(parts >= 1 && parts <= n,
          "partition_switches: parts must be in [1, num_switches]");
  std::vector<std::uint32_t> assignment(n, 0);
  if (parts == 1) return assignment;

  // Grid stripe path: usable when every switch has coordinates and the
  // stripe axis is long enough to give each partition its own slab.
  bool have_coords = true;
  int max_x = 0;
  int max_y = 0;
  for (std::uint32_t s = 0; s < n; ++s) {
    const SwitchNode& node = topo.switch_node(s);
    if (node.x < 0 || node.y < 0) {
      have_coords = false;
      break;
    }
    max_x = std::max(max_x, node.x);
    max_y = std::max(max_y, node.y);
  }
  if (have_coords) {
    // Cut perpendicular to the longer axis: fewest links per boundary.
    const bool stripe_x = max_x >= max_y;
    const std::size_t axis = static_cast<std::size_t>(
        (stripe_x ? max_x : max_y) + 1);
    if (axis >= parts) {
      for (std::uint32_t s = 0; s < n; ++s) {
        const SwitchNode& node = topo.switch_node(s);
        const std::size_t pos = static_cast<std::size_t>(
            stripe_x ? node.x : node.y);
        // Balanced contiguous slabs: position p -> floor(p * parts / axis).
        assignment[s] = static_cast<std::uint32_t>(pos * parts / axis);
      }
      return assignment;
    }
  }

  // Fallback: contiguous chunks of the BFS order. Neighborhoods stay
  // together, so the number of cut links stays near the topology's
  // natural bisection even without coordinates.
  const std::vector<std::uint32_t> order = bfs_order(topo);
  for (std::size_t i = 0; i < order.size(); ++i) {
    assignment[order[i]] = static_cast<std::uint32_t>(i * parts / n);
  }
  return assignment;
}

}  // namespace xpl::topology
