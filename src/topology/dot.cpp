#include "src/topology/dot.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "src/common/error.hpp"

namespace xpl::topology {

std::string to_dot(const Topology& topo, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph noc {\n"
     << "  rankdir=LR;\n"
     << "  node [shape=box, style=filled, fillcolor=lightsteelblue];\n";
  for (std::uint32_t s = 0; s < topo.num_switches(); ++s) {
    const auto& node = topo.switch_node(s);
    os << "  sw" << s << " [label=\"" << node.name << "\"";
    if (node.x >= 0 && node.y >= 0) {
      os << ", pos=\"" << node.x << "," << node.y << "!\"";
    }
    os << "];\n";
  }
  if (options.show_nis) {
    for (std::uint32_t n = 0; n < topo.num_nis(); ++n) {
      const auto& ni = topo.ni(n);
      os << "  ni" << n << " [label=\"" << ni.name << "\", shape=ellipse, "
         << "fillcolor=" << (ni.initiator ? "palegreen" : "khaki")
         << "];\n";
      os << "  ni" << n << " -> sw" << ni.switch_id
         << " [dir=both, style=dashed];\n";
    }
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> drawn;
  for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
    const Link& link = topo.link(l);
    bool duplex = false;
    if (options.collapse_duplex) {
      if (drawn.count({link.to, link.from})) continue;  // already drawn
      // Is there a reverse link with the same depth and annotations?
      for (std::uint32_t r = 0; r < topo.num_links(); ++r) {
        const Link& rev = topo.link(r);
        if (rev.from == link.to && rev.to == link.from &&
            rev.stages == link.stages && rev.dateline == link.dateline) {
          duplex = true;
          break;
        }
      }
    }
    drawn.insert({link.from, link.to});
    os << "  sw" << link.from << " -> sw" << link.to;
    os << " [";
    bool first = true;
    auto attr = [&os, &first](const std::string& a) {
      if (!first) os << ", ";
      os << a;
      first = false;
    };
    if (duplex) attr("dir=both");
    // Label: pipeline depth and (when multi-lane) the per-link VC count.
    std::string label;
    if (options.label_stages && link.stages > 0) {
      label = std::to_string(link.stages);
    }
    if (options.vcs > 1) {
      if (!label.empty()) label += "/";
      label += std::to_string(options.vcs) + "vc";
    }
    if (!label.empty()) attr("label=\"" + label + "\"");
    if (options.show_datelines && link.dateline) attr("style=dashed");
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

void save_dot(const Topology& topo, const std::string& path,
              const DotOptions& options) {
  std::ofstream out(path);
  require(out.good(), "save_dot: cannot open " + path);
  out << to_dot(topo, options);
}

}  // namespace xpl::topology
