// Source-route computation — the routing-function half of the paper's
// "topology selection / routing function co-design" step.
//
// xpipes lite switches are source-routed: the whole path is decided at the
// initiator and carried in the header. The compiler computes one Route per
// (source NI, destination NI) pair with one of two algorithms:
//
//  * kShortestPath — BFS over the link graph with deterministic tie
//    breaking (insertion order), valid for any topology;
//  * kXY — dimension-order routing, defined only for switches with grid
//    coordinates (make_mesh/make_torus); provably deadlock-free on meshes;
//  * kUpDown — up*/down* routing over a BFS spanning order (Autonet):
//    shortest path that never takes an up link after a down link;
//    deadlock-free on any topology, used for rings/stars/spidergons.
//
// Each Route entry is the *output port index* to take at the successive
// switches of the path, ending with the port that exits to the
// destination NI (topology.hpp's port numbering).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/packet/header.hpp"
#include "src/topology/topology.hpp"

namespace xpl::topology {

enum class RoutingAlgorithm : std::uint8_t { kShortestPath, kXY, kUpDown };

const char* routing_name(RoutingAlgorithm algorithm);

/// Computes the source route from NI `src` to NI `dst`. Throws xpl::Error
/// if no path exists or kXY is requested without grid coordinates.
Route compute_route(const Topology& topo, std::uint32_t src,
                    std::uint32_t dst, RoutingAlgorithm algorithm);

/// All-pairs routes the compiler programs into the NI LUTs: initiator ->
/// every target (request routes) and target -> every initiator (response
/// routes).
struct RoutingTables {
  /// routes[{src, dst}] — present for every initiator->target and
  /// target->initiator pair.
  std::map<std::pair<std::uint32_t, std::uint32_t>, Route> routes;

  const Route& at(std::uint32_t src, std::uint32_t dst) const;
  /// Longest route in the table, in hops (switch traversals).
  std::size_t max_hops() const;
};

RoutingTables compute_all_routes(const Topology& topo,
                                 RoutingAlgorithm algorithm);

/// Switch sequence visited by a route starting at NI `src` (used by the
/// deadlock checker and tests). Includes the injection switch first.
std::vector<std::uint32_t> route_switch_path(const Topology& topo,
                                             std::uint32_t src,
                                             const Route& route);

/// Lane (virtual channel) of each switch-to-switch link a route traverses
/// under the dateline discipline: a packet starts on lane 0, resets to
/// lane 0 whenever the link vc_class changes, and bumps one lane when it
/// crosses a dateline link. This is the exact rule every switch applies
/// locally (switchlib::SwitchConfig::VcMap::kDateline), so the deadlock
/// checker can analyse the channels the hardware will actually use. The
/// returned vector parallels the route's link hops (the final ejection
/// hop, which exits to an NI, is excluded). Throws xpl::Error if any hop
/// needs a lane >= vcs.
std::vector<std::uint8_t> dateline_route_vcs(const Topology& topo,
                                             std::uint32_t src,
                                             const Route& route,
                                             std::size_t vcs);

}  // namespace xpl::topology
