#include "src/topology/topology.hpp"

#include <algorithm>

namespace xpl::topology {

std::uint32_t Topology::add_switch(std::string name) {
  const auto id = static_cast<std::uint32_t>(switches_.size());
  if (name.empty()) name = "sw" + std::to_string(id);
  switches_.push_back(SwitchNode{std::move(name), -1, -1});
  return id;
}

std::uint32_t Topology::add_link(std::uint32_t from, std::uint32_t to,
                                 std::size_t stages, std::uint8_t vc_class,
                                 bool dateline) {
  require(from < switches_.size() && to < switches_.size(),
          "Topology::add_link: switch id out of range");
  require(from != to, "Topology::add_link: self-loops are not allowed");
  const auto id = static_cast<std::uint32_t>(links_.size());
  links_.push_back(Link{from, to, stages, vc_class, dateline});
  return id;
}

void Topology::add_duplex(std::uint32_t a, std::uint32_t b,
                          std::size_t stages, std::uint8_t vc_class,
                          bool dateline) {
  add_link(a, b, stages, vc_class, dateline);
  add_link(b, a, stages, vc_class, dateline);
}

bool Topology::has_datelines() const {
  for (const Link& l : links_) {
    if (l.dateline) return true;
  }
  return false;
}

std::uint32_t Topology::attach_initiator(std::uint32_t switch_id,
                                         std::string name) {
  require(switch_id < switches_.size(),
          "Topology::attach_initiator: switch id out of range");
  const auto id = static_cast<std::uint32_t>(nis_.size());
  if (name.empty()) name = "ini" + std::to_string(id);
  nis_.push_back(NiNode{std::move(name), switch_id, /*initiator=*/true});
  return id;
}

std::uint32_t Topology::attach_target(std::uint32_t switch_id,
                                      std::string name) {
  require(switch_id < switches_.size(),
          "Topology::attach_target: switch id out of range");
  const auto id = static_cast<std::uint32_t>(nis_.size());
  if (name.empty()) name = "tgt" + std::to_string(id);
  nis_.push_back(NiNode{std::move(name), switch_id, /*initiator=*/false});
  return id;
}

const SwitchNode& Topology::switch_node(std::uint32_t id) const {
  require(id < switches_.size(), "Topology: switch id out of range");
  return switches_[id];
}

SwitchNode& Topology::switch_node(std::uint32_t id) {
  require(id < switches_.size(), "Topology: switch id out of range");
  return switches_[id];
}

const Link& Topology::link(std::uint32_t id) const {
  require(id < links_.size(), "Topology: link id out of range");
  return links_[id];
}

Link& Topology::mutable_link(std::uint32_t id) {
  require(id < links_.size(), "Topology: link id out of range");
  return links_[id];
}

const NiNode& Topology::ni(std::uint32_t id) const {
  require(id < nis_.size(), "Topology: NI id out of range");
  return nis_[id];
}

std::vector<std::uint32_t> Topology::initiator_ids() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < nis_.size(); ++i) {
    if (nis_[i].initiator) out.push_back(i);
  }
  return out;
}

std::vector<std::uint32_t> Topology::target_ids() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < nis_.size(); ++i) {
    if (!nis_[i].initiator) out.push_back(i);
  }
  return out;
}

std::vector<PortRef> Topology::input_ports(std::uint32_t switch_id) const {
  require(switch_id < switches_.size(), "Topology: switch id out of range");
  std::vector<PortRef> ports;
  for (std::uint32_t l = 0; l < links_.size(); ++l) {
    if (links_[l].to == switch_id) {
      ports.push_back(PortRef{PortRef::Kind::kLink, l});
    }
  }
  for (std::uint32_t n = 0; n < nis_.size(); ++n) {
    if (nis_[n].switch_id == switch_id) {
      ports.push_back(PortRef{PortRef::Kind::kNi, n});
    }
  }
  return ports;
}

std::vector<PortRef> Topology::output_ports(std::uint32_t switch_id) const {
  require(switch_id < switches_.size(), "Topology: switch id out of range");
  std::vector<PortRef> ports;
  for (std::uint32_t l = 0; l < links_.size(); ++l) {
    if (links_[l].from == switch_id) {
      ports.push_back(PortRef{PortRef::Kind::kLink, l});
    }
  }
  for (std::uint32_t n = 0; n < nis_.size(); ++n) {
    if (nis_[n].switch_id == switch_id) {
      ports.push_back(PortRef{PortRef::Kind::kNi, n});
    }
  }
  return ports;
}

std::size_t Topology::input_index(std::uint32_t switch_id,
                                  const PortRef& ref) const {
  const auto ports = input_ports(switch_id);
  const auto it = std::find(ports.begin(), ports.end(), ref);
  return it == ports.end() ? npos
                           : static_cast<std::size_t>(it - ports.begin());
}

std::size_t Topology::output_index(std::uint32_t switch_id,
                                   const PortRef& ref) const {
  const auto ports = output_ports(switch_id);
  const auto it = std::find(ports.begin(), ports.end(), ref);
  return it == ports.end() ? npos
                           : static_cast<std::size_t>(it - ports.begin());
}

std::size_t Topology::max_radix_in() const {
  std::size_t radix = 0;
  for (std::uint32_t s = 0; s < switches_.size(); ++s) {
    radix = std::max(radix, input_ports(s).size());
  }
  return radix;
}

std::size_t Topology::max_radix_out() const {
  std::size_t radix = 0;
  for (std::uint32_t s = 0; s < switches_.size(); ++s) {
    radix = std::max(radix, output_ports(s).size());
  }
  return radix;
}

void Topology::validate() const {
  require(!switches_.empty(), "Topology: no switches");
  require(!nis_.empty(), "Topology: no network interfaces");
  for (std::uint32_t s = 0; s < switches_.size(); ++s) {
    require(!input_ports(s).empty() && !output_ports(s).empty(),
            "Topology: switch " + switches_[s].name + " has unused ports");
  }
  // Reachability of every switch from every NI's switch (strong
  // connectivity over the link graph) guarantees routes exist.
  const std::size_t n = switches_.size();
  for (std::uint32_t start = 0; start < n; ++start) {
    std::vector<bool> seen(n, false);
    std::vector<std::uint32_t> stack{start};
    seen[start] = true;
    while (!stack.empty()) {
      const std::uint32_t s = stack.back();
      stack.pop_back();
      for (const Link& l : links_) {
        if (l.from == s && !seen[l.to]) {
          seen[l.to] = true;
          stack.push_back(l.to);
        }
      }
    }
    if (n > 1) {
      for (std::uint32_t t = 0; t < n; ++t) {
        require(seen[t], "Topology: switch " + switches_[t].name +
                             " unreachable from " + switches_[start].name);
      }
    }
  }
}

}  // namespace xpl::topology
