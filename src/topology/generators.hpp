// Topology library: regular topology generators.
//
// The paper's design flow selects among a library of candidate topologies
// (SunMap's "topology library") before instantiating it through the
// xpipesCompiler. These generators build the usual suspects; NIs are
// attached either by the caller or through the `initiators`/`targets`
// per-switch counts.
#pragma once

#include <cstdint>
#include <vector>

#include "src/topology/topology.hpp"

namespace xpl::topology {

/// Per-switch NI attachment plan used by the generators: entry i gives the
/// number of initiator and target NIs on switch i. An empty vector means
/// one initiator per switch (a common default for symmetric studies).
struct NiPlan {
  std::vector<std::size_t> initiators;
  std::vector<std::size_t> targets;

  /// Uniform plan: the same counts on every switch.
  static NiPlan uniform(std::size_t num_switches, std::size_t ini_each,
                        std::size_t tgt_each);
};

/// width x height 2D mesh with duplex grid links. Switch (x, y) has id
/// y*width + x and its coordinates set for XY routing.
Topology make_mesh(std::size_t width, std::size_t height, const NiPlan& plan,
                   std::size_t link_stages = 0);

/// Concentrated mesh: a width x height mesh whose every switch hosts
/// `concentration` initiator NIs and `concentration` target NIs — the
/// standard way to reach 1k-node-class networks without 1k switches
/// (a 16x16 cmesh at c=4 carries 2048 NIs on 256 switches). Defaults to
/// one relay stage per grid link: concentrated tiles are physically
/// larger, and the extra stage lets partitioned simulation run
/// lookahead-2 epochs (see DESIGN.md §10).
Topology make_cmesh(std::size_t width, std::size_t height,
                    std::size_t concentration, std::size_t link_stages = 1);

/// 2D torus: mesh plus wrap-around duplex links.
Topology make_torus(std::size_t width, std::size_t height, const NiPlan& plan,
                    std::size_t link_stages = 0);

/// Bidirectional ring of `count` switches.
Topology make_ring(std::size_t count, const NiPlan& plan,
                   std::size_t link_stages = 0);

/// Star: switch 0 is the hub, switches 1..count-1 are leaves with duplex
/// links to the hub.
Topology make_star(std::size_t leaves, const NiPlan& plan,
                   std::size_t link_stages = 0);

/// Spidergon (STMicroelectronics): ring plus cross links to the opposite
/// switch; `count` must be even.
Topology make_spidergon(std::size_t count, const NiPlan& plan,
                        std::size_t link_stages = 0);

/// Complete binary tree with `levels` levels; duplex parent-child links.
/// NIs attach per plan (indexed by switch id, root = 0, breadth first).
Topology make_binary_tree(std::size_t levels, const NiPlan& plan,
                          std::size_t link_stages = 0);

/// The paper's mesh case study: a 3x4 mesh hosting 8 processors
/// (initiator NIs) and 11 slaves (target NIs), 19 NIs spread over the 12
/// switches. Returns the topology; initiator NI ids are 0..7 within the
/// NI id space in attachment order.
Topology make_paper_case_study(std::size_t link_stages = 0);

}  // namespace xpl::topology
