// Channel-dependency-graph deadlock analysis.
//
// Wormhole networks deadlock when routes create a cycle in the channel
// dependency graph (Dally & Seitz). The xpipesCompiler runs this check on
// the routing tables before instantiating a network: XY routes on meshes
// pass by construction; arbitrary shortest-path routes on rings/tori may
// not, and the flow reports the offending cycle.
//
// The graph is virtual-channel aware: a channel is a (link, lane) pair,
// so lane disciplines that break cycles — the dateline scheme minimal
// ring/torus/spidergon routes use — are *proved* cycle-free here rather
// than assumed. A VcPolicy describes how the network assigns lanes:
//
//  * dateline == false — every packet keeps the lane its initiator chose
//    (round-robin spreading). The graph is vcs disjoint copies of the
//    single-lane graph, so the verdict matches the seed checker exactly
//    at vcs == 1.
//  * dateline == true — lanes follow routing::dateline_route_vcs, the
//    same local rule the switches apply (reset on vc_class change, bump
//    on dateline links).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/topology/routing.hpp"
#include "src/topology/topology.hpp"

namespace xpl::topology {

/// How the network maps packets onto virtual channels; the checker must
/// analyse the same channels the switches will use.
struct VcPolicy {
  std::size_t vcs = 1;
  /// true = dateline lane discipline (minimal routing on a topology with
  /// dateline-marked links); false = initiator-chosen lane kept end to
  /// end.
  bool dateline = false;
};

/// The policy a Network assembles for `routing` with `vcs` lanes on
/// `topo`: dateline discipline exactly when minimal routing meets
/// dateline-marked links and more than one lane exists.
VcPolicy make_vc_policy(const Topology& topo, RoutingAlgorithm routing,
                        std::size_t vcs);

/// One node of the channel dependency graph.
struct Channel {
  std::uint32_t link = 0;
  std::uint8_t vc = 0;

  bool operator==(const Channel&) const = default;
};

struct DeadlockReport {
  bool deadlock_free = true;
  /// One cycle of channels witnessing the problem (empty when free).
  std::vector<Channel> cycle;

  std::string to_string(const Topology& topo) const;
};

/// Builds the channel dependency graph induced by `tables` under `policy`
/// and searches it for cycles. Channels are (switch-to-switch link, lane)
/// pairs (NI injection/ejection channels cannot participate in cycles and
/// are excluded). The default policy is the seed's single-lane network.
DeadlockReport check_deadlock(const Topology& topo,
                              const RoutingTables& tables,
                              const VcPolicy& policy = {});

}  // namespace xpl::topology
