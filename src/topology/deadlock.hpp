// Channel-dependency-graph deadlock analysis.
//
// Wormhole networks deadlock when routes create a cycle in the channel
// dependency graph (Dally & Seitz). The xpipesCompiler runs this check on
// the routing tables before instantiating a network: XY routes on meshes
// pass by construction; arbitrary shortest-path routes on rings/tori may
// not, and the flow reports the offending cycle.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/topology/routing.hpp"
#include "src/topology/topology.hpp"

namespace xpl::topology {

struct DeadlockReport {
  bool deadlock_free = true;
  /// One cycle of link ids witnessing the problem (empty when free).
  std::vector<std::uint32_t> cycle;

  std::string to_string(const Topology& topo) const;
};

/// Builds the channel dependency graph induced by `tables` and searches it
/// for cycles. Channels are the topology's switch-to-switch links (NI
/// injection/ejection channels cannot participate in cycles and are
/// excluded).
DeadlockReport check_deadlock(const Topology& topo,
                              const RoutingTables& tables);

}  // namespace xpl::topology
