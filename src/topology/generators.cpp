#include "src/topology/generators.hpp"

#include <string>

namespace xpl::topology {

namespace {

void attach_plan(Topology& topo, const NiPlan& plan) {
  const std::size_t n = topo.num_switches();
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::size_t ini =
        plan.initiators.empty() ? 1 : plan.initiators.at(s);
    const std::size_t tgt = plan.targets.empty() ? 0 : plan.targets.at(s);
    for (std::size_t i = 0; i < ini; ++i) topo.attach_initiator(s);
    for (std::size_t i = 0; i < tgt; ++i) topo.attach_target(s);
  }
}

}  // namespace

NiPlan NiPlan::uniform(std::size_t num_switches, std::size_t ini_each,
                       std::size_t tgt_each) {
  NiPlan plan;
  plan.initiators.assign(num_switches, ini_each);
  plan.targets.assign(num_switches, tgt_each);
  return plan;
}

Topology make_mesh(std::size_t width, std::size_t height, const NiPlan& plan,
                   std::size_t link_stages) {
  require(width >= 1 && height >= 1, "make_mesh: degenerate dimensions");
  Topology topo;
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const std::uint32_t id = topo.add_switch(
          "sw_" + std::to_string(x) + "_" + std::to_string(y));
      topo.switch_node(id).x = static_cast<int>(x);
      topo.switch_node(id).y = static_cast<int>(y);
    }
  }
  auto at = [width](std::size_t x, std::size_t y) {
    return static_cast<std::uint32_t>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) topo.add_duplex(at(x, y), at(x + 1, y), link_stages);
      if (y + 1 < height) topo.add_duplex(at(x, y), at(x, y + 1), link_stages);
    }
  }
  attach_plan(topo, plan);
  return topo;
}

Topology make_cmesh(std::size_t width, std::size_t height,
                    std::size_t concentration, std::size_t link_stages) {
  require(concentration >= 1, "make_cmesh: need concentration >= 1");
  return make_mesh(width, height,
                   NiPlan::uniform(width * height, concentration,
                                   concentration),
                   link_stages);
}

Topology make_torus(std::size_t width, std::size_t height, const NiPlan& plan,
                    std::size_t link_stages) {
  require(width >= 3 && height >= 3,
          "make_torus: need at least 3x3 (wrap links would duplicate)");
  Topology topo;
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      const std::uint32_t id = topo.add_switch(
          "sw_" + std::to_string(x) + "_" + std::to_string(y));
      topo.switch_node(id).x = static_cast<int>(x);
      topo.switch_node(id).y = static_cast<int>(y);
    }
  }
  auto at = [width](std::size_t x, std::size_t y) {
    return static_cast<std::uint32_t>(y * width + x);
  };
  // VC annotations for dateline minimal routing: x links are class 0, y
  // links class 1 (minimal routes go x-then-y), and the wrap-around link
  // of each ring direction is its dateline.
  //
  // Links are inserted one direction at a time (+x, -x, +y, -y) so that
  // from every switch the positive direction carries the smaller link id:
  // the deterministic router then resolves equal-distance ties to one
  // uniform rotation, like a hardware DOR router's fixed tie bit. Mixed
  // tie directions on even-sized tori can accidentally leave the no-VC
  // channel-dependency graph acyclic, masking the wrap-cycle hazard the
  // dateline lanes exist to break.
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      topo.add_link(at(x, y), at((x + 1) % width, y), link_stages,
                    /*vc_class=*/0, /*dateline=*/x + 1 == width);
    }
  }
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      topo.add_link(at((x + 1) % width, y), at(x, y), link_stages,
                    /*vc_class=*/0, /*dateline=*/x + 1 == width);
    }
  }
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      topo.add_link(at(x, y), at(x, (y + 1) % height), link_stages,
                    /*vc_class=*/1, /*dateline=*/y + 1 == height);
    }
  }
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      topo.add_link(at(x, (y + 1) % height), at(x, y), link_stages,
                    /*vc_class=*/1, /*dateline=*/y + 1 == height);
    }
  }
  attach_plan(topo, plan);
  return topo;
}

Topology make_ring(std::size_t count, const NiPlan& plan,
                   std::size_t link_stages) {
  require(count >= 3, "make_ring: need at least 3 switches");
  Topology topo;
  for (std::size_t i = 0; i < count; ++i) topo.add_switch();
  // The wrap-around pair closes both unidirectional ring cycles; mark it
  // as the dateline so minimal routes can break them with a lane bump.
  for (std::size_t i = 0; i < count; ++i) {
    topo.add_duplex(static_cast<std::uint32_t>(i),
                    static_cast<std::uint32_t>((i + 1) % count), link_stages,
                    /*vc_class=*/0, /*dateline=*/i + 1 == count);
  }
  attach_plan(topo, plan);
  return topo;
}

Topology make_star(std::size_t leaves, const NiPlan& plan,
                   std::size_t link_stages) {
  require(leaves >= 1, "make_star: need at least one leaf");
  Topology topo;
  const std::uint32_t hub = topo.add_switch("hub");
  for (std::size_t i = 0; i < leaves; ++i) {
    const std::uint32_t leaf = topo.add_switch("leaf" + std::to_string(i));
    topo.add_duplex(hub, leaf, link_stages);
  }
  attach_plan(topo, plan);
  return topo;
}

Topology make_spidergon(std::size_t count, const NiPlan& plan,
                        std::size_t link_stages) {
  require(count >= 4 && count % 2 == 0,
          "make_spidergon: need an even count >= 4");
  Topology topo;
  for (std::size_t i = 0; i < count; ++i) topo.add_switch();
  // VC annotations mirror the classic spidergon "across-first" scheme:
  // cross links are class 0 and ring links class 1, so minimal routes take
  // the (at most one) cross hop before walking the ring, and ring wrap
  // datelines break the two ring cycles exactly as in make_ring. Cross
  // links then have no incoming ring dependencies and cannot cycle.
  for (std::size_t i = 0; i < count; ++i) {
    topo.add_duplex(static_cast<std::uint32_t>(i),
                    static_cast<std::uint32_t>((i + 1) % count), link_stages,
                    /*vc_class=*/1, /*dateline=*/i + 1 == count);
  }
  for (std::size_t i = 0; i < count / 2; ++i) {
    topo.add_duplex(static_cast<std::uint32_t>(i),
                    static_cast<std::uint32_t>(i + count / 2), link_stages,
                    /*vc_class=*/0, /*dateline=*/false);
  }
  attach_plan(topo, plan);
  return topo;
}

Topology make_binary_tree(std::size_t levels, const NiPlan& plan,
                          std::size_t link_stages) {
  require(levels >= 1, "make_binary_tree: need at least one level");
  Topology topo;
  const std::size_t count = (std::size_t{1} << levels) - 1;
  for (std::size_t i = 0; i < count; ++i) topo.add_switch();
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t left = 2 * i + 1;
    const std::size_t right = 2 * i + 2;
    if (left < count) {
      topo.add_duplex(static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(left), link_stages);
    }
    if (right < count) {
      topo.add_duplex(static_cast<std::uint32_t>(i),
                      static_cast<std::uint32_t>(right), link_stages);
    }
  }
  attach_plan(topo, plan);
  return topo;
}

Topology make_paper_case_study(std::size_t link_stages) {
  // 3 columns x 4 rows of switches; 8 processors and 11 slaves as in the
  // paper's "Power of Abstraction" mesh study. Processors sit on the outer
  // columns, slaves fill the remaining attachment points — the exact
  // placement is not given in the paper, so we spread NIs to keep the
  // heavier 6x4 switches in the middle column, matching the two switch
  // configurations (4x4 and 6x4) it reports.
  NiPlan plan;
  plan.initiators = {1, 0, 1,   // row 0
                     1, 0, 1,   // row 1
                     1, 0, 1,   // row 2
                     1, 0, 1};  // row 3
  plan.targets = {0, 2, 1,      // row 0
                  0, 2, 1,      // row 1
                  0, 2, 0,      // row 2
                  1, 2, 0};     // row 3
  return make_mesh(3, 4, plan, link_stages);
}

}  // namespace xpl::topology
