#include "src/topology/routing.hpp"

#include <algorithm>
#include <deque>

namespace xpl::topology {

const char* routing_name(RoutingAlgorithm algorithm) {
  switch (algorithm) {
    case RoutingAlgorithm::kShortestPath:
      return "shortest-path";
    case RoutingAlgorithm::kXY:
      return "xy";
    case RoutingAlgorithm::kUpDown:
      return "up-down";
  }
  return "?";
}

namespace {

// Outgoing link ids per switch, in link-insertion order — the same order
// the old whole-link-table scans explored, so every path below is
// byte-identical to what the unindexed code produced. Built once per
// compute_route / compute_all_routes call instead of rescanning all L
// links for every visited switch (which made each route O(S*L) and
// compute_all_routes worse than quadratic on large meshes). The sorted
// distinct vc_class table rides along for the same reason: class-
// monotone BFS needs it per path, not per all-pairs table.
struct Adjacency {
  std::vector<std::vector<std::uint32_t>> out;  ///< link ids per switch
  std::vector<std::uint8_t> classes;            ///< sorted distinct classes
};

Adjacency build_adjacency(const Topology& topo) {
  Adjacency adj;
  adj.out.resize(topo.num_switches());
  for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
    adj.out[topo.link(l).from].push_back(l);
    adj.classes.push_back(topo.link(l).vc_class);
  }
  std::sort(adj.classes.begin(), adj.classes.end());
  adj.classes.erase(std::unique(adj.classes.begin(), adj.classes.end()),
                    adj.classes.end());
  return adj;
}

// BFS over switches; returns the link ids of a shortest path from_sw ->
// to_sw (empty if from_sw == to_sw). Deterministic: links are explored in
// insertion order.
//
// Paths are *class-monotone*: links are traversed in non-decreasing
// vc_class order, the structure the dateline lane discipline needs (torus
// routes go x-then-y, spidergon routes take the cross link first). On a
// topology whose links all share one class — every mesh, ring, star, tree
// and custom topology without annotations — the phase dimension collapses
// and this is byte-for-byte the plain BFS the seed shipped. On annotated
// topologies (make_torus, make_spidergon) class-monotone shortest paths
// have the same length as unconstrained ones: the dimensions of a torus
// displace independently, and a spidergon cross hop commutes with ring
// hops.
std::vector<std::uint32_t> bfs_path(const Topology& topo,
                                    const Adjacency& adj,
                                    std::uint32_t from_sw,
                                    std::uint32_t to_sw) {
  const std::size_t n = topo.num_switches();

  // Phase = index of the last-taken link's class in the precomputed
  // distinct-class table. One class (the common case) keeps the state
  // space at n.
  const std::vector<std::uint8_t>& classes = adj.classes;
  const std::size_t phases = std::max<std::size_t>(classes.size(), 1);
  auto phase_of = [&](std::uint8_t cls) {
    return static_cast<std::size_t>(
        std::lower_bound(classes.begin(), classes.end(), cls) -
        classes.begin());
  };

  auto idx = [&](std::uint32_t sw, std::size_t phase) {
    return sw * phases + phase;
  };
  // -2 unseen, -1 start; otherwise packed (predecessor state, link).
  std::vector<std::int64_t> via(n * phases, -2);
  std::deque<std::pair<std::uint32_t, std::size_t>> queue;
  queue.emplace_back(from_sw, 0);  // phase 0 = lowest class: allows any link
  via[idx(from_sw, 0)] = -1;
  std::int64_t final_state = -1;
  while (!queue.empty()) {
    const auto [s, phase] = queue.front();
    queue.pop_front();
    if (s == to_sw) {
      final_state = static_cast<std::int64_t>(idx(s, phase));
      break;
    }
    for (const std::uint32_t l : adj.out[s]) {
      const Link& link = topo.link(l);
      const std::size_t link_phase = phase_of(link.vc_class);
      if (link_phase < phase) continue;  // class order is non-decreasing
      if (via[idx(link.to, link_phase)] == -2) {
        via[idx(link.to, link_phase)] =
            static_cast<std::int64_t>(idx(s, phase)) * 0x100000000ll +
            static_cast<std::int64_t>(l);
        queue.emplace_back(link.to, link_phase);
      }
    }
  }
  require(final_state >= 0,
          "compute_route: destination switch unreachable by a "
          "class-monotone path");
  std::vector<std::uint32_t> path;
  std::int64_t state = final_state;
  while (via[static_cast<std::size_t>(state)] != -1) {
    const std::int64_t packed = via[static_cast<std::size_t>(state)];
    path.push_back(static_cast<std::uint32_t>(packed & 0xFFFFFFFFll));
    state = packed >> 32;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

// Dimension-order: full X displacement, then Y. Requires coordinates and
// a grid link in the needed direction at every step.
std::vector<std::uint32_t> xy_path(const Topology& topo,
                                   const Adjacency& adj,
                                   std::uint32_t from_sw,
                                   std::uint32_t to_sw) {
  std::vector<std::uint32_t> path;
  std::uint32_t cur = from_sw;
  auto step_toward = [&](bool x_dim) {
    const SwitchNode& here = topo.switch_node(cur);
    const SwitchNode& goal = topo.switch_node(to_sw);
    require(here.x >= 0 && here.y >= 0 && goal.x >= 0 && goal.y >= 0,
            "compute_route: XY routing needs grid coordinates");
    const int want = x_dim ? (goal.x > here.x ? 1 : goal.x < here.x ? -1 : 0)
                           : (goal.y > here.y ? 1 : goal.y < here.y ? -1 : 0);
    if (want == 0) return false;
    for (const std::uint32_t l : adj.out[cur]) {
      const Link& link = topo.link(l);
      const SwitchNode& next = topo.switch_node(link.to);
      const int dx = next.x - here.x;
      const int dy = next.y - here.y;
      if (x_dim && dx == want && dy == 0) {
        path.push_back(l);
        cur = link.to;
        return true;
      }
      if (!x_dim && dy == want && dx == 0) {
        path.push_back(l);
        cur = link.to;
        return true;
      }
    }
    throw Error("compute_route: grid link missing for XY step");
  };
  while (step_toward(/*x_dim=*/true)) {
  }
  while (step_toward(/*x_dim=*/false)) {
  }
  XPL_ASSERT(cur == to_sw);
  return path;
}

// Up*/down* routing (Autonet): assign each switch a BFS level from switch
// 0; a link is "up" when it goes to a strictly lower (level, id) pair.
// Legal paths take zero or more up links then zero or more down links —
// the channel dependency graph over such paths is acyclic on any
// topology. BFS over (switch, phase) states finds the shortest legal
// path.
std::vector<std::uint32_t> updown_path(const Topology& topo,
                                       const Adjacency& adj,
                                       std::uint32_t from_sw,
                                       std::uint32_t to_sw) {
  const std::size_t n = topo.num_switches();
  std::vector<std::size_t> level(n, static_cast<std::size_t>(-1));
  {
    std::deque<std::uint32_t> queue{0};
    level[0] = 0;
    while (!queue.empty()) {
      const std::uint32_t s = queue.front();
      queue.pop_front();
      for (const std::uint32_t l : adj.out[s]) {
        const Link& link = topo.link(l);
        if (level[link.to] == static_cast<std::size_t>(-1)) {
          level[link.to] = level[s] + 1;
          queue.push_back(link.to);
        }
      }
    }
  }
  auto is_up = [&](const Link& link) {
    return level[link.to] < level[link.from] ||
           (level[link.to] == level[link.from] && link.to < link.from);
  };

  // States: phase 0 = still allowed to go up, phase 1 = down only.
  constexpr std::size_t kPhases = 2;
  std::vector<std::int64_t> via(n * kPhases, -2);  // -2 unseen, -1 start
  auto idx = [&](std::uint32_t sw, std::size_t phase) {
    return sw * kPhases + phase;
  };
  std::deque<std::pair<std::uint32_t, std::size_t>> queue;
  queue.emplace_back(from_sw, 0);
  via[idx(from_sw, 0)] = -1;
  std::int64_t final_state = -1;
  while (!queue.empty()) {
    const auto [s, phase] = queue.front();
    queue.pop_front();
    if (s == to_sw) {
      final_state = static_cast<std::int64_t>(idx(s, phase));
      break;
    }
    for (const std::uint32_t l : adj.out[s]) {
      const Link& link = topo.link(l);
      const bool up = is_up(link);
      if (phase == 1 && up) continue;  // no up after down
      const std::size_t next_phase = up ? phase : 1;
      if (via[idx(link.to, next_phase)] == -2) {
        via[idx(link.to, next_phase)] =
            static_cast<std::int64_t>(idx(s, phase)) * 0x100000000ll +
            static_cast<std::int64_t>(l);
        queue.emplace_back(link.to, next_phase);
      }
    }
  }
  require(final_state >= 0, "compute_route: no up*/down* path");
  std::vector<std::uint32_t> path;
  std::int64_t state = final_state;
  while (via[static_cast<std::size_t>(state)] != -1) {
    const std::int64_t packed = via[static_cast<std::size_t>(state)];
    path.push_back(static_cast<std::uint32_t>(packed & 0xFFFFFFFFll));
    state = packed >> 32;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

// compute_route with a caller-provided adjacency index, so all-pairs
// table construction indexes the topology once instead of per route.
Route compute_route_indexed(const Topology& topo, const Adjacency& adj,
                            std::uint32_t src, std::uint32_t dst,
                            RoutingAlgorithm algorithm) {
  require(src < topo.num_nis() && dst < topo.num_nis(),
          "compute_route: NI id out of range");
  require(src != dst, "compute_route: src and dst NIs are the same");
  const std::uint32_t from_sw = topo.ni(src).switch_id;
  const std::uint32_t to_sw = topo.ni(dst).switch_id;

  std::vector<std::uint32_t> links;
  switch (algorithm) {
    case RoutingAlgorithm::kShortestPath:
      links = bfs_path(topo, adj, from_sw, to_sw);
      break;
    case RoutingAlgorithm::kXY:
      links = xy_path(topo, adj, from_sw, to_sw);
      break;
    case RoutingAlgorithm::kUpDown:
      links = updown_path(topo, adj, from_sw, to_sw);
      break;
  }

  // Translate the link path into per-switch output-port selectors.
  Route route;
  std::uint32_t cur = from_sw;
  for (const std::uint32_t l : links) {
    const std::size_t port =
        topo.output_index(cur, PortRef{PortRef::Kind::kLink, l});
    XPL_ASSERT(port != Topology::npos);
    route.push_back(static_cast<std::uint8_t>(port));
    cur = topo.link(l).to;
  }
  // Final hop: exit the last switch toward the destination NI.
  const std::size_t exit_port =
      topo.output_index(cur, PortRef{PortRef::Kind::kNi, dst});
  XPL_ASSERT(exit_port != Topology::npos);
  route.push_back(static_cast<std::uint8_t>(exit_port));
  return route;
}

}  // namespace

Route compute_route(const Topology& topo, std::uint32_t src,
                    std::uint32_t dst, RoutingAlgorithm algorithm) {
  return compute_route_indexed(topo, build_adjacency(topo), src, dst,
                               algorithm);
}

const Route& RoutingTables::at(std::uint32_t src, std::uint32_t dst) const {
  const auto it = routes.find({src, dst});
  require(it != routes.end(), "RoutingTables: no route for pair");
  return it->second;
}

std::size_t RoutingTables::max_hops() const {
  std::size_t hops = 0;
  for (const auto& [key, route] : routes) {
    hops = std::max(hops, route.size());
  }
  return hops;
}

RoutingTables compute_all_routes(const Topology& topo,
                                 RoutingAlgorithm algorithm) {
  // One adjacency index for the whole all-pairs table.
  const Adjacency adj = build_adjacency(topo);
  RoutingTables tables;
  for (const std::uint32_t ini : topo.initiator_ids()) {
    for (const std::uint32_t tgt : topo.target_ids()) {
      tables.routes[{ini, tgt}] =
          compute_route_indexed(topo, adj, ini, tgt, algorithm);
      tables.routes[{tgt, ini}] =
          compute_route_indexed(topo, adj, tgt, ini, algorithm);
    }
  }
  return tables;
}

std::vector<std::uint8_t> dateline_route_vcs(const Topology& topo,
                                             std::uint32_t src,
                                             const Route& route,
                                             std::size_t vcs) {
  std::vector<std::uint8_t> lanes;
  std::uint32_t cur = topo.ni(src).switch_id;
  std::int64_t prev_link = -1;
  std::uint8_t vc = 0;
  for (std::size_t hop = 0; hop < route.size(); ++hop) {
    const auto ports = topo.output_ports(cur);
    require(route[hop] < ports.size(),
            "dateline_route_vcs: selector out of range");
    const PortRef& ref = ports[route[hop]];
    if (ref.kind == PortRef::Kind::kNi) break;  // ejection keeps the lane
    const Link& link = topo.link(ref.id);
    if (prev_link < 0 ||
        topo.link(static_cast<std::uint32_t>(prev_link)).vc_class !=
            link.vc_class) {
      vc = 0;  // injection or routing-phase change: back to lane 0
    }
    if (link.dateline) ++vc;
    require(vc < vcs, "dateline_route_vcs: route needs lane " +
                          std::to_string(int(vc)) + " but the network has " +
                          std::to_string(vcs) + " lane(s)");
    lanes.push_back(vc);
    prev_link = ref.id;
    cur = link.to;
  }
  return lanes;
}

std::vector<std::uint32_t> route_switch_path(const Topology& topo,
                                             std::uint32_t src,
                                             const Route& route) {
  std::vector<std::uint32_t> path;
  std::uint32_t cur = topo.ni(src).switch_id;
  path.push_back(cur);
  for (std::size_t hop = 0; hop < route.size(); ++hop) {
    const auto ports = topo.output_ports(cur);
    require(route[hop] < ports.size(),
            "route_switch_path: selector out of range");
    const PortRef& ref = ports[route[hop]];
    if (ref.kind == PortRef::Kind::kNi) {
      require(hop + 1 == route.size(),
              "route_switch_path: route continues past an NI exit");
      break;
    }
    cur = topo.link(ref.id).to;
    path.push_back(cur);
  }
  return path;
}

}  // namespace xpl::topology
