// Canonical numeric rendering for sweep specs and result exports.
//
// One formatter backs both the spec's canonical form and the CSV/JSON
// exporters, so "byte-identical output" and "round-trips exactly" are the
// same guarantee: enough digits to round-trip the values people write in
// specs, short for the common ones ("0.05", "800").
#pragma once

#include <cstdio>
#include <string>

namespace xpl::sweep {

inline std::string fmt_double(double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  return buf;
}

}  // namespace xpl::sweep
