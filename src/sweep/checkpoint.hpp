// Resumable campaigns: the checkpoint sidecar.
//
// A checkpoint captures everything needed to continue an interrupted
// grid campaign: the canonical spec text (so `xsweep --resume <ckpt>`
// needs no other input and can refuse a mismatched spec) and every
// result produced so far, keyed by campaign index. Because a point's
// identity and RNG seeds derive from the spec and its grid cell alone
// (spec.hpp), a resumed campaign's exports are byte-identical to an
// uninterrupted run at any --jobs — the golden suite pins this.
//
// The sidecar is a versioned line-oriented text format (docs/FORMATS.md
// §5). Doubles are stored as C99 hexfloats (%a), which round-trip IEEE
// values exactly — the restored table reproduces the CSV/JSON bytes the
// uninterrupted run would have produced. save_checkpoint writes via a
// temp file + rename so a kill mid-write never corrupts the sidecar.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/sweep/result.hpp"
#include "src/sweep/spec.hpp"

namespace xpl::sweep {

struct Checkpoint {
  /// Canonical campaign spec (write_sweep form) — embedded so resume is
  /// self-contained and spec drift is detectable.
  std::string spec_text;
  /// Total campaign points (spec.num_points() at save time).
  std::size_t num_points = 0;
  /// Evaluated rows in campaign-index order. Points are not serialized:
  /// each row's SweepPoint is re-derived from the spec by index on load.
  std::vector<SweepResult> results;
};

/// Snapshot of a (possibly partial) table: keeps only evaluated rows.
Checkpoint make_checkpoint(const SweepSpec& spec, const ResultTable& table);

/// Parses the embedded spec, verifies it round-trips to the stored bytes
/// and matches num_points, and rebinds every stored row to its re-derived
/// SweepPoint. Throws xpl::Error on version/shape mismatch.
SweepSpec checkpoint_spec(Checkpoint& ckpt);

std::string write_checkpoint(const Checkpoint& ckpt);
/// Throws xpl::Error with a line number on malformed input.
Checkpoint parse_checkpoint(const std::string& text);

Checkpoint load_checkpoint(const std::string& path);
/// Atomic: writes `<path>.tmp` then renames over `path`.
void save_checkpoint(const Checkpoint& ckpt, const std::string& path);

}  // namespace xpl::sweep
