// Campaign result aggregation, Pareto selection and export.
//
// One SweepResult per campaign point, held in campaign order so exports
// are byte-identical no matter how many worker threads produced them.
// The exporters are the tool-facing contract: CSV for spreadsheets and
// plotting, JSON for the BENCH_*.json perf-trajectory tracking described
// in README.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sweep/spec.hpp"

namespace xpl::sweep {

/// Everything measured for one campaign point. `ok == false` records a
/// point that failed to build or run (e.g. a flit width too narrow for
/// the topology's route field) — the campaign keeps going.
struct SweepResult {
  SweepPoint point;
  bool ok = false;
  /// True once the point has actually been simulated (run_point) or
  /// restored from a campaign checkpoint — distinguishes a *failed* row
  /// (ok == false, evaluated) from a *pending* one in a halted resumable
  /// campaign. Not exported.
  bool evaluated = false;
  std::string error;

  // Simulation view.
  std::uint64_t transactions = 0;
  double avg_latency_cycles = 0.0;
  double p95_latency_cycles = 0.0;
  double throughput_tpc = 0.0;  ///< completed transactions per cycle
  std::uint64_t link_flits = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t credit_stalls = 0;  ///< credit flow control only
  double avg_link_utilization = 0.0;

  // Synthesis view (src/synth/estimator at point.target_mhz).
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  double fmax_mhz = 0.0;
};

/// Fixed-size table indexed by campaign point; workers fill disjoint
/// slots, readers see campaign order.
class ResultTable {
 public:
  ResultTable() = default;
  explicit ResultTable(std::size_t num_points) : rows_(num_points) {}

  std::size_t size() const { return rows_.size(); }
  const std::vector<SweepResult>& rows() const { return rows_; }
  const SweepResult& row(std::size_t i) const { return rows_.at(i); }

  /// Stores `result` at its point's campaign index.
  void set(SweepResult result);

  /// Declares that the producing campaign swept the flow-control axis,
  /// forcing the exporters' flow/credit_stalls columns even when (e.g.
  /// under `samples N`) every drawn point happens to be ack_nack — a
  /// campaign spec always yields one stable schema. SweepRunner::run
  /// sets this from the spec.
  void mark_flow_axis() { flow_axis_ = true; }

  /// Same schema discipline for the virtual-channel axis: forces the
  /// exporters' vcs column.
  void mark_vcs_axis() { vcs_axis_ = true; }

  std::size_t num_ok() const;

  /// Indices of the Pareto-efficient successful rows under minimize
  /// latency, maximize throughput, minimize area, minimize power —
  /// the paper's "find the per-SoC optimal instance" selection step.
  std::vector<std::size_t> pareto_front() const;

  /// CSV with a fixed header row; stable formatting (%.*g), one row per
  /// point in campaign order. Failed points keep their parameters and
  /// carry the error string. Campaigns that leave the flow-control axis
  /// at its ack_nack default export the legacy column set byte-for-byte;
  /// sweeping `flow` adds the `flow` and `credit_stalls` columns (see
  /// docs/FORMATS.md).
  std::string to_csv() const;

  /// JSON array of row objects, same fields, formatting and
  /// flow-column guarantees as to_csv().
  std::string to_json() const;

  void save_csv(const std::string& path) const;
  void save_json(const std::string& path) const;

  /// Human-readable aligned table for terminal reports; `front_only`
  /// restricts to the Pareto front.
  std::string summary(bool front_only = false) const;

 private:
  /// True when the campaign swept the flow axis (mark_flow_axis) or any
  /// row departs from the default ack_nack flow control — the trigger
  /// for the exporters' flow/credit_stalls columns.
  bool has_flow_axis() const;
  /// Same trigger for the vcs column (mark_vcs_axis or any row with
  /// vcs != 1).
  bool has_vcs_axis() const;

  std::vector<SweepResult> rows_;
  bool flow_axis_ = false;
  bool vcs_axis_ = false;
};

}  // namespace xpl::sweep
