#include "src/sweep/spec.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/link/flow.hpp"
#include "src/sweep/format.hpp"
#include "src/topology/generators.hpp"
#include "src/workload/benchmarks.hpp"

namespace xpl::sweep {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw Error("sweep line " + std::to_string(line) + ": " + what);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream is(line);
  std::string token;
  while (is >> token) {
    if (token[0] == '#') break;  // comment to end of line
    tokens.push_back(token);
  }
  return tokens;
}

std::uint64_t parse_u64(const std::string& token, std::size_t line) {
  // stoull silently wraps negatives; reject anything but plain digits.
  if (token.empty() || token.find_first_not_of("0123456789") !=
                           std::string::npos) {
    fail(line, "bad number '" + token + "'");
  }
  try {
    std::size_t used = 0;
    const std::uint64_t value = std::stoull(token, &used);
    if (used != token.size()) fail(line, "bad number '" + token + "'");
    return value;
  } catch (const std::logic_error&) {
    fail(line, "bad number '" + token + "'");
  }
}

double parse_f64(const std::string& token, std::size_t line) {
  try {
    std::size_t used = 0;
    const double value = std::stod(token, &used);
    if (used != token.size()) fail(line, "bad number '" + token + "'");
    return value;
  } catch (const std::logic_error&) {
    fail(line, "bad number '" + token + "'");
  }
}


/// line 0 = not parsing a file (validating an in-memory spec).
traffic::Pattern parse_pattern(const std::string& name, std::size_t line) {
  if (name == "uniform") return traffic::Pattern::kUniformRandom;
  if (name == "hotspot") return traffic::Pattern::kHotspot;
  if (name == "permutation") return traffic::Pattern::kPermutation;
  if (line == 0) throw Error("sweep: unknown pattern '" + name + "'");
  fail(line, "unknown pattern '" + name + "'");
}

/// "app:mpeg4" -> "mpeg4"; empty string when `name` is not an app value.
std::string app_benchmark_of(const std::string& name) {
  if (name.rfind("app:", 0) == 0) return name.substr(4);
  return {};
}

/// Accepts a pattern-axis token: a synthetic pattern name or
/// "app:<embedded benchmark>". line 0 = validating an in-memory spec.
void check_pattern_token(const std::string& name, std::size_t line) {
  const std::string app = app_benchmark_of(name);
  if (app.empty()) {
    parse_pattern(name, line);  // throws on unknown synthetic pattern
    return;
  }
  if (workload::is_benchmark(app)) return;
  if (line == 0) throw Error("sweep: unknown app benchmark '" + app + "'");
  fail(line, "unknown app benchmark '" + app + "'");
}

const std::set<std::string>& known_topologies() {
  static const std::set<std::string> kinds{"mesh",      "torus", "ring",
                                           "star",      "spidergon",
                                           "cmesh"};
  return kinds;
}

const std::set<std::string>& known_routings() {
  static const std::set<std::string> kinds{"auto", "minimal", "xy",
                                           "updown"};
  return kinds;
}

}  // namespace

std::uint64_t derive_seed(std::uint64_t spec_seed, std::uint64_t salt) {
  // splitmix64 finalizer over the combined words — the same mixing the
  // Rng uses to expand a seed, so nearby (seed, salt) pairs decorrelate.
  std::uint64_t z = spec_seed + 0x9E3779B97F4A7C15ull * (salt + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

sim::Scheduler auto_scheduler(double injection_rate) {
  // At <= 5% offered load the network spends most cycles quiescent and
  // the time-leap calendar pays for itself; above it, gated's per-cycle
  // active set is already tight (BENCH_pr10.json).
  return injection_rate <= 0.05 ? sim::Scheduler::kTimeLeap
                                : sim::Scheduler::kGated;
}

std::size_t SweepPoint::num_switches() const {
  if (topology == "mesh" || topology == "torus" || topology == "cmesh") {
    return width * height;
  }
  if (topology == "star") return width + 1;  // hub + leaves
  if (topology == "spidergon") return width + (width % 2);  // even count
  return width;                                             // ring
}

topology::Topology SweepPoint::build_topology() const {
  // Fail fast on absurd sizes instead of grinding through a multi-GB
  // allocation: 4096 switches is far beyond any single-SoC NoC.
  const std::size_t n = num_switches();
  require(n >= 1, "sweep point " + label() + ": empty topology");
  require(n <= 4096, "sweep point " + label() + ": " + std::to_string(n) +
                         " switches exceeds the 4096-switch cap");
  if (topology == "cmesh") {
    return topology::make_cmesh(width, height, concentration);
  }
  const auto plan = topology::NiPlan::uniform(n, 1, 1);
  if (topology == "mesh") return topology::make_mesh(width, height, plan);
  if (topology == "torus") return topology::make_torus(width, height, plan);
  if (topology == "ring") return topology::make_ring(width, plan);
  if (topology == "star") return topology::make_star(width, plan);
  if (topology == "spidergon") {
    return topology::make_spidergon(width + (width % 2), plan);
  }
  throw Error("sweep point: unknown topology '" + topology + "'");
}

std::string SweepPoint::pattern_label() const {
  if (!app.empty()) return "app:" + app;
  return traffic::pattern_name(traffic.pattern);
}

std::string SweepPoint::label() const {
  std::ostringstream os;
  os << topology << "_" << width;
  if (topology == "mesh" || topology == "torus" || topology == "cmesh") {
    os << "x" << height;
  }
  if (topology == "cmesh") os << "c" << concentration;
  os << "_f" << net.flit_width << "_q" << net.output_fifo_depth << "_"
     << (app.empty() ? traffic::pattern_name(traffic.pattern) : app.c_str())
     << "_r" << fmt_double(traffic.injection_rate);
  if (traffic.burstiness > 0) os << "_b" << fmt_double(traffic.burstiness);
  if (warmup > 0) os << "_w" << warmup;
  if (net.vcs > 1) os << "_v" << net.vcs;
  if (net.flow != link::FlowControl::kAckNack) {
    os << "_" << link::flow_control_name(net.flow);
  }
  return os.str();
}

std::size_t SweepSpec::grid_size() const {
  return topologies.size() * widths.size() * heights.size() *
         flit_widths.size() * fifo_depths.size() * vcss.size() *
         flows.size() * patterns.size() * warmups.size() *
         burstinesses.size() * injection_rates.size();
}

std::size_t SweepSpec::num_points() const {
  const std::size_t grid = grid_size();
  return (samples != 0 && samples < grid) ? samples : grid;
}

void SweepSpec::validate() const {
  auto non_empty = [](const char* axis, std::size_t n) {
    require(n != 0, std::string("sweep: axis '") + axis + "' is empty");
  };
  non_empty("topology", topologies.size());
  non_empty("width", widths.size());
  non_empty("height", heights.size());
  non_empty("flit_width", flit_widths.size());
  non_empty("fifo_depth", fifo_depths.size());
  non_empty("vcs", vcss.size());
  non_empty("flow", flows.size());
  non_empty("pattern", patterns.size());
  non_empty("warmup", warmups.size());
  non_empty("burstiness", burstinesses.size());
  non_empty("injection_rate", injection_rates.size());
  for (const auto& t : topologies) {
    require(known_topologies().count(t) != 0,
            "sweep: unknown topology '" + t + "'");
  }
  require(known_routings().count(routing) != 0,
          "sweep: unknown routing '" + routing +
              "' (expected auto | minimal | xy | updown)");
  require(scheduler == "gated" || scheduler == "full" ||
              scheduler == "time_leap",
          "sweep: unknown scheduler '" + scheduler +
              "' (expected gated | full | time_leap)");
  for (const std::size_t v : vcss) {
    require(v >= 1 && v <= link::kMaxVcs,
            "sweep: vcs must be in [1, " + std::to_string(link::kMaxVcs) +
                "]");
  }
  for (const auto& f : flows) link::parse_flow_control(f);  // throws
  for (const auto& p : patterns) check_pattern_token(p, 0);
  for (const double b : burstinesses) {
    require(b >= 0.0 && b < 1.0, "sweep: burstiness must be in [0, 1)");
  }
  for (const std::size_t w : warmups) {
    require(w < sim_cycles,
            "sweep: warmup must leave a non-empty measurement window");
  }
  require(sim_cycles > 0, "sweep: cycles must be > 0");
  require(threads >= 1, "sweep: threads must be >= 1");
  require(partitions >= 1, "sweep: partitions must be >= 1");
  require(concentration >= 1, "sweep: concentration must be >= 1");
}

std::vector<std::size_t> SweepSpec::campaign_grid_indices() const {
  // Campaign index -> grid index. A sampled campaign draws a deterministic
  // sorted subset of distinct grid cells via Floyd's algorithm, so a
  // point's identity (and therefore its seeds) depends only on the spec,
  // never on how many points run or in what order.
  const std::size_t grid = grid_size();
  if (samples == 0 || samples >= grid) {
    std::vector<std::size_t> all(grid);
    for (std::size_t i = 0; i < grid; ++i) all[i] = i;
    return all;
  }
  Rng rng(derive_seed(seed, 0x5A5A5A5Aull));
  std::set<std::size_t> chosen;
  for (std::size_t j = grid - samples; j < grid; ++j) {
    const std::size_t t = rng.next_below(j + 1);
    chosen.insert(chosen.count(t) ? j : t);
  }
  return std::vector<std::size_t>(chosen.begin(), chosen.end());
}

SweepPoint SweepSpec::resolve_grid_point(std::size_t grid_index,
                                         std::size_t campaign_index) const {
  // Decode mixed-radix: injection rate innermost, topology outermost.
  std::size_t rest = grid_index;
  auto take = [&rest](std::size_t radix) {
    const std::size_t digit = rest % radix;
    rest /= radix;
    return digit;
  };
  const std::size_t rate_i = take(injection_rates.size());
  const std::size_t burst_i = take(burstinesses.size());
  const std::size_t warmup_i = take(warmups.size());
  const std::size_t pattern_i = take(patterns.size());
  const std::size_t flow_i = take(flows.size());
  const std::size_t vcs_i = take(vcss.size());
  const std::size_t fifo_i = take(fifo_depths.size());
  const std::size_t flit_i = take(flit_widths.size());
  const std::size_t height_i = take(heights.size());
  const std::size_t width_i = take(widths.size());
  const std::size_t topo_i = take(topologies.size());

  SweepPoint p;
  p.index = campaign_index;
  p.topology = topologies[topo_i];
  p.width = widths[width_i];
  p.height = heights[height_i];
  if (p.topology == "cmesh") p.concentration = concentration;
  p.sim_cycles = sim_cycles;
  p.drain_cycles = drain_cycles;
  p.target_mhz = target_mhz;
  // Within-point parallelism: results are invariant to both knobs, so
  // they never enter the point's identity (labels, seeds, exports).
  p.net.partitions = partitions;
  p.net.sim_threads = threads;

  p.net.flit_width = flit_widths[flit_i];
  p.net.output_fifo_depth = fifo_depths[fifo_i];
  p.net.vcs = vcss[vcs_i];
  p.net.flow = link::parse_flow_control(flows[flow_i]);
  p.net.input_fifo_depth = 2;
  p.net.max_burst = std::max<std::size_t>(p.net.max_burst, max_burst);
  p.net.target_window = 1 << 12;
  if (routing == "minimal") {
    p.net.routing = topology::RoutingAlgorithm::kShortestPath;
  } else if (routing == "xy") {
    p.net.routing = topology::RoutingAlgorithm::kXY;
  } else if (routing == "updown") {
    p.net.routing = topology::RoutingAlgorithm::kUpDown;
  } else {  // "auto": the seed rule (cmesh is a mesh with fatter tiles)
    p.net.routing = p.topology == "mesh" || p.topology == "cmesh"
                        ? topology::RoutingAlgorithm::kXY
                        : topology::RoutingAlgorithm::kUpDown;
  }
  if (scheduler_pinned) {
    p.net.scheduler = scheduler == "full"        ? sim::Scheduler::kFull
                      : scheduler == "time_leap" ? sim::Scheduler::kTimeLeap
                                                 : sim::Scheduler::kGated;
  } else {
    // No directive: pick per point by offered load. Results are
    // scheduler-invariant (bit-identical), so the choice is free to vary
    // across points and across resumes of the same campaign.
    p.net.scheduler = auto_scheduler(injection_rates[rate_i]);
  }
  // Seeds derive from the *grid* cell, never from scheduling order:
  // bit-identical results for any --jobs value.
  p.net.seed = derive_seed(seed, grid_index * 2 + 0);

  const std::string app = app_benchmark_of(patterns[pattern_i]);
  if (app.empty()) {
    p.traffic.pattern = parse_pattern(patterns[pattern_i], 0);
  } else {
    // Benchmark traffic: the weight matrix needs the built topology, so
    // run_point derives it there (benchmark_weights is deterministic).
    p.app = app;
    p.traffic.pattern = traffic::Pattern::kWeighted;
  }
  p.warmup = warmups[warmup_i];
  p.traffic.burstiness = burstinesses[burst_i];
  p.traffic.injection_rate = injection_rates[rate_i];
  p.traffic.read_fraction = read_fraction;
  p.traffic.min_burst = 1;
  p.traffic.max_burst = max_burst;
  p.traffic.seed = derive_seed(seed, grid_index * 2 + 1);
  return p;
}

SweepPoint SweepSpec::point(std::size_t i) const {
  validate();
  require(i < num_points(), "sweep: point index out of range");
  return resolve_grid_point(campaign_grid_indices()[i], i);
}

std::vector<SweepPoint> SweepSpec::points() const {
  validate();
  const auto grid_indices = campaign_grid_indices();
  std::vector<SweepPoint> out;
  out.reserve(grid_indices.size());
  for (std::size_t i = 0; i < grid_indices.size(); ++i) {
    out.push_back(resolve_grid_point(grid_indices[i], i));
  }
  return out;
}

SweepSpec parse_sweep(const std::string& text) {
  SweepSpec spec;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;

  // Axis directives replace the default on first sight so a parsed spec
  // holds exactly the listed values.
  while (std::getline(is, line)) {
    ++lineno;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& key = tokens[0];

    auto need = [&](std::size_t n) {
      if (tokens.size() != n) {
        fail(lineno, "'" + key + "' expects " + std::to_string(n - 1) +
                         " argument(s)");
      }
    };
    auto need_values = [&]() {
      if (tokens.size() < 2) fail(lineno, "'" + key + "' expects values");
    };
    auto u64_list = [&]() {
      std::vector<std::size_t> values;
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        values.push_back(parse_u64(tokens[t], lineno));
      }
      return values;
    };
    auto f64_list = [&]() {
      std::vector<double> values;
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        values.push_back(parse_f64(tokens[t], lineno));
      }
      return values;
    };

    if (key == "sweep") {
      need(2);
      spec.name = tokens[1];
    } else if (key == "seed") {
      need(2);
      spec.seed = parse_u64(tokens[1], lineno);
    } else if (key == "cycles") {
      need(2);
      spec.sim_cycles = parse_u64(tokens[1], lineno);
    } else if (key == "drain") {
      need(2);
      spec.drain_cycles = parse_u64(tokens[1], lineno);
    } else if (key == "samples") {
      need(2);
      spec.samples = parse_u64(tokens[1], lineno);
    } else if (key == "target_mhz") {
      need(2);
      spec.target_mhz = parse_f64(tokens[1], lineno);
    } else if (key == "read_fraction") {
      need(2);
      spec.read_fraction = parse_f64(tokens[1], lineno);
    } else if (key == "max_burst") {
      need(2);
      spec.max_burst =
          static_cast<std::uint32_t>(parse_u64(tokens[1], lineno));
    } else if (key == "routing") {
      need(2);
      if (!known_routings().count(tokens[1])) {
        fail(lineno, "unknown routing '" + tokens[1] +
                         "' (expected auto | minimal | xy | updown)");
      }
      spec.routing = tokens[1];
    } else if (key == "scheduler") {
      need(2);
      if (tokens[1] != "gated" && tokens[1] != "full" &&
          tokens[1] != "time_leap") {
        fail(lineno, "unknown scheduler '" + tokens[1] +
                         "' (expected gated | full | time_leap)");
      }
      spec.scheduler = tokens[1];
      spec.scheduler_pinned = true;
    } else if (key == "threads") {
      need(2);
      spec.threads = parse_u64(tokens[1], lineno);
      if (spec.threads < 1) fail(lineno, "threads must be >= 1");
    } else if (key == "partitions") {
      need(2);
      spec.partitions = parse_u64(tokens[1], lineno);
      if (spec.partitions < 1) fail(lineno, "partitions must be >= 1");
    } else if (key == "concentration") {
      need(2);
      spec.concentration = parse_u64(tokens[1], lineno);
      if (spec.concentration < 1) {
        fail(lineno, "concentration must be >= 1");
      }
    } else if (key == "topology") {
      need_values();
      spec.topologies.assign(tokens.begin() + 1, tokens.end());
      for (const auto& t : spec.topologies) {
        if (!known_topologies().count(t)) {
          fail(lineno, "unknown topology '" + t + "'");
        }
      }
    } else if (key == "width") {
      need_values();
      spec.widths = u64_list();
    } else if (key == "height") {
      need_values();
      spec.heights = u64_list();
    } else if (key == "flit_width") {
      need_values();
      spec.flit_widths = u64_list();
    } else if (key == "fifo_depth") {
      need_values();
      spec.fifo_depths = u64_list();
    } else if (key == "vcs") {
      need_values();
      spec.vcss = u64_list();
      for (const std::size_t v : spec.vcss) {
        if (v < 1 || v > link::kMaxVcs) {
          fail(lineno, "vcs must be in [1, " +
                           std::to_string(link::kMaxVcs) + "], got " +
                           std::to_string(v));
        }
      }
    } else if (key == "flow") {
      need_values();
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        try {
          link::parse_flow_control(tokens[t]);  // validates
        } catch (const Error& e) {
          fail(lineno, e.what());
        }
      }
      spec.flows.assign(tokens.begin() + 1, tokens.end());
    } else if (key == "pattern" || key == "traffic") {
      // `traffic` is an alias so campaign specs can read
      // `traffic app:mpeg4`; the canonical form writes `pattern`.
      need_values();
      for (std::size_t t = 1; t < tokens.size(); ++t) {
        check_pattern_token(tokens[t], lineno);  // validates
      }
      spec.patterns.assign(tokens.begin() + 1, tokens.end());
    } else if (key == "warmup") {
      need_values();
      spec.warmups = u64_list();
    } else if (key == "burstiness") {
      need_values();
      spec.burstinesses = f64_list();
      for (const double b : spec.burstinesses) {
        if (b < 0.0 || b >= 1.0) {
          fail(lineno, "burstiness must be in [0, 1)");
        }
      }
    } else if (key == "injection_rate") {
      need_values();
      spec.injection_rates = f64_list();
      for (const double r : spec.injection_rates) {
        if (r < 0.0 || r > 1.0) {
          fail(lineno, "injection_rate must be in [0, 1]");
        }
      }
    } else {
      fail(lineno, "unknown directive '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

SweepSpec load_sweep(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_sweep: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_sweep(text.str());
}

std::string write_sweep(const SweepSpec& spec) {
  std::ostringstream os;
  os << "# xsweep campaign specification\n";
  os << "sweep " << spec.name << "\n";
  os << "seed " << spec.seed << "\n";
  os << "cycles " << spec.sim_cycles << "\n";
  os << "drain " << spec.drain_cycles << "\n";
  os << "samples " << spec.samples << "\n";
  os << "target_mhz " << fmt_double(spec.target_mhz) << "\n";
  os << "read_fraction " << fmt_double(spec.read_fraction) << "\n";
  os << "max_burst " << spec.max_burst << "\n";
  os << "routing " << spec.routing << "\n";
  os << "scheduler " << spec.scheduler << "\n";
  // Off-default only: legacy specs keep their canonical bytes, and the
  // knobs are pure throughput controls with no effect on results.
  if (spec.threads != 1) os << "threads " << spec.threads << "\n";
  if (spec.partitions != 1) os << "partitions " << spec.partitions << "\n";
  if (spec.concentration != 4) {
    os << "concentration " << spec.concentration << "\n";
  }
  auto write_list = [&os](const char* key, const auto& values) {
    os << key;
    for (const auto& v : values) os << " " << v;
    os << "\n";
  };
  write_list("topology", spec.topologies);
  write_list("width", spec.widths);
  write_list("height", spec.heights);
  write_list("flit_width", spec.flit_widths);
  write_list("fifo_depth", spec.fifo_depths);
  write_list("vcs", spec.vcss);
  write_list("flow", spec.flows);
  write_list("pattern", spec.patterns);
  write_list("warmup", spec.warmups);
  auto write_f64_list = [&os](const char* key, const auto& values) {
    os << key;
    for (const double v : values) os << " " << fmt_double(v);
    os << "\n";
  };
  write_f64_list("burstiness", spec.burstinesses);
  write_f64_list("injection_rate", spec.injection_rates);
  return os.str();
}

void save_sweep(const SweepSpec& spec, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "save_sweep: cannot open " + path);
  out << write_sweep(spec);
}

}  // namespace xpl::sweep
