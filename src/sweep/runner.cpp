#include "src/sweep/runner.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/error.hpp"
#include "src/compiler/compiler.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"
#include "src/workload/benchmarks.hpp"

namespace xpl::sweep {

SweepRunner::SweepRunner(std::size_t jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    jobs_ = std::thread::hardware_concurrency();
    if (jobs_ == 0) jobs_ = 1;
  }
}

void SweepRunner::run_indexed(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  const std::size_t workers = std::min(jobs_, n);
  if (workers <= 1) {
    // Same contract as the parallel path: every index runs, the first
    // exception is rethrown after the loop drains.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  // One deque per worker, jobs dealt round-robin. A worker drains its own
  // deque from the front and, when empty, steals from the back of the
  // busiest victim — classic work stealing, coarse (mutex per deque)
  // because jobs are whole simulations, not microtasks.
  struct Queue {
    std::mutex mutex;
    std::deque<std::size_t> jobs;
  };
  std::vector<Queue> queues(workers);
  for (std::size_t i = 0; i < n; ++i) {
    queues[i % workers].jobs.push_back(i);
  }

  std::mutex error_mutex;
  std::exception_ptr first_error;

  auto worker = [&](std::size_t self) {
    for (;;) {
      std::size_t job = 0;
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(queues[self].mutex);
        if (!queues[self].jobs.empty()) {
          job = queues[self].jobs.front();
          queues[self].jobs.pop_front();
          found = true;
        }
      }
      if (!found) {
        // Steal from the victim with the most queued work.
        std::size_t victim = workers;
        std::size_t best = 0;
        for (std::size_t v = 0; v < workers; ++v) {
          if (v == self) continue;
          std::lock_guard<std::mutex> lock(queues[v].mutex);
          if (queues[v].jobs.size() > best) {
            best = queues[v].jobs.size();
            victim = v;
          }
        }
        if (victim == workers) return;  // everything drained
        std::lock_guard<std::mutex> lock(queues[victim].mutex);
        if (queues[victim].jobs.empty()) continue;  // raced; rescan
        job = queues[victim].jobs.back();
        queues[victim].jobs.pop_back();
      }
      try {
        fn(job);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) threads.emplace_back(worker, w);
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

SweepResult SweepRunner::run_point(const SweepPoint& point) {
  SweepResult result;
  result.point = point;
  result.evaluated = true;
  try {
    compiler::NocSpec spec;
    spec.name = point.label();
    spec.topo = point.build_topology();
    spec.net = point.net;

    const compiler::XpipesCompiler xpipes;
    auto network = xpipes.build_simulation(spec);

    traffic::TrafficConfig traffic_cfg = point.traffic;
    if (!point.app.empty()) {
      // Benchmark points: place the app's core graph on this topology
      // (deterministic, no RNG) and drive its bandwidth matrix.
      traffic_cfg.weights = workload::benchmark_weights(
          workload::benchmark(point.app), spec.topo);
    }
    traffic::TrafficDriver driver(*network, traffic_cfg);
    driver.run(point.sim_cycles);
    network->run_until_quiescent(point.drain_cycles);

    const auto stats =
        traffic::collect_run(*network, point.sim_cycles, point.warmup);
    result.transactions = stats.transactions;
    result.avg_latency_cycles = stats.latency.mean;
    result.p95_latency_cycles = stats.latency.p95;
    result.throughput_tpc = stats.throughput;
    result.link_flits = stats.link_flits;
    result.retransmissions = stats.retransmissions;
    result.credit_stalls = stats.credit_stalls;
    result.avg_link_utilization = stats.avg_link_utilization;

    if (point.estimate) {
      const auto report = xpipes.estimate(spec, point.target_mhz);
      result.area_mm2 = report.total_area_mm2;
      result.power_mw = report.total_power_mw;
      result.fmax_mhz = report.min_fmax_mhz;
    }
    result.ok = true;
  } catch (const std::exception& e) {
    result.ok = false;
    result.error = e.what();
  }
  return result;
}

ResultTable SweepRunner::run(const SweepSpec& spec) const {
  return run(spec, RunOptions{});
}

ResultTable SweepRunner::run(const SweepSpec& spec,
                             const RunOptions& opts) const {
  spec.validate();
  const auto points = spec.points();
  ResultTable table(points.size());
  // Export schema follows the *spec*, not the drawn points: a sampled
  // flow campaign keeps its flow/credit_stalls columns even when the
  // draw happens to contain only ack_nack points; likewise for vcs.
  if (spec.flows.size() > 1 || spec.flows.front() != "ack_nack") {
    table.mark_flow_axis();
  }
  if (spec.vcss.size() > 1 || spec.vcss.front() != 1) {
    table.mark_vcs_axis();
  }

  // Seed the table with previously evaluated rows (resume path). The
  // restored rows were produced by the same deterministic pipeline, so
  // the finished table cannot differ from an uninterrupted run.
  std::vector<std::size_t> pending;
  if (opts.resume != nullptr) {
    for (const SweepResult& done : *opts.resume) {
      require(done.evaluated, "SweepRunner: resume row not evaluated");
      require(done.point.index < points.size(),
              "SweepRunner: resume row index out of range");
      table.set(done);
    }
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (!table.row(i).evaluated) pending.push_back(i);
    }
  } else {
    pending.resize(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) pending[i] = i;
  }

  std::mutex table_mutex;
  std::size_t completed = 0;
  run_indexed(pending.size(), [&](std::size_t k) {
    if (opts.halt_after != 0) {
      // Controlled interruption: stop picking up new work once the
      // threshold is reached (in-flight jobs still land in the table).
      std::lock_guard<std::mutex> lock(table_mutex);
      if (completed >= opts.halt_after) return;
    }
    SweepResult result = run_point(points[pending[k]]);
    std::lock_guard<std::mutex> lock(table_mutex);
    ++completed;
    if (on_result) on_result(result);
    table.set(std::move(result));
    if (opts.on_progress) opts.on_progress(table);
  });
  return table;
}

ResultTable SweepRunner::run_adaptive(Proposer& proposer) const {
  std::vector<SweepResult> results;
  for (;;) {
    std::vector<SweepPoint> batch = proposer.propose(results);
    if (batch.empty()) break;
    // Evaluation order is batch order, fixed before any point runs, so
    // seeds and exports never depend on scheduling.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].index = results.size() + i;
    }
    std::vector<SweepResult> batch_results(batch.size());
    run_indexed(batch.size(), [&](std::size_t i) {
      batch_results[i] = run_point(batch[i]);
    });
    for (SweepResult& r : batch_results) {
      if (on_result) on_result(r);
      results.push_back(std::move(r));
    }
  }

  ResultTable table(results.size());
  if (proposer.sweeps_flow()) table.mark_flow_axis();
  if (proposer.sweeps_vcs()) table.mark_vcs_axis();
  for (SweepResult& r : results) table.set(std::move(r));
  return table;
}

}  // namespace xpl::sweep
