// Parallel campaign execution: a work-stealing thread pool over fully
// independent simulation jobs.
//
// Each campaign point builds its own Network on its own sim::Kernel, so
// jobs share no mutable state and the pool needs no locking around the
// simulations themselves. Determinism contract: every job's RNG seeds are
// derived from the spec seed and the point's grid index (spec.hpp), and
// results land in a pre-sized ResultTable slot addressed by point index —
// so a campaign's output is bit-identical for any --jobs value, which the
// tests assert byte-for-byte on the CSV/JSON exports.
#pragma once

#include <cstddef>
#include <functional>

#include "src/sweep/result.hpp"
#include "src/sweep/spec.hpp"

namespace xpl::sweep {

class SweepRunner {
 public:
  /// jobs = 0 picks std::thread::hardware_concurrency().
  explicit SweepRunner(std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }

  /// Optional progress hook, invoked (serialized) as each job finishes.
  /// Completion order depends on scheduling; results do not.
  std::function<void(const SweepResult&)> on_result;

  /// Runs every point of `spec` and returns the filled table.
  ResultTable run(const SweepSpec& spec) const;

  /// Builds, simulates and estimates one point — the unit of work the
  /// pool executes; exposed so tests and custom drivers can run single
  /// points. Never throws: failures come back as ok == false.
  static SweepResult run_point(const SweepPoint& point);

  /// Generic work-stealing parallel loop: calls fn(i) exactly once for
  /// each i in [0, n). fn must tolerate concurrent calls on distinct i.
  /// Used by the campaign runner and by appgraph::explore's candidate
  /// loop. Exceptions from fn are captured and the first one rethrown
  /// after all workers drain.
  void run_indexed(std::size_t n,
                   const std::function<void(std::size_t)>& fn) const;

 private:
  std::size_t jobs_;
};

}  // namespace xpl::sweep
