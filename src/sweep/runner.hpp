// Parallel campaign execution: a work-stealing thread pool over fully
// independent simulation jobs.
//
// Each campaign point builds its own Network on its own sim::Kernel, so
// jobs share no mutable state and the pool needs no locking around the
// simulations themselves. Determinism contract: every job's RNG seeds are
// derived from the spec seed and the point's grid index (spec.hpp), and
// results land in a pre-sized ResultTable slot addressed by point index —
// so a campaign's output is bit-identical for any --jobs value, which the
// tests assert byte-for-byte on the CSV/JSON exports.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "src/sweep/proposer.hpp"
#include "src/sweep/result.hpp"
#include "src/sweep/spec.hpp"

namespace xpl::sweep {

/// v2 plumbing for resumable campaigns (see checkpoint.hpp): previously
/// evaluated rows to reuse, a halt threshold for controlled interruption,
/// and a progress hook for incremental checkpointing.
struct RunOptions {
  /// Rows already evaluated (a checkpoint's results): copied into the
  /// table verbatim and not re-run. Each row's point.index addresses its
  /// slot; rows must carry evaluated == true.
  const std::vector<SweepResult>* resume = nullptr;
  /// 0 = run to completion. Otherwise stop *scheduling* new points once
  /// this many have completed in this run; in-flight points still finish,
  /// so with --jobs > 1 a few extra rows may complete. The returned table
  /// then holds unevaluated rows — checkpoint it and exit.
  std::size_t halt_after = 0;
  /// Invoked (serialized, after on_result) with the partially filled
  /// table after every newly produced result — the checkpoint writer.
  /// Never called for rows restored via `resume`.
  std::function<void(const ResultTable&)> on_progress;
};

class SweepRunner {
 public:
  /// jobs = 0 picks std::thread::hardware_concurrency().
  explicit SweepRunner(std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }

  /// Optional progress hook, invoked (serialized) as each job finishes.
  /// Completion order depends on scheduling; results do not.
  std::function<void(const SweepResult&)> on_result;

  /// Runs every point of `spec` and returns the filled table.
  ResultTable run(const SweepSpec& spec) const;

  /// Resumable variant: skips rows supplied by opts.resume, honours
  /// opts.halt_after, reports progress for checkpointing. The filled
  /// table is byte-identical to an uninterrupted run(spec) no matter
  /// where (or how often) the campaign was interrupted, at any --jobs.
  ResultTable run(const SweepSpec& spec, const RunOptions& opts) const;

  /// Adaptive campaign: the proposer drives point selection from results
  /// so far (proposer.hpp). Results land in evaluation order — batch
  /// order within a batch — so adaptive campaigns are as deterministic
  /// as grid ones for any --jobs.
  ResultTable run_adaptive(Proposer& proposer) const;

  /// Builds, simulates and estimates one point — the unit of work the
  /// pool executes; exposed so tests and custom drivers can run single
  /// points. Never throws: failures come back as ok == false.
  static SweepResult run_point(const SweepPoint& point);

  /// Generic work-stealing parallel loop: calls fn(i) exactly once for
  /// each i in [0, n). fn must tolerate concurrent calls on distinct i.
  /// Used by the campaign runner and by appgraph::explore's candidate
  /// loop. Exceptions from fn are captured and the first one rethrown
  /// after all workers drain.
  void run_indexed(std::size_t n,
                   const std::function<void(std::size_t)>& fn) const;

 private:
  std::size_t jobs_;
};

}  // namespace xpl::sweep
