// Generic Pareto-front extraction under joint minimization.
//
// Shared by the sweep ResultTable (latency/throughput vs. area/power) and
// the appgraph exploration loop (area/power/latency): a point is dominated
// when another point is no worse on every objective and strictly better on
// at least one. Callers negate any objective they want maximized.
#pragma once

#include <cstddef>
#include <vector>

namespace xpl::sweep {

/// Indices of the Pareto-efficient rows of `objectives` (each row is one
/// candidate's objective vector; all objectives minimized). Rows must all
/// have the same length. Returned in input order.
inline std::vector<std::size_t> pareto_front_min(
    const std::vector<std::vector<double>>& objectives) {
  auto dominates = [](const std::vector<double>& a,
                      const std::vector<double>& b) {
    bool better = false;
    for (std::size_t k = 0; k < a.size(); ++k) {
      if (a[k] > b[k]) return false;
      if (a[k] < b[k]) better = true;
    }
    return better;
  };
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < objectives.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < objectives.size(); ++j) {
      if (j != i && dominates(objectives[j], objectives[i])) {
        dominated = true;
        break;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace xpl::sweep
