#include "src/sweep/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "src/common/error.hpp"

namespace xpl::sweep {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw Error("checkpoint line " + std::to_string(line) + ": " + what);
}

/// Exact double round-trip: C99 hexfloat in, strtod out.
std::string hex_double(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

double parse_hex_double(const std::string& token, std::size_t line) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end != begin + token.size() || token.empty()) {
    fail(line, "bad float '" + token + "'");
  }
  return value;
}

std::uint64_t parse_u64(const std::string& token, std::size_t line) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    fail(line, "bad number '" + token + "'");
  }
  try {
    return std::stoull(token);
  } catch (const std::logic_error&) {
    fail(line, "bad number '" + token + "'");
  }
}

/// Error strings are free-form exception text: escape the separators the
/// line format relies on. "\\" -> "\\\\", newline -> "\\n".
std::string escape_error(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string unescape_error(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out += s[i] == 'n' ? '\n' : s[i];
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

Checkpoint make_checkpoint(const SweepSpec& spec, const ResultTable& table) {
  Checkpoint ckpt;
  ckpt.spec_text = write_sweep(spec);
  ckpt.num_points = table.size();
  for (const auto& row : table.rows()) {
    if (row.evaluated) ckpt.results.push_back(row);
  }
  return ckpt;
}

SweepSpec checkpoint_spec(Checkpoint& ckpt) {
  const SweepSpec spec = parse_sweep(ckpt.spec_text);
  require(write_sweep(spec) == ckpt.spec_text,
          "checkpoint: embedded spec is not canonical");
  require(spec.num_points() == ckpt.num_points,
          "checkpoint: stored campaign has " +
              std::to_string(ckpt.num_points) + " points but the spec " +
              "resolves to " + std::to_string(spec.num_points()));
  const auto points = spec.points();
  for (auto& row : ckpt.results) {
    require(row.point.index < points.size(),
            "checkpoint: result index out of range");
    row.point = points[row.point.index];
  }
  return spec;
}

std::string write_checkpoint(const Checkpoint& ckpt) {
  std::ostringstream os;
  os << "# xsweep campaign checkpoint\n";
  os << "checkpoint 1\n";
  os << "spec_begin\n";
  os << ckpt.spec_text;
  if (!ckpt.spec_text.empty() && ckpt.spec_text.back() != '\n') os << "\n";
  os << "spec_end\n";
  os << "points " << ckpt.num_points << "\n";
  for (const auto& r : ckpt.results) {
    os << "result " << r.point.index << " " << (r.ok ? 1 : 0) << " "
       << r.transactions << " " << r.link_flits << " " << r.retransmissions
       << " " << r.credit_stalls << " " << hex_double(r.avg_latency_cycles)
       << " " << hex_double(r.p95_latency_cycles) << " "
       << hex_double(r.throughput_tpc) << " "
       << hex_double(r.avg_link_utilization) << " " << hex_double(r.area_mm2)
       << " " << hex_double(r.power_mw) << " " << hex_double(r.fmax_mhz);
    if (!r.error.empty()) os << " " << escape_error(r.error);
    os << "\n";
  }
  return os.str();
}

Checkpoint parse_checkpoint(const std::string& text) {
  Checkpoint ckpt;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  bool saw_version = false;
  bool saw_points = false;
  std::set<std::size_t> seen;

  auto next_line = [&]() {
    if (!std::getline(is, line)) fail(lineno, "unexpected end of file");
    ++lineno;
  };

  while (std::getline(is, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key) || key[0] == '#') continue;

    if (key == "checkpoint") {
      std::string version;
      ls >> version;
      if (version != "1") {
        fail(lineno, "unsupported checkpoint version '" + version + "'");
      }
      saw_version = true;
    } else if (key == "spec_begin") {
      if (!saw_version) fail(lineno, "spec_begin before version line");
      std::ostringstream spec;
      for (;;) {
        next_line();
        if (line == "spec_end") break;
        spec << line << "\n";
      }
      ckpt.spec_text = spec.str();
    } else if (key == "points") {
      std::string count;
      ls >> count;
      ckpt.num_points = parse_u64(count, lineno);
      saw_points = true;
    } else if (key == "result") {
      if (!saw_points) fail(lineno, "result before points line");
      std::string tok[13];
      for (auto& t : tok) {
        if (!(ls >> t)) fail(lineno, "truncated result row");
      }
      SweepResult r;
      r.point.index = parse_u64(tok[0], lineno);
      if (r.point.index >= ckpt.num_points) {
        fail(lineno, "result index " + tok[0] + " out of range (points " +
                         std::to_string(ckpt.num_points) + ")");
      }
      if (tok[1] != "0" && tok[1] != "1") fail(lineno, "bad ok flag");
      r.ok = tok[1] == "1";
      r.evaluated = true;
      r.transactions = parse_u64(tok[2], lineno);
      r.link_flits = parse_u64(tok[3], lineno);
      r.retransmissions = parse_u64(tok[4], lineno);
      r.credit_stalls = parse_u64(tok[5], lineno);
      r.avg_latency_cycles = parse_hex_double(tok[6], lineno);
      r.p95_latency_cycles = parse_hex_double(tok[7], lineno);
      r.throughput_tpc = parse_hex_double(tok[8], lineno);
      r.avg_link_utilization = parse_hex_double(tok[9], lineno);
      r.area_mm2 = parse_hex_double(tok[10], lineno);
      r.power_mw = parse_hex_double(tok[11], lineno);
      r.fmax_mhz = parse_hex_double(tok[12], lineno);
      std::string rest;
      std::getline(ls, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      r.error = unescape_error(rest);
      if (!seen.insert(r.point.index).second) {
        fail(lineno, "duplicate result index " + tok[0]);
      }
      ckpt.results.push_back(std::move(r));
    } else {
      fail(lineno, "unknown directive '" + key + "'");
    }
  }
  require(saw_version, "checkpoint: missing version line");
  require(!ckpt.spec_text.empty(), "checkpoint: missing embedded spec");
  require(saw_points, "checkpoint: missing points line");
  return ckpt;
}

Checkpoint load_checkpoint(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "load_checkpoint: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_checkpoint(text.str());
}

void save_checkpoint(const Checkpoint& ckpt, const std::string& path) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    require(out.good(), "save_checkpoint: cannot open " + tmp);
    out << write_checkpoint(ckpt);
    out.flush();
    require(out.good(), "save_checkpoint: write failed for " + tmp);
  }
  require(std::rename(tmp.c_str(), path.c_str()) == 0,
          "save_checkpoint: cannot rename " + tmp + " to " + path);
}

}  // namespace xpl::sweep
