#include "src/sweep/result.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/link/flow.hpp"
#include "src/sweep/format.hpp"
#include "src/sweep/pareto.hpp"

namespace xpl::sweep {

namespace {


/// JSON string escaping (error messages are free-form exception text).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// RFC-4180 quoting for free-form CSV fields (error messages may carry
/// commas, quotes or newlines); plain fields pass through unquoted.
std::string csv_field(const std::string& s) {
  if (s.find_first_of(",\"\n\r") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void ResultTable::set(SweepResult result) {
  const std::size_t i = result.point.index;
  require(i < rows_.size(), "ResultTable: point index out of range");
  rows_[i] = std::move(result);
}

std::size_t ResultTable::num_ok() const {
  std::size_t n = 0;
  for (const auto& r : rows_) n += r.ok ? 1 : 0;
  return n;
}

std::vector<std::size_t> ResultTable::pareto_front() const {
  std::vector<std::size_t> ok_rows;
  std::vector<std::vector<double>> objectives;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (!rows_[i].ok) continue;
    ok_rows.push_back(i);
    objectives.push_back({rows_[i].avg_latency_cycles,
                          -rows_[i].throughput_tpc, rows_[i].area_mm2,
                          rows_[i].power_mw});
  }
  std::vector<std::size_t> front;
  for (const std::size_t k : pareto_front_min(objectives)) {
    front.push_back(ok_rows[k]);
  }
  return front;
}

bool ResultTable::has_flow_axis() const {
  if (flow_axis_) return true;
  // Fallback for hand-built tables (direct run_point drivers): any
  // non-default row forces the extended columns.
  for (const auto& r : rows_) {
    if (r.point.net.flow != link::FlowControl::kAckNack) return true;
  }
  return false;
}

bool ResultTable::has_vcs_axis() const {
  if (vcs_axis_) return true;
  for (const auto& r : rows_) {
    if (r.point.net.vcs != 1) return true;
  }
  return false;
}

std::string ResultTable::to_csv() const {
  // The flow/vcs columns appear only when the campaign swept those axes,
  // so legacy exports stay byte-identical — the same discipline as
  // label()'s conditional suffixes.
  const bool flow = has_flow_axis();
  const bool vcs = has_vcs_axis();
  std::ostringstream os;
  os << "index,label,topology,width,height,switches,flit_width,fifo_depth,"
     << (vcs ? "vcs," : "") << (flow ? "flow," : "")
     << "pattern,injection_rate,burstiness,warmup,cycles,ok,transactions,"
        "avg_latency_cycles,p95_latency_cycles,throughput_tpc,link_flits,"
        "retransmissions,"
     << (flow ? "credit_stalls," : "")
     << "avg_link_utilization,area_mm2,power_mw,fmax_mhz,"
        "error\n";
  for (const auto& r : rows_) {
    const auto& p = r.point;
    os << p.index << "," << p.label() << "," << p.topology << "," << p.width
       << "," << p.height << "," << p.num_switches() << ","
       << p.net.flit_width << "," << p.net.output_fifo_depth << ",";
    if (vcs) os << p.net.vcs << ",";
    if (flow) os << link::flow_control_name(p.net.flow) << ",";
    os << p.pattern_label() << ","
       << fmt_double(p.traffic.injection_rate) << ","
       << fmt_double(p.traffic.burstiness) << "," << p.warmup << ","
       << p.sim_cycles << ","
       << (r.ok ? 1 : 0) << "," << r.transactions << ","
       << fmt_double(r.avg_latency_cycles) << "," << fmt_double(r.p95_latency_cycles)
       << "," << fmt_double(r.throughput_tpc) << "," << r.link_flits << ","
       << r.retransmissions << ",";
    if (flow) os << r.credit_stalls << ",";
    os << fmt_double(r.avg_link_utilization) << ","
       << fmt_double(r.area_mm2) << "," << fmt_double(r.power_mw) << "," << fmt_double(r.fmax_mhz)
       << "," << csv_field(r.error) << "\n";
  }
  return os.str();
}

std::string ResultTable::to_json() const {
  const bool flow = has_flow_axis();
  const bool vcs = has_vcs_axis();
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const auto& r = rows_[i];
    const auto& p = r.point;
    os << "  {\"index\": " << p.index << ", \"label\": \""
       << json_escape(p.label()) << "\", \"topology\": \"" << p.topology
       << "\", \"width\": " << p.width << ", \"height\": " << p.height
       << ", \"switches\": " << p.num_switches()
       << ", \"flit_width\": " << p.net.flit_width
       << ", \"fifo_depth\": " << p.net.output_fifo_depth;
    if (vcs) os << ", \"vcs\": " << p.net.vcs;
    if (flow) {
      os << ", \"flow\": \"" << link::flow_control_name(p.net.flow) << "\"";
    }
    os << ", \"pattern\": \"" << p.pattern_label()
       << "\", \"injection_rate\": " << fmt_double(p.traffic.injection_rate)
       << ", \"burstiness\": " << fmt_double(p.traffic.burstiness)
       << ", \"warmup\": " << p.warmup
       << ", \"cycles\": " << p.sim_cycles
       << ", \"ok\": " << (r.ok ? "true" : "false")
       << ", \"transactions\": " << r.transactions
       << ", \"avg_latency_cycles\": " << fmt_double(r.avg_latency_cycles)
       << ", \"p95_latency_cycles\": " << fmt_double(r.p95_latency_cycles)
       << ", \"throughput_tpc\": " << fmt_double(r.throughput_tpc)
       << ", \"link_flits\": " << r.link_flits
       << ", \"retransmissions\": " << r.retransmissions;
    if (flow) os << ", \"credit_stalls\": " << r.credit_stalls;
    os << ", \"avg_link_utilization\": " << fmt_double(r.avg_link_utilization)
       << ", \"area_mm2\": " << fmt_double(r.area_mm2) << ", \"power_mw\": "
       << fmt_double(r.power_mw) << ", \"fmax_mhz\": " << fmt_double(r.fmax_mhz)
       << ", \"error\": \"" << json_escape(r.error) << "\"}"
       << (i + 1 < rows_.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

void ResultTable::save_csv(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "save_csv: cannot open " + path);
  out << to_csv();
}

void ResultTable::save_json(const std::string& path) const {
  std::ofstream out(path);
  require(out.good(), "save_json: cannot open " + path);
  out << to_json();
}

std::string ResultTable::summary(bool front_only) const {
  std::vector<std::size_t> selected;
  if (front_only) {
    selected = pareto_front();
  } else {
    for (std::size_t i = 0; i < rows_.size(); ++i) selected.push_back(i);
  }
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%-28s %-10s %-10s %-10s %-10s %-10s\n", "point",
                "lat_cyc", "p95", "thru_t/cy", "area_mm2", "power_mW");
  os << line;
  for (const std::size_t i : selected) {
    const auto& r = rows_[i];
    if (!r.ok) {
      std::snprintf(line, sizeof(line), "%-28s FAILED: %s\n",
                    r.point.label().c_str(), r.error.c_str());
      os << line;
      continue;
    }
    std::snprintf(line, sizeof(line),
                  "%-28s %-10.1f %-10.0f %-10.4f %-10.3f %-10.1f\n",
                  r.point.label().c_str(), r.avg_latency_cycles,
                  r.p95_latency_cycles, r.throughput_tpc, r.area_mm2,
                  r.power_mw);
    os << line;
  }
  return os.str();
}

}  // namespace xpl::sweep
