// Adaptive campaigns: propose the next points from the results so far.
//
// A classic campaign enumerates its grid up front (spec.hpp); an adaptive
// campaign is driven point-by-point by a Proposer — the sweep-engine v2
// hook behind src/tune/'s search strategies (saturation bisection,
// successive halving, hill climbing). SweepRunner::run_adaptive calls
// propose() with every result produced so far (in evaluation order),
// runs the returned batch on the work-stealing pool, appends the batch's
// results in batch order — never completion order — and repeats until the
// proposer returns an empty batch. Determinism therefore matches the grid
// path: the result sequence depends only on the proposer's decisions,
// not on --jobs or scheduling.
#pragma once

#include <vector>

#include "src/sweep/result.hpp"
#include "src/sweep/spec.hpp"

namespace xpl::sweep {

class Proposer {
 public:
  virtual ~Proposer() = default;

  /// Next batch of points to evaluate given all results so far, in
  /// evaluation order. Empty = campaign converged / budget exhausted.
  /// Points in one batch run concurrently, so they must be independent:
  /// a proposal may only depend on results of *previous* batches. The
  /// runner overwrites each point's `index` with its evaluation order.
  virtual std::vector<SweepPoint> propose(
      const std::vector<SweepResult>& so_far) = 0;

  /// Export-schema hints mirroring SweepSpec's axis marks: declare true
  /// when the campaign varies flow control / vcs so the ResultTable's
  /// conditional columns stay stable for the whole campaign.
  virtual bool sweeps_flow() const { return false; }
  virtual bool sweeps_vcs() const { return false; }
};

}  // namespace xpl::sweep
