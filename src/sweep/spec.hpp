// Declarative design-space sweep specification.
//
// The paper's argument is that a synthesis-oriented NoC library lets
// designers *sweep* flit widths, buffer depths, topologies and traffic
// patterns to find per-SoC optimal instances. A SweepSpec declares that
// campaign: a set of axes (each a list of values) whose cross product is
// the candidate grid, optionally subsampled at random. Every grid point
// resolves to one fully independent simulation job (a SweepPoint), so
// campaigns parallelize trivially — see runner.hpp.
//
// The file format is line-oriented and comment-friendly like the NoC
// specification format (src/compiler/spec_io.hpp), and round-trips
// exactly: write_sweep(parse_sweep(text)) is canonical. docs/FORMATS.md
// is the authoritative format reference.
//
// Directive grammar: one `<key> <value...>` per line; `#` comments to end
// of line. Scalar directives (`sweep`, `seed`, `cycles`, `drain`,
// `samples`, `target_mhz`, `read_fraction`, `max_burst`, `threads`,
// `partitions`, `concentration`) take exactly one value and apply
// campaign-wide. Axis directives take one or more values
// and replace that axis's default on first sight; the campaign grid is
// the cross product of all axes in the fixed order below (topology
// outermost, injection rate innermost), regardless of the order the
// directives appear in the file.
//
//   # xsweep campaign specification
//   sweep mesh_scan
//   seed 1
//   cycles 5000            # driven simulation cycles per point
//   drain 40000            # extra cycles allowed for draining
//   samples 0              # 0 = full grid, N = random subset of N points
//   target_mhz 800         # synthesis target for area/power estimates
//   read_fraction 0.5
//   max_burst 2
//   routing auto           # campaign-wide: auto | minimal | xy | updown
//   scheduler gated        # campaign-wide: gated | full (bit-identical)
//   threads 1              # campaign-wide: sim threads per point
//   partitions 1           # campaign-wide: kernel partitions per point
//   concentration 4        # campaign-wide: cmesh NIs per switch
//   topology mesh          # axis: mesh | torus | ring | star | spidergon
//                          #       | cmesh (concentrated mesh)
//   width 4 6 8            # axis: mesh/torus width (node count otherwise)
//   height 4               # axis: mesh/torus height (ignored otherwise)
//   flit_width 32 64       # axis
//   fifo_depth 4           # axis: switch output queue depth
//   vcs 1 2 4              # axis: virtual channels per link
//   flow ack_nack credit   # axis: link-level flow control
//   pattern uniform        # axis: uniform | hotspot | permutation
//                          #       | app:mpeg4 | app:vopd | app:mwd
//   warmup 0 500           # axis: cycles excluded from the stats window
//   burstiness 0 0.6       # axis: on/off injection burstiness in [0, 1)
//   injection_rate 0.01 0.05  # axis
//
// `traffic` is accepted as an alias for `pattern`. An `app:<name>` value
// runs the named embedded SoC benchmark (src/workload/benchmarks.hpp):
// the point's core graph is placed on its topology deterministically and
// the resulting bandwidth matrix drives Pattern::kWeighted traffic.
//
// `routing` selects the routing algorithm for every point: `auto` (the
// default — XY on meshes, up*/down* elsewhere), `minimal` (shortest
// path; on rings/tori/spidergons with vcs >= 2 this engages dateline
// virtual-channel assignment, and with vcs == 1 the deadlock checker
// fails such points fast instead of letting them hang), `xy`, `updown`.
// `vcs` is an axis like `flow`: its CSV/JSON column appears only when
// the axis is actually swept, so legacy exports stay byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/noc/network.hpp"
#include "src/topology/topology.hpp"
#include "src/traffic/traffic.hpp"

namespace xpl::sweep {

/// One fully resolved simulation job: everything a worker needs to build
/// and run one independent Network. RNG seeds are derived from the spec
/// seed and the point's campaign index — never from scheduling order — so
/// results are bit-identical regardless of thread count.
struct SweepPoint {
  std::size_t index = 0;     ///< position in the campaign (export order)
  std::string topology = "mesh";
  std::size_t width = 4;     ///< mesh/torus width; node count otherwise
  std::size_t height = 4;    ///< mesh/torus height; ignored otherwise
  std::size_t concentration = 1;  ///< cmesh only: NIs per switch
  std::size_t sim_cycles = 5000;
  std::size_t drain_cycles = 40000;
  /// Cycles excluded from the front of the measurement window (stats
  /// ignore transactions issued before this; see traffic::collect_run).
  std::size_t warmup = 0;
  /// Embedded app benchmark driving kWeighted traffic ("mpeg4", "vopd",
  /// "mwd"); empty = synthetic pattern. The weight matrix is derived in
  /// run_point by deterministic placement onto the built topology.
  std::string app;
  double target_mhz = 800.0;
  /// Run the synthesis model for area/power/fmax. Costs a second network
  /// elaboration per point (the estimator walks every instance); drivers
  /// that only need simulation metrics turn it off.
  bool estimate = true;
  noc::NetworkConfig net;
  traffic::TrafficConfig traffic;

  /// Number of switches this point's topology instantiates.
  std::size_t num_switches() const;

  /// Builds the topology (one initiator and one target NI per switch).
  topology::Topology build_topology() const;

  /// The pattern axis value this point was resolved from: the synthetic
  /// pattern name, or "app:<name>" for benchmark points. Used by label()
  /// and the result exporters.
  std::string pattern_label() const;

  /// Compact human identifier, e.g. "mesh_4x4_f32_q4_uniform_r0.02";
  /// app points read e.g. "mesh_4x3_f32_q4_mpeg4_r0.02", non-default
  /// burstiness / warmup append "_b<val>" / "_w<val>", multi-lane points
  /// append "_v<vcs>", and credit-mode points append "_credit".
  std::string label() const;
};

/// The campaign declaration: axes plus campaign-wide scalars.
struct SweepSpec {
  std::string name = "sweep";
  std::uint64_t seed = 1;
  std::size_t sim_cycles = 5000;
  std::size_t drain_cycles = 40000;
  /// 0 = run the full grid; otherwise run a deterministic random subset
  /// of this many distinct grid points (drawn from `seed`).
  std::size_t samples = 0;
  double target_mhz = 800.0;
  double read_fraction = 0.5;
  std::uint32_t max_burst = 2;
  /// Campaign-wide routing selection: "auto" | "minimal" | "xy" |
  /// "updown" (see file comment).
  std::string routing = "auto";
  /// Campaign-wide kernel scheduling policy: "gated" (skip quiescent
  /// modules, the default) | "full" (tick everything — the escape hatch
  /// for cross-checking a suspected gating divergence) | "time_leap"
  /// (skip quiescent *cycles* too; DESIGN.md §12). All three produce
  /// byte-identical results; see DESIGN.md §9.
  std::string scheduler = "gated";
  /// True when the spec carried an explicit `scheduler` directive. An
  /// unpinned spec lets resolve_grid_point() pick per point via
  /// auto_scheduler() — safe because every scheduler is bit-identical,
  /// so checkpoints and exports do not depend on the choice.
  bool scheduler_pinned = false;
  /// Campaign-wide partitioned-simulation knobs (DESIGN.md §10): every
  /// point's kernel is split into `partitions` conservative partitions
  /// run by `threads` worker threads. Results are byte-identical at any
  /// setting — these are throughput knobs, not axes, which is why they
  /// are scalars (sweeping them would only duplicate points). This
  /// `threads` parallelizes *within* one point; xsweep --jobs runs
  /// points concurrently — compose with --max-hw-threads (xsweep) so
  /// jobs × threads stays within the machine.
  std::size_t threads = 1;
  std::size_t partitions = 1;
  /// NIs per switch for cmesh topology points (ignored elsewhere).
  std::size_t concentration = 4;

  // Axes. The grid is the cross product in this (fixed) order, topology
  // outermost, injection rate innermost.
  std::vector<std::string> topologies = {"mesh"};
  std::vector<std::size_t> widths = {4};
  std::vector<std::size_t> heights = {4};
  std::vector<std::size_t> flit_widths = {32};
  std::vector<std::size_t> fifo_depths = {4};
  /// Virtual channels per link (noc::NetworkConfig::vcs).
  std::vector<std::size_t> vcss = {1};
  /// Link-level flow control: "ack_nack" and/or "credit" (flow.hpp).
  std::vector<std::string> flows = {"ack_nack"};
  /// Synthetic pattern names and/or "app:<benchmark>" values.
  std::vector<std::string> patterns = {"uniform"};
  std::vector<std::size_t> warmups = {0};
  std::vector<double> burstinesses = {0.0};
  std::vector<double> injection_rates = {0.05};

  /// Full cross-product size.
  std::size_t grid_size() const;
  /// Points the campaign actually runs (= grid_size() unless sampled).
  std::size_t num_points() const;

  /// Resolves campaign point `i` (0 <= i < num_points()), including its
  /// derived RNG seeds.
  SweepPoint point(std::size_t i) const;
  /// All campaign points in export order.
  std::vector<SweepPoint> points() const;

  /// Throws xpl::Error when an axis is empty or holds an unknown value.
  void validate() const;

 private:
  /// Grid cell of every campaign point, in campaign order (identity for a
  /// full grid; the sorted Floyd sample otherwise).
  std::vector<std::size_t> campaign_grid_indices() const;
  /// Resolves one grid cell to a point carrying `campaign_index`.
  SweepPoint resolve_grid_point(std::size_t grid_index,
                                std::size_t campaign_index) const;
};

/// Deterministic per-job seed: splitmix64 of the spec seed and the point's
/// campaign index. Exposed for tests.
std::uint64_t derive_seed(std::uint64_t spec_seed, std::uint64_t salt);

/// Default scheduler for a point whose spec does not pin one: time-leap
/// when the offered load is low enough that quiescent gaps dominate,
/// gated otherwise. Pure function of the injection rate so the choice —
/// which never changes results, only wall-clock — is reproducible.
sim::Scheduler auto_scheduler(double injection_rate);

/// Parses a sweep specification; throws xpl::Error with a line number on
/// malformed input.
SweepSpec parse_sweep(const std::string& text);

/// Reads and parses a sweep specification file.
SweepSpec load_sweep(const std::string& path);

/// Renders `spec` in canonical form (stable ordering, one key per line).
std::string write_sweep(const SweepSpec& spec);

/// Writes the canonical form to `path`.
void save_sweep(const SweepSpec& spec, const std::string& path);

}  // namespace xpl::sweep
