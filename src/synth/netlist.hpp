// Structural netlist accounting in NAND2-equivalents.
//
// Component models (component_models.hpp) build a Netlist by summing the
// costs of the RTL structures the simulator actually implements: FIFOs,
// muxes, arbiters, CRC logic, LUT ROMs. Keeping the primitive costs in one
// place makes the scaling behaviour — the *shape* of the paper's area
// figures — a structural consequence of the microarchitecture rather than
// a curve fit.
#pragma once

#include <cstddef>
#include <string>

namespace xpl::synth {

/// Gate totals of one component. `combinational` is in NAND2-equivalents;
/// `flops` counts DFFs (converted to NAND2-eq by the Technology).
struct Netlist {
  double combinational = 0.0;
  double flops = 0.0;

  Netlist& operator+=(const Netlist& other) {
    combinational += other.combinational;
    flops += other.flops;
    return *this;
  }
  friend Netlist operator+(Netlist a, const Netlist& b) { return a += b; }
  friend Netlist operator*(double k, Netlist n) {
    n.combinational *= k;
    n.flops *= k;
    return n;
  }

  std::string to_string() const;
};

// ---- Primitive cost functions. All argument sizes are in bits unless
// noted. Costs follow standard-cell synthesis folklore: MUX2 ~ 2.5
// NAND2-eq, XOR2 ~ 2.5, a counter bit ~ 5 (flop charged separately).

/// A bank of `count` D flip-flops.
Netlist dff_bank(std::size_t count);

/// `width`-bit N-to-1 multiplexer (tree of MUX2s).
Netlist mux(std::size_t width, std::size_t inputs);

/// Flop-based FIFO: depth x width storage, gray-coded pointers, full/empty
/// compare. This is how xpipes lite buffers synthesize (no SRAM macros at
/// these depths).
Netlist fifo(std::size_t depth, std::size_t width);

/// Binary up counter with carry chain.
Netlist counter(std::size_t bits);

/// Equality comparator.
Netlist comparator(std::size_t bits);

/// One-hot decoder of `n` outputs.
Netlist decoder(std::size_t n);

/// Fixed-priority arbiter over `n` requesters (priority chain).
Netlist fixed_arbiter(std::size_t n);

/// Round-robin arbiter: rotating pointer + double priority chain.
Netlist rr_arbiter(std::size_t n);

/// Parallel CRC generator/checker over `data_bits` with `crc_bits` state
/// (the XOR forest of the unrolled LFSR).
Netlist crc_logic(std::size_t data_bits, std::size_t crc_bits);

/// Combinational ROM of `entries` words x `width` bits, as synthesized
/// random logic (address decode + OR planes); entries below 2 are free.
Netlist lut_rom(std::size_t entries, std::size_t width);

/// Fixed right-shifter by a constant (wiring only) plus the valid masking.
Netlist const_shifter(std::size_t width);

/// Barrel shifter (`width` bits by log2(width) stages) — used by the flit
/// alignment datapath in the NI packetizer.
Netlist barrel_shifter(std::size_t width);

}  // namespace xpl::synth
