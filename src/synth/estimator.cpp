#include "src/synth/estimator.hpp"

#include <cmath>
#include <limits>
#include <sstream>

#include "src/common/error.hpp"

namespace xpl::synth {

std::string Estimate::to_string() const {
  std::ostringstream os;
  os << "area=" << area_mm2 << "mm2 power=" << power_mw
     << "mW fmax=" << fmax_mhz << "MHz @" << target_mhz << "MHz"
     << (feasible ? "" : " INFEASIBLE");
  return os.str();
}

double Estimator::nominal_fmax_mhz(double logic_levels) const {
  const double period_ps =
      logic_levels * tech_.gate_delay_ps + tech_.setup_skew_ps;
  return 1.0e6 / period_ps;
}

double Estimator::max_fmax_mhz(double logic_levels) const {
  const double period_ps =
      logic_levels * tech_.gate_delay_ps * tech_.min_delay_scale +
      tech_.setup_skew_ps;
  return 1.0e6 / period_ps;
}

double Estimator::full_custom_fmax_mhz(double logic_levels) const {
  const double period_ps =
      logic_levels * tech_.gate_delay_ps * tech_.full_custom_delay_scale +
      tech_.setup_skew_ps;
  return 1.0e6 / period_ps;
}

double Estimator::effort_from_floor(double logic_levels, double target_mhz,
                                    double floor_scale) const {
  require(target_mhz > 0, "Estimator: target frequency must be positive");
  const double period_ps = 1.0e6 / target_mhz;
  const double logic_budget_ps = period_ps - tech_.setup_skew_ps;
  if (logic_budget_ps <= 0) return std::numeric_limits<double>::infinity();
  // Per-level delay the implementation must reach.
  const double need = logic_budget_ps / logic_levels;
  const double nominal = tech_.gate_delay_ps;
  if (need >= nominal) return 1.0;
  const double floor_ps = nominal * floor_scale;
  if (need < floor_ps) return std::numeric_limits<double>::infinity();
  // Normalized tightening in (0, 1]: 0 at nominal, 1 at the floor.
  const double u = (nominal - need) / (nominal - floor_ps);
  return 1.0 + tech_.effort_area_penalty *
                   std::pow(u, tech_.effort_shape);
}

double Estimator::effort_multiplier(double logic_levels,
                                    double target_mhz) const {
  return effort_from_floor(logic_levels, target_mhz, tech_.min_delay_scale);
}

double Estimator::area_mm2(const Netlist& netlist) const {
  const double gates =
      netlist.combinational + netlist.flops * tech_.dff_nand2_eq;
  return gates * tech_.nand2_area_um2 * tech_.layout_overhead * 1.0e-6;
}

Estimate Estimator::estimate(const Netlist& netlist, double logic_levels,
                             double target_mhz, double activity) const {
  Estimate e;
  e.target_mhz = target_mhz;
  e.fmax_mhz = max_fmax_mhz(logic_levels);
  const double mult = effort_multiplier(logic_levels, target_mhz);
  if (!std::isfinite(mult)) {
    e.feasible = false;
    e.area_mm2 = area_mm2(netlist) * (1.0 + tech_.effort_area_penalty);
    e.power_mw = 0.0;
    return e;
  }
  e.area_mm2 = area_mm2(netlist) * mult;

  // Dynamic power: switched combinational gates + clocked flops, inflated
  // by upsizing on the critical cone; leakage scales with raw gate count.
  const double gates =
      netlist.combinational + netlist.flops * tech_.dff_nand2_eq;
  const double f_hz = target_mhz * 1.0e6;
  const double power_scale = std::pow(mult, tech_.effort_power_exponent);
  const double dynamic_w =
      (netlist.combinational * tech_.gate_energy_fj * activity +
       netlist.flops * tech_.flop_clock_fj) *
      1.0e-15 * f_hz * power_scale;
  const double leakage_w = gates * tech_.leakage_nw_per_gate * 1.0e-9;
  e.power_mw = (dynamic_w + leakage_w) * 1.0e3;
  return e;
}

Estimate Estimator::estimate_full_custom(const Netlist& netlist,
                                         double logic_levels,
                                         double target_mhz,
                                         double activity) const {
  Estimate e;
  e.target_mhz = target_mhz;
  e.fmax_mhz = full_custom_fmax_mhz(logic_levels);
  const double mult =
      effort_from_floor(logic_levels, target_mhz,
                        tech_.full_custom_delay_scale);
  if (!std::isfinite(mult)) {
    e.feasible = false;
    e.area_mm2 = area_mm2(netlist) * tech_.full_custom_density *
                 (1.0 + tech_.effort_area_penalty);
    return e;
  }
  e.area_mm2 = area_mm2(netlist) * tech_.full_custom_density * mult;
  const double gates =
      netlist.combinational + netlist.flops * tech_.dff_nand2_eq;
  const double f_hz = target_mhz * 1.0e6;
  const double power_scale = std::pow(mult, tech_.effort_power_exponent);
  const double dynamic_w =
      (netlist.combinational * tech_.gate_energy_fj * activity +
       netlist.flops * tech_.flop_clock_fj) *
      1.0e-15 * f_hz * power_scale * tech_.full_custom_density;
  const double leakage_w = gates * tech_.leakage_nw_per_gate * 1.0e-9;
  e.power_mw = (dynamic_w + leakage_w) * 1.0e3;
  return e;
}

}  // namespace xpl::synth
