#include "src/synth/netlist.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace xpl::synth {

namespace {
double log2ceil(std::size_t n) {
  if (n <= 1) return 0.0;
  return std::ceil(std::log2(static_cast<double>(n)));
}
constexpr double kMux2 = 2.5;
constexpr double kXor2 = 2.5;
}  // namespace

std::string Netlist::to_string() const {
  std::ostringstream os;
  os << "comb=" << combinational << " flops=" << flops;
  return os.str();
}

Netlist dff_bank(std::size_t count) {
  return Netlist{0.0, static_cast<double>(count)};
}

Netlist mux(std::size_t width, std::size_t inputs) {
  if (inputs <= 1) return {};
  // A W-bit N-input mux is W copies of an (N-1)-MUX2 tree plus select
  // decode.
  Netlist n;
  n.combinational = static_cast<double>(width) *
                        static_cast<double>(inputs - 1) * kMux2 +
                    2.0 * log2ceil(inputs);
  return n;
}

Netlist fifo(std::size_t depth, std::size_t width) {
  Netlist n;
  n.flops = static_cast<double>(depth * width);
  // Write-enable decode per row, read mux, two pointers, occupancy count.
  const double ptr_bits = std::max(1.0, log2ceil(depth) + 1.0);
  n += decoder(depth);
  n += mux(width, depth);
  n += counter(static_cast<std::size_t>(ptr_bits));
  n += counter(static_cast<std::size_t>(ptr_bits));
  n += comparator(static_cast<std::size_t>(ptr_bits));
  return n;
}

Netlist counter(std::size_t bits) {
  Netlist n;
  n.flops = static_cast<double>(bits);
  n.combinational = 3.0 * static_cast<double>(bits);  // incrementer chain
  return n;
}

Netlist comparator(std::size_t bits) {
  Netlist n;
  n.combinational = 1.5 * static_cast<double>(bits);
  return n;
}

Netlist decoder(std::size_t n_out) {
  Netlist n;
  n.combinational = 1.2 * static_cast<double>(n_out);
  return n;
}

Netlist fixed_arbiter(std::size_t n_req) {
  Netlist n;
  // Priority chain: one grant-kill gate pair per requester.
  n.combinational = 2.0 * static_cast<double>(n_req);
  return n;
}

Netlist rr_arbiter(std::size_t n_req) {
  Netlist n;
  // Two priority chains (wrap) + pointer register + thermometer mask.
  n.combinational = 5.0 * static_cast<double>(n_req);
  n.flops = log2ceil(n_req);
  return n;
}

Netlist crc_logic(std::size_t data_bits, std::size_t crc_bits) {
  if (crc_bits == 0) return {};
  Netlist n;
  // Unrolled LFSR: each input bit XORs into ~half the CRC taps, shared
  // across the forest; empirical synthesis cost ~1.5 XOR2 per data bit
  // plus the CRC state terms.
  n.combinational = 1.5 * kXor2 * static_cast<double>(data_bits) +
                    2.0 * static_cast<double>(crc_bits);
  return n;
}

Netlist lut_rom(std::size_t entries, std::size_t width) {
  if (entries <= 1) return {};
  Netlist n;
  // Address decode + OR plane with ~25% minterm density.
  n += decoder(entries);
  n.combinational +=
      0.25 * static_cast<double>(entries) * static_cast<double>(width);
  return n;
}

Netlist const_shifter(std::size_t width) {
  Netlist n;
  // Wiring plus the 2:1 select between shifted/unshifted (head vs body).
  n.combinational = kMux2 * static_cast<double>(width) * 0.5;
  return n;
}

Netlist barrel_shifter(std::size_t width) {
  Netlist n;
  n.combinational = kMux2 * static_cast<double>(width) * log2ceil(width);
  return n;
}

}  // namespace xpl::synth
