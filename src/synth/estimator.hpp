// Area / power / frequency estimation — the "synthesis backend".
//
// Given a component Netlist and its critical-path depth, the estimator
// answers the three questions the paper's evaluation asks:
//   * what is the maximum clock frequency (at a given synthesis effort)?
//   * what is the area when synthesized *at* a target frequency? (area
//     grows as timing tightens: figure F6's area/frequency tradeoff)
//   * what is the power at that frequency and a given switching activity?
#pragma once

#include <string>

#include "src/synth/netlist.hpp"
#include "src/synth/tech.hpp"

namespace xpl::synth {

/// One synthesis run's results for a component.
struct Estimate {
  double area_mm2 = 0.0;
  double power_mw = 0.0;
  double fmax_mhz = 0.0;      ///< max frequency at full effort
  double target_mhz = 0.0;    ///< the frequency it was synthesized for
  bool feasible = true;       ///< target within fmax

  std::string to_string() const;
};

class Estimator {
 public:
  explicit Estimator(Technology tech = Technology::umc130())
      : tech_(tech) {}

  const Technology& tech() const { return tech_; }

  /// Frequency at nominal drive strengths (effort multiplier 1).
  double nominal_fmax_mhz(double logic_levels) const;

  /// Frequency at maximum synthesis effort (the macro/soft-IP flow).
  double max_fmax_mhz(double logic_levels) const;

  /// Frequency a full-custom implementation of the same microarchitecture
  /// reaches (figure F6's upper curve).
  double full_custom_fmax_mhz(double logic_levels) const;

  /// Area multiplier needed to close timing at `target_mhz`
  /// (1.0 below nominal fmax, grows to 1+effort_area_penalty at max).
  double effort_multiplier(double logic_levels, double target_mhz) const;

  /// Full estimate at `target_mhz` with switching `activity` (average
  /// toggle probability per gate per cycle; NoC components run ~0.10-0.20
  /// under load).
  Estimate estimate(const Netlist& netlist, double logic_levels,
                    double target_mhz, double activity = 0.15) const;

  /// Area-only shortcut at relaxed timing.
  double area_mm2(const Netlist& netlist) const;

  /// Full-custom variant of estimate(): same microarchitecture laid out
  /// by hand — denser, and able to chase timing down to
  /// full_custom_delay_scale (figure F6's upper curve).
  Estimate estimate_full_custom(const Netlist& netlist, double logic_levels,
                                double target_mhz,
                                double activity = 0.15) const;

 private:
  double effort_from_floor(double logic_levels, double target_mhz,
                           double floor_scale) const;

  Technology tech_;
};

}  // namespace xpl::synth
