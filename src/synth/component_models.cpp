#include "src/synth/component_models.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/crc.hpp"
#include "src/packet/flit.hpp"

namespace xpl::synth {

namespace {
double log2d(double x) { return std::log2(std::max(2.0, x)); }
}  // namespace

std::size_t wire_bits(std::size_t flit_width, const link::ProtocolConfig& p) {
  // The lane tag rides the wire only when there is more than one lane.
  const std::size_t vc_bits = p.vcs > 1 ? bits_for(p.vcs) : 0;
  return flit_wire_width(flit_width, p.seq_bits, p.crc, vc_bits);
}

Netlist build_switch_netlist(const switchlib::SwitchConfig& config) {
  const std::size_t flit_store = config.flit_width + 2;  // payload+head+tail
  const std::size_t vcs = config.vcs;
  // Lock state: owned output (or input) index + valid bit + lane tag.
  const std::size_t lane_tag = vcs > 1 ? bits_for(vcs) : 0;
  Netlist n;

  // ---- Per input port (protocol parameters may differ per port when the
  // compiler sizes windows to each link's round trip). Buffering,
  // sequencing and wormhole locks replicate per lane; the CRC forest and
  // the request decode are shared (one flit arrives per cycle). The
  // single-lane composition below is the seed model term for term; extra
  // lanes append their replicated structures after it.
  for (std::size_t i = 0; i < config.num_inputs; ++i) {
    const auto& protocol = config.input_protocol(i);
    const std::size_t wire = wire_bits(config.flit_width, protocol);
    // Stage-1 input buffer (payload + control; seqno/CRC are stripped at
    // the receiver).
    n += fifo(config.input_fifo_depth, flit_store);
    // Receiver: CRC check over the whole wire view, expected-seq counter,
    // seq comparator, ack staging register.
    n += crc_logic(wire, crc_width(protocol.crc));
    n += counter(protocol.seq_bits);
    n += comparator(protocol.seq_bits);
    n += dff_bank(protocol.seq_bits + 2);
    // Route peek + request decode toward the outputs.
    n += decoder(config.num_outputs);
    // Wormhole lock: which output this input owns.
    n += dff_bank(static_cast<std::size_t>(log2d(
                      static_cast<double>(config.num_outputs))) + 1);
    // Additional lanes: buffer, sequencing and lock per lane, plus the
    // lane tag every lock grows.
    for (std::size_t v = 1; v < vcs; ++v) {
      n += fifo(config.input_fifo_depth, flit_store);
      n += counter(protocol.seq_bits);
      n += comparator(protocol.seq_bits);
      n += dff_bank(protocol.seq_bits + 2);
      n += dff_bank(static_cast<std::size_t>(log2d(
                        static_cast<double>(config.num_outputs))) + 1);
    }
    n += dff_bank(vcs * lane_tag);
  }

  // ---- Per output port.
  for (std::size_t o = 0; o < config.num_outputs; ++o) {
    const auto& protocol = config.output_protocol(o);
    const std::size_t wire = wire_bits(config.flit_width, protocol);
    // Crossbar column: (num_inputs * vcs)-to-1 mux over the stored flit.
    n += mux(flit_store, config.num_inputs * vcs);
    // Route-consume shifter sits after the crossbar (head flits only).
    n += const_shifter(config.route_bits);
    // Arbiter over (input, lane) requests + allocator lock.
    if (config.arbiter == switchlib::ArbiterKind::kRoundRobin) {
      n += rr_arbiter(config.num_inputs * vcs);
    } else {
      n += fixed_arbiter(config.num_inputs * vcs);
    }
    n += dff_bank(static_cast<std::size_t>(log2d(
                      static_cast<double>(config.num_inputs))) + 1);
    // Output queue ("output queued ... buffering for performance").
    n += fifo(config.output_fifo_depth, flit_store);
    // Go-back-N sender: retransmission buffer sized to the window, next/
    // base sequence counters, resend index, CRC generator.
    n += fifo(protocol.window, flit_store);
    n += counter(protocol.seq_bits);
    n += counter(protocol.seq_bits);
    n += counter(static_cast<std::size_t>(
        log2d(static_cast<double>(protocol.window)) + 1));
    n += crc_logic(wire, crc_width(protocol.crc));
    // Extra pipeline registers (old-xpipes 7-stage emulation).
    n += dff_bank(config.extra_pipeline * flit_store);
    // Additional lanes: queue, retransmission window, sequencing, lock
    // and pipeline registers per lane (CRC generation stays shared).
    for (std::size_t v = 1; v < vcs; ++v) {
      n += dff_bank(static_cast<std::size_t>(log2d(
                        static_cast<double>(config.num_inputs))) + 1);
      n += fifo(config.output_fifo_depth, flit_store);
      n += fifo(protocol.window, flit_store);
      n += counter(protocol.seq_bits);
      n += counter(protocol.seq_bits);
      n += counter(static_cast<std::size_t>(
          log2d(static_cast<double>(protocol.window)) + 1));
      n += dff_bank(config.extra_pipeline * flit_store);
    }
    n += dff_bank(vcs * lane_tag);
  }

  // ---- Control overhead (FSMs, valid trees, clock gating): 8%.
  n.combinational *= 1.08;
  return n;
}

double switch_logic_levels(const switchlib::SwitchConfig& config) {
  // Stage 2 dominates: request decode -> arbiter chain -> grant -> crossbar
  // mux tree -> route shifter -> queue write, in parallel with the CRC
  // forest on the receive side. Calibrated so the macro (max-effort)
  // ceiling lands at the paper's clocks: 4x4 ~1.07 GHz, 6x4 ~980 MHz,
  // 5x5 ~1.0 GHz (and ~1.5 GHz full custom).
  const double arb =
      3.5 * log2d(static_cast<double>(config.num_inputs * config.vcs));
  const double xbar =
      2.0 * log2d(static_cast<double>(config.num_inputs * config.vcs));
  const double out_sel = 2.0 * log2d(static_cast<double>(config.num_outputs));
  const double crc =
      config.protocol.crc == CrcKind::kNone ? 0.0 : 4.0;
  const double base = 10.0;  // latch enables, valid qualification, shifter
  return base + arb + xbar + out_sel + crc;
}

Netlist build_initiator_ni_netlist(const ni::InitiatorConfig& config,
                                   std::size_t num_targets) {
  const PacketFormat& fmt = config.format;
  const std::size_t wire = wire_bits(fmt.flit_width, config.protocol);
  const std::size_t flit_store = fmt.flit_width + 2;
  const std::size_t header_bits = fmt.header.width();
  Netlist n;

  // ---- OCP front end: request beat register + accept logic, response
  // beat register, credit counters both ways.
  const std::size_t req_beat_bits =
      fmt.beat_width + 32 + 12;  // data + addr + control
  n += fifo(config.ocp_req_fifo, req_beat_bits);
  n += dff_bank(fmt.beat_width + 8);  // response beat register
  n += counter(4);
  n += counter(4);

  // ---- Packetization: the paper's header register (~50 bits, one per
  // transaction) and payload register (one per burst beat), plus the
  // flit-decomposition shifter that walks both registers.
  n += dff_bank(header_bits);
  n += dff_bank(fmt.beat_width);
  n += barrel_shifter(fmt.flit_width);
  n += counter(6);  // flit position within register

  // ---- Address decode + route LUT ("from MAddr after LUT"): one range
  // comparator pair per target window plus the route/destination ROM.
  n += Netlist{3.0 * static_cast<double>(num_targets) * 8.0, 0.0};
  n += lut_rom(num_targets,
               fmt.header.route_bits() + fmt.header.node_bits);

  // ---- Outstanding transaction table (multiple outstanding reads /
  // non-posted writes): cmd, burst, thread per txn id.
  const std::size_t txn_entry_bits = 2 + fmt.header.burst_bits +
                                     fmt.header.thread_bits + 1;
  n += dff_bank((std::size_t{1} << fmt.header.txn_bits) * txn_entry_bits / 2);
  n += counter(fmt.header.txn_bits);

  // ---- Response path: depacketizer header/beat assembly registers and
  // the response beat queue toward the core.
  n += dff_bank(header_bits);
  n += dff_bank(fmt.beat_width);
  n += fifo(config.resp_queue_depth, fmt.beat_width + 8);

  // ---- Link endpoints: go-back-N sender (retx buffer + counters + CRC
  // gen) and receiver (CRC check + seq).
  n += fifo(config.protocol.window, flit_store);
  n += counter(config.protocol.seq_bits);
  n += counter(config.protocol.seq_bits);
  n += crc_logic(wire, crc_width(config.protocol.crc));
  n += crc_logic(wire, crc_width(config.protocol.crc));
  n += counter(config.protocol.seq_bits);

  // Additional lanes: per-lane retransmission window + sequencing and a
  // per-lane response reassembler (packets interleave across lanes).
  for (std::size_t v = 1; v < config.vcs; ++v) {
    n += fifo(config.protocol.window, flit_store);
    n += counter(config.protocol.seq_bits);
    n += counter(config.protocol.seq_bits);
    n += counter(config.protocol.seq_bits);
    n += dff_bank(header_bits);
    n += dff_bank(fmt.beat_width);
  }

  n.combinational *= 1.08;
  return n;
}

double initiator_ni_logic_levels(const ni::InitiatorConfig& config) {
  // Address decode (range compare) feeding the LUT read is the long pole,
  // roughly constant; the flit shifter adds log2(width) mux levels.
  // Calibrated so the NI closes ~1.2 GHz at max effort (paper: NIs at
  // 1 GHz alongside the 4x4 switches).
  return 20.0 + 1.0 * log2d(static_cast<double>(config.format.flit_width));
}

Netlist build_target_ni_netlist(const ni::TargetConfig& config,
                                std::size_t num_initiators) {
  const PacketFormat& fmt = config.format;
  const std::size_t wire = wire_bits(fmt.flit_width, config.protocol);
  const std::size_t flit_store = fmt.flit_width + 2;
  const std::size_t header_bits = fmt.header.width();
  Netlist n;

  // ---- Request path: depacketizer registers + job queue holding decoded
  // requests (header + up to one beat in flight; burst beats stream).
  n += dff_bank(header_bits);
  n += dff_bank(fmt.beat_width);
  n += fifo(config.job_queue_depth, header_bits + fmt.beat_width);

  // ---- OCP master front end.
  n += dff_bank(fmt.beat_width + 32 + 12);
  n += counter(4);
  n += counter(4);
  n += fifo(config.ocp_resp_fifo, fmt.beat_width + 8);

  // ---- Pending-response bookkeeping (src, txn, thread per in-flight
  // request) and the response packetizer registers.
  const std::size_t pend_bits = fmt.header.node_bits + fmt.header.txn_bits +
                                fmt.header.thread_bits + 2 +
                                fmt.header.burst_bits;
  n += fifo(4, pend_bits);
  n += dff_bank(header_bits);
  n += dff_bank(fmt.beat_width);
  n += barrel_shifter(fmt.flit_width);

  // ---- Response route LUT (indexed by source NI id).
  n += lut_rom(num_initiators,
               fmt.header.route_bits() + fmt.header.node_bits);

  // ---- Link endpoints (mirror of the initiator).
  n += fifo(config.protocol.window, flit_store);
  n += counter(config.protocol.seq_bits);
  n += counter(config.protocol.seq_bits);
  n += crc_logic(wire, crc_width(config.protocol.crc));
  n += crc_logic(wire, crc_width(config.protocol.crc));
  n += counter(config.protocol.seq_bits);

  // Additional lanes (mirror of the initiator's per-lane structures).
  for (std::size_t v = 1; v < config.vcs; ++v) {
    n += fifo(config.protocol.window, flit_store);
    n += counter(config.protocol.seq_bits);
    n += counter(config.protocol.seq_bits);
    n += counter(config.protocol.seq_bits);
    n += dff_bank(header_bits);
    n += dff_bank(fmt.beat_width);
  }

  n.combinational *= 1.08;
  return n;
}

double target_ni_logic_levels(const ni::TargetConfig& config) {
  return 19.0 + 1.0 * log2d(static_cast<double>(config.format.flit_width));
}

}  // namespace xpl::synth
