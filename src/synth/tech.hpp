// 130 nm technology model.
//
// The paper reports Synopsys synthesis results on a 130 nm standard-cell
// library (area in mm², power in mW, clock up to ~1 GHz). No EDA tools are
// available here, so this model plays the role of that backend (DESIGN.md
// §2): component netlists are expressed in NAND2-equivalent gates and DFF
// counts (netlist.hpp), and this file supplies the technology constants
// that map them to area, power and achievable frequency. The constants are
// calibrated against the paper's anchor points (DESIGN.md §5) and are
// deliberately exposed so studies can re-target them.
#pragma once

namespace xpl::synth {

struct Technology {
  // ---- Area.
  double nand2_area_um2 = 5.1;  ///< one NAND2-equivalent, 130 nm std cell
  double dff_nand2_eq = 5.2;    ///< a scan DFF in NAND2-equivalents
  /// Post-synthesis to post-layout inflation: cell spreading, clock tree,
  /// routing. Applied once per component.
  double layout_overhead = 1.18;

  // ---- Timing.
  double gate_delay_ps = 45.0;  ///< per logic level at nominal drive
  double setup_skew_ps = 150.0; ///< clk->q + setup + skew margin
  /// Best-case per-level delay scale reachable by upsizing/restructuring
  /// at maximum synthesis effort — the "macro based" flow of figure F6.
  double min_delay_scale = 0.60;
  /// What hand design reaches on the same path — the "full custom" curve
  /// of figure F6 (the paper's 5x5 switch runs to ~1.5 GHz there).
  double full_custom_delay_scale = 0.37;
  /// Hand layout packs tighter than placed-and-routed std cells.
  double full_custom_density = 0.85;

  // ---- Synthesis effort/area tradeoff: area multiplier grows from 1 at
  // relaxed timing to (1 + effort_area_penalty) at min_delay_scale.
  double effort_area_penalty = 0.70;
  double effort_shape = 1.6;  ///< exponent of the penalty curve

  // ---- Power (1.2 V nominal).
  double gate_energy_fj = 4.2;   ///< switched energy per gate-eq toggle
  double flop_clock_fj = 2.4;    ///< clock-tree + internal toggle per DFF
  double leakage_nw_per_gate = 15.0;
  /// Extra switched power of upsized gates at high effort (sqrt of the
  /// area multiplier — only the critical cone is upsized).
  double effort_power_exponent = 0.5;

  /// The default library used across the repository.
  static Technology umc130();
};

}  // namespace xpl::synth
