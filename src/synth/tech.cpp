#include "src/synth/tech.hpp"

namespace xpl::synth {

Technology Technology::umc130() { return Technology{}; }

}  // namespace xpl::synth
