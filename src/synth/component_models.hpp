// Gate-level models of the xpipes lite components.
//
// Each builder walks the exact microarchitecture the simulator implements
// (switchlib/switch.hpp, ni/ni_initiator.hpp, ni/ni_target.hpp) and sums
// primitive costs from netlist.hpp, so the area/power scaling with flit
// width, port count and buffer depth is structural. Logic-depth functions
// model the critical path for the frequency estimates.
#pragma once

#include "src/ni/ni_initiator.hpp"
#include "src/ni/ni_target.hpp"
#include "src/switchlib/switch.hpp"
#include "src/synth/netlist.hpp"

namespace xpl::synth {

/// Bits of one flit on the wire (payload + head/tail + seqno + CRC): the
/// width every link-level buffer and datapath is built for.
std::size_t wire_bits(std::size_t flit_width, const link::ProtocolConfig& p);

/// Switch netlist: input buffers, route shifter, arbiters + allocator
/// locks, crossbar, output queues, go-back-N retransmission buffers,
/// per-port CRC generate/check.
Netlist build_switch_netlist(const switchlib::SwitchConfig& config);

/// Critical-path logic levels of the switch (arbitration + crossbar
/// traversal dominates; grows with ln of the port counts).
double switch_logic_levels(const switchlib::SwitchConfig& config);

/// Initiator NI netlist: OCP front-end registers, header/payload
/// registers, flit alignment shifter, address-decode + route LUT,
/// outstanding-transaction table, response depacketizer, link endpoints.
Netlist build_initiator_ni_netlist(const ni::InitiatorConfig& config,
                                   std::size_t num_targets);

double initiator_ni_logic_levels(const ni::InitiatorConfig& config);

/// Target NI netlist: request depacketizer + job queue, OCP master
/// front-end, response packetizer, response-route LUT, link endpoints.
Netlist build_target_ni_netlist(const ni::TargetConfig& config,
                                std::size_t num_initiators);

double target_ni_logic_levels(const ni::TargetConfig& config);

}  // namespace xpl::synth
