// Embedded SoC task-graph benchmark library.
//
// The workload layer's application catalogue: the classic multimedia core
// graphs used throughout the xpipes line of work (MPEG-4 decoder, Video
// Object Plane Decoder, Multi-Window Display), addressable by name so
// campaign specs can say `pattern app:mpeg4` and tools can enumerate what
// is available. The graphs themselves live in appgraph/ (they also feed
// the SunMap-style mapping flow); this module adds the by-name registry
// and the deterministic bridge from a core graph to the per-pair weight
// matrix that traffic::Pattern::kWeighted consumes (DESIGN.md §5).
#pragma once

#include <string>
#include <vector>

#include "src/appgraph/core_graph.hpp"
#include "src/topology/topology.hpp"

namespace xpl::workload {

/// Names of the embedded benchmarks, in stable order:
/// "mpeg4", "vopd", "mwd".
const std::vector<std::string>& benchmark_names();

/// True when `name` is one of benchmark_names().
bool is_benchmark(const std::string& name);

/// Returns the named benchmark's core graph; throws xpl::Error on an
/// unknown name (the error lists the known ones).
appgraph::CoreGraph benchmark(const std::string& name);

/// Deterministically places `graph` onto `topo` (greedy placement, no
/// RNG — the same spec always yields the same weights) and returns the
/// initiator-index-by-target-index bandwidth matrix for
/// traffic::Pattern::kWeighted. Every switch of `topo` must carry at
/// least one initiator and one target NI (the sweep engine's uniform NI
/// plan guarantees this); flows between cores mapped to the same switch
/// still cross it once (initiator NI -> switch -> target NI). Rows of
/// initiators whose switch received no sending core are all-zero
/// (silent), which TrafficDriver honours.
std::vector<std::vector<double>> benchmark_weights(
    const appgraph::CoreGraph& graph, const topology::Topology& topo);

}  // namespace xpl::workload
