// Transaction traces: record, persist, replay.
//
// The workload layer's third scenario source (after synthetic patterns and
// app benchmarks): capture the exact transaction stream a live run injects
// and replay it, cycle for cycle, against any compatible network. The file
// format is line-oriented and comment-friendly like the NoC and `.sweep`
// spec formats (docs/FORMATS.md is the reference) and round-trips exactly:
// write_trace(parse_trace(text)) is canonical.
//
//   # xpipes lite transaction trace
//   trace mpeg4_burst
//   initiators 12
//   targets 12
//   0 3 5 read 64 2 1
//   0 7 5 write 128 4 0
//   12 3 5 writenp 64 1 3
//
// Header directives come first; every remaining line is one transaction,
//   <cycle> <initiator> <target> <read|write|writenp> <offset> <burst>
//   [thread]
// sorted by non-decreasing cycle (the trailing OCP thread id defaults to
// 0). Entries reuse traffic::TraceEntry, so a header-less body is exactly
// the legacy traffic/ trace body.
//
// Determinism contract (DESIGN.md §5): a trace pins every scheduling
// decision — injection cycle, source, destination, command, burst length.
// TraceDriver regenerates write payloads as a pure function of the entry
// index, so a replay involves no RNG at all: replaying the same trace on
// the same network config yields bit-identical RunStats no matter what
// seeds the surrounding campaign uses, and re-recording a replay
// reproduces the trace byte for byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/noc/network.hpp"
#include "src/traffic/traffic.hpp"

namespace xpl::workload {

/// A named, replayable transaction stream plus the shape of the network
/// it was captured on (used to validate compatibility before replay).
struct Trace {
  std::string name = "trace";
  std::uint32_t initiators = 0;  ///< master cores the trace addresses
  std::uint32_t targets = 0;     ///< slave cores the trace addresses
  std::vector<traffic::TraceEntry> entries;
};

/// Parses the trace format above; throws xpl::Error with a line number on
/// malformed input (unknown directive, out-of-order cycles, bad command).
Trace parse_trace(const std::string& text);

/// Reads and parses a trace file.
Trace load_trace(const std::string& path);

/// Renders `trace` in canonical form: banner comment, fixed directive
/// order, one entry per line. parse_trace(write_trace(t)) == t.
std::string write_trace(const Trace& trace);

/// Writes the canonical form to `path`.
void save_trace(const Trace& trace, const std::string& path);

/// Captures every transaction pushed into `network`'s master cores while
/// alive (it taps ocp::MasterCore::on_push on all of them; the taps are
/// removed on destruction). Entries carry the kernel cycle at push time,
/// so recording a TrafficDriver/TraceDriver run reproduces the driver's
/// schedule exactly. One recorder per network at a time.
class TraceRecorder {
 public:
  explicit TraceRecorder(noc::Network& network, std::string name = "trace");
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const Trace& trace() const { return trace_; }
  std::size_t recorded() const { return trace_.entries.size(); }

 private:
  noc::Network& network_;
  Trace trace_;
};

/// Replays a trace against a compatible network: step() once per cycle
/// alongside the kernel, like traffic::TrafficDriver. Compatibility
/// (header initiator/target counts, plus the per-entry range checks) is
/// validated at construction. The replay engine is traffic::TracePlayer
/// with one policy change: write payloads are a pure function of the
/// entry index — no RNG, no seed — so replays are deterministic by
/// construction.
class TraceDriver {
 public:
  TraceDriver(noc::Network& network, Trace trace);

  /// Injects every entry scheduled at or before the current cycle.
  void step() { player_.step(); }

  /// Convenience: step the driver and the network together.
  void run(std::size_t cycles) { player_.run(cycles); }

  /// Runs until the whole trace is injected, then drains the network
  /// (run_until_quiescent). Returns total cycles stepped.
  std::uint64_t replay(std::uint64_t max_drain_cycles = 100000);

  /// True when every entry has been injected.
  bool done() const { return player_.done(); }
  std::uint64_t injected() const { return player_.injected(); }
  const std::string& name() const { return name_; }

 private:
  noc::Network& network_;
  std::string name_;  ///< header name (entries live in the player)
  traffic::TracePlayer player_;
};

}  // namespace xpl::workload
