#include "src/workload/benchmarks.hpp"

#include "src/appgraph/mapping.hpp"
#include "src/common/error.hpp"

namespace xpl::workload {

const std::vector<std::string>& benchmark_names() {
  static const std::vector<std::string> names{"mpeg4", "vopd", "mwd"};
  return names;
}

bool is_benchmark(const std::string& name) {
  for (const auto& n : benchmark_names()) {
    if (n == name) return true;
  }
  return false;
}

appgraph::CoreGraph benchmark(const std::string& name) {
  if (name == "mpeg4") return appgraph::mpeg4_decoder();
  if (name == "vopd") return appgraph::vopd();
  if (name == "mwd") return appgraph::mwd();
  std::string known;
  for (const auto& n : benchmark_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw Error("workload: unknown benchmark '" + name + "' (known: " + known +
              ")");
}

std::vector<std::vector<double>> benchmark_weights(
    const appgraph::CoreGraph& graph, const topology::Topology& topo) {
  // First initiator / target NI position per switch, in the NI-insertion
  // order the Network uses for master(i)/slave(t) indexing.
  const std::size_t num_switches = topo.num_switches();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> switch_initiator(num_switches, kNone);
  std::vector<std::size_t> switch_target(num_switches, kNone);
  const auto initiator_ids = topo.initiator_ids();
  const auto target_ids = topo.target_ids();
  for (std::size_t i = 0; i < initiator_ids.size(); ++i) {
    const std::uint32_t s = topo.ni(initiator_ids[i]).switch_id;
    if (switch_initiator[s] == kNone) switch_initiator[s] = i;
  }
  for (std::size_t t = 0; t < target_ids.size(); ++t) {
    const std::uint32_t s = topo.ni(target_ids[t]).switch_id;
    if (switch_target[s] == kNone) switch_target[s] = t;
  }
  for (std::size_t s = 0; s < num_switches; ++s) {
    require(switch_initiator[s] != kNone && switch_target[s] != kNone,
            "benchmark_weights: every switch needs an initiator and a "
            "target NI");
  }

  const appgraph::Mapping mapping = appgraph::greedy_map(graph, topo);

  std::vector<std::vector<double>> weights(
      initiator_ids.size(), std::vector<double>(target_ids.size(), 0.0));
  for (const appgraph::Flow& f : graph.flows()) {
    const std::size_t src_ini =
        switch_initiator[mapping.core_to_switch[f.src]];
    const std::size_t dst_tgt = switch_target[mapping.core_to_switch[f.dst]];
    weights[src_ini][dst_tgt] += f.bandwidth;
  }
  return weights;
}

}  // namespace xpl::workload
