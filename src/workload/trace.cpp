#include "src/workload/trace.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/error.hpp"

namespace xpl::workload {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw Error("trace line " + std::to_string(line) + ": " + what);
}

std::uint32_t parse_count(const std::string& token, std::size_t line) {
  if (token.empty() ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    fail(line, "bad count '" + token + "'");
  }
  unsigned long long value = 0;
  try {
    value = std::stoull(token);
  } catch (const std::logic_error&) {
    fail(line, "bad count '" + token + "'");
  }
  if (value > 0xFFFFFFFFull) fail(line, "count '" + token + "' too large");
  return static_cast<std::uint32_t>(value);
}

/// Replay write payload for beat `beat` of entry `index`: a splitmix64
/// finalizer over the pair, so payloads are reproducible from the trace
/// alone — no RNG state, no seed.
std::uint64_t payload_word(std::uint64_t index, std::uint32_t beat) {
  std::uint64_t z = (index << 20) + beat + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Trace parse_trace(const std::string& text) {
  Trace trace;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    // Directive lines start with a keyword; entry lines with a number.
    std::string body = line;
    const auto hash = body.find('#');
    if (hash != std::string::npos) body.resize(hash);
    std::istringstream ls(body);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only
    if (key == "trace" || key == "initiators" || key == "targets") {
      if (!trace.entries.empty()) {
        fail(lineno, "'" + key + "' directive after the first entry");
      }
      std::string value, extra;
      if (!(ls >> value) || (ls >> extra)) {
        fail(lineno, "'" + key + "' expects exactly one argument");
      }
      if (key == "trace") {
        trace.name = value;
      } else if (key == "initiators") {
        trace.initiators = parse_count(value, lineno);
      } else {
        trace.targets = parse_count(value, lineno);
      }
      continue;
    }
    // Entry lines start with a cycle number; any other keyword is a
    // typo'd directive, which must not be skipped silently (a dropped
    // `initiators` line would disable the replay shape check).
    if (key.find_first_not_of("0123456789") != std::string::npos) {
      fail(lineno, "unknown directive '" + key + "'");
    }
    traffic::TraceEntry entry;
    if (!traffic::parse_trace_line(line, lineno, entry)) continue;
    if (!trace.entries.empty()) {
      require(entry.cycle >= trace.entries.back().cycle,
              "trace line " + std::to_string(lineno) +
                  ": cycles must be non-decreasing");
    }
    if (trace.initiators != 0 && entry.initiator >= trace.initiators) {
      fail(lineno, "initiator index exceeds the 'initiators' count");
    }
    if (trace.targets != 0 && entry.target >= trace.targets) {
      fail(lineno, "target index exceeds the 'targets' count");
    }
    trace.entries.push_back(entry);
  }
  return trace;
}

Trace load_trace(const std::string& path) {
  std::ifstream in(path);
  require(in.good(), "workload::load_trace: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return parse_trace(text.str());
}

std::string write_trace(const Trace& trace) {
  // A name with whitespace or '#' would not survive the line-oriented
  // reload (extra tokens / truncation), breaking the round-trip
  // guarantee — reject it here rather than emit a corrupt file.
  require(!trace.name.empty() &&
              trace.name.find_first_of(" \t#") == std::string::npos,
          "write_trace: trace name must be one '#'-free token, got '" +
              trace.name + "'");
  std::ostringstream os;
  os << "# xpipes lite transaction trace\n";
  os << "trace " << trace.name << "\n";
  os << "initiators " << trace.initiators << "\n";
  os << "targets " << trace.targets << "\n";
  for (const traffic::TraceEntry& e : trace.entries) {
    os << e.cycle << " " << e.initiator << " " << e.target << " "
       << traffic::trace_cmd_name(e.cmd) << " " << e.addr_offset << " "
       << e.burst << " " << e.thread << "\n";
  }
  return os.str();
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path);
  require(out.good(), "save_trace: cannot open " + path);
  out << write_trace(trace);
}

TraceRecorder::TraceRecorder(noc::Network& network, std::string name)
    : network_(network) {
  trace_.name = std::move(name);
  trace_.initiators = static_cast<std::uint32_t>(network.num_initiators());
  trace_.targets = static_cast<std::uint32_t>(network.num_targets());
  const std::uint64_t window = network.config().target_window;
  for (std::size_t i = 0; i < network.num_initiators(); ++i) {
    // Enforce the one-recorder-per-network rule: clobbering a live tap
    // would silently truncate the other recorder's trace.
    require(!network.master(i).on_push,
            "TraceRecorder: master already has a push tap installed");
    network.master(i).on_push = [this, i, window](
                                    const ocp::Transaction& txn,
                                    std::uint64_t release) {
      traffic::TraceEntry entry;
      // Plain pushes carry release 0 and are issuable now; pre-rolled
      // epoch pushes carry release >= the current (epoch-base) cycle.
      // Either way the max is the cycle the schedule actually injects.
      entry.cycle = std::max(release, network_.kernel().cycle());
      entry.initiator = static_cast<std::uint32_t>(i);
      entry.target = static_cast<std::uint32_t>(txn.addr / window);
      entry.cmd = txn.cmd;
      entry.addr_offset = txn.addr % window;
      entry.burst = txn.burst_len;
      entry.thread = txn.thread_id;
      XPL_ASSERT(trace_.entries.empty() ||
                 entry.cycle >= trace_.entries.back().cycle);
      trace_.entries.push_back(entry);
    };
  }
}

TraceRecorder::~TraceRecorder() {
  for (std::size_t i = 0; i < network_.num_initiators(); ++i) {
    network_.master(i).on_push = nullptr;
  }
}

namespace {

/// Header-count validation runs before the TracePlayer member is built
/// so the error names the shape mismatch, not an entry index. Returns
/// the entries by move — the driver keeps no second copy.
std::vector<traffic::TraceEntry> checked_entries(Trace trace,
                                                 noc::Network& network) {
  if (trace.initiators != 0) {
    require(trace.initiators == network.num_initiators(),
            "TraceDriver: trace expects " +
                std::to_string(trace.initiators) + " initiators, network "
                "has " + std::to_string(network.num_initiators()));
  }
  if (trace.targets != 0) {
    require(trace.targets == network.num_targets(),
            "TraceDriver: trace expects " + std::to_string(trace.targets) +
                " targets, network has " +
                std::to_string(network.num_targets()));
  }
  return std::move(trace.entries);
}

}  // namespace

TraceDriver::TraceDriver(noc::Network& network, Trace trace)
    : network_(network),
      name_(trace.name),
      player_(network, checked_entries(std::move(trace), network),
              &payload_word) {}

std::uint64_t TraceDriver::replay(std::uint64_t max_drain_cycles) {
  std::uint64_t cycles = 0;
  while (!done()) {
    player_.step();
    network_.step();
    ++cycles;
  }
  return cycles + network_.run_until_quiescent(max_drain_cycles);
}

}  // namespace xpl::workload
