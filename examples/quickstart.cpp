// Quickstart: build a small xpipes lite NoC and send real transactions.
//
//   1. describe a topology (2x2 mesh, one CPU and one memory per switch)
//   2. compile it (simulation view)
//   3. issue OCP transactions from a CPU and read the results
//   4. print the network's synthesis estimate (area/power/clock)
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/compiler/compiler.hpp"
#include "src/topology/generators.hpp"

int main() {
  using namespace xpl;

  // ---- 1. Topology: 2x2 mesh, each switch hosts an initiator NI (a CPU)
  // and a target NI (a memory).
  compiler::NocSpec spec;
  spec.name = "quickstart";
  spec.topo = topology::make_mesh(
      2, 2, topology::NiPlan::uniform(4, /*initiators=*/1, /*targets=*/1));
  spec.net.flit_width = 32;
  spec.net.routing = topology::RoutingAlgorithm::kXY;
  spec.net.target_window = 1 << 12;  // 4 KiB address window per memory

  // ---- 2. Compile to the simulation view.
  compiler::XpipesCompiler xpipes;
  auto net = xpipes.build_simulation(spec);
  std::printf("built '%s': %zu switches, %zu CPUs, %zu memories\n",
              spec.name.c_str(), net->num_switches(),
              net->num_initiators(), net->num_targets());
  std::printf("header is %zu bits (%zu flit(s) at %zu-bit flits)\n",
              net->format().header.width(), net->format().header_flits(),
              net->format().flit_width);

  // ---- 3. CPU 0 writes a burst to memory 3 (diagonal corner), reads it
  // back, and we inspect the completed transactions.
  ocp::Transaction write;
  write.cmd = ocp::Cmd::kWrite;
  write.addr = net->target_base(3) + 0x40;
  write.burst_len = 4;
  write.data = {0x11, 0x22, 0x33, 0x44};
  net->master(0).push_transaction(write);

  ocp::Transaction read;
  read.cmd = ocp::Cmd::kRead;
  read.addr = net->target_base(3) + 0x40;
  read.burst_len = 4;
  net->master(0).push_transaction(read);

  net->run_until_quiescent(10000);

  const auto& results = net->master(0).completed();
  std::printf("\nCPU0 completed %zu transactions:\n", results.size());
  for (const auto& r : results) {
    std::printf("  %s in %llu cycles:",
                r.data.empty() ? "write" : "read ",
                static_cast<unsigned long long>(r.complete_cycle -
                                                r.issue_cycle));
    for (const auto d : r.data) std::printf(" 0x%llx",
                                            static_cast<unsigned long long>(d));
    std::printf("\n");
  }

  // ---- 4. What would this NoC cost in silicon?
  const auto report = xpipes.estimate(spec, /*target_mhz=*/1000.0);
  std::printf("\nsynthesis estimate @1GHz: %.3f mm2, %.1f mW, "
              "clock ceiling %.0f MHz\n",
              report.total_area_mm2, report.total_power_mw,
              report.min_fmax_mhz);
  std::printf("run examples/generate_systemc to emit the synthesis view.\n");
  return 0;
}
