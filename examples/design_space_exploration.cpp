// Design-space exploration: the "power of abstraction" argument.
//
// Sweeps the two axes the paper's evaluation sweeps — flit width and
// candidate topology — for the VOPD application, printing a Pareto-style
// table of area / power / clock / latency so an architect can pick a
// design point. Everything comes from the same two views the compiler
// guarantees to agree: the synthesis model and the cycle-accurate
// simulator.
//
// Build & run:  ./build/examples/design_space_exploration
#include <cstdio>

#include "src/appgraph/explore.hpp"
#include "src/compiler/compiler.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"

int main() {
  using namespace xpl;
  const auto graph = appgraph::vopd();
  std::printf("application '%s': %zu cores, %zu flows\n\n",
              graph.name().c_str(), graph.num_cores(),
              graph.flows().size());

  // ---- Axis 1: topology candidates at 32-bit flits.
  appgraph::ExploreOptions options;
  options.anneal_iterations = 8000;
  options.sim_cycles = 8000;
  options.target_mhz = 800.0;
  options.net.target_window = 1 << 12;
  const auto candidates = appgraph::default_candidates(graph.num_cores());
  const auto results = explore(graph, candidates, options);

  std::printf("--- topology sweep (32-bit flits, synthesized @800 MHz)\n");
  std::printf("%-14s %-10s %-10s %-10s %-12s\n", "topology", "area_mm2",
              "power_mW", "fmax_MHz", "lat_cycles");
  for (const auto& r : results) {
    std::printf("%-14s %-10.3f %-10.1f %-10.0f %-12.1f\n", r.name.c_str(),
                r.area_mm2, r.power_mw, r.fmax_mhz, r.avg_latency_cycles);
  }

  // ---- Axis 2: flit width on the best mesh.
  std::printf("\n--- flit-width sweep (mesh, 12 cores)\n");
  std::printf("%-10s %-10s %-10s %-12s %-14s\n", "flit", "area_mm2",
              "power_mW", "lat_cycles", "flits/txn");
  const auto base =
      topology::make_mesh(4, 3, topology::NiPlan::uniform(12, 0, 0));
  Rng rng(5);
  auto mapping = appgraph::greedy_map(graph, base, 1);
  mapping = appgraph::anneal_map(graph, base, mapping, rng, 8000, 1);
  const auto mapped = appgraph::build_mapped_topology(graph, base, mapping);

  for (const std::size_t width : {32u, 64u, 128u}) {
    compiler::NocSpec spec;
    spec.name = "vopd";
    spec.topo = mapped.topo;
    spec.net.flit_width = width;
    spec.net.routing = topology::RoutingAlgorithm::kXY;
    spec.net.target_window = 1 << 12;
    compiler::XpipesCompiler xpipes;
    const auto report = xpipes.estimate(spec, 800.0);

    auto net = xpipes.build_simulation(spec);
    traffic::TrafficConfig tcfg;
    tcfg.pattern = traffic::Pattern::kWeighted;
    tcfg.weights = mapped.weights;
    tcfg.injection_rate = 0.04;
    tcfg.seed = 3;
    traffic::TrafficDriver driver(*net, tcfg);
    driver.run(8000);
    net->run_until_quiescent(100000);
    const auto stats = traffic::collect_run(*net, 8000);
    const double flits_per_txn =
        stats.transactions == 0
            ? 0.0
            : static_cast<double>(stats.link_flits) /
                  static_cast<double>(stats.transactions);
    std::printf("%-10zu %-10.3f %-10.1f %-12.1f %-14.1f\n", width,
                report.total_area_mm2, report.total_power_mw,
                stats.latency.mean, flits_per_txn);
  }
  std::printf(
      "\nwider flits buy latency (fewer beats per packet) at a roughly\n"
      "linear area/power cost — the tradeoff the paper's sweeps chart.\n");
  return 0;
}
