// Synthesis view generation: what the original xpipesCompiler shipped.
//
// Compiles the paper's 3x4 mesh case study and writes the generated
// SystemC — one class per distinct component configuration, the routing
// tables, and the hierarchical top level — to ./xpipes_generated/.
//
// Build & run:  ./build/examples/generate_systemc
#include <cstdio>

#include "src/compiler/compiler.hpp"
#include "src/topology/generators.hpp"

int main() {
  using namespace xpl;

  compiler::NocSpec spec;
  spec.name = "case_study";
  spec.topo = topology::make_paper_case_study();
  spec.net.flit_width = 32;
  spec.net.routing = topology::RoutingAlgorithm::kXY;
  spec.net.target_window = 1 << 12;

  compiler::XpipesCompiler xpipes;
  const auto files = xpipes.emit_systemc(spec);
  const std::string dir = "xpipes_generated";
  xpipes.write_systemc(spec, dir);

  std::printf("emitted %zu files to ./%s/:\n", files.size(), dir.c_str());
  std::size_t total_lines = 0;
  for (const auto& [name, content] : files) {
    std::size_t lines = 0;
    for (const char c : content) {
      if (c == '\n') ++lines;
    }
    total_lines += lines;
    std::printf("  %-34s %5zu lines\n", name.c_str(), lines);
  }
  std::printf("total: %zu lines of generated SystemC\n", total_lines);

  const auto report = xpipes.estimate(spec, 900.0);
  std::printf("\nthe same spec, through the synthesis model @900 MHz:\n");
  std::printf("  %zu instances, %.2f mm2, %.0f mW, min fmax %.0f MHz\n",
              report.instances.size(), report.total_area_mm2,
              report.total_power_mw, report.min_fmax_mhz);
  std::printf("simulation and synthesis views are generated from one\n"
              "specification — the paper's orthogonal-views guarantee.\n");
  return 0;
}
