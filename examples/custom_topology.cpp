// Custom, domain-specific topology — the paper's core pitch.
//
// "Application mapping (custom, domain-specific)": instead of a regular
// mesh, build the network the application actually needs. Here: a video
// pipeline whose heavy stream gets a dedicated switch chain while the
// control processor hangs off a side switch. The topology is written as a
// spec file (what the real xpipesCompiler consumed), parsed back, checked
// for deadlock under up*/down* routing, floorplanned, simulated, and
// estimated — the full flow on a hand-crafted network.
//
// Build & run:  ./build/examples/custom_topology
#include <cstdio>

#include "src/appgraph/floorplan.hpp"
#include "src/compiler/compiler.hpp"
#include "src/compiler/spec_io.hpp"
#include "src/topology/deadlock.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"

namespace {

const char kSpec[] = R"(# hand-crafted video pipeline NoC
noc videopipe
flit_width 32
beat_width 32
max_burst 8
threads 2
target_window 4096
routing updown
arbiter rr
crc crc8

# stream spine: capture -> proc -> out
switch spine0
switch spine1
switch spine2
# control sits off to the side
switch side

link spine0 spine1
link spine1 spine0
link spine1 spine2
link spine2 spine1
link spine1 side
link side spine1

initiator camera   at spine0
initiator proc     at spine1
initiator cpu      at side
target    framebuf at spine1
target    encoder  at spine2
target    regs     at side
)";

}  // namespace

int main() {
  using namespace xpl;

  // ---- Parse the hand-written spec.
  compiler::NocSpec spec = compiler::parse_spec(kSpec);
  std::printf("parsed '%s': %zu switches, %zu links, %zu NIs\n",
              spec.name.c_str(), spec.topo.num_switches(),
              spec.topo.num_links(), spec.topo.num_nis());

  // ---- Deadlock check on the routing function.
  const auto tables =
      topology::compute_all_routes(spec.topo, spec.net.routing);
  const auto report = topology::check_deadlock(spec.topo, tables);
  std::printf("routing (%s): %s, longest route %zu hops\n",
              topology::routing_name(spec.net.routing),
              report.deadlock_free ? "deadlock-free" : "CYCLIC!",
              tables.max_hops());

  // ---- Floorplan the irregular network and pipeline long wires.
  Rng rng(3);
  appgraph::FloorplanOptions fopt;
  fopt.tile_mm = 2.0;
  fopt.mm_per_cycle = 2.0;
  const auto plan = appgraph::make_floorplan(spec.topo, fopt, rng);
  appgraph::apply_link_stages(spec.topo, plan, fopt.mm_per_cycle);
  std::printf("floorplan: %zux%zu tiles, %.0f mm of link wire\n",
              plan.grid_width, plan.grid_height,
              plan.total_wire_mm(spec.topo));

  // ---- Per-instance buffer sizing.
  compiler::XpipesCompiler xpipes;
  const auto depths = xpipes.optimize_buffer_sizes(spec);
  std::printf("output-queue depths:");
  for (std::size_t s = 0; s < depths.size(); ++s) {
    std::printf(" %s=%zu", spec.topo.switch_node(
                               static_cast<std::uint32_t>(s)).name.c_str(),
                depths[s]);
  }
  std::printf("\n");

  // ---- Simulate the video traffic: camera streams into framebuf,
  // proc streams framebuf -> encoder, cpu pokes registers.
  auto net = xpipes.build_simulation(spec);
  traffic::TrafficConfig tcfg;
  tcfg.pattern = traffic::Pattern::kWeighted;
  // rows: camera, proc, cpu; cols: framebuf, encoder, regs
  tcfg.weights = {{500, 0, 1},     // camera -> framebuf
                  {250, 500, 0},   // proc -> framebuf + encoder
                  {10, 0, 50}};    // cpu -> regs mostly
  tcfg.injection_rate = 0.10;
  tcfg.max_burst = 8;
  tcfg.seed = 5;
  traffic::TrafficDriver driver(*net, tcfg);
  const std::size_t cycles = 20000;
  driver.run(cycles);
  net->run_until_quiescent(200000);

  const auto stats = traffic::collect_run(*net, cycles);
  std::printf("\nsimulated %zu cycles of pipeline traffic:\n", cycles);
  std::printf("  %s\n", stats.to_string().c_str());
  const auto loads = traffic::collect_link_loads(*net, cycles);
  std::printf("  hottest links:\n");
  for (std::size_t i = 0; i < 4 && i < loads.size(); ++i) {
    std::printf("    %-12s %.3f flits/cycle\n", loads[i].name.c_str(),
                loads[i].utilization);
  }

  // ---- And the silicon cost.
  const auto synth = xpipes.estimate(spec, 900.0);
  std::printf("\nsilicon @900 MHz: %.3f mm2, %.1f mW, ceiling %.0f MHz\n",
              synth.total_area_mm2, synth.total_power_mw,
              synth.min_fmax_mhz);
  std::printf("\nwrite this spec to disk and feed it to tools/xpipesc for\n"
              "the same flow from the command line.\n");
  return 0;
}
