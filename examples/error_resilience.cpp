// Error resilience: unreliable links, reliable NoC.
//
// xpipes lite assumes links can corrupt flits in flight and recovers with
// per-flit CRC + ACK/nACK go-back-N retransmission. This example injects
// aggressive bit errors into every inter-switch link of a mesh, runs a
// data-integrity workload, and shows that (a) every transaction
// completes, (b) every byte survives, (c) the cost is retransmissions
// and latency, not correctness.
//
// Build & run:  ./build/examples/error_resilience
#include <cstdio>

#include "src/noc/network.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"

int main() {
  using namespace xpl;

  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  cfg.bit_error_rate = 1e-3;  // roughly 1 in 20 flits corrupted per hop
  cfg.crc = CrcKind::kCrc16;
  cfg.seed = 42;
  noc::Network net(
      topology::make_mesh(3, 3, topology::NiPlan::uniform(9, 1, 1),
                          /*link_stages=*/2),
      cfg);
  std::printf("3x3 mesh, 2-stage pipelined links, BER %.0e, %s checking\n",
              cfg.bit_error_rate, crc_name(cfg.crc));

  // Every CPU writes a signature pattern across a far memory, then reads
  // it back.
  const std::size_t kWords = 16;
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    const std::size_t t = (i + 4) % net.num_targets();
    for (std::size_t w = 0; w < kWords; ++w) {
      ocp::Transaction wr;
      wr.cmd = ocp::Cmd::kWriteNp;
      wr.addr = net.target_base(t) + 8 * w;
      wr.burst_len = 1;
      wr.data = {0xC0DE0000 + 0x100 * i + w};
      net.master(i).push_transaction(wr);
    }
    for (std::size_t w = 0; w < kWords; ++w) {
      ocp::Transaction rd;
      rd.cmd = ocp::Cmd::kRead;
      rd.addr = net.target_base(t) + 8 * w;
      rd.burst_len = 1;
      net.master(i).push_transaction(rd);
    }
  }

  const auto cycles = net.run_until_quiescent(2000000);

  std::size_t checked = 0;
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    const auto& completed = net.master(i).completed();
    for (std::size_t w = 0; w < kWords; ++w) {
      const auto& rd = completed.at(kWords + w);
      ++checked;
      if (rd.data.at(0) != 0xC0DE0000 + 0x100 * i + w) ++wrong;
    }
  }

  std::printf("\nran %llu cycles\n", static_cast<unsigned long long>(cycles));
  std::printf("flits carried on links : %llu\n",
              static_cast<unsigned long long>(net.total_link_flits()));
  std::uint64_t corrupted = 0;
  for (const auto& link : net.links()) corrupted += link->flits_corrupted();
  std::printf("flits corrupted        : %llu\n",
              static_cast<unsigned long long>(corrupted));
  std::printf("retransmissions        : %llu\n",
              static_cast<unsigned long long>(net.total_retransmissions()));
  std::printf("words verified         : %zu (%zu wrong)\n", checked, wrong);
  std::printf(wrong == 0 ? "\nall data intact: the ACK/nACK protocol "
                           "absorbed every error.\n"
                         : "\nDATA CORRUPTION — protocol failure!\n");
  return wrong == 0 ? 0 : 1;
}
