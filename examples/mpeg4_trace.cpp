// MPEG-4 trace record/replay: the workload layer end to end.
//
// application core graph -> deterministic placement -> bursty weighted
// traffic with a TraceRecorder tapped in -> trace file on disk -> reload
// -> deterministic replay on a fresh network -> identical RunStats.
//
// This is the workload/ determinism contract (DESIGN.md §5) made
// visible: the trace pins every scheduling decision, so the replay needs
// no RNG and reproduces the recorded run's statistics exactly — the
// property that makes traces a sound currency for comparing design
// points ("same workload, different network").
//
// Build & run:  ./build/mpeg4_trace [trace-file]   (default: mpeg4.trace)
#include <cstdio>
#include <string>

#include "src/compiler/compiler.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"
#include "src/workload/benchmarks.hpp"
#include "src/workload/trace.hpp"

namespace {

xpl::compiler::NocSpec mpeg4_mesh_spec() {
  xpl::compiler::NocSpec spec;
  spec.name = "mpeg4_trace";
  spec.topo =
      xpl::topology::make_mesh(4, 3, xpl::topology::NiPlan::uniform(12, 1, 1));
  spec.net.flit_width = 32;
  spec.net.routing = xpl::topology::RoutingAlgorithm::kXY;
  spec.net.target_window = 1 << 12;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xpl;
  const std::string trace_path = argc > 1 ? argv[1] : "mpeg4.trace";
  const std::size_t cycles = 8000;

  try {
    const auto spec = mpeg4_mesh_spec();
    const compiler::XpipesCompiler xpipes;

    // ---- Record: MPEG-4 bandwidth flows, bursty on/off injection.
    const auto graph = workload::benchmark("mpeg4");
    traffic::TrafficConfig tcfg;
    tcfg.pattern = traffic::Pattern::kWeighted;
    tcfg.weights = workload::benchmark_weights(graph, spec.topo);
    tcfg.injection_rate = 0.04;
    tcfg.burstiness = 0.6;  // same mean load in 40% of the cycles
    tcfg.max_burst = 8;
    tcfg.seed = 7;

    auto live = xpipes.build_simulation(spec);
    workload::TraceRecorder recorder(*live, "mpeg4_burst");
    traffic::TrafficDriver driver(*live, tcfg);
    driver.run(cycles);
    live->run_until_quiescent(200000);
    const auto live_stats = traffic::collect_run(*live, cycles);

    workload::save_trace(recorder.trace(), trace_path);
    std::printf("recorded %zu transactions of bursty '%s' traffic -> %s\n",
                recorder.recorded(), graph.name().c_str(),
                trace_path.c_str());
    std::printf("  live:   %s\n", live_stats.to_string().c_str());

    // ---- Replay: fresh network, no RNG, same schedule.
    const auto trace = workload::load_trace(trace_path);
    auto fresh = xpipes.build_simulation(spec);
    workload::TraceDriver replay(*fresh, trace);
    replay.run(cycles);
    fresh->run_until_quiescent(200000);
    const auto replay_stats = traffic::collect_run(*fresh, cycles);
    std::printf("  replay: %s\n", replay_stats.to_string().c_str());

    if (replay_stats.to_string() != live_stats.to_string()) {
      std::fprintf(stderr, "replay diverged from the recorded run!\n");
      return 1;
    }
    std::printf("replay reproduced the recorded run exactly.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mpeg4_trace: %s\n", e.what());
    return 1;
  }
}
