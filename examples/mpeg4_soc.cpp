// MPEG-4 decoder SoC: the full paper flow on a real application.
//
// application core graph -> SunMap-style mapping -> xpipesCompiler ->
// weighted-traffic simulation + synthesis estimate. This is the scenario
// the paper's introduction motivates: a complex, heterogeneous,
// communication-intensive multimedia SoC on a custom NoC.
//
// Build & run:  ./build/examples/mpeg4_soc
#include <cstdio>

#include "src/appgraph/mapping.hpp"
#include "src/compiler/compiler.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"

int main() {
  using namespace xpl;

  // ---- The application.
  const auto graph = appgraph::mpeg4_decoder();
  std::printf("application '%s': %zu cores, %zu flows, %.0f MB/s total\n",
              graph.name().c_str(), graph.num_cores(),
              graph.flows().size(), graph.total_bandwidth());

  // ---- Map onto a 4x3 mesh, one core per switch.
  const auto base =
      topology::make_mesh(4, 3, topology::NiPlan::uniform(12, 0, 0));
  Rng rng(2024);
  auto mapping = appgraph::greedy_map(graph, base, 1);
  const auto dist = appgraph::switch_distances(base);
  const double greedy_cost = appgraph::mapping_cost(graph, dist, mapping);
  mapping = appgraph::anneal_map(graph, base, mapping, rng, 20000, 1);
  const double final_cost = appgraph::mapping_cost(graph, dist, mapping);
  std::printf("mapping cost (bandwidth x hops): greedy %.0f -> annealed "
              "%.0f\n",
              greedy_cost, final_cost);
  for (std::uint32_t c = 0; c < graph.num_cores(); ++c) {
    std::printf("  %-8s -> switch %u\n", graph.core_name(c).c_str(),
                mapping.core_to_switch[c]);
  }

  // ---- Instantiate through the compiler.
  const auto mapped = appgraph::build_mapped_topology(graph, base, mapping);
  compiler::NocSpec spec;
  spec.name = "mpeg4";
  spec.topo = mapped.topo;
  spec.net.flit_width = 32;
  spec.net.routing = topology::RoutingAlgorithm::kXY;
  spec.net.target_window = 1 << 12;
  compiler::XpipesCompiler xpipes;

  const auto report = xpipes.estimate(spec, 900.0);
  std::printf("\nsilicon @900MHz: %.2f mm2, %.0f mW, clock ceiling %.0f "
              "MHz, %zu instances\n",
              report.total_area_mm2, report.total_power_mw,
              report.min_fmax_mhz, report.instances.size());

  // ---- Simulate the application's traffic profile.
  auto net = xpipes.build_simulation(spec);
  traffic::TrafficConfig tcfg;
  tcfg.pattern = traffic::Pattern::kWeighted;
  tcfg.weights = mapped.weights;
  tcfg.injection_rate = 0.05;
  tcfg.max_burst = 8;
  tcfg.seed = 7;
  traffic::TrafficDriver driver(*net, tcfg);
  const std::size_t cycles = 20000;
  driver.run(cycles);
  net->run_until_quiescent(200000);

  const auto stats = traffic::collect_run(*net, cycles);
  std::printf("\nsimulated %zu cycles of MPEG-4 traffic:\n", cycles);
  std::printf("  transactions: %llu (%.4f per cycle)\n",
              static_cast<unsigned long long>(stats.transactions),
              stats.throughput);
  std::printf("  read latency: mean %.1f / p95 %.0f / max %llu cycles\n",
              stats.latency.mean, stats.latency.p95,
              static_cast<unsigned long long>(stats.latency.max));
  std::printf("  link utilization: %.3f flits/link/cycle\n",
              stats.avg_link_utilization);
  return 0;
}
