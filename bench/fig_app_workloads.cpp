// F12 (extension) — application workloads: smooth vs bursty injection.
//
// The workload layer's scenario matrix on one chart: the three embedded
// SoC benchmarks (MPEG-4 decoder, VOPD, MWD) mapped onto a 4x3 mesh and
// driven at the same mean offered load twice — once Bernoulli
// (burstiness 0) and once with on/off bursts packing the load into 20%
// of the cycles (burstiness 0.8). Stats use a 500-cycle warmup window.
// Expected shape: identical mean rates, but the bursty columns sit
// higher in mean and far higher in p95 latency — temporal clustering,
// not average load, is what stresses the buffers.
//
// Runs on the src/sweep/ campaign engine: each (app, burstiness) cell is
// one independent SweepPoint on the work-stealing pool, so the table is
// identical for any worker count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/sweep/runner.hpp"
#include "src/sweep/spec.hpp"

namespace {

xpl::sweep::SweepPoint make_point(std::size_t index, const std::string& app,
                                  double burstiness) {
  xpl::sweep::SweepPoint p;
  p.index = index;
  p.topology = "mesh";
  p.width = 4;
  p.height = 3;
  p.sim_cycles = 6000;
  p.drain_cycles = 80000;
  p.warmup = 500;
  p.estimate = false;  // F12 only charts simulation metrics
  p.app = app;
  p.net.routing = xpl::topology::RoutingAlgorithm::kXY;
  p.net.target_window = 1 << 12;
  p.traffic.pattern = xpl::traffic::Pattern::kWeighted;
  p.traffic.injection_rate = 0.03;
  p.traffic.burstiness = burstiness;
  p.traffic.avg_burst_cycles = 40;  // long dwells: MPEG-frame-ish bursts
  p.traffic.max_burst = 4;
  p.traffic.seed = 33;
  return p;
}

}  // namespace

int main() {
  using namespace xpl;
  bench::banner("F12", "app workloads on a 4x3 mesh: smooth vs bursty");

  const std::vector<std::string> apps{"mpeg4", "vopd", "mwd"};
  // Points 2i = Bernoulli, 2i+1 = bursty, for apps[i].
  std::vector<sweep::SweepPoint> points;
  for (std::size_t i = 0; i < apps.size(); ++i) {
    points.push_back(make_point(2 * i, apps[i], 0.0));
    points.push_back(make_point(2 * i + 1, apps[i], 0.8));
  }

  const sweep::SweepRunner runner;  // hardware concurrency
  sweep::ResultTable table(points.size());
  runner.run_indexed(points.size(), [&](std::size_t i) {
    table.set(sweep::SweepRunner::run_point(points[i]));
  });

  for (const auto& r : table.rows()) {
    if (!r.ok) {
      std::fprintf(stderr, "F12: point %s failed: %s\n",
                   r.point.label().c_str(), r.error.c_str());
      return 1;
    }
  }

  std::printf("%-8s | %-26s | %-26s\n", "", "smooth (b=0)",
              "bursty (b=0.8)");
  std::printf("%-8s | %-8s %-8s %-8s | %-8s %-8s %-8s\n", "app", "thru",
              "mean", "p95", "thru", "mean", "p95");
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const auto& smooth = table.row(2 * i);
    const auto& bursty = table.row(2 * i + 1);
    std::printf("%-8s | %-8.4f %-8.1f %-8.0f | %-8.4f %-8.1f %-8.0f\n",
                apps[i].c_str(), smooth.throughput_tpc,
                smooth.avg_latency_cycles, smooth.p95_latency_cycles,
                bursty.throughput_tpc, bursty.avg_latency_cycles,
                bursty.p95_latency_cycles);
  }
  std::printf(
      "\nexpected shape: equal offered load per row; the bursty half\n"
      "carries the same throughput at visibly higher mean latency and a\n"
      "p95 tail that grows with each app's traffic concentration.\n");
  return 0;
}
