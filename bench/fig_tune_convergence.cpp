// Tuning-convergence figure — simulations to locate saturation,
// adaptive bisection vs dense rate scan.
//
// The xtune headline number: the adaptive SaturationSearch finds a
// network's saturation injection rate with O(log) simulations where a
// dense campaign pays one simulation per grid step. Both sides apply the
// *same* saturation predicate (SaturationSearch::saturated) against the
// same calibration run, so the comparison is apples-to-apples: the table
// reports, per topology, the adaptive probe count, the dense-grid size at
// the same resolution (rel_tol), the located rates, and the speedup.
// Acceptance bar: >= 5x fewer simulations, knee within one grid step.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/sweep/runner.hpp"
#include "src/sweep/spec.hpp"
#include "src/tune/saturation.hpp"
#include "src/tune/spec.hpp"

namespace {

struct Row {
  std::string label;
  std::size_t adaptive_evals = 0;
  std::size_t dense_evals = 0;
  double adaptive_rate = 0.0;
  double dense_rate = 0.0;
  bool converged = false;
};

/// Base point (rate overridden per probe) for one topology cell.
xpl::sweep::SweepPoint make_base(const std::string& topology,
                                 std::size_t width, std::size_t height) {
  xpl::tune::TuneSpec spec;
  spec.name = "tune_convergence";
  spec.seed = 5;
  spec.sim_cycles = 1500;
  spec.drain_cycles = 40000;
  spec.topology = topology;
  spec.width = width;
  spec.height = height;
  spec.fifo_depths = {4};
  return spec.config_point(0);
}

}  // namespace

int main() {
  using namespace xpl;
  bench::banner("xtune",
                "simulations to locate saturation: bisection vs dense scan");

  tune::SaturationConfig cfg;
  cfg.enabled = true;
  cfg.lo = 0.02;
  cfg.hi = 0.64;
  cfg.rel_tol = 0.01;
  const double step = cfg.rel_tol * cfg.hi;

  struct Cell {
    const char* label;
    const char* topology;
    std::size_t width, height;
  };
  const std::vector<Cell> cells{
      {"mesh 4x4", "mesh", 4, 4},
      {"torus 3x3", "torus", 3, 3},
      {"ring 6", "ring", 6, 1},
      {"spidergon 8", "spidergon", 8, 1},
  };

  const sweep::SweepRunner runner;  // probes are sequential; pool idles
  std::vector<Row> rows;
  for (const Cell& cell : cells) {
    const sweep::SweepPoint base =
        make_base(cell.topology, cell.width, cell.height);
    Row row;
    row.label = cell.label;

    // Adaptive: calibrate, expand, bisect.
    tune::SaturationSearch search(base, cfg);
    runner.run_adaptive(search);
    if (!search.error().empty()) {
      std::fprintf(stderr, "xtune: %s search failed: %s\n", cell.label,
                   search.error().c_str());
      return 1;
    }
    row.converged = search.converged();
    row.adaptive_rate = search.saturation_rate();
    row.adaptive_evals = search.evaluations();

    // Dense reference: scan the bracket at the bisection's resolution
    // until the shared latency-knee predicate first fires. The full grid
    // a blind campaign would schedule is (hi - lo) / step points; the
    // scan stops at the knee, which is the kindest possible accounting
    // for dense.
    auto lat_at = [&](double rate) {
      sweep::SweepPoint p = base;
      p.traffic.injection_rate = rate;
      const sweep::SweepResult r = sweep::SweepRunner::run_point(p);
      if (!r.ok) {
        std::fprintf(stderr, "xtune: %s dense point at %.3f failed: %s\n",
                     cell.label, rate, r.error.c_str());
        std::exit(1);
      }
      return r.avg_latency_cycles;
    };
    const double lat_lo = lat_at(cfg.lo);
    row.dense_evals = 1;
    row.dense_rate = cfg.hi;  // stays hi if the scan never saturates
    for (double rate = cfg.lo + step; rate <= cfg.hi + 1e-12;
         rate += step) {
      const double lat = lat_at(rate);
      ++row.dense_evals;
      if (tune::SaturationSearch::saturated(lat, lat_lo,
                                            cfg.latency_blowup)) {
        row.dense_rate = rate - step;  // last unsaturated rate
        break;
      }
    }
    rows.push_back(row);
  }

  const std::size_t grid =
      static_cast<std::size_t>((cfg.hi - cfg.lo) / step) + 1;
  std::printf("bracket [%.2f, %.2f], rel_tol %.2f -> %zu-point dense grid\n\n",
              cfg.lo, cfg.hi, cfg.rel_tol, grid);
  std::printf("%-14s %10s %12s %12s %10s %10s\n", "network", "adaptive",
              "dense-scan", "dense-grid", "rate", "scan-rate");
  for (const Row& row : rows) {
    std::printf("%-14s %10zu %12zu %12zu %10.3f %10.3f\n",
                row.label.c_str(), row.adaptive_evals, row.dense_evals,
                grid, row.adaptive_rate, row.dense_rate);
    if (!row.converged) {
      std::fprintf(stderr, "xtune: %s did not converge\n",
                   row.label.c_str());
      return 1;
    }
    if (row.adaptive_evals * 5 > grid) {
      std::fprintf(stderr,
                   "xtune: %s used %zu sims, more than 1/5 of the %zu-point "
                   "grid\n",
                   row.label.c_str(), row.adaptive_evals, grid);
      return 1;
    }
  }
  std::printf(
      "\nexpected shape: ~8-12 adaptive probes per network against a\n"
      "%zu-point grid (>= 5x fewer simulations), and adaptive/scan rates\n"
      "within one grid step of each other where the scan saturates.\n",
      grid);
  return 0;
}
