// F6 — "Full Custom vs Macro Based NoCs": 32-bit 5x5 switch, area (mm2)
// versus target frequency.
//
// The paper's scatter shows the synthesis-effort tradeoff for a 32-bit
// 5x5 switch: ~0.10 mm2 when timing is relaxed, rising to ~0.18 mm2 as
// the target clock approaches 1.5 GHz — the "greater opportunity for
// optimization" of a soft macro flow. We sweep the target frequency
// through the same range and also print the power at each point (the
// "various power/frequency/area tradeoffs" the paper highlights).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/synth/component_models.hpp"
#include "src/synth/estimator.hpp"

int main() {
  using namespace xpl;
  bench::banner("F6", "32-bit 5x5 switch: area vs target frequency");

  synth::Estimator est;
  const auto cfg = bench::paper_switch(5, 5, 32);
  const auto netlist = synth::build_switch_netlist(cfg);
  const double levels = synth::switch_logic_levels(cfg);

  std::printf("clock ceilings: macro (synthesized) %.0f MHz, "
              "full custom %.0f MHz\n\n",
              est.max_fmax_mhz(levels), est.full_custom_fmax_mhz(levels));
  std::printf("%-10s %-14s %-14s %-14s %-14s\n", "freq_MHz", "macro_mm2",
              "macro_mW", "custom_mm2", "custom_mW");
  for (double f = 200.0; f <= 1500.0; f += 100.0) {
    const auto macro = est.estimate(netlist, levels, f);
    const auto custom = est.estimate_full_custom(netlist, levels, f);
    char macro_area[32];
    char macro_power[32];
    if (macro.feasible) {
      std::snprintf(macro_area, sizeof(macro_area), "%.4f", macro.area_mm2);
      std::snprintf(macro_power, sizeof(macro_power), "%.2f",
                    macro.power_mw);
    } else {
      std::snprintf(macro_area, sizeof(macro_area), "-");
      std::snprintf(macro_power, sizeof(macro_power), "-");
    }
    std::printf("%-10.0f %-14s %-14s %-14.4f %-14.2f\n", f, macro_area,
                macro_power, custom.area_mm2, custom.power_mw);
  }
  std::printf(
      "\npaper: 32-bit 5x5 switches span ~0.10 -> ~0.18 mm2 as the clock\n"
      "target rises toward 1.5 GHz; the synthesized (macro) flow tops out\n"
      "around 1 GHz, full custom carries the curve to the right — the\n"
      "\"various power/frequency/area tradeoffs\" of the slide.\n");
  return 0;
}
