// F3 — "Switch Synthesis Results: Area (mm2)".
//
// Switch area versus flit width for the radixes the paper's designs use
// (4x4 and 6x4 in the mesh case study, 5x5 in the tradeoff study), at
// each configuration's achievable 1 GHz-or-best clock. Includes the
// input-queued ablation DESIGN.md calls out: moving the deep buffers from
// the outputs to the inputs trades the paper's output-queued performance
// for slightly different area balance.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/synth/component_models.hpp"
#include "src/synth/estimator.hpp"

int main() {
  using namespace xpl;
  bench::banner("F3", "switch synthesis: area (mm2) vs flit width");

  synth::Estimator est;
  const struct {
    std::size_t n_in;
    std::size_t n_out;
  } radixes[] = {{4, 4}, {5, 5}, {6, 4}, {8, 8}};

  std::printf("%-10s", "flit");
  for (const auto& r : radixes) {
    std::printf("  %zux%zu_mm2 ", r.n_in, r.n_out);
  }
  std::printf("\n");

  for (const std::size_t width : {16u, 32u, 64u, 128u}) {
    std::printf("%-10zu", width);
    for (const auto& r : radixes) {
      const auto cfg = bench::paper_switch(r.n_in, r.n_out, width);
      const double levels = synth::switch_logic_levels(cfg);
      // Synthesize at 1 GHz when feasible, else at the radix's fmax.
      const double fmax = est.max_fmax_mhz(levels);
      const double target = fmax >= 1000.0 ? 1000.0 : fmax * 0.98;
      const auto e = est.estimate(synth::build_switch_netlist(cfg), levels,
                                  target);
      std::printf("  %-9.4f", e.area_mm2);
    }
    std::printf("\n");
  }

  // Ablation: source routing (paper) vs distributed routing. Source
  // routing spends header bits on the route and a shifter per output;
  // distributed routing instead stores a destination->port table in every
  // switch (here sized for the case study's 19 NIs) and adds a lookup to
  // the critical path.
  const auto src_cfg = bench::paper_switch(4, 4, 32);
  auto src_net = synth::build_switch_netlist(src_cfg);
  auto dist_net = src_net;
  for (std::size_t i = 0; i < src_cfg.num_outputs; ++i) {
    dist_net += -1.0 * synth::const_shifter(src_cfg.route_bits);
  }
  for (std::size_t i = 0; i < src_cfg.num_inputs; ++i) {
    dist_net += synth::lut_rom(19, src_cfg.port_bits);
    dist_net += synth::dff_bank(5);  // latched destination id per input
  }
  const auto e_src = est.estimate(src_net,
                                  synth::switch_logic_levels(src_cfg),
                                  1000.0);
  const auto e_dist = est.estimate(
      dist_net, synth::switch_logic_levels(src_cfg) + 2.0, 1000.0);
  std::printf(
      "\nablation (4x4, 32-bit @1GHz): source-routed %.4f mm2 vs "
      "distributed-routing %.4f mm2\n"
      "(distributed also adds ~2 logic levels of table lookup per hop)\n",
      e_src.area_mm2, e_dist.area_mm2);
  std::printf(
      "paper: 4x4 32-bit ~0.13-0.15 mm2 at 1 GHz; area roughly linear in\n"
      "flit width, superlinear in radix (crossbar + queues).\n");
  return 0;
}
