// F5 — "The Power of Abstraction: Mesh Case Study".
//
// The paper's chart: area (mm2) versus flit width {16, 32, 64, 128} for
// the four component shapes of a 3x4 mesh hosting 8 processors and 11
// slaves — initiator NI, target NI, 4x4 switch, 6x4 switch — plus the
// headline "a 3x4 xpipes mesh ... occupies ~2.6 mm2" total at 32 bits,
// with NIs and 4x4 switches at 1 GHz and 6x4 switches at 875-980 MHz.
//
// The whole-mesh row is produced by the xpipesCompiler's synthesis report
// over the actual instantiated topology (per-instance port counts), not
// by multiplying the four shapes.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/compiler/compiler.hpp"
#include "src/topology/generators.hpp"

int main() {
  using namespace xpl;
  bench::banner("F5", "mesh case study: 3x4 mesh, 8 processors + 11 slaves");

  synth::Estimator est;
  compiler::XpipesCompiler xpipes;
  const double target_mhz = 1000.0;

  std::printf("%-10s %-14s %-14s %-14s %-14s %-12s\n", "flit", "ini_NI_mm2",
              "tgt_NI_mm2", "sw4x4_mm2", "sw6x4_mm2", "mesh_mm2");

  for (const std::size_t width : {16u, 32u, 64u, 128u}) {
    const auto icfg = bench::paper_initiator(width);
    const auto tcfg = bench::paper_target(width);
    const auto ini = est.estimate(
        synth::build_initiator_ni_netlist(icfg, 11),
        synth::initiator_ni_logic_levels(icfg), target_mhz);
    const auto tgt = est.estimate(
        synth::build_target_ni_netlist(tcfg, 8),
        synth::target_ni_logic_levels(tcfg), target_mhz);

    const auto cfg44 = bench::paper_switch(4, 4, width);
    const auto e44 = est.estimate(synth::build_switch_netlist(cfg44),
                                  synth::switch_logic_levels(cfg44),
                                  target_mhz);
    const auto cfg64 = bench::paper_switch(6, 4, width);
    const double levels64 = synth::switch_logic_levels(cfg64);
    const double f64 = est.max_fmax_mhz(levels64);
    const auto e64 =
        est.estimate(synth::build_switch_netlist(cfg64), levels64,
                     f64 >= target_mhz ? target_mhz : f64 * 0.98);

    // Whole mesh through the compiler (route widths sized to the real
    // diameter; per-switch radix from the actual attachment plan).
    compiler::NocSpec spec;
    spec.name = "case_study";
    spec.topo = topology::make_paper_case_study();
    spec.net.flit_width = width;
    spec.net.routing = topology::RoutingAlgorithm::kXY;
    spec.net.target_window = 1 << 12;
    double mesh_mm2 = 0.0;
    if (width >= 32) {
      // At 16 bits the 3x4 mesh's 6-hop routes do not fit one flit (the
      // paper's 16-bit point is for the component shapes only).
      const auto report = xpipes.estimate(spec, 900.0);
      mesh_mm2 = report.total_area_mm2;
      std::printf("%-10zu %-14.4f %-14.4f %-14.4f %-14.4f %-12.3f\n", width,
                  ini.area_mm2, tgt.area_mm2, e44.area_mm2, e64.area_mm2,
                  mesh_mm2);
    } else {
      std::printf("%-10zu %-14.4f %-14.4f %-14.4f %-14.4f %-12s\n", width,
                  ini.area_mm2, tgt.area_mm2, e44.area_mm2, e64.area_mm2,
                  "-");
    }
  }

  // Frequency summary for the two switch shapes at 32 bits.
  const auto cfg44 = bench::paper_switch(4, 4, 32);
  const auto cfg64 = bench::paper_switch(6, 4, 32);
  std::printf("\nachievable clocks (32-bit): 4x4 switch %.0f MHz, "
              "6x4 switch %.0f MHz, NI %.0f MHz\n",
              est.max_fmax_mhz(synth::switch_logic_levels(cfg44)),
              est.max_fmax_mhz(synth::switch_logic_levels(cfg64)),
              est.max_fmax_mhz(synth::initiator_ni_logic_levels(
                  bench::paper_initiator(32))));
  std::printf(
      "paper: Initiator NI / Target NI / 4x4 switch @ 1 GHz; 6x4 switch @\n"
      "875-980 MHz; whole 3x4 mesh (8 CPUs + 11 slaves) ~2.6 mm2.\n");
  return 0;
}
