// F12 (ablation) — the compiler's per-instance optimizations.
//
// Two passes the paper attributes to the xpipesCompiler, quantified:
//
//  (a) buffer sizing — size each switch's output queue to its routed
//      load instead of worst-case everywhere: area saved at equal
//      observed latency;
//  (b) floorplan-aware links — derive per-link pipeline stages from
//      physical wire lengths: what ignoring the floorplan would
//      under-report in latency.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/appgraph/floorplan.hpp"
#include "src/compiler/compiler.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"

namespace {

double measure_latency(xpl::compiler::NocSpec spec, std::uint64_t seed) {
  using namespace xpl;
  compiler::XpipesCompiler xpipes;
  auto net = xpipes.build_simulation(spec);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.05;
  tcfg.read_fraction = 1.0;
  tcfg.seed = seed;
  traffic::TrafficDriver driver(*net, tcfg);
  driver.run(6000);
  net->run_until_quiescent(100000);
  return traffic::collect_latency(*net).mean;
}

}  // namespace

int main() {
  using namespace xpl;
  bench::banner("F12", "compiler optimizations: buffer sizing + floorplan");

  compiler::XpipesCompiler xpipes;

  // ---- (a) Buffer sizing on a 3x3 mesh.
  auto base_spec = [] {
    compiler::NocSpec spec;
    spec.name = "buf";
    spec.topo =
        topology::make_mesh(3, 3, topology::NiPlan::uniform(9, 1, 1));
    spec.net.routing = topology::RoutingAlgorithm::kXY;
    spec.net.target_window = 1 << 12;
    return spec;
  };

  compiler::NocSpec uniform = base_spec();
  uniform.net.output_fifo_depth = 8;  // worst case everywhere
  compiler::NocSpec sized = base_spec();
  const auto depths = xpipes.optimize_buffer_sizes(sized, 2, 8);

  const auto area_uniform = xpipes.estimate(uniform, 800.0).total_area_mm2;
  const auto area_sized = xpipes.estimate(sized, 800.0).total_area_mm2;
  const double lat_uniform = measure_latency(uniform, 3);
  const double lat_sized = measure_latency(sized, 3);

  std::printf("buffer sizing (3x3 mesh, XY, depths 2..8 by routed load):\n");
  std::printf("  per-switch depths:");
  for (const auto d : depths) std::printf(" %zu", d);
  std::printf("\n  %-22s %-12s %-14s\n", "", "area_mm2", "mean_latency");
  std::printf("  %-22s %-12.3f %-14.1f\n", "uniform depth 8", area_uniform,
              lat_uniform);
  std::printf("  %-22s %-12.3f %-14.1f\n", "load-sized 2..8", area_sized,
              lat_sized);
  std::printf("  area saved: %.1f%%, latency delta: %+.1f cycles\n\n",
              100.0 * (1.0 - area_sized / area_uniform),
              lat_sized - lat_uniform);

  // ---- (b) Floorplan-aware link pipelining on the same mesh, spread to
  // a realistic multimedia-SoC tile pitch.
  compiler::NocSpec naive = base_spec();
  compiler::NocSpec planned = base_spec();
  Rng rng(9);
  appgraph::FloorplanOptions fopt;
  fopt.tile_mm = 4.0;       // big cores -> long inter-switch wires
  fopt.mm_per_cycle = 2.0;  // 130 nm repeated wire at ~1 GHz
  const auto plan = appgraph::make_floorplan(planned.topo, fopt, rng);
  appgraph::apply_link_stages(planned.topo, plan, fopt.mm_per_cycle);

  std::size_t max_stages = 0;
  for (std::uint32_t l = 0; l < planned.topo.num_links(); ++l) {
    max_stages = std::max(max_stages, planned.topo.link(l).stages);
  }
  const double lat_naive = measure_latency(naive, 7);
  const double lat_planned = measure_latency(planned, 7);

  std::printf("floorplan-aware links (tile %.1f mm, reach %.1f mm/cycle):\n",
              fopt.tile_mm, fopt.mm_per_cycle);
  std::printf("  total wire %.0f mm, deepest link %zu relay stage(s)\n",
              plan.total_wire_mm(planned.topo), max_stages);
  std::printf("  mean latency: ideal wires %.1f -> floorplanned %.1f "
              "cycles (+%.0f%%)\n",
              lat_naive, lat_planned,
              100.0 * (lat_planned / lat_naive - 1.0));
  std::printf(
      "\nboth passes are per-instance 'component optimizations' the paper\n"
      "credits to the xpipesCompiler; the protocol absorbs the pipelined\n"
      "links by design.\n");
  return 0;
}
