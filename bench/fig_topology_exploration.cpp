// F7 — "Shift Efforts at a Higher Abstraction Layer": sample topologies.
//
// The paper's closing example: because the library is synthesizable and
// parameterizable, the flow compares whole candidate NoCs quickly —
// e.g. one topology at 925 MHz / 0.51 mm2 (+10% performance) against one
// at 850 MHz / 0.42 mm2 (-14% area), and a lower-latency alternative at
// 780 MHz / 0.48 mm2 ("fewer clock cycles, however lower clock").
//
// We run the full SunMap-style loop on the MPEG-4 decoder graph: map onto
// each candidate, estimate area/power/clock ceiling via the synthesis
// model, and measure latency/throughput with weighted traffic simulation.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/appgraph/explore.hpp"
#include "src/topology/generators.hpp"

int main() {
  using namespace xpl;
  bench::banner("F7", "sample topologies for the MPEG-4 decoder");

  const auto graph = appgraph::mpeg4_decoder();
  appgraph::ExploreOptions options;
  options.anneal_iterations = 8000;
  options.sim_cycles = 10000;
  options.injection_rate = 0.03;
  options.target_mhz = 800.0;
  options.net.target_window = 1 << 12;

  std::vector<appgraph::Candidate> candidates;
  candidates.push_back(
      {"mesh_4x3",
       topology::make_mesh(4, 3, topology::NiPlan::uniform(12, 0, 0))});
  candidates.push_back(
      {"mesh_3x3",
       topology::make_mesh(3, 3, topology::NiPlan::uniform(9, 0, 0))});
  candidates.push_back(
      {"star_5",
       topology::make_star(5, topology::NiPlan::uniform(6, 0, 0))});
  candidates.push_back(
      {"spidergon_6",
       topology::make_spidergon(6, topology::NiPlan::uniform(6, 0, 0))});
  candidates.push_back(
      {"ring_6", topology::make_ring(6, topology::NiPlan::uniform(6, 0, 0))});

  // Candidates are independent jobs: run them on the sweep subsystem's
  // work-stealing pool (results identical for any job count).
  options.jobs = 0;  // hardware concurrency
  const auto results = explore(graph, candidates, options);
  const auto front = appgraph::pareto_front(results);

  std::printf("%-14s %-10s %-10s %-10s %-12s %-12s %-12s %s\n", "topology",
              "area_mm2", "power_mW", "fmax_MHz", "map_cost",
              "lat_cycles", "thru_t/cy", "pareto");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const bool on_front =
        std::find(front.begin(), front.end(), i) != front.end();
    std::printf(
        "%-14s %-10.3f %-10.1f %-10.0f %-12.0f %-12.1f %-12.4f %s\n",
        r.name.c_str(), r.area_mm2, r.power_mw, r.fmax_mhz, r.mapping_cost,
        r.avg_latency_cycles, r.throughput_tpc, on_front ? "*" : "");
  }
  std::printf(
      "\npaper: candidates trade clock for area for hop count — e.g.\n"
      "925 MHz / 0.51 mm2 (+10%% performance) vs 850 MHz / 0.42 mm2\n"
      "(-14%% area) vs 780 MHz / 0.48 mm2 (fewer cycles per txn).\n"
      "Expect the same pattern: bigger meshes clock high and spend area;\n"
      "stars/rings are small but add hops (higher latency in cycles).\n");
  return 0;
}
