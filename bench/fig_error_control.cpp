// F9 (ablation) — ACK/nACK error control under a bit-error-rate sweep.
//
// The paper designs its links to be unreliable and recovers with per-flit
// CRC + ACK/nACK go-back-N. This bench quantifies that machinery: for a
// 2x2 mesh with 1-stage pipelined links we sweep the per-bit error rate
// and report delivered transactions, retransmission ratio, and the
// latency penalty, for CRC-8 and CRC-16. At BER 0 the protocol costs
// nothing but the sequence/CRC wire bits — the flow-control-only case.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/noc/network.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"

namespace {

struct Point {
  std::uint64_t delivered = 0;
  std::uint64_t injected = 0;
  double retx_ratio = 0.0;
  double mean_latency = 0.0;
};

Point run_point(double ber, xpl::CrcKind crc) {
  using namespace xpl;
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  cfg.bit_error_rate = ber;
  cfg.crc = crc;
  cfg.seed = 1234;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1),
                          /*link_stages=*/1),
      cfg);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.03;
  tcfg.read_fraction = 1.0;
  tcfg.seed = 99;
  traffic::TrafficDriver driver(net, tcfg);
  driver.run(5000);
  net.run_until_quiescent(400000);

  Point p;
  p.injected = driver.injected();
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    p.delivered += net.master(i).completed().size();
  }
  const auto flits = net.total_link_flits();
  p.retx_ratio = flits == 0 ? 0.0
                            : static_cast<double>(
                                  net.total_retransmissions()) /
                                  static_cast<double>(flits);
  p.mean_latency = traffic::collect_latency(net).mean;
  return p;
}

}  // namespace

int main() {
  using namespace xpl;
  bench::banner("F9", "ACK/nACK error control vs link bit-error rate");

  std::printf("%-10s %-8s %-12s %-12s %-12s %-12s\n", "BER", "crc",
              "injected", "delivered", "retx_ratio", "lat_cycles");
  const double bers[] = {0.0, 1e-5, 1e-4, 1e-3};
  for (const double ber : bers) {
    for (const CrcKind crc : {CrcKind::kCrc8, CrcKind::kCrc16}) {
      const Point p = run_point(ber, crc);
      std::printf("%-10.0e %-8s %-12llu %-12llu %-12.4f %-12.1f\n", ber,
                  crc_name(crc),
                  static_cast<unsigned long long>(p.injected),
                  static_cast<unsigned long long>(p.delivered),
                  p.retx_ratio, p.mean_latency);
    }
  }
  std::printf(
      "\nexpected shape: 100%% delivery at every BER (the protocol is\n"
      "lossless); retransmission ratio and latency grow with BER; CRC-16\n"
      "costs wire width but survives rates where CRC-8 escapes would\n"
      "corrupt data silently.\n");
  return 0;
}
