// F10 — simulator performance (google-benchmark).
//
// Not a paper figure: measures the cycle-accurate model itself — kernel
// cycles per second, end-to-end transaction throughput for growing meshes,
// and the per-flit-hop cost of the link protocol path (seal, wire, verify,
// ACK) — so users can size experiments and PRs can track the perf
// trajectory.
//
// The binary counts heap allocations (global operator new override below):
// BM_FlitHop reports allocs_per_hop and *fails* if a flit hop at width
// <= 128 allocates, pinning the BitVector small-buffer guarantee.
//
// Usage:
//   bench_sim_speed [--bench-json BENCH_foo.json] [google-benchmark flags]
//
// --bench-json writes the machine-readable perf record tracked across PRs
// (see README.md "Tracking performance").
#include <benchmark/benchmark.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "src/link/flow.hpp"
#include "src/link/goback_n.hpp"
#include "src/link/link.hpp"
#include "src/noc/network.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/traffic.hpp"

// ---------------------------------------------------------------- alloc
// Global allocation counter: every operator new bumps g_allocs. The
// benchmarks read the counter around their hot loops; the counter is
// relaxed-atomic so it costs nothing measurable next to malloc itself.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
// Set by BM_FlitHop when a hop at width <= 128 allocates; main() turns it
// into a nonzero exit. Tracked here (not via the reporter's Run fields)
// because the error/skip reporting API changed across google-benchmark
// 1.7 -> 1.8 and this must build against both.
bool g_flit_hop_alloc_failure = false;
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The replaced operator new above allocates with std::malloc, so
// std::free IS the matched deallocator here — but GCC models a replaced
// operator new as opaque and pairs it with free at every inlined call
// site (-Wmismatched-new-delete false positive under -Werror).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

std::uint64_t allocs() { return g_allocs.load(std::memory_order_relaxed); }

xpl::noc::NetworkConfig config(std::size_t mesh_side = 2) {
  xpl::noc::NetworkConfig cfg;
  cfg.routing = xpl::topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  // Big meshes have long routes; widen flits so the route field fits the
  // head flit (an 8x8 mesh needs 15 hops x 4 bits).
  if (mesh_side >= 6) cfg.flit_width = 64;
  return cfg;
}

void BM_IdleCycles(benchmark::State& state) {
  using namespace xpl;
  const auto n = static_cast<std::size_t>(state.range(0));
  noc::Network net(
      topology::make_mesh(n, n, topology::NiPlan::uniform(n * n, 1, 1)),
      config(n));
  for (auto _ : state) {
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["switches"] = static_cast<double>(net.num_switches());
  state.counters["signal_pools"] =
      static_cast<double>(net.signal_pool_count());
}
BENCHMARK(BM_IdleCycles)->Arg(2)->Arg(4)->Arg(8);

// Loaded simulation throughput, parametrized over the link-level flow
// control (arg 1: 0 = ack_nack, 1 = credit) and, for the saturated
// variant, the virtual-channel count. The moderate-rate variant tracks
// the PR-3 numbers; BM_SaturatedCycles below drives the network into
// back-pressure, where ACK/nACK pays retransmission thrash (every nACKed
// flit re-traverses the link and is re-CRC-checked), credit mode just
// idles the stalled senders, and extra lanes relieve head-of-line
// blocking at the switch inputs.
void loaded_cycles(benchmark::State& state, double injection_rate,
                   std::size_t vcs, std::size_t partitions = 1,
                   std::size_t sim_threads = 1) {
  using namespace xpl;
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto flow = static_cast<link::FlowControl>(state.range(1));
  noc::NetworkConfig cfg = config(n);
  cfg.flow = flow;
  cfg.vcs = vcs;
  cfg.partitions = partitions;
  cfg.sim_threads = sim_threads;
  noc::Network net(
      topology::make_mesh(n, n, topology::NiPlan::uniform(n * n, 1, 1)),
      cfg);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = injection_rate;
  traffic::TrafficDriver driver(net, tcfg);
  for (auto _ : state) {
    driver.step();
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(link::flow_control_name(flow));
  std::uint64_t done = 0;
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    done += net.master(i).completed().size();
  }
  state.counters["txns"] = static_cast<double>(done);
  state.counters["retx"] =
      static_cast<double>(net.total_retransmissions());
  state.counters["credit_stalls"] =
      static_cast<double>(net.total_credit_stalls());
}

// Scheduler selector shared by the scheduler-parametrized benchmarks:
// 0 = full, 1 = gated, 2 = time_leap (matches the enum but kept explicit
// so a reordering of sim::Scheduler cannot silently repoint bench rows).
xpl::sim::Scheduler sched_from_arg(std::int64_t v) {
  switch (v) {
    case 2:
      return xpl::sim::Scheduler::kTimeLeap;
    case 1:
      return xpl::sim::Scheduler::kGated;
    default:
      return xpl::sim::Scheduler::kFull;
  }
}

// The activity-gating payoff at sweep-campaign operating points: low
// injection rates leave most of the network quiescent most cycles, and
// the gated scheduler (sched == 1) skips those modules' ticks and the
// full signal-pool scan entirely, while the full scheduler (sched == 0)
// pays for every module every cycle; time-leap (sched == 2) additionally
// skips whole quiescent cycle gaps via the wake calendar. Results are
// bit-identical (tests/kernel_equiv_test.cpp, tests/timeleap_test.cpp);
// only the wall clock may differ. awake_frac reports the active-set
// share at the end of the run (1.0 under full — every module ticks) and
// leapt_frac the share of cycles never walked at all — the two knobs the
// speedups ride on. This benchmark steps cycle-by-cycle (the sweep
// driver's external protocol), so time-leap can only take single-cycle
// leaps here; BM_IdleCyclesSched and BM_LowLoadCampaign below run
// batched spans where multi-cycle leaps engage.
void BM_GatedSweep(benchmark::State& state) {
  using namespace xpl;
  const auto n = static_cast<std::size_t>(state.range(0));
  noc::NetworkConfig cfg = config(n);
  cfg.scheduler = sched_from_arg(state.range(1));
  noc::Network net(
      topology::make_mesh(n, n, topology::NiPlan::uniform(n * n, 1, 1)),
      cfg);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.01;
  traffic::TrafficDriver driver(net, tcfg);
  for (auto _ : state) {
    driver.step();
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(sim::scheduler_name(cfg.scheduler));
  state.counters["awake_frac"] =
      static_cast<double>(net.kernel().awake_count()) /
      static_cast<double>(net.kernel().module_count());
  state.counters["leapt_frac"] =
      state.iterations() > 0
          ? static_cast<double>(net.kernel().leapt_cycles()) /
                static_cast<double>(state.iterations())
          : 0.0;
}
BENCHMARK(BM_GatedSweep)
    ->ArgNames({"mesh", "sched"})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({8, 2});

// The time-leap headline: a quiescent network advanced in batched spans,
// where the calendar is empty and every span collapses into one leap.
// BM_IdleCycles above steps one cycle per iteration (its rows feed the
// cross-record gated-vs-PR-6 gate and must keep their names and
// semantics); this variant hands the kernel kIdleSpan cycles at a time,
// which is the granularity real campaigns use (TrafficDriver::run) and
// the only one where multi-cycle leaps can engage. The gated and
// time-leap rows are registered back-to-back and paired within one
// record by CI (time_leap >= 5x gated; see .github/workflows/ci.yml) —
// same throttle-drift rationale as the partitioned twins below.
void BM_IdleCyclesSched(benchmark::State& state) {
  using namespace xpl;
  const auto n = static_cast<std::size_t>(state.range(0));
  noc::NetworkConfig cfg = config(n);
  cfg.scheduler = sched_from_arg(state.range(1));
  noc::Network net(
      topology::make_mesh(n, n, topology::NiPlan::uniform(n * n, 1, 1)),
      cfg);
  constexpr std::size_t kIdleSpan = 1024;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    net.step(kIdleSpan);
    cycles += kIdleSpan;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));  // cycles/s
  state.SetLabel(sim::scheduler_name(cfg.scheduler));
  state.counters["leapt_frac"] =
      cycles > 0 ? static_cast<double>(net.kernel().leapt_cycles()) /
                       static_cast<double>(cycles)
                 : 0.0;
}
BENCHMARK(BM_IdleCyclesSched)
    ->ArgNames({"mesh", "sched"})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({8, 2});

// A low-load campaign operating point end to end: the injector runs as
// a schedulable module (TrafficDriver::run hands whole spans to the
// kernel), so between arrivals the network drains, quiesces, and
// time-leap jumps straight to the next injection the calendar announces.
// The rate is a trickle — the saturation-bisection probes below the knee
// and the low end of xsweep rate sweeps, where auto_scheduler picks
// time_leap — chosen so arrival gaps (~780 cycles at 64 initiators x
// rate 2e-5) dwarf the ~60-cycle packet drain: leapt_frac lands around
// 0.92 and the walked cycles that remain are the irreducible in-flight
// ones. The claim is >= 3x over gated here while staying bit-exact
// (tests/timeleap_test.cpp pins the digests, this row pins the wall
// clock; CI pairs the two rows within one record at >= 2x as a gross-
// regression backstop, the committed BENCH_pr10.json records the 3x).
void BM_LowLoadCampaign(benchmark::State& state) {
  using namespace xpl;
  const auto n = static_cast<std::size_t>(state.range(0));
  noc::NetworkConfig cfg = config(n);
  cfg.scheduler = sched_from_arg(state.range(1));
  noc::Network net(
      topology::make_mesh(n, n, topology::NiPlan::uniform(n * n, 1, 1)),
      cfg);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.00002;
  traffic::TrafficDriver driver(net, tcfg);
  constexpr std::size_t kSpan = 512;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    driver.run(kSpan);
    cycles += kSpan;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));  // cycles/s
  state.SetLabel(sim::scheduler_name(cfg.scheduler));
  std::uint64_t done = 0;
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    done += net.master(i).completed().size();
  }
  state.counters["txns"] = static_cast<double>(done);
  state.counters["awake_frac"] =
      static_cast<double>(net.kernel().awake_count()) /
      static_cast<double>(net.kernel().module_count());
  state.counters["leapt_frac"] =
      cycles > 0 ? static_cast<double>(net.kernel().leapt_cycles()) /
                       static_cast<double>(cycles)
                 : 0.0;
}
BENCHMARK(BM_LowLoadCampaign)
    ->ArgNames({"mesh", "sched"})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({8, 2});

void BM_LoadedCycles(benchmark::State& state) {
  loaded_cycles(state, 0.05, /*vcs=*/1);
}
BENCHMARK(BM_LoadedCycles)
    ->ArgNames({"mesh", "flow"})
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1});

// Partitioned twins of the two headline throughput benchmarks at
// threads=1: the pure bookkeeping overhead of the partitioned datapath
// (cut mailboxes, per-partition dirty lists, epoch loop) with zero
// parallel upside. bench_compare pairs each twin against its
// unpartitioned sibling *within one record* (see
// .github/workflows/ci.yml) — the cut must cost less than 10% before
// threads can start paying it back. Registered directly after the
// sibling on purpose: burstable/throttled runners drift 2-3x over
// minutes, so the paired rows must run back-to-back to measure the
// datapath rather than the clock.
void BM_LoadedCyclesPartitioned(benchmark::State& state) {
  loaded_cycles(state, 0.05, /*vcs=*/1,
                static_cast<std::size_t>(state.range(2)),
                static_cast<std::size_t>(state.range(3)));
}
// threads=1 rows stay on the suite's default CPU-time rate: the driving
// thread does all the work, and the unpartitioned siblings they pair
// against report CPU time (mixing clocks would fold the container's
// throttle stalls into one side of the ratio only).
BENCHMARK(BM_LoadedCyclesPartitioned)
    ->ArgNames({"mesh", "flow", "parts", "threads"})
    ->Args({8, 0, 2, 1})
    ->Args({8, 1, 2, 1});

// threads>1 rows need UseRealTime: the driving thread blocks at the
// epoch barrier while workers simulate, so the default main-thread
// CPU-time rate would overstate cycles/s by ~the thread count.
void BM_LoadedCyclesPartitionedMT(benchmark::State& state) {
  BM_LoadedCyclesPartitioned(state);
}
BENCHMARK(BM_LoadedCyclesPartitionedMT)
    ->ArgNames({"mesh", "flow", "parts", "threads"})
    ->UseRealTime()
    ->Args({8, 1, 2, 2})
    ->Args({8, 1, 4, 4});

void BM_SaturatedCycles(benchmark::State& state) {
  loaded_cycles(state, 0.30, static_cast<std::size_t>(state.range(2)));
}
BENCHMARK(BM_SaturatedCycles)
    ->ArgNames({"mesh", "flow", "vcs"})
    ->Args({4, 0, 1})
    ->Args({4, 0, 2})
    ->Args({4, 0, 4})
    ->Args({4, 1, 1})
    ->Args({4, 1, 2})
    ->Args({4, 1, 4})
    ->Args({8, 0, 1})
    ->Args({8, 1, 1});

// Same pairing rule as BM_LoadedCyclesPartitioned above.
void BM_SaturatedCyclesPartitioned(benchmark::State& state) {
  loaded_cycles(state, 0.30, /*vcs=*/1,
                static_cast<std::size_t>(state.range(2)),
                static_cast<std::size_t>(state.range(3)));
}
BENCHMARK(BM_SaturatedCyclesPartitioned)
    ->ArgNames({"mesh", "flow", "parts", "threads"})
    ->Args({8, 0, 2, 1})
    ->Args({8, 1, 2, 1});

// Time-leap's failure-mode guard: at saturation the network never
// quiesces, leapt_frac pins to ~0, and the calendar must cost nothing —
// the scheduler degenerates to gated plus a cheap emptiness check on the
// drained-active-set path that never triggers. The two rows are paired
// within one record by CI (time_leap >= 0.90x gated, the same bounded-
// overhead shape as the partitioned twins below).
void BM_SaturatedSched(benchmark::State& state) {
  using namespace xpl;
  const auto n = static_cast<std::size_t>(state.range(0));
  noc::NetworkConfig cfg = config(n);
  cfg.flow = link::FlowControl::kCredit;
  cfg.scheduler = sched_from_arg(state.range(1));
  noc::Network net(
      topology::make_mesh(n, n, topology::NiPlan::uniform(n * n, 1, 1)),
      cfg);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.30;
  traffic::TrafficDriver driver(net, tcfg);
  constexpr std::size_t kSpan = 256;
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    driver.run(kSpan);
    cycles += kSpan;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));  // cycles/s
  state.SetLabel(sim::scheduler_name(cfg.scheduler));
  state.counters["leapt_frac"] =
      cycles > 0 ? static_cast<double>(net.kernel().leapt_cycles()) /
                       static_cast<double>(cycles)
                 : 0.0;
}
BENCHMARK(BM_SaturatedSched)
    ->ArgNames({"mesh", "sched"})
    ->Args({8, 1})
    ->Args({8, 2});

// The partitioned datapath across shapes and degrees of parallelism:
// cycles/s on mesh 8x8, mesh 16x16, and a concentrated 8x8 mesh (c=4,
// whose 1-stage grid links buy 2-cycle lookahead epochs — half the
// barriers). The `la` arg caps the epoch length (0 = derive from the
// cut); epochs and cross-cut flit volume are reported so regressions can
// be attributed to barrier count vs mailbox traffic.
void BM_PartitionedCycles(benchmark::State& state) {
  using namespace xpl;
  const auto shape = state.range(0);  // 0: mesh8, 1: mesh16, 2: cmesh8x8c4
  const auto parts = static_cast<std::size_t>(state.range(1));
  const auto threads = static_cast<std::size_t>(state.range(2));
  const auto la = static_cast<std::size_t>(state.range(3));
  const std::size_t side = shape == 1 ? 16 : 8;
  noc::NetworkConfig cfg = config(side);
  // A 16x16 mesh routes up to 30 hops x 4 bits: the route field needs a
  // 128-bit head flit (config() only widens to 64 for the 8x8 meshes).
  if (side == 16) cfg.flit_width = 128;
  cfg.partitions = parts;
  cfg.sim_threads = threads;
  cfg.lookahead = la;
  topology::Topology topo =
      shape == 2
          ? topology::make_cmesh(8, 8, 4)
          : topology::make_mesh(side, side,
                                topology::NiPlan::uniform(side * side, 1, 1));
  noc::Network net(std::move(topo), cfg);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.05;
  traffic::TrafficDriver driver(net, tcfg);
  const std::size_t k = std::max<std::size_t>(1, net.kernel().lookahead());
  std::uint64_t cycles = 0;
  for (auto _ : state) {
    driver.run(k);  // one epoch per iteration
    cycles += k;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));  // cycles/s
  state.SetLabel(shape == 2 ? "cmesh8x8c4" : (shape == 1 ? "mesh16" : "mesh8"));
  state.counters["lookahead"] = static_cast<double>(k);
  state.counters["epochs"] = static_cast<double>(net.kernel().epochs());
  state.counters["cut_flits_per_kcycle"] =
      cycles > 0 ? 1000.0 * static_cast<double>(net.kernel().cut_flits()) /
                       static_cast<double>(cycles)
                 : 0.0;
}
BENCHMARK(BM_PartitionedCycles)
    ->ArgNames({"shape", "parts", "threads", "la"})
    ->Args({0, 1, 1, 0})
    ->Args({0, 2, 1, 0})
    ->Args({0, 4, 1, 0})
    ->Args({1, 1, 1, 0})
    ->Args({1, 4, 1, 0})
    ->Args({2, 1, 1, 0})
    ->Args({2, 4, 1, 0})
    ->Args({2, 4, 1, 1});

// Same CPU-vs-wall split as the twins above: multi-thread rows report
// wall rates or they would claim ~threads x phantom speedup on this
// 1-core container.
void BM_PartitionedCyclesMT(benchmark::State& state) {
  BM_PartitionedCycles(state);
}
BENCHMARK(BM_PartitionedCyclesMT)
    ->ArgNames({"shape", "parts", "threads", "la"})
    ->UseRealTime()
    ->Args({0, 2, 2, 0})
    ->Args({0, 4, 4, 0})
    ->Args({1, 4, 4, 0})
    ->Args({2, 4, 4, 0})
    ->Args({2, 4, 4, 1});

// The dateline payoff: saturated transaction throughput on a 4x4 torus,
// minimal (shortest-path) routing with dateline VCs against the up*/down*
// single-lane baseline the seed had to fall back to. Minimal routes use
// the torus bisection that up*/down* wastes; the txns counter is the
// comparison (same wall budget => more completed transactions).
void BM_TorusSaturated(benchmark::State& state) {
  using namespace xpl;
  const bool minimal = state.range(0) != 0;
  const auto vcs = static_cast<std::size_t>(state.range(1));
  noc::NetworkConfig cfg;
  cfg.target_window = 1 << 12;
  cfg.routing = minimal ? topology::RoutingAlgorithm::kShortestPath
                        : topology::RoutingAlgorithm::kUpDown;
  cfg.vcs = vcs;
  noc::Network net(
      topology::make_torus(4, 4, topology::NiPlan::uniform(16, 1, 1)),
      cfg);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.30;
  traffic::TrafficDriver driver(net, tcfg);
  for (auto _ : state) {
    driver.step();
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(minimal ? "minimal+dateline" : "updown");
  std::uint64_t done = 0;
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    done += net.master(i).completed().size();
  }
  state.counters["txns"] = static_cast<double>(done);
  state.counters["txns_per_kcycle"] =
      state.iterations() > 0
          ? 1000.0 * static_cast<double>(done) /
                static_cast<double>(state.iterations())
          : 0.0;
}
BENCHMARK(BM_TorusSaturated)
    ->ArgNames({"minimal", "vcs"})
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({1, 4});

void BM_ReadTransaction(benchmark::State& state) {
  using namespace xpl;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)),
      config());
  std::uint64_t k = 0;
  for (auto _ : state) {
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kRead;
    txn.addr = net.target_base(k++ % 4);
    txn.burst_len = 1;
    net.master(0).push_transaction(txn);
    net.run_until_quiescent(10000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadTransaction);

// One flit hop over the full link protocol path. Under ack_nack (arg 1
// == 0): sender seals (CRC) and drives the wire, the kernel commits, the
// receiver verifies and ACKs, the kernel commits the ACK back. Under
// credit (arg 1 == 1) the CRC work disappears and the reverse beat is a
// bare credit return — the per-hop saving reliable links buy. This is
// the innermost unit of work of every simulated link; the allocs_per_hop
// counter must be exactly zero for the paper's whole 16..128-bit flit
// range in *both* protocols (BitVector inline storage plus ring-buffer
// FIFOs), and the benchmark fails if it is not.
void BM_FlitHop(benchmark::State& state) {
  using namespace xpl;
  const auto width = static_cast<std::size_t>(state.range(0));
  const auto flow = static_cast<link::FlowControl>(state.range(1));
  const auto vcs = static_cast<std::size_t>(state.range(2));
  sim::Kernel kernel;
  const link::LinkWires wires = link::LinkWires::make(kernel);
  link::ProtocolConfig proto = link::ProtocolConfig::for_link(0);
  proto.vcs = vcs;
  link::LinkSender tx(flow, wires, proto);
  link::LinkReceiver rx(flow, wires, proto);
  const std::uint32_t take_all = (1u << vcs) - 1;

  BitVector payload(width);
  for (std::size_t i = 0; i < width; i += 3) payload.set(i, true);

  std::uint64_t hops = 0;
  std::uint8_t lane = 0;
  const std::uint64_t allocs_before = allocs();
  for (auto _ : state) {
    tx.begin_cycle();
    if (tx.can_accept(lane)) {
      Flit flit(payload, /*head=*/true, /*tail=*/true);
      flit.vc = lane;  // single-flit packets rotate over the lanes
      tx.accept(std::move(flit));
      lane = static_cast<std::uint8_t>((lane + 1) % vcs);
    }
    tx.end_cycle();
    kernel.step();  // flit crosses the wire
    if (auto flit = rx.begin_cycle(take_all)) {
      benchmark::DoNotOptimize(flit->payload);
      ++hops;
    }
    rx.end_cycle();
    kernel.step();  // ACK returns
  }
  const std::uint64_t allocated = allocs() - allocs_before;
  state.SetItemsProcessed(static_cast<std::int64_t>(hops));
  state.SetLabel(link::flow_control_name(flow));
  state.counters["allocs_per_hop"] =
      state.iterations() > 0
          ? static_cast<double>(allocated) /
                static_cast<double>(state.iterations())
          : 0.0;
  if (width <= 128 && allocated > 0) {
    g_flit_hop_alloc_failure = true;
    state.SkipWithError("heap allocation on the flit hop path");
  }
}
BENCHMARK(BM_FlitHop)
    ->ArgNames({"width", "flow", "vcs"})
    ->Args({16, 0, 1})
    ->Args({32, 0, 1})
    ->Args({64, 0, 1})
    ->Args({128, 0, 1})
    ->Args({32, 0, 2})
    ->Args({32, 0, 4})
    ->Args({32, 1, 1})
    ->Args({32, 1, 2})
    ->Args({32, 1, 4})
    ->Args({128, 1, 1});

// ------------------------------------------------------------ reporting
// Console reporter that also captures finished runs so main() can emit
// the compact BENCH_*.json perf record (README.md "Tracking performance")
// next to the normal console output.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) runs_.push_back(run);
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
  const std::vector<Run>& runs() const { return runs_; }

 private:
  std::vector<Run> runs_;
};

bool write_bench_json(const std::string& path,
                      const std::vector<benchmark::BenchmarkReporter::Run>&
                          runs) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\"bench\": \"sim_speed\", \"results\": [");
  bool first = true;
  for (const auto& run : runs) {
    double items_per_s = 0.0;
    const auto it = run.counters.find("items_per_second");
    if (it != run.counters.end()) items_per_s = it->second;
    std::fprintf(out, "%s\n  {\"name\": \"%s\", \"items_per_s\": %.1f",
                 first ? "" : ",", run.benchmark_name().c_str(),
                 items_per_s);
    const auto allocs_it = run.counters.find("allocs_per_hop");
    if (allocs_it != run.counters.end()) {
      std::fprintf(out, ", \"allocs_per_hop\": %.3f",
                   static_cast<double>(allocs_it->second));
    }
    // The flow-control / routing comparisons: retransmission vs
    // credit-stall load behind the cycles/s numbers, and the saturated
    // transaction throughput of the torus routing duel.
    for (const char* key : {"retx", "credit_stalls", "txns_per_kcycle",
                            "lookahead", "epochs", "cut_flits_per_kcycle"}) {
      const auto it2 = run.counters.find(key);
      // Aggregate rows (--benchmark_repetitions) can carry NaN counters
      // (the cv of an all-zero counter) — not representable in JSON.
      if (it2 != run.counters.end() &&
          std::isfinite(static_cast<double>(it2->second))) {
        std::fprintf(out, ", \"%s\": %.0f", key,
                     static_cast<double>(it2->second));
      }
    }
    // Scheduler-efficiency fractions (three decimals: these are shares,
    // not counts). Same NaN filter as above: the cv aggregate of an
    // all-zero counter (leapt_frac under full/gated) is 0/0.
    for (const char* key : {"awake_frac", "leapt_frac"}) {
      const auto it3 = run.counters.find(key);
      if (it3 != run.counters.end() &&
          std::isfinite(static_cast<double>(it3->second))) {
        std::fprintf(out, ", \"%s\": %.3f", key,
                     static_cast<double>(it3->second));
      }
    }
    std::fprintf(out, "}");
    first = false;
  }
  std::fprintf(out, "\n]}\n");
  std::fclose(out);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Extract --bench-json before google-benchmark parses the rest.
  std::string bench_json;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--bench-json" && i + 1 < argc) {
      bench_json = argv[++i];
    } else if (arg.rfind("--bench-json=", 0) == 0) {
      bench_json = arg.substr(std::string("--bench-json=").size());
    } else {
      args.push_back(argv[i]);
    }
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }

  CaptureReporter capture;
  benchmark::RunSpecifiedBenchmarks(&capture);

  bool failed = g_flit_hop_alloc_failure;
  if (failed) {
    std::fprintf(stderr,
                 "FAILED: BM_FlitHop: heap allocation on the flit hop "
                 "path at width <= 128\n");
  }
  if (!bench_json.empty() && !write_bench_json(bench_json, capture.runs())) {
    failed = true;
  }
  benchmark::Shutdown();
  return failed ? 1 : 0;
}
