// F10 — simulator performance (google-benchmark).
//
// Not a paper figure: measures the cycle-accurate model itself — kernel
// cycles per second and end-to-end transaction throughput for growing
// meshes — so users can size experiments.
#include <benchmark/benchmark.h>

#include "src/noc/network.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/traffic.hpp"

namespace {

xpl::noc::NetworkConfig config(std::size_t mesh_side = 2) {
  xpl::noc::NetworkConfig cfg;
  cfg.routing = xpl::topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  // Big meshes have long routes; widen flits so the route field fits the
  // head flit (an 8x8 mesh needs 15 hops x 4 bits).
  if (mesh_side >= 6) cfg.flit_width = 64;
  return cfg;
}

void BM_IdleCycles(benchmark::State& state) {
  using namespace xpl;
  const auto n = static_cast<std::size_t>(state.range(0));
  noc::Network net(
      topology::make_mesh(n, n, topology::NiPlan::uniform(n * n, 1, 1)),
      config(n));
  for (auto _ : state) {
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["switches"] = static_cast<double>(net.num_switches());
}
BENCHMARK(BM_IdleCycles)->Arg(2)->Arg(4)->Arg(8);

void BM_LoadedCycles(benchmark::State& state) {
  using namespace xpl;
  const auto n = static_cast<std::size_t>(state.range(0));
  noc::Network net(
      topology::make_mesh(n, n, topology::NiPlan::uniform(n * n, 1, 1)),
      config(n));
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.05;
  traffic::TrafficDriver driver(net, tcfg);
  for (auto _ : state) {
    driver.step();
    net.step();
  }
  state.SetItemsProcessed(state.iterations());
  std::uint64_t done = 0;
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    done += net.master(i).completed().size();
  }
  state.counters["txns"] = static_cast<double>(done);
}
BENCHMARK(BM_LoadedCycles)->Arg(2)->Arg(4)->Arg(8);

void BM_ReadTransaction(benchmark::State& state) {
  using namespace xpl;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)),
      config());
  std::uint64_t k = 0;
  for (auto _ : state) {
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kRead;
    txn.addr = net.target_base(k++ % 4);
    txn.burst_len = 1;
    net.master(0).push_transaction(txn);
    net.run_until_quiescent(10000);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReadTransaction);

}  // namespace

BENCHMARK_MAIN();
