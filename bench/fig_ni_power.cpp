// F2 — "NI Synthesis Results: Power (mW)".
//
// Power of the initiator/target NI versus flit width at 1 GHz, 130 nm,
// typical switching activity. The paper's chart shows a few mW per NI,
// growing with flit width.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/synth/component_models.hpp"
#include "src/synth/estimator.hpp"

int main() {
  using namespace xpl;
  bench::banner("F2", "NI synthesis: power (mW) vs flit width @ 1 GHz");

  synth::Estimator est;
  const double target_mhz = 1000.0;
  const double activity = 0.15;

  std::printf("%-10s %-16s %-16s\n", "flit", "initiator_mW", "target_mW");
  for (const std::size_t width : {16u, 32u, 64u, 128u}) {
    const auto icfg = bench::paper_initiator(width);
    const auto tcfg = bench::paper_target(width);
    const auto ini = est.estimate(
        synth::build_initiator_ni_netlist(icfg, 11),
        synth::initiator_ni_logic_levels(icfg), target_mhz, activity);
    const auto tgt = est.estimate(
        synth::build_target_ni_netlist(tcfg, 8),
        synth::target_ni_logic_levels(tcfg), target_mhz, activity);
    std::printf("%-10zu %-16.2f %-16.2f\n", width, ini.power_mw,
                tgt.power_mw);
  }
  std::printf(
      "\npaper: single-digit mW per NI at 1 GHz, monotone in flit width.\n");
  return 0;
}
