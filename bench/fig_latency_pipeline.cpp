// F8 — "Comparison With Old xpipes Library: Lower Latency (7 to 2 stage
// switches)".
//
// xpipes lite's headline architectural change: the switch pipeline went
// from 7 stages to 2. We instantiate the same 3x3 mesh twice — once with
// 2-stage switches (lite), once with 7-stage switches (first-generation
// xpipes, via extra_pipeline=5) — and measure end-to-end read latency at
// several hop distances plus loaded latency under uniform traffic.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/noc/network.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"

namespace {

xpl::noc::NetworkConfig config_for(std::size_t extra_pipeline) {
  xpl::noc::NetworkConfig cfg;
  cfg.routing = xpl::topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  cfg.extra_switch_pipeline = extra_pipeline;
  return cfg;
}

// Zero-load read latency from corner initiator to a target `hops`
// switches away along the top row.
std::uint64_t zero_load_latency(std::size_t extra_pipeline,
                                std::size_t target_index) {
  using namespace xpl;
  noc::Network net(
      topology::make_mesh(3, 3, topology::NiPlan::uniform(9, 1, 1)),
      config_for(extra_pipeline));
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net.target_base(target_index);
  txn.burst_len = 1;
  net.master(0).push_transaction(txn);
  net.run_until_quiescent(50000);
  const auto& result = net.master(0).completed().at(0);
  return result.complete_cycle - result.issue_cycle;
}

double loaded_latency(std::size_t extra_pipeline) {
  using namespace xpl;
  noc::Network net(
      topology::make_mesh(3, 3, topology::NiPlan::uniform(9, 1, 1)),
      config_for(extra_pipeline));
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.03;
  tcfg.read_fraction = 1.0;
  tcfg.seed = 5;
  traffic::TrafficDriver driver(net, tcfg);
  driver.run(6000);
  net.run_until_quiescent(100000);
  return traffic::collect_latency(net).mean;
}

}  // namespace

int main() {
  using namespace xpl;
  bench::banner("F8", "switch pipeline depth: old xpipes (7) vs lite (2)");

  std::printf("%-22s %-14s %-14s %-10s\n", "measurement",
              "lite_2stage", "old_7stage", "ratio");
  const struct {
    const char* name;
    std::size_t target;
  } points[] = {
      {"read, same switch", 0},   // initiator 0 and target 0 share switch 0
      {"read, 2 switches", 1},    // one grid hop each way
      {"read, 3 switches", 2},    // two grid hops
      {"read, 5 switches", 8},    // corner to corner (4 grid hops)
  };
  for (const auto& p : points) {
    const auto lite = zero_load_latency(0, p.target);
    const auto old7 = zero_load_latency(5, p.target);
    std::printf("%-22s %-14llu %-14llu %-10.2f\n", p.name,
                static_cast<unsigned long long>(lite),
                static_cast<unsigned long long>(old7),
                static_cast<double>(old7) / static_cast<double>(lite));
  }
  const double lite_loaded = loaded_latency(0);
  const double old_loaded = loaded_latency(5);
  std::printf("%-22s %-14.1f %-14.1f %-10.2f\n", "loaded mean (3x3)",
              lite_loaded, old_loaded, old_loaded / lite_loaded);
  std::printf(
      "\npaper: the lite redesign cut the switch from 7 to 2 pipeline\n"
      "stages; per-hop latency drops by 5 cycles each way, so multi-hop\n"
      "reads improve by up to ~2x at zero load.\n");
  return 0;
}
