// Shared helpers for the figure-regeneration benches.
//
// Every bench binary runs with no arguments, prints its figure's series as
// an aligned table (paper values quoted in comments where the slides give
// them), and exits with status 0.
#pragma once

#include <cstdio>

#include "src/link/goback_n.hpp"
#include "src/ni/ni_initiator.hpp"
#include "src/ni/ni_target.hpp"
#include "src/switchlib/switch.hpp"

namespace xpl::bench {

inline void banner(const char* figure, const char* title) {
  std::printf("=========================================================\n");
  std::printf("%s — %s\n", figure, title);
  std::printf("xpipes lite reproduction (synthesis model, 130 nm)\n");
  std::printf("=========================================================\n");
}

/// Switch configuration used across the synthesis figures: the paper's
/// defaults (2-stage, round robin, output queued, go-back-N window for a
/// short link, CRC-8).
inline switchlib::SwitchConfig paper_switch(std::size_t n_in,
                                            std::size_t n_out,
                                            std::size_t flit_width) {
  switchlib::SwitchConfig cfg;
  cfg.num_inputs = n_in;
  cfg.num_outputs = n_out;
  cfg.flit_width = flit_width;
  cfg.port_bits = 3;
  // Whole hop selectors only: a route field that is not a multiple of
  // port_bits would shift non-route header bits into the selectors as
  // hops are consumed (SwitchConfig::validate() now rejects it).
  cfg.route_bits =
      std::min<std::size_t>(24, flit_width / cfg.port_bits * cfg.port_bits);
  cfg.protocol = link::ProtocolConfig::for_link(0);
  return cfg;
}

/// NI configurations for the synthesis figures: 8-hop routes (as far as
/// the flit width allows), 32-bit OCP data, the paper's mesh population
/// (11 targets / 8 initiators) for the LUT sizes.
inline ni::InitiatorConfig paper_initiator(std::size_t flit_width) {
  ni::InitiatorConfig cfg;
  cfg.format.flit_width = flit_width;
  cfg.format.beat_width = 32;
  cfg.format.header.max_hops =
      std::min<std::size_t>(8, flit_width / cfg.format.header.port_bits);
  cfg.protocol = link::ProtocolConfig::for_link(0);
  return cfg;
}

inline ni::TargetConfig paper_target(std::size_t flit_width) {
  ni::TargetConfig cfg;
  cfg.format.flit_width = flit_width;
  cfg.format.beat_width = 32;
  cfg.format.header.max_hops =
      std::min<std::size_t>(8, flit_width / cfg.format.header.port_bits);
  cfg.protocol = link::ProtocolConfig::for_link(0);
  return cfg;
}

}  // namespace xpl::bench
