// F4 — "Switch Synthesis Results: Power (mW)".
//
// Switch power versus flit width per radix at 1 GHz (or the radix's best
// clock), 130 nm, typical NoC switching activity.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/synth/component_models.hpp"
#include "src/synth/estimator.hpp"

int main() {
  using namespace xpl;
  bench::banner("F4", "switch synthesis: power (mW) vs flit width");

  synth::Estimator est;
  const double activity = 0.15;
  const struct {
    std::size_t n_in;
    std::size_t n_out;
  } radixes[] = {{4, 4}, {5, 5}, {6, 4}, {8, 8}};

  std::printf("%-10s", "flit");
  for (const auto& r : radixes) {
    std::printf("  %zux%zu_mW  ", r.n_in, r.n_out);
  }
  std::printf("\n");

  for (const std::size_t width : {16u, 32u, 64u, 128u}) {
    std::printf("%-10zu", width);
    for (const auto& r : radixes) {
      const auto cfg = bench::paper_switch(r.n_in, r.n_out, width);
      const double levels = synth::switch_logic_levels(cfg);
      const double fmax = est.max_fmax_mhz(levels);
      const double target = fmax >= 1000.0 ? 1000.0 : fmax * 0.98;
      const auto e = est.estimate(synth::build_switch_netlist(cfg), levels,
                                  target, activity);
      std::printf("  %-9.2f", e.power_mw);
    }
    std::printf("\n");
  }
  std::printf(
      "\npaper: tens of mW per switch at 1 GHz; power tracks area\n"
      "(clocked buffers dominate) and scales with frequency.\n");
  return 0;
}
