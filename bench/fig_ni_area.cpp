// F1 — "NI Synthesis Results: Area (mm2)".
//
// Reproduces the paper's initiator/target NI area figure: area versus flit
// width {16, 32, 64, 128}, synthesized at 1 GHz (the frequency the paper
// reports for the NIs). Paper anchors (read off the mesh case-study
// chart): initiator NI ~0.05 mm2 and target NI ~0.04 mm2 at 32 bits,
// roughly linear growth toward 128 bits.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/synth/component_models.hpp"
#include "src/synth/estimator.hpp"

int main() {
  using namespace xpl;
  bench::banner("F1", "NI synthesis: area (mm2) vs flit width @ 1 GHz");

  synth::Estimator est;
  const double target_mhz = 1000.0;
  const std::size_t num_peers = 11;  // the case-study target count

  std::printf("%-10s %-16s %-16s\n", "flit", "initiator_mm2", "target_mm2");
  for (const std::size_t width : {16u, 32u, 64u, 128u}) {
    const auto icfg = bench::paper_initiator(width);
    const auto tcfg = bench::paper_target(width);
    const auto ini = est.estimate(
        synth::build_initiator_ni_netlist(icfg, num_peers),
        synth::initiator_ni_logic_levels(icfg), target_mhz);
    const auto tgt = est.estimate(
        synth::build_target_ni_netlist(tcfg, 8),
        synth::target_ni_logic_levels(tcfg), target_mhz);
    std::printf("%-10zu %-16.4f %-16.4f\n", width, ini.area_mm2,
                tgt.area_mm2);
  }
  std::printf(
      "\npaper: initiator ~0.05 / target ~0.04 mm2 at 32 bits; area grows\n"
      "roughly linearly in flit width (buffering dominates).\n");
  return 0;
}
