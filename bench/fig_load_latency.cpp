// F11 (extension) — latency vs offered load.
//
// The canonical NoC characterization the paper's simulation view enables:
// sweep the injection rate on a 4x4 mesh under uniform random traffic and
// chart mean/p95 read latency and accepted throughput up to saturation.
// Run for both the lite 2-stage switch and the old 7-stage switch to show
// where the pipeline redesign moves the curve.
//
// The sweep itself runs on the src/sweep/ campaign engine: each
// (rate, switch-depth) cell is one independent SweepPoint executed on the
// work-stealing pool, results keyed by point index so the table is
// identical for any worker count.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/sweep/runner.hpp"
#include "src/sweep/spec.hpp"

namespace {

/// One (rate, pipeline-depth) cell as a sweep job on the 4x4 mesh.
xpl::sweep::SweepPoint make_point(std::size_t index, double rate,
                                  std::size_t extra_pipeline) {
  xpl::sweep::SweepPoint p;
  p.index = index;
  p.topology = "mesh";
  p.width = 4;
  p.height = 4;
  p.sim_cycles = 6000;
  p.drain_cycles = 80000;
  p.estimate = false;  // F11 only charts simulation metrics
  p.net.routing = xpl::topology::RoutingAlgorithm::kXY;
  p.net.target_window = 1 << 12;
  p.net.extra_switch_pipeline = extra_pipeline;
  p.traffic.injection_rate = rate;
  p.traffic.read_fraction = 1.0;
  p.traffic.max_burst = 2;
  p.traffic.seed = 33;
  return p;
}

}  // namespace

int main() {
  using namespace xpl;
  bench::banner("F11", "latency vs offered load, 4x4 mesh, uniform random");

  const std::vector<double> rates{0.005, 0.01, 0.02, 0.04,
                                  0.08,  0.12, 0.16, 0.20};
  // Points 2i = lite 2-stage, 2i+1 = old 7-stage at rates[i].
  std::vector<sweep::SweepPoint> points;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    points.push_back(make_point(2 * i, rates[i], 0));
    points.push_back(make_point(2 * i + 1, rates[i], 5));
  }

  const sweep::SweepRunner runner;  // hardware concurrency
  sweep::ResultTable table(points.size());
  runner.run_indexed(points.size(), [&](std::size_t i) {
    table.set(sweep::SweepRunner::run_point(points[i]));
  });

  for (const auto& r : table.rows()) {
    if (!r.ok) {
      std::fprintf(stderr, "F11: point %s failed: %s\n",
                   r.point.label().c_str(), r.error.c_str());
      return 1;
    }
  }

  std::printf("%-10s | %-24s | %-24s\n", "", "lite 2-stage", "old 7-stage");
  std::printf("%-10s | %-8s %-7s %-7s | %-8s %-7s %-7s\n", "offered",
              "accepted", "mean", "p95", "accepted", "mean", "p95");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& lite = table.row(2 * i);
    const auto& old7 = table.row(2 * i + 1);
    std::printf("%-10.3f | %-8.4f %-7.1f %-7.0f | %-8.4f %-7.1f %-7.0f\n",
                rates[i], lite.throughput_tpc / 16.0,
                lite.avg_latency_cycles, lite.p95_latency_cycles,
                old7.throughput_tpc / 16.0, old7.avg_latency_cycles,
                old7.p95_latency_cycles);
  }
  std::printf(
      "\nexpected shape: flat latency at low load, knee near saturation;\n"
      "the 7-stage switch saturates earlier and sits ~1.5-2x higher in\n"
      "latency everywhere — the redesign the paper leads with.\n");
  return 0;
}
