// F11 (extension) — latency vs offered load.
//
// The canonical NoC characterization the paper's simulation view enables:
// sweep the injection rate on a 4x4 mesh under uniform random traffic and
// chart mean/p95 read latency and accepted throughput up to saturation.
// Run for both the lite 2-stage switch and the old 7-stage switch to show
// where the pipeline redesign moves the curve.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/noc/network.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"

namespace {

struct Point {
  double offered = 0.0;
  double accepted = 0.0;
  double mean = 0.0;
  double p95 = 0.0;
};

Point run_point(double rate, std::size_t extra_pipeline) {
  using namespace xpl;
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  cfg.extra_switch_pipeline = extra_pipeline;
  noc::Network net(
      topology::make_mesh(4, 4, topology::NiPlan::uniform(16, 1, 1)), cfg);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = rate;
  tcfg.read_fraction = 1.0;
  tcfg.max_burst = 2;
  tcfg.seed = 33;
  traffic::TrafficDriver driver(net, tcfg);
  const std::size_t cycles = 6000;
  driver.run(cycles);
  net.run_until_quiescent(80000);

  Point p;
  p.offered = rate;
  const auto stats = traffic::collect_run(net, cycles);
  p.accepted = stats.throughput / 16.0;  // per initiator
  p.mean = stats.latency.mean;
  p.p95 = stats.latency.p95;
  return p;
}

}  // namespace

int main() {
  using namespace xpl;
  bench::banner("F11", "latency vs offered load, 4x4 mesh, uniform random");

  std::printf("%-10s | %-24s | %-24s\n", "", "lite 2-stage", "old 7-stage");
  std::printf("%-10s | %-8s %-7s %-7s | %-8s %-7s %-7s\n", "offered",
              "accepted", "mean", "p95", "accepted", "mean", "p95");
  for (const double rate :
       {0.005, 0.01, 0.02, 0.04, 0.08, 0.12, 0.16, 0.20}) {
    const Point lite = run_point(rate, 0);
    const Point old7 = run_point(rate, 5);
    std::printf("%-10.3f | %-8.4f %-7.1f %-7.0f | %-8.4f %-7.1f %-7.0f\n",
                rate, lite.accepted, lite.mean, lite.p95, old7.accepted,
                old7.mean, old7.p95);
  }
  std::printf(
      "\nexpected shape: flat latency at low load, knee near saturation;\n"
      "the 7-stage switch saturates earlier and sits ~1.5-2x higher in\n"
      "latency everywhere — the redesign the paper leads with.\n");
  return 0;
}
