// VCD tracer: header structure, change-only dumping, value encoding.
#include "src/sim/trace.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/common/error.hpp"

namespace xpl::sim {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class Counter : public Module {
 public:
  explicit Counter(Signal<int>& out) : Module("ctr"), out_(out) {}
  void tick(Kernel&) override { out_.write(++count_); }
  int count() const { return count_; }

 private:
  Signal<int>& out_;
  int count_ = 0;
};

TEST(VcdTracer, EmitsWellFormedHeader) {
  Kernel kernel;
  const std::string path = ::testing::TempDir() + "/xpl_header.vcd";
  VcdTracer tracer(kernel, path);
  tracer.add_probe("alpha", 1, [] { return 0ull; });
  tracer.add_probe("beta.gamma", 8, [] { return 0x5Aull; });
  tracer.start();
  kernel.run(1);
  tracer.finish();

  const std::string vcd = slurp(path);
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 ! alpha $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 8 \" beta.gamma $end"), std::string::npos);
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
}

TEST(VcdTracer, DumpsChangesOnly) {
  Kernel kernel;
  auto& sig = kernel.make_signal<int>(0);
  Counter counter(sig);
  kernel.add_module(counter);

  const std::string path = ::testing::TempDir() + "/xpl_changes.vcd";
  VcdTracer tracer(kernel, path);
  // A value that changes every cycle and one that never changes.
  tracer.add_probe("count", 16, [&] {
    return static_cast<std::uint64_t>(sig.read());
  });
  tracer.add_probe("constant", 4, [] { return 0xAull; });
  tracer.start();
  kernel.run(5);
  tracer.finish();

  const std::string vcd = slurp(path);
  // count: initial + 5 changes; constant: exactly one emission.
  std::size_t const_emissions = 0;
  std::size_t pos = 0;
  while ((pos = vcd.find("b1010 \"", pos)) != std::string::npos) {
    ++const_emissions;
    pos += 1;
  }
  EXPECT_EQ(const_emissions, 1u);
  // Timestamps for every cycle where something changed.
  for (int c = 1; c <= 5; ++c) {
    EXPECT_NE(vcd.find("#" + std::to_string(c) + "\n"), std::string::npos)
        << "cycle " << c;
  }
  // Binary encoding of count value 3 (16 bits).
  EXPECT_NE(vcd.find("b0000000000000011 !"), std::string::npos);
}

TEST(VcdTracer, ScalarUsesCompactForm) {
  Kernel kernel;
  auto& sig = kernel.make_signal<int>(0);
  Counter counter(sig);
  kernel.add_module(counter);
  const std::string path = ::testing::TempDir() + "/xpl_scalar.vcd";
  VcdTracer tracer(kernel, path);
  tracer.add_probe("lsb", 1,
                   [&] { return static_cast<std::uint64_t>(sig.read() & 1); });
  tracer.start();
  kernel.run(3);
  tracer.finish();
  const std::string vcd = slurp(path);
  EXPECT_NE(vcd.find("1!"), std::string::npos);
  EXPECT_NE(vcd.find("0!"), std::string::npos);
}

TEST(VcdTracer, RejectsLateProbesAndBadWidths) {
  Kernel kernel;
  const std::string path = ::testing::TempDir() + "/xpl_bad.vcd";
  VcdTracer tracer(kernel, path);
  EXPECT_THROW(tracer.add_probe("w0", 0, [] { return 0ull; }), Error);
  EXPECT_THROW(tracer.add_probe("w65", 65, [] { return 0ull; }), Error);
  tracer.add_probe("ok", 4, [] { return 1ull; });
  tracer.start();
  EXPECT_THROW(tracer.add_probe("late", 1, [] { return 0ull; }), Error);
  EXPECT_THROW(tracer.start(), Error);
}

TEST(VcdTracer, ManyProbesGetDistinctIds) {
  Kernel kernel;
  const std::string path = ::testing::TempDir() + "/xpl_many.vcd";
  VcdTracer tracer(kernel, path);
  for (int i = 0; i < 200; ++i) {
    tracer.add_probe("p" + std::to_string(i), 4,
                     [i] { return static_cast<std::uint64_t>(i & 0xF); });
  }
  EXPECT_EQ(tracer.probe_count(), 200u);
  tracer.start();
  kernel.run(1);
  tracer.finish();
  // 200 > 94: identifier codes must have rolled into two characters.
  const std::string vcd = slurp(path);
  EXPECT_NE(vcd.find("$var wire 4 !\" p94 $end"), std::string::npos);
}

}  // namespace
}  // namespace xpl::sim
