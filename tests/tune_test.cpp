// xtune subsystem: .tune parsing and canonical round-trip, objective
// scoring, config-space decoding and paired seeding, tuner determinism
// across job counts, budget enforcement, adaptive saturation search vs a
// dense reference scan (accuracy and evaluation-count advantage), and
// emitted-.noc fidelity.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "src/common/error.hpp"
#include "src/compiler/spec_io.hpp"
#include "src/sweep/runner.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"
#include "src/tune/saturation.hpp"
#include "src/tune/spec.hpp"
#include "src/tune/tuner.hpp"

namespace xpl::tune {
namespace {

constexpr const char* kSpecText = R"(# comment
tune scan             # trailing comment
seed 9
cycles 400
drain 8000
warmup 0
budget 32
rate 0.08
target_mhz 900
objective latency 1 throughput 2 area 0.5
topology mesh
width 2
height 2
flit_width 32
pattern uniform
search fifo_depth 2 4
search flow ack_nack credit
saturation 0.05 0.8 0.01
)";

TEST(TuneSpec, ParsesEveryDirective) {
  const TuneSpec spec = parse_tune(kSpecText);
  EXPECT_EQ(spec.name, "scan");
  EXPECT_EQ(spec.seed, 9u);
  EXPECT_EQ(spec.sim_cycles, 400u);
  EXPECT_EQ(spec.drain_cycles, 8000u);
  EXPECT_EQ(spec.budget, 32u);
  EXPECT_DOUBLE_EQ(spec.rate, 0.08);
  EXPECT_DOUBLE_EQ(spec.objective.latency, 1.0);
  EXPECT_DOUBLE_EQ(spec.objective.throughput, 2.0);
  EXPECT_DOUBLE_EQ(spec.objective.area, 0.5);
  EXPECT_DOUBLE_EQ(spec.objective.p95, 0.0);  // unmentioned keys reset
  EXPECT_EQ(spec.fifo_depths, (std::vector<std::size_t>{2, 4}));
  EXPECT_EQ(spec.flows, (std::vector<std::string>{"ack_nack", "credit"}));
  EXPECT_EQ(spec.vcss, (std::vector<std::size_t>{1}));  // unsearched axis
  EXPECT_EQ(spec.num_configs(), 4u);
  EXPECT_TRUE(spec.saturation.enabled);
  EXPECT_DOUBLE_EQ(spec.saturation.lo, 0.05);
  EXPECT_DOUBLE_EQ(spec.saturation.hi, 0.8);
  EXPECT_TRUE(spec.sweeps_flow());
  EXPECT_FALSE(spec.sweeps_vcs());
}

TEST(TuneSpec, CanonicalRoundTrip) {
  const TuneSpec spec = parse_tune(kSpecText);
  const std::string canonical = write_tune(spec);
  const TuneSpec reparsed = parse_tune(canonical);
  EXPECT_EQ(write_tune(reparsed), canonical);
  EXPECT_EQ(reparsed.num_configs(), spec.num_configs());
  EXPECT_DOUBLE_EQ(reparsed.saturation.rel_tol, spec.saturation.rel_tol);
}

void expect_tune_line_error(const std::string& text, std::size_t line) {
  try {
    parse_tune(text);
    FAIL() << "expected Error for: " << text;
  } catch (const Error& e) {
    const std::string prefix = "tune line " + std::to_string(line) + ":";
    EXPECT_NE(std::string(e.what()).find(prefix), std::string::npos)
        << "message '" << e.what() << "' lacks '" << prefix << "'";
  }
}

TEST(TuneSpec, MalformedLinesReportTheirLineNumber) {
  const std::string ok = "tune x\nseed 1\n";
  expect_tune_line_error(ok + "bogus 1\n", 3);
  expect_tune_line_error(ok + "seed nope\n", 3);
  expect_tune_line_error(ok + "budget\n", 3);
  expect_tune_line_error(ok + "topology klein_bottle\n", 3);
  expect_tune_line_error(ok + "objective latency\n", 3);  // odd pair
  expect_tune_line_error(ok + "objective speed 1\n", 3);  // unknown key
  expect_tune_line_error(ok + "search turbo 1 2\n", 3);   // unknown axis
  expect_tune_line_error(ok + "search vcs 99\n", 3);
  expect_tune_line_error(ok + "search flow sideband\n", 3);
  expect_tune_line_error(ok + "search routing zigzag\n", 3);
  expect_tune_line_error(ok + "saturation 0.1 0.5\n", 3);  // arity
}

TEST(TuneSpec, ValidateRejectsBadValues) {
  EXPECT_THROW(parse_tune("rate 0\n"), Error);
  EXPECT_THROW(parse_tune("budget 0\n"), Error);
  EXPECT_THROW(parse_tune("cycles 100\nwarmup 100\n"), Error);
  EXPECT_THROW(parse_tune("objective latency 0\n"), Error);  // all-zero
  EXPECT_THROW(parse_tune("saturation 0.5 0.1 0.01\n"), Error);  // lo>hi
  EXPECT_THROW(parse_tune("pattern app:nonesuch\n"), Error);
}

TEST(Objective, ScoresWeightedSumAndFailedPoints) {
  sweep::SweepResult r;
  r.ok = true;
  r.avg_latency_cycles = 40.0;
  r.p95_latency_cycles = 90.0;
  r.throughput_tpc = 1.5;
  r.area_mm2 = 4.0;
  r.power_mw = 250.0;
  Objective o;
  o.latency = 1.0;
  o.p95 = 0.1;
  o.throughput = 2.0;
  o.area = 0.5;
  o.power = 0.01;
  EXPECT_DOUBLE_EQ(o.score(r),
                   40.0 + 9.0 - 3.0 + 2.0 + 2.5);
  r.ok = false;
  EXPECT_EQ(o.score(r), std::numeric_limits<double>::infinity());
}

TEST(TuneSpec, ConfigIdsDecodeAndRoundTrip) {
  TuneSpec spec;
  spec.fifo_depths = {2, 4, 8};
  spec.vcss = {1, 2};
  spec.flows = {"ack_nack", "credit"};
  spec.routings = {"auto", "minimal"};
  ASSERT_EQ(spec.num_configs(), 24u);
  // fifo innermost: consecutive ids step the fifo index first.
  EXPECT_EQ(spec.config_indices(0).fifo, 0u);
  EXPECT_EQ(spec.config_indices(1).fifo, 1u);
  EXPECT_EQ(spec.config_indices(3).vcs, 1u);
  EXPECT_EQ(spec.config_indices(23).routing, 1u);
  for (std::size_t c = 0; c < spec.num_configs(); ++c) {
    EXPECT_EQ(spec.config_id(spec.config_indices(c)), c);
  }
  EXPECT_EQ(spec.config_label(0), "q2_v1_ack_nack_auto");
  EXPECT_EQ(spec.config_label(23), "q8_v2_credit_minimal");
  EXPECT_THROW(spec.config_indices(24), Error);
}

TEST(TuneSpec, ConfigPointsArePairedOnSeeds) {
  const TuneSpec spec = parse_tune(kSpecText);
  const sweep::SweepPoint a = spec.config_point(0);
  const sweep::SweepPoint b = spec.config_point(3);
  // Different microarchitecture...
  EXPECT_NE(a.net.output_fifo_depth, b.net.output_fifo_depth);
  EXPECT_NE(a.net.flow, b.net.flow);
  // ...identical derived seeds: paired evaluation, same traffic stream.
  EXPECT_EQ(a.net.seed, b.net.seed);
  EXPECT_EQ(a.traffic.seed, b.traffic.seed);
  EXPECT_DOUBLE_EQ(a.traffic.injection_rate, spec.rate);
}

/// Small tuning problem for the strategy tests: 4 configs on a 2x2 mesh.
TuneSpec tiny_tune() {
  TuneSpec spec;
  spec.name = "tiny";
  spec.seed = 3;
  spec.sim_cycles = 300;
  spec.drain_cycles = 8000;
  spec.budget = 24;
  spec.rate = 0.08;
  spec.width = 2;
  spec.height = 2;
  spec.fifo_depths = {2, 4};
  spec.flows = {"ack_nack", "credit"};
  spec.objective.latency = 1.0;
  spec.objective.area = 0.2;
  return spec;
}

TEST(Tuner, DeterministicAcrossJobCounts) {
  const TuneSpec spec = tiny_tune();
  const sweep::SweepRunner serial(1);
  const sweep::SweepRunner parallel(8);
  const TuneReport a = Tuner(serial).run(spec);
  const TuneReport b = Tuner(parallel).run(spec);
  // Byte-identical trajectory exports: same points, same order, same
  // winner — scheduling never leaks into the tuning decisions.
  EXPECT_EQ(a.trajectory_csv(), b.trajectory_csv());
  EXPECT_EQ(a.trajectory_json(), b.trajectory_json());
  ASSERT_NE(a.best, TuneReport::npos);
  EXPECT_EQ(a.winner().config, b.winner().config);
  EXPECT_EQ(a.pareto, b.pareto);
}

TEST(Tuner, SuccessiveHalvingThinsTheFieldAndWinnerIsFullFidelity) {
  const TuneSpec spec = tiny_tune();
  const sweep::SweepRunner runner(2);
  const TuneReport report = Tuner(runner).run(spec);

  std::size_t rung0 = 0, rung1 = 0, full = 0;
  for (const TuneEval& ev : report.trajectory) {
    if (ev.stage == "rung0") {
      ++rung0;
      EXPECT_EQ(ev.cycles, spec.sim_cycles / 4);
    } else if (ev.stage == "rung1") {
      ++rung1;
      EXPECT_EQ(ev.cycles, spec.sim_cycles / 2);
    }
    if (ev.cycles == spec.sim_cycles) ++full;
  }
  EXPECT_EQ(rung0, spec.num_configs());  // first rung sees everyone
  EXPECT_EQ(rung1, (spec.num_configs() + 1) / 2);
  EXPECT_GE(full, 1u);
  ASSERT_NE(report.best, TuneReport::npos);
  EXPECT_EQ(report.trajectory[report.best].cycles, spec.sim_cycles);
  EXPECT_TRUE(report.trajectory[report.best].result.ok);
  EXPECT_FALSE(report.budget_exhausted);
  EXPECT_LE(report.trajectory.size(), spec.budget);
  // The Pareto front lives on full-fidelity evaluations only.
  for (const std::size_t i : report.pareto) {
    EXPECT_EQ(report.trajectory[i].cycles, spec.sim_cycles);
    EXPECT_TRUE(report.trajectory[i].result.ok);
  }
}

TEST(Tuner, BudgetIsAHardCeiling) {
  TuneSpec spec = tiny_tune();
  spec.budget = 3;  // less than one full rung
  const sweep::SweepRunner runner(1);
  const TuneReport report = Tuner(runner).run(spec);
  EXPECT_EQ(report.trajectory.size(), 3u);
  EXPECT_TRUE(report.budget_exhausted);
}

TEST(Tuner, EmittedSpecReSimulatesIdentically) {
  const TuneSpec spec = tiny_tune();
  const sweep::SweepRunner runner(2);
  const TuneReport report = Tuner(runner).run(spec);
  ASSERT_NE(report.best, TuneReport::npos);
  const TuneEval& winner = report.winner();

  // Emission fidelity: round-trip the winner through .noc *text*, rebuild
  // from the parsed spec, re-simulate, and demand the recorded metrics —
  // the library-level version of `xtune --verify`.
  const std::string text =
      compiler::write_spec(to_noc_spec(spec, winner.config));
  compiler::NocSpec parsed = compiler::parse_spec(text);
  EXPECT_EQ(compiler::write_spec(parsed), text);  // canonical

  const sweep::SweepPoint p = spec.config_point(winner.config);
  EXPECT_EQ(parsed.net.output_fifo_depth, p.net.output_fifo_depth);
  EXPECT_EQ(parsed.net.flow, p.net.flow);
  parsed.net.seed = p.net.seed;  // a .noc deliberately carries no seed
  parsed.net.max_outstanding = p.net.max_outstanding;
  parsed.net.slave_latency = p.net.slave_latency;

  const compiler::XpipesCompiler xpipes;
  const auto network = xpipes.build_simulation(parsed);
  traffic::TrafficDriver driver(*network, p.traffic);
  driver.run(p.sim_cycles);
  network->run_until_quiescent(p.drain_cycles);
  const auto stats =
      traffic::collect_run(*network, p.sim_cycles, p.warmup);
  EXPECT_EQ(stats.transactions, winner.result.transactions);
  EXPECT_DOUBLE_EQ(stats.latency.mean, winner.result.avg_latency_cycles);
  EXPECT_DOUBLE_EQ(stats.throughput, winner.result.throughput_tpc);
}

TEST(SaturationSearch, RejectsBadBrackets) {
  const TuneSpec spec = tiny_tune();
  const sweep::SweepPoint base = spec.config_point(0);
  SaturationConfig bad;
  bad.enabled = true;
  bad.lo = 0.5;
  bad.hi = 0.1;
  EXPECT_THROW(SaturationSearch(base, bad), Error);
  bad.lo = 0.1;
  bad.hi = 0.5;
  bad.rel_tol = 0.0;
  EXPECT_THROW(SaturationSearch(base, bad), Error);
  bad.rel_tol = 0.01;
  bad.latency_blowup = 1.0;
  EXPECT_THROW(SaturationSearch(base, bad), Error);
}

TEST(SaturationSearch, PredicateIsTheLatencyKnee) {
  // Saturated = mean latency above blowup x the calibration latency.
  EXPECT_FALSE(SaturationSearch::saturated(50.0, 20.0, 3.0));
  EXPECT_FALSE(SaturationSearch::saturated(60.0, 20.0, 3.0));  // exactly 3x
  EXPECT_TRUE(SaturationSearch::saturated(61.0, 20.0, 3.0));
}

TEST(SaturationSearch, MatchesDenseReferenceWithFarFewerSimulations) {
  // The acceptance bar from the bench table: the bisection locates the
  // saturation knee within one rel_tol step of a dense scan that applies
  // the *same* predicate, using >= 5x fewer simulations. The network and
  // window match bench/fig_tune_convergence.cpp — the 90%-of-linear
  // predicate needs a statistically meaningful transaction count per
  // probe, which the 2x2/300-cycle fixture above cannot provide.
  TuneSpec tspec;
  tspec.name = "sat_acceptance";
  tspec.seed = 5;
  tspec.sim_cycles = 1500;
  tspec.drain_cycles = 40000;
  tspec.width = 4;
  tspec.height = 4;
  const sweep::SweepPoint base = tspec.config_point(0);
  SaturationConfig cfg;
  cfg.enabled = true;
  cfg.lo = 0.02;
  cfg.hi = 0.64;
  cfg.rel_tol = 0.01;

  // Adaptive search.
  const sweep::SweepRunner runner(1);
  SaturationSearch search(base, cfg);
  runner.run_adaptive(search);
  ASSERT_TRUE(search.converged());
  ASSERT_TRUE(search.error().empty()) << search.error();
  const double adaptive_rate = search.saturation_rate();
  const std::size_t adaptive_evals = search.evaluations();

  // Dense reference: every rate on a rel_tol-spaced grid, shared
  // calibration at lo, shared saturated() predicate.
  auto lat_at = [&](double rate) {
    sweep::SweepPoint p = base;
    p.traffic.injection_rate = rate;
    const sweep::SweepResult r = sweep::SweepRunner::run_point(p);
    EXPECT_TRUE(r.ok) << r.error;
    return r.avg_latency_cycles;
  };
  const double step = cfg.rel_tol * cfg.hi;
  const double lat_lo = lat_at(cfg.lo);
  ASSERT_GT(lat_lo, 0.0);
  std::size_t dense_evals = 1;  // the calibration run
  double dense_last_unsat = cfg.lo;
  double dense_first_sat = 0.0;
  for (double rate = cfg.lo + step; rate <= cfg.hi + 1e-12; rate += step) {
    const double lat = lat_at(rate);
    ++dense_evals;
    if (SaturationSearch::saturated(lat, lat_lo, cfg.latency_blowup)) {
      dense_first_sat = rate;
      break;
    }
    dense_last_unsat = rate;
  }
  ASSERT_GT(dense_first_sat, 0.0)
      << "network never saturated in the bracket; widen it";

  // Accuracy: the bisected rate falls inside (or within one grid step
  // of) the dense scan's [last unsaturated, first saturated] bracket.
  EXPECT_GE(adaptive_rate, dense_last_unsat - step - 1e-12);
  EXPECT_LE(adaptive_rate, dense_first_sat + 1e-12);

  // Economy: >= 5x fewer simulations than covering the grid up to the
  // knee would need to *guarantee* the same resolution over the bracket.
  const std::size_t dense_grid =
      static_cast<std::size_t>((cfg.hi - cfg.lo) / step) + 1;
  EXPECT_GE(dense_grid, adaptive_evals * 5)
      << "adaptive took " << adaptive_evals << " of a " << dense_grid
      << "-point grid";
  // And in this instance it also beat the scan-to-knee count.
  EXPECT_LT(adaptive_evals, dense_evals);
}

TEST(Tuner, SaturationPhaseRunsAfterSearchAndIsReported) {
  TuneSpec spec = tiny_tune();
  spec.budget = 40;  // rungs + climb + the full bisection must all fit
  spec.saturation.enabled = true;
  spec.saturation.lo = 0.05;
  spec.saturation.hi = 0.8;
  spec.saturation.rel_tol = 0.02;
  const sweep::SweepRunner runner(2);
  const TuneReport report = Tuner(runner).run(spec);
  ASSERT_NE(report.best, TuneReport::npos);
  EXPECT_TRUE(report.saturation_converged);
  EXPECT_GT(report.saturation_evals, 0u);
  EXPECT_GE(report.saturation_rate, spec.saturation.lo);
  EXPECT_LE(report.saturation_rate, spec.saturation.hi);
  // Saturation probes ride at the end of the trajectory, at full
  // fidelity, tagged with the winner's config.
  bool saw_sat = false;
  for (const TuneEval& ev : report.trajectory) {
    if (ev.stage != "saturation") {
      EXPECT_FALSE(saw_sat) << "saturation probes must come last";
      continue;
    }
    saw_sat = true;
    EXPECT_EQ(ev.config, report.winner().config);
    EXPECT_EQ(ev.cycles, spec.sim_cycles);
  }
  EXPECT_TRUE(saw_sat);
}

}  // namespace
}  // namespace xpl::tune
