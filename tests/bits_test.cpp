// Unit and property tests for BitVector / BitWriter / BitReader.
#include "src/common/bits.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace xpl {
namespace {

TEST(BitVector, DefaultIsZero) {
  BitVector v(100);
  EXPECT_EQ(v.width(), 100u);
  EXPECT_TRUE(v.is_zero());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVector, ConstructFromValue) {
  BitVector v(16, 0xABCD);
  EXPECT_EQ(v.to_u64(), 0xABCDu);
  EXPECT_EQ(v.width(), 16u);
}

TEST(BitVector, ConstructRejectsOverflowingValue) {
  EXPECT_THROW(BitVector(4, 0x1F), Error);
}

TEST(BitVector, SetGetSingleBits) {
  BitVector v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_FALSE(v.get(128));
  EXPECT_EQ(v.popcount(), 3u);
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, SliceWithinWord) {
  BitVector v(32, 0xDEADBEEF);
  EXPECT_EQ(v.slice(0, 16), 0xBEEFu);
  EXPECT_EQ(v.slice(16, 16), 0xDEADu);
  EXPECT_EQ(v.slice(4, 8), 0xEEu);
}

TEST(BitVector, SliceAcrossWordBoundary) {
  BitVector v(128);
  v.deposit(60, 16, 0xA5C3);
  EXPECT_EQ(v.slice(60, 16), 0xA5C3u);
  EXPECT_EQ(v.slice(60, 4), 0x3u);
  EXPECT_EQ(v.slice(64, 12), 0xA5Cu);
}

TEST(BitVector, DepositDoesNotDisturbNeighbors) {
  BitVector v(64, 0);
  v.deposit(0, 64, ~std::uint64_t{0});
  v.deposit(8, 8, 0);
  EXPECT_EQ(v.slice(0, 8), 0xFFu);
  EXPECT_EQ(v.slice(8, 8), 0x00u);
  EXPECT_EQ(v.slice(16, 8), 0xFFu);
}

TEST(BitVector, DepositFullWordAtOffsetZero) {
  BitVector v(64);
  v.deposit(0, 64, 0x0123456789ABCDEFull);
  EXPECT_EQ(v.to_u64(), 0x0123456789ABCDEFull);
}

TEST(BitVector, SubvectorAndDepositVectorRoundTrip) {
  Rng rng(7);
  BitVector v(200);
  for (std::size_t i = 0; i < 200; ++i) v.set(i, rng.chance(0.5));
  const BitVector mid = v.subvector(77, 100);
  BitVector w(200);
  w.deposit_vector(77, mid);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(w.get(77 + i), v.get(77 + i)) << "bit " << i;
  }
}

TEST(BitVector, ParityMatchesPopcount) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    BitVector v(97);
    for (std::size_t i = 0; i < 97; ++i) v.set(i, rng.chance(0.3));
    EXPECT_EQ(v.parity(), (v.popcount() % 2) == 1);
  }
}

TEST(BitVector, XorIsInvolution) {
  Rng rng(11);
  BitVector a(150);
  BitVector b(150);
  for (std::size_t i = 0; i < 150; ++i) {
    a.set(i, rng.chance(0.5));
    b.set(i, rng.chance(0.5));
  }
  BitVector c = a;
  c ^= b;
  c ^= b;
  EXPECT_EQ(c, a);
}

TEST(BitVector, ToStringMsbFirst) {
  BitVector v(4, 0b1010);
  EXPECT_EQ(v.to_string(), "1010");
}

TEST(BitVector, ResizeShrinkMasksTop) {
  BitVector v(16, 0xFFFF);
  v.resize(4);
  EXPECT_EQ(v.to_u64(), 0xFu);
  v.resize(16);
  EXPECT_EQ(v.to_u64(), 0xFu);
}

TEST(BitWriter, FieldsLandLsbFirst) {
  BitWriter w(20);
  w.put(4, 0xA).put(8, 0x5C).put(8, 0x31);
  EXPECT_EQ(w.bits().slice(0, 4), 0xAu);
  EXPECT_EQ(w.bits().slice(4, 8), 0x5Cu);
  EXPECT_EQ(w.bits().slice(12, 8), 0x31u);
}

TEST(BitWriter, OverflowThrows) {
  BitWriter w(8);
  w.put(8, 0xFF);
  EXPECT_THROW(w.put(1, 0), Error);
}

TEST(BitReaderWriter, RoundTripRandomFields) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::pair<std::size_t, std::uint64_t>> fields;
    std::size_t total = 0;
    while (total < 150) {
      const std::size_t bits = 1 + rng.next_below(40);
      const std::uint64_t value =
          rng.next_u64() & ((bits == 64) ? ~0ull : ((1ull << bits) - 1));
      fields.emplace_back(bits, value);
      total += bits;
    }
    BitWriter w(total);
    for (const auto& [bits, value] : fields) w.put(bits, value);
    BitReader r(w.bits());
    for (const auto& [bits, value] : fields) {
      EXPECT_EQ(r.get(bits), value);
    }
    EXPECT_EQ(r.remaining(), 0u);
  }
}

TEST(BitsFor, KnownValues) {
  EXPECT_EQ(bits_for(1), 1u);
  EXPECT_EQ(bits_for(2), 1u);
  EXPECT_EQ(bits_for(3), 2u);
  EXPECT_EQ(bits_for(4), 2u);
  EXPECT_EQ(bits_for(5), 3u);
  EXPECT_EQ(bits_for(8), 3u);
  EXPECT_EQ(bits_for(9), 4u);
  EXPECT_EQ(bits_for(1024), 10u);
}

TEST(CeilDiv, KnownValues) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(1, 64), 1u);
  EXPECT_EQ(ceil_div(64, 64), 1u);
  EXPECT_EQ(ceil_div(65, 64), 2u);
}

// Word-boundary sweep for the whole-vector operations that got word-level
// fast paths (equality, XOR, subvector, deposit_vector): widths straddling
// one and two word boundaries, aligned and unaligned positions.
class WordBoundaryOps : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WordBoundaryOps, EqualityAndXorAreValueBased) {
  const std::size_t width = GetParam();
  Rng rng(width);
  BitVector a(width);
  for (std::size_t i = 0; i < width; ++i) a.set(i, rng.chance(0.5));
  BitVector b = a;
  EXPECT_EQ(a, b);
  // Flipping the top bit (the masked partial-word region) must break
  // equality; XORing the same vector twice must restore it.
  b.set(width - 1, !b.get(width - 1));
  EXPECT_NE(a, b);
  BitVector delta(width);
  delta.set(width - 1, true);
  b ^= delta;
  EXPECT_EQ(a, b);
  b ^= b;
  EXPECT_TRUE(b.is_zero());
}

TEST_P(WordBoundaryOps, SubvectorMatchesBitwiseExtraction) {
  const std::size_t width = GetParam();
  Rng rng(width + 1);
  BitVector v(width);
  for (std::size_t i = 0; i < width; ++i) v.set(i, rng.chance(0.5));
  // Aligned (fast path), off-by-one, and mid-word positions.
  for (const std::size_t pos : {std::size_t{0}, std::size_t{1},
                                std::size_t{63} % width}) {
    const std::size_t count = width - pos;
    const BitVector sub = v.subvector(pos, count);
    ASSERT_EQ(sub.width(), count);
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_EQ(sub.get(i), v.get(pos + i)) << "pos=" << pos << " i=" << i;
    }
  }
}

TEST_P(WordBoundaryOps, DepositVectorMatchesBitwiseDeposit) {
  const std::size_t width = GetParam();
  Rng rng(width + 2);
  BitVector value(width);
  for (std::size_t i = 0; i < width; ++i) value.set(i, rng.chance(0.5));
  for (const std::size_t pos : {std::size_t{0}, std::size_t{64},
                                std::size_t{5}}) {
    BitVector dst(pos + width + 3);
    for (std::size_t i = 0; i < dst.width(); ++i) dst.set(i, true);
    dst.deposit_vector(pos, value);
    for (std::size_t i = 0; i < width; ++i) {
      ASSERT_EQ(dst.get(pos + i), value.get(i)) << "pos=" << pos;
    }
    // Neighbours untouched.
    for (std::size_t i = 0; i < pos; ++i) ASSERT_TRUE(dst.get(i));
    for (std::size_t i = pos + width; i < dst.width(); ++i) {
      ASSERT_TRUE(dst.get(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Boundary, WordBoundaryOps,
                         ::testing::Values<std::size_t>(63, 64, 65, 127, 128,
                                                        129, 192, 200));

// Small-buffer optimization: flit-range vectors must stay inline and
// resizing across the inline/heap boundary must preserve value semantics.
TEST(BitVector, ResizeAcrossInlineHeapBoundary) {
  const std::size_t inline_bits = BitVector::kInlineWords * 64;
  BitVector v(64, 0xFEEDFACEDEADBEEFull);
  v.resize(inline_bits + 64);  // inline -> heap
  EXPECT_EQ(v.slice(0, 64), 0xFEEDFACEDEADBEEFull);
  EXPECT_EQ(v.popcount(), BitVector(64, 0xFEEDFACEDEADBEEFull).popcount());
  v.set(inline_bits + 63, true);
  v.resize(64);  // heap -> inline, dropping the high bits
  EXPECT_EQ(v.to_u64(), 0xFEEDFACEDEADBEEFull);
  v.resize(inline_bits + 64);  // back out: dropped bits must stay dropped
  EXPECT_EQ(v.popcount(), BitVector(64, 0xFEEDFACEDEADBEEFull).popcount());
  for (std::size_t i = 64; i < v.width(); ++i) ASSERT_FALSE(v.get(i));
}

TEST(BitVector, ShrinkWithinInlineClearsDroppedWords) {
  BitVector v(192);
  v.set(190, true);
  v.set(100, true);
  v.resize(64);
  v.resize(192);
  EXPECT_TRUE(v.is_zero());
}

// Property sweep: deposit/slice agree for every (pos, count) pair on a
// couple of widths spanning word boundaries.
class DepositSliceSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(DepositSliceSweep, RoundTrip) {
  const auto [width, step] = GetParam();
  Rng rng(width * 31 + step);
  BitVector v(width);
  for (std::size_t pos = 0; pos + step <= width; pos += 7) {
    const std::uint64_t value =
        rng.next_u64() & ((step == 64) ? ~0ull : ((1ull << step) - 1));
    v.deposit(pos, step, value);
    ASSERT_EQ(v.slice(pos, step), value) << "pos=" << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, DepositSliceSweep,
    ::testing::Combine(::testing::Values<std::size_t>(64, 65, 127, 128, 200),
                       ::testing::Values<std::size_t>(1, 3, 17, 33, 64)));

}  // namespace
}  // namespace xpl
