// Source-route computation: validity, shortest paths, XY discipline,
// up*/down* legality.
#include "src/topology/routing.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/topology/generators.hpp"

namespace xpl::topology {
namespace {

// Walks `route` from NI `src` and returns the NI it ejects at, or throws.
std::uint32_t walk_route(const Topology& topo, std::uint32_t src,
                         const Route& route) {
  std::uint32_t cur = topo.ni(src).switch_id;
  for (std::size_t hop = 0; hop < route.size(); ++hop) {
    const auto ports = topo.output_ports(cur);
    require(route[hop] < ports.size(), "selector out of range");
    const PortRef& ref = ports[route[hop]];
    if (ref.kind == PortRef::Kind::kNi) {
      require(hop + 1 == route.size(), "route continues past ejection");
      return ref.id;
    }
    cur = topo.link(ref.id).to;
  }
  throw Error("route never ejects");
}

TEST(Routing, RouteEndsAtDestination) {
  const auto t = make_mesh(3, 3, NiPlan::uniform(9, 1, 1));
  for (const auto algo :
       {RoutingAlgorithm::kShortestPath, RoutingAlgorithm::kXY,
        RoutingAlgorithm::kUpDown}) {
    for (const auto src : t.initiator_ids()) {
      for (const auto dst : t.target_ids()) {
        const Route route = compute_route(t, src, dst, algo);
        EXPECT_EQ(walk_route(t, src, route), dst)
            << routing_name(algo) << " " << src << "->" << dst;
      }
    }
  }
}

TEST(Routing, SameSwitchPairIsOneHop) {
  Topology t;
  const auto a = t.add_switch();
  const auto b = t.add_switch();
  t.add_duplex(a, b);
  const auto ini = t.attach_initiator(a);
  const auto tgt = t.attach_target(a);
  const Route route =
      compute_route(t, ini, tgt, RoutingAlgorithm::kShortestPath);
  EXPECT_EQ(route.size(), 1u);  // just the ejection port
  EXPECT_EQ(walk_route(t, ini, route), tgt);
}

TEST(Routing, ShortestPathHopCountOnMesh) {
  const auto t = make_mesh(4, 4, NiPlan::uniform(16, 1, 1));
  // NI ids: switch s hosts initiator 2s and target 2s+1.
  // Corner (0,0) to corner (3,3): manhattan 6 + ejection = 7 selectors.
  const auto inis = t.initiator_ids();
  const auto tgts = t.target_ids();
  const Route route = compute_route(t, inis.front(), tgts.back(),
                                    RoutingAlgorithm::kShortestPath);
  EXPECT_EQ(route.size(), 7u);
  const Route xy =
      compute_route(t, inis.front(), tgts.back(), RoutingAlgorithm::kXY);
  EXPECT_EQ(xy.size(), 7u);
}

TEST(Routing, XyGoesXFirst) {
  const auto t = make_mesh(3, 3, NiPlan::uniform(9, 1, 1));
  // From switch (0,0) to (2,2): XY visits (1,0),(2,0),(2,1),(2,2).
  const auto src = t.initiator_ids()[0];  // on switch 0 = (0,0)
  const auto dst = t.target_ids()[8];     // on switch 8 = (2,2)
  const Route route = compute_route(t, src, dst, RoutingAlgorithm::kXY);
  const auto path = route_switch_path(t, src, route);
  const std::vector<std::uint32_t> expected{0, 1, 2, 5, 8};
  EXPECT_EQ(path, expected);
}

TEST(Routing, XyRequiresCoordinates) {
  const auto t = make_ring(4, NiPlan::uniform(4, 1, 1));
  EXPECT_THROW(
      compute_route(t, t.initiator_ids()[0], t.target_ids()[2],
                    RoutingAlgorithm::kXY),
      Error);
}

TEST(Routing, UpDownNeverTakesUpAfterDown) {
  const auto t = make_spidergon(8, NiPlan::uniform(8, 1, 1));
  // Reconstruct levels like the router does.
  const auto dist_from_0 = [&t] {
    std::vector<std::size_t> level(t.num_switches(), SIZE_MAX);
    level[0] = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::uint32_t l = 0; l < t.num_links(); ++l) {
        const auto& link = t.link(l);
        if (level[link.from] != SIZE_MAX &&
            level[link.from] + 1 < level[link.to]) {
          level[link.to] = level[link.from] + 1;
          changed = true;
        }
      }
    }
    return level;
  }();
  auto is_up = [&](std::uint32_t from, std::uint32_t to) {
    return dist_from_0[to] < dist_from_0[from] ||
           (dist_from_0[to] == dist_from_0[from] && to < from);
  };
  for (const auto src : t.initiator_ids()) {
    for (const auto dst : t.target_ids()) {
      const Route route =
          compute_route(t, src, dst, RoutingAlgorithm::kUpDown);
      const auto path = route_switch_path(t, src, route);
      bool gone_down = false;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const bool up = is_up(path[i], path[i + 1]);
        if (gone_down) {
          EXPECT_FALSE(up) << "up after down " << src << "->" << dst;
        }
        if (!up) gone_down = true;
      }
      EXPECT_EQ(walk_route(t, src, route), dst);
    }
  }
}

TEST(Routing, AllRoutesTablesComplete) {
  const auto t = make_mesh(2, 3, NiPlan::uniform(6, 1, 1));
  const auto tables = compute_all_routes(t, RoutingAlgorithm::kXY);
  const auto inis = t.initiator_ids();
  const auto tgts = t.target_ids();
  EXPECT_EQ(tables.routes.size(), 2 * inis.size() * tgts.size());
  for (const auto i : inis) {
    for (const auto g : tgts) {
      EXPECT_EQ(walk_route(t, i, tables.at(i, g)), g);
      EXPECT_EQ(walk_route(t, g, tables.at(g, i)), i);
    }
  }
}

TEST(Routing, MaxHopsMatchesDiameter) {
  const auto t = make_mesh(4, 4, NiPlan::uniform(16, 1, 1));
  const auto tables = compute_all_routes(t, RoutingAlgorithm::kXY);
  EXPECT_EQ(tables.max_hops(), 7u);  // manhattan 6 + ejection
}

TEST(Routing, RejectsSameNi) {
  const auto t = make_mesh(2, 2, NiPlan::uniform(4, 1, 1));
  EXPECT_THROW(
      compute_route(t, 0, 0, RoutingAlgorithm::kShortestPath), Error);
}

// Route validity across topologies and algorithms.
struct SweepCase {
  const char* name;
  Topology topo;
  RoutingAlgorithm algorithm;
};

class RoutingSweep : public ::testing::TestWithParam<int> {
 public:
  static std::vector<SweepCase> cases() {
    std::vector<SweepCase> out;
    out.push_back({"mesh_xy", make_mesh(3, 4, NiPlan::uniform(12, 1, 1)),
                   RoutingAlgorithm::kXY});
    out.push_back({"mesh_sp", make_mesh(3, 4, NiPlan::uniform(12, 1, 1)),
                   RoutingAlgorithm::kShortestPath});
    out.push_back({"torus_sp", make_torus(3, 3, NiPlan::uniform(9, 1, 1)),
                   RoutingAlgorithm::kShortestPath});
    out.push_back({"ring_ud", make_ring(6, NiPlan::uniform(6, 1, 1)),
                   RoutingAlgorithm::kUpDown});
    out.push_back({"star_ud", make_star(4, NiPlan::uniform(5, 1, 1)),
                   RoutingAlgorithm::kUpDown});
    out.push_back({"tree_ud",
                   make_binary_tree(3, NiPlan::uniform(7, 1, 1)),
                   RoutingAlgorithm::kUpDown});
    out.push_back({"spidergon_ud",
                   make_spidergon(8, NiPlan::uniform(8, 1, 1)),
                   RoutingAlgorithm::kUpDown});
    return out;
  }
};

TEST_P(RoutingSweep, EveryPairRoutes) {
  static const auto cases_vec = cases();
  const SweepCase& c = cases_vec[static_cast<std::size_t>(GetParam())];
  for (const auto src : c.topo.initiator_ids()) {
    for (const auto dst : c.topo.target_ids()) {
      const Route route = compute_route(c.topo, src, dst, c.algorithm);
      EXPECT_EQ(walk_route(c.topo, src, route), dst)
          << c.name << " " << src << "->" << dst;
      EXPECT_GE(route.size(), 1u);
    }
  }
}

// The adjacency-indexed all-pairs builder must produce byte-identical
// routes to per-pair compute_route (which also answers for the pre-index
// behaviour: link exploration order is link-insertion order in both).
TEST(Routing, AllRoutesMatchPerPairComputation) {
  for (const auto algorithm :
       {RoutingAlgorithm::kShortestPath, RoutingAlgorithm::kUpDown}) {
    for (const auto& topo :
         {make_mesh(4, 4, NiPlan::uniform(16, 1, 1)),
          make_ring(6, NiPlan::uniform(6, 1, 1)),
          make_star(5, NiPlan::uniform(6, 1, 1))}) {
      const RoutingTables tables = compute_all_routes(topo, algorithm);
      for (const auto& [key, route] : tables.routes) {
        EXPECT_EQ(route,
                  compute_route(topo, key.first, key.second, algorithm));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, RoutingSweep,
                         ::testing::Range(0, 7));

}  // namespace
}  // namespace xpl::topology
