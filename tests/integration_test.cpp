// Cross-module integration: the full flow of the paper — application graph
// -> mapping -> xpipesCompiler -> simulation + synthesis views — plus
// long random soak runs with error injection on bigger meshes.
#include <gtest/gtest.h>

#include "src/appgraph/explore.hpp"
#include "src/compiler/compiler.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"

namespace xpl {
namespace {

TEST(Integration, FullFlowMpeg4OnMesh) {
  // 1. Application graph.
  const auto graph = appgraph::mpeg4_decoder();
  // 2. Map onto a 3x4 mesh.
  const auto base =
      topology::make_mesh(3, 4, topology::NiPlan::uniform(12, 0, 0));
  Rng rng(1);
  auto mapping = appgraph::greedy_map(graph, base, 1);
  mapping = appgraph::anneal_map(graph, base, mapping, rng, 4000, 1);
  const auto mapped = appgraph::build_mapped_topology(graph, base, mapping);

  // 3. Compile.
  compiler::NocSpec spec;
  spec.name = "mpeg4";
  spec.topo = mapped.topo;
  spec.net.routing = topology::RoutingAlgorithm::kXY;
  spec.net.target_window = 1 << 12;
  compiler::XpipesCompiler xpipes;

  // 4a. Synthesis view exists and is non-trivial.
  const auto files = xpipes.emit_systemc(spec);
  EXPECT_GE(files.size(), 4u);
  const auto report = xpipes.estimate(spec, 800.0);
  EXPECT_GT(report.total_area_mm2, 0.5);

  // 4b. Simulation view carries the application's weighted traffic.
  auto net = xpipes.build_simulation(spec);
  traffic::TrafficConfig tcfg;
  tcfg.pattern = traffic::Pattern::kWeighted;
  tcfg.weights = mapped.weights;
  tcfg.injection_rate = 0.05;
  tcfg.seed = 2;
  traffic::TrafficDriver driver(*net, tcfg);
  driver.run(5000);
  net->run_until_quiescent(100000);
  const auto stats = traffic::collect_run(*net, 5000);
  EXPECT_GT(stats.transactions, 100u);
  EXPECT_EQ(stats.transactions, driver.injected());
  EXPECT_GT(stats.latency.count, 0u);
}

TEST(Integration, SoakMeshWithErrorsNothingLost) {
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  cfg.bit_error_rate = 5e-4;
  cfg.crc = CrcKind::kCrc16;  // CRC8 escapes (~2^-8) would corrupt data
  cfg.seed = 77;
  noc::Network net(
      topology::make_mesh(3, 3, topology::NiPlan::uniform(9, 1, 1),
                          /*link_stages=*/1),
      cfg);
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.04;
  tcfg.max_burst = 4;
  tcfg.seed = 78;
  traffic::TrafficDriver driver(net, tcfg);
  driver.run(8000);
  net.run_until_quiescent(400000);
  std::size_t completed = 0;
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    completed += net.master(i).completed().size();
    EXPECT_TRUE(net.master(i).quiescent()) << "master " << i;
  }
  EXPECT_EQ(completed, driver.injected());
  EXPECT_GT(net.total_retransmissions(), 0u);
  // Data integrity: follow-up targeted read-back.
  net.slave(4).poke(0x20, 0x89ABCDEFull);  // fits the 32-bit beat width
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net.target_base(4) + 0x20;
  txn.burst_len = 1;
  net.master(0).push_transaction(txn);
  net.run_until_quiescent(100000);
  EXPECT_EQ(net.master(0).completed().back().data.at(0), 0x89ABCDEFull);
}

TEST(Integration, MemoryConsistencyUnderConcurrentWriters) {
  // Several masters write disjoint slots of one shared target, then read
  // everything back: a hotspot consistency check.
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
  const std::size_t shared = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (int k = 0; k < 8; ++k) {
      ocp::Transaction wr;
      wr.cmd = ocp::Cmd::kWriteNp;
      wr.addr = net.target_base(shared) + 8 * (8 * i + k);
      wr.burst_len = 1;
      wr.data = {0xF00 + 8 * i + static_cast<std::uint64_t>(k)};
      net.master(i).push_transaction(wr);
    }
  }
  net.run_until_quiescent(100000);
  for (std::size_t i = 0; i < 4; ++i) {
    for (int k = 0; k < 8; ++k) {
      EXPECT_EQ(net.slave(shared).peek(8 * (8 * i + k)),
                0xF00 + 8 * i + static_cast<std::uint64_t>(k));
    }
  }
}

TEST(Integration, EmittedViewsAgreeOnInventory) {
  // The synthesis report and the SystemC top must describe the same
  // network: every estimated instance appears in the generated top level.
  compiler::NocSpec spec;
  spec.name = "agree";
  spec.topo = topology::make_paper_case_study();
  spec.net.routing = topology::RoutingAlgorithm::kXY;
  spec.net.target_window = 1 << 12;
  compiler::XpipesCompiler xpipes;
  const auto report = xpipes.estimate(spec, 800.0);
  const auto files = xpipes.emit_systemc(spec);
  const auto& top = files.at("agree_top.h");
  for (const auto& inst : report.instances) {
    EXPECT_NE(top.find(inst.name), std::string::npos) << inst.name;
  }
}

TEST(Integration, WidthSweepFullNetwork) {
  for (const std::size_t width : {32u, 64u, 128u}) {
    noc::NetworkConfig cfg;
    cfg.flit_width = width;
    cfg.routing = topology::RoutingAlgorithm::kXY;
    cfg.target_window = 1 << 12;
    noc::Network net(
        topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
    net.slave(1).poke(0, width);
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kRead;
    txn.addr = net.target_base(1);
    txn.burst_len = 1;
    net.master(0).push_transaction(txn);
    net.run_until_quiescent(10000);
    ASSERT_EQ(net.master(0).completed().size(), 1u) << "width " << width;
    EXPECT_EQ(net.master(0).completed()[0].data.at(0), width);
  }
}

TEST(Integration, WiderFlitsFewerLinkBeats) {
  auto flits_for_width = [](std::size_t width) {
    noc::NetworkConfig cfg;
    cfg.flit_width = width;
    cfg.routing = topology::RoutingAlgorithm::kXY;
    cfg.target_window = 1 << 12;
    noc::Network net(
        topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
    ocp::Transaction wr;
    wr.cmd = ocp::Cmd::kWrite;
    wr.addr = net.target_base(3);
    wr.burst_len = 8;
    wr.data.assign(8, 0xAA);
    net.master(0).push_transaction(wr);
    net.run_until_quiescent(10000);
    return net.total_link_flits();
  };
  // Above 64 bits the header and each 32-bit beat already fit in a single
  // flit, so the curve flattens — exactly the diminishing return the
  // paper's flit-width sweep shows.
  EXPECT_GT(flits_for_width(16), flits_for_width(32));
  EXPECT_GT(flits_for_width(32), flits_for_width(64));
  EXPECT_EQ(flits_for_width(64), flits_for_width(128));
}

}  // namespace
}  // namespace xpl
