// Whole-network assembly: end-to-end transactions across real switches.
#include "src/noc/network.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/traffic.hpp"

namespace xpl::noc {
namespace {

NetworkConfig small_config() {
  NetworkConfig cfg;
  cfg.flit_width = 32;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  return cfg;
}

TEST(Network, BuildsMeshInventory) {
  Network net(topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)),
              small_config());
  EXPECT_EQ(net.num_switches(), 4u);
  EXPECT_EQ(net.num_initiators(), 4u);
  EXPECT_EQ(net.num_targets(), 4u);
  // 8 grid links + 2 per NI.
  EXPECT_EQ(net.links().size(), 8u + 16u);
  EXPECT_TRUE(net.deadlock_report().deadlock_free);
  EXPECT_TRUE(net.quiescent());
}

TEST(Network, DerivedFormatIsConsistent) {
  Network net(topology::make_mesh(3, 4, topology::NiPlan::uniform(12, 1, 1)),
              small_config());
  const auto& f = net.format();
  EXPECT_LE(f.header.route_bits(), f.flit_width);
  EXPECT_EQ(f.header.max_hops, net.routes().max_hops());
  // 24 NIs need 5 node bits.
  EXPECT_EQ(f.header.node_bits, 5u);
}

TEST(Network, SingleReadAcrossMesh) {
  Network net(topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)),
              small_config());
  // Farthest pair: initiator 0 (switch 0) -> target 3 (switch 3).
  net.slave(3).poke(0x10, 0xABCD);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net.target_base(3) + 0x10;
  txn.burst_len = 1;
  net.master(0).push_transaction(txn);
  net.run_until_quiescent(5000);
  ASSERT_EQ(net.master(0).completed().size(), 1u);
  const auto& result = net.master(0).completed()[0];
  EXPECT_EQ(result.resp, ocp::Resp::kDva);
  ASSERT_EQ(result.data.size(), 1u);
  EXPECT_EQ(result.data[0], 0xABCDu);
}

TEST(Network, WriteThenReadEveryPair) {
  Network net(topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)),
              small_config());
  // Every initiator writes a unique value to every target, then reads it
  // back — full crossbar of NI pairs.
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    for (std::size_t t = 0; t < net.num_targets(); ++t) {
      ocp::Transaction wr;
      wr.cmd = ocp::Cmd::kWrite;
      wr.addr = net.target_base(t) + 8 * i;
      wr.burst_len = 1;
      wr.data = {0xA000 + 0x10 * i + t};
      net.master(i).push_transaction(wr);
    }
  }
  net.run_until_quiescent(20000);
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    for (std::size_t t = 0; t < net.num_targets(); ++t) {
      ocp::Transaction rd;
      rd.cmd = ocp::Cmd::kRead;
      rd.addr = net.target_base(t) + 8 * i;
      rd.burst_len = 1;
      net.master(i).push_transaction(rd);
    }
  }
  net.run_until_quiescent(40000);
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    const auto& completed = net.master(i).completed();
    ASSERT_EQ(completed.size(), 2 * net.num_targets());
    for (std::size_t t = 0; t < net.num_targets(); ++t) {
      const auto& result = completed[net.num_targets() + t];
      ASSERT_EQ(result.data.size(), 1u) << "pair " << i << "," << t;
      EXPECT_EQ(result.data[0], 0xA000 + 0x10 * i + t);
    }
  }
}

TEST(Network, BurstAcrossNetwork) {
  Network net(topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)),
              small_config());
  ocp::Transaction wr;
  wr.cmd = ocp::Cmd::kWrite;
  wr.addr = net.target_base(2);
  wr.burst_len = 8;
  for (std::uint64_t b = 0; b < 8; ++b) wr.data.push_back(b * 3);
  net.master(1).push_transaction(wr);
  ocp::Transaction rd;
  rd.cmd = ocp::Cmd::kRead;
  rd.addr = net.target_base(2);
  rd.burst_len = 8;
  net.master(1).push_transaction(rd);
  net.run_until_quiescent(20000);
  ASSERT_EQ(net.master(1).completed().size(), 2u);
  const auto& result = net.master(1).completed()[1];
  ASSERT_EQ(result.data.size(), 8u);
  for (std::uint64_t b = 0; b < 8; ++b) EXPECT_EQ(result.data[b], b * 3);
}

TEST(Network, DeadlockingRoutesRejected) {
  // Unidirectional ring: every route wraps, the dependency graph is the
  // ring itself — guaranteed cyclic.
  auto uniring = [] {
    topology::Topology t;
    for (int i = 0; i < 4; ++i) t.add_switch();
    for (std::uint32_t i = 0; i < 4; ++i) t.add_link(i, (i + 1) % 4);
    for (std::uint32_t i = 0; i < 4; ++i) {
      t.attach_initiator(i);
      t.attach_target(i);
    }
    return t;
  };
  NetworkConfig cfg = small_config();
  cfg.routing = topology::RoutingAlgorithm::kShortestPath;
  EXPECT_THROW(Network(uniring(), cfg), Error);
  cfg.require_deadlock_free = false;
  Network net(uniring(), cfg);
  EXPECT_FALSE(net.deadlock_report().deadlock_free);
}

TEST(Network, UpDownOnRingWorksEndToEnd) {
  NetworkConfig cfg = small_config();
  cfg.routing = topology::RoutingAlgorithm::kUpDown;
  Network net(topology::make_ring(4, topology::NiPlan::uniform(4, 1, 1)),
              cfg);
  net.slave(2).poke(0, 0x55AA);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net.target_base(2);
  txn.burst_len = 1;
  net.master(0).push_transaction(txn);
  net.run_until_quiescent(5000);
  ASSERT_EQ(net.master(0).completed().size(), 1u);
  EXPECT_EQ(net.master(0).completed()[0].data.at(0), 0x55AAu);
}

TEST(Network, PipelinedLinksStillDeliver) {
  NetworkConfig cfg = small_config();
  Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1),
                          /*link_stages=*/3),
      cfg);
  net.slave(3).poke(0, 0x77);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net.target_base(3);
  txn.burst_len = 1;
  net.master(0).push_transaction(txn);
  net.run_until_quiescent(5000);
  ASSERT_EQ(net.master(0).completed().size(), 1u);
  EXPECT_EQ(net.master(0).completed()[0].data.at(0), 0x77u);
}

TEST(Network, ErrorInjectionRecoversEndToEnd) {
  NetworkConfig cfg = small_config();
  cfg.bit_error_rate = 2e-3;
  cfg.crc = CrcKind::kCrc16;  // escape probability ~2^-16: negligible here
  cfg.seed = 9;
  Network net(topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1),
                                  /*link_stages=*/1),
              cfg);
  for (int k = 0; k < 20; ++k) {
    ocp::Transaction wr;
    wr.cmd = ocp::Cmd::kWriteNp;
    // Offset target by one so every packet crosses at least one grid link
    // (only switch-to-switch links inject errors).
    wr.addr = net.target_base((k + 1) % 4) + 8 * k;
    wr.burst_len = 4;
    wr.data = {1ull * k, 2ull * k, 3ull * k, 4ull * k};
    net.master(k % 4).push_transaction(wr);
  }
  net.run_until_quiescent(200000);
  std::size_t completed = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    for (const auto& result : net.master(i).completed()) {
      EXPECT_EQ(result.resp, ocp::Resp::kDva);
      ++completed;
    }
  }
  EXPECT_EQ(completed, 20u);
  // With errors injected, retransmissions must have happened... unless we
  // got lucky; the rate is chosen to make that astronomically unlikely.
  EXPECT_GT(net.total_retransmissions(), 0u);
}

TEST(Network, SevenStageSwitchesSlowerThanTwoStage) {
  auto latency_with_pipeline = [](std::size_t extra) {
    NetworkConfig cfg = small_config();
    cfg.extra_switch_pipeline = extra;
    Network net(
        topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
    net.slave(3).poke(0, 1);
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kRead;
    txn.addr = net.target_base(3);
    txn.burst_len = 1;
    net.master(0).push_transaction(txn);
    net.run_until_quiescent(5000);
    const auto& result = net.master(0).completed().at(0);
    return result.complete_cycle - result.issue_cycle;
  };
  const auto lite = latency_with_pipeline(0);   // 2-stage switch
  const auto old = latency_with_pipeline(5);    // 7-stage switch
  // Request+response each traverse 3 switches: 6 extra hops x 5 stages.
  EXPECT_EQ(old, lite + 30);
}

TEST(Network, QuiescentDetectsInFlightWork) {
  Network net(topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)),
              small_config());
  EXPECT_TRUE(net.quiescent());
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net.target_base(0);
  txn.burst_len = 1;
  net.master(3).push_transaction(txn);
  EXPECT_FALSE(net.quiescent());
  net.run_until_quiescent(5000);
  EXPECT_TRUE(net.quiescent());
}

/// Saturates `net` and requires a clean drain with every injected
/// transaction completed — the end-to-end "no deadlock, no loss" check.
/// On a wedge, the per-switch lane/lock dump names the blocking cycle.
void saturate_and_drain(noc::Network& net, std::size_t cycles = 1200) {
  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.30;
  tcfg.seed = 3;
  traffic::TrafficDriver driver(net, tcfg);
  driver.run(cycles);
  net.run_until_quiescent(400000);
  std::string wedge;
  if (!net.quiescent()) {
    wedge = "network failed to drain:";
    for (std::size_t s = 0; s < net.num_switches(); ++s) {
      wedge += "\n  " + net.switch_at(s).debug_state();
    }
  }
  ASSERT_TRUE(net.quiescent()) << wedge;
  std::uint64_t completed = 0;
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    completed += net.master(i).completed().size();
  }
  EXPECT_GT(completed, 0u);
  EXPECT_EQ(completed, driver.injected());
}

TEST(Network, SpidergonSaturatedEndToEnd) {
  // Spidergon under up*/down*, single lane and two lanes: the network
  // must carry saturated traffic to completion either way.
  for (const std::size_t vcs : {1u, 2u}) {
    NetworkConfig cfg = small_config();
    cfg.routing = topology::RoutingAlgorithm::kUpDown;
    cfg.vcs = vcs;
    Network net(
        topology::make_spidergon(8, topology::NiPlan::uniform(8, 1, 1)),
        cfg);
    EXPECT_TRUE(net.deadlock_report().deadlock_free);
    saturate_and_drain(net);
  }
}

TEST(Network, SpidergonMinimalWithLanesSaturatedEndToEnd) {
  // Minimal (across-first) routing needs the dateline lanes: vcs = 2
  // passes the VC-aware checker and runs saturated to completion.
  NetworkConfig cfg = small_config();
  cfg.routing = topology::RoutingAlgorithm::kShortestPath;
  cfg.vcs = 2;
  Network net(
      topology::make_spidergon(8, topology::NiPlan::uniform(8, 1, 1)),
      cfg);
  EXPECT_TRUE(net.deadlock_report().deadlock_free);
  saturate_and_drain(net);
}

TEST(Network, BinaryTreeSaturatedEndToEnd) {
  // Complete binary tree, minimal routing (tree paths are unique, so
  // minimal == deadlock-free), single lane and two lanes.
  for (const std::size_t vcs : {1u, 2u}) {
    NetworkConfig cfg = small_config();
    cfg.routing = topology::RoutingAlgorithm::kShortestPath;
    cfg.vcs = vcs;
    Network net(
        topology::make_binary_tree(3, topology::NiPlan::uniform(7, 1, 1)),
        cfg);
    EXPECT_TRUE(net.deadlock_report().deadlock_free);
    saturate_and_drain(net);
  }
}

TEST(Network, PaperCaseStudyCarriesTraffic) {
  Network net(topology::make_paper_case_study(), small_config());
  EXPECT_EQ(net.num_initiators(), 8u);
  EXPECT_EQ(net.num_targets(), 11u);
  for (std::size_t i = 0; i < 8; ++i) {
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kRead;
    txn.addr = net.target_base(i % 11);
    txn.burst_len = 2;
    net.master(i).push_transaction(txn);
  }
  net.run_until_quiescent(50000);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(net.master(i).completed().size(), 1u) << "master " << i;
  }
}

}  // namespace
}  // namespace xpl::noc
