// OCP protocol monitor: clean traffic passes, violations are caught.
#include "src/ocp/monitor.hpp"

#include <gtest/gtest.h>

#include "src/ocp/agents.hpp"

namespace xpl::ocp {
namespace {

struct Harness {
  sim::Kernel kernel;
  OcpWires wires;
  MasterCore master;
  SlaveCore slave;
  Monitor monitor;

  Harness()
      : wires(OcpWires::make(kernel)),
        master("master", wires, master_config()),
        slave("slave", wires, {}),
        monitor("monitor", wires) {
    kernel.add_module(master);
    kernel.add_module(slave);
    kernel.add_module(monitor);
  }

  static MasterCore::Config master_config() {
    MasterCore::Config c;
    c.req_credits = SlaveCore::Config{}.req_fifo_depth;
    return c;
  }

  void run() {
    kernel.run_until([&] { return master.quiescent(); }, 5000);
    kernel.run(20);
  }
};

TEST(Monitor, CleanOnWellBehavedAgents) {
  Harness h;
  for (int k = 0; k < 10; ++k) {
    Transaction txn;
    txn.cmd = (k % 3 == 0) ? Cmd::kRead
                           : (k % 3 == 1 ? Cmd::kWrite : Cmd::kWriteNp);
    txn.burst_len = 1 + static_cast<std::uint32_t>(k % 4);
    txn.addr = 0x100 * k;
    txn.thread_id = static_cast<std::uint32_t>(k % 2);
    if (txn.cmd != Cmd::kRead) {
      txn.data.assign(txn.burst_len, 0xD0 + k);
    }
    h.master.push_transaction(txn);
  }
  h.run();
  EXPECT_TRUE(h.monitor.clean())
      << (h.monitor.violations().empty() ? ""
                                         : h.monitor.violations().front());
  EXPECT_EQ(h.monitor.transactions(), 10u);
  EXPECT_GT(h.monitor.req_beats(), 0u);
  EXPECT_GT(h.monitor.resp_beats(), 0u);
}

// Drives raw beats straight onto the wires to provoke violations.
class RawDriver : public sim::Module {
 public:
  RawDriver(const OcpWires& wires, std::vector<ReqBeat> beats)
      : sim::Module("raw"), wire_(wires.req.data), beats_(std::move(beats)) {}

  void tick(sim::Kernel&) override {
    if (next_ < beats_.size()) {
      wire_->write(sim::Beat<ReqBeat>{true, beats_[next_++]});
    } else {
      wire_->write(sim::Beat<ReqBeat>{});
    }
  }

 private:
  sim::Signal<sim::Beat<ReqBeat>>* wire_;
  std::vector<ReqBeat> beats_;
  std::size_t next_ = 0;
};

ReqBeat beat(Cmd cmd, std::uint32_t burst, std::uint32_t index,
             std::uint32_t thread = 0) {
  ReqBeat b;
  b.valid = true;
  b.cmd = cmd;
  b.burst_len = burst;
  b.beat_index = index;
  b.thread_id = thread;
  return b;
}

struct RawHarness {
  sim::Kernel kernel;
  OcpWires wires;

  RawHarness() : wires(OcpWires::make(kernel)) {}

  std::vector<std::string> run(std::vector<ReqBeat> beats) {
    RawDriver driver(wires, std::move(beats));
    Monitor monitor("monitor", wires);
    kernel.add_module(driver);
    kernel.add_module(monitor);
    kernel.run(20);
    return monitor.violations();
  }
};

TEST(Monitor, CatchesBadFirstBeatIndex) {
  RawHarness h;
  const auto violations = h.run({beat(Cmd::kWrite, 2, 1)});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("beat_index"), std::string::npos);
}

TEST(Monitor, CatchesBurstLenChange) {
  RawHarness h;
  auto b0 = beat(Cmd::kWrite, 3, 0);
  auto b1 = beat(Cmd::kWrite, 4, 1);  // burst_len changed
  const auto violations = h.run({b0, b1});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("burst_len changed"), std::string::npos);
}

TEST(Monitor, CatchesThreadInterleaving) {
  RawHarness h;
  auto b0 = beat(Cmd::kWrite, 2, 0, /*thread=*/0);
  auto b1 = beat(Cmd::kWrite, 2, 1, /*thread=*/1);  // wrong thread
  const auto violations = h.run({b0, b1});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("thread changed"), std::string::npos);
}

TEST(Monitor, CatchesIdleCmdBeat) {
  RawHarness h;
  const auto violations = h.run({beat(Cmd::kIdle, 1, 0)});
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("IDLE"), std::string::npos);
}

TEST(Monitor, CatchesOrphanResponse) {
  sim::Kernel kernel;
  const auto wires = OcpWires::make(kernel);
  Monitor monitor("monitor", wires);
  kernel.add_module(monitor);
  RespBeat resp;
  resp.valid = true;
  resp.resp = Resp::kDva;
  resp.last = true;
  wires.resp.data->write(sim::Beat<RespBeat>{true, resp});
  kernel.run(2);
  ASSERT_FALSE(monitor.violations().empty());
  EXPECT_NE(monitor.violations()[0].find("nothing outstanding"),
            std::string::npos);
}

}  // namespace
}  // namespace xpl::ocp
