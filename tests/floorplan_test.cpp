// Floorplanner: placement quality, link-stage derivation, integration.
#include "src/appgraph/floorplan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/appgraph/explore.hpp"
#include "src/noc/network.hpp"
#include "src/topology/generators.hpp"

namespace xpl::appgraph {
namespace {

TEST(Floorplan, MeshPlacedByCoordinates) {
  const auto topo =
      topology::make_mesh(3, 4, topology::NiPlan::uniform(12, 1, 0));
  Rng rng(1);
  const Floorplan plan = make_floorplan(topo, FloorplanOptions{}, rng);
  EXPECT_EQ(plan.grid_width, 3u);
  EXPECT_EQ(plan.grid_height, 4u);
  // Every grid link is one tile long.
  for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
    EXPECT_DOUBLE_EQ(plan.link_length_mm(topo, l), plan.tile_mm);
  }
  EXPECT_DOUBLE_EQ(plan.total_wire_mm(topo),
                   plan.tile_mm * double(topo.num_links()));
}

TEST(Floorplan, OneSwitchPerTile) {
  const auto topo = topology::make_ring(7, topology::NiPlan::uniform(7, 1, 0));
  Rng rng(2);
  const Floorplan plan = make_floorplan(topo, FloorplanOptions{}, rng);
  std::set<std::pair<std::size_t, std::size_t>> tiles;
  for (const auto& pos : plan.position) {
    EXPECT_LT(pos.first, plan.grid_width);
    EXPECT_LT(pos.second, plan.grid_height);
    EXPECT_TRUE(tiles.insert(pos).second) << "tile reused";
  }
}

TEST(Floorplan, AnnealBeatsPathologicalInitialForRing) {
  // For an 8-ring on a 3x3 grid a good placement keeps neighbours
  // adjacent: total wire close to the number of directed links.
  const auto topo = topology::make_ring(8, topology::NiPlan::uniform(8, 1, 0));
  Rng rng(3);
  FloorplanOptions options;
  options.anneal_iterations = 30000;
  const Floorplan plan = make_floorplan(topo, options, rng);
  // 16 directed links, ideal total 16 tiles; allow slack but far below the
  // random-placement expectation (~2 tiles average per link).
  EXPECT_LE(plan.total_wire_mm(topo), 24.0);
}

TEST(Floorplan, ApplyLinkStagesFollowsDistance) {
  auto topo = topology::make_star(4, topology::NiPlan::uniform(5, 1, 0));
  Rng rng(4);
  FloorplanOptions options;
  options.tile_mm = 3.0;       // spread things out
  options.mm_per_cycle = 2.0;  // 3 mm hop -> 2 cycles -> 1 relay stage
  const Floorplan plan = make_floorplan(topo, options, rng);
  apply_link_stages(topo, plan, options.mm_per_cycle);
  for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
    const double mm = plan.link_length_mm(topo, l);
    const auto expected = static_cast<std::size_t>(
        std::ceil(mm / options.mm_per_cycle));
    EXPECT_EQ(topo.link(l).stages, expected > 0 ? expected - 1 : 0);
  }
}

TEST(Floorplan, ShortWiresNeedNoStages) {
  auto topo = topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 0));
  Rng rng(5);
  FloorplanOptions options;
  options.tile_mm = 1.0;
  options.mm_per_cycle = 2.0;  // every 1 mm hop fits one cycle
  const Floorplan plan = make_floorplan(topo, options, rng);
  apply_link_stages(topo, plan, options.mm_per_cycle);
  for (std::uint32_t l = 0; l < topo.num_links(); ++l) {
    EXPECT_EQ(topo.link(l).stages, 0u);
  }
}

TEST(Floorplan, PipelinedNetworkStillDelivers) {
  // Floorplan with a coarse clock reach -> multi-stage links -> the
  // network must still carry transactions (go-back-N covers the depth).
  auto topo = topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1));
  Rng rng(6);
  FloorplanOptions options;
  options.tile_mm = 5.0;
  options.mm_per_cycle = 2.0;  // 5 mm -> 3 cycles -> 2 relay stages
  const Floorplan plan = make_floorplan(topo, options, rng);
  apply_link_stages(topo, plan, options.mm_per_cycle);

  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  noc::Network net(topo, cfg);
  net.slave(3).poke(0, 0x77);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net.target_base(3);
  txn.burst_len = 1;
  net.master(0).push_transaction(txn);
  net.run_until_quiescent(10000);
  ASSERT_EQ(net.master(0).completed().size(), 1u);
  EXPECT_EQ(net.master(0).completed()[0].data.at(0), 0x77u);
}

TEST(Floorplan, LongerWiresLongerLatency) {
  auto latency_for_tile = [](double tile_mm) {
    auto topo =
        topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1));
    Rng rng(7);
    FloorplanOptions options;
    options.tile_mm = tile_mm;
    options.mm_per_cycle = 2.0;
    const Floorplan plan = make_floorplan(topo, options, rng);
    apply_link_stages(topo, plan, options.mm_per_cycle);
    noc::NetworkConfig cfg;
    cfg.routing = topology::RoutingAlgorithm::kXY;
    cfg.target_window = 1 << 12;
    noc::Network net(topo, cfg);
    ocp::Transaction txn;
    txn.cmd = ocp::Cmd::kRead;
    txn.addr = net.target_base(3);
    txn.burst_len = 1;
    net.master(0).push_transaction(txn);
    net.run_until_quiescent(10000);
    const auto& r = net.master(0).completed().at(0);
    return r.complete_cycle - r.issue_cycle;
  };
  EXPECT_GT(latency_for_tile(8.0), latency_for_tile(1.0));
}

TEST(Floorplan, ExploreIntegration) {
  const auto graph = mwd();
  ExploreOptions options;
  options.anneal_iterations = 2000;
  options.sim_cycles = 2000;
  options.net.target_window = 1 << 12;
  options.floorplan_aware = true;
  options.floorplan.tile_mm = 2.5;
  options.floorplan.mm_per_cycle = 2.0;
  std::vector<Candidate> candidates;
  candidates.push_back(
      {"mesh_4x3",
       topology::make_mesh(4, 3, topology::NiPlan::uniform(12, 0, 0))});
  const auto results = explore(graph, candidates, options);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].wire_mm, 0.0);
  EXPECT_GE(results[0].max_link_stages, 1u);
  EXPECT_GT(results[0].avg_latency_cycles, 0.0);
}

}  // namespace
}  // namespace xpl::appgraph
