// Partitioned parallel simulation (PR 8): bit-exactness at any
// partition and thread count.
//
// The partitioned kernel splits one Network across conservative
// partitions synchronized at link-latency boundaries (DESIGN.md §10).
// The contract mirrors the gated scheduler's (PR 7): partitioning is a
// pure throughput optimization — per-epoch signal digests, drain
// behaviour, statistics, campaign exports and recorded traces must be
// byte-identical to the unpartitioned kernel for every (partitions,
// threads) setting. These tests prove it with the differential harness
// plus direct checks of the partitioner, the lookahead derivation, the
// release-gated master, and the uniform link-stats view.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/link/flow.hpp"
#include "src/noc/network.hpp"
#include "src/sweep/runner.hpp"
#include "src/sweep/spec.hpp"
#include "src/topology/generators.hpp"
#include "src/topology/partition.hpp"
#include "src/traffic/stats.hpp"
#include "src/traffic/traffic.hpp"
#include "src/workload/trace.hpp"
#include "tests/support/differential.hpp"

namespace xpl {
namespace {

using testsupport::DiffResult;
using testsupport::DiffScenario;
using testsupport::run_lockstep_partitioned;

/// Runs `scenario` unpartitioned vs partitioned with the given split and
/// asserts lockstep digest/stats equality.
void expect_invariant(const DiffScenario& scenario, std::size_t partitions,
                      std::size_t threads) {
  noc::Network ref(scenario.build_topology(),
                   scenario.net_config(sim::Scheduler::kGated));
  noc::Network part(
      scenario.build_topology(),
      scenario.net_config(sim::Scheduler::kGated, partitions, threads));
  traffic::TrafficDriver ref_driver(ref, scenario.traffic_config());
  traffic::TrafficDriver part_driver(part, scenario.traffic_config());
  const DiffResult result = run_lockstep_partitioned(
      ref, part, ref_driver, part_driver, scenario.cycles,
      scenario.drain_cycles,
      scenario.to_string() + " partitions=" + std::to_string(partitions) +
          " threads=" + std::to_string(threads));
  EXPECT_TRUE(result.ok) << result.detail;
}

/// The corner scenarios: every flow-control/vcs/error/burstiness regime
/// the uncut link distinguishes, on all three partitionable topologies.
std::vector<DiffScenario> corner_scenarios() {
  std::vector<DiffScenario> scenarios;
  {
    DiffScenario s;  // plain mesh, ack_nack, memoryless
    s.topology = "mesh";
    s.width = 4;
    s.height = 4;
    s.cycles = 300;
    s.injection_rate = 0.08;
    scenarios.push_back(s);
  }
  {
    DiffScenario s;  // credit flow + multi-lane + bursty injection
    s.topology = "mesh";
    s.width = 4;
    s.height = 3;
    s.flow = link::FlowControl::kCredit;
    s.vcs = 2;
    s.burstiness = 0.5;
    s.cycles = 300;
    s.injection_rate = 0.1;
    s.net_seed = 3;
    s.traffic_seed = 5;
    scenarios.push_back(s);
  }
  {
    DiffScenario s;  // noisy links: retransmissions cross the cut
    s.topology = "mesh";
    s.width = 3;
    s.height = 3;
    s.bit_error_rate = 2e-3;
    s.cycles = 250;
    s.injection_rate = 0.06;
    s.net_seed = 11;
    scenarios.push_back(s);
  }
  {
    DiffScenario s;  // torus: wrap links cut, dateline VC routing
    s.topology = "torus";
    s.width = 4;
    s.height = 4;
    s.vcs = 2;
    s.routing = topology::RoutingAlgorithm::kShortestPath;
    s.cycles = 250;
    s.injection_rate = 0.05;
    s.net_seed = 17;
    scenarios.push_back(s);
  }
  {
    DiffScenario s;  // concentrated mesh: multiple NIs per switch
    s.topology = "cmesh";
    s.width = 4;
    s.height = 2;
    s.concentration = 2;
    s.cycles = 250;
    s.injection_rate = 0.05;
    s.net_seed = 23;
    scenarios.push_back(s);
  }
  return scenarios;
}

TEST(PartitionInvariance, CornersAcrossPartitionAndThreadCounts) {
  // The full matrix every scenario must survive. threads > partitions is
  // clamped by the kernel, so {1,2,4} threads on 2 partitions also
  // covers the clamp path.
  const std::size_t partition_counts[] = {2, 4};
  const std::size_t thread_counts[] = {1, 2, 4};
  for (const DiffScenario& scenario : corner_scenarios()) {
    for (const std::size_t p : partition_counts) {
      for (const std::size_t t : thread_counts) {
        expect_invariant(scenario, p, t);
      }
    }
  }
}

TEST(PartitionInvariance, FullSchedulerPartitionsToo) {
  // Partitioning composes with the full (ungated) scheduler: partitioned
  // signals commit via the partition dirty lists either way.
  DiffScenario s;
  s.topology = "mesh";
  s.width = 4;
  s.height = 4;
  s.cycles = 250;
  s.injection_rate = 0.08;
  noc::Network ref(s.build_topology(), s.net_config(sim::Scheduler::kFull));
  noc::Network part(s.build_topology(),
                    s.net_config(sim::Scheduler::kFull, 4, 2));
  traffic::TrafficDriver ref_driver(ref, s.traffic_config());
  traffic::TrafficDriver part_driver(part, s.traffic_config());
  const DiffResult result =
      run_lockstep_partitioned(ref, part, ref_driver, part_driver, s.cycles,
                               s.drain_cycles, s.to_string() + " [full]");
  EXPECT_TRUE(result.ok) << result.detail;
}

TEST(PartitionInvariance, EpochMachineryActuallyEngaged) {
  // Guards against the matrix above passing vacuously: the partitioned
  // twin must really cut links, run multi-cycle epochs, and move flits
  // through mailboxes.
  DiffScenario s;
  s.topology = "cmesh";  // default cmesh links carry 1 relay stage
  s.width = 4;
  s.height = 2;
  s.concentration = 2;
  noc::Network net(s.build_topology(),
                   s.net_config(sim::Scheduler::kGated, 4, 2));
  ASSERT_TRUE(net.kernel().partitioned());
  EXPECT_EQ(net.kernel().partition_count(), 4u);
  EXPECT_EQ(net.kernel().thread_count(), 2u);
  // 1 relay stage on every cut link -> the auto lookahead is 2 cycles.
  EXPECT_EQ(net.kernel().lookahead(), 2u);
  EXPECT_FALSE(net.cut_links().empty());

  traffic::TrafficConfig tcfg;
  tcfg.injection_rate = 0.1;
  traffic::TrafficDriver driver(net, tcfg);
  driver.run(200);
  net.run_until_quiescent(20000);
  EXPECT_GT(net.kernel().epochs(), 0u);
  EXPECT_GT(net.kernel().cut_flits(), 0u);
}

TEST(PartitionInvariance, LookaheadRespectsConfigCap) {
  DiffScenario s;
  s.topology = "cmesh";
  s.width = 4;
  s.height = 2;
  s.concentration = 2;
  noc::NetworkConfig cfg = s.net_config(sim::Scheduler::kGated, 2, 1);
  cfg.lookahead = 1;  // force single-cycle epochs despite staged cuts
  noc::Network net(s.build_topology(), cfg);
  EXPECT_EQ(net.kernel().lookahead(), 1u);

  // Zero-stage cuts bound the window at 1 cycle regardless of config.
  noc::NetworkConfig cfg2 = s.net_config(sim::Scheduler::kGated, 2, 1);
  cfg2.lookahead = 8;
  noc::Network mesh_net(
      topology::make_mesh(4, 4, topology::NiPlan::uniform(16, 1, 1)), cfg2);
  EXPECT_EQ(mesh_net.kernel().lookahead(), 1u);
}

TEST(PartitionInvariance, LinkStatsViewIsPartitionInvariant) {
  // The uniform link view (pipelined + cut, creation order) keeps the
  // utilization denominator and the per-link load rows identical.
  DiffScenario s;
  s.topology = "mesh";
  s.width = 4;
  s.height = 4;
  s.cycles = 200;
  s.injection_rate = 0.08;
  noc::Network ref(s.build_topology(),
                   s.net_config(sim::Scheduler::kGated));
  noc::Network part(s.build_topology(),
                    s.net_config(sim::Scheduler::kGated, 4, 2));
  ASSERT_EQ(ref.num_links(), part.num_links());

  traffic::TrafficDriver ref_driver(ref, s.traffic_config());
  traffic::TrafficDriver part_driver(part, s.traffic_config());
  ref_driver.run(s.cycles);
  part_driver.run(s.cycles);
  ref.run_until_quiescent(20000);
  part.run_until_quiescent(20000);

  const auto ref_stats = ref.link_stats();
  const auto part_stats = part.link_stats();
  ASSERT_EQ(ref_stats.size(), part_stats.size());
  for (std::size_t i = 0; i < ref_stats.size(); ++i) {
    EXPECT_EQ(ref_stats[i].name, part_stats[i].name) << "link " << i;
    EXPECT_EQ(ref_stats[i].flits_carried, part_stats[i].flits_carried)
        << "link " << i << " (" << ref_stats[i].name << ")";
    EXPECT_EQ(ref_stats[i].flits_corrupted, part_stats[i].flits_corrupted)
        << "link " << i;
  }
  const auto ref_loads = traffic::collect_link_loads(ref, s.cycles);
  const auto part_loads = traffic::collect_link_loads(part, s.cycles);
  ASSERT_EQ(ref_loads.size(), part_loads.size());
  for (std::size_t i = 0; i < ref_loads.size(); ++i) {
    EXPECT_EQ(ref_loads[i].name, part_loads[i].name);
    EXPECT_EQ(ref_loads[i].flits, part_loads[i].flits);
  }
}

TEST(PartitionInvariance, RecordedTraceIsByteIdentical) {
  // A trace recorded during a partitioned run (pre-rolled injections
  // carry explicit release cycles) serializes to the same bytes as one
  // recorded unpartitioned.
  auto record = [](std::size_t partitions, std::size_t threads) {
    DiffScenario s;
    s.topology = "mesh";
    s.width = 3;
    s.height = 3;
    noc::Network net(
        s.build_topology(),
        s.net_config(sim::Scheduler::kGated, partitions, threads));
    traffic::TrafficConfig tcfg;
    tcfg.injection_rate = 0.08;
    tcfg.burstiness = 0.4;
    tcfg.seed = 99;
    workload::TraceRecorder recorder(net, "part");
    traffic::TrafficDriver driver(net, tcfg);
    driver.run(400);
    net.run_until_quiescent(20000);
    return workload::write_trace(recorder.trace());
  };
  const std::string base = record(1, 1);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(record(2, 2), base);
  EXPECT_EQ(record(4, 4), base);
}

TEST(PartitionInvariance, CampaignExportsAreByteIdentical) {
  // The sweep engine's `threads`/`partitions` scalars must never leak
  // into exports: CSV and JSON bytes are identical at every setting.
  const char* kSpec =
      "sweep part_scan\n"
      "seed 7\n"
      "cycles 300\n"
      "topology mesh cmesh\n"
      "width 3\n"
      "height 3\n"
      "concentration 2\n"
      "injection_rate 0.03 0.08\n";
  sweep::SweepSpec spec = sweep::parse_sweep(kSpec);
  const sweep::ResultTable base = sweep::SweepRunner(1).run(spec);
  const std::string base_csv = base.to_csv();
  const std::string base_json = base.to_json();
  for (const std::size_t p : {2u, 4u}) {
    for (const std::size_t t : {1u, 2u, 4u}) {
      spec.partitions = p;
      spec.threads = t;
      const sweep::ResultTable table = sweep::SweepRunner(1).run(spec);
      EXPECT_EQ(table.to_csv(), base_csv)
          << "partitions=" << p << " threads=" << t;
      EXPECT_EQ(table.to_json(), base_json)
          << "partitions=" << p << " threads=" << t;
    }
  }
}

TEST(Partitioner, StripesAreBalancedContiguousAndComplete) {
  const auto topo =
      topology::make_mesh(8, 4, topology::NiPlan::uniform(32, 1, 1));
  const auto assignment = topology::partition_switches(topo, 4);
  ASSERT_EQ(assignment.size(), 32u);
  // Stripes along x (the longer axis): partition = f(x) only, monotone,
  // and all four partitions non-empty.
  std::set<std::uint32_t> seen;
  for (std::uint32_t s = 0; s < 32; ++s) {
    const auto& node = topo.switch_node(s);
    EXPECT_EQ(assignment[s], static_cast<std::uint32_t>(node.x * 4 / 8));
    seen.insert(assignment[s]);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Partitioner, BfsFallbackCoversCoordinatelessTopologies) {
  const auto topo =
      topology::make_star(6, topology::NiPlan::uniform(7, 1, 1));
  const auto assignment = topology::partition_switches(topo, 3);
  ASSERT_EQ(assignment.size(), 7u);
  std::set<std::uint32_t> seen(assignment.begin(), assignment.end());
  EXPECT_EQ(seen.size(), 3u);  // every partition non-empty
  for (const auto p : assignment) EXPECT_LT(p, 3u);
  // Deterministic: same input, same assignment.
  EXPECT_EQ(topology::partition_switches(topo, 3), assignment);
}

TEST(ReleaseGate, MasterHoldsPreRolledTransactionsUntilRelease) {
  sim::Kernel kernel;
  const auto wires = ocp::OcpWires::make(kernel);
  ocp::MasterCore master("m", wires, {});
  ocp::SlaveCore slave("s", wires, {});
  kernel.add_module(master);
  kernel.add_module(slave);

  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = 0;
  master.push_transaction_at(txn, 3);
  kernel.run(3);  // cycles 0,1,2: released at 3, must not issue yet
  EXPECT_EQ(master.issued_count(), 0u);
  kernel.run(20);
  EXPECT_EQ(master.issued_count(), 1u);
  ASSERT_EQ(master.completed().size(), 1u);
  // Issued exactly at its release cycle, as a per-cycle push would.
  EXPECT_EQ(master.completed()[0].issue_cycle, 3u);
}

}  // namespace
}  // namespace xpl
