// NoC specification parsing, writing, and round-tripping.
#include "src/compiler/spec_io.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/topology/generators.hpp"

namespace xpl::compiler {
namespace {

const char kSample[] = R"(# a small custom NoC
noc sample
flit_width 64
beat_width 32
max_burst 8
threads 2
target_window 8192
routing updown
arbiter fixed
crc crc16

switch hub
switch leaf_a coord 0 1
switch leaf_b coord 1 1
link hub leaf_a stages 2
link leaf_a hub stages 2
link hub leaf_b
link leaf_b hub
initiator cpu0 at leaf_a
initiator cpu1 at leaf_b
target mem0 at hub
)";

TEST(SpecIo, ParsesEveryDirective) {
  const NocSpec spec = parse_spec(kSample);
  EXPECT_EQ(spec.name, "sample");
  EXPECT_EQ(spec.net.flit_width, 64u);
  EXPECT_EQ(spec.net.beat_width, 32u);
  EXPECT_EQ(spec.net.max_burst, 8u);
  EXPECT_EQ(spec.net.num_threads, 2u);
  EXPECT_EQ(spec.net.target_window, 8192u);
  EXPECT_EQ(spec.net.routing, topology::RoutingAlgorithm::kUpDown);
  EXPECT_EQ(spec.net.arbiter, switchlib::ArbiterKind::kFixedPriority);
  EXPECT_EQ(spec.net.crc, CrcKind::kCrc16);

  EXPECT_EQ(spec.topo.num_switches(), 3u);
  EXPECT_EQ(spec.topo.num_links(), 4u);
  EXPECT_EQ(spec.topo.num_nis(), 3u);
  EXPECT_EQ(spec.topo.switch_node(0).name, "hub");
  EXPECT_EQ(spec.topo.switch_node(1).x, 0);
  EXPECT_EQ(spec.topo.switch_node(1).y, 1);
  EXPECT_EQ(spec.topo.link(0).stages, 2u);
  EXPECT_EQ(spec.topo.link(2).stages, 0u);
  EXPECT_EQ(spec.topo.ni(0).name, "cpu0");
  EXPECT_TRUE(spec.topo.ni(0).initiator);
  EXPECT_FALSE(spec.topo.ni(2).initiator);
}

TEST(SpecIo, ParsedSpecCompilesAndSimulates) {
  const NocSpec spec = parse_spec(kSample);
  XpipesCompiler xpipes;
  auto net = xpipes.build_simulation(spec);
  net->slave(0).poke(0x8, 0x1234);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net->target_base(0) + 0x8;
  txn.burst_len = 1;
  net->master(0).push_transaction(txn);
  net->run_until_quiescent(10000);
  ASSERT_EQ(net->master(0).completed().size(), 1u);
  EXPECT_EQ(net->master(0).completed()[0].data.at(0), 0x1234u);
}

TEST(SpecIo, RoundTripIsStable) {
  const NocSpec spec = parse_spec(kSample);
  const std::string once = write_spec(spec);
  const std::string twice = write_spec(parse_spec(once));
  EXPECT_EQ(once, twice);
}

TEST(SpecIo, GeneratedTopologyRoundTrips) {
  NocSpec spec;
  spec.name = "mesh";
  spec.topo = topology::make_mesh(
      3, 2, topology::NiPlan::uniform(6, 1, 1), /*link_stages=*/1);
  spec.net.routing = topology::RoutingAlgorithm::kXY;
  const NocSpec back = parse_spec(write_spec(spec));
  EXPECT_EQ(back.topo.num_switches(), spec.topo.num_switches());
  EXPECT_EQ(back.topo.num_links(), spec.topo.num_links());
  EXPECT_EQ(back.topo.num_nis(), spec.topo.num_nis());
  for (std::uint32_t l = 0; l < spec.topo.num_links(); ++l) {
    EXPECT_EQ(back.topo.link(l).from, spec.topo.link(l).from);
    EXPECT_EQ(back.topo.link(l).to, spec.topo.link(l).to);
    EXPECT_EQ(back.topo.link(l).stages, spec.topo.link(l).stages);
  }
  // Coordinates survive, so XY routing still works.
  EXPECT_EQ(back.topo.switch_node(4).x, spec.topo.switch_node(4).x);
}

TEST(SpecIo, SaveAndLoadFile) {
  const std::string path = ::testing::TempDir() + "/xpl_spec.noc";
  save_spec(parse_spec(kSample), path);
  const NocSpec spec = load_spec(path);
  EXPECT_EQ(spec.name, "sample");
  EXPECT_EQ(spec.topo.num_switches(), 3u);
}

TEST(SpecIo, ErrorsCarryLineNumbers) {
  try {
    parse_spec("noc x\nbogus_directive 3\n");
    FAIL() << "expected xpl::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SpecIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_spec("flit_width\n"), Error);
  EXPECT_THROW(parse_spec("flit_width abc\n"), Error);
  EXPECT_THROW(parse_spec("link a b\n"), Error);  // unknown switches
  EXPECT_THROW(parse_spec("switch a\nswitch a\n"), Error);  // duplicate
  EXPECT_THROW(parse_spec("routing diagonal\n"), Error);
  EXPECT_THROW(parse_spec("switch a\ninitiator x on a\n"), Error);
}

TEST(SpecIo, CommentsAndBlanksIgnored) {
  const NocSpec spec = parse_spec(
      "# comment\n\nnoc c   # trailing comment\n\nswitch s0\nswitch s1\n"
      "link s0 s1\nlink s1 s0\ninitiator i at s0\ntarget t at s1\n");
  EXPECT_EQ(spec.name, "c");
  EXPECT_EQ(spec.topo.num_links(), 2u);
}

}  // namespace
}  // namespace xpl::compiler
