// NoC specification parsing, writing, and round-tripping.
#include "src/compiler/spec_io.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/topology/generators.hpp"

namespace xpl::compiler {
namespace {

const char kSample[] = R"(# a small custom NoC
noc sample
flit_width 64
beat_width 32
max_burst 8
threads 2
target_window 8192
routing updown
arbiter fixed
crc crc16

switch hub
switch leaf_a coord 0 1
switch leaf_b coord 1 1
link hub leaf_a stages 2
link leaf_a hub stages 2
link hub leaf_b
link leaf_b hub
initiator cpu0 at leaf_a
initiator cpu1 at leaf_b
target mem0 at hub
)";

TEST(SpecIo, ParsesEveryDirective) {
  const NocSpec spec = parse_spec(kSample);
  EXPECT_EQ(spec.name, "sample");
  EXPECT_EQ(spec.net.flit_width, 64u);
  EXPECT_EQ(spec.net.beat_width, 32u);
  EXPECT_EQ(spec.net.max_burst, 8u);
  EXPECT_EQ(spec.net.num_threads, 2u);
  EXPECT_EQ(spec.net.target_window, 8192u);
  EXPECT_EQ(spec.net.routing, topology::RoutingAlgorithm::kUpDown);
  EXPECT_EQ(spec.net.arbiter, switchlib::ArbiterKind::kFixedPriority);
  EXPECT_EQ(spec.net.crc, CrcKind::kCrc16);

  EXPECT_EQ(spec.topo.num_switches(), 3u);
  EXPECT_EQ(spec.topo.num_links(), 4u);
  EXPECT_EQ(spec.topo.num_nis(), 3u);
  EXPECT_EQ(spec.topo.switch_node(0).name, "hub");
  EXPECT_EQ(spec.topo.switch_node(1).x, 0);
  EXPECT_EQ(spec.topo.switch_node(1).y, 1);
  EXPECT_EQ(spec.topo.link(0).stages, 2u);
  EXPECT_EQ(spec.topo.link(2).stages, 0u);
  EXPECT_EQ(spec.topo.ni(0).name, "cpu0");
  EXPECT_TRUE(spec.topo.ni(0).initiator);
  EXPECT_FALSE(spec.topo.ni(2).initiator);
}

TEST(SpecIo, ParsedSpecCompilesAndSimulates) {
  const NocSpec spec = parse_spec(kSample);
  XpipesCompiler xpipes;
  auto net = xpipes.build_simulation(spec);
  net->slave(0).poke(0x8, 0x1234);
  ocp::Transaction txn;
  txn.cmd = ocp::Cmd::kRead;
  txn.addr = net->target_base(0) + 0x8;
  txn.burst_len = 1;
  net->master(0).push_transaction(txn);
  net->run_until_quiescent(10000);
  ASSERT_EQ(net->master(0).completed().size(), 1u);
  EXPECT_EQ(net->master(0).completed()[0].data.at(0), 0x1234u);
}

TEST(SpecIo, RoundTripIsStable) {
  const NocSpec spec = parse_spec(kSample);
  const std::string once = write_spec(spec);
  const std::string twice = write_spec(parse_spec(once));
  EXPECT_EQ(once, twice);
}

TEST(SpecIo, GeneratedTopologyRoundTrips) {
  NocSpec spec;
  spec.name = "mesh";
  spec.topo = topology::make_mesh(
      3, 2, topology::NiPlan::uniform(6, 1, 1), /*link_stages=*/1);
  spec.net.routing = topology::RoutingAlgorithm::kXY;
  const NocSpec back = parse_spec(write_spec(spec));
  EXPECT_EQ(back.topo.num_switches(), spec.topo.num_switches());
  EXPECT_EQ(back.topo.num_links(), spec.topo.num_links());
  EXPECT_EQ(back.topo.num_nis(), spec.topo.num_nis());
  for (std::uint32_t l = 0; l < spec.topo.num_links(); ++l) {
    EXPECT_EQ(back.topo.link(l).from, spec.topo.link(l).from);
    EXPECT_EQ(back.topo.link(l).to, spec.topo.link(l).to);
    EXPECT_EQ(back.topo.link(l).stages, spec.topo.link(l).stages);
  }
  // Coordinates survive, so XY routing still works.
  EXPECT_EQ(back.topo.switch_node(4).x, spec.topo.switch_node(4).x);
}

TEST(SpecIo, BufferDepthsAreConditionalAndRoundTrip) {
  // Defaults are never written...
  NocSpec spec = parse_spec(kSample);
  EXPECT_EQ(write_spec(spec).find("input_fifo"), std::string::npos);
  EXPECT_EQ(write_spec(spec).find("output_fifo"), std::string::npos);
  // ...off-default depths are, and survive the round trip.
  spec.net.input_fifo_depth = 4;
  spec.net.output_fifo_depth = 8;
  const std::string text = write_spec(spec);
  EXPECT_NE(text.find("input_fifo 4"), std::string::npos);
  EXPECT_NE(text.find("output_fifo 8"), std::string::npos);
  const NocSpec back = parse_spec(text);
  EXPECT_EQ(back.net.input_fifo_depth, 4u);
  EXPECT_EQ(back.net.output_fifo_depth, 8u);
  EXPECT_EQ(write_spec(back), text);
}

TEST(SpecIo, VcAnnotatedTopologyRoundTrips) {
  // A torus generator marks vc classes and datelines; both must survive
  // write/parse so an emitted multi-lane spec re-simulates exactly.
  NocSpec spec;
  spec.name = "torus";
  spec.topo = topology::make_torus(3, 3, topology::NiPlan::uniform(9, 1, 1));
  spec.net.vcs = 2;
  spec.net.routing = topology::RoutingAlgorithm::kShortestPath;
  ASSERT_TRUE(spec.topo.has_datelines());

  const std::string text = write_spec(spec);
  EXPECT_NE(text.find(" class 1"), std::string::npos);
  EXPECT_NE(text.find(" dateline"), std::string::npos);
  const NocSpec back = parse_spec(text);
  ASSERT_EQ(back.topo.num_links(), spec.topo.num_links());
  for (std::uint32_t l = 0; l < spec.topo.num_links(); ++l) {
    EXPECT_EQ(back.topo.link(l).vc_class, spec.topo.link(l).vc_class);
    EXPECT_EQ(back.topo.link(l).dateline, spec.topo.link(l).dateline);
  }
  EXPECT_TRUE(back.topo.has_datelines());
  EXPECT_EQ(write_spec(back), text);  // canonical
}

TEST(SpecIo, LinkAnnotationsParseInAnyOrder) {
  const char* base = "switch a\nswitch b\n";
  const NocSpec s1 = parse_spec(std::string(base) +
                                "link a b stages 2 class 1 dateline\n");
  EXPECT_EQ(s1.topo.link(0).stages, 2u);
  EXPECT_EQ(s1.topo.link(0).vc_class, 1u);
  EXPECT_TRUE(s1.topo.link(0).dateline);
  const NocSpec s2 =
      parse_spec(std::string(base) + "link a b dateline class 3\n");
  EXPECT_EQ(s2.topo.link(0).stages, 0u);
  EXPECT_EQ(s2.topo.link(0).vc_class, 3u);
  EXPECT_TRUE(s2.topo.link(0).dateline);
}

TEST(SpecIo, SaveAndLoadFile) {
  const std::string path = ::testing::TempDir() + "/xpl_spec.noc";
  save_spec(parse_spec(kSample), path);
  const NocSpec spec = load_spec(path);
  EXPECT_EQ(spec.name, "sample");
  EXPECT_EQ(spec.topo.num_switches(), 3u);
}

TEST(SpecIo, ErrorsCarryLineNumbers) {
  try {
    parse_spec("noc x\nbogus_directive 3\n");
    FAIL() << "expected xpl::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(SpecIo, RejectsMalformedInput) {
  EXPECT_THROW(parse_spec("flit_width\n"), Error);
  EXPECT_THROW(parse_spec("flit_width abc\n"), Error);
  EXPECT_THROW(parse_spec("link a b\n"), Error);  // unknown switches
  EXPECT_THROW(parse_spec("switch a\nswitch a\n"), Error);  // duplicate
  EXPECT_THROW(parse_spec("routing diagonal\n"), Error);
  EXPECT_THROW(parse_spec("switch a\ninitiator x on a\n"), Error);
  // New-directive malformations.
  EXPECT_THROW(parse_spec("input_fifo 0\n"), Error);
  EXPECT_THROW(parse_spec("output_fifo 0\n"), Error);
  EXPECT_THROW(parse_spec("input_fifo\n"), Error);
  EXPECT_THROW(parse_spec("switch a\nswitch b\nlink a b stages\n"), Error);
  EXPECT_THROW(parse_spec("switch a\nswitch b\nlink a b class\n"), Error);
  EXPECT_THROW(parse_spec("switch a\nswitch b\nlink a b class 256\n"),
               Error);
  EXPECT_THROW(parse_spec("switch a\nswitch b\nlink a b sideband\n"),
               Error);
}

TEST(SpecIo, CommentsAndBlanksIgnored) {
  const NocSpec spec = parse_spec(
      "# comment\n\nnoc c   # trailing comment\n\nswitch s0\nswitch s1\n"
      "link s0 s1\nlink s1 s0\ninitiator i at s0\ntarget t at s1\n");
  EXPECT_EQ(spec.name, "c");
  EXPECT_EQ(spec.topo.num_links(), 2u);
}

}  // namespace
}  // namespace xpl::compiler
