// Header packing, the ~50-bit claim, and route consumption.
#include "src/packet/header.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"

namespace xpl {
namespace {

HeaderFormat small_format() {
  HeaderFormat f;
  f.port_bits = 3;
  f.max_hops = 6;
  f.node_bits = 5;
  f.txn_bits = 4;
  f.thread_bits = 2;
  f.burst_bits = 5;
  f.addr_bits = 16;
  return f;
}

TEST(HeaderFormat, WidthIsSumOfFields) {
  const HeaderFormat f = small_format();
  EXPECT_EQ(f.route_bits(), 18u);
  EXPECT_EQ(f.width(), 18u + 2 + 10 + 4 + 2 + 5 + 2 + 2 + 2 + 16);
}

TEST(HeaderFormat, PaperConfigIsAboutFiftyBits) {
  // A typical paper configuration: 3x4 mesh, 19 NIs, 6-hop routes,
  // 16-bit offsets — the header register the paper calls "about 50 bits".
  const HeaderFormat f =
      HeaderFormat::for_network(/*max_radix=*/6, /*num_nodes=*/19,
                                /*diameter=*/6, /*addr_bits=*/16,
                                /*max_burst=*/16, /*num_threads=*/4);
  EXPECT_GE(f.width(), 45u);
  EXPECT_LE(f.width(), 70u);
}

TEST(HeaderFormat, ForNetworkSizesFields) {
  const HeaderFormat f = HeaderFormat::for_network(6, 19, 6, 16, 16, 4);
  EXPECT_EQ(f.port_bits, 3u);   // 6 ports -> 3 bits
  EXPECT_EQ(f.node_bits, 5u);   // 19 nodes -> 5 bits
  EXPECT_EQ(f.max_hops, 6u);
  EXPECT_EQ(f.burst_bits, 5u);  // lengths 0..16
  EXPECT_EQ(f.thread_bits, 2u);
}

TEST(Header, PackUnpackRoundTrip) {
  const HeaderFormat f = small_format();
  Header h;
  h.route = {1, 4, 2, 7};
  h.cmd = PacketCmd::kRead;
  h.src = 9;
  h.dst = 23;
  h.txn_id = 13;
  h.thread_id = 3;
  h.burst_len = 17;
  h.sideband = true;
  h.interrupt = false;
  h.resp = 2;
  h.addr = 0xBEEF;

  const BitVector bits = pack_header(h, f);
  EXPECT_EQ(bits.width(), f.width());
  const Header back = unpack_header(bits, f);
  EXPECT_EQ(back.cmd, h.cmd);
  EXPECT_EQ(back.src, h.src);
  EXPECT_EQ(back.dst, h.dst);
  EXPECT_EQ(back.txn_id, h.txn_id);
  EXPECT_EQ(back.thread_id, h.thread_id);
  EXPECT_EQ(back.burst_len, h.burst_len);
  EXPECT_EQ(back.sideband, h.sideband);
  EXPECT_EQ(back.interrupt, h.interrupt);
  EXPECT_EQ(back.resp, h.resp);
  EXPECT_EQ(back.addr, h.addr);
  // Unpacked route is padded to max_hops.
  ASSERT_EQ(back.route.size(), f.max_hops);
  for (std::size_t i = 0; i < h.route.size(); ++i) {
    EXPECT_EQ(back.route[i], h.route[i]);
  }
}

TEST(Header, RandomRoundTripSweep) {
  const HeaderFormat f = small_format();
  Rng rng(71);
  for (int trial = 0; trial < 200; ++trial) {
    Header h;
    const std::size_t hops = 1 + rng.next_below(f.max_hops);
    for (std::size_t i = 0; i < hops; ++i) {
      h.route.push_back(static_cast<std::uint8_t>(rng.next_below(8)));
    }
    h.cmd = static_cast<PacketCmd>(rng.next_below(4));
    h.src = static_cast<std::uint32_t>(rng.next_below(32));
    h.dst = static_cast<std::uint32_t>(rng.next_below(32));
    h.txn_id = static_cast<std::uint32_t>(rng.next_below(16));
    h.thread_id = static_cast<std::uint32_t>(rng.next_below(4));
    h.burst_len = static_cast<std::uint32_t>(rng.next_below(32));
    h.sideband = rng.chance(0.5);
    h.interrupt = rng.chance(0.5);
    h.resp = static_cast<std::uint8_t>(rng.next_below(4));
    h.addr = rng.next_below(1u << 16);
    const Header back = unpack_header(pack_header(h, f), f);
    EXPECT_EQ(back.cmd, h.cmd);
    EXPECT_EQ(back.addr, h.addr);
    EXPECT_EQ(back.burst_len, h.burst_len);
    for (std::size_t i = 0; i < hops; ++i) {
      ASSERT_EQ(back.route[i], h.route[i]);
    }
  }
}

TEST(Header, FieldOverflowThrows) {
  const HeaderFormat f = small_format();
  Header h;
  h.route = {1};
  h.src = 32;  // node_bits = 5 -> max 31
  EXPECT_THROW(pack_header(h, f), Error);
  h.src = 0;
  h.burst_len = 32;  // burst_bits = 5
  EXPECT_THROW(pack_header(h, f), Error);
  h.burst_len = 1;
  h.route.assign(7, 0);  // max_hops = 6
  EXPECT_THROW(pack_header(h, f), Error);
}

TEST(Header, RouteIsInLowBits) {
  const HeaderFormat f = small_format();
  Header h;
  h.route = {5, 3};
  const BitVector bits = pack_header(h, f);
  EXPECT_EQ(bits.slice(0, 3), 5u);
  EXPECT_EQ(bits.slice(3, 3), 3u);
}

TEST(Header, PeekAndConsumeRoute) {
  const HeaderFormat f = small_format();
  Header h;
  h.route = {5, 3, 6, 1};
  h.addr = 0xABCD;
  BitVector flit0 = pack_header(h, f);  // fits in one "flit" here

  EXPECT_EQ(peek_route_port(flit0, f.port_bits), 5u);
  flit0 = consume_route_port(flit0, f.port_bits, f.route_bits());
  EXPECT_EQ(peek_route_port(flit0, f.port_bits), 3u);
  flit0 = consume_route_port(flit0, f.port_bits, f.route_bits());
  EXPECT_EQ(peek_route_port(flit0, f.port_bits), 6u);
  flit0 = consume_route_port(flit0, f.port_bits, f.route_bits());
  EXPECT_EQ(peek_route_port(flit0, f.port_bits), 1u);
  flit0 = consume_route_port(flit0, f.port_bits, f.route_bits());

  // Non-route fields survive all shifts intact.
  const Header back = unpack_header(flit0, f);
  EXPECT_EQ(back.addr, 0xABCDu);
  // Fully consumed route decodes as all zeros.
  for (const auto p : back.route) EXPECT_EQ(p, 0);
}

TEST(Header, ConsumeOnlyTouchesRouteField) {
  const HeaderFormat f = small_format();
  Header h;
  h.route = {7, 7, 7, 7, 7, 7};
  h.cmd = PacketCmd::kWriteNp;
  h.src = 21;
  h.dst = 17;
  h.addr = 0x1234;
  BitVector bits = pack_header(h, f);
  for (int i = 0; i < 6; ++i) {
    bits = consume_route_port(bits, f.port_bits, f.route_bits());
    const Header back = unpack_header(bits, f);
    EXPECT_EQ(back.cmd, h.cmd);
    EXPECT_EQ(back.src, h.src);
    EXPECT_EQ(back.dst, h.dst);
    EXPECT_EQ(back.addr, h.addr);
  }
}

TEST(PacketCmdNames, AllDistinct) {
  EXPECT_STREQ(packet_cmd_name(PacketCmd::kWrite), "WRITE");
  EXPECT_STREQ(packet_cmd_name(PacketCmd::kRead), "READ");
  EXPECT_STREQ(packet_cmd_name(PacketCmd::kWriteNp), "WRITE_NP");
  EXPECT_STREQ(packet_cmd_name(PacketCmd::kResponse), "RESPONSE");
}

}  // namespace
}  // namespace xpl
