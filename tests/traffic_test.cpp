// Traffic generation patterns and statistics collection.
#include "src/traffic/traffic.hpp"

#include <gtest/gtest.h>

#include "src/common/error.hpp"
#include "src/topology/generators.hpp"
#include "src/traffic/stats.hpp"

namespace xpl::traffic {
namespace {

noc::NetworkConfig net_config() {
  noc::NetworkConfig cfg;
  cfg.routing = topology::RoutingAlgorithm::kXY;
  cfg.target_window = 1 << 12;
  return cfg;
}

std::unique_ptr<noc::Network> make_net() {
  return std::make_unique<noc::Network>(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)),
      net_config());
}

TEST(Traffic, UniformDrivesAllMasters) {
  auto net = make_net();
  TrafficConfig cfg;
  cfg.pattern = Pattern::kUniformRandom;
  cfg.injection_rate = 0.1;
  TrafficDriver driver(*net, cfg);
  driver.run(2000);
  net->run_until_quiescent(50000);
  EXPECT_GT(driver.injected(), 0u);
  std::size_t done = 0;
  for (std::size_t i = 0; i < net->num_initiators(); ++i) {
    done += net->master(i).completed().size();
  }
  EXPECT_EQ(done, driver.injected());
}

TEST(Traffic, InjectionRateRoughlyHonored) {
  auto net = make_net();
  TrafficConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.seed = 3;
  TrafficDriver driver(*net, cfg);
  const std::size_t cycles = 4000;
  driver.run(cycles);
  const double expected =
      cfg.injection_rate * static_cast<double>(cycles) * 4;
  EXPECT_NEAR(static_cast<double>(driver.injected()), expected,
              expected * 0.2);
}

TEST(Traffic, BurstyInjectionPreservesMeanRate) {
  auto net = make_net();
  TrafficConfig cfg;
  cfg.injection_rate = 0.05;
  cfg.burstiness = 0.7;
  cfg.seed = 3;
  TrafficDriver driver(*net, cfg);
  const std::size_t cycles = 20000;
  driver.run(cycles);
  // On/off modulation redistributes the load in time but keeps the mean:
  // the same 20%-tolerance band the Bernoulli rate test uses.
  const double expected =
      cfg.injection_rate * static_cast<double>(cycles) * 4;
  EXPECT_NEAR(static_cast<double>(driver.injected()), expected,
              expected * 0.2);

  // Small burstiness clamps the OFF-exit probability (an OFF dwell can't
  // run below one cycle); the peak rate compensates, so the mean holds
  // here too.
  auto net2 = make_net();
  cfg.burstiness = 0.05;
  TrafficDriver small(*net2, cfg);
  small.run(cycles);
  EXPECT_NEAR(static_cast<double>(small.injected()), expected,
              expected * 0.1);
}

TEST(Traffic, BurstyInjectionDeterministicPerSeed) {
  TrafficConfig cfg;
  cfg.injection_rate = 0.08;
  cfg.burstiness = 0.5;
  cfg.seed = 17;
  auto run_once = [&cfg]() {
    auto net = make_net();
    TrafficDriver driver(*net, cfg);
    driver.run(500);
    net->run_until_quiescent(50000);
    return collect_run(*net, 500).to_string();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Traffic, BurstinessValidated) {
  auto net = make_net();
  TrafficConfig cfg;
  cfg.burstiness = 1.0;  // must be < 1
  EXPECT_THROW(TrafficDriver(*net, cfg), Error);
  cfg.burstiness = -0.1;
  EXPECT_THROW(TrafficDriver(*net, cfg), Error);
  cfg.burstiness = 0.5;
  cfg.avg_burst_cycles = 0.5;  // must be >= 1
  EXPECT_THROW(TrafficDriver(*net, cfg), Error);
}

TEST(Traffic, HotspotConcentratesOnTarget) {
  auto net = make_net();
  TrafficConfig cfg;
  cfg.pattern = Pattern::kHotspot;
  cfg.hotspot_target = 2;
  cfg.hotspot_fraction = 0.9;
  cfg.injection_rate = 0.05;
  cfg.read_fraction = 0.0;  // writes: counted by the slave
  TrafficDriver driver(*net, cfg);
  driver.run(3000);
  net->run_until_quiescent(50000);
  std::size_t hot = net->slave(2).requests_served();
  std::size_t cold = 0;
  for (std::size_t t = 0; t < 4; ++t) {
    if (t != 2) cold += net->slave(t).requests_served();
  }
  EXPECT_GT(hot, 2 * cold);
}

TEST(Traffic, PermutationPairsFixed) {
  auto net = make_net();
  TrafficConfig cfg;
  cfg.pattern = Pattern::kPermutation;
  cfg.injection_rate = 0.05;
  cfg.read_fraction = 0.0;
  TrafficDriver driver(*net, cfg);
  driver.run(2000);
  net->run_until_quiescent(50000);
  // Initiator i -> target i: every slave serves only its partner's load.
  for (std::size_t t = 0; t < 4; ++t) {
    EXPECT_GT(net->slave(t).requests_served(), 0u) << "target " << t;
  }
}

TEST(Traffic, WeightedRespectsZeroRows) {
  auto net = make_net();
  TrafficConfig cfg;
  cfg.pattern = Pattern::kWeighted;
  cfg.injection_rate = 0.2;
  cfg.read_fraction = 0.0;
  cfg.weights.assign(4, std::vector<double>(4, 0.0));
  cfg.weights[0][1] = 10.0;  // only flow: initiator 0 -> target 1
  TrafficDriver driver(*net, cfg);
  driver.run(2000);
  net->run_until_quiescent(50000);
  EXPECT_GT(net->slave(1).requests_served(), 0u);
  EXPECT_EQ(net->slave(0).requests_served(), 0u);
  EXPECT_EQ(net->slave(2).requests_served(), 0u);
  EXPECT_EQ(net->slave(3).requests_served(), 0u);
}

TEST(Traffic, WeightedValidatesShape) {
  auto net = make_net();
  TrafficConfig cfg;
  cfg.pattern = Pattern::kWeighted;
  cfg.weights.assign(2, std::vector<double>(4, 1.0));  // wrong rows
  EXPECT_THROW(TrafficDriver(*net, cfg), Error);
}

TEST(Traffic, BurstRangeValidated) {
  auto net = make_net();
  TrafficConfig cfg;
  cfg.min_burst = 4;
  cfg.max_burst = 2;
  EXPECT_THROW(TrafficDriver(*net, cfg), Error);
  cfg.min_burst = 1;
  cfg.max_burst = 200;  // above network max_burst
  EXPECT_THROW(TrafficDriver(*net, cfg), Error);
}

TEST(Stats, LatencyPercentilesOrdered) {
  auto net = make_net();
  TrafficConfig cfg;
  cfg.injection_rate = 0.08;
  cfg.read_fraction = 1.0;  // all reads -> all carry latency
  TrafficDriver driver(*net, cfg);
  driver.run(3000);
  net->run_until_quiescent(50000);
  const auto lat = collect_latency(*net);
  ASSERT_GT(lat.count, 0u);
  EXPECT_LE(static_cast<double>(lat.min), lat.p50);
  EXPECT_LE(lat.p50, lat.p95);
  EXPECT_LE(lat.p95, static_cast<double>(lat.max));
  EXPECT_GE(lat.mean, static_cast<double>(lat.min));
  EXPECT_LE(lat.mean, static_cast<double>(lat.max));
  // A 2x2 mesh read takes at least ~10 cycles end to end.
  EXPECT_GE(lat.min, 10u);
}

TEST(Stats, RunStatsAggregates) {
  auto net = make_net();
  TrafficConfig cfg;
  cfg.injection_rate = 0.05;
  TrafficDriver driver(*net, cfg);
  driver.run(2000);
  net->run_until_quiescent(50000);
  const auto stats = collect_run(*net, 2000);
  EXPECT_GT(stats.transactions, 0u);
  EXPECT_GT(stats.throughput, 0.0);
  EXPECT_GT(stats.link_flits, 0u);
  EXPECT_GT(stats.avg_link_utilization, 0.0);
  EXPECT_FALSE(stats.to_string().empty());
}

TEST(Stats, HigherLoadHigherLatency) {
  auto measure = [](double rate) {
    auto net = make_net();
    TrafficConfig cfg;
    cfg.injection_rate = rate;
    cfg.read_fraction = 1.0;
    cfg.seed = 11;
    TrafficDriver driver(*net, cfg);
    driver.run(4000);
    net->run_until_quiescent(100000);
    return collect_latency(*net).mean;
  };
  const double light = measure(0.01);
  const double heavy = measure(0.20);
  EXPECT_GT(heavy, light);
}

// Regression for the address-window overflow: with a target window of 16
// bytes (2 beats), a rolled burst of 3-4 beats used to be issued at the
// window base anyway and run past the window into the next target's
// address space — observable as slave-side kErr responses on every
// overlong burst. The driver now clamps the rolled burst to the window.
TEST(Traffic, BurstIsClampedToTargetWindow) {
  noc::NetworkConfig cfg = net_config();
  cfg.target_window = 16;  // room for exactly 2 beats
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);

  TrafficConfig tcfg;
  tcfg.injection_rate = 0.2;
  tcfg.read_fraction = 1.0;  // reads carry the error response back
  tcfg.min_burst = 1;
  tcfg.max_burst = 4;  // rolls of 3 and 4 must clamp to 2
  tcfg.seed = 21;
  TrafficDriver driver(net, tcfg);
  driver.run(1500);
  net.run_until_quiescent(100000);
  ASSERT_GT(driver.injected(), 0u);

  bool saw_clamped = false;
  for (std::size_t i = 0; i < net.num_initiators(); ++i) {
    for (const auto& r : net.master(i).completed()) {
      EXPECT_EQ(r.resp, ocp::Resp::kDva)
          << "burst ran past the target window";
      EXPECT_LE(r.data.size(), 2u);
      saw_clamped = saw_clamped || r.data.size() == 2;
    }
  }
  EXPECT_TRUE(saw_clamped);  // the clamp actually engaged
}

TEST(Traffic, RejectsMinBurstLargerThanTargetWindow) {
  noc::NetworkConfig cfg = net_config();
  cfg.target_window = 16;
  noc::Network net(
      topology::make_mesh(2, 2, topology::NiPlan::uniform(4, 1, 1)), cfg);
  TrafficConfig tcfg;
  tcfg.min_burst = 3;  // 24 bytes can never fit a 16-byte window
  tcfg.max_burst = 4;
  EXPECT_THROW(TrafficDriver(net, tcfg), Error);
}

}  // namespace
}  // namespace xpl::traffic
