// The 2-stage wormhole switch: routing, arbitration, wormhole integrity,
// backpressure, error recovery, pipeline-depth emulation.
#include "src/switchlib/switch.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <map>

#include "src/common/rng.hpp"
#include "src/packet/packetizer.hpp"
#include "src/sim/kernel.hpp"

namespace xpl::switchlib {
namespace {

PacketFormat test_format() {
  PacketFormat f;
  f.header.port_bits = 3;
  f.header.max_hops = 4;
  f.header.node_bits = 4;
  f.header.txn_bits = 4;
  f.header.thread_bits = 2;
  f.header.burst_bits = 4;
  f.header.addr_bits = 12;
  f.flit_width = 32;
  f.beat_width = 32;
  return f;
}

// Queues whole packets and streams their flits through a go-back-N sender.
class Injector : public sim::Module {
 public:
  Injector(std::string name, link::LinkWires wires,
           const link::ProtocolConfig& cfg)
      : sim::Module(std::move(name)), tx_(wires, cfg) {}

  void push_packet(const std::vector<Flit>& flits) {
    for (const Flit& f : flits) queue_.push_back(f);
  }

  void tick(sim::Kernel&) override {
    tx_.begin_cycle();
    if (!queue_.empty() && tx_.can_accept()) {
      tx_.accept(queue_.front());
      queue_.pop_front();
    }
    tx_.end_cycle();
  }

  bool done() const { return queue_.empty() && tx_.idle(); }

 private:
  link::GoBackNSender tx_;
  std::deque<Flit> queue_;
};

// Collects flits, checking wormhole framing (head ... tail, no interleave).
class Collector : public sim::Module {
 public:
  Collector(std::string name, link::LinkWires wires,
            const link::ProtocolConfig& cfg, double stall = 0.0,
            std::uint64_t seed = 1)
      : sim::Module(std::move(name)), rx_(wires, cfg), stall_(stall),
        rng_(seed) {}

  void tick(sim::Kernel& kernel) override {
    const bool can_take = !rng_.chance(stall_);
    if (auto flit = rx_.begin_cycle(can_take)) {
      if (in_packet_) {
        EXPECT_FALSE(flit->head) << name() << ": head mid-packet";
      } else {
        EXPECT_TRUE(flit->head) << name() << ": body without head";
        packet_start_cycles_.push_back(kernel.cycle());
      }
      in_packet_ = !flit->tail;
      if (flit->tail) ++packets_;
      flits_.push_back(*flit);
    }
    rx_.end_cycle();
  }

  std::size_t packets() const { return packets_; }
  const std::vector<Flit>& flits() const { return flits_; }
  const std::vector<std::uint64_t>& packet_start_cycles() const {
    return packet_start_cycles_;
  }

 private:
  link::GoBackNReceiver rx_;
  double stall_;
  Rng rng_;
  std::vector<Flit> flits_;
  std::vector<std::uint64_t> packet_start_cycles_;
  bool in_packet_ = false;
  std::size_t packets_ = 0;
};

struct Harness {
  sim::Kernel kernel;
  PacketFormat format = test_format();
  SwitchConfig config;
  std::vector<link::LinkWires> in_wires;
  std::vector<link::LinkWires> out_wires;
  std::vector<std::unique_ptr<Injector>> injectors;
  std::vector<std::unique_ptr<Collector>> collectors;
  std::unique_ptr<Switch> dut;

  Harness(std::size_t n_in, std::size_t n_out,
          ArbiterKind arbiter = ArbiterKind::kRoundRobin,
          std::size_t extra_pipeline = 0, double collector_stall = 0.0) {
    config.num_inputs = n_in;
    config.num_outputs = n_out;
    config.flit_width = format.flit_width;
    config.port_bits = format.header.port_bits;
    config.route_bits = format.header.route_bits();
    config.arbiter = arbiter;
    config.extra_pipeline = extra_pipeline;
    config.protocol = link::ProtocolConfig::for_link(0);
    for (std::size_t i = 0; i < n_in; ++i) {
      in_wires.push_back(link::LinkWires::make(kernel));
      injectors.push_back(std::make_unique<Injector>(
          "inj" + std::to_string(i), in_wires.back(), config.protocol));
    }
    for (std::size_t o = 0; o < n_out; ++o) {
      out_wires.push_back(link::LinkWires::make(kernel));
      collectors.push_back(std::make_unique<Collector>(
          "col" + std::to_string(o), out_wires.back(), config.protocol,
          collector_stall, 100 + o));
    }
    dut = std::make_unique<Switch>("dut", config, in_wires, out_wires);
    for (auto& m : injectors) kernel.add_module(*m);
    kernel.add_module(*dut);
    for (auto& m : collectors) kernel.add_module(*m);
  }

  // A packet whose first route selector is `out_port`, then `rest`.
  std::vector<Flit> make_packet(std::uint8_t out_port, Route rest = {},
                                std::size_t beats = 2,
                                std::uint32_t src = 1) {
    Packet p;
    p.header.route = {out_port};
    for (const auto r : rest) p.header.route.push_back(r);
    p.header.cmd = beats ? PacketCmd::kWrite : PacketCmd::kRead;
    p.header.src = src;
    p.header.dst = 2;
    p.header.burst_len = static_cast<std::uint32_t>(beats ? beats : 1);
    p.header.addr = 0x123;
    for (std::size_t b = 0; b < beats; ++b) {
      p.beats.emplace_back(format.beat_width, 0xC0DE00 + b);
    }
    return packetize(p, format);
  }

  bool drained() {
    for (const auto& inj : injectors) {
      if (!inj->done()) return false;
    }
    return dut->idle();
  }

  void run_to_drain(std::size_t max_cycles = 20000) {
    kernel.run_until([&] { return drained(); }, max_cycles);
  }
};

TEST(Switch, RoutesToEachOutput) {
  Harness h(2, 4);
  for (std::uint8_t o = 0; o < 4; ++o) {
    h.injectors[0]->push_packet(h.make_packet(o));
  }
  h.run_to_drain();
  for (std::size_t o = 0; o < 4; ++o) {
    EXPECT_EQ(h.collectors[o]->packets(), 1u) << "output " << o;
  }
}

TEST(Switch, ConsumesExactlyOneRouteSelector) {
  Harness h(1, 2);
  // Route {1, 5, 3}: this switch must take port 1 and forward the shifted
  // route {5, 3}.
  h.injectors[0]->push_packet(h.make_packet(1, {5, 3}, 0));
  h.run_to_drain();
  ASSERT_EQ(h.collectors[1]->packets(), 1u);
  const Flit& head = h.collectors[1]->flits().front();
  ASSERT_TRUE(head.head);
  EXPECT_EQ(peek_route_port(head.payload, h.format.header.port_bits), 5u);
}

TEST(Switch, WormholeDoesNotInterleave) {
  // Both inputs blast multi-flit packets at output 0; the Collector's
  // framing assertions catch any interleaving.
  Harness h(2, 2);
  for (int k = 0; k < 10; ++k) {
    h.injectors[0]->push_packet(h.make_packet(0, {}, 4, /*src=*/1));
    h.injectors[1]->push_packet(h.make_packet(0, {}, 4, /*src=*/2));
  }
  h.run_to_drain();
  EXPECT_EQ(h.collectors[0]->packets(), 20u);
}

TEST(Switch, ParallelFlowsUseFullCrossbar) {
  // Input i -> output i for all i simultaneously; both flows complete in
  // roughly the time of one (no false serialization).
  Harness h(2, 2);
  const int packets = 20;
  for (int k = 0; k < packets; ++k) {
    h.injectors[0]->push_packet(h.make_packet(0, {}, 2, 1));
    h.injectors[1]->push_packet(h.make_packet(1, {}, 2, 2));
  }
  const auto cycles =
      h.kernel.run_until([&] { return h.drained(); }, 20000);
  EXPECT_EQ(h.collectors[0]->packets(), 20u);
  EXPECT_EQ(h.collectors[1]->packets(), 20u);
  // ~5 flits/packet, 1 flit/cycle/port in parallel, generous margin.
  EXPECT_LT(cycles, 300u);
}

TEST(Switch, RoundRobinSharesFairly) {
  Harness h(2, 1, ArbiterKind::kRoundRobin);
  for (int k = 0; k < 30; ++k) {
    h.injectors[0]->push_packet(h.make_packet(0, {}, 1, 1));
    h.injectors[1]->push_packet(h.make_packet(0, {}, 1, 2));
  }
  h.run_to_drain(50000);
  EXPECT_EQ(h.collectors[0]->packets(), 60u);
}

TEST(Switch, BackpressureIsLossless) {
  Harness h(2, 1, ArbiterKind::kRoundRobin, 0, /*stall=*/0.7);
  for (int k = 0; k < 15; ++k) {
    h.injectors[0]->push_packet(h.make_packet(0, {}, 2, 1));
    h.injectors[1]->push_packet(h.make_packet(0, {}, 2, 2));
  }
  h.run_to_drain(100000);
  EXPECT_EQ(h.collectors[0]->packets(), 30u);
  EXPECT_GT(h.dut->retransmissions(), 0u);
}

TEST(Switch, CountsFlitsAndPackets) {
  Harness h(1, 2);
  h.injectors[0]->push_packet(h.make_packet(0, {}, 3));
  h.injectors[0]->push_packet(h.make_packet(1, {}, 0));
  h.run_to_drain();
  const std::size_t hdr = h.format.header_flits();
  EXPECT_EQ(h.dut->flits_switched(), hdr + 3 + hdr);
  EXPECT_EQ(h.dut->packets_per_output()[0], 1u);
  EXPECT_EQ(h.dut->packets_per_output()[1], 1u);
}

TEST(Switch, IdleAfterDrainAndBeforeTraffic) {
  Harness h(2, 2);
  EXPECT_TRUE(h.dut->idle());
  h.injectors[0]->push_packet(h.make_packet(0));
  h.kernel.run(3);
  EXPECT_FALSE(h.dut->idle());
  h.run_to_drain();
  EXPECT_TRUE(h.dut->idle());
}

TEST(Switch, ExtraPipelineAddsExactLatency) {
  auto measure = [](std::size_t extra) {
    Harness h(1, 1, ArbiterKind::kRoundRobin, extra);
    h.injectors[0]->push_packet(h.make_packet(0, {}, 0));
    h.run_to_drain();
    return h.collectors[0]->packet_start_cycles().at(0);
  };
  const auto base = measure(0);
  // The paper's old 7-stage switch vs the lite 2-stage switch.
  EXPECT_EQ(measure(5), base + 5);
  EXPECT_EQ(measure(1), base + 1);
}

TEST(Switch, BadRoutePortIsRejected) {
  Harness h(1, 2);
  // Selector 7 on a 2-output switch: protocol violation, must throw.
  h.injectors[0]->push_packet(h.make_packet(7, {}, 0));
  EXPECT_THROW(h.kernel.run(20), Error);
}

TEST(SwitchConfig, ValidationCatchesBadGeometry) {
  SwitchConfig cfg;
  cfg.num_outputs = 16;
  cfg.port_bits = 3;  // 16 outputs need 4 bits
  EXPECT_THROW(cfg.validate(), Error);
  cfg = SwitchConfig{};
  cfg.route_bits = 64;
  cfg.flit_width = 32;  // route must fit one flit
  EXPECT_THROW(cfg.validate(), Error);
}

// Radix sweep: every (in, out) shape the paper's mesh uses routes all
// packets correctly under random traffic.
class RadixSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(RadixSweep, RandomTrafficAllDelivered) {
  const auto [n_in, n_out] = GetParam();
  Harness h(n_in, n_out);
  Rng rng(n_in * 10 + n_out);
  std::vector<std::size_t> expected(n_out, 0);
  for (int k = 0; k < 40; ++k) {
    const auto in = rng.next_below(n_in);
    const auto out = static_cast<std::uint8_t>(rng.next_below(n_out));
    h.injectors[in]->push_packet(
        h.make_packet(out, {}, rng.next_below(4),
                      static_cast<std::uint32_t>(in)));
    ++expected[out];
  }
  h.run_to_drain(100000);
  for (std::size_t o = 0; o < n_out; ++o) {
    EXPECT_EQ(h.collectors[o]->packets(), expected[o]) << "output " << o;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MeshShapes, RadixSweep,
    ::testing::Values(std::tuple<std::size_t, std::size_t>{4, 4},
                      std::tuple<std::size_t, std::size_t>{6, 4},
                      std::tuple<std::size_t, std::size_t>{5, 5},
                      std::tuple<std::size_t, std::size_t>{2, 6},
                      std::tuple<std::size_t, std::size_t>{8, 8}));

}  // namespace
}  // namespace xpl::switchlib
